(** MIRS_HC — Modulo scheduling with Integrated Register Spilling for
    Hierarchical Clustered VLIW architectures: the paper's contribution.

    A single modulo scheduler that simultaneously performs instruction
    scheduling, cluster selection, insertion of inter-bank communication
    (StoreR/LoadR through the shared second-level bank, or Move over the
    buses of a flat clustered RF), register allocation against every
    bank's capacity, and spill-code insertion — iteratively, with
    force-and-eject backtracking under a Budget (§5).

    The same engine degrades gracefully to the earlier members of the
    family: on a monolithic RF it behaves as MIRS [38], on a flat
    clustered RF as MIRS_C [37].  The configuration alone selects the
    behaviour. *)

type options = Hcrf_sched.Engine.options

val default_options : options

type outcome = Hcrf_sched.Engine.outcome

(** Schedule one loop body for the configuration.  Returns the complete
    schedule (with all inserted communication and spill operations in
    [outcome.graph]) or [`No_schedule ii] if no II up to the cap
    admitted a schedule. *)
val schedule :
  ?opts:options -> ?trace:Hcrf_obs.Trace.t -> Hcrf_machine.Config.t ->
  Hcrf_ir.Ddg.t -> (outcome, Hcrf_sched.Engine.error) result

type scheduled_loop = { loop : Hcrf_ir.Loop.t; outcome : outcome }

(** Schedule a whole {!Hcrf_ir.Loop.t}, keeping the metadata alongside
    the outcome. *)
val schedule_loop :
  ?opts:options -> ?trace:Hcrf_obs.Trace.t -> Hcrf_machine.Config.t ->
  Hcrf_ir.Loop.t -> (scheduled_loop, Hcrf_sched.Engine.error) result

(** Run the independent checker on an outcome. *)
val validate : outcome -> Hcrf_sched.Validate.issue list

val is_valid : outcome -> bool

(** Memory accesses per iteration of the final schedule, including
    spill traffic — the paper's trf metric (§2.3). *)
val memory_refs_per_iter : outcome -> int

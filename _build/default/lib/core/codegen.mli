(** VLIW code emission — the [Generate_code (II, S)] step closing
    Figure 5.

    Renders a scheduled loop as the kernel the core would execute: one
    line per modulo slot listing every operation issued there, with its
    cluster/port placement and its rotating-register operands
    ([L0:r3] = offset 3 of cluster 0's bank, [S:r1] = the shared bank;
    [~] marks a value consumed straight off the bypass network). *)

type t = {
  config : Hcrf_machine.Config.t;
  ii : int;
  sc : int;
  kernel : string;  (** rendered kernel table *)
}

(** Render the kernel of a complete schedule; [Error bank] when register
    allocation fails. *)
val emit :
  Hcrf_machine.Config.t -> Hcrf_sched.Schedule.t -> Hcrf_ir.Ddg.t ->
  (t, Hcrf_sched.Topology.bank) result

val of_outcome :
  Hcrf_machine.Config.t -> Hcrf_sched.Engine.outcome ->
  (t, Hcrf_sched.Topology.bank) result

val pp : Format.formatter -> t -> unit

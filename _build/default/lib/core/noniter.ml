(** The non-iterative baseline scheduler of [36] (Zalamea et al.,
    MICRO-33), used by the paper's Table 4 comparison.

    [36] schedules hierarchical (non-clustered) register files with
    register allocation and spilling but *without* the iterative
    backtracking of MIRS_HC: once a node fails to find a slot, the
    partial schedule is discarded and the loop is retried at II + 1.  It
    also uses a plain topological (ASAP) node order rather than the
    HRMS ordering.  Both differences are what Table 4 measures. *)

open Hcrf_ir
open Hcrf_sched

let options : Engine.options =
  { Engine.default_options with backtracking = false; ordering = `Topological }

let schedule ?(budget_ratio = 6) ?max_ii ?(load_override = fun _ -> None)
    ?trace config (g : Ddg.t) =
  Engine.schedule
    ~opts:{ options with budget_ratio; max_ii; load_override }
    ?trace config g

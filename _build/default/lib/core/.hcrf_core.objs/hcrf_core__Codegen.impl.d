lib/core/codegen.ml: Array Buffer Ddg Fmt Format Hashtbl Hcrf_ir Hcrf_machine Hcrf_sched List Op Regalloc Schedule String Topology

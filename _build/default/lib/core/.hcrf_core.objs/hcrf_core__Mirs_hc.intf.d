lib/core/mirs_hc.mli: Hcrf_ir Hcrf_machine Hcrf_obs Hcrf_sched

lib/core/noniter.ml: Ddg Engine Hcrf_ir Hcrf_sched

lib/core/codegen.mli: Format Hcrf_ir Hcrf_machine Hcrf_sched

lib/core/mirs_hc.ml: Ddg Engine Hcrf_ir Hcrf_sched Loop Validate

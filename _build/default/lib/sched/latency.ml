(** Dependence-edge latencies.

    A [True] edge waits for the producer's latency; [Anti] edges only
    require same-cycle-or-later issue (latency 0); [Output] edges require
    strictly later issue (latency 1).  Binding prefetching (§6.2) is
    modeled with [override]: selected load operations are scheduled with
    the cache-miss latency instead of the hit latency. *)

open Hcrf_ir
open Hcrf_machine

type t = {
  config : Config.t;
  override : int -> int option;
      (** per-node latency override (binding prefetch) *)
}

let make ?(override = fun _ -> None) config = { config; override }

(** Latency of the value produced by node [id] of kind [k]. *)
let of_def t ~id ~kind =
  match t.override id with
  | Some l -> l
  | None -> Config.op_latency t.config kind

let of_edge t (g : Ddg.t) (e : Ddg.edge) =
  match e.dep with
  | Dep.True -> of_def t ~id:e.src ~kind:(Ddg.kind g e.src)
  | Dep.Anti -> 0
  | Dep.Output -> 1

(** Priority list of the iterative scheduler.

    Lower priority value = scheduled earlier.  Original nodes carry their
    HRMS ordering index; nodes inserted during scheduling (communication,
    spill) are given fractional priorities adjacent to the operation they
    serve, and ejected nodes are re-queued with their original priority
    (§5.1). *)

module S = Set.Make (struct
  type t = float * int

  let compare = compare
end)

type t = { mutable set : S.t }

let create () = { set = S.empty }
let is_empty t = S.is_empty t.set
let size t = S.cardinal t.set
let mem t node = S.exists (fun (_, v) -> v = node) t.set
let push t ~priority node = t.set <- S.add (priority, node) t.set

let pop t =
  match S.min_elt_opt t.set with
  | None -> None
  | Some ((_, v) as e) ->
    t.set <- S.remove e t.set;
    Some v

let remove t node =
  t.set <- S.filter (fun (_, v) -> v <> node) t.set

(** Partial (and, eventually, complete) modulo schedules.

    An entry assigns a node an issue cycle (in the flat, non-modulo time
    axis — stage count falls out of the maximum cycle) and an execution
    location.  The reservation table is kept in sync by [place]/[unplace].

    [estart]/[lstart] are the classic windows derived from the *scheduled*
    neighbours: a node may issue at cycle c only if
    c >= cycle(p) + latency(e) - II * distance(e) for scheduled
    predecessors p, and symmetrically for scheduled successors. *)

open Hcrf_ir
open Hcrf_machine

type entry = { cycle : int; loc : Topology.loc }

type t = {
  config : Config.t;
  ii : int;
  lat : Latency.t;
  assigns : (int, entry) Hashtbl.t;
  mrt : Mrt.t;
}

let create ?(lat : Latency.t option) (config : Config.t) ~ii =
  let lat = match lat with Some l -> l | None -> Latency.make config in
  { config; ii; lat; assigns = Hashtbl.create 64; mrt = Mrt.create config ~ii }

let ii t = t.ii
let is_scheduled t v = Hashtbl.mem t.assigns v
let entry t v = Hashtbl.find_opt t.assigns v

let entry_exn t v =
  match entry t v with
  | Some e -> e
  | None -> Fmt.invalid_arg "Schedule: node %d not scheduled" v

let cycle_of t v = (entry_exn t v).cycle
let loc_of t v = (entry_exn t v).loc
let scheduled_nodes t = Hashtbl.fold (fun v _ acc -> v :: acc) t.assigns []
let num_scheduled t = Hashtbl.length t.assigns

(** Bank holding the value defined by scheduled node [v], if any. *)
let def_bank t (g : Ddg.t) v =
  match entry t v with
  | None -> None
  | Some e -> Topology.def_bank t.config (Ddg.kind g v) e.loc

(* Source bank for a [Move]'s reservation: the bank of its producer. *)
let move_src_bank t (g : Ddg.t) v =
  let operands = Ddg.operands g v in
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      match acc with Some _ -> acc | None -> def_bank t g e.src)
    None operands

let uses_of t (g : Ddg.t) v ~loc =
  let kind = Ddg.kind g v in
  let src =
    match kind with Op.Move -> move_src_bank t g v | _ -> None
  in
  Topology.uses t.config kind loc ~src

(** Earliest legal issue cycle given the scheduled predecessors. *)
let estart t (g : Ddg.t) v =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      match entry t e.src with
      | None -> acc
      | Some p ->
        max acc (p.cycle + Latency.of_edge t.lat g e - (t.ii * e.distance)))
    0 (Ddg.preds g v)

(** Latest legal issue cycle given the scheduled successors; [None] when
    no successor is scheduled. *)
let lstart t (g : Ddg.t) v =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      match entry t e.dst with
      | None -> acc
      | Some s ->
        let bound = s.cycle - Latency.of_edge t.lat g e + (t.ii * e.distance) in
        Some (match acc with None -> bound | Some a -> min a bound))
    None (Ddg.succs g v)

(* Deliberate fault injection for the differential fuzzer (hcrf_check):
   [Lax_resources] makes [can_place] ignore the reservation table, so the
   engine happily oversubscribes functional units and ports.  [Validate]
   rebuilds occupancy independently and must flag every such schedule;
   the fuzzer asserts it does.  Never set outside tests/campaigns. *)
type fault = Lax_resources

let fault : fault option ref = ref None

let can_place t g v ~cycle ~loc =
  match !fault with
  | Some Lax_resources -> true
  | None -> Mrt.can_place t.mrt (uses_of t g v ~loc) ~cycle

let place t g v ~cycle ~loc =
  if is_scheduled t v then Fmt.invalid_arg "Schedule.place: %d placed" v;
  Mrt.place t.mrt ~node:v (uses_of t g v ~loc) ~cycle;
  Hashtbl.replace t.assigns v { cycle; loc }

let unplace t v =
  if is_scheduled t v then begin
    Mrt.remove t.mrt ~node:v;
    Hashtbl.remove t.assigns v
  end

(** Nodes that must be ejected to reserve [v]'s resources at [cycle]. *)
let resource_conflicts t g v ~cycle ~loc =
  Mrt.conflicts t.mrt (uses_of t g v ~loc) ~cycle

(** Scheduled neighbours whose dependence constraints are violated by [v]
    issuing at [cycle]. *)
let dependence_violations t (g : Ddg.t) v ~cycle =
  let bad_preds =
    List.filter_map
      (fun (e : Ddg.edge) ->
        match entry t e.src with
        | Some p
          when e.src <> v
               && p.cycle + Latency.of_edge t.lat g e - (t.ii * e.distance)
                  > cycle ->
          Some e.src
        | Some _ | None -> None)
      (Ddg.preds g v)
  and bad_succs =
    List.filter_map
      (fun (e : Ddg.edge) ->
        match entry t e.dst with
        | Some s
          when e.dst <> v
               && cycle + Latency.of_edge t.lat g e - (t.ii * e.distance)
                  > s.cycle ->
          Some e.dst
        | Some _ | None -> None)
      (Ddg.succs g v)
  in
  List.sort_uniq compare (bad_preds @ bad_succs)

let max_cycle t =
  Hashtbl.fold (fun _ e acc -> max acc e.cycle) t.assigns 0

(** Number of stages of II cycles in the kernel. *)
let stage_count t = (max_cycle t / t.ii) + 1

let pp ppf t =
  let entries =
    Hashtbl.fold (fun v e acc -> (v, e) :: acc) t.assigns []
    |> List.sort (fun (_, a) (_, b) -> compare (a.cycle, a.loc) (b.cycle, b.loc))
  in
  Fmt.pf ppf "@[<v>schedule ii=%d sc=%d@," t.ii (stage_count t);
  List.iter
    (fun (v, e) ->
      Fmt.pf ppf "  n%-4d cycle %-4d (slot %-3d) %a@," v e.cycle
        (e.cycle mod t.ii) Topology.pp_loc e.loc)
    entries;
  Fmt.pf ppf "@]"

(** Rotating register allocation for modulo-scheduled lifetimes.

    In a rotating register file of R registers the register name space
    advances by one every II cycles, so (register, time) pairs form a
    single wheel of R * II positions: instance i of a value born at
    kernel cycle b with offset o occupies wheel coordinates
    [(b mod II) + o * II, + span), independent of i.  Allocation places
    one arc per lifetime on that wheel, the anchor constrained to the
    birth phase plus a multiple of II (the chosen offset).

    This is the [Register_Allocation] step of Figure 5: it turns the
    MaxLives feasibility measure into an explicit register assignment
    that the cycle-accurate executor in {!Hcrf_pipesim} replays through
    physical registers. *)

type assignment = {
  bank : Topology.bank;
  registers_used : int;     (** rotating file size R *)
  map : (int * int) list;   (** (defining node, register offset) *)
}

(** Allocate the lifetimes of one bank; [None] when [capacity] (if
    finite) is exceeded, in which case a [Regalloc_fail] event is
    reported on [trace].  Zero-span lifetimes flow through the bypass
    and receive no register. *)
val allocate_bank :
  ?trace:Hcrf_obs.Trace.t -> ii:int -> bank:Topology.bank ->
  capacity:Hcrf_machine.Cap.t -> Lifetimes.lifetime list ->
  assignment option

(** Allocate every bank of a complete schedule; [Error bank] names the
    first bank that does not fit. *)
val allocate :
  Schedule.t -> Hcrf_ir.Ddg.t ->
  (assignment list, Topology.bank) result

(** HRMS-style node ordering.

    HRMS [23] pre-orders nodes so that (a) recurrences are dealt with
    first, hardest first, and (b) when a node is scheduled, the
    neighbours already in the partial schedule lie (mostly) on one side
    of it, which keeps lifetimes short.  This implements that intent:
    recurrence SCCs in decreasing RecMII order, each preceded by the
    nodes on dependence paths connecting it to the already-ordered
    region, followed by a neighbourhood expansion that appends the
    adjacent node with minimum mobility (ALAP - ASAP slack). *)

(** ASAP and ALAP over the distance-0 (intra-iteration) subgraph, which
    is acyclic in a well-formed DDG. *)
val asap_alap : Latency.t -> Hcrf_ir.Ddg.t -> (int -> int) * (int -> int)

(** The scheduling priority order: node ids, highest priority first
    (always a permutation of the graph's nodes). *)
val compute :
  ?lat:Latency.t -> Hcrf_machine.Config.t -> Hcrf_ir.Ddg.t -> int list

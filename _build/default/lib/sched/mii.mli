(** Lower bounds on the initiation interval.

    [ResMII] assumes perfectly balanced use of the replicated resources
    (FUs and, when clustered, memory ports); [RecMII] is the classic
    maximum over dependence cycles of ceil(sum latency / sum distance),
    computed per SCC with a binary search on II and a positive-cycle
    (Floyd-Warshall) test on edge weights latency - II * distance. *)

type bounds = {
  fu : int;    (** bound from FU issue slots (non-pipelined ops count
                   their whole latency) *)
  mem : int;   (** bound from memory ports *)
  comm : int;  (** bound from inter-bank ports/buses *)
  rec_ : int;  (** bound from recurrences (1 for an acyclic graph) *)
}

val mii : bounds -> int
val pp_bounds : Format.formatter -> bounds -> unit

(** The resource components (fu, mem, comm). *)
val res_mii : Hcrf_machine.Config.t -> Hcrf_ir.Ddg.t -> int * int * int

(** RecMII of one SCC: the smallest II admitting no positive cycle. *)
val scc_rec_mii : Latency.t -> Hcrf_ir.Ddg.t -> int list -> int

val rec_mii : Latency.t -> Hcrf_ir.Ddg.t -> int

val bounds :
  ?lat:Latency.t -> Hcrf_machine.Config.t -> Hcrf_ir.Ddg.t -> bounds

(** max(1, max of all bounds); the whole computation is recorded as a
    [Phase Mii] span on [trace]. *)
val compute :
  ?trace:Hcrf_obs.Trace.t -> ?lat:Latency.t -> Hcrf_machine.Config.t ->
  Hcrf_ir.Ddg.t -> int

(** Value lifetimes and per-bank register requirements (MaxLives).

    A value occupies a register from its write-back (definition issue +
    latency; while in flight it travels the pipeline/bypass network, as
    in Rau's register-requirement model for modulo schedules) until its
    last read; a consumer at cycle c through an edge of distance d reads
    at flat cycle c + II * d.  The register requirement of a bank at
    modulo slot s is the number of simultaneously live values there,
    counting the copies belonging to overlapped iterations — the
    standard MaxLives measure.

    Loop invariants occupy one register for the whole execution of the
    loop in every bank from which they are read (§5.1); they are
    accounted as a constant addition per bank. *)

type lifetime = {
  def : int;               (** defining node *)
  bank : Topology.bank;
  start : int;             (** write-back cycle of the definition *)
  stop : int;              (** last read cycle; live over [start, stop) *)
}

val span : lifetime -> int

(** Lifetimes of all values whose definition is scheduled.  Unscheduled
    consumers do not extend a lifetime (the requirement grows
    monotonically as the schedule fills in). *)
val of_schedule : Schedule.t -> Hcrf_ir.Ddg.t -> lifetime list

(** MaxLives of [bank], plus [invariant_residents] whole-loop
    registers. *)
val pressure :
  ii:int -> bank:Topology.bank -> ?invariant_residents:int ->
  lifetime list -> int

(** Banks appearing in some lifetime. *)
val banks : lifetime list -> Topology.bank list

val pp_lifetime : Format.formatter -> lifetime -> unit

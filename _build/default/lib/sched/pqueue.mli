(** Priority list of the iterative scheduler.

    Lower priority value = scheduled earlier.  Original nodes carry
    their HRMS ordering index; nodes inserted during scheduling
    (communication, spill) are given fractional priorities adjacent to
    the operation they serve, and ejected nodes are re-queued with their
    original priority (§5.1). *)

type t

val create : unit -> t
val is_empty : t -> bool
val size : t -> int
val mem : t -> int -> bool
val push : t -> priority:float -> int -> unit

(** Lowest priority first; [None] when empty. *)
val pop : t -> int option

val remove : t -> int -> unit

(** Rotating register allocation for modulo-scheduled lifetimes.

    In a rotating register file of R registers the register name space
    advances by one every II cycles, so (register, time) pairs form a
    single wheel of R * II positions: instance i of a value born at
    kernel cycle b with offset o occupies wheel coordinates
    [(b mod II) + o * II, + span), independent of i.  Allocation is
    therefore the placement of one arc per lifetime on that wheel, with
    the arc's anchor constrained to its birth phase plus a multiple of
    II (the offset being chosen).  First-fit with the longest arcs first
    needs R close to MaxLives — the engine retries with more spilling if
    the bank capacity is exceeded.

    This is the [Register_Allocation] step of Figure 5: it turns the
    MaxLives feasibility measure into an explicit register assignment
    that the cycle-accurate executor in {!Hcrf_pipesim} replays through
    physical registers. *)

type assignment = {
  bank : Topology.bank;
  registers_used : int;  (** rotating file size R *)
  map : (int * int) list;  (** (defining node, register offset) *)
}

let cdiv a b = (a + b - 1) / b

(* Arc overlap on a circle of circumference [c]. *)
let overlaps c (s1, len1) (s2, len2) =
  let within s len x = ((x - s) mod c + c) mod c < len in
  within s1 len1 s2 || within s2 len2 s1

(** Allocate the lifetimes of one bank.  Returns [None] when [capacity]
    (if finite) is exceeded; a failure is reported on [trace]. *)
let allocate_bank ?(trace = Hcrf_obs.Trace.off) ~ii
    ~(bank : Topology.bank) ~capacity (lts : Lifetimes.lifetime list) =
  let fail () =
    if Hcrf_obs.Trace.enabled trace then
      Hcrf_obs.Trace.emit trace
        (Hcrf_obs.Event.Regalloc_fail
           { bank = Fmt.str "%a" Topology.pp_bank bank });
    None
  in
  let lts =
    List.filter
      (fun (l : Lifetimes.lifetime) ->
        Topology.equal_bank l.bank bank && Lifetimes.span l > 0)
      lts
  in
  if lts = [] then Some { bank; registers_used = 0; map = [] }
  else begin
    let maxlives = Lifetimes.pressure ~ii ~bank lts in
    let total_span =
      List.fold_left (fun acc l -> acc + Lifetimes.span l) 0 lts
    in
    let max_span =
      List.fold_left (fun acc l -> max acc (Lifetimes.span l)) 1 lts
    in
    let lower =
      max maxlives (max (cdiv max_span ii) (cdiv total_span ii))
    in
    (* longest arcs first keeps fragmentation low *)
    let arcs =
      List.map
        (fun (l : Lifetimes.lifetime) ->
          (l.Lifetimes.def, ((l.start mod ii) + ii) mod ii,
           Lifetimes.span l))
        lts
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    in
    let rec try_wheel r =
      if r > lower + 8 then None
      else begin
        let c = r * ii in
        let placed = ref [] in
        let map = ref [] in
        let place_one (def, phase, span) =
          let rec try_offset o =
            if o >= r then false
            else
              let pos = (phase + (o * ii)) mod c in
              if List.exists (overlaps c (pos, span)) !placed then
                try_offset (o + 1)
              else begin
                placed := (pos, span) :: !placed;
                map := (def, o) :: !map;
                true
              end
          in
          try_offset 0
        in
        if List.for_all place_one arcs then Some (r, List.rev !map)
        else try_wheel (r + 1)
      end
    in
    match try_wheel lower with
    | None -> fail ()
    | Some (r, map) ->
      if Hcrf_machine.Cap.fits r capacity then
        Some { bank; registers_used = r; map }
      else fail ()
  end

(** Allocate every bank of a complete schedule.  Returns the assignment
    per bank, or the first bank that does not fit. *)
let allocate (s : Schedule.t) (g : Hcrf_ir.Ddg.t) =
  let ii = Schedule.ii s in
  let lts = Lifetimes.of_schedule s g in
  let config = s.Schedule.config in
  let results =
    List.map
      (fun bank ->
        let capacity = Topology.bank_capacity config bank in
        (bank, allocate_bank ~ii ~bank ~capacity lts))
      (Lifetimes.banks lts)
  in
  let failed =
    List.filter_map
      (fun (b, r) -> match r with None -> Some b | Some _ -> None)
      results
  in
  match failed with
  | [] -> Ok (List.filter_map (fun (_, r) -> r) results)
  | b :: _ -> Error b

(** Dependence-edge latencies.

    A [True] edge waits for the producer's latency; [Anti] edges only
    require same-cycle-or-later issue (latency 0); [Output] edges
    require strictly later issue (latency 1).  Binding prefetching
    (§6.2) is modeled with [override]: selected load operations are
    scheduled with the cache-miss latency instead of the hit latency. *)

type t = {
  config : Hcrf_machine.Config.t;
  override : int -> int option;
      (** per-node latency override (binding prefetch) *)
}

val make : ?override:(int -> int option) -> Hcrf_machine.Config.t -> t

(** Latency of the value produced by node [id] of kind [kind]. *)
val of_def : t -> id:int -> kind:Hcrf_ir.Op.kind -> int

val of_edge : t -> Hcrf_ir.Ddg.t -> Hcrf_ir.Ddg.edge -> int

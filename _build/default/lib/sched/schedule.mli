(** Partial (and, eventually, complete) modulo schedules.

    An entry assigns a node an issue cycle (in the flat, non-modulo time
    axis — stage count falls out of the maximum cycle) and an execution
    location.  The reservation table is kept in sync by
    [place]/[unplace].

    [estart]/[lstart] are the classic windows derived from the
    *scheduled* neighbours: a node may issue at cycle c only if
    [c >= cycle(p) + latency(e) - II * distance(e)] for scheduled
    predecessors p, and symmetrically for scheduled successors. *)

type entry = { cycle : int; loc : Topology.loc }

type t = {
  config : Hcrf_machine.Config.t;
  ii : int;
  lat : Latency.t;
  assigns : (int, entry) Hashtbl.t;
  mrt : Mrt.t;
}

val create : ?lat:Latency.t -> Hcrf_machine.Config.t -> ii:int -> t
val ii : t -> int
val is_scheduled : t -> int -> bool
val entry : t -> int -> entry option

(** Raises [Invalid_argument] when not scheduled. *)
val entry_exn : t -> int -> entry

val cycle_of : t -> int -> int
val loc_of : t -> int -> Topology.loc
val scheduled_nodes : t -> int list
val num_scheduled : t -> int

(** Bank holding the value defined by scheduled node [v], if any. *)
val def_bank : t -> Hcrf_ir.Ddg.t -> int -> Topology.bank option

(** Source bank for a [Move]'s reservation: the bank of its (scheduled)
    producer. *)
val move_src_bank : t -> Hcrf_ir.Ddg.t -> int -> Topology.bank option

(** The resource reservations of [v] at [loc]. *)
val uses_of :
  t -> Hcrf_ir.Ddg.t -> int -> loc:Topology.loc ->
  (Topology.resource * int) list

(** Earliest legal issue cycle given the scheduled predecessors. *)
val estart : t -> Hcrf_ir.Ddg.t -> int -> int

(** Latest legal issue cycle given the scheduled successors; [None] when
    no successor is scheduled. *)
val lstart : t -> Hcrf_ir.Ddg.t -> int -> int option

(** Deliberate engine faults for differential testing.  [Lax_resources]
    makes {!can_place} ignore the reservation table entirely, so the
    engine builds resource-oversubscribed schedules that an independent
    {!Validate.check} must reject — the fuzzer's canary.  The flag is
    global and read-only during scheduling; set it only from tests and
    fuzzing campaigns, and reset it afterwards. *)
type fault = Lax_resources

val fault : fault option ref

val can_place :
  t -> Hcrf_ir.Ddg.t -> int -> cycle:int -> loc:Topology.loc -> bool

(** Raises [Invalid_argument] when already placed. *)
val place :
  t -> Hcrf_ir.Ddg.t -> int -> cycle:int -> loc:Topology.loc -> unit

val unplace : t -> int -> unit

(** Nodes that must be ejected to reserve [v]'s resources at [cycle]. *)
val resource_conflicts :
  t -> Hcrf_ir.Ddg.t -> int -> cycle:int -> loc:Topology.loc -> int list

(** Scheduled neighbours whose dependence constraints are violated by
    [v] issuing at [cycle]. *)
val dependence_violations :
  t -> Hcrf_ir.Ddg.t -> int -> cycle:int -> int list

val max_cycle : t -> int

(** Number of stages of II cycles in the kernel. *)
val stage_count : t -> int

val pp : Format.formatter -> t -> unit

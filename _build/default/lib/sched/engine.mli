(** The iterative modulo-scheduling engine (MIRS family).

    One engine drives every register-file organization: the {!Topology}
    of the configuration decides where operations may execute, which
    bank holds each value, and which communication operations connect
    banks.  The algorithm is Figure 5 of the paper: HRMS-ordered
    scheduling with force-and-eject backtracking, lazy communication
    routing with copy reuse, integrated per-bank register-pressure
    tracking with spill insertion (StoreR/LoadR between levels,
    Spill_store/Spill_load to memory, invariant demotion), all bounded
    by a Budget of [budget_ratio * |V|] attempts; exhaustion restarts at
    II + 1. *)

type options = {
  budget_ratio : int;
  max_ii : int option;  (** absolute cap on the II search (None: auto) *)
  load_override : int -> int option;
      (** per-load latency override for binding prefetching *)
  backtracking : bool;
      (** false: never force-and-eject; a placement failure discards the
          attempt and restarts with II+1, as in the non-iterative
          scheduler of [36] *)
  ordering : [ `Hrms | `Topological ];
      (** node ordering: HRMS-style (default) or plain topological *)
}

val default_options : options

type stats = {
  ejections : int;
  forcings : int;
  value_spills : int;
  invariant_spills : int;
  comm_inserted : int;
  attempts : int;
  ii_restarts : int;
}

type outcome = {
  ii : int;
  mii : int;  (** of the original graph, before inserted operations *)
  bounds : Mii.bounds;  (** of the final graph, for bound classification *)
  sc : int;
  schedule : Schedule.t;
  graph : Hcrf_ir.Ddg.t;  (** final graph with all inserted operations *)
  invariant_residents : Topology.bank -> int;
      (** whole-loop registers reserved for loop invariants, per bank *)
  seconds : float;
  stats : stats;
}

type error = [ `No_schedule of int (** last II tried *) ]

(** Schedule one loop body.  The input graph is not modified (the
    outcome's [graph] is an extended copy).  [trace] (default
    {!Hcrf_obs.Trace.off}) receives placement, ejection, spill,
    communication-insertion and phase-span events; it is deliberately
    not part of {!options} so that enabling tracing cannot perturb
    schedule-cache fingerprints. *)
val schedule :
  ?opts:options -> ?trace:Hcrf_obs.Trace.t -> Hcrf_machine.Config.t ->
  Hcrf_ir.Ddg.t -> (outcome, error) result

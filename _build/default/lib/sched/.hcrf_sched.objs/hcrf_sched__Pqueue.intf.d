lib/sched/pqueue.mli:

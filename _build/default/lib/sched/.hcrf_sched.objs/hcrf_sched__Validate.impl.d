lib/sched/validate.ml: Cap Ddg Dep Fmt Hashtbl Hcrf_ir Hcrf_machine Latency Lifetimes List Op Option Regalloc Schedule Topology

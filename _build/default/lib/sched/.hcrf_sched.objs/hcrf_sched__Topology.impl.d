lib/sched/topology.ml: Cap Config Fmt Hcrf_ir Hcrf_machine Latencies List Op Rf

lib/sched/mii.ml: Array Cap Config Ddg Fmt Hashtbl Hcrf_ir Hcrf_machine Hcrf_obs Latencies Latency List Rf Scc

lib/sched/lifetimes.ml: Array Ddg Fmt Hcrf_ir Latency List Op Schedule Topology

lib/sched/latency.ml: Config Ddg Dep Hcrf_ir Hcrf_machine

lib/sched/engine.mli: Hcrf_ir Hcrf_machine Hcrf_obs Mii Schedule Topology

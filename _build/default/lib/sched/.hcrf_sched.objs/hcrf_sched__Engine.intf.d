lib/sched/engine.mli: Hcrf_ir Hcrf_machine Mii Schedule Topology

lib/sched/order.ml: Ddg Hashtbl Hcrf_ir Latency List Mii Queue Scc

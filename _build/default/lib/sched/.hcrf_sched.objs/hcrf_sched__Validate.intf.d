lib/sched/validate.mli: Format Hcrf_ir Schedule Topology

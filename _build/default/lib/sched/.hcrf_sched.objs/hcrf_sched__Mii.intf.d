lib/sched/mii.mli: Format Hcrf_ir Hcrf_machine Latency

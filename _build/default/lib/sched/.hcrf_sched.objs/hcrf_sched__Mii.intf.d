lib/sched/mii.mli: Format Hcrf_ir Hcrf_machine Hcrf_obs Latency

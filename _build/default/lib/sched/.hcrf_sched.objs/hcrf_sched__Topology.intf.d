lib/sched/topology.mli: Format Hcrf_ir Hcrf_machine

lib/sched/pqueue.ml: Set

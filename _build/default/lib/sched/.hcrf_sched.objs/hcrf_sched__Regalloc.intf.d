lib/sched/regalloc.mli: Hcrf_ir Hcrf_machine Hcrf_obs Lifetimes Schedule Topology

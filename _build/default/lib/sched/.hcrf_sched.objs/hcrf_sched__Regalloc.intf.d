lib/sched/regalloc.mli: Hcrf_ir Hcrf_machine Lifetimes Schedule Topology

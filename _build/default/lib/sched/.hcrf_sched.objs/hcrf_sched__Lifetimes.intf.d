lib/sched/lifetimes.mli: Format Hcrf_ir Schedule Topology

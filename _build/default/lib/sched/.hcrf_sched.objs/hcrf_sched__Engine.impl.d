lib/sched/engine.ml: Cap Config Ddg Dep Hashtbl Hcrf_ir Hcrf_machine Hcrf_obs Latency Lazy Lifetimes List Logs Mii Mrt Op Option Order Pqueue Regalloc Rf Schedule Topology Unix

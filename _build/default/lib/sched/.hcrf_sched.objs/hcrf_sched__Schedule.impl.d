lib/sched/schedule.ml: Config Ddg Fmt Hashtbl Hcrf_ir Hcrf_machine Latency List Mrt Op Topology

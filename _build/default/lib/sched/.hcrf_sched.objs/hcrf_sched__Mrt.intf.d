lib/sched/mrt.mli: Hcrf_machine Topology

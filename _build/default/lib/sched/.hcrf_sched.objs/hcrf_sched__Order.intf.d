lib/sched/order.mli: Hcrf_ir Hcrf_machine Latency

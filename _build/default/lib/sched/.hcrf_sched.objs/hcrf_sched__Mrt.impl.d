lib/sched/mrt.ml: Array Cap Config Fmt Hashtbl Hcrf_machine List Topology

lib/sched/schedule.mli: Format Hashtbl Hcrf_ir Hcrf_machine Latency Mrt Topology

lib/sched/latency.mli: Hcrf_ir Hcrf_machine

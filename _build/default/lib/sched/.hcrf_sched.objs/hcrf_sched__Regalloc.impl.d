lib/sched/regalloc.ml: Fmt Hcrf_ir Hcrf_machine Hcrf_obs Lifetimes List Schedule Topology

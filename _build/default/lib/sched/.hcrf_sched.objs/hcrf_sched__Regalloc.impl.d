lib/sched/regalloc.ml: Hcrf_ir Hcrf_machine Lifetimes List Schedule Topology

(** Operational semantics of the register-file organizations.

    This module answers, for a given {!Hcrf_machine.Config.t}: where can
    an operation execute, which bank receives the value it defines, from
    which bank does it read its operands, which hardware resources does
    it occupy, and which communication operations are needed to move a
    value between two banks.

    Conventions:
    - in a monolithic RF everything executes in the single cluster 0 and
      every value lives in bank [Local 0];
    - in a clustered RF ([xCy]) both FUs and memory ports are
      distributed: all operations execute in some cluster and define
      into its bank; cross-cluster flow needs a [Move];
    - in a hierarchical RF ([xCy-Sz]) compute and LoadR/StoreR
      operations execute in a cluster; memory operations execute
      globally on the memory ports and exchange values with the [Shared]
      bank. *)

type loc = Global | Cluster of int

val equal_loc : loc -> loc -> bool
val pp_loc : Format.formatter -> loc -> unit

type bank = Local of int | Shared

val equal_bank : bank -> bank -> bool
val pp_bank : Format.formatter -> bank -> unit

type resource =
  | Fu of int   (** FU issue slots of cluster i *)
  | Mem of int  (** memory ports (per cluster when clustered, else pool 0) *)
  | Lp of int   (** input ports of bank i (LoadR / incoming move) *)
  | Sp of int   (** output ports of bank i (StoreR / outgoing move) *)
  | Bus         (** inter-cluster buses (clustered RF) *)

val pp_resource : Format.formatter -> resource -> unit

(** Available units of a resource. *)
val units : Hcrf_machine.Config.t -> resource -> Hcrf_machine.Cap.t

(** All resources that exist in the configuration (for reservation-table
    sizing and validation). *)
val all_resources : Hcrf_machine.Config.t -> resource list

(** Candidate execution locations for an operation kind (empty when the
    kind does not exist in the organization, e.g. LoadR in a flat
    clustered RF). *)
val exec_locs : Hcrf_machine.Config.t -> Hcrf_ir.Op.kind -> loc list

(** Bank receiving the value defined by the kind executed at [loc];
    [None] when the operation defines no value. *)
val def_bank :
  Hcrf_machine.Config.t -> Hcrf_ir.Op.kind -> loc -> bank option

(** Bank an operation reads its register operands from.  A [Move] is
    special: it reads whichever local bank its producer is in. *)
val read_bank : Hcrf_machine.Config.t -> Hcrf_ir.Op.kind -> loc -> bank

(** Resources occupied by executing the kind at [loc], as (resource,
    consecutive cycles from issue) pairs.  [src] is the operand's bank —
    required for [Move], which occupies the source bank's output
    port. *)
val uses :
  Hcrf_machine.Config.t -> Hcrf_ir.Op.kind -> loc -> src:bank option ->
  (resource * int) list

val bank_capacity : Hcrf_machine.Config.t -> bank -> Hcrf_machine.Cap.t

(** Communication operations needed to make a value defined in
    [src_bank] readable from [dst_bank]: a copy chain, empty when the
    banks match. *)
val comm_path :
  Hcrf_machine.Config.t -> src_bank:bank -> dst_bank:bank ->
  (Hcrf_ir.Op.kind * loc) list

(** Independent checker for complete schedules.

    Verifies from scratch — without trusting any incremental state of
    the engine — that a schedule is a correct software pipeline for its
    graph and machine: every node placed at a legal location, every
    dependence satisfied modulo II, no resource oversubscribed at any
    slot, every register operand read from the bank it was defined in,
    every bank within its MaxLives capacity, and an explicit rotating
    register allocation existing for every bank. *)

type issue =
  | Unscheduled of int
  | Bad_location of int * Topology.loc  (** node, illegal location *)
  | Dependence_violated of Hcrf_ir.Ddg.edge
  | Resource_oversubscribed of Topology.resource * int * int
      (** resource, modulo slot, units reserved there *)
  | Bank_mismatch of Hcrf_ir.Ddg.edge * Topology.bank * Topology.bank
      (** operand edge, bank it was defined in, bank it was read from *)
  | Over_capacity of Topology.bank * int * int (** used, capacity *)
  | Allocation_failed of Topology.bank

val pp_issue : Format.formatter -> issue -> unit

(** All problems found ([] for a valid schedule).
    [invariant_residents] gives the per-bank number of whole-loop
    registers reserved for loop invariants. *)
val check :
  ?invariant_residents:(Topology.bank -> int) -> Schedule.t ->
  Hcrf_ir.Ddg.t -> issue list

val is_valid :
  ?invariant_residents:(Topology.bank -> int) -> Schedule.t ->
  Hcrf_ir.Ddg.t -> bool

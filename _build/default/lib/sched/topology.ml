(** Operational semantics of the register-file organizations.

    This module answers, for a given {!Hcrf_machine.Config.t}: where can an
    operation execute, which bank receives the value it defines, from which
    bank does it read its operands, which hardware resources does it
    occupy, and which communication operations are needed to move a value
    between two banks.

    Conventions:
    - In a monolithic RF everything executes in the single cluster 0 and
      every value lives in bank [Local 0].
    - In a clustered RF ([xCy]) both FUs and memory ports are distributed:
      all operations execute in some cluster and define into its bank;
      cross-cluster flow needs a [Move].
    - In a hierarchical RF ([xCy-Sz]) compute and LoadR/StoreR operations
      execute in a cluster; memory operations execute globally on the
      memory ports and exchange values with the [Shared] bank. *)

open Hcrf_ir
open Hcrf_machine

type loc = Global | Cluster of int

let equal_loc a b =
  match (a, b) with
  | Global, Global -> true
  | Cluster i, Cluster j -> i = j
  | Global, Cluster _ | Cluster _, Global -> false

let pp_loc ppf = function
  | Global -> Fmt.string ppf "global"
  | Cluster i -> Fmt.pf ppf "c%d" i

type bank = Local of int | Shared

let equal_bank a b =
  match (a, b) with
  | Shared, Shared -> true
  | Local i, Local j -> i = j
  | Shared, Local _ | Local _, Shared -> false

let pp_bank ppf = function
  | Shared -> Fmt.string ppf "S"
  | Local i -> Fmt.pf ppf "L%d" i

type resource =
  | Fu of int   (** FU issue slots of cluster i *)
  | Mem of int  (** memory ports (per cluster when clustered, else pool 0) *)
  | Lp of int   (** input ports of bank i (LoadR / incoming move) *)
  | Sp of int   (** output ports of bank i (StoreR / outgoing move) *)
  | Bus         (** inter-cluster buses (clustered RF) *)

let pp_resource ppf = function
  | Fu i -> Fmt.pf ppf "fu%d" i
  | Mem i -> Fmt.pf ppf "mem%d" i
  | Lp i -> Fmt.pf ppf "lp%d" i
  | Sp i -> Fmt.pf ppf "sp%d" i
  | Bus -> Fmt.string ppf "bus"

(** Available units of a resource. *)
let units (c : Config.t) = function
  | Fu _ -> Cap.Finite (Config.fus_per_cluster c)
  | Mem _ -> Cap.Finite (Config.mem_ports_per_cluster c)
  | Lp _ -> Rf.lp c.rf
  | Sp _ -> Rf.sp c.rf
  | Bus -> (
    match c.rf with
    | Rf.Clustered { buses; _ } -> buses
    | Rf.Monolithic _ | Rf.Hierarchical _ -> Cap.Inf)

(** All resources that exist in the configuration (for validation and
    reservation-table sizing). *)
let all_resources (c : Config.t) =
  let x = Config.clusters c in
  let clusters f = List.init x f in
  match c.rf with
  | Rf.Monolithic _ -> [ Fu 0; Mem 0 ]
  | Rf.Clustered _ ->
    clusters (fun i -> Fu i)
    @ clusters (fun i -> Mem i)
    @ clusters (fun i -> Lp i)
    @ clusters (fun i -> Sp i)
    @ [ Bus ]
  | Rf.Hierarchical _ ->
    clusters (fun i -> Fu i)
    @ [ Mem 0 ]
    @ clusters (fun i -> Lp i)
    @ clusters (fun i -> Sp i)

(** Candidate execution locations for an operation kind. *)
let exec_locs (c : Config.t) (k : Op.kind) : loc list =
  let x = Config.clusters c in
  let clusters () = List.init x (fun i -> Cluster i) in
  match c.rf with
  | Rf.Monolithic _ -> [ Cluster 0 ]
  | Rf.Clustered _ -> (
    match k with
    | Load_r | Store_r -> [] (* no hierarchy to move through *)
    | Fadd | Fmul | Fdiv | Fsqrt | Load | Store | Move | Spill_load
    | Spill_store -> clusters ())
  | Rf.Hierarchical _ -> (
    match k with
    | Fadd | Fmul | Fdiv | Fsqrt | Move | Load_r | Store_r -> clusters ()
    | Load | Store | Spill_load | Spill_store -> [ Global ])

(** Bank receiving the value defined by kind [k] executed at [loc];
    [None] when the op defines no value. *)
let def_bank (c : Config.t) (k : Op.kind) (loc : loc) : bank option =
  if not (Op.defines_value k) then None
  else
    match (c.rf, k, loc) with
    | Rf.Monolithic _, _, _ -> Some (Local 0)
    | Rf.Clustered _, _, Cluster i -> Some (Local i)
    | Rf.Clustered _, _, Global -> invalid_arg "def_bank: global in clustered"
    | Rf.Hierarchical _, (Load | Spill_load), Global -> Some Shared
    | Rf.Hierarchical _, Store_r, Cluster _ -> Some Shared
    | Rf.Hierarchical _, (Fadd | Fmul | Fdiv | Fsqrt | Move | Load_r),
      Cluster i ->
      Some (Local i)
    | Rf.Hierarchical _, _, _ ->
      Fmt.invalid_arg "def_bank: %s at %a in hierarchical RF"
        (Op.kind_name k) pp_loc loc

(** Bank an operation reads its operands from. *)
let read_bank (c : Config.t) (k : Op.kind) (loc : loc) : bank =
  match (c.rf, k, loc) with
  | Rf.Monolithic _, _, _ -> Local 0
  | Rf.Clustered _, _, Cluster i -> Local i
  | Rf.Clustered _, _, Global -> invalid_arg "read_bank: global in clustered"
  | Rf.Hierarchical _, (Store | Spill_store | Load_r), _ -> Shared
  | Rf.Hierarchical _, (Fadd | Fmul | Fdiv | Fsqrt | Store_r | Move),
    Cluster i ->
    Local i
  | Rf.Hierarchical _, (Load | Spill_load), _ ->
    Shared (* loads read address regs, not modeled; value side is Shared *)
  | Rf.Hierarchical _, _, _ ->
    Fmt.invalid_arg "read_bank: %s at %a in hierarchical RF"
      (Op.kind_name k) pp_loc loc

(* Load_r reads the shared bank even though it executes in a cluster:
   its operand must live in [Shared]. *)

(** Resources occupied by executing [k] at [loc].  [src] is the bank the
    (single) operand lives in — needed for [Move], which occupies the
    output port of the source bank.  Each entry is (resource, number of
    consecutive cycles occupied starting at the issue cycle). *)
let uses (c : Config.t) (k : Op.kind) (loc : loc) ~(src : bank option) :
    (resource * int) list =
  let dur = if Latencies.pipelined k then 1 else Config.op_latency c k in
  let cluster_of = function
    | Cluster i -> i
    | Global -> 0
  in
  match k with
  | Fadd | Fmul | Fdiv | Fsqrt -> [ (Fu (cluster_of loc), dur) ]
  | Load | Store | Spill_load | Spill_store ->
    [ (Mem (cluster_of loc), 1) ]
  | Load_r -> [ (Lp (cluster_of loc), 1) ]
  | Store_r -> [ (Sp (cluster_of loc), 1) ]
  | Move -> (
    let dst = cluster_of loc in
    match src with
    | Some (Local s) -> [ (Sp s, 1); (Bus, 1); (Lp dst, 1) ]
    | Some Shared | None ->
      invalid_arg "Topology.uses: Move needs a local source bank")

(** Capacity of a bank. *)
let bank_capacity (c : Config.t) = function
  | Local _ -> Rf.local_regs c.rf
  | Shared -> Rf.shared_regs c.rf

(** Communication operations needed to make a value defined in [src_bank]
    readable from [dst_bank]: a list of (op kind, execution loc) forming a
    copy chain.  Empty when the banks match. *)
let comm_path (c : Config.t) ~(src_bank : bank) ~(dst_bank : bank) :
    (Op.kind * loc) list =
  if equal_bank src_bank dst_bank then []
  else
    match (c.rf, src_bank, dst_bank) with
    | Rf.Monolithic _, _, _ -> []
    | Rf.Clustered _, Local _, Local d -> [ (Op.Move, Cluster d) ]
      (* the Move occupies Sp s via ~src at reservation time *)
    | Rf.Clustered _, _, _ ->
      invalid_arg "comm_path: shared bank in clustered RF"
    | Rf.Hierarchical _, Local s, Shared -> [ (Op.Store_r, Cluster s) ]
    | Rf.Hierarchical _, Shared, Local d -> [ (Op.Load_r, Cluster d) ]
    | Rf.Hierarchical _, Local s, Local d ->
      [ (Op.Store_r, Cluster s); (Op.Load_r, Cluster d) ]
    | Rf.Hierarchical _, Shared, Shared -> []

(** Value lifetimes and per-bank register requirements (MaxLives).

    A value occupies a register from its write-back (definition issue +
    latency; while in flight it travels the pipeline/bypass network, as
    in Rau's register-requirement model for modulo schedules) until its
    last read; a consumer at cycle c through an edge of distance d reads
    at flat cycle c + II * d.  The register requirement of a bank at
    modulo slot s is the number of simultaneously live values there,
    counting the copies belonging to overlapped iterations — the
    standard MaxLives measure for modulo schedules.

    Loop invariants occupy one register for the whole execution of the
    loop in every bank from which they are read (§5.1); they are accounted
    as a constant addition per bank. *)

open Hcrf_ir

type lifetime = {
  def : int;               (** defining node *)
  bank : Topology.bank;
  start : int;             (** write-back cycle of the definition *)
  stop : int;              (** last read cycle; live over [start, stop) *)
}

let span l = l.stop - l.start

(** Lifetimes of all values whose definition is scheduled.  Unscheduled
    consumers do not extend a lifetime (the requirement grows
    monotonically as the schedule fills in). *)
let of_schedule (s : Schedule.t) (g : Ddg.t) : lifetime list =
  let ii = Schedule.ii s in
  List.filter_map
    (fun v ->
      if not (Op.defines_value (Ddg.kind g v)) then None
      else
        match Schedule.entry s v with
        | None -> None
        | Some e ->
          let bank =
            match Topology.def_bank s.Schedule.config (Ddg.kind g v) e.loc with
            | Some b -> b
            | None -> assert false
          in
          let birth =
            e.cycle
            + Latency.of_def s.Schedule.lat ~id:v ~kind:(Ddg.kind g v)
          in
          let stop =
            List.fold_left
              (fun acc (edge : Ddg.edge) ->
                match Schedule.entry s edge.dst with
                | None -> acc
                | Some c -> max acc (c.cycle + (ii * edge.distance)))
              birth (Ddg.consumers g v)
          in
          Some { def = v; bank; start = birth; stop })
    (Ddg.nodes g)

(** Register requirement of [bank]: MaxLives of the lifetimes living
    there, plus [invariant_residents] whole-loop registers. *)
let pressure ~ii ~(bank : Topology.bank) ?(invariant_residents = 0)
    (lts : lifetime list) =
  let req = Array.make ii 0 in
  List.iter
    (fun l ->
      if Topology.equal_bank l.bank bank then begin
        let sp = span l in
        if sp > 0 then begin
          let full = sp / ii and rem = sp mod ii in
          if full > 0 then
            Array.iteri (fun i c -> req.(i) <- c + full) req;
          let s0 = ((l.start mod ii) + ii) mod ii in
          for k = 0 to rem - 1 do
            let slot = (s0 + k) mod ii in
            req.(slot) <- req.(slot) + 1
          done
        end
      end)
    lts;
  Array.fold_left max 0 req + invariant_residents

(** All banks that appear in some lifetime, for iteration. *)
let banks lts =
  List.sort_uniq compare (List.map (fun l -> l.bank) lts)

let pp_lifetime ppf l =
  Fmt.pf ppf "n%d:%a[%d,%d)" l.def Topology.pp_bank l.bank l.start l.stop

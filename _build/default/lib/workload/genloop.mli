(** Synthetic generator of software-pipelineable innermost loops.

    The paper's workbench is the 1258 innermost loops of the Perfect
    Club that survive IF-conversion (§2.1).  This generator produces
    dependence graphs with the same *shape*: FP adds/multiplies (rarely
    divides and square roots), loads and stores wired as mostly-forward
    expression DAGs with deep chains plus occasional distant operand
    picks (register pressure), a controlled fraction of recurrences
    (some carried through memory, which is what makes the hierarchy's
    memory latency visible in RecMII), loop invariants, aliasing-
    consistent memory streams with ordering dependences, and log-normal
    trip/entry counts.  Default parameters are calibrated against the
    paper's reported aggregates (Figure 1 IPC, Table 1 shares). *)

type params = {
  min_ops : int;
  max_ops : int;
  size_mu : float;
  size_sigma : float;
  mem_fraction : float;
  store_fraction : float;
  div_fraction : float;
  sqrt_fraction : float;
  fanin2_prob : float;
  far_pick_prob : float;
  recurrence_prob : float;
  max_recurrences : int;
  rec_min_len : int;
  rec_max_len : int;
  rec_max_distance : int;
  mem_rec_fraction : float;
  invariant_max : int;
  trip_mu : float;
  trip_sigma : float;
  entry_mu : float;
  entry_sigma : float;
}

val default_params : params

(** Generate one loop; [index] individualizes the name and the memory
    placement. *)
val generate : ?params:params -> rng:Rng.t -> index:int -> unit ->
  Hcrf_ir.Loop.t

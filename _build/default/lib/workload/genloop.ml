(** Synthetic generator of software-pipelineable innermost loops.

    The paper's workbench is the 1258 innermost loops of the Perfect Club
    that survive IF-conversion (§2.1).  We cannot ship that proprietary
    Fortran pipeline, so we generate dependence graphs with the same
    *shape*: a mix of FP adds/multiplies (rarely divides and square
    roots), loads and stores wired as mostly-forward expression DAGs, a
    controlled fraction of loops carrying first-order recurrences of a
    few operations, a few loop invariants, and log-normal trip counts and
    entry counts.  The default parameters are calibrated (see
    bench/main.ml, experiment "calibration") so that under the baseline
    S128 configuration the bound classification, the achieved IPC and the
    register pressure reproduce the distributions the paper reports
    (Figure 1, Table 1). *)

open Hcrf_ir

type params = {
  min_ops : int;
  max_ops : int;
  size_mu : float;        (** log-normal body size *)
  size_sigma : float;
  mem_fraction : float;   (** memory ops / all ops *)
  store_fraction : float; (** stores / memory ops *)
  div_fraction : float;   (** divides / compute ops *)
  sqrt_fraction : float;
  fanin2_prob : float;    (** compute op reads two values (vs one) *)
  far_pick_prob : float;
      (** probability an operand is drawn uniformly from all earlier
          values instead of with the recency bias — long def-use
          distances are what creates register pressure *)
  recurrence_prob : float;(** loop carries at least one recurrence *)
  max_recurrences : int;
  rec_min_len : int;      (** compute ops in a recurrence circuit *)
  rec_max_len : int;
  rec_max_distance : int;
  mem_rec_fraction : float;
      (** fraction of recurrences carried through memory (x[i] depends
          on x[i-d] via a store/load pair), which is what makes the
          memory latency visible in RecMII *)
  invariant_max : int;    (** up to this many loop invariants *)
  trip_mu : float;        (** log-normal iteration count *)
  trip_sigma : float;
  entry_mu : float;       (** log-normal times-entered count *)
  entry_sigma : float;
}

let default_params =
  {
    min_ops = 4;
    max_ops = 120;
    size_mu = 3.6;
    size_sigma = 0.7;
    mem_fraction = 0.40;
    store_fraction = 0.30;
    div_fraction = 0.015;
    sqrt_fraction = 0.008;
    fanin2_prob = 0.7;
    far_pick_prob = 0.25;
    recurrence_prob = 0.33;
    max_recurrences = 2;
    rec_min_len = 1;
    rec_max_len = 2;
    rec_max_distance = 3;
    mem_rec_fraction = 0.45;
    invariant_max = 3;
    trip_mu = 7.3;
    trip_sigma = 1.0;
    entry_mu = 6.2;
    entry_sigma = 1.0;
  }

let clip lo hi x = max lo (min hi x)

let compute_kind rng (p : params) =
  let x = Rng.float rng in
  if x < p.div_fraction then Op.Fdiv
  else if x < p.div_fraction +. p.sqrt_fraction then Op.Fsqrt
  else if Rng.bool rng 0.5 then Op.Fadd
  else Op.Fmul

(* Pick a producer from [pool] with a geometric bias towards the most
   recent entries, which builds deep chain-like graphs (values consumed
   right after they are produced).  With [far_prob], pick uniformly
   instead: a shallow value read by a deep consumer lives for many
   cycles, and these distant picks are what creates register
   pressure. *)
let pick_recent ?(far_prob = 0.) rng pool =
  match pool with
  | [] -> None
  | _ ->
    let n = List.length pool in
    let idx =
      if far_prob > 0. && Rng.bool rng far_prob then Rng.int rng n
      else
        let rec geo i =
          if i >= n - 1 || Rng.bool rng 0.5 then i else geo (i + 1)
        in
        geo 0
    in
    Some (List.nth pool idx)

(** Generate one loop.  [index] individualizes the name and the memory
    placement. *)
let generate ?(params = default_params) ~rng ~index () =
  let p = params in
  let name = Fmt.str "synth%04d" index in
  let g = Ddg.create ~name () in
  let flow ?(d = 0) a b = Ddg.add_edge g ~distance:d ~dep:Dep.True a b in
  let size =
    clip p.min_ops p.max_ops
      (int_of_float (Rng.log_normal rng ~mu:p.size_mu ~sigma:p.size_sigma))
  in
  let n_mem =
    clip 1 (size - 1)
      (int_of_float (Float.round (p.mem_fraction *. float_of_int size)))
  in
  let n_stores =
    clip 0 (n_mem - 1)
      (int_of_float (Float.round (p.store_fraction *. float_of_int n_mem)))
  in
  let n_loads = n_mem - n_stores in
  let n_compute = max 1 (size - n_mem) in
  (* loads are the sources *)
  let loads = List.init n_loads (fun _ -> Ddg.add_node g Op.Load) in
  (* recurrence circuits first: chains of compute ops closed by a
     loop-carried edge, either directly (accumulators) or through a
     store/load pair (x[i] = f(x[i-d]) in memory) *)
  let n_recs =
    if Rng.bool rng p.recurrence_prob then Rng.range rng 1 p.max_recurrences
    else 0
  in
  let rec_nodes = ref [] in
  let n_rec_ops = ref 0 in
  let stores = ref [] in
  let stores_budget = ref n_stores in
  for _ = 1 to n_recs do
    let len =
      min (Rng.range rng p.rec_min_len p.rec_max_len)
        (max 1 (n_compute - !n_rec_ops))
    in
    if len >= 1 && !n_rec_ops + len <= n_compute then begin
      let chain =
        List.init len (fun _ ->
            let k = if Rng.bool rng 0.5 then Op.Fadd else Op.Fmul in
            Ddg.add_node g k)
      in
      let rec link = function
        | a :: (b :: _ as rest) ->
          flow a b;
          link rest
        | [ _ ] | [] -> ()
      in
      link chain;
      let head = List.hd chain and tail = List.hd (List.rev chain) in
      let d = Rng.range rng 1 p.rec_max_distance in
      let through_memory =
        Rng.bool rng p.mem_rec_fraction && loads <> [] && !stores_budget > 0
      in
      if through_memory then begin
        (* load feeds the chain, the chain is stored, and the store
           feeds the load of a later iteration through memory *)
        let l =
          match pick_recent rng loads with Some l -> l | None -> assert false
        in
        let st = Ddg.add_node g Op.Store in
        decr stores_budget;
        stores := st :: !stores;
        flow l head;
        flow tail st;
        flow ~d st l
      end
      else begin
        flow ~d tail head;
        (* feed the chain head from a load if one exists *)
        match pick_recent rng loads with
        | Some l -> flow l head
        | None -> ()
      end;
      rec_nodes := !rec_nodes @ chain;
      n_rec_ops := !n_rec_ops + len
    end
  done;
  let n_stores = !stores_budget in
  (* remaining compute ops form a forward DAG over everything produced
     so far *)
  let pool = ref (List.rev loads @ List.rev !rec_nodes) in
  (* pool is kept most-recent-first for the recency bias *)
  let computes = ref !rec_nodes in
  for _ = !n_rec_ops + 1 to n_compute do
    let k = compute_kind rng p in
    let v = Ddg.add_node g k in
    (* The first operand is recency-biased: it forms the deep dependence
       chains.  The second is a "far" pick with probability
       [far_pick_prob]: mostly a load (array values are reused all over
       a numerical loop body — these long lifetimes are what the shared
       bank of a hierarchical RF absorbs), sometimes any earlier value
       (a long-lived temporary). *)
    (match pick_recent rng !pool with
    | Some src -> flow src v
    | None -> ());
    if Rng.bool rng p.fanin2_prob then (
      let src =
        if Rng.bool rng p.far_pick_prob then
          if Rng.bool rng 0.4 && loads <> [] then
            Some (List.nth loads (Rng.int rng (List.length loads)))
          else pick_recent ~far_prob:1.0 rng !pool
        else pick_recent rng !pool
      in
      match src with
      | Some src -> flow src v
      | None -> ());
    pool := v :: !pool;
    computes := v :: !computes
  done;
  (* remaining stores consume values, preferring ones nothing else
     reads yet *)
  for _ = 1 to n_stores do
    let sinks =
      List.filter (fun v -> Ddg.consumers g v = []) !computes
    in
    let src =
      match pick_recent rng sinks with
      | Some v -> Some v
      | None -> pick_recent rng !computes
    in
    match src with
    | Some v ->
      let st = Ddg.add_node g Op.Store in
      flow v st;
      stores := st :: !stores
    | None -> ()
  done;
  (* loop invariants read by a few compute ops *)
  let n_inv = Rng.int rng (p.invariant_max + 1) in
  for _ = 1 to n_inv do
    match pick_recent rng !computes with
    | Some c -> ignore (Ddg.add_invariant g ~consumers:[ c ])
    | None -> ()
  done;
  (* Memory streams: distinct arrays per loop region, mostly unit
     stride, some shared-array reuse.  Reuse copies the exact (base,
     stride) of the array's first reference so that aliasing is
     entirely within-iteration, and ordering dependences are added for
     every same-address load/store and store/store pair (the dependence
     analysis a real front end would provide). *)
  let region = 64 * index in
  let arrays = ref [] in (* (base, stride) of each array, most recent first *)
  let mk_stream op =
    let base, stride =
      if Rng.bool rng 0.6 && !arrays <> [] then
        List.nth !arrays (Rng.int rng (List.length !arrays))
      else begin
        let k = region + List.length !arrays in
        (* stagger bases so distinct arrays do not alias to the same
           cache set (power-of-two-aligned bases would all map to set 0) *)
        let base = (k * (1 lsl 16)) + (k * 1056) in
        let stride =
          Rng.choose rng [ (0.86, 8); (0.07, 16); (0.06, 64); (0.01, 1024) ]
        in
        arrays := !arrays @ [ (base, stride) ];
        (base, stride)
      end
    in
    { Loop.op; base; stride }
  in
  let streams = List.map mk_stream (loads @ List.rev !stores) in
  (* memory-ordering dependences between same-address references *)
  let is_store v = Op.equal_kind (Ddg.kind g v) Op.Store in
  let rec order_pairs = function
    | [] -> ()
    | (s : Loop.stream) :: rest ->
      List.iter
        (fun (s' : Loop.stream) ->
          if s'.Loop.base = s.Loop.base && s'.Loop.stride = s.Loop.stride
          then
            match (is_store s.Loop.op, is_store s'.Loop.op) with
            | false, true ->
              (* write after read, same iteration *)
              Ddg.add_edge g ~distance:0 ~dep:Dep.Anti s.Loop.op s'.Loop.op
            | true, true ->
              Ddg.add_edge g ~distance:0 ~dep:Dep.Output s.Loop.op s'.Loop.op
            | true, false ->
              (* a later load of a just-written location reads through
                 memory: a true memory dependence *)
              Ddg.add_edge g ~distance:0 ~dep:Dep.True s.Loop.op s'.Loop.op
            | false, false -> ())
        rest;
      order_pairs rest
  in
  order_pairs streams;
  let trip =
    clip 16 30000
      (int_of_float (Rng.log_normal rng ~mu:p.trip_mu ~sigma:p.trip_sigma))
  in
  let entries =
    clip 1 20000
      (int_of_float (Rng.log_normal rng ~mu:p.entry_mu ~sigma:p.entry_sigma))
  in
  Loop.make ~trip_count:trip ~entries ~streams g

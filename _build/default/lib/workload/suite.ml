(** The workbench: a deterministic suite standing in for the 1258
    software-pipelineable Perfect Club loops of §2.1. *)

let paper_loop_count = 1258
let default_seed = 2003

(** Generate the suite.  Each loop gets an independent RNG derived from
    the seed, so subsets are stable: loop [i] is identical whatever [n]
    is. *)
let generate ?(seed = default_seed) ?(n = paper_loop_count)
    ?(params = Genloop.default_params) () =
  let root = Rng.create ~seed in
  List.init n (fun index ->
      let rng = Rng.create ~seed:(seed + (index * 7919)) in
      ignore (Rng.next_int64 root);
      Genloop.generate ~params ~rng ~index ())

(** The full paper-sized workbench. *)
let full () = generate ()

(** A small deterministic subset for unit tests and quick runs. *)
let small ?(n = 60) () = generate ~n ()

(** The named kernels, as a list of loops (sanity anchors). *)
let kernels () = List.map (fun (_, f) -> f ()) Kernels.all

lib/workload/kernels.mli: Hcrf_ir

lib/workload/kernels.ml: Ddg Dep Fmt Hcrf_ir List Loop Op

lib/workload/suite.mli: Genloop Hcrf_ir

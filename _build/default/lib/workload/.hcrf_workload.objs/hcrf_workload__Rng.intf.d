lib/workload/rng.mli:

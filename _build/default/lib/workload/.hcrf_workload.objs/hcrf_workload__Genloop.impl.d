lib/workload/genloop.ml: Ddg Dep Float Fmt Hcrf_ir List Loop Op Rng

lib/workload/genloop.mli: Hcrf_ir Rng

lib/workload/suite.ml: Genloop Kernels List Rng

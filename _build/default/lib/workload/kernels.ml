(** Hand-written dependence graphs of classic numerical kernels.

    These are the kind of innermost loops the Perfect Club workbench is
    made of; they are used by the examples, the unit tests and as sanity
    anchors for the synthetic suite.  Addresses in the memory streams are
    double-precision (8-byte) elements; distinct arrays are placed 1 MiB
    apart. *)

open Hcrf_ir

let array_base k = (k * (1 lsl 20)) + (k * 1056)

(* builder helpers *)
let flow ?(d = 0) g a b = Ddg.add_edge g ~distance:d ~dep:Dep.True a b

let stream ~op ~array ?(stride = 8) () =
  { Loop.op; base = array_base array; stride }

(** y[i] = a*x[i] + y[i] — the canonical vector update. *)
let daxpy () =
  let g = Ddg.create ~name:"daxpy" () in
  let lx = Ddg.add_node g Op.Load in
  let ly = Ddg.add_node g Op.Load in
  let m = Ddg.add_node g Op.Fmul in
  let a = Ddg.add_node g Op.Fadd in
  let st = Ddg.add_node g Op.Store in
  flow g lx m;
  ignore (Ddg.add_invariant g ~consumers:[ m ]);
  flow g m a;
  flow g ly a;
  flow g a st;
  Ddg.add_edge g ~distance:0 ~dep:Dep.Anti ly st;
  Loop.make ~trip_count:1000 ~entries:50
    ~streams:
      [ stream ~op:lx ~array:0 (); stream ~op:ly ~array:1 ();
        stream ~op:st ~array:1 () ]
    g

(** s += x[i]*y[i] — dot product; the accumulation is a distance-1
    recurrence through the add. *)
let dot () =
  let g = Ddg.create ~name:"dot" () in
  let lx = Ddg.add_node g Op.Load in
  let ly = Ddg.add_node g Op.Load in
  let m = Ddg.add_node g Op.Fmul in
  let a = Ddg.add_node g Op.Fadd in
  flow g lx m;
  flow g ly m;
  flow g m a;
  flow g ~d:1 a a;
  Loop.make ~trip_count:2000 ~entries:20
    ~streams:[ stream ~op:lx ~array:0 (); stream ~op:ly ~array:1 () ]
    g

(** y[i] = a*x[i]. *)
let vscale () =
  let g = Ddg.create ~name:"vscale" () in
  let lx = Ddg.add_node g Op.Load in
  let m = Ddg.add_node g Op.Fmul in
  let st = Ddg.add_node g Op.Store in
  flow g lx m;
  ignore (Ddg.add_invariant g ~consumers:[ m ]);
  flow g m st;
  Loop.make ~trip_count:500 ~entries:100
    ~streams:[ stream ~op:lx ~array:0 (); stream ~op:st ~array:1 () ]
    g

(** z[i] = a*x[i] + b*y[i] + c*w[i]. *)
let saxpy3 () =
  let g = Ddg.create ~name:"saxpy3" () in
  let lx = Ddg.add_node g Op.Load in
  let ly = Ddg.add_node g Op.Load in
  let lw = Ddg.add_node g Op.Load in
  let mx = Ddg.add_node g Op.Fmul in
  let my = Ddg.add_node g Op.Fmul in
  let mw = Ddg.add_node g Op.Fmul in
  let a1 = Ddg.add_node g Op.Fadd in
  let a2 = Ddg.add_node g Op.Fadd in
  let st = Ddg.add_node g Op.Store in
  flow g lx mx;
  flow g ly my;
  flow g lw mw;
  ignore (Ddg.add_invariant g ~consumers:[ mx ]);
  ignore (Ddg.add_invariant g ~consumers:[ my ]);
  ignore (Ddg.add_invariant g ~consumers:[ mw ]);
  flow g mx a1;
  flow g my a1;
  flow g a1 a2;
  flow g mw a2;
  flow g a2 st;
  Loop.make ~trip_count:800 ~entries:40
    ~streams:
      [ stream ~op:lx ~array:0 (); stream ~op:ly ~array:1 ();
        stream ~op:lw ~array:2 (); stream ~op:st ~array:3 () ]
    g

(** 5-tap FIR filter: y[i] = sum_k c[k] * x[i+k]. *)
let fir5 () =
  let g = Ddg.create ~name:"fir5" () in
  let taps = 5 in
  let loads = List.init taps (fun _ -> Ddg.add_node g Op.Load) in
  let muls = List.init taps (fun _ -> Ddg.add_node g Op.Fmul) in
  List.iter2 (fun l m -> flow g l m) loads muls;
  List.iter
    (fun m -> ignore (Ddg.add_invariant g ~consumers:[ m ]))
    muls;
  let sum =
    List.fold_left
      (fun acc m ->
        match acc with
        | None -> Some m
        | Some prev ->
          let a = Ddg.add_node g Op.Fadd in
          flow g prev a;
          flow g m a;
          Some a)
      None muls
  in
  let st = Ddg.add_node g Op.Store in
  (match sum with Some s -> flow g s st | None -> assert false);
  Loop.make ~trip_count:1200 ~entries:25
    ~streams:
      (stream ~op:st ~array:1 ()
      :: List.mapi (fun k l -> stream ~op:l ~array:0 ~stride:8 ()
                    |> fun s -> { s with Loop.base = s.Loop.base + (8 * k) })
           loads)
    g

(** y[i] = (x[i-1] + x[i] + x[i+1]) * w — 3-point stencil. *)
let stencil3 () =
  let g = Ddg.create ~name:"stencil3" () in
  let l0 = Ddg.add_node g Op.Load in
  let l1 = Ddg.add_node g Op.Load in
  let l2 = Ddg.add_node g Op.Load in
  let a1 = Ddg.add_node g Op.Fadd in
  let a2 = Ddg.add_node g Op.Fadd in
  let m = Ddg.add_node g Op.Fmul in
  let st = Ddg.add_node g Op.Store in
  flow g l0 a1;
  flow g l1 a1;
  flow g a1 a2;
  flow g l2 a2;
  flow g a2 m;
  ignore (Ddg.add_invariant g ~consumers:[ m ]);
  flow g m st;
  Loop.make ~trip_count:1500 ~entries:30
    ~streams:
      [ stream ~op:l0 ~array:0 (); stream ~op:l1 ~array:0 ();
        stream ~op:l2 ~array:0 (); stream ~op:st ~array:1 () ]
    g

(** x[i] = d[i] - a[i]*x[i-1] — first-order linear recurrence
    (tridiagonal forward elimination step). *)
let tridiag () =
  let g = Ddg.create ~name:"tridiag" () in
  let ld = Ddg.add_node g Op.Load in
  let la = Ddg.add_node g Op.Load in
  let m = Ddg.add_node g Op.Fmul in
  let sub = Ddg.add_node g Op.Fadd in
  let st = Ddg.add_node g Op.Store in
  flow g la m;
  flow g ld sub;
  flow g m sub;
  flow g ~d:1 sub m; (* x[i-1] feeds the multiply *)
  flow g sub st;
  Loop.make ~trip_count:400 ~entries:60
    ~streams:
      [ stream ~op:ld ~array:0 (); stream ~op:la ~array:1 ();
        stream ~op:st ~array:2 () ]
    g

(** p = p*x + c[i] — Horner polynomial evaluation; a tight multiply-add
    recurrence. *)
let horner () =
  let g = Ddg.create ~name:"horner" () in
  let lc = Ddg.add_node g Op.Load in
  let m = Ddg.add_node g Op.Fmul in
  let a = Ddg.add_node g Op.Fadd in
  ignore (Ddg.add_invariant g ~consumers:[ m ]); (* x *)
  flow g m a;
  flow g lc a;
  flow g ~d:1 a m;
  Loop.make ~trip_count:64 ~entries:2000
    ~streams:[ stream ~op:lc ~array:0 () ]
    g

(** Complex vector multiply: (zr+i zi) = (ar+i ai)(br+i bi). *)
let cmul () =
  let g = Ddg.create ~name:"cmul" () in
  let lar = Ddg.add_node g Op.Load in
  let lai = Ddg.add_node g Op.Load in
  let lbr = Ddg.add_node g Op.Load in
  let lbi = Ddg.add_node g Op.Load in
  let m1 = Ddg.add_node g Op.Fmul in
  let m2 = Ddg.add_node g Op.Fmul in
  let m3 = Ddg.add_node g Op.Fmul in
  let m4 = Ddg.add_node g Op.Fmul in
  let sr = Ddg.add_node g Op.Fadd in
  let si = Ddg.add_node g Op.Fadd in
  let str = Ddg.add_node g Op.Store in
  let sti = Ddg.add_node g Op.Store in
  flow g lar m1; flow g lbr m1;
  flow g lai m2; flow g lbi m2;
  flow g lar m3; flow g lbi m3;
  flow g lai m4; flow g lbr m4;
  flow g m1 sr; flow g m2 sr;
  flow g m3 si; flow g m4 si;
  flow g sr str; flow g si sti;
  Loop.make ~trip_count:600 ~entries:35
    ~streams:
      [ stream ~op:lar ~array:0 (); stream ~op:lai ~array:1 ();
        stream ~op:lbr ~array:2 (); stream ~op:lbi ~array:3 ();
        stream ~op:str ~array:4 (); stream ~op:sti ~array:5 () ]
    g

(** s += x[i]*x[i] — 2-norm accumulation. *)
let norm2 () =
  let g = Ddg.create ~name:"norm2" () in
  let lx = Ddg.add_node g Op.Load in
  let m = Ddg.add_node g Op.Fmul in
  let a = Ddg.add_node g Op.Fadd in
  flow g lx m;
  flow g m a;
  flow g ~d:1 a a;
  Loop.make ~trip_count:2500 ~entries:15
    ~streams:[ stream ~op:lx ~array:0 () ]
    g

(** d[i] = sqrt(dx[i]^2 + dy[i]^2) — distance computation with a square
    root on the critical path. *)
let dist2d () =
  let g = Ddg.create ~name:"dist2d" () in
  let ldx = Ddg.add_node g Op.Load in
  let ldy = Ddg.add_node g Op.Load in
  let mx = Ddg.add_node g Op.Fmul in
  let my = Ddg.add_node g Op.Fmul in
  let a = Ddg.add_node g Op.Fadd in
  let sq = Ddg.add_node g Op.Fsqrt in
  let st = Ddg.add_node g Op.Store in
  flow g ldx mx; flow g ldx mx;
  flow g ldy my; flow g ldy my;
  flow g mx a; flow g my a;
  flow g a sq;
  flow g sq st;
  Loop.make ~trip_count:300 ~entries:10
    ~streams:
      [ stream ~op:ldx ~array:0 (); stream ~op:ldy ~array:1 ();
        stream ~op:st ~array:2 () ]
    g

(** r[i] = x[i] / y[i] — division throughput. *)
let vdiv () =
  let g = Ddg.create ~name:"vdiv" () in
  let lx = Ddg.add_node g Op.Load in
  let ly = Ddg.add_node g Op.Load in
  let d = Ddg.add_node g Op.Fdiv in
  let st = Ddg.add_node g Op.Store in
  flow g lx d;
  flow g ly d;
  flow g d st;
  Loop.make ~trip_count:200 ~entries:8
    ~streams:
      [ stream ~op:lx ~array:0 (); stream ~op:ly ~array:1 ();
        stream ~op:st ~array:2 () ]
    g

(** s[i] = s[i-1] + x[i] — prefix sum written back to memory. *)
let prefix_sum () =
  let g = Ddg.create ~name:"prefix_sum" () in
  let lx = Ddg.add_node g Op.Load in
  let a = Ddg.add_node g Op.Fadd in
  let st = Ddg.add_node g Op.Store in
  flow g lx a;
  flow g ~d:1 a a;
  flow g a st;
  Loop.make ~trip_count:700 ~entries:45
    ~streams:[ stream ~op:lx ~array:0 (); stream ~op:st ~array:1 () ]
    g

(** A wide independent expression tree: 8 loads feeding a balanced
    reduction — lots of ILP and register pressure. *)
let tree8 () =
  let g = Ddg.create ~name:"tree8" () in
  let loads = List.init 8 (fun _ -> Ddg.add_node g Op.Load) in
  let rec reduce = function
    | [] -> assert false
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | a :: b :: rest ->
          let n = Ddg.add_node g Op.Fadd in
          flow g a n;
          flow g b n;
          n :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      reduce (pair xs)
  in
  let root = reduce loads in
  let st = Ddg.add_node g Op.Store in
  flow g root st;
  Loop.make ~trip_count:900 ~entries:12
    ~streams:
      (stream ~op:st ~array:8 ()
      :: List.mapi (fun k l -> stream ~op:l ~array:k ()) loads)
    g

(** Inner loop of matrix-vector product: y[j] += A[j][i] * x[i] — one
    accumulator per call site, row-major A (large stride). *)
let matvec_inner () =
  let g = Ddg.create ~name:"matvec_inner" () in
  let la = Ddg.add_node g Op.Load in
  let lx = Ddg.add_node g Op.Load in
  let m = Ddg.add_node g Op.Fmul in
  let acc = Ddg.add_node g Op.Fadd in
  flow g la m;
  flow g lx m;
  flow g m acc;
  flow g ~d:1 acc acc;
  Loop.make ~trip_count:256 ~entries:256
    ~streams:
      [ { (stream ~op:la ~array:0 ()) with Loop.stride = 2048 };
        stream ~op:lx ~array:1 () ]
    g

(** Livermore kernel 5 flavour — tri-diagonal elimination, two coupled
    loads and a multiply inside the recurrence. *)
let lll5 () =
  let g = Ddg.create ~name:"lll5" () in
  let lb = Ddg.add_node g Op.Load in
  let ld = Ddg.add_node g Op.Load in
  let m1 = Ddg.add_node g Op.Fmul in
  let sub = Ddg.add_node g Op.Fadd in
  let m2 = Ddg.add_node g Op.Fmul in
  let st = Ddg.add_node g Op.Store in
  flow g lb m1;
  flow g ~d:1 m2 m1; (* x[i-1] *)
  flow g ld sub;
  flow g m1 sub;
  flow g sub m2;
  flow g ld m2;
  flow g m2 st;
  Loop.make ~trip_count:500 ~entries:40
    ~streams:
      [ stream ~op:lb ~array:0 (); stream ~op:ld ~array:1 ();
        stream ~op:st ~array:2 () ]
    g

(** Interleaved min/max-style double accumulation: two independent
    recurrences sharing the loads. *)
let twin_acc () =
  let g = Ddg.create ~name:"twin_acc" () in
  let lx = Ddg.add_node g Op.Load in
  let ly = Ddg.add_node g Op.Load in
  let a1 = Ddg.add_node g Op.Fadd in
  let a2 = Ddg.add_node g Op.Fmul in
  flow g lx a1;
  flow g ly a1;
  flow g ~d:1 a1 a1;
  flow g lx a2;
  flow g ly a2;
  flow g ~d:1 a2 a2;
  Loop.make ~trip_count:1500 ~entries:25
    ~streams:[ stream ~op:lx ~array:0 (); stream ~op:ly ~array:1 () ]
    g

(** Normalization sweep: y[i] = x[i] / sqrt(s[i]) — a divide and a
    square root competing for the non-pipelined units. *)
let normalize () =
  let g = Ddg.create ~name:"normalize" () in
  let lx = Ddg.add_node g Op.Load in
  let ls = Ddg.add_node g Op.Load in
  let sq = Ddg.add_node g Op.Fsqrt in
  let d = Ddg.add_node g Op.Fdiv in
  let st = Ddg.add_node g Op.Store in
  flow g ls sq;
  flow g lx d;
  flow g sq d;
  flow g d st;
  Loop.make ~trip_count:350 ~entries:18
    ~streams:
      [ stream ~op:lx ~array:0 (); stream ~op:ls ~array:1 ();
        stream ~op:st ~array:2 () ]
    g

(** Wide fan-out: one loaded coefficient feeds eight independent
    multiply/store lanes — stresses the shared bank's LoadR ports in
    hierarchical organizations. *)
let broadcast8 () =
  let g = Ddg.create ~name:"broadcast8" () in
  let lc = Ddg.add_node g Op.Load in
  let lanes =
    List.init 4 (fun _ ->
        let lx = Ddg.add_node g Op.Load in
        let m = Ddg.add_node g Op.Fmul in
        let st = Ddg.add_node g Op.Store in
        flow g lc m;
        flow g lx m;
        flow g m st;
        (lx, st))
  in
  Loop.make ~trip_count:800 ~entries:15
    ~streams:
      (stream ~op:lc ~array:0 ()
      :: List.concat
           (List.mapi
              (fun k (lx, st) ->
                [ stream ~op:lx ~array:(1 + k) ();
                  stream ~op:st ~array:(5 + k) () ])
              lanes))
    g

let all : (string * (unit -> Loop.t)) list =
  [ ("daxpy", daxpy); ("dot", dot); ("vscale", vscale); ("saxpy3", saxpy3);
    ("fir5", fir5); ("stencil3", stencil3); ("tridiag", tridiag);
    ("horner", horner); ("cmul", cmul); ("norm2", norm2);
    ("dist2d", dist2d); ("vdiv", vdiv); ("prefix_sum", prefix_sum);
    ("tree8", tree8); ("matvec_inner", matvec_inner); ("lll5", lll5);
    ("twin_acc", twin_acc); ("normalize", normalize);
    ("broadcast8", broadcast8) ]

let find name =
  match List.assoc_opt name all with
  | Some f -> f ()
  | None -> Fmt.invalid_arg "Kernels.find: unknown kernel %S" name

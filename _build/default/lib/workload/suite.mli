(** The workbench: a deterministic suite standing in for the 1258
    software-pipelineable Perfect Club loops of §2.1. *)

val paper_loop_count : int
val default_seed : int

(** Generate the suite.  Each loop gets an independent RNG derived from
    the seed, so subsets are stable: loop [i] is identical whatever [n]
    is. *)
val generate :
  ?seed:int -> ?n:int -> ?params:Genloop.params -> unit ->
  Hcrf_ir.Loop.t list

(** The full paper-sized workbench (1258 loops). *)
val full : unit -> Hcrf_ir.Loop.t list

(** A small deterministic subset for unit tests and quick runs. *)
val small : ?n:int -> unit -> Hcrf_ir.Loop.t list

(** The named kernels, as a list of loops. *)
val kernels : unit -> Hcrf_ir.Loop.t list

(** Hand-written dependence graphs of classic numerical kernels —
    daxpy, dot product, FIR, stencil, tridiagonal elimination, Horner,
    complex multiply, reductions and friends.  They are used by the
    examples, the unit tests and as sanity anchors for the synthetic
    suite. *)

(** Byte address of array [k] (arrays are staggered so they do not
    alias to the same cache set). *)
val array_base : int -> int

val daxpy : unit -> Hcrf_ir.Loop.t
val dot : unit -> Hcrf_ir.Loop.t
val vscale : unit -> Hcrf_ir.Loop.t
val saxpy3 : unit -> Hcrf_ir.Loop.t
val fir5 : unit -> Hcrf_ir.Loop.t
val stencil3 : unit -> Hcrf_ir.Loop.t
val tridiag : unit -> Hcrf_ir.Loop.t
val horner : unit -> Hcrf_ir.Loop.t
val cmul : unit -> Hcrf_ir.Loop.t
val norm2 : unit -> Hcrf_ir.Loop.t
val dist2d : unit -> Hcrf_ir.Loop.t
val vdiv : unit -> Hcrf_ir.Loop.t
val prefix_sum : unit -> Hcrf_ir.Loop.t
val tree8 : unit -> Hcrf_ir.Loop.t
val matvec_inner : unit -> Hcrf_ir.Loop.t
val lll5 : unit -> Hcrf_ir.Loop.t
val twin_acc : unit -> Hcrf_ir.Loop.t
val normalize : unit -> Hcrf_ir.Loop.t
val broadcast8 : unit -> Hcrf_ir.Loop.t

(** All kernels by name. *)
val all : (string * (unit -> Hcrf_ir.Loop.t)) list

(** Raises [Invalid_argument] on an unknown name. *)
val find : string -> Hcrf_ir.Loop.t

(** Deterministic splittable PRNG (SplitMix64).

    The synthetic workbench must be bit-reproducible across runs and
    platforms, so [Random] is not used; every loop of the suite is
    generated from a seed derived from the suite seed and the loop
    index. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

(** Uniform in [0, bound); raises [Invalid_argument] for bound <= 0. *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** True with probability [p]. *)
val bool : t -> float -> bool

(** Pick from a weighted list; raises on an empty list. *)
val choose : t -> (float * 'a) list -> 'a

(** Derive an independent generator. *)
val split : t -> t

(** Rough log-normal sample (Box-Muller). *)
val log_normal : t -> mu:float -> sigma:float -> float

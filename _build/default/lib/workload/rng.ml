(** Deterministic splittable PRNG (SplitMix64).

    The synthetic workbench must be bit-reproducible across runs and
    platforms, so we do not use [Random]; every loop of the suite is
    generated from a seed derived from the suite seed and the loop
    index. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1)
                  (Int64.of_int bound))

(** Uniform in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range";
  lo + int t (hi - lo + 1)

(** Uniform float in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

(** Pick from a weighted list. *)
let choose t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. choices in
  let x = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.choose: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else go (acc +. w) rest
  in
  go 0. choices

(** Derive an independent generator (for per-loop streams). *)
let split t = { state = next_int64 t }

(** Rough log-normal sample: exp of a normal via Box-Muller. *)
let log_normal t ~mu ~sigma =
  let u1 = max 1e-12 (float t) and u2 = float t in
  let n = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  exp (mu +. (sigma *. n))

(** Suite-level trace collector: a set of sinks plus the commit lock.

    Work units record into private {!Trace.t} buffers; callers hand
    finished buffers to {!commit}, which replays them into every sink
    under one mutex.  The runner commits buffers in *input order* (not
    completion order), which is what makes [Counters] totals and
    [Jsonl] files identical across job counts.

    The null tracer has no sinks; {!start} then returns {!Trace.off},
    so instrumented code skips event construction entirely. *)

type sink = Counters of Counters.t | Jsonl of Jsonl.t

type t = { sinks : sink list; lock : Mutex.t }

let make sinks = { sinks; lock = Mutex.create () }

let null = make []

let is_null t = match t.sinks with [] -> true | _ :: _ -> false

let sinks t = t.sinks

let counters t =
  List.find_map (function Counters c -> Some c | Jsonl _ -> None) t.sinks

let jsonl_path t =
  List.find_map
    (function Jsonl j -> Some (Jsonl.path j) | Counters _ -> None)
    t.sinks

let start t ~label = if is_null t then Trace.off else Trace.create ~label

let commit t trace =
  if is_null t || not (Trace.enabled trace) then ()
  else begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let label = Trace.label trace in
        let evs = Trace.events trace in
        List.iter
          (function
            | Counters c -> Counters.add_all c evs
            | Jsonl j -> List.iter (Jsonl.write j ~label) evs)
          t.sinks)
  end

let close t =
  List.iter (function Jsonl j -> Jsonl.close j | Counters _ -> ()) t.sinks

(** The per-work-unit recording handle that instrumented code receives.

    [off] is the fast path: emission sites guard with {!enabled} (one
    branch, no allocation), so a disabled trace costs nothing
    measurable.  An enabled trace buffers events in one mutable cell
    owned by exactly one worker — recording needs no synchronization;
    {!Tracer.commit} later replays the buffer into the suite-level
    sinks in input order. *)

type t

(** The disabled handle; {!enabled} is [false] and {!emit} is a no-op. *)
val off : t

(** A fresh enabled buffer for one unit of work (one loop, one kernel);
    [label] tags every event of the unit in serialized output. *)
val create : label:string -> t

(** Guard event construction with this: [if Trace.enabled t then
    Trace.emit t (Event.Place ...)] allocates nothing when disabled. *)
val enabled : t -> bool

val emit : t -> Event.t -> unit

val label : t -> string

(** Number of buffered events (0 when disabled). *)
val length : t -> int

(** Buffered events in emission order (the empty list when disabled). *)
val events : t -> Event.t list

(** [span t phase f] runs [f ()]; when enabled, a [Phase {phase; ns}]
    event with the wall-clock duration in integer nanoseconds is
    emitted after [f] returns (also on exception). *)
val span : t -> Event.phase -> (unit -> 'a) -> 'a

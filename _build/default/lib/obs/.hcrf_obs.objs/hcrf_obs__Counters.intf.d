lib/obs/counters.mli: Event Format

lib/obs/tracer.mli: Counters Jsonl Trace

lib/obs/trace.ml: Event Fun List Unix

lib/obs/event.mli: Format

lib/obs/jsonl.ml: Buffer Char Event Fmt Fun List Option Printf Result String

lib/obs/jsonl.mli: Event

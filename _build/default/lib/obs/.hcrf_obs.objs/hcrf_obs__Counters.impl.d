lib/obs/counters.ml: Event Filename Fmt Hashtbl List Option String

lib/obs/event.ml: Fmt

lib/obs/trace.mli: Event

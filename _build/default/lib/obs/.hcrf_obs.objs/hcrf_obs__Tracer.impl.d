lib/obs/tracer.ml: Counters Fun Jsonl List Mutex Trace

(** Set-associative write-back cache with LRU replacement.

    The paper's real-memory scenario (§6.2) uses a 32 KB lockup-free
    first-level cache with 32-byte lines and up to 8 pending misses;
    this module is the array itself, {!Sim} adds the MSHR/timing
    model. *)

type t = {
  line_bytes : int;
  sets : int;
  assoc : int;
  tags : int array array;
  lru : int array array;
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
}

(** Defaults: 32 KB, 32-byte lines, 2-way.  Raises [Invalid_argument]
    on inconsistent geometry. *)
val create : ?size_bytes:int -> ?line_bytes:int -> ?assoc:int -> unit -> t

val line_addr : t -> int -> int
val set_of : t -> int -> int
val tag_of : t -> int -> int

(** Access a byte address; [true] on hit.  Allocates on miss
    (write-allocate for stores as well). *)
val access : t -> int -> bool

val hit_rate : t -> float
val reset_counters : t -> unit

(** Trace-driven stall-cycle simulation of one scheduled loop.

    The paper's real-memory evaluation instruments the source program and
    replays it through a memory simulator; we replay the loop's memory
    streams through the {!Cache} with a small timing model:

    - the cache is lockup-free with [mshrs] outstanding misses; misses to
      a line already in flight merge with the pending fill;
    - a load stalls the processor by (fill ready time - the time the
      schedule expects the value), i.e. a miss on a hit-scheduled load
      costs roughly the miss penalty, while a prefetched (miss-scheduled)
      load only stalls if MSHR pressure delays its fill;
    - stores allocate in the cache (write-allocate) but never stall (a
      store buffer is assumed).

    Only a bounded number of iterations of one entry is simulated; stall
    counts are scaled to the loop's full [N * E] execution. *)

type mem_ref = {
  node : int;
  is_load : bool;
  issue_offset : int;   (** flat schedule cycle of the op *)
  sched_latency : int;  (** latency the schedule assumed for the value *)
  base : int;
  stride : int;
}

type result = {
  stall_cycles : float;    (** scaled to the loop's full execution *)
  simulated_iterations : int;
  misses : int;
  accesses : int;
}

let max_sim_iterations = 2048

(** [refs] must describe every memory operation of the *final* graph
    (including spill code; give spill slots a fixed address).  [ii] is
    the initiation interval, [n]/[e] the trip and entry counts.
    [debug] asserts the MSHR occupancy invariant after every
    allocation. *)
let run ?(mshrs = 8) ?(debug = false) ?(cache = Cache.create ()) ~ii
    ~hit_read ~miss_cycles ~n ~e (refs : mem_ref list) =
  let refs =
    List.sort (fun a b -> compare a.issue_offset b.issue_offset) refs
  in
  let sim_iters = max 1 (min n max_sim_iterations) in
  let stall = ref 0 in
  let misses = ref 0 and accesses = ref 0 in
  (* pending fills: (line, ready_time), newest first, length <= mshrs *)
  let pending = ref [] in
  let line addr = addr / cache.Cache.line_bytes in
  let check_occupancy () =
    if debug then
      assert (List.length !pending <= mshrs)
  in
  (* All MSHRs busy: the new miss steals the slot of the oldest pending
     fill, which means waiting until that fill retires.  The stolen
     entry must leave [pending], or occupancy grows beyond [mshrs] and
     every subsequent full-queue miss sees the same (stale) oldest
     ready time, underestimating the serialization. *)
  let retire_oldest () =
    let oldest =
      List.fold_left (fun acc (_, rdy) -> min acc rdy) max_int !pending
    in
    let removed = ref false in
    pending :=
      List.filter
        (fun (_, rdy) ->
          if (not !removed) && rdy = oldest then begin
            removed := true;
            false
          end
          else true)
        !pending;
    oldest
  in
  for i = 0 to sim_iters - 1 do
    List.iter
      (fun r ->
        (* stalls block the in-order pipeline: later issues shift by the
           accumulated stall, which also lets the pending fills drain
           (the miss queue cannot grow without bound) *)
        let t_issue = (i * ii) + r.issue_offset + !stall in
        let addr = r.base + (i * r.stride) in
        incr accesses;
        pending := List.filter (fun (_, rdy) -> rdy > t_issue) !pending;
        let hit = Cache.access cache addr in
        if not hit then incr misses;
        if r.is_load then begin
          let ready =
            if hit then t_issue + hit_read
            else
              match List.assoc_opt (line addr) !pending with
              | Some rdy -> rdy (* merge with the fill in flight *)
              | None ->
                let start =
                  if List.length !pending >= mshrs then retire_oldest ()
                  else t_issue
                in
                let rdy = max start t_issue + miss_cycles in
                pending := (line addr, rdy) :: !pending;
                check_occupancy ();
                rdy
          in
          let need = t_issue + r.sched_latency in
          if ready > need then stall := !stall + (ready - need)
        end
        else if not hit then begin
          (* write-allocate fill occupies an MSHR but does not stall;
             when every MSHR is busy the fill is simply dropped (the
             store buffer holds the data), so the bound still holds *)
          if List.length !pending < mshrs then begin
            pending := (line addr, t_issue + miss_cycles) :: !pending;
            check_occupancy ()
          end
        end)
      refs
  done;
  let scale =
    float_of_int n /. float_of_int sim_iters *. float_of_int e
  in
  {
    stall_cycles = float_of_int !stall *. scale;
    simulated_iterations = sim_iters;
    misses = !misses;
    accesses = !accesses;
  }

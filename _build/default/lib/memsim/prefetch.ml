(** Selective binding prefetching (§6.2, following [30]).

    Binding prefetching schedules a load with the cache-miss latency so
    the miss is hidden by the software pipeline; it costs register
    pressure (carried by the shared bank in a hierarchical RF) instead of
    stall cycles.  Selectively, the paper keeps hit-latency scheduling
    for: loads inside recurrences (lengthening a recurrence raises
    RecMII), spill loads (inserted later by the scheduler, they default
    to hit latency), and all loads of short-trip-count loops (to avoid
    long prologues/epilogues). *)

open Hcrf_ir

let short_trip_threshold = 32

(** Latency override for {!Hcrf_sched.Engine.options.load_override}:
    [Some miss_cycles] for the loads to prefetch, [None] otherwise. *)
let plan (config : Hcrf_machine.Config.t) (loop : Loop.t) : int -> int option
    =
  let miss = Hcrf_machine.Config.miss_cycles config in
  if loop.Loop.trip_count <= short_trip_threshold then fun _ -> None
  else begin
    let g = loop.Loop.ddg in
    let in_recurrence = Hashtbl.create 16 in
    List.iter
      (fun scc -> List.iter (fun v -> Hashtbl.replace in_recurrence v ()) scc)
      (Scc.recurrences g);
    let prefetched = Hashtbl.create 16 in
    Ddg.iter_nodes g (fun n ->
        if
          Op.equal_kind n.kind Op.Load
          && not (Hashtbl.mem in_recurrence n.id)
        then Hashtbl.replace prefetched n.id ());
    fun id -> if Hashtbl.mem prefetched id then Some miss else None
  end

(** No prefetching at all: every load scheduled with hit latency. *)
let none : int -> int option = fun _ -> None

(** Selective binding prefetching (§6.2, following [30]).

    Binding prefetching schedules a load with the cache-miss latency so
    the miss is hidden by the software pipeline; it costs register
    pressure instead of stall cycles.  Selectively, the paper keeps
    hit-latency scheduling for loads inside recurrences (lengthening a
    recurrence raises RecMII), spill loads, and all loads of
    short-trip-count loops (to avoid long prologues/epilogues). *)

val short_trip_threshold : int

(** Latency override for {!Hcrf_sched.Engine.options} —
    [Some miss_cycles] for the loads to prefetch, [None] otherwise. *)
val plan : Hcrf_machine.Config.t -> Hcrf_ir.Loop.t -> int -> int option

(** No prefetching at all: every load scheduled with hit latency. *)
val none : int -> int option

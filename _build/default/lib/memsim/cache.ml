(** Set-associative write-back cache with LRU replacement.

    The paper's real-memory scenario (§6.2) uses a 32 KB lockup-free
    first-level cache with 32-byte lines and up to 8 pending misses; this
    module is the array itself, {!Sim} adds the MSHR/timing model. *)

type t = {
  line_bytes : int;
  sets : int;
  assoc : int;
  tags : int array array;   (** [set][way] = tag, -1 empty *)
  lru : int array array;    (** [set][way] = last-use stamp *)
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size_bytes = 32 * 1024) ?(line_bytes = 32) ?(assoc = 2) () =
  if size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg "Cache.create: size not divisible by line*assoc";
  let sets = size_bytes / (line_bytes * assoc) in
  {
    line_bytes;
    sets;
    assoc;
    tags = Array.init sets (fun _ -> Array.make assoc (-1));
    lru = Array.init sets (fun _ -> Array.make assoc 0);
    stamp = 0;
    hits = 0;
    misses = 0;
  }

let line_addr t addr = addr / t.line_bytes
let set_of t addr = line_addr t addr mod t.sets
let tag_of t addr = line_addr t addr / t.sets

(** Access a byte address; returns [true] on hit.  Allocates on miss
    (write-allocate for stores as well). *)
let access t addr =
  let s = set_of t addr and tag = tag_of t addr in
  t.stamp <- t.stamp + 1;
  let ways = t.tags.(s) in
  let rec find w = if w >= t.assoc then None
    else if ways.(w) = tag then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    t.lru.(s).(w) <- t.stamp;
    t.hits <- t.hits + 1;
    true
  | None ->
    (* evict LRU way *)
    let victim = ref 0 in
    for w = 1 to t.assoc - 1 do
      if t.lru.(s).(w) < t.lru.(s).(!victim) then victim := w
    done;
    ways.(!victim) <- tag;
    t.lru.(s).(!victim) <- t.stamp;
    t.misses <- t.misses + 1;
    false

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0

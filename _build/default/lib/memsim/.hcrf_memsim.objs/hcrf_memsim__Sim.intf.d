lib/memsim/sim.mli: Cache

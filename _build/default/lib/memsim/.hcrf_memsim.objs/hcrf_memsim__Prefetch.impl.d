lib/memsim/prefetch.ml: Ddg Hashtbl Hcrf_ir Hcrf_machine List Loop Op Scc

lib/memsim/cache.mli:

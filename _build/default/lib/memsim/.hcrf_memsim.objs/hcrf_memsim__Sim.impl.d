lib/memsim/sim.ml: Cache List

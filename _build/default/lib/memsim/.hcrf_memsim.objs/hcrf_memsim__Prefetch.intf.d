lib/memsim/prefetch.mli: Hcrf_ir Hcrf_machine

lib/machine/config.ml: Float Fmt Latencies Rf

lib/machine/latencies.mli: Format Hcrf_ir

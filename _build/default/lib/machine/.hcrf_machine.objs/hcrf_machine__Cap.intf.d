lib/machine/cap.mli: Format

lib/machine/config.mli: Format Hcrf_ir Latencies Rf

lib/machine/rf.ml: Cap Fmt String

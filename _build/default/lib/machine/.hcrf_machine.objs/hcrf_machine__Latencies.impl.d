lib/machine/latencies.ml: Fmt Hcrf_ir

lib/machine/cap.ml: Fmt Stdlib

lib/machine/rf.mli: Cap Format

(** Operation latencies, in cycles, for one processor configuration.

    The baseline (monolithic S128 cycle time) latencies come from §2.2
    of the paper: 4 cycles for FP add/multiply, 17 for divide, 30 for
    square root, 2 for a memory read hit and 1 for a write.
    Configurations with a shorter clock re-derive these from fixed
    nanosecond budgets (see {!Hcrf_model.Timing}). *)

type t = {
  fadd : int;
  fmul : int;
  fdiv : int;
  fsqrt : int;
  mem_read : int;   (** load-to-use hit latency *)
  mem_write : int;
  move : int;       (** inter-cluster move (clustered RF) *)
  loadr : int;      (** shared bank -> local bank *)
  storer : int;     (** local bank -> shared bank *)
}

(** The §2.2 baseline at the S128 cycle time. *)
val baseline : t

val of_kind : t -> Hcrf_ir.Op.kind -> int

(** Division and square root are the only non-pipelined operations
    (§2.2): they occupy their functional unit for the whole latency. *)
val pipelined : Hcrf_ir.Op.kind -> bool

val pp : Format.formatter -> t -> unit

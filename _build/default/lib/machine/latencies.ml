(** Operation latencies, in cycles, for one processor configuration.

    The baseline (monolithic S128 cycle time) latencies come from §2.2 of
    the paper: 4 cycles for FP add/multiply, 17 for divide, 30 for square
    root, 2 for a memory read hit and 1 for a write.  Configurations with a
    shorter clock re-derive these from fixed nanosecond budgets (see
    {!Hcrf_model.Timing}). *)

type t = {
  fadd : int;
  fmul : int;
  fdiv : int;
  fsqrt : int;
  mem_read : int;   (** load-to-use hit latency *)
  mem_write : int;
  move : int;       (** inter-cluster move (clustered RF) *)
  loadr : int;      (** shared bank -> local bank *)
  storer : int;     (** local bank -> shared bank *)
}

(** §2.2 baseline at the S128 cycle time. *)
let baseline =
  { fadd = 4; fmul = 4; fdiv = 17; fsqrt = 30; mem_read = 2; mem_write = 1;
    move = 1; loadr = 1; storer = 1 }

let of_kind t (k : Hcrf_ir.Op.kind) =
  match k with
  | Fadd -> t.fadd
  | Fmul -> t.fmul
  | Fdiv -> t.fdiv
  | Fsqrt -> t.fsqrt
  | Load | Spill_load -> t.mem_read
  | Store | Spill_store -> t.mem_write
  | Move -> t.move
  | Load_r -> t.loadr
  | Store_r -> t.storer

(** Division and square root are the only non-pipelined operations
    (§2.2): they occupy their functional unit for the whole latency. *)
let pipelined (k : Hcrf_ir.Op.kind) =
  match k with
  | Fdiv | Fsqrt -> false
  | Fadd | Fmul | Load | Store | Move | Load_r | Store_r | Spill_load
  | Spill_store -> true

let pp ppf t =
  Fmt.pf ppf
    "add/mul=%d div=%d sqrt=%d rd=%d wr=%d move=%d loadr=%d storer=%d"
    t.fadd t.fdiv t.fsqrt t.mem_read t.mem_write t.move t.loadr t.storer

(** Register-file organizations and the paper's [xCy-Sz] notation.

    [x] is the number of clusters, [y] the registers per first-level
    (distributed) bank and [z] the registers in the shared second-level
    bank.  [lp]/[sp] are the per-bank input (LoadR) and output (StoreR)
    ports between levels — or, for a non-hierarchical clustered RF, the
    per-bank input/output ports of the inter-cluster bus network. *)

type org =
  | Monolithic of { regs : Cap.t }
      (** a single shared bank feeding all FUs and memory ports ([Sz]) *)
  | Clustered of {
      clusters : int;
      regs_per_bank : Cap.t;
      lp : Cap.t;  (** input ports per bank (bus side) *)
      sp : Cap.t;  (** output ports per bank (bus side) *)
      buses : Cap.t;
    }  (** FUs *and* memory ports distributed over [clusters] ([xCy]) *)
  | Hierarchical of {
      clusters : int;
      regs_per_bank : Cap.t;
      shared_regs : Cap.t;
      lp : Cap.t;  (** LoadR ports: shared -> local, per bank *)
      sp : Cap.t;  (** StoreR ports: local -> shared, per bank *)
    }  (** first-level banks per cluster + shared bank ([xCy-Sz]);
          [clusters = 1] is the pure hierarchical organization *)

type t = org

let monolithic regs = Monolithic { regs = Cap.of_int regs }

let clustered ?lp ?sp ?buses ~clusters ~regs_per_bank () =
  if clusters < 2 then invalid_arg "Rf.clustered: needs >= 2 clusters";
  let dflt = function Some c -> c | None -> Cap.Finite 1 in
  Clustered
    { clusters; regs_per_bank = Cap.of_int regs_per_bank;
      lp = dflt lp; sp = dflt sp;
      buses = (match buses with Some b -> b | None -> Cap.Finite clusters) }

let hierarchical ?(lp = Cap.Finite 1) ?(sp = Cap.Finite 1) ~clusters
    ~regs_per_bank ~shared_regs () =
  if clusters < 1 then invalid_arg "Rf.hierarchical: needs >= 1 cluster";
  Hierarchical
    { clusters; regs_per_bank = Cap.of_int regs_per_bank;
      shared_regs = Cap.of_int shared_regs; lp; sp }

let clusters = function
  | Monolithic _ -> 1
  | Clustered { clusters; _ } | Hierarchical { clusters; _ } -> clusters

let is_hierarchical = function
  | Hierarchical _ -> true
  | Monolithic _ | Clustered _ -> false

let is_clustered = function
  | Clustered _ -> true
  | Hierarchical { clusters; _ } -> clusters > 1
  | Monolithic _ -> false

(** Registers in each first-level bank feeding the FUs.  For a monolithic
    RF the single bank feeds the FUs directly. *)
let local_regs = function
  | Monolithic { regs } -> regs
  | Clustered { regs_per_bank; _ } | Hierarchical { regs_per_bank; _ } ->
    regs_per_bank

let shared_regs = function
  | Monolithic _ | Clustered _ -> Cap.Finite 0
  | Hierarchical { shared_regs; _ } -> shared_regs

(** Total storage capacity over all banks. *)
let total_regs t =
  match t with
  | Monolithic { regs } -> regs
  | Clustered { clusters; regs_per_bank; _ } -> (
    match regs_per_bank with
    | Cap.Inf -> Cap.Inf
    | Cap.Finite y -> Cap.Finite (clusters * y))
  | Hierarchical { clusters; regs_per_bank; shared_regs; _ } -> (
    match (regs_per_bank, shared_regs) with
    | Cap.Inf, _ | _, Cap.Inf -> Cap.Inf
    | Cap.Finite y, Cap.Finite z -> Cap.Finite ((clusters * y) + z))

let lp = function
  | Monolithic _ -> Cap.Finite 0
  | Clustered { lp; _ } | Hierarchical { lp; _ } -> lp

let sp = function
  | Monolithic _ -> Cap.Finite 0
  | Clustered { sp; _ } | Hierarchical { sp; _ } -> sp

let pp_cap_short ppf = function
  | Cap.Inf -> Fmt.string ppf "inf"
  | Cap.Finite n -> Fmt.int ppf n

(** Paper notation: [S128], [4C32], [1C64S64], with [inf] for ∞. *)
let notation t =
  match t with
  | Monolithic { regs } -> Fmt.str "S%a" pp_cap_short regs
  | Clustered { clusters; regs_per_bank; _ } ->
    Fmt.str "%dC%a" clusters pp_cap_short regs_per_bank
  | Hierarchical { clusters; regs_per_bank; shared_regs; _ } ->
    Fmt.str "%dC%aS%a" clusters pp_cap_short regs_per_bank pp_cap_short
      shared_regs

let pp ppf t = Fmt.string ppf (notation t)

(** Parse the paper notation.  Accepts [S<n>], [<x>C<y>], [<x>C<y>S<z>]
    where each count is an integer or [inf].  Ports default to lp=sp=1 for
    multi-bank organizations. *)
let of_notation s =
  let cap_of_string str =
    if str = "inf" then Cap.Inf
    else
      match int_of_string_opt str with
      | Some n when n >= 0 -> Cap.Finite n
      | Some _ | None -> Fmt.failwith "Rf.of_notation: bad count %S" str
  in
  let fail () = Fmt.failwith "Rf.of_notation: cannot parse %S" s in
  match String.index_opt s 'C' with
  | None ->
    if String.length s < 2 || s.[0] <> 'S' then fail ()
    else Monolithic { regs = cap_of_string (String.sub s 1 (String.length s - 1)) }
  | Some ci -> (
    let x =
      match int_of_string_opt (String.sub s 0 ci) with
      | Some x when x >= 1 -> x
      | Some _ | None -> fail ()
    in
    let rest = String.sub s (ci + 1) (String.length s - ci - 1) in
    match String.index_opt rest 'S' with
    | None ->
      if x < 2 then fail ()
      else
        Clustered
          { clusters = x; regs_per_bank = cap_of_string rest;
            lp = Cap.Finite 1; sp = Cap.Finite 1; buses = Cap.Finite x }
    | Some si ->
      let y = cap_of_string (String.sub rest 0 si) in
      let z = cap_of_string (String.sub rest (si + 1) (String.length rest - si - 1)) in
      Hierarchical
        { clusters = x; regs_per_bank = y; shared_regs = z;
          lp = Cap.Finite 1; sp = Cap.Finite 1 })

let equal a b = notation a = notation b

(** A complete VLIW processor configuration: resources, register file
    organization, per-configuration latencies and clock. *)

type t = {
  name : string;
  n_fus : int;        (** general-purpose FP functional units (paper: 8) *)
  n_mem_ports : int;  (** load/store units (paper: 4) *)
  rf : Rf.t;
  lats : Latencies.t;
  cycle_ns : float;   (** clock cycle derived from the RF access time *)
  miss_ns : float;    (** cache miss latency in nanoseconds (paper: 10) *)
}

let validate t =
  let x = Rf.clusters t.rf in
  if t.n_fus < 1 || t.n_mem_ports < 1 then
    invalid_arg "Config: needs at least one FU and one memory port";
  if t.n_fus mod x <> 0 then
    Fmt.invalid_arg "Config %s: %d FUs not divisible by %d clusters" t.name
      t.n_fus x;
  (match t.rf with
  | Rf.Clustered _ ->
    if t.n_mem_ports mod x <> 0 then
      Fmt.invalid_arg
        "Config %s: clustered RF needs mem ports divisible by clusters"
        t.name
  | Rf.Monolithic _ | Rf.Hierarchical _ -> ());
  if t.cycle_ns <= 0. then invalid_arg "Config: non-positive cycle time";
  t

let make ?(n_fus = 8) ?(n_mem_ports = 4) ?(lats = Latencies.baseline)
    ?(cycle_ns = 1.0) ?(miss_ns = 10.0) ?name rf =
  let name = match name with Some n -> n | None -> Rf.notation rf in
  validate { name; n_fus; n_mem_ports; rf; lats; cycle_ns; miss_ns }

let clusters t = Rf.clusters t.rf
let fus_per_cluster t = t.n_fus / clusters t

(** Memory ports per cluster; only meaningful for a non-hierarchical
    clustered RF where memory ports are distributed. *)
let mem_ports_per_cluster t =
  match t.rf with
  | Rf.Clustered _ -> t.n_mem_ports / clusters t
  | Rf.Monolithic _ | Rf.Hierarchical _ -> t.n_mem_ports

(** Cache-miss latency in cycles at this configuration's clock (§2.2: the
    10 ns miss is translated using the cycle time). *)
let miss_cycles t =
  int_of_float (Float.round (ceil (t.miss_ns /. t.cycle_ns)))

let op_latency t k = Latencies.of_kind t.lats k

let pp ppf t =
  Fmt.pf ppf "%s: %d FUs + %d mem ports, rf=%a, cycle=%.3fns, lats=[%a]"
    t.name t.n_fus t.n_mem_ports Rf.pp t.rf t.cycle_ns Latencies.pp t.lats

(** Register-file organizations and the paper's [xCy-Sz] notation.

    [x] is the number of clusters, [y] the registers per first-level
    (distributed) bank and [z] the registers in the shared second-level
    bank.  [lp]/[sp] are the per-bank input (LoadR) and output (StoreR)
    ports between levels — or, for a non-hierarchical clustered RF, the
    per-bank input/output ports of the inter-cluster bus network. *)

type org =
  | Monolithic of { regs : Cap.t }
      (** a single shared bank feeding all FUs and memory ports ([Sz]) *)
  | Clustered of {
      clusters : int;
      regs_per_bank : Cap.t;
      lp : Cap.t;  (** input ports per bank (bus side) *)
      sp : Cap.t;  (** output ports per bank (bus side) *)
      buses : Cap.t;
    }  (** FUs *and* memory ports distributed over [clusters] ([xCy]) *)
  | Hierarchical of {
      clusters : int;
      regs_per_bank : Cap.t;
      shared_regs : Cap.t;
      lp : Cap.t;  (** LoadR ports: shared -> local, per bank *)
      sp : Cap.t;  (** StoreR ports: local -> shared, per bank *)
    }  (** first-level banks per cluster + shared bank ([xCy-Sz]);
          [clusters = 1] is the pure hierarchical organization *)

type t = org

val monolithic : int -> t

(** Raises [Invalid_argument] for fewer than 2 clusters; ports default
    to 1, buses to one per cluster. *)
val clustered :
  ?lp:Cap.t -> ?sp:Cap.t -> ?buses:Cap.t -> clusters:int ->
  regs_per_bank:int -> unit -> t

val hierarchical :
  ?lp:Cap.t -> ?sp:Cap.t -> clusters:int -> regs_per_bank:int ->
  shared_regs:int -> unit -> t

val clusters : t -> int
val is_hierarchical : t -> bool
val is_clustered : t -> bool

(** Registers in each first-level bank feeding the FUs (the single bank
    for a monolithic RF). *)
val local_regs : t -> Cap.t

val shared_regs : t -> Cap.t

(** Total storage capacity over all banks. *)
val total_regs : t -> Cap.t

val lp : t -> Cap.t
val sp : t -> Cap.t

(** Paper notation: ["S128"], ["4C32"], ["1C64S64"], with ["inf"] for
    unbounded counts. *)
val notation : t -> string

val pp : Format.formatter -> t -> unit

(** Parse the paper notation; ports default to lp=sp=1.  Raises
    [Failure] on malformed input. *)
val of_notation : string -> t

val equal : t -> t -> bool

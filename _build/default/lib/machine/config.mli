(** A complete VLIW processor configuration: resources, register-file
    organization, per-configuration latencies and clock. *)

type t = {
  name : string;
  n_fus : int;        (** general-purpose FP functional units (paper: 8) *)
  n_mem_ports : int;  (** load/store units (paper: 4) *)
  rf : Rf.t;
  lats : Latencies.t;
  cycle_ns : float;   (** clock cycle derived from the RF access time *)
  miss_ns : float;    (** cache miss latency in nanoseconds (paper: 10) *)
}

(** Checks divisibility of FUs (and, for a flat clustered RF, memory
    ports) by the cluster count; raises [Invalid_argument] otherwise. *)
val validate : t -> t

(** Defaults follow the paper's baseline: 8 FUs, 4 memory ports,
    baseline latencies, a 1 ns clock and a 10 ns miss; the name defaults
    to the RF notation. *)
val make :
  ?n_fus:int -> ?n_mem_ports:int -> ?lats:Latencies.t -> ?cycle_ns:float ->
  ?miss_ns:float -> ?name:string -> Rf.t -> t

val clusters : t -> int
val fus_per_cluster : t -> int

(** Memory ports per cluster; only meaningful for a non-hierarchical
    clustered RF where memory ports are distributed (global count
    otherwise). *)
val mem_ports_per_cluster : t -> int

(** Cache-miss latency in cycles at this configuration's clock (§2.2:
    the 10 ns miss is translated using the cycle time). *)
val miss_cycles : t -> int

val op_latency : t -> Hcrf_ir.Op.kind -> int
val pp : Format.formatter -> t -> unit

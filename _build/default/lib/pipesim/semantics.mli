(** Deterministic value semantics shared by the reference executor and
    the pipeline executor.

    Dependence graphs carry no source expressions, so every operation
    gets a total, deterministic meaning over floats — good enough that
    any routing, allocation or timing mistake shows up as a mismatch.
    Every operation is a symmetric function of its inputs (demoting a
    loop invariant turns an ambient input into an operand edge;
    symmetry makes the value independent of that representation
    change). *)

val float_of_hash : int -> float

(** Initial content of a memory location. *)
val memory_init : int -> float

(** Value of loop invariant [inv_id]. *)
val invariant_value : int -> float

(** Live-in value for the instance of [node] from an iteration before
    the loop started ([iter < 0]). *)
val live_in : node:int -> iter:int -> float

(** [combine kind operands ~invariants ~memory] — the operation's
    result: loads yield the memory content (or pass their input through
    for a register spill slot), copies pass through, computations fold
    their inputs symmetrically. *)
val combine :
  Hcrf_ir.Op.kind -> float list -> invariants:float list ->
  memory:float option -> float

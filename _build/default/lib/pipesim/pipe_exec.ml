(** Cycle-accurate executor of a software pipeline.

    Runs a scheduled loop the way the VLIW core would: instance i of an
    operation scheduled at kernel cycle c issues at absolute cycle
    c + i * II; register writes land [latency] cycles after issue;
    values travel through *physical* rotating registers, whose index
    comes from the {!Hcrf_sched.Regalloc} offsets and the rotating
    register base (one rotation per II).  Prologue, kernel and epilogue
    all fall out of the instance timing.

    This is the strongest end-to-end check in the repository: a routing
    mistake, a wrong spill, a clobbered rotating register or an
    off-by-one in the timing all surface as a value mismatch against
    {!Ref_exec}. *)

open Hcrf_ir
open Hcrf_sched

type result = {
  values : (int * int, float) Hashtbl.t;  (** (node, iteration) -> value *)
  memory : (int, float) Hashtbl.t;
  register_reads : int;  (** reads served from a physical register *)
}

type error =
  | Allocation_failed of Topology.bank
  | Value_mismatch of { node : int; iteration : int; got : float; expected : float }
  | Memory_mismatch of { addr : int; got : float; expected : float }

let pp_error ppf = function
  | Allocation_failed b ->
    Fmt.pf ppf "register allocation failed in bank %a" Topology.pp_bank b
  | Value_mismatch { node; iteration; got; expected } ->
    Fmt.pf ppf "node %d iteration %d: pipeline %.17g <> reference %.17g"
      node iteration got expected
  | Memory_mismatch { addr; got; expected } ->
    Fmt.pf ppf "memory %#x: pipeline %.17g <> reference %.17g" addr got
      expected

(* Physical register index of instance [iter] of value [def]: virtual
   offset plus the rotating base at its write-back time. *)
let physical ~offset ~wheel ~ii ~birth_abs =
  if wheel = 0 then 0
  else (((offset - (birth_abs / ii)) mod wheel) + wheel) mod wheel

(** Execute [iterations] of the scheduled [loop] ([outcome] from the
    engine).  Returns the instance values actually read/produced through
    the machine's registers. *)
let run (loop : Loop.t) (sched : Schedule.t) (g : Ddg.t) ~iterations :
    (result, error) Stdlib.result =
  let ii = Schedule.ii sched in
  match Regalloc.allocate sched g with
  | Error b -> Error (Allocation_failed b)
  | Ok assignments ->
    let offset_of = Hashtbl.create 64 in
    let wheel_of_bank = Hashtbl.create 8 in
    List.iter
      (fun (a : Regalloc.assignment) ->
        Hashtbl.replace wheel_of_bank a.Regalloc.bank
          a.Regalloc.registers_used;
        List.iter
          (fun (def, off) -> Hashtbl.replace offset_of def (a.Regalloc.bank, off))
          a.Regalloc.map)
      assignments;
    (* physical register files, one float array per bank *)
    let banks : (Topology.bank, float array) Hashtbl.t = Hashtbl.create 8 in
    let bank_array b =
      match Hashtbl.find_opt banks b with
      | Some a -> a
      | None ->
        let wheel =
          Option.value ~default:0 (Hashtbl.find_opt wheel_of_bank b)
        in
        let a = Array.make (max 1 wheel) nan in
        Hashtbl.replace banks b a;
        a
    in
    let values = Hashtbl.create 256 in
    let memory = Hashtbl.create 64 in
    let register_reads = ref 0 in
    let lat = sched.Schedule.lat in
    (* group instances by issue cycle *)
    let last_cycle = ref 0 in
    let issue_at : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
    Ddg.iter_nodes g (fun n ->
        let c = Schedule.cycle_of sched n.id in
        for i = 0 to iterations - 1 do
          let t = c + (i * ii) in
          last_cycle := max !last_cycle (t + 128);
          Hashtbl.replace issue_at t
            ((n.id, i)
            :: Option.value ~default:[] (Hashtbl.find_opt issue_at t))
        done);
    (* pending register write-backs, keyed by commit cycle *)
    let writebacks : (int, (Topology.bank * int * float) list) Hashtbl.t =
      Hashtbl.create 256
    in
    (* Live-in values (instances from before the loop started) are keyed
       by the *original* producer: a scheduler-inserted copy resolves to
       the root of its copy chain (adjusting the iteration by the chain
       distances), and an invariant's LoadR to the invariant value. *)
    let rec live_in_value v i =
      match Ddg.kind g v with
      | Op.Move | Op.Load_r | Op.Store_r | Op.Spill_load | Op.Spill_store
        -> (
        match Ddg.operands g v with
        | (e : Ddg.edge) :: _ -> live_in_value e.src (i - e.distance)
        | [] -> (
          match
            List.find_opt
              (fun (inv : Ddg.invariant) -> List.mem v inv.inv_consumers)
              (Ddg.invariants g)
          with
          | Some inv -> Semantics.invariant_value inv.inv_id
          | None -> Semantics.live_in ~node:v ~iter:i))
      | _ -> Semantics.live_in ~node:v ~iter:i
    in
    let virtual_value v i =
      if i < 0 then live_in_value v i
      else
        match Hashtbl.find_opt values (v, i) with
        | Some x -> x
        | None -> nan (* issued out of dependence order: will mismatch *)
    in
    let read_operand (e : Ddg.edge) ~consumer_iter ~now =
      let i = consumer_iter - e.distance in
      let p = e.src in
      if i < 0 then live_in_value p i
      else if Op.defines_value (Ddg.kind g p) then begin
        (* the real thing: read the physical register the producer's
           instance was allocated to *)
        match Hashtbl.find_opt offset_of p with
        | Some (bank, offset) ->
          let birth_abs =
            Schedule.cycle_of sched p
            + Latency.of_def lat ~id:p ~kind:(Ddg.kind g p)
            + (i * ii)
          in
          if now = birth_abs then
            (* reading at the producer's write-back cycle: the register
               is only written at the end of the cycle, the value
               arrives through the bypass network *)
            virtual_value p i
          else begin
            let wheel = Hashtbl.find wheel_of_bank bank in
            incr register_reads;
            (bank_array bank).(physical ~offset ~wheel ~ii ~birth_abs)
          end
        | None ->
          (* zero-length lifetime: the value flows through the bypass *)
          virtual_value p i
      end
      else virtual_value p i
    in
    for t = 0 to !last_cycle do
      (* issue: reads happen early in the cycle, register write-backs
         and memory writes commit at the end — a value read at exactly
         its write-back cycle has a zero-length lifetime and flows
         through the bypass network instead of the register file *)
      let issued =
        Option.value ~default:[] (Hashtbl.find_opt issue_at t)
        |> List.sort compare
      in
      let mem_writes = ref [] in
      (* phase A: snapshot every read of this cycle — an instance must
         never observe a value produced in the same cycle (the minimum
         latency is 1), so reads are gathered before any result of
         cycle t is recorded *)
      let prepared =
        List.map
          (fun (v, i) ->
            let kind = Ddg.kind g v in
            let operands =
              List.map
                (fun e -> read_operand e ~consumer_iter:i ~now:t)
                (Ref_exec.sorted_operands g v)
            in
            let invariants = Ref_exec.invariant_inputs g v in
            let addr =
              Option.map
                (fun (s : Loop.stream) -> s.Loop.base + (i * s.Loop.stride))
                (Loop.stream_for loop v)
            in
            let mem_in =
              match (kind, addr) with
              | (Op.Load | Op.Spill_load), Some a ->
                Some (Ref_exec.read_memory memory a)
              | _ -> None
            in
            (v, i, kind, operands, invariants, addr, mem_in))
          issued
      in
      (* phase B: compute and commit *)
      List.iter
        (fun (v, i, kind, operands, invariants, addr, mem_in) ->
          let x = Semantics.combine kind operands ~invariants ~memory:mem_in in
          Hashtbl.replace values (v, i) x;
          (match (kind, addr) with
          | (Op.Store | Op.Spill_store), Some a ->
            mem_writes := (a, x) :: !mem_writes
          | _ -> ());
          if Op.defines_value kind then
            match Hashtbl.find_opt offset_of v with
            | Some (bank, offset) ->
              let wheel = Hashtbl.find wheel_of_bank bank in
              let birth = t + Latency.of_def lat ~id:v ~kind in
              let idx = physical ~offset ~wheel ~ii ~birth_abs:birth in
              Hashtbl.replace writebacks birth
                ((bank, idx, x)
                :: Option.value ~default:[]
                     (Hashtbl.find_opt writebacks birth))
            | None -> ())
        prepared;
      List.iter (fun (a, x) -> Hashtbl.replace memory a x) (List.rev !mem_writes);
      (match Hashtbl.find_opt writebacks t with
      | Some ws ->
        List.iter
          (fun (bank, idx, x) -> (bank_array bank).(idx) <- x)
          (List.rev ws);
        Hashtbl.remove writebacks t
      | None -> ());
    done;
    Ok { values; memory; register_reads = !register_reads }

(** Execute the pipeline and compare every original-node instance value
    and the final memory against the sequential reference. *)
let check (loop : Loop.t) (outcome : Engine.outcome) ?(iterations = 12) () :
    (result, error) Stdlib.result =
  let reference = Ref_exec.run loop ~iterations in
  match
    run loop outcome.Engine.schedule outcome.Engine.graph ~iterations
  with
  | Error _ as e -> e
  | Ok piped ->
    let bad = ref None in
    Hashtbl.iter
      (fun (v, i) expected ->
        if !bad = None && Ddg.mem outcome.Engine.graph v then
          match Hashtbl.find_opt piped.values (v, i) with
          | Some got when got <> expected ->
            bad := Some (Value_mismatch { node = v; iteration = i; got; expected })
          | Some _ -> ()
          | None ->
            bad :=
              Some
                (Value_mismatch
                   { node = v; iteration = i; got = nan; expected }))
      reference.Ref_exec.values;
    Hashtbl.iter
      (fun addr expected ->
        if !bad = None then
          match Hashtbl.find_opt piped.memory addr with
          | Some got when got <> expected ->
            bad := Some (Memory_mismatch { addr; got; expected })
          | Some _ -> ()
          | None ->
            bad := Some (Memory_mismatch { addr; got = nan; expected }))
      reference.Ref_exec.memory;
    (match !bad with Some e -> Error e | None -> Ok piped)

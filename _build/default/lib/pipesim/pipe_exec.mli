(** Cycle-accurate executor of a software pipeline.

    Runs a scheduled loop the way the VLIW core would: instance i of an
    operation scheduled at kernel cycle c issues at absolute cycle
    [c + i * II]; register write-backs land [latency] cycles after issue
    (at the end of the cycle — same-cycle readers use the bypass);
    values travel through *physical* rotating registers indexed from the
    {!Hcrf_sched.Regalloc} offsets and the rotating base.  Prologue,
    kernel and epilogue all fall out of the instance timing.

    This is the strongest end-to-end check in the repository: a routing
    mistake, a wrong spill, a clobbered rotating register or an
    off-by-one in the timing all surface as a value mismatch against
    {!Ref_exec}. *)

type result = {
  values : (int * int, float) Hashtbl.t;  (** (node, iteration) -> value *)
  memory : (int, float) Hashtbl.t;
  register_reads : int;  (** reads served from a physical register *)
}

type error =
  | Allocation_failed of Hcrf_sched.Topology.bank
  | Value_mismatch of
      { node : int; iteration : int; got : float; expected : float }
  | Memory_mismatch of { addr : int; got : float; expected : float }

val pp_error : Format.formatter -> error -> unit

(** Physical register index of a value instance: virtual [offset] plus
    the rotating base at its write-back time [birth_abs]. *)
val physical : offset:int -> wheel:int -> ii:int -> birth_abs:int -> int

(** Execute [iterations] of the scheduled loop through physical
    registers. *)
val run :
  Hcrf_ir.Loop.t -> Hcrf_sched.Schedule.t -> Hcrf_ir.Ddg.t ->
  iterations:int -> (result, error) Stdlib.result

(** Execute the pipeline and compare every original-node instance value
    and the final memory against the sequential reference. *)
val check :
  Hcrf_ir.Loop.t -> Hcrf_sched.Engine.outcome -> ?iterations:int -> unit ->
  (result, error) Stdlib.result

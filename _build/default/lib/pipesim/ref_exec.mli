(** Sequential reference executor.

    Runs [iterations] of the original loop the obvious way — one
    iteration after another, operations in dependence order — recording
    the value of every (node, iteration) instance and the final memory
    contents.  The pipeline executor must reproduce all of it
    exactly. *)

type result = {
  values : (int * int, float) Hashtbl.t;  (** (node, iteration) -> value *)
  memory : (int, float) Hashtbl.t;        (** final stores, by address *)
}

val read_memory : (int, float) Hashtbl.t -> int -> float

(** Operand edges in the canonical order shared with the pipeline
    executor. *)
val sorted_operands : Hcrf_ir.Ddg.t -> int -> Hcrf_ir.Ddg.edge list

(** Invariant input values of a node, in canonical order. *)
val invariant_inputs : Hcrf_ir.Ddg.t -> int -> float list

(** Within-iteration execution order (topological over distance-0
    edges, ties by id). *)
val topo_order : Hcrf_ir.Ddg.t -> int list

val run : Hcrf_ir.Loop.t -> iterations:int -> result

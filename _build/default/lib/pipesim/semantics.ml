(** Deterministic value semantics shared by the reference executor and
    the pipeline executor.

    The dependence graphs carry no source expressions, so we give every
    operation a total, deterministic meaning over floats: good enough to
    detect any routing, allocation or timing mistake (two different
    dataflows virtually never collide on the same float).  Both executors
    use exactly the same functions, so a correct pipeline reproduces the
    reference results bit-for-bit. *)

open Hcrf_ir

(* A cheap deterministic hash onto floats in [1, 2). *)
let float_of_hash h =
  let h = (h * 2654435761) land 0xFFFFFF in
  1.0 +. (float_of_int h /. 16777216.0)

(** Initial content of a memory location. *)
let memory_init addr = float_of_hash (addr * 31 + 7)

(** Value of loop invariant [inv_id]. *)
let invariant_value inv_id = float_of_hash ((inv_id * 131) + 3)

(** Live-in value: what the instance of node [node] from iteration
    [iter] (< 0, before the loop started) is assumed to hold. *)
let live_in ~node ~iter = float_of_hash ((node * 73) + (iter * 19) + 11)

(* Every operation is a *symmetric* function of its inputs: demoting a
   loop invariant turns it from an ambient input into an operand edge
   (through a LoadR), and symmetry makes the value independent of that
   representation change — while still being sensitive to any wrong
   value arriving. *)
let combine (k : Op.kind) (operands : float list) ~(invariants : float list)
    ~(memory : float option) =
  (* inputs are sorted numerically so the result is independent of edge
     order (floating-point folds are not associative) *)
  let inputs = List.sort compare (operands @ invariants) in
  let sum = List.fold_left ( +. ) 0.1 inputs in
  match k with
  | Op.Fadd -> sum
  | Op.Fmul -> List.fold_left ( *. ) 1.1 inputs
  | Op.Fdiv ->
    sum /. List.fold_left (fun acc b -> acc *. (abs_float b +. 1.5)) 1.0 inputs
  | Op.Fsqrt -> sqrt (abs_float sum +. 1.0)
  | Op.Load | Op.Spill_load -> (
    (* a load yields the memory content; a spill load with no memory
       binding (pure register reload through the spill slot) passes its
       input through *)
    match memory with
    | Some m -> m
    | None -> ( match inputs with a :: _ -> a | [] -> 1.0))
  | Op.Move | Op.Load_r | Op.Store_r -> (
    (* copies: the single input passes through; an invariant LoadR
       carries the invariant value *)
    match inputs with a :: _ -> a | [] -> 1.0)
  | Op.Store | Op.Spill_store -> (
    match inputs with a :: _ -> a | [] -> 0.0)

(** Sequential reference executor.

    Runs [iterations] of the original loop the obvious way — one
    iteration after another, operations in dependence order — and
    records the value of every (node, iteration) instance plus the final
    memory contents.  The pipeline executor must reproduce all of it
    exactly. *)

open Hcrf_ir

type result = {
  values : (int * int, float) Hashtbl.t;  (** (node, iteration) -> value *)
  memory : (int, float) Hashtbl.t;        (** final stores, by address *)
}

let read_memory memory addr =
  match Hashtbl.find_opt memory addr with
  | Some v -> v
  | None -> Semantics.memory_init addr

(* Operands in a canonical order shared with the pipeline executor. *)
let sorted_operands g v =
  List.sort
    (fun (a : Ddg.edge) (b : Ddg.edge) ->
      compare (a.src, a.distance) (b.src, b.distance))
    (Ddg.operands g v)

let invariant_inputs g v =
  Ddg.invariants g
  |> List.filter (fun (inv : Ddg.invariant) -> List.mem v inv.inv_consumers)
  |> List.map (fun (inv : Ddg.invariant) -> inv.inv_id)
  |> List.sort compare
  |> List.map Semantics.invariant_value

(* Topological order of the distance-0 subgraph, ties by id: the
   within-iteration execution order. *)
let topo_order g =
  let nodes = Ddg.nodes g in
  let indeg = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Hashtbl.replace indeg v
        (List.length
           (List.filter (fun (e : Ddg.edge) -> e.distance = 0) (Ddg.preds g v))))
    nodes;
  let order = ref [] in
  let ready =
    ref (List.filter (fun v -> Hashtbl.find indeg v = 0) nodes)
  in
  while !ready <> [] do
    let v = List.fold_left min (List.hd !ready) !ready in
    ready := List.filter (fun x -> x <> v) !ready;
    order := v :: !order;
    List.iter
      (fun (e : Ddg.edge) ->
        if e.distance = 0 then begin
          let d = Hashtbl.find indeg e.dst - 1 in
          Hashtbl.replace indeg e.dst d;
          if d = 0 then ready := e.dst :: !ready
        end)
      (Ddg.succs g v)
  done;
  List.rev !order

(** Execute [iterations] iterations of [loop]. *)
let run (loop : Loop.t) ~iterations : result =
  let g = loop.Loop.ddg in
  let values = Hashtbl.create 256 in
  let memory = Hashtbl.create 64 in
  let order = topo_order g in
  let value_of v i =
    if i < 0 then Semantics.live_in ~node:v ~iter:i
    else Hashtbl.find values (v, i)
  in
  for i = 0 to iterations - 1 do
    List.iter
      (fun v ->
        let kind = Ddg.kind g v in
        let operands =
          List.map
            (fun (e : Ddg.edge) -> value_of e.src (i - e.distance))
            (sorted_operands g v)
        in
        let invariants = invariant_inputs g v in
        let addr =
          Option.map
            (fun (s : Loop.stream) -> s.Loop.base + (i * s.Loop.stride))
            (Loop.stream_for loop v)
        in
        let mem_in =
          match (kind, addr) with
          | (Op.Load | Op.Spill_load), Some a -> Some (read_memory memory a)
          | _ -> None
        in
        let result = Semantics.combine kind operands ~invariants ~memory:mem_in in
        Hashtbl.replace values (v, i) result;
        (match (kind, addr) with
        | (Op.Store | Op.Spill_store), Some a ->
          Hashtbl.replace memory a result
        | _ -> ()))
      order
  done;
  { values; memory }

lib/pipesim/ref_exec.mli: Hashtbl Hcrf_ir

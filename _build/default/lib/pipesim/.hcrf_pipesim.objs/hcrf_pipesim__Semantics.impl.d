lib/pipesim/semantics.ml: Hcrf_ir List Op

lib/pipesim/ref_exec.ml: Ddg Hashtbl Hcrf_ir List Loop Op Option Semantics

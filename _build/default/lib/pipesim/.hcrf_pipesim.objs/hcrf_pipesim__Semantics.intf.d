lib/pipesim/semantics.mli: Hcrf_ir

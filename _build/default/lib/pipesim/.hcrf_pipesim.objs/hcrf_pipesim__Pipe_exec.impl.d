lib/pipesim/pipe_exec.ml: Array Ddg Engine Fmt Hashtbl Hcrf_ir Hcrf_sched Latency List Loop Op Option Ref_exec Regalloc Schedule Semantics Stdlib Topology

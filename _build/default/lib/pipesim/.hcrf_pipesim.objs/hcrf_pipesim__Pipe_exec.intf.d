lib/pipesim/pipe_exec.mli: Format Hashtbl Hcrf_ir Hcrf_sched Stdlib

(** Canonical, collision-resistant fingerprints of scheduling inputs.

    A fingerprint is a 128-bit digest of a *canonical* encoding of the
    value, so that semantically identical inputs hash equal while any
    semantic change (an opcode, a latency, a dependence distance, a
    memory stream, a register count, a scheduler option) changes the
    digest with overwhelming probability.

    Graph fingerprints are computed with Weisfeiler–Lehman color
    refinement: node ids never enter the hash, only operation kinds,
    per-node attributes and the multiset structure of the (dep,
    distance)-labelled edges.  Two graphs that differ only by a node
    renumbering or by the order edges were inserted therefore hash
    equal; renaming the loop does not change the fingerprint either
    (the name does not affect any scheduling outcome). *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Lower-case hexadecimal rendering (stable; used as on-disk file
    names). *)
val to_hex : t -> string

val pp : Format.formatter -> t -> unit

(** Fingerprint of an opaque label (e.g. a memory-scenario tag). *)
val of_string : string -> t

(** Combine fingerprints into one.  Order-sensitive. *)
val combine : t list -> t

(** Fingerprint of a dependence graph alone.  [attr] attaches an
    arbitrary per-node attribute string to the initial node color (used
    by {!of_loop} for memory streams); it defaults to no attribute. *)
val of_ddg : ?attr:(int -> string) -> Hcrf_ir.Ddg.t -> t

(** Fingerprint of a loop: its graph (with memory streams as node
    attributes), trip count and entry count.  The loop's name is
    deliberately excluded. *)
val of_loop : Hcrf_ir.Loop.t -> t

(** Fingerprint of a full machine configuration: resources, register
    file organization (including port and bus counts), latencies, clock
    and miss latency.  The configuration's display name is excluded. *)
val of_config : Hcrf_machine.Config.t -> t

(** Fingerprint of scheduler options.  [probe] lists the node ids on
    which [load_override] is sampled (it is a function and cannot be
    hashed directly); the default samples nothing, which is correct
    whenever the override is derived deterministically from inputs
    already covered by the key. *)
val of_options : ?probe:int list -> Hcrf_sched.Engine.options -> t

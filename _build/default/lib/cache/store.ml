type t = { dir : string }

(* version 2: [Entry.Scheduled] gained [input_digest]; v1 payloads have
   a different Marshal layout and must be rejected before unmarshalling *)
let version = 2
let magic = Printf.sprintf "hcrf-cache %d\n" version

let dir t = t.dir

(* mkdir -p *)
let rec ensure_dir d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    ensure_dir (Filename.dirname d);
    Sys.mkdir d 0o755
  end

let open_dir d =
  match
    ensure_dir d;
    if not (Sys.is_directory d) then failwith "not a directory"
  with
  | () -> Some { dir = d }
  | exception e ->
    Logs.warn (fun m ->
        m "schedule cache: cannot use directory %s (%s); continuing \
           in-memory only"
          d (Printexc.to_string e));
    None

let path t ~key = Filename.concat t.dir (Fingerprint.to_hex key ^ ".hcrf")

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load t ~key =
  let p = path t ~key in
  if not (Sys.file_exists p) then `Miss
  else
    let stale reason =
      Logs.warn (fun m ->
          m "schedule cache: ignoring %s (%s); recomputing" p reason);
      `Error
    in
    match read_file p with
    | exception e -> stale (Printexc.to_string e)
    | content ->
      let mlen = String.length magic in
      if String.length content < mlen + 16 then stale "truncated"
      else if not (String.equal (String.sub content 0 mlen) magic) then
        stale "bad magic or stale version"
      else
        let sum = String.sub content mlen 16 in
        let payload =
          String.sub content (mlen + 16) (String.length content - mlen - 16)
        in
        if not (String.equal sum (Digest.string payload)) then
          stale "checksum mismatch"
        else begin
          (* the checksum matched, so the payload is exactly what a
             same-version writer produced: unmarshalling is safe *)
          match (Marshal.from_string payload 0 : string * Entry.t) with
          | exception e -> stale (Printexc.to_string e)
          | stored_key, entry ->
            if String.equal stored_key (Fingerprint.to_hex key) then
              `Hit entry
            else stale "key mismatch"
        end

let tmp_counter = Atomic.make 0

let save t ~key entry =
  let p = path t ~key in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" p (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let payload = Marshal.to_string (Fingerprint.to_hex key, entry) [] in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        output_string oc (Digest.string payload);
        output_string oc payload);
    Sys.rename tmp p
  with
  | () -> true
  | exception e ->
    (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
    Logs.warn (fun m ->
        m "schedule cache: cannot write %s (%s); entry kept in memory only"
          p (Printexc.to_string e));
    false

(** On-disk persistence for cache entries: one file per entry under a
    cache directory, named by the key's hex fingerprint.

    The file format is defensive: a versioned magic header followed by
    an MD5 checksum of the marshalled payload.  A truncated, corrupt,
    garbage or version-stale file fails the header or checksum test and
    is reported as a miss with a {!Logs} warning — never an exception,
    and in particular the unmarshaller is never run on bytes that were
    not written by a matching version of this module.

    Writes go through a temporary file in the same directory followed by
    an atomic rename, so concurrent processes sharing a cache directory
    can only ever observe complete entries. *)

type t

(** Current on-disk format version (bumped whenever the entry schema
    changes; older files are then skipped as stale). *)
val version : int

(** Open (creating it if needed, like [mkdir -p]) a cache directory.
    Returns [None] — with a warning — when the directory cannot be
    created or is not writable; callers degrade to in-memory-only
    caching. *)
val open_dir : string -> t option

val dir : t -> string

(** Path of the entry file for [key] (exposed for tests). *)
val path : t -> key:Fingerprint.t -> string

(** [`Miss] on absence; [`Error] (with a warning) on a truncated,
    corrupt, garbage, version-stale or unreadable file. *)
val load :
  t -> key:Fingerprint.t -> [ `Hit of Entry.t | `Miss | `Error ]

(** [false] — with a warning — when the entry could not be written. *)
val save : t -> key:Fingerprint.t -> Entry.t -> bool

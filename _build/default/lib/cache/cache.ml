type stats = {
  hits : int;
  misses : int;
  stores : int;
  disk_hits : int;
  disk_errors : int;
}

let zero_stats =
  { hits = 0; misses = 0; stores = 0; disk_hits = 0; disk_errors = 0 }

(* Keys in sorted order, [k=v] like the trace counters, so the cache
   line is byte-comparable across runs and merge tools can treat every
   counter line the same way. *)
let pp_stats ppf s =
  Fmt.pf ppf "disk-errors=%d disk-hits=%d hits=%d misses=%d stores=%d"
    s.disk_errors s.disk_hits s.hits s.misses s.stores

type t = {
  table : (Fingerprint.t, Entry.t) Hashtbl.t;
  store : Store.t option;
  mutex : Mutex.t;
  mutable counters : stats;
}

let create ?dir () =
  {
    table = Hashtbl.create 256;
    store = Option.bind dir Store.open_dir;
    mutex = Mutex.create ();
    counters = zero_stats;
  }

let dir t = Option.map Store.dir t.store

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

module Tr = Hcrf_obs.Trace
module Ev = Hcrf_obs.Event

let emit trace op =
  if Tr.enabled trace then Tr.emit trace (Ev.Cache op)

let find ?(trace = Tr.off) ?(validate = fun (_ : Entry.t) -> true) t key =
  let result =
    locked t (fun () ->
      let miss ?(disk_error = false) () =
        t.counters <-
          { t.counters with
            misses = t.counters.misses + 1;
            disk_errors =
              (t.counters.disk_errors + if disk_error then 1 else 0) };
        None
      in
      match Hashtbl.find_opt t.table key with
      | Some e when validate e ->
        t.counters <- { t.counters with hits = t.counters.hits + 1 };
        Some e
      | Some _ ->
        (* present but rejected by [validate] (e.g. the entry's schedule
           is bound to different node ids than the querying loop's): the
           caller must recompute, so this is a miss *)
        miss ()
      | None -> (
        let disk =
          match t.store with
          | None -> `Miss
          | Some s -> Store.load s ~key
        in
        match disk with
        | `Hit e when validate e ->
          Hashtbl.replace t.table key e;
          t.counters <-
            { t.counters with
              hits = t.counters.hits + 1;
              disk_hits = t.counters.disk_hits + 1 };
          Some e
        | `Hit _ -> miss ()
        | (`Miss | `Error) as r ->
          (* a present-but-unreadable file was already reported by
             [Store.load]; it counts as a miss and is recomputed *)
          miss ~disk_error:(r = `Error) ()))
  in
  emit trace (match result with Some _ -> Ev.Hit | None -> Ev.Miss);
  result

let add ?(trace = Tr.off) t key entry =
  emit trace Ev.Store;
  locked t (fun () ->
      Hashtbl.replace t.table key entry;
      let wrote =
        match t.store with
        | None -> true
        | Some s -> Store.save s ~key entry
      in
      t.counters <-
        { t.counters with
          stores = t.counters.stores + 1;
          disk_errors =
            (t.counters.disk_errors + if wrote then 0 else 1) };
      ())

let stats t = locked t (fun () -> t.counters)

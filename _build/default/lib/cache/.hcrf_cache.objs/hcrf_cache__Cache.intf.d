lib/cache/cache.mli: Entry Fingerprint Format Hcrf_obs

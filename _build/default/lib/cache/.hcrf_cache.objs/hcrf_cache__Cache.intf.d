lib/cache/cache.mli: Entry Fingerprint Format

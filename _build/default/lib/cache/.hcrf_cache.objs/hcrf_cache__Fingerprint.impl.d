lib/cache/fingerprint.ml: Ddg Dep Digest Fmt Hashtbl Hcrf_ir Hcrf_machine Hcrf_sched List Loop Op Option Printf String

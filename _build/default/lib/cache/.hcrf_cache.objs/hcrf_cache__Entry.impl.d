lib/cache/entry.ml: Buffer Ddg Dep Digest Engine Hcrf_ir Hcrf_machine Hcrf_sched List Mii Op Printf Schedule String Topology

lib/cache/entry.ml: Ddg Engine Hcrf_ir Hcrf_machine Hcrf_sched List Mii Schedule Topology

lib/cache/cache.ml: Entry Fingerprint Fmt Fun Hashtbl Hcrf_obs Mutex Option Store

lib/cache/cache.ml: Entry Fingerprint Fmt Fun Hashtbl Mutex Option Store

lib/cache/entry.mli: Hcrf_ir Hcrf_machine Hcrf_sched

lib/cache/fingerprint.mli: Format Hcrf_ir Hcrf_machine Hcrf_sched

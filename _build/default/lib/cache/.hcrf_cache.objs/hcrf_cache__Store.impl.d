lib/cache/store.ml: Atomic Digest Entry Filename Fingerprint Fun Logs Marshal Printexc Printf String Sys Unix

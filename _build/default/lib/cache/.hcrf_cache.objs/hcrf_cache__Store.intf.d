lib/cache/store.mli: Entry Fingerprint

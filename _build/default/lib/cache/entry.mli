(** Serializable cache entries for scheduling outcomes.

    An {!Hcrf_sched.Engine.outcome} contains mutable hash tables and one
    closure ([invariant_residents]), so it cannot be marshalled
    directly.  An entry instead stores a closure-free snapshot — the
    final graph as a {!Hcrf_ir.Ddg.repr}, the (node, cycle, location)
    assignments, the per-bank invariant residency captured as a finite
    table — from which {!to_outcome} rebuilds a behaviourally identical
    outcome by replaying the placements into a fresh
    {!Hcrf_sched.Schedule.t}.

    Failed scheduling attempts are cached too ([Failed]), so a loop that
    exhausts every escalation rung is not re-ground on the next run. *)

type stored_outcome = {
  s_ii : int;
  s_mii : int;
  s_bounds : Hcrf_sched.Mii.bounds;
  s_sc : int;
  s_assigns : (int * int * Hcrf_sched.Topology.loc) list;
      (** node, cycle, location — sorted by (cycle, node) so that
          producers are replayed before the [Move]s that read them *)
  s_graph : Hcrf_ir.Ddg.repr;
  s_invariant_residents : (Hcrf_sched.Topology.bank * int) list;
  s_seconds : float;  (** original scheduling wall-clock, not replay *)
  s_stats : Hcrf_sched.Engine.stats;
}

type t =
  | Scheduled of {
      outcome : stored_outcome;
      stall_cycles : float;  (** memory-simulation stalls of the run *)
      retries : int;  (** escalation rungs taken by the runner *)
      input_digest : string;
          (** {!ddg_digest} of the *input* graph the schedule was
              computed from (ids included) *)
    }
  | Failed of int  (** last II tried before giving up *)

(** Canonical id-sensitive digest of a graph.  The cache key's WL
    fingerprint equates isomorphic graphs, but stored assignments are
    tied to concrete node ids; comparing this digest at lookup time
    (via [Cache.find ~validate]) keeps a renumbered twin from replaying
    a schedule bound to the wrong ids.  Invariant under adjacency-list
    and invariant-table reordering, sensitive to any renumbering. *)
val ddg_digest : Hcrf_ir.Ddg.t -> string

(** Snapshot an outcome (pure; does not consume the outcome).
    [input_digest] must be {!ddg_digest} of the graph handed to the
    engine — not of the outcome's extended graph. *)
val of_outcome :
  Hcrf_machine.Config.t -> Hcrf_sched.Engine.outcome ->
  input_digest:string -> stall_cycles:float -> retries:int -> t

(** Rebuild a full outcome for [config].  The caller must pass the same
    configuration the entry was stored under (the cache key guarantees
    this). *)
val to_outcome :
  Hcrf_machine.Config.t -> stored_outcome -> Hcrf_sched.Engine.outcome

(** Strongly connected components of a DDG (Tarjan).

    In a well-formed dependence graph every cycle contains at least one
    loop-carried edge, so non-trivial SCCs are exactly the recurrences:
    they bound the initiation interval from below (RecMII) and make
    their loops "recurrence bound". *)

val sccs : Ddg.t -> int list list

(** A component is a recurrence if it has more than one node or a self
    edge. *)
val is_recurrence : Ddg.t -> int list -> bool

val recurrences : Ddg.t -> int list list
val has_recurrence : Ddg.t -> bool

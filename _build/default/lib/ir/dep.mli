(** Dependence kinds carried by DDG edges.

    The latency of an edge is not stored in the graph: it depends on the
    machine configuration (see {!Hcrf_sched.Latency}).  A [True]
    dependence waits for the producer latency; [Anti] and [Output]
    dependences only constrain issue order. *)

type t =
  | True   (** register or memory flow: the target reads what the source
               produced *)
  | Anti   (** the target overwrites a location the source reads *)
  | Output (** both write the same location *)

val equal : t -> t -> bool
val name : t -> string
val pp : Format.formatter -> t -> unit

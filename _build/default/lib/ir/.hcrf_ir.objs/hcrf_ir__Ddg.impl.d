lib/ir/ddg.ml: Dep Fmt Hashtbl List Op

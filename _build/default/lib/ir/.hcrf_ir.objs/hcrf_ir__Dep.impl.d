lib/ir/dep.ml: Fmt

lib/ir/op.ml: Fmt

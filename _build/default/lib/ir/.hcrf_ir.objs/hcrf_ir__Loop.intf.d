lib/ir/loop.mli: Ddg

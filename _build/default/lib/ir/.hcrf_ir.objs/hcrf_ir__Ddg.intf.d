lib/ir/ddg.mli: Dep Format Op

lib/ir/scc.ml: Ddg Hashtbl List

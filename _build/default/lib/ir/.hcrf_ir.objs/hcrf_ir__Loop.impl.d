lib/ir/loop.ml: Ddg List

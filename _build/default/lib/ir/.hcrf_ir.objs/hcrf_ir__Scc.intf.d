lib/ir/scc.mli: Ddg

(** Operation kinds of the loop IR.

    Original program operations are the floating-point computations and
    the memory accesses; the remaining kinds are inserted by the
    scheduler: [Move] copies a value between two first-level banks of a
    clustered RF, [Load_r]/[Store_r] move values down/up the two-level
    hierarchy, and [Spill_load]/[Spill_store] spill between the register
    file and memory. *)

type kind =
  | Fadd
  | Fmul
  | Fdiv
  | Fsqrt
  | Load
  | Store
  | Move        (** inter-cluster copy through a bus (clustered RF) *)
  | Load_r      (** shared (second-level) bank -> local bank *)
  | Store_r     (** local bank -> shared (second-level) bank *)
  | Spill_load  (** memory -> register file *)
  | Spill_store (** register file -> memory *)

(** Every kind, for exhaustive iteration in tests and statistics. *)
val all_kinds : kind list

val equal_kind : kind -> kind -> bool

(** Lower-case mnemonic, e.g. ["fadd"], ["loadr"]. *)
val kind_name : kind -> string

val pp_kind : Format.formatter -> kind -> unit

(** Operations that access the memory system (they count towards the
    memory-traffic metric and occupy a memory port). *)
val is_memory : kind -> bool

(** Operations executed on a general-purpose functional unit. *)
val is_compute : kind -> bool

(** Operations inserted to communicate values between banks. *)
val is_communication : kind -> bool

val is_spill : kind -> bool

(** Whether executing the operation produces a value in some register
    bank ([Store] and [Spill_store] only consume one). *)
val defines_value : kind -> bool

(** Operations original to the program, as opposed to
    scheduler-inserted. *)
val is_original : kind -> bool

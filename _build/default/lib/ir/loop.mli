(** A software-pipelineable innermost loop: its dependence graph plus
    the execution metadata the evaluation needs.

    [trip_count] is the number of iterations N per entry and [entries]
    the number of times E the loop is started (prologue/epilogue
    overhead is paid once per entry).  Memory [streams] describe the
    address sequence issued by each memory operation so the cache
    simulator can replay the loop without the original program. *)

type stream = {
  op : int;      (** node id of the load/store issuing the stream *)
  base : int;    (** first byte address *)
  stride : int;  (** bytes between consecutive iterations *)
}

type t = {
  ddg : Ddg.t;
  trip_count : int;
  entries : int;
  streams : stream list;
}

(** Raises [Invalid_argument] on non-positive counts. *)
val make :
  ?trip_count:int -> ?entries:int -> ?streams:stream list -> Ddg.t -> t

val name : t -> string

(** Total dynamic iterations, [trip_count * entries]. *)
val total_iterations : t -> int

(** Memory accesses per iteration of the *original* loop body (spill
    code added by the scheduler is accounted separately). *)
val memory_refs_per_iter : t -> int

val stream_for : t -> int -> stream option

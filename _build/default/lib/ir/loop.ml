(** A software-pipelineable innermost loop: its dependence graph plus the
    execution metadata the evaluation needs.

    [trip_count] is the number of iterations N per entry and [entries] the
    number of times E the loop is started (prologue/epilogue overhead is
    paid once per entry).  Memory [streams] describe the address sequence
    issued by each memory operation so the cache simulator can replay the
    loop without the original program. *)

type stream = {
  op : int;           (** node id of the load/store issuing the stream *)
  base : int;         (** first byte address *)
  stride : int;       (** bytes between consecutive iterations *)
}

type t = {
  ddg : Ddg.t;
  trip_count : int;
  entries : int;
  streams : stream list;
}

let make ?(trip_count = 100) ?(entries = 1) ?(streams = []) ddg =
  if trip_count < 1 then invalid_arg "Loop.make: trip_count < 1";
  if entries < 1 then invalid_arg "Loop.make: entries < 1";
  { ddg; trip_count; entries; streams }

let name t = Ddg.name t.ddg

(** Total dynamic iterations N * E. *)
let total_iterations t = t.trip_count * t.entries

(** Memory accesses per iteration of the *original* loop body (spill code
    added by the scheduler is accounted separately). *)
let memory_refs_per_iter t = Ddg.num_memory_ops t.ddg

let stream_for t op_id = List.find_opt (fun s -> s.op = op_id) t.streams

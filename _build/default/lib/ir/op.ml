(** Operation kinds of the loop IR.

    Original program operations are the floating-point computations and the
    memory accesses.  The remaining kinds are inserted by the scheduler:
    [Move] copies a value between two first-level banks of a clustered RF,
    [Load_r]/[Store_r] move values down/up the two-level hierarchy, and
    [Spill_load]/[Spill_store] spill between the register file and memory. *)

type kind =
  | Fadd
  | Fmul
  | Fdiv
  | Fsqrt
  | Load
  | Store
  | Move        (** inter-cluster copy through a bus (clustered RF) *)
  | Load_r      (** shared (second-level) bank -> local bank *)
  | Store_r     (** local bank -> shared (second-level) bank *)
  | Spill_load  (** memory -> register file *)
  | Spill_store (** register file -> memory *)

let all_kinds =
  [ Fadd; Fmul; Fdiv; Fsqrt; Load; Store; Move; Load_r; Store_r;
    Spill_load; Spill_store ]

let equal_kind (a : kind) (b : kind) = a = b

let kind_name = function
  | Fadd -> "fadd"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fsqrt -> "fsqrt"
  | Load -> "load"
  | Store -> "store"
  | Move -> "move"
  | Load_r -> "loadr"
  | Store_r -> "storer"
  | Spill_load -> "spill_load"
  | Spill_store -> "spill_store"

let pp_kind ppf k = Fmt.string ppf (kind_name k)

(** Operations that access the memory system (and hence count towards the
    memory-traffic metric and use a memory port). *)
let is_memory = function
  | Load | Store | Spill_load | Spill_store -> true
  | Fadd | Fmul | Fdiv | Fsqrt | Move | Load_r | Store_r -> false

(** Operations executed on a general-purpose functional unit. *)
let is_compute = function
  | Fadd | Fmul | Fdiv | Fsqrt -> true
  | Load | Store | Move | Load_r | Store_r | Spill_load | Spill_store ->
    false

(** Operations inserted to communicate values between banks. *)
let is_communication = function
  | Move | Load_r | Store_r -> true
  | Fadd | Fmul | Fdiv | Fsqrt | Load | Store | Spill_load | Spill_store ->
    false

let is_spill = function
  | Spill_load | Spill_store -> true
  | _ -> false

(** Whether executing the operation produces a value in some register bank.
    [Store] and [Spill_store] only consume a value. *)
let defines_value = function
  | Fadd | Fmul | Fdiv | Fsqrt | Load | Move | Load_r | Store_r
  | Spill_load -> true
  | Store | Spill_store -> false

(** Operations original to the program, as opposed to scheduler-inserted. *)
let is_original = function
  | Fadd | Fmul | Fdiv | Fsqrt | Load | Store -> true
  | Move | Load_r | Store_r | Spill_load | Spill_store -> false

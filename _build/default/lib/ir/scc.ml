(** Strongly connected components of a DDG (Tarjan).

    In a well-formed dependence graph every cycle contains at least one
    loop-carried edge, so non-trivial SCCs are exactly the recurrences the
    paper talks about: they bound the initiation interval from below
    (RecMII) and make their loops "recurrence bound". *)

let sccs (g : Ddg.t) : int list list =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun (e : Ddg.edge) ->
        let w = e.dst in
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Ddg.succs g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      result := pop [] :: !result
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v)
    (Ddg.nodes g);
  !result

(** A component is a recurrence if it has more than one node or a self
    edge. *)
let is_recurrence (g : Ddg.t) = function
  | [] -> false
  | [ v ] -> List.exists (fun (e : Ddg.edge) -> e.dst = v) (Ddg.succs g v)
  | _ :: _ :: _ -> true

let recurrences g = List.filter (is_recurrence g) (sccs g)

(** Whether the loop body contains any recurrence at all. *)
let has_recurrence g = recurrences g <> []

(** Dependence kinds carried by DDG edges.

    The latency of an edge is not stored in the graph: it depends on the
    machine configuration (operation latencies are scaled with the cycle
    time, see {!Hcrf_machine}).  A [True] dependence waits for the producer
    latency; [Anti] and [Output] dependences only constrain issue order. *)

type t =
  | True   (** register flow: the source defines a value the target reads *)
  | Anti   (** the target overwrites a location the source reads *)
  | Output (** both define the same location *)

let equal (a : t) (b : t) = a = b

let name = function True -> "true" | Anti -> "anti" | Output -> "output"
let pp ppf d = Fmt.string ppf (name d)

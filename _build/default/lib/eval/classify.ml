(** Loop-bound classification (Table 1).

    A loop is compute (F.U.), memory-port, recurrence or communication
    bound according to which lower bound limits its initiation interval.
    The bounds are taken on the *final* graph (including the inserted
    communication and spill operations), which is how moving from a
    monolithic to a clustered RF converts compute-bound loops into
    communication-bound ones. *)

open Hcrf_sched

type bound = Fu | Mem | Rec | Com

let all = [ Fu; Mem; Rec; Com ]

let name = function
  | Fu -> "F.U."
  | Mem -> "MemPort"
  | Rec -> "Rec."
  | Com -> "Com."

let pp ppf b = Fmt.string ppf (name b)

(** Classify from the MII component bounds.  The largest bound wins;
    ties are resolved communication > recurrence > memory > compute only
    when the bound is non-trivial (> 1); a trivially-bounded loop (every
    component 1) counts as memory bound if it has memory operations,
    compute bound otherwise. *)
let of_bounds ?(has_memory = true) (b : Mii.bounds) : bound =
  let m = max (max b.fu b.mem) (max b.comm b.rec_) in
  if m <= 1 then if has_memory then Mem else Fu
  else if b.comm = m then Com
  else if b.rec_ = m then Rec
  else if b.mem = m then Mem
  else Fu

let of_outcome (o : Engine.outcome) : bound =
  of_bounds
    ~has_memory:(Hcrf_ir.Ddg.num_memory_ops o.Engine.graph > 0)
    o.Engine.bounds

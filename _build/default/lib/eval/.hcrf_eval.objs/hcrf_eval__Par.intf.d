lib/eval/par.mli:

lib/eval/experiments.ml: Cacti Classify Config Engine Fmt Fun Hcrf_core Hcrf_ir Hcrf_machine Hcrf_model Hcrf_sched Hw_table Latencies List Metrics Presets Runner Timing Unix

lib/eval/classify.mli: Format Hcrf_sched

lib/eval/classify.ml: Engine Fmt Hcrf_ir Hcrf_sched Mii

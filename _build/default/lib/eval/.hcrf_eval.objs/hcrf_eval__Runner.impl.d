lib/eval/runner.ml: Ddg Engine Hcrf_cache Hcrf_ir Hcrf_machine Hcrf_memsim Hcrf_obs Hcrf_sched List Logs Loop Metrics Op Par Schedule String

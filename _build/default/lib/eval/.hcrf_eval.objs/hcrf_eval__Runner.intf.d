lib/eval/runner.mli: Hcrf_cache Hcrf_ir Hcrf_machine Hcrf_memsim Hcrf_obs Hcrf_sched Metrics

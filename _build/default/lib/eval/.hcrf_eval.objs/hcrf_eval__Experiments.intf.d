lib/eval/experiments.mli: Classify Engine Format Hcrf_ir Hcrf_machine Hcrf_model Hcrf_sched Runner

lib/eval/metrics.ml: Classify Ddg Engine Fmt Hcrf_cache Hcrf_ir Hcrf_machine Hcrf_obs Hcrf_sched List Loop

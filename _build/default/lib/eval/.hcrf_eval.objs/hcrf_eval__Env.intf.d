lib/eval/env.mli: Hcrf_cache Hcrf_obs

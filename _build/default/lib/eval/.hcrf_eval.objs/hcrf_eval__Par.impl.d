lib/eval/par.ml: Array Domain Fun List Mutex Printexc

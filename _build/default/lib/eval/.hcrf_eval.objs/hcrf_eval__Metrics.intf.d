lib/eval/metrics.mli: Classify Format Hcrf_cache Hcrf_ir Hcrf_machine Hcrf_obs Hcrf_sched

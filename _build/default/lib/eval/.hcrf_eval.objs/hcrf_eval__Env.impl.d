lib/eval/env.ml: Array Hcrf_cache Hcrf_obs List Logs Par String Sys Unix

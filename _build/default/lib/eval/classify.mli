(** Loop-bound classification (Table 1).

    A loop is compute (F.U.), memory-port, recurrence or communication
    bound according to which lower bound limits its initiation interval,
    taken on the *final* graph (including inserted communication and
    spill operations) — which is how moving from a monolithic to a
    clustered RF converts compute-bound loops into communication-bound
    ones. *)

type bound = Fu | Mem | Rec | Com

val all : bound list
val name : bound -> string
val pp : Format.formatter -> bound -> unit

(** The largest bound wins; ties resolve communication > recurrence >
    memory > compute when non-trivial; a trivially-bounded loop counts
    as memory bound if it has memory operations, compute bound
    otherwise. *)
val of_bounds : ?has_memory:bool -> Hcrf_sched.Mii.bounds -> bound

val of_outcome : Hcrf_sched.Engine.outcome -> bound

(** Drive the scheduler (and optionally the memory simulator) over a
    suite of loops for one processor configuration. *)

type memory_scenario =
  | Ideal  (** every access hits; no stall cycles (§6.1) *)
  | Real of { prefetch : bool }
      (** cache simulation, optionally with selective binding
          prefetching (§6.2) *)

type loop_result = {
  loop : Hcrf_ir.Loop.t;
  outcome : Hcrf_sched.Engine.outcome;
  perf : Metrics.loop_perf;
}

(** Memory references of the final graph for the cache simulation:
    original operations replay their loop streams, spill operations get
    per-op stack slots. *)
val mem_refs :
  Hcrf_machine.Config.t -> Hcrf_ir.Loop.t -> Hcrf_sched.Engine.outcome ->
  override:(int -> int option) -> Hcrf_memsim.Sim.mem_ref list

(** Canonical cache key of one [run_loop] invocation: configuration,
    loop, options and memory scenario.  [opts.load_override] is not
    sampled — the runner derives the actual override from the scenario
    and loop, both covered by the key. *)
val cache_key :
  scenario:memory_scenario -> opts:Hcrf_sched.Engine.options ->
  Hcrf_machine.Config.t -> Hcrf_ir.Loop.t -> Hcrf_cache.Fingerprint.t

(** Schedule one loop (with escalating budget retries so aggregate
    metrics never silently drop loops); [None] only if every retry
    failed.  With [?cache], outcomes are memoized by content-addressed
    key; a hit replays the stored schedule and yields a byte-identical
    result. *)
val run_loop :
  ?scenario:memory_scenario -> ?opts:Hcrf_sched.Engine.options ->
  ?cache:Hcrf_cache.Cache.t -> Hcrf_machine.Config.t -> Hcrf_ir.Loop.t ->
  loop_result option

(** Schedule a whole suite.  [jobs] > 1 evaluates the loops on a pool of
    domains ({!Par}); results are collected in input order, so every
    aggregate is byte-identical to the serial ([jobs = 1], default)
    path.  [?cache] is safe to share across the pool (mutex-protected)
    and cannot change any result, warm or cold, at any job count. *)
val run_suite :
  ?scenario:memory_scenario -> ?opts:Hcrf_sched.Engine.options ->
  ?cache:Hcrf_cache.Cache.t -> ?jobs:int -> Hcrf_machine.Config.t ->
  Hcrf_ir.Loop.t list -> loop_result list

val aggregate :
  Hcrf_machine.Config.t -> loop_result list -> Metrics.aggregate

(** Structure-preserving loop rewrites for the metamorphic oracle.

    A rewrite relabels node ids through a bijection and reverses every
    adjacency list (and invariant consumer list), producing a loop that
    is isomorphic to the original — same WL fingerprint, same reference
    semantics — while looking as different as possible to anything that
    iterates over ids or edge lists. *)

(** A bijection on the graph's node ids that maps the sorted id
    sequence onto its reverse (identity outside the graph, and the
    identity function for a single-node graph). *)
val reversing_bijection : Hcrf_ir.Ddg.t -> int -> int

(** Rebuild [loop] with every node id mapped through [m] and every
    adjacency, consumer and stream table rewritten accordingly.
    [m = Fun.id] still reverses the adjacency-list order, which is the
    "reorder only" twin. *)
val rewrite_loop : m:(int -> int) -> Hcrf_ir.Loop.t -> Hcrf_ir.Loop.t

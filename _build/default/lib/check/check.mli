(** Differential fuzzing of the MIRS_HC scheduling pipeline.

    A campaign generates loops with {!Hcrf_workload.Genloop} across a
    deterministic sweep of generator parameters × machine
    configurations × scheduler options, runs each case through
    {!Hcrf_eval.Runner} and cross-checks the result against independent
    oracles:

    - {!Hcrf_sched.Validate.check} must accept the produced schedule;
    - {!Hcrf_pipesim.Pipe_exec} must reproduce {!Hcrf_pipesim.Ref_exec}
      values and memory at several iteration counts;
    - a warm replay through the case's (private) schedule cache must
      validate and be byte-identical to the cold outcome;
    - metamorphic twins (adjacency reorder; node renumbering) must keep
      the WL fingerprint, schedule successfully, validate, execute
      correctly and agree on MII.  (Full II/spill equality under
      renumbering does *not* hold for this engine — cluster selection
      is id-sensitive — so the oracle deliberately checks the invariant
      that does hold; see DESIGN.md.)

    Every case runs under an exception barrier, so an engine crash is a
    [Crash] verdict, not a dead campaign.  Failing cases are fed to the
    minimizing {!Shrink}er and emitted as {!Repro} files.  Campaigns
    are deterministic: the same seed produces a byte-identical report
    for any [jobs] value. *)

module Ev = Hcrf_obs.Event

(** Named presets swept by {!campaign}. *)
val param_presets : (string * Hcrf_workload.Genloop.params) list

val config_names : string list
val options_presets : (string * Hcrf_sched.Engine.options) list

(** Resolve a machine notation like the CLI does: published Table-5
    hardware when available, the analytic model otherwise. *)
val config_of_name :
  ?n_fus:int -> ?n_mem_ports:int -> string -> Hcrf_machine.Config.t

type verdict = { kind : Ev.fuzz_verdict; detail : string }

(** Failure = any verdict the oracles can falsify.  [Pass] is success;
    [No_schedule] (the engine giving up after every escalation rung) is
    recorded in the taxonomy but is not an oracle failure. *)
val is_failure : Ev.fuzz_verdict -> bool

(** Run every oracle leg on one loop.  [cache] is the schedule cache
    the runner goes through (a fresh private one when omitted; sharing
    one across calls additionally exercises cross-case cache
    collisions). *)
val oracle :
  ?cache:Hcrf_cache.Cache.t -> opts:Hcrf_sched.Engine.options ->
  Hcrf_machine.Config.t -> Hcrf_ir.Loop.t -> verdict

type failure = {
  f_case : int;
  f_params : string;
  f_config : string;
  f_options : string;
  f_kind : Ev.fuzz_verdict;
  f_detail : string;  (** detail of the *shrunk* case *)
  f_loop : Hcrf_ir.Loop.t;  (** shrunk loop (original if shrinking off) *)
  f_lats : Hcrf_machine.Latencies.t;
  f_nodes : int;  (** node count after shrinking *)
  f_steps : int;  (** accepted shrink steps *)
}

type report = {
  r_seed : int;
  r_cases : int;
  r_counts : (string * int) list;  (** verdict name -> count, fixed order *)
  r_failures : failure list;       (** in case order *)
}

(** Deterministic rendering (no wall-clock, no absolute paths). *)
val pp_report : Format.formatter -> report -> unit

(** Run a campaign of [cases] cases.  [ctx] supplies [jobs] and the
    tracer (each case emits a [Fuzz] verdict event and, when shrinking,
    a [Shrink] event); its cache and options are *not* used — every
    case runs its own private cache and preset options, so user-level
    caching can never mask a divergence.  [corpus] writes a {!Repro}
    file per failure into the given directory. *)
val campaign :
  ?ctx:Hcrf_eval.Runner.Ctx.t -> ?shrink:bool -> ?corpus:string ->
  ?config_presets:(string * Hcrf_machine.Config.t) list ->
  ?max_shrink_evals:int -> seed:int -> cases:int -> unit -> report

(** Re-run the oracle on one reproducer.  With [cache], the runner goes
    through that (shared) cache — replaying a corpus must yield the
    same verdicts with and without one. *)
val replay_file :
  ?cache:Hcrf_cache.Cache.t -> Repro.t -> verdict

(** Replay every [*.repro] under a directory, in file-name order.
    Returns [(path, reproducer, verdict)] per file; parse errors fail
    the whole replay. *)
val replay_corpus :
  ?cache:Hcrf_cache.Cache.t -> string ->
  ((string * Repro.t * verdict) list, string) result

lib/check/shrink.mli: Hcrf_ir Hcrf_machine

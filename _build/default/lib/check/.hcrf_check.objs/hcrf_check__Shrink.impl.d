lib/check/shrink.ml: Ddg Fun Hashtbl Hcrf_ir Hcrf_machine List Loop Option

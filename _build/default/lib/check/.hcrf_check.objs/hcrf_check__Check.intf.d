lib/check/check.mli: Format Hcrf_cache Hcrf_eval Hcrf_ir Hcrf_machine Hcrf_obs Hcrf_sched Hcrf_workload Repro

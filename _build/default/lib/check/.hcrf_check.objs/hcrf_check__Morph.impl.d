lib/check/morph.ml: Ddg Hashtbl Hcrf_ir List Loop

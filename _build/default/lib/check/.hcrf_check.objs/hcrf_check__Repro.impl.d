lib/check/repro.ml: Array Buffer Ddg Dep Filename Fmt Fun Hashtbl Hcrf_cache Hcrf_frontend Hcrf_ir Hcrf_machine Hcrf_obs List Loop Op Printexc Result String Sys

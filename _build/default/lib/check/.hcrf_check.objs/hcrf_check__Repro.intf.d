lib/check/repro.mli: Hcrf_ir Hcrf_machine Hcrf_obs

lib/check/morph.mli: Hcrf_ir

(** Self-contained reproducers for fuzzing failures.

    A reproducer is one text file ([*.repro]) that pins everything a
    failing case needs to be replayed: campaign seed and case index,
    the parameter/config/options preset names, the exact machine knobs
    that the shrinker may have reduced (FU and port counts, the full
    latency record) and the (possibly shrunk) loop itself — node ids,
    adjacency-list order, id counters, invariants, streams — in a
    versioned line format with a strict parser, so a corpus survives
    unrelated refactors.

    Two informational comments close each file: an [# ocaml:] line
    giving the loop as an OCaml {!Hcrf_ir.Ddg.repr} value, and an
    [# ast:] line giving a frontend {!Hcrf_frontend.Ast} program when
    the loop is expressible as one (verified by recompiling the
    candidate and comparing WL fingerprints), or the reason it is
    not. *)

type t = {
  seed : int;          (** campaign seed *)
  case : int;          (** case index within the campaign *)
  params : string;     (** generator parameter preset name *)
  config : string;     (** machine notation, e.g. "4C16S16" *)
  n_fus : int;
  n_mem_ports : int;
  lats : Hcrf_machine.Latencies.t;
  options : string;    (** scheduler options preset name *)
  verdict : Hcrf_obs.Event.fuzz_verdict;  (** failure kind reproduced *)
  detail : string;     (** one-line description of the failure *)
  loop : Hcrf_ir.Loop.t;
}

(** Render [t.loop] as a frontend AST program when expressible;
    [Error reason] otherwise.  Expressible means: an invariant-free
    forest of single-consumer arithmetic over unit-stride array reads
    feeding stores, with no loop-carried or ordering edges, that
    recompiles to a WL-identical loop. *)
val ast_of_loop : Hcrf_ir.Loop.t -> (string, string) result

val to_string : t -> string
val of_string : string -> (t, string) result

(** [write ~dir t] saves [t] under a deterministic file name
    ("case%04d-%s.repro" from case index and verdict) inside [dir]
    (created if needed) and returns the path. *)
val write : dir:string -> t -> string

val load : string -> (t, string) result

(** Sorted [*.repro] paths under a directory ([] if it is missing). *)
val corpus_files : string -> string list

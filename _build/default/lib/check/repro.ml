open Hcrf_ir
module Lat = Hcrf_machine.Latencies
module Ev = Hcrf_obs.Event

type t = {
  seed : int;
  case : int;
  params : string;
  config : string;
  n_fus : int;
  n_mem_ports : int;
  lats : Lat.t;
  options : string;
  verdict : Ev.fuzz_verdict;
  detail : string;
  loop : Loop.t;
}

let format_magic = "hcrf-repro 1"

(* ------------------------------------------------------------------ *)
(* Names                                                               *)

let kind_of_name s =
  List.find_opt (fun k -> String.equal (Op.kind_name k) s) Op.all_kinds

let dep_of_name s =
  List.find_opt
    (fun d -> String.equal (Dep.name d) s)
    [ Dep.True; Dep.Anti; Dep.Output ]

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* ------------------------------------------------------------------ *)
(* The informational OCaml rendering                                   *)

let kind_constructor = function
  | Op.Fadd -> "Fadd"
  | Op.Fmul -> "Fmul"
  | Op.Fdiv -> "Fdiv"
  | Op.Fsqrt -> "Fsqrt"
  | Op.Load -> "Load"
  | Op.Store -> "Store"
  | Op.Move -> "Move"
  | Op.Load_r -> "Load_r"
  | Op.Store_r -> "Store_r"
  | Op.Spill_load -> "Spill_load"
  | Op.Spill_store -> "Spill_store"

let pp_edge_ml ppf (e : Ddg.edge) =
  Fmt.pf ppf "{src=%d;dst=%d;dep=%s;distance=%d}" e.Ddg.src e.Ddg.dst
    (match e.Ddg.dep with
    | Dep.True -> "True"
    | Dep.Anti -> "Anti"
    | Dep.Output -> "Output")
    e.Ddg.distance

let pp_repr_ml ppf (r : Ddg.repr) =
  Fmt.pf ppf
    "{repr_name=%S;repr_next_id=%d;repr_next_inv=%d;repr_nodes=[%a];\
     repr_invariants=[%a]}"
    r.Ddg.repr_name r.Ddg.repr_next_id r.Ddg.repr_next_inv
    (Fmt.list ~sep:(Fmt.any ";")
       (fun ppf (id, k, succs, preds) ->
         Fmt.pf ppf "(%d,%s,[%a],[%a])" id (kind_constructor k)
           (Fmt.list ~sep:(Fmt.any ";") pp_edge_ml)
           succs
           (Fmt.list ~sep:(Fmt.any ";") pp_edge_ml)
           preds))
    r.Ddg.repr_nodes
    (Fmt.list ~sep:(Fmt.any ";")
       (fun ppf (inv, cs) ->
         Fmt.pf ppf "(%d,[%a])" inv
           (Fmt.list ~sep:(Fmt.any ";") Fmt.int)
           cs))
    r.Ddg.repr_invariants

(* ------------------------------------------------------------------ *)
(* Best-effort frontend AST rendering                                  *)

(* [Compile] allocates array [i] at base [i * (2^20 + 1056)] plus
   [offset * element size]; invert that to recover (array, offset). *)
let decode_base base =
  let unit = (1 lsl 20) + 1056 in
  let cand i =
    if i < 0 then None
    else
      let rem = base - (i * unit) in
      if rem mod 8 = 0 && abs (rem / 8) <= 4096 then Some (i, rem / 8)
      else None
  in
  let i0 = base / unit in
  match cand i0 with
  | Some r -> Some r
  | None -> ( match cand (i0 + 1) with Some r -> Some r | None -> cand (i0 - 1))

let ast_of_loop (loop : Loop.t) : (string, string) result =
  let module Ast = Hcrf_frontend.Ast in
  let g = loop.Loop.ddg in
  let ( let* ) = Result.bind in
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  let* () =
    if Ddg.invariants g = [] then Ok () else err "loop has invariants"
  in
  let* () =
    if
      List.for_all
        (fun (e : Ddg.edge) -> e.Ddg.dep = Dep.True && e.Ddg.distance = 0)
        (Ddg.edges g)
    then Ok ()
    else err "loop has loop-carried or memory-ordering edges"
  in
  (* recover (array index, offset) of every memory node *)
  let decode v =
    match Loop.stream_for loop v with
    | None -> err "memory node %d has no stream" v
    | Some s ->
      if s.Loop.stride <> 8 then err "node %d: stride %d" v s.Loop.stride
      else (
        match decode_base s.Loop.base with
        | Some (i, k) -> Ok (Fmt.str "a%d" i, k)
        | None -> err "node %d: base %d not array-shaped" v s.Loop.base)
  in
  (* single-consumer tree rooted in stores *)
  let rec expr v =
    let k = Ddg.kind g v in
    let ops = List.map (fun (e : Ddg.edge) -> e.Ddg.src) (Ddg.preds g v) in
    let* () =
      match Ddg.succs g v with
      | [ _ ] -> Ok ()
      | l -> err "node %d has %d consumers" v (List.length l)
    in
    match (k, ops) with
    | Op.Load, [] ->
      let* a, off = decode v in
      Ok (Ast.arr ~off a, Fmt.str "(arr %S ~off:%d)" a off)
    | Op.Fsqrt, [ a ] ->
      let* ea, sa = expr a in
      Ok (Ast.sqrt_ ea, Fmt.str "(sqrt_ %s)" sa)
    | Op.Fadd, [ a; b ] ->
      let* ea, sa = expr a in
      let* eb, sb = expr b in
      Ok (Ast.(ea +: eb), Fmt.str "(%s +: %s)" sa sb)
    | Op.Fmul, [ a; b ] ->
      let* ea, sa = expr a in
      let* eb, sb = expr b in
      Ok (Ast.(ea *: eb), Fmt.str "(%s *: %s)" sa sb)
    | Op.Fdiv, [ a; b ] ->
      let* ea, sa = expr a in
      let* eb, sb = expr b in
      Ok (Ast.(ea /: eb), Fmt.str "(%s /: %s)" sa sb)
    | k, ops ->
      err "node %d: %s with %d operands is not expressible" v (Op.kind_name k)
        (List.length ops)
  in
  let* stmts =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match Ddg.kind g v with
        | Op.Store -> (
          match (Ddg.preds g v, Ddg.succs g v) with
          | [ e ], [] ->
            let* a, off = decode v in
            let* ev, sv = expr e.Ddg.src in
            Ok ((Ast.store ~off a ev, Fmt.str "store %S ~off:%d %s" a off sv) :: acc)
          | _ -> err "store %d is not a single-operand sink" v)
        | _ -> Ok acc)
      (Ok []) (Ddg.nodes g)
  in
  let stmts = List.rev stmts in
  let* () = if stmts = [] then err "loop has no stores" else Ok () in
  (* every non-store node must feed some store: tree coverage implies
     node counts match after recompiling, which the fingerprint checks *)
  let ast =
    Hcrf_frontend.Ast.make ~trip_count:loop.Loop.trip_count
      ~entries:loop.Loop.entries ~name:(Loop.name loop)
      (List.map fst stmts)
  in
  match Hcrf_frontend.Compile.compile ast with
  | exception Hcrf_frontend.Compile.Error msg ->
    err "candidate AST rejected by the compiler: %s" msg
  | compiled ->
    if
      Hcrf_cache.Fingerprint.equal
        (Hcrf_cache.Fingerprint.of_loop compiled)
        (Hcrf_cache.Fingerprint.of_loop loop)
    then
      Ok
        (Fmt.str "make ~trip_count:%d ~entries:%d ~name:%S [%a]"
           loop.Loop.trip_count loop.Loop.entries (Loop.name loop)
           (Fmt.list ~sep:(Fmt.any "; ") Fmt.string)
           (List.map snd stmts))
    else err "candidate AST compiles to a non-isomorphic loop"

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let to_string t =
  let b = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let r = Ddg.to_repr t.loop.Loop.ddg in
  line "%s" format_magic;
  line "# reproducer emitted by hcrf_check; replay with [Check.replay_file]";
  line "seed %d" t.seed;
  line "case %d" t.case;
  line "params %s" t.params;
  line "config %s" t.config;
  line "machine n_fus=%d n_mem_ports=%d" t.n_fus t.n_mem_ports;
  line "lats fadd=%d fmul=%d fdiv=%d fsqrt=%d mem_read=%d mem_write=%d \
        move=%d loadr=%d storer=%d"
    t.lats.Lat.fadd t.lats.Lat.fmul t.lats.Lat.fdiv t.lats.Lat.fsqrt
    t.lats.Lat.mem_read t.lats.Lat.mem_write t.lats.Lat.move t.lats.Lat.loadr
    t.lats.Lat.storer;
  line "options %s" t.options;
  line "verdict %s" (Ev.fuzz_verdict_name t.verdict);
  line "detail %s" (one_line t.detail);
  line "name %s" r.Ddg.repr_name;
  line "trip %d" t.loop.Loop.trip_count;
  line "entries %d" t.loop.Loop.entries;
  line "next %d %d" r.Ddg.repr_next_id r.Ddg.repr_next_inv;
  List.iter
    (fun (id, k, _, _) -> line "node %d %s" id (Op.kind_name k))
    r.Ddg.repr_nodes;
  List.iter
    (fun (_, _, succs, _) ->
      List.iter
        (fun (e : Ddg.edge) ->
          line "succ %d %d %s %d" e.Ddg.src e.Ddg.dst (Dep.name e.Ddg.dep)
            e.Ddg.distance)
        succs)
    r.Ddg.repr_nodes;
  List.iter
    (fun (_, _, _, preds) ->
      List.iter
        (fun (e : Ddg.edge) ->
          line "pred %d %d %s %d" e.Ddg.src e.Ddg.dst (Dep.name e.Ddg.dep)
            e.Ddg.distance)
        preds)
    r.Ddg.repr_nodes;
  List.iter
    (fun (inv, consumers) ->
      line "inv %d %s" inv
        (match consumers with
        | [] -> "-"
        | cs -> String.concat "," (List.map string_of_int cs)))
    r.Ddg.repr_invariants;
  List.iter
    (fun (s : Loop.stream) ->
      line "stream %d %d %d" s.Loop.op s.Loop.base s.Loop.stride)
    t.loop.Loop.streams;
  line "# ocaml: Ddg.of_repr %a" pp_repr_ml r;
  (match ast_of_loop t.loop with
  | Ok ast -> line "# ast: Ast.%s" ast
  | Error reason -> line "# ast: not expressible: %s" reason);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Bad of string

let badf fmt = Fmt.kstr (fun s -> raise (Bad s)) fmt

let of_string s : (t, string) result =
  let int_of n v =
    match int_of_string_opt v with
    | Some i -> i
    | None -> badf "%s: not an integer: %s" n v
  in
  (* singleton fields *)
  let fields : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let set k v =
    if Hashtbl.mem fields k then badf "duplicate field %s" k;
    Hashtbl.replace fields k v
  in
  let get k =
    match Hashtbl.find_opt fields k with
    | Some v -> v
    | None -> badf "missing field %s" k
  in
  (* accumulated sections, kept in file order *)
  let nodes = ref [] and succs = ref [] and preds = ref [] in
  let invs = ref [] and streams = ref [] in
  let parse_edge n = function
    | [ src; dst; dep; dist ] ->
      let dep =
        match dep_of_name dep with
        | Some d -> d
        | None -> badf "%s: unknown dependence %s" n dep
      in
      { Ddg.src = int_of n src; dst = int_of n dst; dep;
        distance = int_of n dist }
    | _ -> badf "%s: expected <src> <dst> <dep> <distance>" n
  in
  let parse_line ln =
    match String.split_on_char ' ' ln |> List.filter (fun s -> s <> "") with
    | [] -> ()
    | "#" :: _ -> ()
    | keyword :: rest -> (
      if String.length keyword > 0 && keyword.[0] = '#' then ()
      else
        match (keyword, rest) with
        | "node", [ id; kind ] ->
          let k =
            match kind_of_name kind with
            | Some k -> k
            | None -> badf "node %s: unknown kind %s" id kind
          in
          nodes := (int_of "node" id, k) :: !nodes
        | "succ", args -> succs := parse_edge "succ" args :: !succs
        | "pred", args -> preds := parse_edge "pred" args :: !preds
        | "inv", [ id; consumers ] ->
          let cs =
            if String.equal consumers "-" then []
            else
              String.split_on_char ',' consumers
              |> List.map (fun c -> int_of "inv" c)
          in
          invs := (int_of "inv" id, cs) :: !invs
        | "stream", [ op; base; stride ] ->
          streams :=
            { Loop.op = int_of "stream" op; base = int_of "stream" base;
              stride = int_of "stream" stride }
            :: !streams
        | ("detail" | "lats" | "machine" | "next" | "name"), _ ->
          set keyword (String.concat " " rest)
        | (("seed" | "case" | "params" | "config" | "options" | "verdict"
           | "trip" | "entries") as k), [ v ] ->
          set k v
        | k, _ -> badf "unknown or malformed line: %s"
                    (String.concat " " (k :: rest)))
  in
  let build () =
    match String.split_on_char '\n' s with
    | magic :: rest when String.equal (String.trim magic) format_magic ->
      List.iter (fun ln -> parse_line (String.trim ln)) rest;
      let nodes = List.rev !nodes in
      let succs = List.rev !succs and preds = List.rev !preds in
      let next_id, next_inv =
        match
          String.split_on_char ' ' (get "next")
          |> List.filter (fun x -> x <> "")
        with
        | [ a; b ] -> (int_of "next" a, int_of "next" b)
        | _ -> badf "next: expected two integers"
      in
      let kv n line =
        (* "k1=v1 k2=v2 ..." -> assoc list *)
        String.split_on_char ' ' line
        |> List.filter (fun x -> x <> "")
        |> List.map (fun pair ->
               match String.index_opt pair '=' with
               | Some i ->
                 ( String.sub pair 0 i,
                   int_of n
                     (String.sub pair (i + 1) (String.length pair - i - 1)) )
               | None -> badf "%s: expected k=v, got %s" n pair)
      in
      let machine = kv "machine" (get "machine") in
      let lat = kv "lats" (get "lats") in
      let field n l k =
        match List.assoc_opt k l with
        | Some v -> v
        | None -> badf "%s: missing %s" n k
      in
      let lats =
        {
          Lat.fadd = field "lats" lat "fadd";
          fmul = field "lats" lat "fmul";
          fdiv = field "lats" lat "fdiv";
          fsqrt = field "lats" lat "fsqrt";
          mem_read = field "lats" lat "mem_read";
          mem_write = field "lats" lat "mem_write";
          move = field "lats" lat "move";
          loadr = field "lats" lat "loadr";
          storer = field "lats" lat "storer";
        }
      in
      let verdict =
        let v = get "verdict" in
        match Ev.fuzz_verdict_of_name v with
        | Some k -> k
        | None -> badf "unknown verdict %s" v
      in
      let repr =
        {
          Ddg.repr_name = get "name";
          repr_next_id = next_id;
          repr_next_inv = next_inv;
          repr_nodes =
            List.map
              (fun (id, k) ->
                ( id, k,
                  List.filter (fun (e : Ddg.edge) -> e.Ddg.src = id) succs,
                  List.filter (fun (e : Ddg.edge) -> e.Ddg.dst = id) preds ))
              nodes;
          repr_invariants = List.rev !invs;
        }
      in
      let g = Ddg.of_repr repr in
      if not (Ddg.validate g) then badf "reconstructed graph is malformed";
      let loop =
        Loop.make ~trip_count:(int_of "trip" (get "trip"))
          ~entries:(int_of "entries" (get "entries"))
          ~streams:(List.rev !streams) g
      in
      {
        seed = int_of "seed" (get "seed");
        case = int_of "case" (get "case");
        params = get "params";
        config = get "config";
        n_fus = field "machine" machine "n_fus";
        n_mem_ports = field "machine" machine "n_mem_ports";
        lats;
        options = get "options";
        verdict;
        detail = (match Hashtbl.find_opt fields "detail" with
                 | Some d -> d
                 | None -> "");
        loop;
      }
    | _ -> badf "missing %S header" format_magic
  in
  match build () with
  | t -> Ok t
  | exception Bad msg -> Error msg
  | exception e -> Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let rec ensure_dir d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    ensure_dir (Filename.dirname d);
    Sys.mkdir d 0o755
  end

let write ~dir t =
  ensure_dir dir;
  let path =
    Filename.concat dir
      (Fmt.str "case%04d-%s.repro" t.case (Ev.fuzz_verdict_name t.verdict))
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t));
  path

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> of_string content
  | exception e -> Error (Printexc.to_string e)

let corpus_files dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

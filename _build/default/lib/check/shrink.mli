(** Greedy minimizing shrinker for failing fuzz cases.

    Starting from a failing candidate, repeatedly tries a deterministic
    sequence of reductions — remove a node, remove an edge, shorten a
    loop-carried distance, drop an invariant, halve the trip/entry
    counts, lower an operation latency — re-running the oracle after
    each one and keeping any reduction under which the case still fails
    with the same verdict.  Rounds restart after every accepted step and
    stop at a fixpoint (or when the evaluation budget runs out), so the
    result is locally minimal: no single remaining reduction preserves
    the failure. *)

type candidate = {
  loop : Hcrf_ir.Loop.t;
  lats : Hcrf_machine.Latencies.t;
      (** latency record the case's machine runs with (shrunk too) *)
}

(** [run ~still_failing c] returns the shrunk candidate and the number
    of accepted reductions.  [still_failing] must return [true] when
    the candidate still exhibits the original failure (same verdict
    kind); it is called at most [max_evals] times (default 500). *)
val run :
  still_failing:(candidate -> bool) -> ?max_evals:int -> candidate ->
  candidate * int

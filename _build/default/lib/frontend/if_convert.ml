(** IF-conversion [1]: structured conditionals are rewritten into
    straight-line code with select expressions, so the loop body becomes
    the single basic block modulo scheduling needs (§2.1 of the paper
    applies the same transformation before scheduling).

    - a scalar defined in a branch merges into
      [s = select cond s_then s_else], the missing side being the other
      branch's value or the binding from before the conditional;
      scalars local to one branch (including hoisted conditions) are
      not merged;
    - a store inside a branch becomes an unconditional read-modify-write:
      [A.(i+k) = select cond v A.(i+k)];
    - nested conditionals are converted inside-out. *)

open Ast
module S = Set.Make (String)

let fresh_counter = ref 0

let fresh base =
  incr fresh_counter;
  Fmt.str "%s__%d" base !fresh_counter

(* Substitute scalar names inside an expression. *)
let rec subst map expr =
  match expr with
  | Var s -> (
    match List.assoc_opt s map with Some s' -> Var s' | None -> expr)
  | Arr _ | Prev _ | Param _ -> expr
  | Add (a, b) -> Add (subst map a, subst map b)
  | Sub (a, b) -> Sub (subst map a, subst map b)
  | Mul (a, b) -> Mul (subst map a, subst map b)
  | Div (a, b) -> Div (subst map a, subst map b)
  | Sqrt a -> Sqrt (subst map a)
  | Select (c, a, b) -> Select (subst map c, subst map a, subst map b)

(* Convert one branch under [defined] (scalars bound before the
   conditional): scalars defined inside get fresh names; stores are
   collected for blending.  Returns converted statements, the renaming
   (program name -> fresh name of its final value) and the stores. *)
let rec convert_branch ~defined stmts =
  let renames = ref [] in
  let out = ref [] in
  let stores = ref [] in
  List.iter
    (fun stmt ->
      let flat =
        match stmt with
        | Def _ | Store _ -> [ subst_stmt !renames stmt ]
        | If (c, t, f) ->
          let inner_defined =
            S.union defined (S.of_list (List.map fst !renames))
          in
          convert ~defined:inner_defined
            [ If (subst !renames c, t, f) ]
      in
      List.iter
        (fun st ->
          match st with
          | Def (s, e) ->
            let s' = fresh s in
            out := Def (s', subst !renames e) :: !out;
            renames := (s, s') :: !renames
          | Store (a, k, e) -> stores := (a, k, subst !renames e) :: !stores
          | If _ -> assert false)
        flat)
    stmts;
  (List.rev !out, !renames, List.rev !stores)

and subst_stmt map = function
  | Def (s, e) -> Def (s, subst map e)
  | Store (a, k, e) -> Store (a, k, subst map e)
  | If (c, t, f) -> If (subst map c, t, f)

(** Rewrite a statement list into straight-line code (no [If] left);
    [defined] is the set of scalars bound before [stmts]. *)
and convert ~defined stmts =
  let _, out =
    List.fold_left
      (fun (defined, acc) stmt ->
        match stmt with
        | Def (s, _) -> (S.add s defined, stmt :: acc)
        | Store _ -> (defined, stmt :: acc)
        | If (c, then_b, else_b) ->
          let cname = fresh "cond" in
          let cond_def = Def (cname, c) in
          let t_stmts, t_renames, t_stores =
            convert_branch ~defined then_b
          in
          let e_stmts, e_renames, e_stores =
            convert_branch ~defined else_b
          in
          (* merge scalars visible after the conditional: defined in
             both branches, or in one branch with a prior binding *)
          let candidates =
            List.sort_uniq compare
              (List.map fst t_renames @ List.map fst e_renames)
          in
          let merged =
            List.filter
              (fun s ->
                (List.mem_assoc s t_renames && List.mem_assoc s e_renames)
                || S.mem s defined)
              candidates
          in
          let merges =
            List.map
              (fun s ->
                let side renames =
                  match List.assoc_opt s renames with
                  | Some s' -> Var s'
                  | None -> Var s (* the binding from before the If *)
                in
                Def (s, Select (Var cname, side t_renames, side e_renames)))
              merged
          in
          let blend_store ~taken (a, k, e) =
            let keep = Arr (a, k) in
            let v =
              if taken then Select (Var cname, e, keep)
              else Select (Var cname, keep, e)
            in
            Store (a, k, v)
          in
          let expansion =
            (cond_def :: t_stmts)
            @ e_stmts @ merges
            @ List.map (blend_store ~taken:true) t_stores
            @ List.map (blend_store ~taken:false) e_stores
          in
          ( S.union defined (S.of_list merged),
            List.rev_append expansion acc ))
      (defined, []) stmts
  in
  List.rev out

let run (l : Ast.t) = { l with body = convert ~defined:S.empty l.body }

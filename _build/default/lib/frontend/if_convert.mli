(** IF-conversion [1]: structured conditionals are rewritten into
    straight-line code with select expressions, so the loop body becomes
    the single basic block modulo scheduling needs (§2.1 of the paper
    applies the same transformation before scheduling).

    A scalar defined in a branch merges into
    [s = select cond s_then s_else], the missing side being the other
    branch's value or the binding from before the conditional (scalars
    local to one branch are not merged); a store inside a branch becomes
    an unconditional read-modify-write; nested conditionals convert
    inside-out. *)

(** Straight-line equivalent: the result contains no [If]. *)
val run : Ast.t -> Ast.t

lib/frontend/compile.ml: Ast Ddg Dep Fmt Hashtbl Hcrf_ir If_convert List Loop Op

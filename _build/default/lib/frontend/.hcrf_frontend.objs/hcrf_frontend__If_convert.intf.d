lib/frontend/if_convert.mli: Ast

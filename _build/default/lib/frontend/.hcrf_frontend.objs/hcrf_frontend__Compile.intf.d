lib/frontend/compile.mli: Ast Hcrf_ir

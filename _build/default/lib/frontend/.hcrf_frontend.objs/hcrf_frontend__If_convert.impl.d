lib/frontend/if_convert.ml: Ast Fmt List Set String

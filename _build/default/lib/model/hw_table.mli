(** The paper's published hardware evaluation (Table 5, plus the
    1C64S64 motivational configuration of Tables 1-2).

    These numbers are the hardware specification the paper's performance
    experiments run on; they are shipped verbatim so the evaluation can
    use exactly the published clock cycles and latencies, and so the
    analytic {!Cacti}/{!Timing} surrogate can be validated against
    them. *)

type row = {
  notation : string;
  lp : int;
  sp : int;
  access_local_ns : float;    (** cycle-determining bank *)
  access_shared_ns : float option;
  area_local_mlambda2 : float; (** one first-level bank *)
  area_shared_mlambda2 : float option;
  area_total_mlambda2 : float;
  logic_depth_fo4 : int;
  clock_ns : float;
  mem_latency : int;          (** read-hit cycles *)
  fu_latency : int;           (** FP add/mul cycles *)
  loadr_latency : int;        (** LoadR/StoreR cycles (1 when no shared bank) *)
}

(** Table 5, in the paper's order (15 rows). *)
val table5 : row list

(** The equal-capacity motivational configuration of Tables 1-2
    (lp=sp=1). *)
val c1c64s64 : row

val all : row list
val find : string -> row option

(** Raises [Invalid_argument] on an unknown notation. *)
val find_exn : string -> row

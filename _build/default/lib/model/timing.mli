(** From RF access time to clock cycle and scaled operation latencies.

    The paper derives, from the access time of the first-level bank, the
    logic depth (in FO4 inverter delays) needed to read the RF in one
    cycle, then the clock cycle from that depth following Hrishikesh et
    al. [17], and finally rescales the operation latencies of §2.2 to
    the new clock.  The constants reproduce the published Table 5
    mapping (see test/test_model.ml). *)

val fo4_ns : float
val cycle_slope : float
val latch_overhead : float
val fu_budget_ns : float

val logic_depth_fo4 : access_ns:float -> int
val cycle_ns_of_depth : int -> float
val cycle_ns : access_ns:float -> float

(** FP add/multiply latency in cycles at the given clock; the baseline
    4-stage pipeline is a floor. *)
val fu_latency : cycle_ns:float -> int

(** Memory read-hit latency: the §2.2 baseline of 2 cycles at the S128
    clock, deepening with the pipeline at faster clocks. *)
val mem_read_latency : cycle_ns:float -> fu_latency:int -> int

val fdiv_latency : fu_latency:int -> int
val fsqrt_latency : fu_latency:int -> int

(** LoadR/StoreR take as many cycles as needed to access the shared
    bank. *)
val inter_level_latency : cycle_ns:float -> shared_access_ns:float -> int

(** Scaled latencies for a configuration whose local bank has access
    time [access_ns] and whose shared bank (if any) has
    [shared_access_ns]. *)
val latencies :
  access_ns:float -> shared_access_ns:float option ->
  Hcrf_machine.Latencies.t

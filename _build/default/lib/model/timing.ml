(** From RF access time to clock cycle and scaled operation latencies.

    The paper derives, from the access time of the first-level bank, the
    logic depth (in FO4 inverter delays) needed to read the RF in one
    cycle, then the clock cycle from that depth following Hrishikesh et
    al. [17], and finally rescales the operation latencies of §2.2 to the
    new clock.  The constants below reproduce the published Table 5
    mapping: logic depth = floor(access / fo4), cycle = slope * depth +
    latch overhead, FP-op latency from a fixed ~2.85 ns execution budget
    (never below the baseline 4-stage pipeline), memory hit latency from
    the FU depth, LoadR/StoreR latency from the shared-bank access time. *)

let fo4_ns = 0.0369        (* one FO4 inverter delay at 0.10 um *)
let cycle_slope = 0.036    (* ns of cycle per FO4 of logic depth *)
let latch_overhead = 0.065 (* ns: clock skew + latch *)
let fu_budget_ns = 2.85    (* FP add/mul execution time *)

let logic_depth_fo4 ~access_ns = max 6 (int_of_float (access_ns /. fo4_ns))

let cycle_ns_of_depth depth =
  (cycle_slope *. float_of_int depth) +. latch_overhead

let cycle_ns ~access_ns = cycle_ns_of_depth (logic_depth_fo4 ~access_ns)

let ceil_div_ns num den = max 1 (int_of_float (ceil (num /. den)))

(** FP add/multiply latency in cycles at the given clock; the baseline
    4-stage pipeline is a floor. *)
let fu_latency ~cycle_ns = max 4 (ceil_div_ns fu_budget_ns cycle_ns)

(** Memory read-hit latency: the §2.2 baseline of 2 cycles at the S128
    clock, deepening with the pipeline at faster clocks. *)
let mem_read_latency ~cycle_ns ~fu_latency =
  if cycle_ns >= 1.1 then 2 else (fu_latency / 2) + 1

(** Divide/sqrt scale with the same ns budget ratio as add (17/4, 30/4
    cycles at the baseline). *)
let fdiv_latency ~fu_latency = (fu_latency * 17 + 3) / 4
let fsqrt_latency ~fu_latency = (fu_latency * 30 + 3) / 4

(** LoadR/StoreR take as many cycles as needed to access the shared
    bank. *)
let inter_level_latency ~cycle_ns ~shared_access_ns =
  ceil_div_ns shared_access_ns cycle_ns

(** Scaled latencies for a configuration whose local bank has access time
    [access_ns] and whose shared bank (if any) has [shared_access_ns]. *)
let latencies ~access_ns ~shared_access_ns : Hcrf_machine.Latencies.t =
  let cycle = cycle_ns ~access_ns in
  let fu = fu_latency ~cycle_ns:cycle in
  let rd = mem_read_latency ~cycle_ns:cycle ~fu_latency:fu in
  let ll =
    match shared_access_ns with
    | None -> 1
    | Some s -> inter_level_latency ~cycle_ns:cycle ~shared_access_ns:s
  in
  {
    fadd = fu;
    fmul = fu;
    fdiv = fdiv_latency ~fu_latency:fu;
    fsqrt = fsqrt_latency ~fu_latency:fu;
    mem_read = rd;
    mem_write = 1;
    move = 1;
    loadr = ll;
    storer = ll;
  }

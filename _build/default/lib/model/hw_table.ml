(** The paper's published hardware evaluation (Table 5, plus the 1C64S64
    motivational configuration of Tables 1-2).

    These numbers are the hardware specification the paper's performance
    experiments run on; we ship them verbatim so the evaluation can use
    exactly the published clock cycles and latencies, and so the analytic
    {!Cacti}/{!Timing} surrogate can be validated against them. *)

type row = {
  notation : string;
  lp : int;
  sp : int;
  access_local_ns : float;    (** cycle-determining bank *)
  access_shared_ns : float option;
  area_local_mlambda2 : float; (** one first-level bank *)
  area_shared_mlambda2 : float option;
  area_total_mlambda2 : float;
  logic_depth_fo4 : int;
  clock_ns : float;
  mem_latency : int;          (** read-hit cycles *)
  fu_latency : int;           (** FP add/mul cycles *)
  loadr_latency : int;        (** LoadR/StoreR cycles (1 when no shared bank) *)
}

let r notation lp sp al ash areal areash areat depth clk mem fu llr =
  { notation; lp; sp; access_local_ns = al; access_shared_ns = ash;
    area_local_mlambda2 = areal; area_shared_mlambda2 = areash;
    area_total_mlambda2 = areat; logic_depth_fo4 = depth; clock_ns = clk;
    mem_latency = mem; fu_latency = fu; loadr_latency = llr }

(** Table 5, in the paper's order. *)
let table5 =
  [
    r "S128" 0 0 1.145 None 14.91 None 14.91 31 1.181 2 4 1;
    r "S64" 0 0 1.021 None 12.20 None 12.20 27 1.037 3 4 1;
    r "S32" 0 0 0.685 None 7.50 None 7.50 18 0.713 3 4 1;
    r "1C64S32" 3 2 0.943 (Some 0.485) 10.07 (Some 1.31) 11.37 25 0.965 3 4 1;
    r "1C32S64" 4 2 0.666 (Some 0.493) 6.61 (Some 1.50) 8.12 17 0.677 3 4 1;
    r "2C64" 1 1 0.686 None 3.99 None 7.98 18 0.713 3 4 1;
    r "2C32" 1 1 0.532 None 2.44 None 4.88 13 0.533 4 6 1;
    r "2C64S32" 2 1 0.626 (Some 0.493) 2.81 (Some 1.50) 7.12 16 0.641 3 5 1;
    r "2C32S32" 3 1 0.515 (Some 0.510) 1.95 (Some 1.94) 5.83 13 0.533 4 6 1;
    r "4C64" 1 1 0.531 None 1.30 None 5.21 13 0.533 4 6 1;
    r "4C32" 1 1 0.475 None 1.07 None 4.29 12 0.497 4 6 1;
    r "4C32S16" 1 1 0.442 (Some 0.456) 0.70 (Some 1.57) 4.38 11 0.461 4 7 1;
    r "4C16S16" 2 1 0.393 (Some 0.483) 0.52 (Some 2.42) 4.49 10 0.425 4 7 2;
    r "8C32S16" 1 1 0.400 (Some 0.532) 0.30 (Some 3.45) 5.84 10 0.425 4 7 2;
    r "8C16S16" 1 1 0.360 (Some 0.532) 0.17 (Some 3.45) 4.82 9 0.389 5 8 2;
  ]

(** The equal-capacity motivational configuration of Tables 1-2
    (lp=sp=1). *)
let c1c64s64 =
  r "1C64S64" 1 1 0.979 (Some 0.610) 10.79 (Some 2.47) 13.26 26 1.001 3 4 1

let all = table5 @ [ c1c64s64 ]

let find notation = List.find_opt (fun row -> row.notation = notation) all

let find_exn notation =
  match find notation with
  | Some row -> row
  | None -> Fmt.invalid_arg "Hw_table.find_exn: no published row %S" notation

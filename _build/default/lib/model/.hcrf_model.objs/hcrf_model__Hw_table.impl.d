lib/model/hw_table.ml: Fmt List

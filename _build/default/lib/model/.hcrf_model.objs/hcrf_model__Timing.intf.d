lib/model/timing.mli: Hcrf_machine

lib/model/presets.mli: Hcrf_machine Hw_table

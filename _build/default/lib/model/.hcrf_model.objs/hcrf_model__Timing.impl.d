lib/model/timing.ml: Hcrf_machine

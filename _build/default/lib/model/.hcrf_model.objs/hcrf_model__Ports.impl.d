lib/model/ports.ml: Cap Config Fmt Hcrf_machine Rf

lib/model/cacti.ml: Hcrf_machine List Option Ports

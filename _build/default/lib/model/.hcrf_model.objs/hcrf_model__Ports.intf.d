lib/model/ports.mli: Format Hcrf_machine

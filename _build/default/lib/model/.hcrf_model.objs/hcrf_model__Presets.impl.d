lib/model/presets.ml: Cacti Cap Config Fmt Hcrf_machine Hw_table Latencies List Rf Timing

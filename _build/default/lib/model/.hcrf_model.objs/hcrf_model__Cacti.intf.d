lib/model/cacti.mli: Hcrf_machine

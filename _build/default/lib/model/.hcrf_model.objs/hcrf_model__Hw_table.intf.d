lib/model/hw_table.mli:

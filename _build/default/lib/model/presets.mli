(** Ready-made processor configurations.

    Two construction paths exist for the evaluated configurations:
    {!of_published} uses the paper's published Table 5 hardware
    constants (clock, latencies) so the performance experiments run on
    exactly the published machine; {!of_model} derives everything from
    the analytic {!Cacti} + {!Timing} surrogate, which is what a user
    exploring a new design point would do. *)

(** The RF organization of a published row, with its port counts. *)
val rf_of : notation:string -> lp:int -> sp:int -> Hcrf_machine.Rf.t

val latencies_of_row : Hw_table.row -> Hcrf_machine.Latencies.t

(** Configuration running at the published Table 5 hardware point. *)
val of_published :
  ?n_fus:int -> ?n_mem_ports:int -> Hw_table.row -> Hcrf_machine.Config.t

(** [published "4C32"] — raises [Invalid_argument] on an unknown
    notation. *)
val published : string -> Hcrf_machine.Config.t

(** All 15 configurations of the paper's Table 5/6 evaluation. *)
val table5_configs : unit -> Hcrf_machine.Config.t list

(** Derive a configuration from the analytic technology model. *)
val of_model :
  ?n_fus:int -> ?n_mem_ports:int -> Hcrf_machine.Rf.t ->
  Hcrf_machine.Config.t

(** Static-evaluation configurations (Table 3): unbounded registers,
    either unbounded or §4-bounded bandwidth between banks; baseline
    latencies. *)
val static_config :
  ?n_fus:int -> ?n_mem_ports:int -> bounded_bandwidth:bool -> string ->
  Hcrf_machine.Config.t

(** Table 3's configuration list, in paper order. *)
val table3_notations : string list

(** Figure 1's resource sweep: monolithic unbounded RF with x FUs and y
    memory ports for (x, y) in 4+2 .. 12+6. *)
val figure1_configs : unit -> Hcrf_machine.Config.t list

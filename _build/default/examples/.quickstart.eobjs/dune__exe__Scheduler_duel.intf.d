examples/scheduler_duel.mli:

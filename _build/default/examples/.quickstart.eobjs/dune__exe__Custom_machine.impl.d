examples/custom_machine.ml: Cap Config Ddg Dep Fmt Hcrf_eval Hcrf_ir Hcrf_machine Hcrf_model List Loop Op Rf

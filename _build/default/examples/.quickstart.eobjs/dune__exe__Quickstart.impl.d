examples/quickstart.ml: Ddg Engine Fmt Hcrf_core Hcrf_eval Hcrf_ir Hcrf_machine Hcrf_model Hcrf_sched Hcrf_workload List Loop Op Regalloc Schedule Topology Validate

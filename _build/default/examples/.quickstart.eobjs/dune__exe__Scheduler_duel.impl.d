examples/scheduler_duel.ml: Ddg Engine Fmt Hcrf_core Hcrf_ir Hcrf_machine Hcrf_model Hcrf_sched Hcrf_workload List Loop

examples/quickstart.mli:

examples/loop_language.ml: Fmt Hcrf_core Hcrf_frontend Hcrf_ir Hcrf_model Hcrf_pipesim Hcrf_sched List

examples/design_space.ml: Array Config Engine Fmt Hcrf_core Hcrf_eval Hcrf_ir Hcrf_machine Hcrf_model Hcrf_sched Hcrf_workload List Rf Sys

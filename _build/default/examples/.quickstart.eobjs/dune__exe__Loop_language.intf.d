examples/loop_language.mli:

(* Scheduler duel: the iterative MIRS_HC against the non-iterative
   scheduler of the paper's earlier work [36], on every bundled kernel
   and on a slice of the synthetic workbench — the experiment behind
   Table 4.

     dune exec examples/scheduler_duel.exe
*)

open Hcrf_ir
open Hcrf_sched

let config = Hcrf_model.Presets.published "1C32S64"

let duel name (g : Ddg.t) =
  let ni = Hcrf_core.Noniter.schedule config g in
  let hc = Hcrf_core.Mirs_hc.schedule config g in
  match (ni, hc) with
  | Ok ni, Ok hc ->
    let verdict =
      if hc.Engine.ii < ni.Engine.ii then "MIRS_HC wins"
      else if hc.Engine.ii = ni.Engine.ii then "tie"
      else "[36] wins"
    in
    Fmt.pr "  %-11s II: noniter=%-3d mirs_hc=%-3d (ejects %3d)  %s@." name
      ni.Engine.ii hc.Engine.ii hc.Engine.stats.ejections verdict;
    Some (ni.Engine.ii, hc.Engine.ii)
  | Error _, Ok hc ->
    Fmt.pr "  %-11s noniter failed; mirs_hc II=%d@." name hc.Engine.ii;
    None
  | _, Error _ ->
    Fmt.pr "  %-11s mirs_hc failed@." name;
    None

let () =
  Fmt.pr "Iterative vs non-iterative modulo scheduling on %s@.@."
    config.Hcrf_machine.Config.name;
  Fmt.pr "Kernels:@.";
  List.iter
    (fun (name, mk) -> ignore (duel name (mk ()).Loop.ddg))
    Hcrf_workload.Kernels.all;
  Fmt.pr "@.Synthetic workbench (first 80 loops):@.";
  let loops = Hcrf_workload.Suite.generate ~n:80 () in
  let results =
    List.filter_map (fun (l : Loop.t) ->
        let ni = Hcrf_core.Noniter.schedule config l.Loop.ddg in
        let hc = Hcrf_core.Mirs_hc.schedule config l.Loop.ddg in
        match (ni, hc) with
        | Ok ni, Ok hc -> Some (ni.Engine.ii, hc.Engine.ii)
        | _ -> None)
      loops
  in
  let better = List.length (List.filter (fun (a, b) -> b < a) results) in
  let equal = List.length (List.filter (fun (a, b) -> b = a) results) in
  let worse = List.length (List.filter (fun (a, b) -> b > a) results) in
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 results in
  Fmt.pr "  MIRS_HC better: %d, equal: %d, worse: %d@." better equal worse;
  Fmt.pr "  Sum II: noniter=%d mirs_hc=%d@." (sum fst) (sum snd)

(* Design-space exploration: the workflow of the paper's Section 6 for
   your own loop.  Every candidate register-file organization is priced
   with the CACTI-derived technology model (access time -> logic depth
   -> clock -> latencies), scheduled with MIRS_HC, and ranked by actual
   execution time.

     dune exec examples/design_space.exe            # explores fir5
     dune exec examples/design_space.exe -- stencil3
*)

open Hcrf_machine
open Hcrf_sched

let candidates =
  [ "S128"; "S64"; "S32"; "1C64S32"; "1C32S64"; "2C64"; "2C32"; "2C32S32";
    "4C64"; "4C32"; "4C32S16"; "4C16S16"; "8C32S16"; "8C16S16" ]

let () =
  let kernel =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "fir5"
  in
  let loop = Hcrf_workload.Kernels.find kernel in
  Fmt.pr "Exploring RF organizations for kernel %S (%d ops)@.@." kernel
    (Hcrf_ir.Ddg.num_nodes loop.Hcrf_ir.Loop.ddg);
  Fmt.pr "  %-9s %6s %6s %5s %4s %6s %9s %9s@." "config" "clk ns" "area"
    "II" "SC" "cycles" "time (us)" "vs S64";
  let rows =
    List.filter_map
      (fun notation ->
        (* derive the hardware point from the analytic model — this is
           what you would do for a design CACTI has no published row
           for *)
        let rf = Rf.of_notation notation in
        let config = Hcrf_model.Presets.of_model rf in
        let est = Hcrf_model.Cacti.estimate config in
        match Hcrf_core.Mirs_hc.schedule config loop.Hcrf_ir.Loop.ddg with
        | Error _ -> None
        | Ok o ->
          let perf = Hcrf_eval.Metrics.of_outcome loop o in
          let time_us =
            perf.Hcrf_eval.Metrics.useful_cycles
            *. config.Config.cycle_ns /. 1000.
          in
          Some
            ( notation, config.Config.cycle_ns,
              est.Hcrf_model.Cacti.total_area_mlambda2, o.Engine.ii,
              o.Engine.sc, perf.Hcrf_eval.Metrics.useful_cycles, time_us ))
      candidates
  in
  let base_time =
    match List.find_opt (fun (n, _, _, _, _, _, _) -> n = "S64") rows with
    | Some (_, _, _, _, _, _, t) -> t
    | None -> 1.
  in
  List.iter
    (fun (n, clk, area, ii, sc, cycles, t) ->
      Fmt.pr "  %-9s %6.3f %6.2f %5d %4d %6.0f %9.2f %8.2fx@." n clk area
        ii sc cycles t (base_time /. t))
    rows;
  let best =
    List.fold_left
      (fun acc ((_, _, _, _, _, _, t) as row) ->
        match acc with
        | Some (_, _, _, _, _, _, bt) when bt <= t -> acc
        | _ -> Some row)
      None rows
  in
  match best with
  | Some (n, _, _, _, _, _, _) ->
    Fmt.pr "@.Best organization for %s: %s@." kernel n
  | None -> ()

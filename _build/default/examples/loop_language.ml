(* Write a loop in the front-end language (with a conditional!), watch it
   get IF-converted and compiled to a dependence graph, schedule it with
   MIRS_HC, and prove the pipeline computes the same values as a
   sequential execution — through the allocated rotating registers.

     dune exec examples/loop_language.exe
*)

open Hcrf_frontend.Ast

(* A clipped, normalized update with a running maximum:
     for i:
       d    = x[i] - mean
       if d then  v = d * d  else  v = d / scale
       m    = m@-1 + v                (running accumulator)
       y[i] = v / m
*)
let source =
  make ~name:"clipped_norm" ~trip_count:2000 ~entries:8
    [
      def "d" (arr "x" -: param "mean");
      if_ (var "d")
        [ def "v" (var "d" *: var "d") ]
        [ def "v" (var "d" /: param "scale") ];
      def "m" (prev "m" +: var "v");
      store "y" (var "v" /: var "m");
    ]

let () =
  Fmt.pr "Source:@.%a@.@." pp source;
  let converted = Hcrf_frontend.If_convert.run source in
  Fmt.pr "After IF-conversion:@.%a@.@." pp converted;
  let loop = Hcrf_frontend.Compile.compile source in
  Fmt.pr "Compiled: %d operations, %d memory streams, recurrence: %b@.@."
    (Hcrf_ir.Ddg.num_nodes loop.Hcrf_ir.Loop.ddg)
    (List.length loop.Hcrf_ir.Loop.streams)
    (Hcrf_ir.Scc.has_recurrence loop.Hcrf_ir.Loop.ddg);
  List.iter
    (fun cname ->
      let config = Hcrf_model.Presets.published cname in
      match Hcrf_core.Mirs_hc.schedule config loop.Hcrf_ir.Loop.ddg with
      | Error (`No_schedule ii) ->
        Fmt.pr "%-8s no schedule up to II=%d@." cname ii
      | Ok o -> (
        let status =
          match Hcrf_pipesim.Pipe_exec.check loop o ~iterations:16 () with
          | Ok r ->
            Fmt.str "functionally verified (%d register reads over 16 iterations)"
              r.Hcrf_pipesim.Pipe_exec.register_reads
          | Error e -> Fmt.str "MISMATCH: %a" Hcrf_pipesim.Pipe_exec.pp_error e
        in
        Fmt.pr "%-8s II=%-3d (MII %d)  %s@." cname o.Hcrf_sched.Engine.ii
          o.Hcrf_sched.Engine.mii status))
    [ "S128"; "S32"; "4C32"; "1C32S64"; "4C16S16"; "8C16S16" ]

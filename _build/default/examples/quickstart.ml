(* Quickstart: schedule a classic loop on the paper's flagship
   hierarchical clustered register file and look at what MIRS_HC did.

     dune exec examples/quickstart.exe
*)

open Hcrf_ir
open Hcrf_sched

let () =
  (* 1. a loop: y[i] = a*x[i] + y[i] (see Hcrf_workload.Kernels for more) *)
  let loop = Hcrf_workload.Kernels.find "daxpy" in
  Fmt.pr "Loop:@.%a@.@." Ddg.pp loop.Loop.ddg;

  (* 2. a machine: 8 clusters of 16 registers over a shared 16-register
     second-level bank, at the hardware point published in the paper's
     Table 5 *)
  let config = Hcrf_model.Presets.published "8C16S16" in
  Fmt.pr "Machine: %a@.@." Hcrf_machine.Config.pp config;

  (* 3. schedule it: MIRS_HC picks clusters, inserts StoreR/LoadR
     copies through the shared bank, allocates registers and spills if
     needed — all in one pass *)
  match Hcrf_core.Mirs_hc.schedule config loop.Loop.ddg with
  | Error (`No_schedule ii) -> Fmt.epr "no schedule up to II=%d@." ii
  | Ok o ->
    Fmt.pr "Scheduled: II=%d (MII=%d), %d stages@." o.Engine.ii o.Engine.mii
      o.Engine.sc;
    Fmt.pr "Inserted operations: %d LoadR, %d StoreR, %d spills@."
      (Ddg.count_kind o.Engine.graph (Op.equal_kind Op.Load_r))
      (Ddg.count_kind o.Engine.graph (Op.equal_kind Op.Store_r))
      (Ddg.count_kind o.Engine.graph Op.is_spill);
    Fmt.pr "@.%a@." Schedule.pp o.Engine.schedule;

    (* 4. check it with the independent validator and look at the
       per-bank register allocation *)
    (match Hcrf_core.Mirs_hc.validate o with
    | [] -> Fmt.pr "@.Validator: schedule is correct.@."
    | issues ->
      Fmt.pr "@.Validator found problems:@.%a@."
        Fmt.(list ~sep:cut Validate.pp_issue)
        issues);
    (match Regalloc.allocate o.Engine.schedule o.Engine.graph with
    | Ok banks ->
      List.iter
        (fun (a : Regalloc.assignment) ->
          Fmt.pr "bank %a: %d rotating registers@." Topology.pp_bank
            a.Regalloc.bank a.Regalloc.registers_used)
        banks
    | Error bank ->
      Fmt.pr "allocation failed in bank %a@." Topology.pp_bank bank);

    (* 5. emit the VLIW kernel with its rotating-register operands *)
    (match Hcrf_core.Codegen.of_outcome config o with
    | Ok code -> Fmt.pr "@.%a@." Hcrf_core.Codegen.pp code
    | Error bank ->
      Fmt.pr "codegen failed in bank %a@." Topology.pp_bank bank);

    (* 6. and the performance the paper's metrics give it *)
    let perf = Hcrf_eval.Metrics.of_outcome loop o in
    Fmt.pr
      "@.Execution: %.0f cycles (%s-bound), %.0f memory accesses, %.2f us@."
      perf.Hcrf_eval.Metrics.useful_cycles
      (Hcrf_eval.Classify.name perf.Hcrf_eval.Metrics.bound)
      perf.Hcrf_eval.Metrics.traffic
      (perf.Hcrf_eval.Metrics.useful_cycles
      *. config.Hcrf_machine.Config.cycle_ns /. 1000.)

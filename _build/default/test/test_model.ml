(* Tests for the technology model: per-bank ports, the CACTI surrogate
   against the paper's published numbers, and the FO4 timing
   derivation. *)

open Hcrf_machine
open Hcrf_model

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ports *)

let test_ports_monolithic () =
  (* §3: S128 has 20 read ports (2/FU + 1/mem port) and 12 write ports *)
  let c = Config.make (Rf.of_notation "S128") in
  let p = Ports.local_bank c in
  check_int "reads" 20 p.Ports.reads;
  check_int "writes" 12 p.Ports.writes;
  check "no shared bank" true (Ports.shared_bank c = None)

let test_ports_clustered () =
  let c = Config.make (Rf.of_notation "4C32") in
  let p = Ports.local_bank c in
  (* 2 FUs: 4r+2w; 1 mem port: 1r+1w; bus: 1 in (w) + 1 out (r) *)
  check_int "reads" 6 p.Ports.reads;
  check_int "writes" 4 p.Ports.writes

let test_ports_hierarchical () =
  let c =
    Config.make
      (Rf.hierarchical ~clusters:4 ~regs_per_bank:16 ~shared_regs:16
         ~lp:(Cap.Finite 2) ~sp:(Cap.Finite 1) ())
  in
  let local = Ports.local_bank c in
  (* 2 FUs: 4r+2w; sp=1 read out; lp=2 writes in *)
  check_int "local reads" 5 local.Ports.reads;
  check_int "local writes" 4 local.Ports.writes;
  match Ports.shared_bank c with
  | None -> Alcotest.fail "expected a shared bank"
  | Some shared ->
    (* 4 mem ports (4r+4w) + 4 clusters * (lp=2 reads, sp=1 writes) *)
    check_int "shared reads" 12 shared.Ports.reads;
    check_int "shared writes" 8 shared.Ports.writes

(* ------------------------------------------------------------------ *)
(* Cacti surrogate vs published access times *)

let test_cacti_vs_published () =
  (* the analytic surrogate must stay within 20% of every published
     local-bank access time of Table 5 *)
  List.iter
    (fun (row : Hw_table.row) ->
      let r = Hcrf_eval.Experiments.hw_row row in
      let err =
        abs_float (r.Hcrf_eval.Experiments.model_access_c -. row.access_local_ns)
        /. row.access_local_ns
      in
      check
        (Fmt.str "%s access within 20%% (got %.3f vs %.3f)" row.notation
           r.Hcrf_eval.Experiments.model_access_c row.access_local_ns)
        true (err < 0.20))
    Hw_table.table5

let test_cacti_monotonic_in_regs () =
  let t r = Cacti.access_time_ns (Cacti.bank ~regs:r ~ports:16 ()) in
  check "64 < 128" true (t 64 < t 128);
  check "32 < 64" true (t 32 < t 64)

let test_cacti_monotonic_in_ports () =
  let t p = Cacti.access_time_ns (Cacti.bank ~regs:64 ~ports:p ()) in
  check "8 < 16" true (t 8 < t 16);
  check "16 < 32" true (t 16 < t 32)

let test_cacti_area_monotonic () =
  let a r p = Cacti.area_mlambda2 (Cacti.bank ~regs:r ~ports:p ()) in
  check "area grows with regs" true (a 64 16 < a 128 16);
  check "area grows with ports" true (a 64 8 < a 64 16)

let test_cacti_clustering_shrinks_banks () =
  (* the core claim of §3: a distributed bank is much faster than the
     monolithic RF of the same total capacity *)
  let mono = Cacti.estimate (Config.make (Rf.of_notation "S128")) in
  let clus = Cacti.estimate (Config.make (Rf.of_notation "4C32")) in
  check "cluster bank at least 2x faster" true
    (clus.Cacti.local_access_ns *. 2. < mono.Cacti.local_access_ns);
  check "clustered total area smaller" true
    (clus.Cacti.total_area_mlambda2 < mono.Cacti.total_area_mlambda2)

(* ------------------------------------------------------------------ *)
(* Timing *)

let test_timing_depth_and_clock () =
  (* the S128 anchor of Table 5: 1.145ns -> 31 FO4 -> 1.181ns clock *)
  check_int "S128 depth" 31 (Timing.logic_depth_fo4 ~access_ns:1.145);
  Alcotest.(check (float 0.001))
    "S128 clock" 1.181
    (Timing.cycle_ns ~access_ns:1.145);
  check_int "S32 depth" 18 (Timing.logic_depth_fo4 ~access_ns:0.685);
  Alcotest.(check (float 0.001))
    "S32 clock" 0.713
    (Timing.cycle_ns ~access_ns:0.685)

let test_timing_vs_published_table5 () =
  (* from each published access time, the derived clock must match the
     published clock exactly, and the latencies within one cycle *)
  let exact = ref 0 in
  List.iter
    (fun (row : Hw_table.row) ->
      let clk = Timing.cycle_ns ~access_ns:row.access_local_ns in
      if abs_float (clk -. row.clock_ns) < 0.0005 then incr exact;
      let fu = Timing.fu_latency ~cycle_ns:clk in
      check
        (Fmt.str "%s fu latency within 1 (got %d vs %d)" row.notation fu
           row.fu_latency)
        true
        (abs (fu - row.fu_latency) <= 1);
      let mem = Timing.mem_read_latency ~cycle_ns:clk ~fu_latency:fu in
      check
        (Fmt.str "%s mem latency within 1 (got %d vs %d)" row.notation mem
           row.mem_latency)
        true
        (abs (mem - row.mem_latency) <= 1))
    Hw_table.table5;
  check (Fmt.str "clock exact on >= 12/15 rows (got %d)" !exact) true
    (!exact >= 12)

let test_timing_latency_scaling () =
  check_int "div scales from fu" 17 (Timing.fdiv_latency ~fu_latency:4);
  check_int "sqrt scales from fu" 30 (Timing.fsqrt_latency ~fu_latency:4);
  check_int "div at fu=6" 26 (Timing.fdiv_latency ~fu_latency:6);
  check_int "loadr 1 cycle when shared fast" 1
    (Timing.inter_level_latency ~cycle_ns:0.533 ~shared_access_ns:0.51);
  check_int "loadr 2 cycles when shared slow" 2
    (Timing.inter_level_latency ~cycle_ns:0.389 ~shared_access_ns:0.532)

(* ------------------------------------------------------------------ *)
(* Hw_table / Presets *)

let test_hw_table_lookup () =
  check_int "15 published rows" 15 (List.length Hw_table.table5);
  check "find S128" true (Hw_table.find "S128" <> None);
  check "find 1C64S64" true (Hw_table.find "1C64S64" <> None);
  check "missing row" true (Hw_table.find "S1024" = None)

let test_presets_published () =
  let c = Presets.published "4C16S16" in
  (* Table 5 row 4C16S16: Mem/FU latencies = 4 / 7 *)
  check_int "fu latency" 7 c.Config.lats.Latencies.fadd;
  check_int "mem latency" 4 c.Config.lats.Latencies.mem_read;
  check_int "loadr latency" 2 c.Config.lats.Latencies.loadr;
  Alcotest.(check (float 0.0001)) "clock" 0.425 c.Config.cycle_ns;
  check_int "all 15 configs build" 15
    (List.length (Presets.table5_configs ()))

let test_presets_static () =
  List.iter
    (fun notation ->
      let c = Presets.static_config ~bounded_bandwidth:true notation in
      check (notation ^ " has unbounded registers") true
        (Cap.is_inf (Rf.local_regs c.Config.rf)))
    Presets.table3_notations;
  (* bounded vs unbounded bandwidth differ *)
  let b = Presets.static_config ~bounded_bandwidth:true "4CinfSinf" in
  let u = Presets.static_config ~bounded_bandwidth:false "4CinfSinf" in
  check "bounded has finite lp" true
    (not (Cap.is_inf (Rf.lp b.Config.rf)));
  check "unbounded has infinite lp" true (Cap.is_inf (Rf.lp u.Config.rf))

let test_presets_of_model () =
  let c = Presets.of_model (Rf.of_notation "4C32") in
  check "derived clock positive" true (c.Config.cycle_ns > 0.1);
  check "faster than monolithic" true
    (c.Config.cycle_ns < (Presets.of_model (Rf.of_notation "S128")).Config.cycle_ns)

let test_figure1_configs () =
  let cs = Presets.figure1_configs () in
  check_int "five points" 5 (List.length cs);
  List.iter
    (fun (c : Config.t) ->
      check_int "2:1 fu/mem ratio" c.Config.n_fus (2 * c.Config.n_mem_ports))
    cs

let tests =
  [
    ("ports: monolithic", `Quick, test_ports_monolithic);
    ("ports: clustered", `Quick, test_ports_clustered);
    ("ports: hierarchical", `Quick, test_ports_hierarchical);
    ("cacti: vs published", `Quick, test_cacti_vs_published);
    ("cacti: monotonic regs", `Quick, test_cacti_monotonic_in_regs);
    ("cacti: monotonic ports", `Quick, test_cacti_monotonic_in_ports);
    ("cacti: area monotonic", `Quick, test_cacti_area_monotonic);
    ("cacti: clustering shrinks", `Quick, test_cacti_clustering_shrinks_banks);
    ("timing: depth and clock", `Quick, test_timing_depth_and_clock);
    ("timing: vs table5", `Quick, test_timing_vs_published_table5);
    ("timing: latency scaling", `Quick, test_timing_latency_scaling);
    ("hw_table: lookup", `Quick, test_hw_table_lookup);
    ("presets: published", `Quick, test_presets_published);
    ("presets: static", `Quick, test_presets_static);
    ("presets: of_model", `Quick, test_presets_of_model);
    ("presets: figure1", `Quick, test_figure1_configs);
  ]

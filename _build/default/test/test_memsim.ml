(* Tests for the memory hierarchy: cache behaviour, the MSHR/stall
   model and the selective binding-prefetch planner. *)

open Hcrf_memsim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_geometry () =
  let c = Cache.create () in
  check_int "line bytes" 32 c.Cache.line_bytes;
  check_int "sets (32KB, 2-way)" 512 c.Cache.sets;
  Alcotest.check_raises "bad geometry"
    (Invalid_argument "Cache.create: size not divisible by line*assoc")
    (fun () -> ignore (Cache.create ~size_bytes:1000 ()))

let test_cache_unit_stride () =
  (* stride-8 doubles: one miss per 32-byte line, then 3 hits *)
  let c = Cache.create () in
  for i = 0 to 4 * 100 - 1 do
    ignore (Cache.access c (i * 8))
  done;
  check_int "one miss per line" 100 c.Cache.misses;
  check_int "hits" 300 c.Cache.hits

let test_cache_temporal_reuse () =
  let c = Cache.create () in
  ignore (Cache.access c 64);
  check "second access hits" true (Cache.access c 64);
  check "same line hits" true (Cache.access c 65)

let test_cache_lru_eviction () =
  let c = Cache.create ~size_bytes:128 ~line_bytes:32 ~assoc:2 () in
  (* 2 sets of 2 ways; three lines mapping to set 0: 0, 128, 256 *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  ignore (Cache.access c 0);   (* touch 0: 128 becomes LRU *)
  ignore (Cache.access c 256); (* evicts 128 *)
  check "0 still resident" true (Cache.access c 0);
  check "128 evicted" false (Cache.access c 128)

let test_cache_counters_reset () =
  let c = Cache.create () in
  ignore (Cache.access c 0);
  Cache.reset_counters c;
  check_int "misses cleared" 0 c.Cache.misses;
  check "hit rate 1.0 when empty" true (Cache.hit_rate c = 1.0)

(* ------------------------------------------------------------------ *)
(* Sim *)

let mk_ref ?(node = 0) ?(is_load = true) ?(offset = 0) ?(sched = 2)
    ?(base = 0) ?(stride = 8) () =
  { Sim.node; is_load; issue_offset = offset; sched_latency = sched; base;
    stride }

let test_sim_all_hits_no_stall () =
  (* stride 0: after the first fill everything hits; with a generous
     schedule latency the single compulsory miss is absorbed *)
  let r =
    Sim.run ~ii:4 ~hit_read:2 ~miss_cycles:10 ~n:100 ~e:1
      [ mk_ref ~stride:0 ~sched:10 () ]
  in
  check "no stall" true (r.Sim.stall_cycles = 0.);
  check_int "one compulsory miss" 1 r.Sim.misses

let test_sim_hit_scheduled_miss_stalls () =
  (* a load scheduled with hit latency that misses pays ~(miss - hit) *)
  let r =
    Sim.run ~ii:4 ~hit_read:2 ~miss_cycles:12 ~n:1 ~e:1
      [ mk_ref ~sched:2 () ]
  in
  check "stalls by miss - hit" true (r.Sim.stall_cycles = 10.)

let test_sim_prefetched_miss_no_stall () =
  let r =
    Sim.run ~ii:4 ~hit_read:2 ~miss_cycles:12 ~n:64 ~e:1
      [ mk_ref ~sched:12 () ]
  in
  check "prefetch hides misses" true (r.Sim.stall_cycles = 0.)

let test_sim_stall_scales_with_entries () =
  let one =
    Sim.run ~ii:4 ~hit_read:2 ~miss_cycles:12 ~n:1 ~e:1 [ mk_ref () ]
  in
  let ten =
    Sim.run ~ii:4 ~hit_read:2 ~miss_cycles:12 ~n:1 ~e:10 [ mk_ref () ]
  in
  check "10 entries, 10x stall" true
    (ten.Sim.stall_cycles = 10. *. one.Sim.stall_cycles)

let test_sim_mshr_merge () =
  (* two loads of the same line in the same iteration: one fill, the
     second merges (no double stall) *)
  let refs = [ mk_ref ~node:0 ~sched:12 (); mk_ref ~node:1 ~offset:1 ~sched:12 () ] in
  let r = Sim.run ~ii:8 ~hit_read:2 ~miss_cycles:12 ~n:32 ~e:1 refs in
  check "merged fills cause no stall" true (r.Sim.stall_cycles = 0.)

let test_sim_bandwidth_bound () =
  (* 9 distinct streams with stride 32 miss every iteration; with only
     2 MSHRs and a long miss the memory cannot keep up, so even
     prefetched loads stall *)
  let refs =
    List.init 9 (fun k ->
        mk_ref ~node:k ~base:(k * 1000000) ~stride:32 ~sched:20 ())
  in
  let r = Sim.run ~mshrs:2 ~ii:4 ~hit_read:2 ~miss_cycles:20 ~n:256 ~e:1 refs in
  check "bandwidth bound stalls" true (r.Sim.stall_cycles > 0.)

let test_sim_mshr_bound_burst () =
  (* regression: a burst of 12 distinct-line prefetched misses per
     iteration used to push fills past the MSHR bound (the full-queue
     path never retired the slot it was stealing); ~debug asserts
     occupancy <= mshrs after every allocation *)
  let refs =
    List.init 12 (fun k ->
        mk_ref ~node:k ~offset:k ~base:(k * 1000000) ~stride:32 ~sched:40 ())
  in
  let run mshrs =
    Sim.run ~debug:true ~mshrs ~ii:4 ~hit_read:2 ~miss_cycles:40 ~n:64 ~e:1
      refs
  in
  let r8 = run 8 in
  (* 3 misses/cycle of demand against 8 fills per 40 cycles of service:
     the enforced bound makes the burst bandwidth-bound *)
  check "burst stalls under the bound" true (r8.Sim.stall_cycles > 0.);
  check "every access simulated" true (r8.Sim.accesses = 12 * 64);
  (* a tighter bound serializes at least as much *)
  let r2 = run 2 in
  check "fewer mshrs stall at least as much" true
    (r2.Sim.stall_cycles >= r8.Sim.stall_cycles);
  (* enough MSHRs for all 12 streams: the debug invariant still holds *)
  let r16 = run 16 in
  check "wide queue stalls no more than the bound" true
    (r16.Sim.stall_cycles <= r8.Sim.stall_cycles)

let test_sim_store_burst_bounded () =
  (* write-allocate fills respect the bound too (and never stall) *)
  let refs =
    List.init 12 (fun k ->
        mk_ref ~node:k ~is_load:false ~offset:k ~base:(k * 1000000)
          ~stride:32 ~sched:0 ())
  in
  let r =
    Sim.run ~debug:true ~mshrs:4 ~ii:4 ~hit_read:2 ~miss_cycles:40 ~n:64
      ~e:1 refs
  in
  check "store burst never stalls" true (r.Sim.stall_cycles = 0.)

let test_sim_stores_never_stall () =
  let refs =
    List.init 6 (fun k ->
        mk_ref ~node:k ~is_load:false ~base:(k * 1000000) ~stride:32
          ~sched:0 ())
  in
  let r = Sim.run ~ii:2 ~hit_read:2 ~miss_cycles:20 ~n:128 ~e:1 refs in
  check "store misses don't stall" true (r.Sim.stall_cycles = 0.);
  check "store misses counted" true (r.Sim.misses > 0)

let test_sim_iteration_cap () =
  let r =
    Sim.run ~ii:4 ~hit_read:2 ~miss_cycles:12 ~n:1_000_000 ~e:1
      [ mk_ref () ]
  in
  check_int "bounded simulation" Sim.max_sim_iterations
    r.Sim.simulated_iterations

(* ------------------------------------------------------------------ *)
(* Prefetch *)

let test_prefetch_plan () =
  let config = Hcrf_model.Presets.published "S64" in
  let l = Hcrf_workload.Kernels.find "daxpy" in
  let plan = Prefetch.plan config l in
  (* daxpy: both loads are outside recurrences -> prefetched with the
     miss latency *)
  Hcrf_ir.Ddg.iter_nodes l.Hcrf_ir.Loop.ddg (fun n ->
      if Hcrf_ir.Op.equal_kind n.kind Hcrf_ir.Op.Load then
        check "load prefetched" true
          (plan n.id = Some (Hcrf_machine.Config.miss_cycles config))
      else check "non-load untouched" true (plan n.id = None))

let test_prefetch_skips_recurrence_loads () =
  let config = Hcrf_model.Presets.published "S64" in
  (* build a memory-carried recurrence: load -> add -> store -> load *)
  let g = Hcrf_ir.Ddg.create () in
  let l = Hcrf_ir.Ddg.add_node g Hcrf_ir.Op.Load in
  let a = Hcrf_ir.Ddg.add_node g Hcrf_ir.Op.Fadd in
  let s = Hcrf_ir.Ddg.add_node g Hcrf_ir.Op.Store in
  Hcrf_ir.Ddg.add_edge g ~dep:Hcrf_ir.Dep.True l a;
  Hcrf_ir.Ddg.add_edge g ~dep:Hcrf_ir.Dep.True a s;
  Hcrf_ir.Ddg.add_edge g ~distance:1 ~dep:Hcrf_ir.Dep.True s l;
  let loop = Hcrf_ir.Loop.make ~trip_count:1000 g in
  let plan = Prefetch.plan config loop in
  check "recurrence load kept at hit latency" true (plan l = None)

let test_prefetch_skips_short_loops () =
  let config = Hcrf_model.Presets.published "S64" in
  let l = Hcrf_workload.Kernels.find "daxpy" in
  let short = { l with Hcrf_ir.Loop.trip_count = 8 } in
  let plan = Prefetch.plan config short in
  Hcrf_ir.Ddg.iter_nodes short.Hcrf_ir.Loop.ddg (fun n ->
      check "short loop: nothing prefetched" true (plan n.id = None))

let tests =
  [
    ("cache: geometry", `Quick, test_cache_geometry);
    ("cache: unit stride", `Quick, test_cache_unit_stride);
    ("cache: temporal reuse", `Quick, test_cache_temporal_reuse);
    ("cache: lru eviction", `Quick, test_cache_lru_eviction);
    ("cache: counters", `Quick, test_cache_counters_reset);
    ("sim: all hits", `Quick, test_sim_all_hits_no_stall);
    ("sim: hit-scheduled miss", `Quick, test_sim_hit_scheduled_miss_stalls);
    ("sim: prefetched miss", `Quick, test_sim_prefetched_miss_no_stall);
    ("sim: scales with entries", `Quick, test_sim_stall_scales_with_entries);
    ("sim: mshr merge", `Quick, test_sim_mshr_merge);
    ("sim: bandwidth bound", `Quick, test_sim_bandwidth_bound);
    ("sim: mshr bound under burst", `Quick, test_sim_mshr_bound_burst);
    ("sim: store burst bounded", `Quick, test_sim_store_burst_bounded);
    ("sim: stores", `Quick, test_sim_stores_never_stall);
    ("sim: iteration cap", `Quick, test_sim_iteration_cap);
    ("prefetch: plan", `Quick, test_prefetch_plan);
    ("prefetch: recurrence loads", `Quick, test_prefetch_skips_recurrence_loads);
    ("prefetch: short loops", `Quick, test_prefetch_skips_short_loops);
  ]

(* Tests for the loop-language front end: compilation, CSE, dependence
   analysis, IF-conversion — and full functional verification of
   compiled loops through the pipeline executor. *)

open Hcrf_ir
open Hcrf_frontend
open Ast

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let daxpy_src =
  make ~name:"daxpy_src"
    [ store "y" (param "a" *: arr "x" +: arr "y") ]

let test_compile_daxpy () =
  let loop = Compile.compile daxpy_src in
  let g = loop.Loop.ddg in
  check "well-formed" true (Ddg.validate g);
  (* 2 loads, 1 mul, 1 add, 1 store *)
  check_int "nodes" 5 (Ddg.num_nodes g);
  check_int "one invariant" 1 (List.length (Ddg.invariants g));
  check_int "streams cover memory ops" 3 (List.length loop.Loop.streams);
  (* y is read and written at the same offset: an anti dependence *)
  check "anti dependence present" true
    (List.exists
       (fun (e : Ddg.edge) -> e.dep = Dep.Anti && e.distance = 0)
       (Ddg.edges g))

let test_cse_within_iteration () =
  (* x[i] appears twice: one load *)
  let loop =
    Compile.compile
      (make ~name:"square" [ store "y" (arr "x" *: arr "x") ])
  in
  check_int "single load" 1
    (Ddg.count_kind loop.Loop.ddg (Op.equal_kind Op.Load))

let test_store_kills_cse () =
  (* load after a store to the same location must be a fresh load fed by
     the store *)
  let loop =
    Compile.compile
      (make ~name:"rmw"
         [ store "a" (arr "a" +: param "c"); def "t" (arr "a" *: arr "a");
           store ~off:1 "b" (var "t") ])
  in
  let g = loop.Loop.ddg in
  check_int "two loads of a" 2
    (Ddg.count_kind g (Op.equal_kind Op.Load));
  (* the second load reads what the store wrote: a true d0 edge *)
  check "store feeds reload" true
    (List.exists
       (fun (e : Ddg.edge) ->
         e.dep = Dep.True && e.distance = 0
         && Op.equal_kind (Ddg.kind g e.src) Op.Store
         && Op.equal_kind (Ddg.kind g e.dst) Op.Load)
       (Ddg.edges g))

let test_loop_carried_scalar () =
  (* s = s@-1 + x[i]: a first-order recurrence with RecMII = add latency *)
  let loop =
    Compile.compile
      (make ~name:"sum" [ def "s" (prev "s" +: arr "x") ])
  in
  check "has recurrence" true (Scc.has_recurrence loop.Loop.ddg);
  let config = Hcrf_model.Presets.published "S128" in
  check_int "recmii = 4" 4 (Hcrf_sched.Mii.compute config loop.Loop.ddg)

let test_memory_carried_dependence () =
  (* b[i] = b[i-1] + x[i]: flow through memory, distance 1 *)
  let loop =
    Compile.compile
      (make ~name:"scan" [ store "b" (arr ~off:(-1) "b" +: arr "x") ])
  in
  let g = loop.Loop.ddg in
  check "true memory dep distance 1" true
    (List.exists
       (fun (e : Ddg.edge) ->
         e.dep = Dep.True && e.distance = 1
         && Op.equal_kind (Ddg.kind g e.src) Op.Store)
       (Ddg.edges g));
  check "is a recurrence" true (Scc.has_recurrence g)

let test_forward_memory_flow () =
  (* a[i+2] = f(a[i]): iteration i+2 loads what iteration i stored — a
     true memory dependence of distance 2, i.e. a recurrence *)
  let loop =
    Compile.compile
      (make ~name:"shift" [ store ~off:2 "a" (arr "a" *: param "w") ])
  in
  let g = loop.Loop.ddg in
  check "true memory flow, distance 2" true
    (List.exists
       (fun (e : Ddg.edge) ->
         e.dep = Dep.True && e.distance = 2
         && Op.equal_kind (Ddg.kind g e.src) Op.Store)
       (Ddg.edges g));
  check "is a recurrence" true (Scc.has_recurrence g);
  (* and the mirror case: a[i] = f(a[i+2]) reads ahead of the store,
     an anti dependence of distance 2 *)
  let loop' =
    Compile.compile
      (make ~name:"shiftback" [ store "a" (arr ~off:2 "a" *: param "w") ])
  in
  check "anti distance 2" true
    (List.exists
       (fun (e : Ddg.edge) -> e.dep = Dep.Anti && e.distance = 2)
       (Ddg.edges loop'.Loop.ddg))

let test_if_conversion () =
  (* if c then s = a else s = b; both sides always execute, merged by a
     select *)
  let src =
    make ~name:"clip"
      [
        def "c" (arr "x" -: param "t");
        if_ (var "c")
          [ def "v" (arr "x" *: param "g") ]
          [ def "v" (param "t" +: arr "x") ];
        store "y" (var "v" +: var "c");
      ]
  in
  let converted = If_convert.run src in
  check "no conditionals left" true
    (List.for_all
       (function If _ -> false | Def _ | Store _ -> true)
       converted.Ast.body);
  let loop = Compile.compile src in
  check "compiles" true (Ddg.validate loop.Loop.ddg);
  (* both branch bodies present: two ops for the branches + the select
     blend (2 muls + add) *)
  check "bigger than one branch" true (Ddg.num_nodes loop.Loop.ddg >= 9)

let test_if_conversion_store () =
  (* a conditional store becomes an unconditional read-modify-write *)
  let src =
    make ~name:"condstore"
      [
        def "c" (arr "x" -: param "t");
        if_ (var "c") [ store "y" (arr "x") ] [];
      ]
  in
  let loop = Compile.compile src in
  let g = loop.Loop.ddg in
  check_int "store is unconditional" 1
    (Ddg.count_kind g (Op.equal_kind Op.Store));
  (* the old value of y[i] is loaded to blend *)
  check "y is loaded for the blend" true
    (Ddg.count_kind g (Op.equal_kind Op.Load) >= 2)

let test_undefined_scalar_rejected () =
  check "undefined scalar" true
    (try
       ignore (Compile.compile (make ~name:"bad" [ store "y" (var "nope") ]));
       false
     with Compile.Error _ -> true)

let test_nested_if () =
  let src =
    make ~name:"nested"
      [
        def "c1" (arr "x" -: param "a");
        def "c2" (arr "x" -: param "b");
        if_ (var "c1")
          [ if_ (var "c2") [ def "v" (arr "x" *: arr "x") ]
              [ def "v" (arr "x" +: arr "x") ] ]
          [ def "v" (param "a" *: arr "x") ];
        store "y" (var "v");
      ]
  in
  let loop = Compile.compile src in
  check "nested conversion compiles" true (Ddg.validate loop.Loop.ddg)

(* end to end: compile, schedule on a hierarchical clustered RF, and
   execute the pipeline against the sequential reference *)
let test_functional_end_to_end () =
  let sources =
    [
      daxpy_src;
      make ~name:"scan2" [ store "b" (arr ~off:(-1) "b" +: arr "x") ];
      make ~name:"horner2" [ def "p" ((prev "p" *: param "x") +: arr "c") ];
      make ~name:"clipped"
        [
          def "c" (arr "x" -: param "t");
          if_ (var "c")
            [ def "v" (sqrt_ (arr "x")) ]
            [ def "v" (arr "x" /: param "t") ];
          store "y" (var "v");
        ];
    ]
  in
  List.iter
    (fun src ->
      let loop = Compile.compile src in
      List.iter
        (fun cname ->
          let config = Hcrf_model.Presets.published cname in
          match Hcrf_core.Mirs_hc.schedule config loop.Loop.ddg with
          | Error _ ->
            Alcotest.fail (Fmt.str "%s on %s: no schedule" src.Ast.name cname)
          | Ok o -> (
            match Hcrf_pipesim.Pipe_exec.check loop o ~iterations:10 () with
            | Ok _ -> ()
            | Error e ->
              Alcotest.fail
                (Fmt.str "%s on %s: %a" src.Ast.name cname
                   Hcrf_pipesim.Pipe_exec.pp_error e)))
        [ "S128"; "4C32"; "2C32S32" ])
    sources

(* Random programs: build well-formed sources by construction, compile
   them, schedule on a rotating set of configurations, and verify the
   pipeline functionally.  Exercises CSE, dependence analysis,
   IF-conversion, scheduling, allocation and the executor together. *)
let random_source seed =
  let rng = Hcrf_workload.Rng.create ~seed in
  let arrays = [| "a"; "b"; "c"; "d" |] in
  let params = [| "p"; "q" |] in
  let scalars = ref [] in
  let pick l = List.nth l (Hcrf_workload.Rng.int rng (List.length l)) in
  let rec expr depth =
    let leaf () =
      match Hcrf_workload.Rng.int rng 4 with
      | 0 | 1 ->
        arr
          ~off:(Hcrf_workload.Rng.range rng (-2) 2)
          arrays.(Hcrf_workload.Rng.int rng (Array.length arrays))
      | 2 when !scalars <> [] ->
        if Hcrf_workload.Rng.bool rng 0.3 then
          prev ~d:(Hcrf_workload.Rng.range rng 1 3) (pick !scalars)
        else var (pick !scalars)
      | _ -> param params.(Hcrf_workload.Rng.int rng (Array.length params))
    in
    if depth <= 0 then leaf ()
    else
      match Hcrf_workload.Rng.int rng 5 with
      | 0 -> expr (depth - 1) +: expr (depth - 1)
      | 1 -> expr (depth - 1) *: expr (depth - 1)
      | 2 -> expr (depth - 1) -: expr (depth - 1)
      | 3 -> sqrt_ (expr (depth - 1))
      | _ -> leaf ()
  in
  let rec stmts n ~allow_if =
    List.concat
      (List.init n (fun _ ->
           match Hcrf_workload.Rng.int rng 4 with
           | 0 | 1 ->
             let name = Fmt.str "s%d" (Hcrf_workload.Rng.int rng 4) in
             let s = def name (expr 1 +: expr 1) in
             scalars := name :: List.filter (( <> ) name) !scalars;
             [ s ]
           | 2 ->
             [ store
                 ~off:(Hcrf_workload.Rng.range rng (-1) 1)
                 arrays.(Hcrf_workload.Rng.int rng (Array.length arrays))
                 (expr 2) ]
           | _ when allow_if ->
             let c = Fmt.str "s%d" (Hcrf_workload.Rng.int rng 4) in
             scalars := c :: List.filter (( <> ) c) !scalars;
             def c (expr 0 +: expr 0)
             :: [ if_ (var c) (stmts 2 ~allow_if:false)
                    (stmts 1 ~allow_if:false) ]
           | _ -> [ store "out" (expr 2) ]))
  in
  (* pre-define every scalar so a branch definition always has a prior
     binding to merge with (a scalar local to one branch is invisible
     after IF-conversion, by design) *)
  let preamble =
    List.init 4 (fun k ->
        let name = Fmt.str "s%d" k in
        scalars := name :: !scalars;
        def name (arr arrays.(k mod Array.length arrays)))
  in
  let body = preamble @ stmts 5 ~allow_if:true @ [ store "out" (expr 2) ] in
  make ~name:(Fmt.str "rand%d" seed) ~trip_count:64 body

let prop_random_programs =
  let configs = [| "S64"; "S32"; "4C32"; "2C32S32"; "4C16S16" |] in
  QCheck.Test.make ~name:"random programs pipe-execute correctly" ~count:40
    QCheck.(int_range 0 39)
    (fun seed ->
      let src = random_source (seed * 131 + 7) in
      let loop = Compile.compile src in
      let config =
        Hcrf_model.Presets.published configs.(seed mod Array.length configs)
      in
      match Hcrf_eval.Runner.run_loop config loop with
      | None -> false
      | Some r -> (
        match
          Hcrf_pipesim.Pipe_exec.check loop r.Hcrf_eval.Runner.outcome
            ~iterations:8 ()
        with
        | Ok _ -> true
        | Error e ->
          Fmt.epr "random program %s on %s: %a@." src.Ast.name
            config.Hcrf_machine.Config.name Hcrf_pipesim.Pipe_exec.pp_error e;
          false))

(* Semantic cross-check: interpret the IF-converted AST directly —
   without ever building a dependence graph — and require the final
   memory image to match [Ref_exec.run] on the compiled loop exactly.
   The interpreter mirrors the compiler's observable conventions
   (per-iteration CSE killed by same-location stores, parameter ids in
   first-use order, array allocation in the order [Compile.streams]
   touches references, select as two guarded multiplies and a blend) but
   shares none of its code paths, so a dataflow bug in either side shows
   up as a float mismatch. *)

type ival = Inum of float | Ipar of int

let interp_value kind ivals =
  let ops = List.filter_map (function Inum v -> Some v | Ipar _ -> None) ivals in
  let invs =
    (* the executor feeds each distinct invariant to a consumer once,
       however many edges connect them *)
    List.sort_uniq compare
      (List.filter_map (function Ipar i -> Some i | Inum _ -> None) ivals)
  in
  Hcrf_pipesim.Semantics.combine kind ops
    ~invariants:(List.map Hcrf_pipesim.Semantics.invariant_value invs)
    ~memory:None

(* Array allocation indices as [Compile.streams] assigns them: it walks
   the ref list with [rev_map], so the reference compiled LAST gets the
   first fresh index.  Reproduce the compiler's CSE-aware ref list
   structurally (values play no part). *)
let interp_array_indices body =
  let refs = ref [] in
  let live = Hashtbl.create 16 in
  let rec scan = function
    | Arr (a, k) ->
      if not (Hashtbl.mem live (a, k)) then begin
        Hashtbl.replace live (a, k) ();
        refs := (a, k) :: !refs
      end
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> scan a; scan b
    | Sqrt a -> scan a
    | Select (c, a, b) ->
      (* the compiler materialises the condition twice *)
      scan c; scan a; scan c; scan b
    | Var _ | Param _ | Prev _ -> ()
  in
  List.iter
    (function
      | Def (_, e) -> scan e
      | Store (a, k, e) ->
        scan e;
        refs := (a, k) :: !refs;
        Hashtbl.remove live (a, k)
      | If _ -> Alcotest.fail "interp: conditional survived IF-conversion")
    body;
  let arrays = Hashtbl.create 8 in
  List.iter
    (fun (a, _) ->
      if not (Hashtbl.mem arrays a) then
        Hashtbl.replace arrays a (Hashtbl.length arrays))
    !refs;
  arrays

(* Run [iterations] of an IF-converted body; returns the final memory
   image keyed by address, laid out like the compiled loop's streams. *)
let interpret (src : Ast.t) ~iterations =
  let body = src.Ast.body in
  let arrays = interp_array_indices body in
  let addr a k i =
    let idx = Hashtbl.find arrays a in
    (idx * (1 lsl 20)) + (idx * 1056) + ((k + i) * 8)
  in
  let params = Hashtbl.create 8 in
  let param_id s =
    match Hashtbl.find_opt params s with
    | Some id -> id
    | None ->
      let id = Hashtbl.length params in
      Hashtbl.replace params s id;
      id
  in
  let scalars = Hashtbl.create 8 in
  let memory = Hashtbl.create 64 in
  let read a =
    match Hashtbl.find_opt memory a with
    | Some v -> v
    | None -> Hcrf_pipesim.Semantics.memory_init a
  in
  let cse = Hashtbl.create 16 in
  for i = 0 to iterations - 1 do
    Hashtbl.reset cse;
    List.iter
      (fun stmt ->
        (* evaluation order matters only for parameter-id assignment;
           keep it explicitly left-to-right, as the compiler traverses *)
        let rec eval e : ival =
          match e with
          | Param s -> Ipar (param_id s)
          | Var s -> (
            match Hashtbl.find_opt scalars s with
            | Some v -> Inum v
            | None -> Alcotest.fail ("interp: undefined scalar " ^ s))
          | Prev _ -> Alcotest.fail "interp: prev unsupported"
          | Arr (a, k) -> (
            match Hashtbl.find_opt cse (a, k) with
            | Some v -> Inum v
            | None ->
              let v = read (addr a k i) in
              Hashtbl.replace cse (a, k) v;
              Inum v)
          | Add (a, b) | Sub (a, b) ->
            let va = eval a in
            let vb = eval b in
            Inum (interp_value Op.Fadd [ va; vb ])
          | Mul (a, b) ->
            let va = eval a in
            let vb = eval b in
            Inum (interp_value Op.Fmul [ va; vb ])
          | Div (a, b) ->
            let va = eval a in
            let vb = eval b in
            Inum (interp_value Op.Fdiv [ va; vb ])
          | Sqrt a -> Inum (interp_value Op.Fsqrt [ eval a ])
          | Select (c, a, b) ->
            let vc1 = eval c in
            let va = eval a in
            let m1 = interp_value Op.Fmul [ vc1; va ] in
            let vc2 = eval c in
            let vb = eval b in
            let m2 = interp_value Op.Fmul [ vc2; vb ] in
            Inum (interp_value Op.Fadd [ Inum m1; Inum m2 ])
        in
        match stmt with
        | Def (s, e) -> (
          match eval e with
          | Inum v -> Hashtbl.replace scalars s v
          | Ipar _ -> Alcotest.fail ("interp: " ^ s ^ " bound to a parameter"))
        | Store (a, k, e) ->
          let v = interp_value Op.Store [ eval e ] in
          Hashtbl.replace memory (addr a k i) v;
          Hashtbl.remove cse (a, k)
        | If _ -> Alcotest.fail "interp: conditional survived IF-conversion")
      body
  done;
  memory

(* Like [random_source] but without loop-carried scalars: [prev] reaches
   back before iteration 0, where the executor substitutes live-in
   values keyed by node id — information an AST-level interpreter cannot
   have.  Adds direct selects for coverage beyond IF-conversion. *)
let random_source_carried_free seed =
  let rng = Hcrf_workload.Rng.create ~seed in
  let arrays = [| "a"; "b"; "c"; "d" |] in
  let params = [| "p"; "q" |] in
  let scalars = ref [] in
  let pick l = List.nth l (Hcrf_workload.Rng.int rng (List.length l)) in
  let rec expr depth =
    let leaf () =
      match Hcrf_workload.Rng.int rng 4 with
      | 0 | 1 ->
        arr
          ~off:(Hcrf_workload.Rng.range rng (-2) 2)
          arrays.(Hcrf_workload.Rng.int rng (Array.length arrays))
      | 2 when !scalars <> [] -> var (pick !scalars)
      | _ -> param params.(Hcrf_workload.Rng.int rng (Array.length params))
    in
    if depth <= 0 then leaf ()
    else
      match Hcrf_workload.Rng.int rng 7 with
      | 0 -> expr (depth - 1) +: expr (depth - 1)
      | 1 -> expr (depth - 1) *: expr (depth - 1)
      | 2 -> expr (depth - 1) -: expr (depth - 1)
      | 3 -> expr (depth - 1) /: expr (depth - 1)
      | 4 -> sqrt_ (expr (depth - 1))
      | 5 -> select (expr 0) (expr (depth - 1)) (expr (depth - 1))
      | _ -> leaf ()
  in
  let rec stmts n ~allow_if =
    List.concat
      (List.init n (fun _ ->
           match Hcrf_workload.Rng.int rng 4 with
           | 0 | 1 ->
             let name = Fmt.str "s%d" (Hcrf_workload.Rng.int rng 4) in
             let s = def name (expr 1 +: expr 1) in
             scalars := name :: List.filter (( <> ) name) !scalars;
             [ s ]
           | 2 ->
             [ store
                 ~off:(Hcrf_workload.Rng.range rng (-1) 1)
                 arrays.(Hcrf_workload.Rng.int rng (Array.length arrays))
                 (expr 2) ]
           | _ when allow_if ->
             let c = Fmt.str "s%d" (Hcrf_workload.Rng.int rng 4) in
             scalars := c :: List.filter (( <> ) c) !scalars;
             def c (expr 0 +: expr 0)
             :: [ if_ (var c) (stmts 2 ~allow_if:false)
                    (stmts 1 ~allow_if:false) ]
           | _ -> [ store "out" (expr 2) ]))
  in
  let preamble =
    List.init 4 (fun k ->
        let name = Fmt.str "s%d" k in
        scalars := name :: !scalars;
        def name (arr arrays.(k mod Array.length arrays)))
  in
  let body = preamble @ stmts 5 ~allow_if:true @ [ store "out" (expr 2) ] in
  make ~name:(Fmt.str "noprev%d" seed) ~trip_count:64 body

let prop_interpreter_agrees =
  QCheck.Test.make ~name:"compiled loops match direct AST interpretation"
    ~count:60
    QCheck.(int_range 0 59)
    (fun seed ->
      let src = random_source_carried_free ((seed * 257) + 13) in
      let loop = Compile.compile src in
      let expected = interpret (If_convert.run src) ~iterations:4 in
      let got =
        (Hcrf_pipesim.Ref_exec.run loop ~iterations:4).Hcrf_pipesim.Ref_exec
        .memory
      in
      let agrees =
        Hashtbl.length expected = Hashtbl.length got
        && Hashtbl.fold
             (fun a v ok ->
               ok && compare (Hashtbl.find_opt got a) (Some v) = 0)
             expected true
      in
      if not agrees then
        Fmt.epr "interpreter mismatch on %s (%d vs %d addresses)@."
          src.Ast.name (Hashtbl.length expected) (Hashtbl.length got);
      agrees)

let tests =
  [
    ("frontend: daxpy", `Quick, test_compile_daxpy);
    ("frontend: cse", `Quick, test_cse_within_iteration);
    ("frontend: store kills cse", `Quick, test_store_kills_cse);
    ("frontend: loop-carried scalar", `Quick, test_loop_carried_scalar);
    ("frontend: memory-carried dep", `Quick, test_memory_carried_dependence);
    ("frontend: memory flow directions", `Quick, test_forward_memory_flow);
    ("frontend: if conversion", `Quick, test_if_conversion);
    ("frontend: conditional store", `Quick, test_if_conversion_store);
    ("frontend: undefined scalar", `Quick, test_undefined_scalar_rejected);
    ("frontend: nested if", `Quick, test_nested_if);
    ("frontend: functional end-to-end", `Quick, test_functional_end_to_end);
    QCheck_alcotest.to_alcotest prop_random_programs;
    QCheck_alcotest.to_alcotest prop_interpreter_agrees;
  ]

(* Unit and property tests for the IR: operations, dependence graphs,
   SCC analysis and loop metadata. *)

open Hcrf_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Op *)

let test_op_predicates () =
  check "load is memory" true (Op.is_memory Op.Load);
  check "spill store is memory" true (Op.is_memory Op.Spill_store);
  check "fadd is not memory" false (Op.is_memory Op.Fadd);
  check "fdiv is compute" true (Op.is_compute Op.Fdiv);
  check "loadr is not compute" false (Op.is_compute Op.Load_r);
  check "move is communication" true (Op.is_communication Op.Move);
  check "storer is communication" true (Op.is_communication Op.Store_r);
  check "spill load is not communication" false
    (Op.is_communication Op.Spill_load);
  check "store defines no value" false (Op.defines_value Op.Store);
  check "spill store defines no value" false (Op.defines_value Op.Spill_store);
  check "load defines a value" true (Op.defines_value Op.Load);
  check "storer defines a value" true (Op.defines_value Op.Store_r);
  check "fadd is original" true (Op.is_original Op.Fadd);
  check "move is not original" false (Op.is_original Op.Move)

let test_op_partition () =
  (* every kind is exactly one of memory / compute / communication *)
  List.iter
    (fun k ->
      let classes =
        [ Op.is_memory k; Op.is_compute k; Op.is_communication k ]
      in
      check_int
        (Fmt.str "%s in exactly one class" (Op.kind_name k))
        1
        (List.length (List.filter Fun.id classes)))
    Op.all_kinds

let test_op_names_unique () =
  let names = List.map Op.kind_name Op.all_kinds in
  check_int "kind names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)
(* Ddg *)

let diamond () =
  (* l -> a -> s, l -> b -> s *)
  let g = Ddg.create ~name:"diamond" () in
  let l = Ddg.add_node g Op.Load in
  let a = Ddg.add_node g Op.Fadd in
  let b = Ddg.add_node g Op.Fmul in
  let s = Ddg.add_node g Op.Store in
  Ddg.add_edge g ~dep:Dep.True l a;
  Ddg.add_edge g ~dep:Dep.True l b;
  Ddg.add_edge g ~dep:Dep.True a s;
  Ddg.add_edge g ~dep:Dep.True b s;
  (g, l, a, b, s)

let test_ddg_basics () =
  let g, l, a, _, s = diamond () in
  check_int "node count" 4 (Ddg.num_nodes g);
  check_int "edge count" 4 (Ddg.num_edges g);
  check "well-formed" true (Ddg.validate g);
  check_int "load consumers" 2 (List.length (Ddg.consumers g l));
  check_int "store operands" 2 (List.length (Ddg.operands g s));
  check_int "add preds" 1 (List.length (Ddg.preds g a));
  check_int "memory ops" 2 (Ddg.num_memory_ops g);
  check_int "compute ops" 2 (Ddg.num_compute_ops g)

let test_ddg_remove_node () =
  let g, _, a, _, s = diamond () in
  Ddg.remove_node g a;
  check "still well-formed" true (Ddg.validate g);
  check_int "nodes after removal" 3 (Ddg.num_nodes g);
  check_int "store operands after removal" 1
    (List.length (Ddg.operands g s));
  check "removed node is gone" false (Ddg.mem g a)

let test_ddg_remove_edge_single_occurrence () =
  (* x * x: two identical parallel edges; removing one must keep the
     other *)
  let g = Ddg.create () in
  let l = Ddg.add_node g Op.Load in
  let m = Ddg.add_node g Op.Fmul in
  Ddg.add_edge g ~dep:Dep.True l m;
  Ddg.add_edge g ~dep:Dep.True l m;
  check_int "two parallel edges" 2 (List.length (Ddg.operands g m));
  (match Ddg.operands g m with
  | e :: _ -> Ddg.remove_edge g e
  | [] -> Alcotest.fail "missing edge");
  check_int "one edge left" 1 (List.length (Ddg.operands g m));
  check "still well-formed" true (Ddg.validate g)

let test_ddg_copy_independent () =
  let g, l, a, _, _ = diamond () in
  let g' = Ddg.copy g in
  Ddg.remove_node g' a;
  check "original keeps node" true (Ddg.mem g a);
  check_int "original keeps consumers" 2 (List.length (Ddg.consumers g l));
  check "copy is well-formed" true (Ddg.validate g')

let test_ddg_invariants () =
  let g, _, a, b, _ = diamond () in
  let inv = Ddg.add_invariant g ~consumers:[ a; b ] in
  check_int "one invariant" 1 (List.length (Ddg.invariants g));
  Ddg.add_invariant_consumer g ~inv_id:inv a;
  (match Ddg.invariants g with
  | [ i ] -> check_int "consumer list grew" 3 (List.length i.inv_consumers)
  | _ -> Alcotest.fail "expected one invariant");
  Ddg.remove_node g a;
  (match Ddg.invariants g with
  | [ i ] ->
    check "removed node purged from invariant" false
      (List.mem a i.inv_consumers)
  | _ -> Alcotest.fail "expected one invariant")

let test_ddg_has_edge () =
  let g, l, a, _, _ = diamond () in
  match Ddg.operands g a with
  | e :: _ ->
    check "has edge" true (Ddg.has_edge g e);
    Ddg.remove_edge g e;
    check "edge gone" false (Ddg.has_edge g e);
    check "endpoints remain" true (Ddg.mem g l && Ddg.mem g a)
  | [] -> Alcotest.fail "missing edge"

let test_ddg_negative_distance_rejected () =
  let g = Ddg.create () in
  let a = Ddg.add_node g Op.Fadd in
  let b = Ddg.add_node g Op.Fadd in
  Alcotest.check_raises "negative distance"
    (Invalid_argument "Ddg.add_edge: negative distance") (fun () ->
      Ddg.add_edge g ~distance:(-1) ~dep:Dep.True a b)

(* ------------------------------------------------------------------ *)
(* Scc *)

let test_scc_acyclic () =
  let g, _, _, _, _ = diamond () in
  check "no recurrence in a DAG" false (Scc.has_recurrence g);
  check_int "four singleton components" 4 (List.length (Scc.sccs g))

let test_scc_self_loop () =
  let g = Ddg.create () in
  let a = Ddg.add_node g Op.Fadd in
  Ddg.add_edge g ~distance:1 ~dep:Dep.True a a;
  check "self loop is a recurrence" true (Scc.has_recurrence g);
  check_int "one recurrence" 1 (List.length (Scc.recurrences g))

let test_scc_cycle () =
  let g = Ddg.create () in
  let a = Ddg.add_node g Op.Fadd in
  let b = Ddg.add_node g Op.Fmul in
  let c = Ddg.add_node g Op.Fadd in
  Ddg.add_edge g ~dep:Dep.True a b;
  Ddg.add_edge g ~dep:Dep.True b c;
  Ddg.add_edge g ~distance:2 ~dep:Dep.True c a;
  let recs = Scc.recurrences g in
  check_int "one recurrence" 1 (List.length recs);
  check_int "three nodes in it" 3 (List.length (List.hd recs))

let test_scc_two_components () =
  let g = Ddg.create () in
  let a = Ddg.add_node g Op.Fadd in
  let b = Ddg.add_node g Op.Fadd in
  Ddg.add_edge g ~distance:1 ~dep:Dep.True a a;
  Ddg.add_edge g ~distance:1 ~dep:Dep.True b b;
  Ddg.add_edge g ~dep:Dep.True a b;
  check_int "two recurrences" 2 (List.length (Scc.recurrences g))

(* ------------------------------------------------------------------ *)
(* Loop *)

let test_loop_metadata () =
  let g, l, _, _, s = diamond () in
  let loop =
    Loop.make ~trip_count:10 ~entries:3
      ~streams:[ { Loop.op = l; base = 0; stride = 8 } ]
      g
  in
  check_int "total iterations" 30 (Loop.total_iterations loop);
  check_int "memory refs per iter" 2 (Loop.memory_refs_per_iter loop);
  check "stream found" true (Loop.stream_for loop l <> None);
  check "no stream for store" true (Loop.stream_for loop s = None)

let test_loop_rejects_bad_counts () =
  let g, _, _, _, _ = diamond () in
  Alcotest.check_raises "zero trip count"
    (Invalid_argument "Loop.make: trip_count < 1") (fun () ->
      ignore (Loop.make ~trip_count:0 g))

(* ------------------------------------------------------------------ *)
(* Properties over generated graphs *)

let suite_graphs = lazy (Hcrf_workload.Suite.generate ~n:40 ())

let prop_generated_well_formed =
  QCheck.Test.make ~name:"generated DDGs are well-formed" ~count:40
    QCheck.(int_range 0 39)
    (fun i ->
      let l = List.nth (Lazy.force suite_graphs) i in
      Ddg.validate l.Loop.ddg)

let prop_copy_equals =
  QCheck.Test.make ~name:"copy preserves node and edge counts" ~count:40
    QCheck.(int_range 0 39)
    (fun i ->
      let l = List.nth (Lazy.force suite_graphs) i in
      let g = l.Loop.ddg in
      let g' = Ddg.copy g in
      Ddg.num_nodes g = Ddg.num_nodes g'
      && Ddg.num_edges g = Ddg.num_edges g')

let prop_repr_roundtrip =
  (* [of_repr (to_repr g)] must be behaviourally identical to [g]:
     same nodes, kinds, adjacency (order included), invariants, and the
     same id counter (a fresh node gets the same id in both). *)
  QCheck.Test.make ~name:"repr serialization round-trips" ~count:40
    QCheck.(int_range 0 39)
    (fun i ->
      let l = List.nth (Lazy.force suite_graphs) i in
      let g = Ddg.copy l.Loop.ddg in
      let g' = Ddg.of_repr (Ddg.to_repr g) in
      Ddg.validate g'
      && Ddg.name g = Ddg.name g'
      && Ddg.nodes g = Ddg.nodes g'
      && List.for_all
           (fun v ->
             Ddg.kind g v = Ddg.kind g' v
             && Ddg.succs g v = Ddg.succs g' v
             && Ddg.preds g v = Ddg.preds g' v)
           (Ddg.nodes g)
      && Ddg.invariants g = Ddg.invariants g'
      && Ddg.add_node g Op.Fadd = Ddg.add_node g' Op.Fadd)

let prop_cycles_carry_distance =
  (* every recurrence circuit must contain a loop-carried edge, otherwise
     the loop would be unschedulable *)
  QCheck.Test.make ~name:"every SCC cycle has distance >= 1" ~count:40
    QCheck.(int_range 0 39)
    (fun i ->
      let l = List.nth (Lazy.force suite_graphs) i in
      let g = l.Loop.ddg in
      List.for_all
        (fun scc ->
          let in_scc v = List.mem v scc in
          (* total distance around the component is positive: at least
             one edge inside the SCC carries distance *)
          List.exists
            (fun v ->
              List.exists
                (fun (e : Ddg.edge) -> in_scc e.dst && e.distance > 0)
                (Ddg.succs g v))
            scc)
        (Scc.recurrences g))

let tests =
  [
    ("op: predicates", `Quick, test_op_predicates);
    ("op: exactly one class", `Quick, test_op_partition);
    ("op: names unique", `Quick, test_op_names_unique);
    ("ddg: basics", `Quick, test_ddg_basics);
    ("ddg: remove node", `Quick, test_ddg_remove_node);
    ("ddg: parallel edges", `Quick, test_ddg_remove_edge_single_occurrence);
    ("ddg: copy independent", `Quick, test_ddg_copy_independent);
    ("ddg: invariants", `Quick, test_ddg_invariants);
    ("ddg: has_edge", `Quick, test_ddg_has_edge);
    ("ddg: negative distance", `Quick, test_ddg_negative_distance_rejected);
    ("scc: acyclic", `Quick, test_scc_acyclic);
    ("scc: self loop", `Quick, test_scc_self_loop);
    ("scc: cycle", `Quick, test_scc_cycle);
    ("scc: two components", `Quick, test_scc_two_components);
    ("loop: metadata", `Quick, test_loop_metadata);
    ("loop: bad counts", `Quick, test_loop_rejects_bad_counts);
    QCheck_alcotest.to_alcotest prop_generated_well_formed;
    QCheck_alcotest.to_alcotest prop_copy_equals;
    QCheck_alcotest.to_alcotest prop_repr_roundtrip;
    QCheck_alcotest.to_alcotest prop_cycles_carry_distance;
  ]

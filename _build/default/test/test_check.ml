(* Tests for the differential fuzzing subsystem: campaign determinism,
   fault injection with shrinking, reproducer round-trips, corpus
   replay (with and without a shared cache, with and without the
   injected fault) and the cache's id-digest guard that fuzzing
   uncovered. *)

open Hcrf_ir
open Hcrf_check
module Ev = Hcrf_obs.Event
module Cache = Hcrf_cache.Cache
module Entry = Hcrf_cache.Entry
module Runner = Hcrf_eval.Runner
module Schedule = Hcrf_sched.Schedule

let vname = Ev.fuzz_verdict_name

(* A clean campaign is deterministic across worker counts and finds no
   oracle failures: pp_report at jobs=1 and jobs=2 must be
   byte-identical, failure-free, and account for every case. *)
let test_campaign_deterministic () =
  let report jobs =
    let ctx = Runner.Ctx.make ~jobs () in
    Check.campaign ~ctx ~shrink:true ~seed:5 ~cases:18 ()
  in
  let ra = report 1 and rb = report 2 in
  let sa = Fmt.str "%a" Check.pp_report ra in
  let sb = Fmt.str "%a" Check.pp_report rb in
  Alcotest.(check string) "jobs=1 and jobs=2 reports byte-identical" sa sb;
  Alcotest.(check int) "no oracle failures" 0 (List.length ra.Check.r_failures);
  Alcotest.(check int) "every case accounted for" 18
    (List.fold_left (fun acc (_, n) -> acc + n) 0 ra.Check.r_counts)

(* The Lax_resources fault makes the scheduler ignore resource capacity;
   the campaign must catch it as invalid schedules and shrink each
   failure to a tiny witness.  On a 2-FU machine an oversubscription
   witness needs at most FUs+1 independent operations, so the shrunk
   loops must be small (acceptance bound: <= 8 nodes). *)
let test_fault_injection_caught () =
  Fun.protect
    ~finally:(fun () -> Schedule.fault := None)
    (fun () ->
      Schedule.fault := Some Schedule.Lax_resources;
      let presets =
        [ ("S32", Check.config_of_name ~n_fus:2 ~n_mem_ports:2 "S32") ]
      in
      let r =
        Check.campaign ~config_presets:presets ~shrink:true
          ~max_shrink_evals:150 ~seed:3 ~cases:6 ()
      in
      Alcotest.(check bool) "fault detected" true (r.Check.r_failures <> []);
      List.iter
        (fun (f : Check.failure) ->
          Alcotest.(check string)
            (Fmt.str "case %d caught as invalid" f.Check.f_case)
            "invalid_schedule" (vname f.Check.f_kind);
          Alcotest.(check bool)
            (Fmt.str "case %d shrunk to <= 8 nodes (got %d)" f.Check.f_case
               f.Check.f_nodes)
            true (f.Check.f_nodes <= 8))
        r.Check.r_failures)

(* Reproducer files are lossless: a generated loop survives
   to_string/of_string with identical graph, streams and metadata. *)
let test_repro_roundtrip () =
  let rng = Hcrf_workload.Rng.create ~seed:97 in
  let loop = Hcrf_workload.Genloop.generate ~rng ~index:4 () in
  let r =
    {
      Repro.seed = 97;
      case = 4;
      params = "small";
      config = "2C32S32";
      n_fus = 8;
      n_mem_ports = 4;
      lats = (Check.config_of_name "2C32S32").Hcrf_machine.Config.lats;
      options = "nobt";
      verdict = Ev.Exec_mismatch;
      detail = "synthetic round-trip fixture";
      loop;
    }
  in
  match Repro.of_string (Repro.to_string r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    Alcotest.(check bool) "graph identical" true
      (Ddg.to_repr loop.Loop.ddg = Ddg.to_repr r'.Repro.loop.Loop.ddg);
    Alcotest.(check bool) "streams identical" true
      (loop.Loop.streams = r'.Repro.loop.Loop.streams);
    Alcotest.(check int) "trip count" loop.Loop.trip_count
      r'.Repro.loop.Loop.trip_count;
    Alcotest.(check int) "entries" loop.Loop.entries r'.Repro.loop.Loop.entries;
    Alcotest.(check bool) "metadata identical" true
      ({ r with loop } = { r' with Repro.loop })

(* A malformed reproducer must be rejected, not half-parsed. *)
let test_repro_strict_parser () =
  (match Repro.of_string "hcrf-repro 1\nbogus 42\n" with
  | Ok _ -> Alcotest.fail "unknown keyword accepted"
  | Error _ -> ());
  match Repro.of_string "hcrf-repro 99\nseed 1\n" with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error _ -> ()

(* The committed corpus holds shrunk witnesses of the Lax_resources
   fault.  With the fault armed, replaying must reproduce each file's
   recorded verdict, with and without a shared schedule cache (the
   cache can never mask a divergence); with the fault off, the same
   loops schedule cleanly end to end. *)
let test_corpus_replay () =
  (* cwd is _build/default/test under `dune runtest` (the glob_files dep
     materialises the corpus there) but the workspace root under
     `dune exec test/test_main.exe` *)
  let dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus" in
  let replay ?cache () =
    match Check.replay_corpus ?cache dir with
    | Error e -> Alcotest.fail e
    | Ok results -> results
  in
  Fun.protect
    ~finally:(fun () -> Schedule.fault := None)
    (fun () ->
      Schedule.fault := Some Schedule.Lax_resources;
      let cold = replay () in
      Alcotest.(check bool) "corpus non-empty" true (cold <> []);
      List.iter
        (fun (path, (r : Repro.t), (v : Check.verdict)) ->
          Alcotest.(check string)
            (Filename.basename path ^ ": recorded verdict reproduced")
            (vname r.Repro.verdict) (vname v.Check.kind))
        cold;
      let cached = replay ~cache:(Cache.create ()) () in
      List.iter2
        (fun (path, _, (v : Check.verdict)) (_, _, (v' : Check.verdict)) ->
          Alcotest.(check string)
            (Filename.basename path ^ ": cache-independent verdict")
            (vname v.Check.kind) (vname v'.Check.kind))
        cold cached);
  List.iter
    (fun (path, _, (v : Check.verdict)) ->
      Alcotest.(check string)
        (Filename.basename path ^ ": passes without the fault")
        "pass" (vname v.Check.kind))
    (replay ())

(* Regression for the bug the metamorphic oracle found: two isomorphic
   loops share a WL fingerprint, so a renumbered twin used to replay a
   cached schedule bound to the other loop's node ids.  The cache now
   stores the id-sensitive graph digest and treats a mismatch as a miss;
   a reorder-only twin (same ids) must still hit. *)
let test_cache_id_digest_guard () =
  let g = Ddg.create ~name:"chain" () in
  let ld = Ddg.add_node g Op.Load in
  let mul = Ddg.add_node g Op.Fmul in
  let st = Ddg.add_node g Op.Store in
  Ddg.add_edge g ~dep:Dep.True ld mul;
  Ddg.add_edge g ~dep:Dep.True mul st;
  let loop =
    Loop.make ~trip_count:64 ~entries:1
      ~streams:
        [
          { Loop.op = ld; base = 0; stride = 8 };
          { Loop.op = st; base = (1 lsl 20) + 1056; stride = 8 };
        ]
      g
  in
  let config = Check.config_of_name "S64" in
  let cache = Cache.create () in
  let ctx = Runner.Ctx.make ~cache () in
  let run l =
    match Runner.run_loop ~ctx config l with
    | Some r -> r
    | None -> Alcotest.fail "chain loop did not schedule"
  in
  ignore (run loop);
  let s1 = Cache.stats cache in
  Alcotest.(check int) "cold run stores" 1 s1.Cache.stores;
  let reorder = Morph.rewrite_loop ~m:Fun.id loop in
  Alcotest.(check bool) "reorder keeps the id digest" true
    (Entry.ddg_digest reorder.Loop.ddg = Entry.ddg_digest loop.Loop.ddg);
  ignore (run reorder);
  let s2 = Cache.stats cache in
  Alcotest.(check int) "reorder twin hits" (s1.Cache.hits + 1) s2.Cache.hits;
  Alcotest.(check int) "reorder twin does not store" s1.Cache.stores
    s2.Cache.stores;
  let renum =
    Morph.rewrite_loop ~m:(Morph.reversing_bijection loop.Loop.ddg) loop
  in
  Alcotest.(check bool) "renumbering changes the id digest" true
    (Entry.ddg_digest renum.Loop.ddg <> Entry.ddg_digest loop.Loop.ddg);
  ignore (run renum);
  let s3 = Cache.stats cache in
  Alcotest.(check int) "renumbered twin misses" (s2.Cache.misses + 1)
    s3.Cache.misses;
  Alcotest.(check int) "renumbered twin recomputes and overwrites"
    (s2.Cache.stores + 1) s3.Cache.stores

(* The oracle itself on a healthy loop. *)
let test_oracle_pass () =
  let rng = Hcrf_workload.Rng.create ~seed:21 in
  let loop = Hcrf_workload.Genloop.generate ~rng ~index:1 () in
  let v =
    Check.oracle ~opts:Hcrf_sched.Engine.default_options
      (Check.config_of_name "4C32") loop
  in
  Alcotest.(check string) "healthy loop passes" "pass" (vname v.Check.kind)

let tests =
  [
    ("check: oracle pass", `Quick, test_oracle_pass);
    ("check: campaign deterministic across jobs", `Slow,
     test_campaign_deterministic);
    ("check: fault injection caught and shrunk", `Slow,
     test_fault_injection_caught);
    ("check: repro roundtrip", `Quick, test_repro_roundtrip);
    ("check: repro strict parser", `Quick, test_repro_strict_parser);
    ("check: corpus replay", `Slow, test_corpus_replay);
    ("check: cache id-digest guard", `Quick, test_cache_id_digest_guard);
  ]

(* Functional verification: execute the software pipeline produced by
   MIRS_HC cycle by cycle — through the allocated rotating registers —
   and compare every value and the final memory against a sequential
   execution of the original loop. *)

open Hcrf_ir
open Hcrf_pipesim

let check = Alcotest.(check bool)

let run_check ?(iterations = 12) config_name kernel_name =
  let config = Hcrf_model.Presets.published config_name in
  let loop = Hcrf_workload.Kernels.find kernel_name in
  match Hcrf_core.Mirs_hc.schedule config loop.Loop.ddg with
  | Error _ ->
    Alcotest.fail (Fmt.str "%s on %s: no schedule" kernel_name config_name)
  | Ok o -> (
    match Pipe_exec.check loop o ~iterations () with
    | Ok r -> r
    | Error e ->
      Alcotest.fail
        (Fmt.str "%s on %s: %a" kernel_name config_name Pipe_exec.pp_error e))

let test_all_kernels_on config_name () =
  List.iter
    (fun (name, _) -> ignore (run_check config_name name))
    Hcrf_workload.Kernels.all

let test_register_traffic () =
  (* the pipeline must actually exercise physical registers, not just
     the bypass *)
  let r = run_check "S128" "fir5" in
  check "registers are read" true (r.Pipe_exec.register_reads > 0)

let test_reference_deterministic () =
  let loop = Hcrf_workload.Kernels.find "cmul" in
  let a = Ref_exec.run loop ~iterations:8 in
  let b = Ref_exec.run loop ~iterations:8 in
  Hashtbl.iter
    (fun k v ->
      check "same value" true (Hashtbl.find b.Ref_exec.values k = v))
    a.Ref_exec.values

let test_reference_memory_writes () =
  (* daxpy stores to the same array it loads: the final memory content
     of y must differ from its initial content *)
  let loop = Hcrf_workload.Kernels.find "daxpy" in
  let r = Ref_exec.run loop ~iterations:4 in
  check "stores recorded" true (Hashtbl.length r.Ref_exec.memory = 4);
  Hashtbl.iter
    (fun addr v ->
      check "store changed memory" true (v <> Semantics.memory_init addr))
    r.Ref_exec.memory

let test_detects_wrong_schedule () =
  (* sanity of the checker itself: a schedule with a manually corrupted
     placement must be rejected *)
  let config = Hcrf_model.Presets.published "S128" in
  let loop = Hcrf_workload.Kernels.find "stencil3" in
  match Hcrf_core.Mirs_hc.schedule config loop.Loop.ddg with
  | Error _ -> Alcotest.fail "no schedule"
  | Ok o ->
    (* move one compute node earlier than its producer allows *)
    let victim =
      List.find
        (fun v ->
          Op.is_compute (Ddg.kind o.Hcrf_sched.Engine.graph v)
          && Hcrf_sched.Schedule.cycle_of o.Hcrf_sched.Engine.schedule v > 0)
        (Ddg.nodes o.Hcrf_sched.Engine.graph)
    in
    let loc = Hcrf_sched.Schedule.loc_of o.Hcrf_sched.Engine.schedule victim in
    Hcrf_sched.Schedule.unplace o.Hcrf_sched.Engine.schedule victim;
    Hcrf_sched.Schedule.place o.Hcrf_sched.Engine.schedule
      o.Hcrf_sched.Engine.graph victim ~cycle:0 ~loc;
    (match Pipe_exec.check loop o ~iterations:6 () with
    | Error _ -> () (* good: corruption detected *)
    | Ok _ -> Alcotest.fail "corrupted schedule passed the checker")

let prop_suite_functional =
  let configs = [| "S64"; "S32"; "2C32"; "4C32"; "1C32S64"; "4C16S16" |] in
  let loops = lazy (Hcrf_workload.Suite.generate ~n:30 ()) in
  QCheck.Test.make ~name:"synthetic loops execute correctly when piped"
    ~count:30
    QCheck.(int_range 0 29)
    (fun i ->
      let l = List.nth (Lazy.force loops) i in
      let config =
        Hcrf_model.Presets.published configs.(i mod Array.length configs)
      in
      match Hcrf_eval.Runner.run_loop config l with
      | None -> false
      | Some r -> (
        match
          Pipe_exec.check l r.Hcrf_eval.Runner.outcome ~iterations:10 ()
        with
        | Ok _ -> true
        | Error e ->
          Fmt.epr "functional mismatch on %s (%s): %a@." (Loop.name l)
            config.Hcrf_machine.Config.name Pipe_exec.pp_error e;
          false))

let tests =
  [
    ("pipe: kernels on S128", `Quick, test_all_kernels_on "S128");
    ("pipe: kernels on S32", `Quick, test_all_kernels_on "S32");
    ("pipe: kernels on 4C32", `Quick, test_all_kernels_on "4C32");
    ("pipe: kernels on 2C32S32", `Quick, test_all_kernels_on "2C32S32");
    ("pipe: kernels on 8C16S16", `Slow, test_all_kernels_on "8C16S16");
    ("pipe: register traffic", `Quick, test_register_traffic);
    ("pipe: reference deterministic", `Quick, test_reference_deterministic);
    ("pipe: reference memory", `Quick, test_reference_memory_writes);
    ("pipe: detects corruption", `Quick, test_detects_wrong_schedule);
    QCheck_alcotest.to_alcotest prop_suite_functional;
  ]

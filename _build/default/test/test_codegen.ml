(* Tests for the VLIW code emitter. *)

open Hcrf_ir

let check = Alcotest.(check bool)

let emit_kernel config_name kernel_name =
  let config = Hcrf_model.Presets.published config_name in
  let loop = Hcrf_workload.Kernels.find kernel_name in
  match Hcrf_core.Mirs_hc.schedule config loop.Loop.ddg with
  | Error _ -> Alcotest.fail "no schedule"
  | Ok o -> (
    match Hcrf_core.Codegen.of_outcome config o with
    | Error _ -> Alcotest.fail "allocation failed"
    | Ok code -> (o, code))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_emit_daxpy () =
  let o, code = emit_kernel "S128" "daxpy" in
  check "mentions the config" true (contains code.Hcrf_core.Codegen.kernel "S128");
  check "has every op kind" true
    (List.for_all
       (fun k -> contains code.Hcrf_core.Codegen.kernel (Op.kind_name k))
       [ Op.Load; Op.Fmul; Op.Fadd; Op.Store ]);
  Alcotest.(check int) "ii recorded" o.Hcrf_sched.Engine.ii
    code.Hcrf_core.Codegen.ii

let test_emit_hierarchical () =
  let _, code = emit_kernel "4C16S16" "fir5" in
  let k = code.Hcrf_core.Codegen.kernel in
  check "loadr emitted" true (contains k "loadr");
  check "cluster placements shown" true (contains k "[c");
  check "rotating banks reported" true (contains k "rotating registers")

let test_kernel_has_ii_rows () =
  let o, code = emit_kernel "S32" "tree8" in
  (* one "<slot>:" row per modulo slot *)
  let rows = ref 0 in
  String.split_on_char '\n' code.Hcrf_core.Codegen.kernel
  |> List.iter (fun line ->
         if String.length line > 2 && String.get line 2 = ':' then incr rows);
  Alcotest.(check int) "rows = II" o.Hcrf_sched.Engine.ii !rows

let tests =
  [
    ("codegen: daxpy", `Quick, test_emit_daxpy);
    ("codegen: hierarchical", `Quick, test_emit_hierarchical);
    ("codegen: one row per slot", `Quick, test_kernel_has_ii_rows);
  ]

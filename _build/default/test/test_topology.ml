(* Unit tests for the operational semantics of each RF organization,
   and negative tests proving the validator catches specific
   corruptions. *)

open Hcrf_ir
open Hcrf_machine
open Hcrf_sched

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mono = lazy (Hcrf_model.Presets.published "S128")
let flat = lazy (Hcrf_model.Presets.published "4C32")
let hier = lazy (Hcrf_model.Presets.published "4C16S16")

(* ------------------------------------------------------------------ *)
(* exec_locs *)

let test_exec_locs () =
  check_int "monolithic: one location" 1
    (List.length (Topology.exec_locs (Lazy.force mono) Op.Fadd));
  check_int "clustered: compute anywhere" 4
    (List.length (Topology.exec_locs (Lazy.force flat) Op.Fadd));
  check_int "clustered: loads in clusters too" 4
    (List.length (Topology.exec_locs (Lazy.force flat) Op.Load));
  check "clustered: no LoadR" true
    (Topology.exec_locs (Lazy.force flat) Op.Load_r = []);
  check "hierarchical: loads are global" true
    (Topology.exec_locs (Lazy.force hier) Op.Load = [ Topology.Global ]);
  check_int "hierarchical: LoadR in clusters" 4
    (List.length (Topology.exec_locs (Lazy.force hier) Op.Load_r))

(* ------------------------------------------------------------------ *)
(* banks *)

let test_def_read_banks () =
  let h = Lazy.force hier in
  check "load defines into shared" true
    (Topology.def_bank h Op.Load Topology.Global = Some Topology.Shared);
  check "storer defines into shared" true
    (Topology.def_bank h Op.Store_r (Topology.Cluster 2)
    = Some Topology.Shared);
  check "loadr defines locally" true
    (Topology.def_bank h Op.Load_r (Topology.Cluster 2)
    = Some (Topology.Local 2));
  check "store defines nothing" true
    (Topology.def_bank h Op.Store Topology.Global = None);
  check "store reads shared" true
    (Topology.equal_bank
       (Topology.read_bank h Op.Store Topology.Global)
       Topology.Shared);
  check "loadr reads shared" true
    (Topology.equal_bank
       (Topology.read_bank h Op.Load_r (Topology.Cluster 1))
       Topology.Shared);
  check "compute reads its cluster" true
    (Topology.equal_bank
       (Topology.read_bank h Op.Fmul (Topology.Cluster 3))
       (Topology.Local 3));
  (* monolithic: everything in Local 0 *)
  let m = Lazy.force mono in
  check "monolithic load defines Local 0" true
    (Topology.def_bank m Op.Load (Topology.Cluster 0)
    = Some (Topology.Local 0))

(* ------------------------------------------------------------------ *)
(* comm paths *)

let test_comm_paths () =
  let h = Lazy.force hier in
  check_int "local->shared is one StoreR" 1
    (List.length
       (Topology.comm_path h ~src_bank:(Topology.Local 0)
          ~dst_bank:Topology.Shared));
  check_int "shared->local is one LoadR" 1
    (List.length
       (Topology.comm_path h ~src_bank:Topology.Shared
          ~dst_bank:(Topology.Local 2)));
  check_int "local->local is StoreR + LoadR" 2
    (List.length
       (Topology.comm_path h ~src_bank:(Topology.Local 0)
          ~dst_bank:(Topology.Local 1)));
  check "same bank: nothing" true
    (Topology.comm_path h ~src_bank:(Topology.Local 1)
       ~dst_bank:(Topology.Local 1)
    = []);
  let f = Lazy.force flat in
  (match
     Topology.comm_path f ~src_bank:(Topology.Local 0)
       ~dst_bank:(Topology.Local 3)
   with
  | [ (Op.Move, Topology.Cluster 3) ] -> ()
  | _ -> Alcotest.fail "clustered cross-bank should be one Move")

let test_units () =
  let h = Lazy.force hier in
  check "1 FU per cluster at 8/8... (4 clusters of 8 FUs -> 2)" true
    (Topology.units h (Topology.Fu 0) = Cap.Finite 2);
  check "global memory pool" true
    (Topology.units h (Topology.Mem 0) = Cap.Finite 4);
  check "lp ports" true (Topology.units h (Topology.Lp 1) = Cap.Finite 2);
  check "sp ports" true (Topology.units h (Topology.Sp 1) = Cap.Finite 1);
  let f = Lazy.force flat in
  check "clustered mem ports distributed" true
    (Topology.units f (Topology.Mem 2) = Cap.Finite 1)

let test_move_uses_source_port () =
  let f = Lazy.force flat in
  let uses =
    Topology.uses f Op.Move (Topology.Cluster 2)
      ~src:(Some (Topology.Local 0))
  in
  check "occupies source sp" true (List.mem_assoc (Topology.Sp 0) uses);
  check "occupies dest lp" true (List.mem_assoc (Topology.Lp 2) uses);
  check "occupies a bus" true (List.mem_assoc Topology.Bus uses)

let test_non_pipelined_occupancy () =
  let m = Lazy.force mono in
  match Topology.uses m Op.Fdiv (Topology.Cluster 0) ~src:None with
  | [ (Topology.Fu 0, dur) ] ->
    check_int "div occupies its FU for its whole latency"
      (Config.op_latency m Op.Fdiv) dur
  | _ -> Alcotest.fail "unexpected reservation shape"

(* ------------------------------------------------------------------ *)
(* the validator catches specific corruptions *)

let scheduled_kernel () =
  let config = Lazy.force hier in
  let loop = Hcrf_workload.Kernels.find "stencil3" in
  match Hcrf_core.Mirs_hc.schedule config loop.Loop.ddg with
  | Ok o -> o
  | Error _ -> Alcotest.fail "no schedule"

let has_issue p issues = List.exists p issues

let test_validate_catches_unscheduled () =
  let o = scheduled_kernel () in
  let v = List.hd (Ddg.nodes o.Hcrf_sched.Engine.graph) in
  Schedule.unplace o.Hcrf_sched.Engine.schedule v;
  check "unscheduled reported" true
    (has_issue
       (function Validate.Unscheduled x -> x = v | _ -> false)
       (Hcrf_core.Mirs_hc.validate o))

let test_validate_catches_dependence () =
  let o = scheduled_kernel () in
  let g = o.Hcrf_sched.Engine.graph in
  let s = o.Hcrf_sched.Engine.schedule in
  (* move a consumer of a loaded value to cycle 0 *)
  let victim =
    List.find
      (fun v ->
        Op.is_compute (Ddg.kind g v)
        && Ddg.operands g v <> []
        && Schedule.cycle_of s v > 0)
      (Ddg.nodes g)
  in
  let loc = Schedule.loc_of s victim in
  Schedule.unplace s victim;
  Schedule.place s g victim ~cycle:0 ~loc;
  check "dependence violation reported" true
    (has_issue
       (function Validate.Dependence_violated _ -> true | _ -> false)
       (Hcrf_core.Mirs_hc.validate o))

let test_validate_catches_bank_mismatch () =
  let o = scheduled_kernel () in
  let g = o.Hcrf_sched.Engine.graph in
  let s = o.Hcrf_sched.Engine.schedule in
  (* move a compute op with a locally-defined operand to another
     cluster without inserting communication *)
  let victim =
    List.find
      (fun v ->
        Op.is_compute (Ddg.kind g v)
        && List.exists
             (fun (e : Ddg.edge) ->
               match Schedule.def_bank s g e.src with
               | Some (Topology.Local _) -> true
               | _ -> false)
             (Ddg.operands g v))
      (Ddg.nodes g)
  in
  let other =
    match Schedule.loc_of s victim with
    | Topology.Cluster c -> Topology.Cluster ((c + 1) mod 4)
    | Topology.Global -> Topology.Cluster 0
  in
  Schedule.unplace s victim;
  Schedule.place s g victim ~cycle:200 ~loc:other;
  check "bank mismatch reported" true
    (has_issue
       (function Validate.Bank_mismatch _ -> true | _ -> false)
       (Hcrf_core.Mirs_hc.validate o))

let tests =
  [
    ("topology: exec locations", `Quick, test_exec_locs);
    ("topology: def/read banks", `Quick, test_def_read_banks);
    ("topology: comm paths", `Quick, test_comm_paths);
    ("topology: units", `Quick, test_units);
    ("topology: move ports", `Quick, test_move_uses_source_port);
    ("topology: non-pipelined", `Quick, test_non_pipelined_occupancy);
    ("validate: unscheduled", `Quick, test_validate_catches_unscheduled);
    ("validate: dependence", `Quick, test_validate_catches_dependence);
    ("validate: bank mismatch", `Quick, test_validate_catches_bank_mismatch);
  ]

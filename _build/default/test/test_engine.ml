(* End-to-end tests of the MIRS_HC engine: every kernel on every RF
   organization must produce a schedule that the independent checker
   accepts, plus anchored IIs, spill behaviour, invariant handling,
   determinism, and the non-iterative baseline. *)

open Hcrf_ir
open Hcrf_machine
open Hcrf_sched

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let published = Hcrf_model.Presets.published

let schedule_ok ?opts config (l : Loop.t) =
  match Hcrf_core.Mirs_hc.schedule ?opts config l.Loop.ddg with
  | Error (`No_schedule ii) ->
    Alcotest.fail
      (Fmt.str "%s on %s: no schedule up to II=%d" (Ddg.name l.Loop.ddg)
         config.Config.name ii)
  | Ok o ->
    let issues = Hcrf_core.Mirs_hc.validate o in
    if issues <> [] then
      Alcotest.fail
        (Fmt.str "%s on %s: %a" (Ddg.name l.Loop.ddg) config.Config.name
           Fmt.(list ~sep:comma Validate.pp_issue)
           issues);
    o

(* every kernel on every published configuration *)
let test_kernels_on_config cname () =
  let config = published cname in
  List.iter
    (fun (_, mk) -> ignore (schedule_ok config (mk ())))
    Hcrf_workload.Kernels.all

let test_anchored_iis () =
  (* recurrence-bound kernels reach exactly their RecMII on the
     monolithic baseline *)
  let config = published "S128" in
  let ii name =
    (schedule_ok config (Hcrf_workload.Kernels.find name)).Engine.ii
  in
  check_int "dot" 4 (ii "dot");
  check_int "tridiag" 8 (ii "tridiag");
  check_int "horner" 8 (ii "horner");
  check_int "norm2" 4 (ii "norm2");
  check_int "prefix_sum" 4 (ii "prefix_sum");
  check_int "daxpy" 1 (ii "daxpy")

let test_ii_at_least_mii () =
  let config = published "4C32" in
  List.iter
    (fun (_, mk) ->
      let o = schedule_ok config (mk ()) in
      check "ii >= mii" true (o.Engine.ii >= o.Engine.mii))
    Hcrf_workload.Kernels.all

let test_deterministic () =
  let config = published "4C16S16" in
  let l = Hcrf_workload.Kernels.find "fir5" in
  let a = schedule_ok config l and b = schedule_ok config l in
  check_int "same ii" a.Engine.ii b.Engine.ii;
  check_int "same sc" a.Engine.sc b.Engine.sc;
  check_int "same node count" (Ddg.num_nodes a.Engine.graph)
    (Ddg.num_nodes b.Engine.graph)

let test_hierarchy_inserts_copies () =
  (* on a hierarchical RF, a load feeding a compute op needs a LoadR and
     a computed store operand needs a StoreR *)
  let config = published "1C32S64" in
  let o = schedule_ok config (Hcrf_workload.Kernels.find "daxpy") in
  let count k =
    Ddg.count_kind o.Engine.graph (Op.equal_kind k)
  in
  check "loadr inserted" true (count Op.Load_r >= 2);
  check "storer inserted" true (count Op.Store_r >= 1);
  check "no moves in hierarchical" true (count Op.Move = 0)

let test_monolithic_inserts_nothing () =
  let config = published "S128" in
  let l = Hcrf_workload.Kernels.find "saxpy3" in
  let o = schedule_ok config l in
  check_int "no inserted ops" (Ddg.num_nodes l.Loop.ddg)
    (Ddg.num_nodes o.Engine.graph)

let test_clustered_uses_moves () =
  (* tree8 has more parallelism than one cluster of 4C32 can hold, so
     cross-cluster values must move *)
  let config = published "4C32" in
  let o = schedule_ok config (Hcrf_workload.Kernels.find "tree8") in
  let moves = Ddg.count_kind o.Engine.graph (Op.equal_kind Op.Move) in
  let used_clusters =
    List.sort_uniq compare
      (List.filter_map
         (fun v ->
           match Schedule.loc_of o.Engine.schedule v with
           | Topology.Cluster c -> Some c
           | Topology.Global -> None)
         (Schedule.scheduled_nodes o.Engine.schedule))
  in
  check "several clusters used" true (List.length used_clusters >= 2);
  check "moves present iff cross-cluster flow" true (moves >= 1)

let test_spill_on_tiny_bank () =
  (* six loop-carried accumulators stay live whatever the II is, so a
     4-register monolithic RF cannot hold them without spilling *)
  let g = Ddg.create ~name:"pressure" () in
  let l = Ddg.add_node g Op.Load in
  for _ = 1 to 3 do
    (* an accumulator whose value is also stored four iterations later:
       its lifetime spans ~4 II whatever the II, so the register demand
       cannot be escaped by slowing the loop down *)
    let a = Ddg.add_node g Op.Fadd in
    Ddg.add_edge g ~dep:Dep.True l a;
    Ddg.add_edge g ~distance:1 ~dep:Dep.True a a;
    let st = Ddg.add_node g Op.Store in
    Ddg.add_edge g ~distance:4 ~dep:Dep.True a st
  done;
  let loop = Loop.make g in
  let tiny =
    Config.make ~lats:Latencies.baseline ~cycle_ns:1.0 (Rf.monolithic 6)
  in
  let o = schedule_ok tiny loop in
  let spills = Ddg.count_kind o.Engine.graph (fun k -> Op.is_spill k) in
  check "spill code inserted" true (spills > 0);
  check "memory traffic grew" true
    (Ddg.num_memory_ops o.Engine.graph > Loop.memory_refs_per_iter loop)

let test_larger_bank_no_spill () =
  let big = Config.make (Rf.monolithic 128) in
  let o = schedule_ok big (Hcrf_workload.Kernels.find "tree8") in
  check_int "no spill needed at 128 regs" 0
    (Ddg.count_kind o.Engine.graph Op.is_spill)

let test_invariant_demotion () =
  (* fir5 has 5 invariants; on a 4-register bank some must be demoted *)
  let tiny = Config.make (Rf.monolithic 4) in
  let l = Hcrf_workload.Kernels.find "fir5" in
  match Hcrf_core.Mirs_hc.schedule tiny l.Loop.ddg with
  | Error _ -> () (* acceptable: may genuinely not fit *)
  | Ok o ->
    let issues = Hcrf_core.Mirs_hc.validate o in
    check "valid if scheduled" true (issues = []);
    check "invariant spill loads present" true
      (Ddg.count_kind o.Engine.graph (Op.equal_kind Op.Spill_load) > 0)

let test_stats_populated () =
  let config = published "4C16S16" in
  let o = schedule_ok config (Hcrf_workload.Kernels.find "cmul") in
  check "attempts counted" true (o.Engine.stats.attempts > 0);
  check "comm ops counted" true (o.Engine.stats.comm_inserted > 0);
  check "seconds measured" true (o.Engine.seconds >= 0.)

let test_budget_zero_fails_fast () =
  (* with no budget the engine cannot schedule anything non-trivial, but
     it must terminate and report failure rather than hang *)
  let config = published "S128" in
  let opts = { Engine.default_options with budget_ratio = 0; max_ii = Some 3 } in
  match
    Engine.schedule ~opts config (Hcrf_workload.Kernels.find "fir5").Loop.ddg
  with
  | Error (`No_schedule _) -> ()
  | Ok _ -> Alcotest.fail "expected failure with zero budget"

let test_max_ii_respected () =
  let config = published "S128" in
  let opts = { Engine.default_options with max_ii = Some 2 } in
  (* tridiag needs II=8; capping at 2 must fail *)
  match
    Engine.schedule ~opts config
      (Hcrf_workload.Kernels.find "tridiag").Loop.ddg
  with
  | Error (`No_schedule _) -> ()
  | Ok _ -> Alcotest.fail "expected failure with max_ii=2"

let test_noniter_never_better_on_suite () =
  (* Table 4's headline: the iterative scheduler wins overall *)
  let config = published "1C32S64" in
  let loops = Hcrf_workload.Suite.generate ~n:30 () in
  let sum_ni = ref 0 and sum_hc = ref 0 in
  List.iter
    (fun (l : Loop.t) ->
      match
        ( Hcrf_core.Noniter.schedule config l.Loop.ddg,
          Hcrf_core.Mirs_hc.schedule config l.Loop.ddg )
      with
      | Ok ni, Ok hc ->
        sum_ni := !sum_ni + ni.Engine.ii;
        sum_hc := !sum_hc + hc.Engine.ii
      | _ -> ())
    loops;
  check
    (Fmt.str "sum II: mirs_hc %d <= noniter %d" !sum_hc !sum_ni)
    true (!sum_hc <= !sum_ni)

let test_prefetch_pressure_on_shared () =
  (* binding prefetching lengthens load lifetimes; in a hierarchical RF
     that pressure lands on the shared bank (the paper's argument for
     the organization) *)
  let config = published "1C32S64" in
  let l = Hcrf_workload.Kernels.find "saxpy3" in
  let miss = Config.miss_cycles config in
  let opts =
    { Engine.default_options with
      load_override =
        (fun v ->
          (* the engine also queries inserted nodes: only original loads
             are prefetched *)
          if
            Ddg.mem l.Loop.ddg v
            && Op.equal_kind (Ddg.kind l.Loop.ddg v) Op.Load
          then Some miss
          else None);
    }
  in
  let o = schedule_ok ~opts config l in
  (* every consumer of a prefetched load is scheduled at least the miss
     latency later: the miss is hidden by the software pipeline *)
  let g = o.Engine.graph in
  Ddg.iter_nodes g (fun n ->
      if Op.equal_kind n.kind Op.Load then
        List.iter
          (fun (e : Ddg.edge) ->
            let gap =
              Schedule.cycle_of o.Engine.schedule e.dst
              + (o.Engine.ii * e.distance)
              - Schedule.cycle_of o.Engine.schedule n.id
            in
            check "consumer waits out the miss" true (gap >= miss))
          (Ddg.consumers g n.id))

(* property: random suite loops × a rotating set of configs all validate *)
let prop_suite_valid =
  let configs =
    [| "S64"; "S32"; "2C32"; "4C32"; "1C32S64"; "2C32S32"; "4C16S16";
       "8C16S16" |]
  in
  let loops = lazy (Hcrf_workload.Suite.generate ~n:48 ()) in
  QCheck.Test.make ~name:"suite loops validate on all organizations"
    ~count:48
    QCheck.(int_range 0 47)
    (fun i ->
      let l = List.nth (Lazy.force loops) i in
      let config = published configs.(i mod Array.length configs) in
      match Hcrf_eval.Runner.run_loop config l with
      | None -> false
      | Some r ->
        Validate.is_valid
          ~invariant_residents:r.Hcrf_eval.Runner.outcome.Engine.invariant_residents
          r.Hcrf_eval.Runner.outcome.Engine.schedule
          r.Hcrf_eval.Runner.outcome.Engine.graph)

let tests =
  [
    ("engine: kernels on S128", `Quick, test_kernels_on_config "S128");
    ("engine: kernels on S32", `Quick, test_kernels_on_config "S32");
    ("engine: kernels on 2C64", `Quick, test_kernels_on_config "2C64");
    ("engine: kernels on 4C32", `Quick, test_kernels_on_config "4C32");
    ("engine: kernels on 1C64S32", `Quick, test_kernels_on_config "1C64S32");
    ("engine: kernels on 2C32S32", `Quick, test_kernels_on_config "2C32S32");
    ("engine: kernels on 4C16S16", `Slow, test_kernels_on_config "4C16S16");
    ("engine: kernels on 8C16S16", `Slow, test_kernels_on_config "8C16S16");
    ("engine: anchored IIs", `Quick, test_anchored_iis);
    ("engine: ii >= mii", `Quick, test_ii_at_least_mii);
    ("engine: deterministic", `Quick, test_deterministic);
    ("engine: hierarchy copies", `Quick, test_hierarchy_inserts_copies);
    ("engine: monolithic clean", `Quick, test_monolithic_inserts_nothing);
    ("engine: clustered moves", `Quick, test_clustered_uses_moves);
    ("engine: spill on tiny bank", `Quick, test_spill_on_tiny_bank);
    ("engine: no spill at 128", `Quick, test_larger_bank_no_spill);
    ("engine: invariant demotion", `Quick, test_invariant_demotion);
    ("engine: stats", `Quick, test_stats_populated);
    ("engine: zero budget", `Quick, test_budget_zero_fails_fast);
    ("engine: max_ii", `Quick, test_max_ii_respected);
    ("engine: vs non-iterative", `Slow, test_noniter_never_better_on_suite);
    ("engine: prefetch pressure", `Quick, test_prefetch_pressure_on_shared);
    QCheck_alcotest.to_alcotest ~long:true prop_suite_valid;
  ]

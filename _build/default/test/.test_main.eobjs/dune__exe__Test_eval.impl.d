test/test_eval.ml: Alcotest Classify Engine Experiments Fmt Fun Hcrf_core Hcrf_eval Hcrf_ir Hcrf_model Hcrf_sched Hcrf_workload Lazy List Metrics Mii Par Runner

test/test_codegen.ml: Alcotest Hcrf_core Hcrf_ir Hcrf_model Hcrf_sched Hcrf_workload List Loop Op String

test/test_check.ml: Alcotest Check Ddg Dep Filename Fmt Fun Hcrf_cache Hcrf_check Hcrf_eval Hcrf_ir Hcrf_machine Hcrf_obs Hcrf_sched Hcrf_workload List Loop Morph Op Repro Sys

test/test_workload.ml: Alcotest Ddg Fmt Hcrf_ir Hcrf_workload List Loop Op Scc

test/test_model.ml: Alcotest Cacti Cap Config Fmt Hcrf_eval Hcrf_machine Hcrf_model Hw_table Latencies List Ports Presets Rf Timing

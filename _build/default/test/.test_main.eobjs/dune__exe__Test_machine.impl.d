test/test_machine.ml: Alcotest Cap Config Hcrf_ir Hcrf_machine Latencies List QCheck QCheck_alcotest Rf

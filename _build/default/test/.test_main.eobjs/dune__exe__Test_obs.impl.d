test/test_obs.ml: Alcotest Counters Env Event Filename Fmt Fun Hcrf_cache Hcrf_eval Hcrf_model Hcrf_obs Hcrf_workload Jsonl Lazy List Marshal Metrics Option Par Result Runner String Sys Tracer Unix

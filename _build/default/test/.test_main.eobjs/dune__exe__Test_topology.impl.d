test/test_topology.ml: Alcotest Cap Config Ddg Hcrf_core Hcrf_ir Hcrf_machine Hcrf_model Hcrf_sched Hcrf_workload Lazy List Loop Op Schedule Topology Validate

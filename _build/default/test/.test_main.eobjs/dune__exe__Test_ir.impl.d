test/test_ir.ml: Alcotest Ddg Dep Fmt Fun Hcrf_ir Hcrf_workload Lazy List Loop Op QCheck QCheck_alcotest Scc

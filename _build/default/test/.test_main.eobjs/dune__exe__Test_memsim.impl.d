test/test_memsim.ml: Alcotest Cache Hcrf_ir Hcrf_machine Hcrf_memsim Hcrf_model Hcrf_workload List Prefetch Sim

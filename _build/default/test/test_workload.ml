(* Tests for the workload: hand-written kernels and the synthetic
   suite (determinism, structural invariants, calibration ranges). *)

open Hcrf_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_kernels_well_formed () =
  List.iter
    (fun (name, mk) ->
      let l = mk () in
      check (name ^ " well-formed") true (Ddg.validate l.Loop.ddg);
      check (name ^ " non-empty") true (Ddg.num_nodes l.Loop.ddg > 0))
    Hcrf_workload.Kernels.all

let test_kernels_streams_cover_memory_ops () =
  List.iter
    (fun (name, mk) ->
      let l = mk () in
      Ddg.iter_nodes l.Loop.ddg (fun n ->
          if Op.is_memory n.kind then
            check
              (Fmt.str "%s: stream for node %d" name n.id)
              true
              (Loop.stream_for l n.id <> None)))
    Hcrf_workload.Kernels.all

let test_kernels_find () =
  check "find daxpy" true (Ddg.num_nodes (Hcrf_workload.Kernels.find "daxpy").Loop.ddg = 5);
  Alcotest.check_raises "unknown kernel"
    (Invalid_argument "Kernels.find: unknown kernel \"nope\"") (fun () ->
      ignore (Hcrf_workload.Kernels.find "nope"))

let test_recurrence_kernels () =
  List.iter
    (fun name ->
      check (name ^ " has recurrence") true
        (Scc.has_recurrence (Hcrf_workload.Kernels.find name).Loop.ddg))
    [ "dot"; "tridiag"; "horner"; "norm2"; "prefix_sum" ];
  List.iter
    (fun name ->
      check (name ^ " is acyclic") false
        (Scc.has_recurrence (Hcrf_workload.Kernels.find name).Loop.ddg))
    [ "daxpy"; "fir5"; "cmul"; "tree8" ]

let test_rng_deterministic () =
  let a = Hcrf_workload.Rng.create ~seed:42 in
  let b = Hcrf_workload.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_int "same stream" (Hcrf_workload.Rng.int a 1000)
      (Hcrf_workload.Rng.int b 1000)
  done

let test_rng_ranges () =
  let r = Hcrf_workload.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Hcrf_workload.Rng.range r 3 9 in
    check "in range" true (x >= 3 && x <= 9);
    let f = Hcrf_workload.Rng.float r in
    check "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_choose_weights () =
  let r = Hcrf_workload.Rng.create ~seed:11 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Hcrf_workload.Rng.choose r [ (0.9, true); (0.1, false) ] then
      incr hits
  done;
  check (Fmt.str "90%% weight picked ~900 times (got %d)" !hits) true
    (!hits > 830 && !hits < 960)

let test_suite_deterministic () =
  let a = Hcrf_workload.Suite.generate ~n:10 () in
  let b = Hcrf_workload.Suite.generate ~n:10 () in
  List.iter2
    (fun (la : Loop.t) (lb : Loop.t) ->
      check_int "same nodes" (Ddg.num_nodes la.Loop.ddg)
        (Ddg.num_nodes lb.Loop.ddg);
      check_int "same edges" (Ddg.num_edges la.Loop.ddg)
        (Ddg.num_edges lb.Loop.ddg);
      check_int "same trip" la.Loop.trip_count lb.Loop.trip_count)
    a b

let test_suite_prefix_stable () =
  (* loop i must not depend on how many loops are generated *)
  let a = Hcrf_workload.Suite.generate ~n:5 () in
  let b = Hcrf_workload.Suite.generate ~n:20 () in
  List.iteri
    (fun i (la : Loop.t) ->
      let lb = List.nth b i in
      check_int "stable prefix" (Ddg.num_edges la.Loop.ddg)
        (Ddg.num_edges lb.Loop.ddg))
    a

let test_suite_structure () =
  let loops = Hcrf_workload.Suite.generate ~n:60 () in
  List.iter
    (fun (l : Loop.t) ->
      let g = l.Loop.ddg in
      check "well-formed" true (Ddg.validate g);
      check "at least one memory op" true (Ddg.num_memory_ops g >= 1);
      check "streams cover memory ops" true
        (List.length l.Loop.streams = Ddg.num_memory_ops g);
      check "trip positive" true (l.Loop.trip_count >= 1);
      check "sizes in range" true
        (Ddg.num_nodes g >= 4 && Ddg.num_nodes g <= 120))
    loops

let test_suite_distributions () =
  (* coarse calibration invariants on a mid-size sample *)
  let loops = Hcrf_workload.Suite.generate ~n:150 () in
  let n = List.length loops in
  let with_rec =
    List.length
      (List.filter (fun (l : Loop.t) -> Scc.has_recurrence l.Loop.ddg) loops)
  in
  let frac = float_of_int with_rec /. float_of_int n in
  check (Fmt.str "recurrence share ~1/3 (got %.2f)" frac) true
    (frac > 0.2 && frac < 0.5);
  let mem_frac =
    let m, t =
      List.fold_left
        (fun (m, t) (l : Loop.t) ->
          (m + Ddg.num_memory_ops l.Loop.ddg, t + Ddg.num_nodes l.Loop.ddg))
        (0, 0) loops
    in
    float_of_int m /. float_of_int t
  in
  check (Fmt.str "memory fraction ~0.4 (got %.2f)" mem_frac) true
    (mem_frac > 0.3 && mem_frac < 0.5)

let test_paper_count () =
  check_int "paper loop count" 1258 Hcrf_workload.Suite.paper_loop_count

let tests =
  [
    ("kernels: well-formed", `Quick, test_kernels_well_formed);
    ("kernels: streams", `Quick, test_kernels_streams_cover_memory_ops);
    ("kernels: find", `Quick, test_kernels_find);
    ("kernels: recurrences", `Quick, test_recurrence_kernels);
    ("rng: deterministic", `Quick, test_rng_deterministic);
    ("rng: ranges", `Quick, test_rng_ranges);
    ("rng: choose", `Quick, test_rng_choose_weights);
    ("suite: deterministic", `Quick, test_suite_deterministic);
    ("suite: prefix stable", `Quick, test_suite_prefix_stable);
    ("suite: structure", `Quick, test_suite_structure);
    ("suite: distributions", `Quick, test_suite_distributions);
    ("suite: paper count", `Quick, test_paper_count);
  ]

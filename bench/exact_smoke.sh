#!/usr/bin/env bash
# Exact-scheduler smoke test, run on every `dune runtest`: certify a
# 10-loop seed-42 Genloop micro-suite on a monolithic, a clustered and
# a hierarchical machine.  Every loop must certify within the default
# budget, the heuristic must never beat a certified bound (the driver
# exits non-zero on a violation), and the gap summary line is goldened
# — the same seed gives the same certification on every run.
set -eu

abspath () { case "$1" in */*) printf '%s\n' "$1" ;; *) printf './%s\n' "$1" ;; esac }
explore=$(abspath "$1")

for config in S64 2C32 2C32S32; do
  "$explore" exact --genloop --seed 42 -n 10 --config "$config" \
    > "exact_$config.txt" ||
    { echo "exact smoke: violation or crash on $config" >&2
      cat "exact_$config.txt" >&2; exit 1; }
  grep -q \
    "^exact: config=$config loops=10 certified=10 budget_hit=0 gaps: 0=10$" \
    "exact_$config.txt" ||
    { echo "exact smoke: $config summary drifted from golden" >&2
      cat "exact_$config.txt" >&2; exit 1; }
done

echo "exact smoke: ok (3 configs x 10 loops, all certified, heuristic at optimum)"

#!/usr/bin/env bash
# Scheduler-core smoke test, run on every `dune runtest`: a small cold
# workbench (tab6, 20 loops, serial) byte-compared against the golden
# output committed when the data-oriented core replaced the original
# functional one.  Any behavioural drift in the scheduler — a different
# eject victim, a different spill choice, a different II — changes some
# table cell and fails the comparison; only wall-clock lines are
# filtered out.
set -eu

# dune passes the executable as a path relative to the rule's cwd
case "$1" in
  */*) exe="$1" ;;
  *) exe="./$1" ;;
esac
golden="$2"

HCRF_LOOPS=20 HCRF_JOBS=1 "$exe" quick tab6 > sched_core.txt
grep -v 'took' sched_core.txt > sched_core.filtered

cmp "$golden" sched_core.filtered ||
  { echo "sched-core smoke: output drifted from the committed golden" >&2
    diff "$golden" sched_core.filtered | head -40 >&2 || true
    exit 1; }

# the JSON bench emitter must produce a parseable hcrf-bench/1 report
# on the same small workbench (wall-clock values vary; shape must not)
HCRF_LOOPS=5 HCRF_JOBS=1 "$exe" json > sched_core.json
grep -q '"schema": "hcrf-bench/1"' sched_core.json ||
  { echo "sched-core smoke: JSON report missing schema tag" >&2; exit 1; }
if command -v jq > /dev/null 2>&1; then
  jq -e '.runs | length == 3 and all(.cold_wall_s >= 0 and .phase_ns != null)' \
    sched_core.json > /dev/null ||
    { echo "sched-core smoke: malformed JSON report" >&2; exit 1; }
fi

echo "sched-core smoke: ok (tab6@20 byte-identical to golden, JSON report valid)"

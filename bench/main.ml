(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus bechamel micro-benchmarks of the scheduler itself.

   Usage:
     dune exec bench/main.exe                 # every paper experiment
     dune exec bench/main.exe -- tab6 fig6    # a subset
     dune exec bench/main.exe -- quick        # all, on a small suite
     dune exec bench/main.exe -- stats        # scheduler-effort counters
     dune exec bench/main.exe -- trace        # per-config event counters
     dune exec bench/main.exe -- json         # machine-readable cold/warm report
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks

   Experiments: fig1 tab1 tab2 tab3 tab4 fig4 tab5 tab6 fig6 calib stats
   trace micro.  Every knob comes from the environment (one parser,
   [Hcrf_eval.Env]): HCRF_LOOPS=<n> overrides the loop count;
   HCRF_JOBS=<n> sets the worker-domain fan-out; HCRF_CACHE=<dir>
   enables the content-addressed schedule cache (HCRF_CACHE="" for
   in-memory only); HCRF_TRACE=<file> records a JSONL event trace
   (HCRF_TRACE="" for counters only).  Results are byte-identical with
   or without cache and trace; a final "cache:" line reports cache
   counters and a final "trace:" line the sorted event totals. *)

open Hcrf_eval

let time_section name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Fmt.pr "  [%s took %.1fs]@.@." name (Unix.gettimeofday () -. t0);
  r

let suite_size () =
  Option.value ~default:Hcrf_workload.Suite.paper_loop_count (Env.loops ())

let fig1 ~loops ~ctx () =
  time_section "fig1" (fun () ->
      Fmt.pr "%a@." Experiments.pp_figure1 (Experiments.figure1 ~ctx ~loops ()))

let tab1 ~loops ~ctx () =
  time_section "tab1" (fun () ->
      Fmt.pr "%a@." Experiments.pp_table1 (Experiments.table1 ~ctx ~loops ()))

let tab2 () =
  time_section "tab2" (fun () ->
      Fmt.pr "%a@."
        (Experiments.pp_hw_rows
           ~title:"Table 2: access time & area, equal-capacity RFs")
        (Experiments.table2 ()))

let tab3 ~loops ~ctx () =
  time_section "tab3" (fun () ->
      Fmt.pr "%a@." Experiments.pp_table3 (Experiments.table3 ~ctx ~loops ()))

let tab4 ~loops ~ctx () =
  time_section "tab4" (fun () ->
      Fmt.pr "%a@." Experiments.pp_table4 (Experiments.table4 ~ctx ~loops ()))

let fig4 ~loops ~ctx () =
  time_section "fig4" (fun () ->
      Fmt.pr "%a@." Experiments.pp_figure4 (Experiments.figure4 ~ctx ~loops ()))

let tab5 () =
  time_section "tab5" (fun () ->
      Fmt.pr "%a@."
        (Experiments.pp_hw_rows ~title:"Table 5: hardware evaluation")
        (Experiments.table5 ()))

let tab6 ~loops ~ctx () =
  time_section "tab6" (fun () ->
      Fmt.pr "%a@." Experiments.pp_table6 (Experiments.table6 ~ctx ~loops ()))

let fig6 ~loops ~ctx () =
  time_section "fig6" (fun () ->
      Fmt.pr "%a@." Experiments.pp_figure6 (Experiments.figure6 ~ctx ~loops ()))

let ablate ~loops ~ctx () =
  time_section "ablate" (fun () ->
      (* the ablation sweep is expensive: bound the sample *)
      let sample = List.filteri (fun i _ -> i < 150) loops in
      Fmt.pr "%a@." Experiments.pp_ablations
        (Experiments.ablations ~ctx ~loops:sample ()))

(* Scheduler-effort counters over the suite: how hard the engine worked
   (attempts, ejections, spill/communication insertions, II restarts,
   escalation retries).  A per-PR perf regression in the scheduler shows
   up here long before it shows up in wall-clock time. *)
let stats ~loops ~ctx () =
  time_section "stats" (fun () ->
      List.iter
        (fun name ->
          let config = Hcrf_model.Presets.published name in
          let results = Runner.run_suite ~ctx config loops in
          let a = Runner.aggregate config results in
          (* the cache line shows the counters accumulated so far in
             this invocation (the cache is shared by all sections) *)
          let cache_now =
            Option.map Hcrf_cache.Cache.stats ctx.Runner.Ctx.cache
          in
          Fmt.pr "%a@." (Metrics.pp_aggregate ?cache:cache_now ?trace:None) a;
          Fmt.pr "  sched-seconds=%.2f jobs=%d@." a.Metrics.sched_seconds
            ctx.Runner.Ctx.jobs)
        [ "S64"; "4C32"; "4C32S16" ])

(* Per-config event counters from the tracing subsystem: what the
   scheduler actually *did* (placements, ejections, spill and
   communication insertions, cache traffic, phase time), keyed and
   sorted for byte-comparable diffs.  Each config gets a fresh
   [Counters] sink so its histogram stands alone. *)
let trace_sec ~loops ~ctx () =
  time_section "trace" (fun () ->
      List.iter
        (fun name ->
          let config = Hcrf_model.Presets.published name in
          let counters = Hcrf_obs.Counters.create () in
          let tracer =
            Hcrf_obs.Tracer.make [ Hcrf_obs.Tracer.Counters counters ]
          in
          let ctx = { ctx with Runner.Ctx.tracer } in
          let results = Runner.run_suite ~ctx config loops in
          let a = Runner.aggregate config results in
          Fmt.pr "%a@." (Metrics.pp_aggregate ?cache:None ~trace:counters) a)
        [ "S64"; "4C32S16" ])

(* Machine-readable benchmark report (the sched-core speedup gate):
   for each configuration, one cold suite run against a fresh in-memory
   cache and one warm run against the same cache, wall-clock seconds
   each, plus the per-phase nanosecond totals from the tracing
   subsystem accumulated over both runs.  A single JSON document on
   stdout, schema "hcrf-bench/1"; not part of "all" (it re-runs the
   suite twice per config). *)
let json_sec ~loops () =
  let jobs = Env.jobs () in
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.bprintf buf fmt in
  bpf "{ \"schema\": \"hcrf-bench/1\", \"runs\": [";
  List.iteri
    (fun i name ->
      let config = Hcrf_model.Presets.published name in
      let counters = Hcrf_obs.Counters.create () in
      let tracer =
        Hcrf_obs.Tracer.make [ Hcrf_obs.Tracer.Counters counters ]
      in
      let cache = Hcrf_cache.Cache.create () in
      let ctx = Runner.Ctx.make ~cache ~jobs ~tracer () in
      let wall f =
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0
      in
      let cold = wall (fun () -> Runner.run_suite ~ctx config loops) in
      let warm = wall (fun () -> Runner.run_suite ~ctx config loops) in
      if i > 0 then bpf ",";
      bpf "\n  { \"config\": %S, \"loops\": %d, \"jobs\": %d," name
        (List.length loops) jobs;
      bpf "\n    \"cold_wall_s\": %.3f, \"warm_wall_s\": %.3f," cold warm;
      bpf "\n    \"phase_ns\": { ";
      List.iteri
        (fun j (k, ns) ->
          if j > 0 then bpf ", ";
          bpf "%S: %d" k ns)
        (Hcrf_obs.Counters.timings counters);
      bpf " } }";
      Hcrf_obs.Tracer.close tracer)
    [ "S64"; "4C32"; "4C32S16" ];
  bpf "\n] }\n";
  print_string (Buffer.contents buf)

(* Workbench statistics: how the synthetic suite compares with the
   distributions the paper reports for the Perfect Club loops. *)
let calib ~loops () =
  time_section "calib" (fun () ->
      let n = List.length loops in
      let ops =
        List.fold_left
          (fun acc (l : Hcrf_ir.Loop.t) ->
            acc + Hcrf_ir.Ddg.num_nodes l.Hcrf_ir.Loop.ddg)
          0 loops
      in
      let recs =
        List.length
          (List.filter
             (fun (l : Hcrf_ir.Loop.t) ->
               Hcrf_ir.Scc.has_recurrence l.Hcrf_ir.Loop.ddg)
             loops)
      in
      Fmt.pr
        "Workbench: %d loops, %.1f ops/loop, %.1f%% with recurrences@." n
        (float_of_int ops /. float_of_int n)
        (100. *. float_of_int recs /. float_of_int n))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: scheduler component costs and ablations  *)

let micro () =
  let open Bechamel in
  let kernel name = Hcrf_workload.Kernels.find name in
  let schedule_test ~kernel:kname ~config:cname =
    let config = Hcrf_model.Presets.published cname in
    let loop = kernel kname in
    Test.make
      ~name:(Fmt.str "mirs_hc/%s/%s" kname cname)
      (Staged.stage (fun () ->
           match Hcrf_core.Mirs_hc.schedule config loop.Hcrf_ir.Loop.ddg with
           | Ok _ -> ()
           | Error _ -> failwith "no schedule"))
  in
  let mii_test =
    let config = Hcrf_model.Presets.published "S128" in
    let loop = kernel "fir5" in
    Test.make ~name:"mii/fir5"
      (Staged.stage (fun () ->
           ignore (Hcrf_sched.Mii.compute config loop.Hcrf_ir.Loop.ddg)))
  in
  let order_test =
    let config = Hcrf_model.Presets.published "S128" in
    let loop = kernel "tree8" in
    Test.make ~name:"order/tree8"
      (Staged.stage (fun () ->
           ignore (Hcrf_sched.Order.compute config loop.Hcrf_ir.Loop.ddg)))
  in
  let cacti_test =
    let config = Hcrf_model.Presets.published "4C16S16" in
    Test.make ~name:"cacti/4C16S16"
      (Staged.stage (fun () -> ignore (Hcrf_model.Cacti.estimate config)))
  in
  let cache_test =
    Test.make ~name:"cache/stream"
      (Staged.stage (fun () ->
           let c = Hcrf_memsim.Cache.create () in
           for i = 0 to 4095 do
             ignore (Hcrf_memsim.Cache.access c (i * 8))
           done))
  in
  (* ablation: the full iterative scheduler vs the non-iterative
     baseline on the same loop and configuration *)
  let ablation_test ~name ~opts =
    let config = Hcrf_model.Presets.published "2C32S32" in
    let loop = kernel "fir5" in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore
             (Hcrf_sched.Engine.schedule ~opts config loop.Hcrf_ir.Loop.ddg)))
  in
  let tests =
    [
      schedule_test ~kernel:"daxpy" ~config:"S128";
      schedule_test ~kernel:"fir5" ~config:"4C32";
      schedule_test ~kernel:"tree8" ~config:"4C16S16";
      schedule_test ~kernel:"cmul" ~config:"8C16S16";
      mii_test;
      order_test;
      cacti_test;
      cache_test;
      ablation_test ~name:"ablate/backtracking"
        ~opts:Hcrf_sched.Engine.default_options;
      ablation_test ~name:"ablate/non-iterative"
        ~opts:
          {
            Hcrf_sched.Engine.default_options with
            backtracking = false;
            ordering = `Topological;
          };
    ]
  in
  Fmt.pr "@[<v>Micro-benchmarks (bechamel, monotonic clock)@,";
  List.iter
    (fun test ->
      let cfg =
        Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ()
      in
      let results =
        Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test
      in
      Hashtbl.iter
        (fun name raw ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock raw
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "  %-28s %12.1f ns/run@," name est
          | Some _ | None -> Fmt.pr "  %-28s (no estimate)@," name)
        results)
    tests;
  Fmt.pr "@]@."

(* ------------------------------------------------------------------ *)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  Env.warn_unknown ();
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let quick = List.mem "quick" args in
  let args = List.filter (fun a -> a <> "quick") args in
  let selected = if args = [] then [ "all" ] else args in
  let wants name = List.mem name selected || List.mem "all" selected in
  (* quick caps the suite at 120 loops but still honours an explicit
     HCRF_LOOPS (the dune smoke test runs "quick" with HCRF_LOOPS=20) *)
  let n =
    if quick then Option.value ~default:120 (Env.loops ())
    else suite_size ()
  in
  let tracer = Env.tracer () in
  let ctx =
    Runner.Ctx.make ?cache:(Env.cache ()) ~jobs:(Env.jobs ()) ~tracer ()
  in
  let needs_loops =
    List.exists wants
      [ "fig1"; "tab1"; "tab3"; "tab4"; "fig4"; "tab6"; "fig6"; "calib";
        "ablate"; "stats"; "trace" ]
    || List.mem "json" selected
  in
  let loops =
    if needs_loops then begin
      (* a json-only invocation must emit nothing but the JSON document *)
      if selected <> [ "json" ] then
        Fmt.pr "Generating the %d-loop workbench (%d jobs)...@." n
          ctx.Runner.Ctx.jobs;
      Hcrf_workload.Suite.generate ~n ()
    end
    else []
  in
  if wants "calib" then calib ~loops ();
  if wants "fig1" then fig1 ~loops ~ctx ();
  if wants "tab1" then tab1 ~loops ~ctx ();
  if wants "tab2" then tab2 ();
  if wants "tab3" then tab3 ~loops ~ctx ();
  if wants "tab4" then tab4 ~loops ~ctx ();
  if wants "fig4" then fig4 ~loops ~ctx ();
  if wants "tab5" then tab5 ();
  if wants "tab6" then tab6 ~loops ~ctx ();
  if wants "fig6" then fig6 ~loops ~ctx ();
  if wants "ablate" then ablate ~loops ~ctx ();
  if wants "stats" then stats ~loops ~ctx ();
  if wants "trace" then trace_sec ~loops ~ctx ();
  if List.mem "json" selected then json_sec ~loops ();
  if wants "micro" then micro ();
  (match ctx.Runner.Ctx.cache with
  | None -> ()
  | Some c ->
    Fmt.pr "cache: %a@." Metrics.pp_cache_stats (Hcrf_cache.Cache.stats c));
  (match Hcrf_obs.Tracer.counters tracer with
  | None -> ()
  | Some c -> Fmt.pr "trace: %a@." Hcrf_obs.Counters.pp c);
  Hcrf_obs.Tracer.close tracer

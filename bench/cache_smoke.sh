#!/usr/bin/env bash
# Schedule-cache smoke test, run on every `dune runtest`: tab6 twice
# against the same fresh HCRF_CACHE directory.  The second run must be
# served from the cache (hits > 0, no misses) and — cache/timing lines
# aside — print byte-identical output.
set -eu

# dune passes the executable as a path relative to the rule's cwd
case "$1" in
  */*) exe="$1" ;;
  *) exe="./$1" ;;
esac
dir=$(mktemp -d "${TMPDIR:-/tmp}/hcrf-cache-smoke.XXXXXX")
trap 'rm -rf "$dir"' EXIT

run () { HCRF_LOOPS=20 HCRF_JOBS=2 HCRF_CACHE="$dir" "$exe" quick tab6; }

run > cold.txt
run > warm.txt

grep '^cache: ' cold.txt | grep -q ' hits=0 ' ||
  { echo "cache smoke: cold run unexpectedly hit" >&2; exit 1; }
grep '^cache: ' warm.txt | grep -Eq 'hits=[1-9]' ||
  { echo "cache smoke: warm run had no hits" >&2; exit 1; }
grep '^cache: ' warm.txt | grep -q 'misses=0 ' ||
  { echo "cache smoke: warm run recomputed entries" >&2; exit 1; }

# wall-clock ("[... took ...]") and cache-counter lines are the only
# legitimate differences between the two runs
grep -v 'took\|^cache:' cold.txt > cold.filtered
grep -v 'took\|^cache:' warm.txt > warm.filtered
cmp cold.filtered warm.filtered ||
  { echo "cache smoke: warm output differs from cold" >&2; exit 1; }

echo "cache smoke: ok (warm run fully cached, output identical)"

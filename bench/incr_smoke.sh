#!/usr/bin/env bash
# Incremental-pipeline smoke test, run on every `dune runtest`: a
# scripted 3-edit session over a 12-kernel frontend program, at jobs=1
# and jobs=4.  The acceptance contract:
#
#   - the cold evaluation recomputes every kernel (nothing pre-warmed);
#   - each edit recomputes exactly the one dirty kernel — frontend,
#     schedule and metric stages of every other kernel replay from the
#     stage memo;
#   - the final incremental metrics are byte-identical to a cold
#     evaluation of the same program (--verify, sched_seconds
#     scrubbed);
#   - modulo "timing:" lines and the jobs= field, stdout is
#     byte-identical at jobs=1 and jobs=4 (stage classification is
#     serial, so all counts are jobs-independent);
#   - the --json report has the hcrf-bench/1 shape, key-compatible
#     with the committed BENCH_incr.json runs[] entries.
set -eu

case "$1" in
  */*) explore="$1" ;;
  *) explore="./$1" ;;
esac
golden="$2"

dir=$(mktemp -d "${TMPDIR:-/tmp}/hcrf-incr-smoke.XXXXXX")
trap 'rm -rf "$dir"' EXIT

run () {
  "$explore" incr -c 4C32 --kernels 12 --edits 3 --verify \
    --jobs "$1" --json "$dir/incr$1.json"
}

run 1 > "$dir/j1.txt"
run 4 > "$dir/j4.txt"

grep -q '^cold: .* recomputed=12 ' "$dir/j1.txt" ||
  { echo "incr smoke: cold run did not recompute every kernel" >&2
    cat "$dir/j1.txt" >&2; exit 1; }

# each edit recompiles and reschedules exactly its one dirty kernel
[ "$(grep -c '^edit [0-9]*: .*frontend_recomputed=1 .* recomputed=1 ' \
      "$dir/j1.txt")" = 3 ] ||
  { echo "incr smoke: an edit recomputed more than its dirty cone" >&2
    cat "$dir/j1.txt" >&2; exit 1; }
[ "$(grep -c '^  dirty: k[0-9][0-9][0-9]$' "$dir/j1.txt")" = 3 ] ||
  { echo "incr smoke: an edit dirtied more than one loop" >&2
    cat "$dir/j1.txt" >&2; exit 1; }

grep -q '^verify: ok' "$dir/j1.txt" ||
  { echo "incr smoke: incremental metrics differ from a cold run" >&2
    cat "$dir/j1.txt" >&2; exit 1; }

# jobs determinism: wall-clock lines and the jobs= field are the only
# legitimate differences
sed 's/jobs=[0-9]*//' "$dir/j1.txt" | grep -v '^timing:' > "$dir/j1.filtered"
sed 's/jobs=[0-9]*//' "$dir/j4.txt" | grep -v '^timing:' > "$dir/j4.filtered"
cmp "$dir/j1.filtered" "$dir/j4.filtered" ||
  { echo "incr smoke: jobs=4 output differs from jobs=1" >&2; exit 1; }

# hcrf-bench/1 shape gate against the committed document
grep -q '"schema": "hcrf-bench/1"' "$dir/incr1.json" ||
  { echo "incr smoke: JSON report missing schema tag" >&2; exit 1; }
if command -v jq > /dev/null 2>&1; then
  jq -e '.runs | length >= 1 and all(.cold_wall_s >= 0 and .phase_ns != null)' \
    "$dir/incr1.json" > /dev/null ||
    { echo "incr smoke: malformed JSON report" >&2; exit 1; }
  smoke_keys=$(jq -r '.runs[0] | keys | sort | join(",")' "$dir/incr1.json")
  golden_keys=$(jq -r '.runs[0] | keys | sort | join(",")' "$golden")
  [ "$smoke_keys" = "$golden_keys" ] ||
    { echo "incr smoke: runs[] key shape drifted from BENCH_incr" >&2
      echo "  smoke:  $smoke_keys" >&2
      echo "  golden: $golden_keys" >&2; exit 1; }
fi

echo "incr smoke: ok (3-edit session, one dirty kernel per edit, bytes match cold, jobs-invariant)"

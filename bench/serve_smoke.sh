#!/usr/bin/env bash
# Serving smoke test, run on every `dune runtest`: boot an hcrf_serve
# daemon on a loopback unix socket, fire a 1000-request storm from 4
# concurrent clients at it, and check the acceptance contract:
#
#   - every warm response comes from a cache tier: the storm moves no
#     engine computation counter (computed=0);
#   - responses are byte-identical to a direct local Runner.run_loop
#     (--verify; scheduler wall-clock scrubbed);
#   - a malformed frame is refused without taking the daemon down;
#   - SIGTERM drains cleanly (final stats line, exit 0, socket gone);
#   - the --json report has the hcrf-bench/1 shape — key-compatible
#     with BENCH_sched_core.json's runs[] entries (trajectory guard,
#     not wall-clock).
set -eu

case "$1" in
  */*) serve="$1" ;;
  *) serve="./$1" ;;
esac
case "$2" in
  */*) explore="$2" ;;
  *) explore="./$2" ;;
esac
golden="$3"

dir=$(mktemp -d "${TMPDIR:-/tmp}/hcrf-serve-smoke.XXXXXX")
sock="$dir/serve.sock"
cleanup () {
  [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2> /dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

"$serve" --addr "$sock" --cache "$dir/cache" --lru 64 --jobs 2 \
  > "$dir/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  kill -0 "$daemon_pid" 2> /dev/null ||
    { echo "serve smoke: daemon died at startup" >&2
      cat "$dir/daemon.log" >&2; exit 1; }
  sleep 0.1
done
[ -S "$sock" ] ||
  { echo "serve smoke: daemon socket never appeared" >&2; exit 1; }

"$explore" serve-bench --addr "$sock" -c 4C32 -n 20 -r 1000 --clients 4 \
  --verify --malformed --json "$dir/serve.json" > bench_out.txt

grep -q 'malformed: daemon survived' bench_out.txt ||
  { echo "serve smoke: malformed-frame check missing" >&2
    cat bench_out.txt >&2; exit 1; }
grep -q '^storm: computed=0 ' bench_out.txt ||
  { echo "serve smoke: warm storm invoked the engine" >&2
    cat bench_out.txt >&2; exit 1; }
grep -q '^verify: ok' bench_out.txt ||
  { echo "serve smoke: daemon responses differ from the local runner" >&2
    cat bench_out.txt >&2; exit 1; }

# graceful drain: SIGTERM, clean exit, final stats, socket removed
kill -TERM "$daemon_pid"
wait "$daemon_pid" ||
  { echo "serve smoke: daemon exited non-zero on SIGTERM" >&2
    cat "$dir/daemon.log" >&2; exit 1; }
daemon_pid=""
grep -q 'hcrf_serve: drained;' "$dir/daemon.log" ||
  { echo "serve smoke: no drain stats line" >&2
    cat "$dir/daemon.log" >&2; exit 1; }
[ ! -e "$sock" ] ||
  { echo "serve smoke: socket file left behind after drain" >&2; exit 1; }

# entries must have landed in the sharded store layout
find "$dir/cache" -mindepth 2 -name '*.hcrf' | grep -q . ||
  { echo "serve smoke: no sharded cache entries written" >&2; exit 1; }

# hcrf-bench/1 shape gate: serve.json's runs[] must carry exactly the
# key set of the committed sched-core benchmark document, so both
# reports stay machine-comparable
grep -q '"schema": "hcrf-bench/1"' "$dir/serve.json" ||
  { echo "serve smoke: JSON report missing schema tag" >&2; exit 1; }
if command -v jq > /dev/null 2>&1; then
  jq -e '.runs | length >= 1 and all(.cold_wall_s >= 0 and .phase_ns != null)' \
    "$dir/serve.json" > /dev/null ||
    { echo "serve smoke: malformed JSON report" >&2; exit 1; }
  serve_keys=$(jq -r '.runs[0] | keys | sort | join(",")' "$dir/serve.json")
  golden_keys=$(jq -r '.runs_after[0] | keys | sort | join(",")' "$golden")
  [ "$serve_keys" = "$golden_keys" ] ||
    { echo "serve smoke: runs[] key shape drifted from BENCH_sched_core" >&2
      echo "  serve:  $serve_keys" >&2
      echo "  golden: $golden_keys" >&2; exit 1; }
fi

echo "serve smoke: ok (1000-request storm warm, verified, malformed survived, drained)"

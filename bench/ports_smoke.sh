#!/usr/bin/env bash
# Access-port sweep smoke test, run on every `dune runtest`: the
# generalized-hierarchy `ports --access` ladder (uniform, then r6w4
# down to r2w1) over a 12-loop suite, for three representative
# organizations — two-level hierarchical, flat clustered, and
# three-level.  The acceptance contract:
#
#   - the concatenated sweep tables are byte-identical to the committed
#     golden (bench/golden_ports.txt): any drift in ΣII or %MII at any
#     swept port count is a behavioural change of the port-constrained
#     scheduler and must be re-goldened deliberately;
#   - the first sweep is byte-identical at jobs=1 and jobs=4;
#   - the --json report has the hcrf-bench/1 shape, its runs[] key set
#     matches the committed BENCH_ports.json, and its (config, sum_ii)
#     pairs reproduce the committed document exactly — the sweep is
#     deterministic, so only the wall-clock fields may differ.
set -eu

case "$1" in
  */*) explore="$1" ;;
  *) explore="./$1" ;;
esac
golden_txt="$2"
golden_json="$3"

dir=$(mktemp -d "${TMPDIR:-/tmp}/hcrf-ports-smoke.XXXXXX")
trap 'rm -rf "$dir"' EXIT

: > "$dir/summary.txt"
for cfg in 4C16S16 4C32 4C16S16-L3:64; do
  "$explore" ports -c "$cfg" --access -n 12 --json "$dir/ports_$cfg.json" \
    >> "$dir/summary.txt"
done

cmp "$dir/summary.txt" "$golden_txt" ||
  { echo "ports smoke: sweep tables drifted from bench/golden_ports.txt" >&2
    diff "$golden_txt" "$dir/summary.txt" >&2 || true; exit 1; }

# jobs determinism on the first sweep
"$explore" ports -c 4C16S16 --access -n 12 -j 4 > "$dir/j4.txt"
head -8 "$dir/summary.txt" > "$dir/j1.txt"
cmp "$dir/j1.txt" "$dir/j4.txt" ||
  { echo "ports smoke: jobs=4 sweep differs from jobs=1" >&2; exit 1; }

# hcrf-bench/1 shape and determinism gate against the committed document
smoke_json="$dir/ports_4C16S16.json"
grep -q '"schema": "hcrf-bench/1"' "$smoke_json" ||
  { echo "ports smoke: JSON report missing schema tag" >&2; exit 1; }
if command -v jq > /dev/null 2>&1; then
  jq -e '.runs | length == 6 and all(.sum_ii > 0 and .phase_ns != null)' \
    "$smoke_json" > /dev/null ||
    { echo "ports smoke: malformed JSON report" >&2; exit 1; }
  smoke_keys=$(jq -r '.runs[0] | keys | sort | join(",")' "$smoke_json")
  golden_keys=$(jq -r '.runs[0] | keys | sort | join(",")' "$golden_json")
  [ "$smoke_keys" = "$golden_keys" ] ||
    { echo "ports smoke: runs[] key shape drifted from BENCH_ports" >&2
      echo "  smoke:  $smoke_keys" >&2
      echo "  golden: $golden_keys" >&2; exit 1; }
  smoke_pts=$(jq -c '[.runs[] | [.config, .sum_ii]]' "$smoke_json")
  golden_pts=$(jq -c '[.runs[] | [.config, .sum_ii]]' "$golden_json")
  [ "$smoke_pts" = "$golden_pts" ] ||
    { echo "ports smoke: (config, sum_ii) points drifted from BENCH_ports" >&2
      echo "  smoke:  $smoke_pts" >&2
      echo "  golden: $golden_pts" >&2; exit 1; }
fi

echo "ports smoke: ok (3 organizations x 6 port points, bytes match golden, jobs-invariant)"

#!/usr/bin/env bash
# Fuzzing smoke test, run on every `dune runtest`: a 50-case pinned-seed
# differential campaign over 2 worker domains.  The oracles must find
# nothing (a failure here is a real scheduler/executor divergence), and
# the report must be byte-stable — the same seed gives the same bytes on
# every run and for any worker count.
set -eu

abspath () { case "$1" in */*) printf '%s\n' "$1" ;; *) printf './%s\n' "$1" ;; esac }
explore=$(abspath "$1")

"$explore" fuzz --seed 42 --cases 50 --jobs 2 --no-corpus > fuzz1.txt
"$explore" fuzz --seed 42 --cases 50 --jobs 1 --no-corpus > fuzz2.txt

grep -q '^fuzz: seed=42 cases=50 failures=0$' fuzz1.txt ||
  { echo "fuzz smoke: campaign reported failures" >&2; cat fuzz1.txt >&2
    exit 1; }

cmp fuzz1.txt fuzz2.txt ||
  { echo "fuzz smoke: report depends on the worker count" >&2; exit 1; }

echo "fuzz smoke: ok (50 cases, no oracle failures, byte-stable report)"

#!/usr/bin/env bash
# Tracing smoke test, run on every `dune runtest`: tab6 once untraced
# and once with a JSONL trace over 2 worker domains.  Tracing must not
# change the benchmark output (trace/timing lines aside), the trace
# file must validate against the versioned schema, and replaying it
# through `hcrf_explore trace` must reproduce the live counter totals.
set -eu

# dune passes executables as paths relative to the rule's cwd
abspath () { case "$1" in */*) printf '%s\n' "$1" ;; *) printf './%s\n' "$1" ;; esac }
bench=$(abspath "$1")
explore=$(abspath "$2")

dir=$(mktemp -d "${TMPDIR:-/tmp}/hcrf-trace-smoke.XXXXXX")
trap 'rm -rf "$dir"' EXIT

HCRF_LOOPS=20 HCRF_JOBS=2 "$bench" quick tab6 > plain.txt
HCRF_LOOPS=20 HCRF_JOBS=2 HCRF_TRACE="$dir/run.jsonl" "$bench" quick tab6 \
  > traced.txt

grep -q '^trace: .' traced.txt ||
  { echo "trace smoke: traced run printed no counter totals" >&2; exit 1; }

# wall-clock ("[... took ...]") and the trace-counter line are the only
# legitimate differences between the two runs
grep -v 'took\|^trace:' plain.txt  > plain.filtered
grep -v 'took\|^trace:' traced.txt > traced.filtered
cmp plain.filtered traced.filtered ||
  { echo "trace smoke: tracing changed the benchmark output" >&2; exit 1; }

# the recorded file passes the schema checker...
"$explore" trace "$dir/run.jsonl" > replayed.txt
grep -q '^valid: ' replayed.txt ||
  { echo "trace smoke: trace file failed schema validation" >&2; exit 1; }

# ...and replays to exactly the live totals
grep '^trace: ' traced.txt   > live.totals
grep '^trace: ' replayed.txt > replayed.totals
cmp live.totals replayed.totals ||
  { echo "trace smoke: replayed totals differ from the live run" >&2; exit 1; }

echo "trace smoke: ok (output unchanged, schema valid, replay matches)"

(* Tests for the serving stack: wire framing (roundtrip property and
   malformed-frame goldens), the LRU tier against a reference model,
   the tiered answer path (coalescing, byte-identity, rejection), and a
   live in-process daemon over a loopback unix socket. *)

open Hcrf_server

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let gen_loop i =
  let rng = Hcrf_workload.Rng.create ~seed:(0xCAFE + (7919 * i)) in
  Hcrf_workload.Genloop.generate ~rng ~index:i ()

let config = Hcrf_model.Presets.published "4C32"
let opts = Hcrf_sched.Engine.default_options
let scenario = Hcrf_eval.Runner.Ideal

(* ------------------------------------------------------------------ *)
(* Wire framing *)

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame/unframe roundtrip any payload" ~count:200
    QCheck.(string_of_size Gen.(0 -- 4096))
    (fun payload ->
      match Wire.unframe (Wire.frame payload) with
      | Ok p -> String.equal p payload
      | Error _ -> false)

let frame_error_name = function
  | Wire.Bad_magic -> "bad-magic"
  | Wire.Too_large _ -> "too-large"
  | Wire.Truncated -> "truncated"
  | Wire.Bad_checksum -> "bad-checksum"
  | Wire.Bad_payload _ -> "bad-payload"

let test_malformed_frames () =
  let f = Wire.frame "hello" in
  let expect what expected s =
    match Wire.unframe s with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error e ->
      Alcotest.(check string) what expected (frame_error_name e)
  in
  expect "garbage" "bad-magic" "definitely not a frame, not even close";
  expect "empty" "truncated" "";
  expect "header cut short" "truncated" (String.sub f 0 10);
  expect "payload cut short" "truncated" (String.sub f 0 (String.length f - 2));
  expect "trailing junk" "truncated" (f ^ "x");
  (* flip one payload byte: the checksum must catch it *)
  let b = Bytes.of_string f in
  Bytes.set b (String.length f - 1) '!';
  expect "corrupt payload byte" "bad-checksum" (Bytes.to_string b);
  (* a frame claiming more than the limit is refused from the header *)
  (match Wire.unframe ~max_frame:3 f with
  | Error (Wire.Too_large n) -> check_int "claimed length" 5 n
  | Error e -> Alcotest.failf "oversized: wrong error %s" (frame_error_name e)
  | Ok _ -> Alcotest.fail "oversized: accepted");
  (* kind-tag confusion: a response payload never decodes as a request *)
  (match Wire.unframe (Wire.encode_response Wire.Pong) with
  | Error e -> Alcotest.failf "pong frame: %s" (frame_error_name e)
  | Ok payload -> (
    match Wire.decode_request payload with
    | Error (Wire.Bad_payload _) -> ()
    | Error e -> Alcotest.failf "wrong kind: %s" (frame_error_name e)
    | Ok _ -> Alcotest.fail "decoded a response as a request"))

let test_request_roundtrip () =
  let l = gen_loop 0 in
  let req =
    Wire.Schedule
      (Wire.request_of_loop ~timeout_ms:250 ~config ~opts ~scenario l)
  in
  List.iter
    (fun (what, r) ->
      match Wire.unframe (Wire.encode_request r) with
      | Error e -> Alcotest.failf "%s: %s" what (frame_error_name e)
      | Ok payload -> (
        match Wire.decode_request payload with
        | Error e -> Alcotest.failf "%s: %s" what (frame_error_name e)
        | Ok r' -> (
          match (r, r') with
          | Wire.Ping, Wire.Ping | Wire.Stats, Wire.Stats -> ()
          | Wire.Schedule s, Wire.Schedule s' ->
            (* the rebuilt loop must fingerprint identically, and the
               plain fields survive *)
            check (what ^ ": loop fingerprint") true
              (Hcrf_cache.Fingerprint.equal
                 (Hcrf_cache.Fingerprint.of_loop l)
                 (Hcrf_cache.Fingerprint.of_loop (Wire.loop_of_request s')));
            check_int (what ^ ": timeout") s.Wire.sr_timeout_ms
              s'.Wire.sr_timeout_ms
          | _ -> Alcotest.failf "%s: decoded as a different request" what)))
    [ ("ping", Wire.Ping); ("stats", Wire.Stats); ("schedule", req) ]

(* ------------------------------------------------------------------ *)
(* LRU vs a reference model *)

let prop_lru_model =
  (* the model: an assoc list in recency order, same capacity *)
  QCheck.Test.make ~name:"lru agrees with a reference model" ~count:100
    QCheck.(
      pair (int_range 1 8)
        (small_list (pair (int_range 0 15) (int_range 0 99))))
    (fun (capacity, ops) ->
      let lru = Lru.create ~capacity in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (k, v) ->
          if v mod 3 = 0 then begin
            (* lookup *)
            let expected = List.assoc_opt k !model in
            let got = Lru.find lru k in
            if got <> expected then ok := false;
            match expected with
            | Some _ ->
              model := (k, List.assoc k !model) :: List.remove_assoc k !model
            | None -> ()
          end
          else begin
            Lru.add lru k v;
            model := (k, v) :: List.remove_assoc k !model;
            if List.length !model > capacity then
              model := List.filteri (fun i _ -> i < capacity) !model
          end)
        ops;
      !ok
      && Lru.length lru = List.length !model
      && List.for_all (fun (k, v) -> Lru.find lru k = Some v) !model)

let test_lru_eviction_counts () =
  let lru = Lru.create ~capacity:2 in
  Lru.add lru 1 "a";
  Lru.add lru 2 "b";
  check "1 present" true (Lru.find lru 1 = Some "a");
  (* 1 is now most recent: inserting 3 evicts 2 *)
  Lru.add lru 3 "c";
  check "2 evicted" true (Lru.find lru 2 = None);
  check "1 survived" true (Lru.find lru 1 = Some "a");
  check "3 present" true (Lru.find lru 3 = Some "c");
  let s = Lru.stats lru in
  check_int "evictions" 1 s.Lru.evictions;
  check_int "length" 2 s.Lru.length;
  check_int "hits" 3 s.Lru.hits;
  check_int "misses" 1 s.Lru.misses

(* ------------------------------------------------------------------ *)
(* Tiers: coalescing, byte-identity, rejection *)

let entry_bytes (e : Hcrf_cache.Entry.t) = Marshal.to_string e []

let scrub_entry = function
  | Hcrf_cache.Entry.Failed _ as e -> e
  | Hcrf_cache.Entry.Scheduled { outcome; stall_cycles; retries; input_digest }
    ->
    Hcrf_cache.Entry.Scheduled
      {
        outcome = { outcome with Hcrf_cache.Entry.s_seconds = 0. };
        stall_cycles;
        retries;
        input_digest;
      }

let sched_request ?(timeout_ms = 0) l =
  Wire.request_of_loop ~timeout_ms ~config ~opts ~scenario l

let test_tiers_cold_storm_coalesces () =
  let tiers = Tiers.create ~lru_capacity:16 ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Tiers.shutdown tiers) @@ fun () ->
  let l = gen_loop 1 in
  let req = sched_request l in
  (* a storm of identical cold requests from many threads: exactly one
     engine computation, byte-identical answers for everyone *)
  let n = 8 in
  let replies = Array.make n "" in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            match Tiers.schedule tiers req with
            | Wire.Scheduled e -> replies.(i) <- entry_bytes e
            | _ -> ())
          ())
  in
  List.iter Thread.join threads;
  check "every thread got an entry" true
    (Array.for_all (fun b -> b <> "") replies);
  Array.iter
    (fun b -> check "byte-identical replies" true (String.equal b replies.(0)))
    replies;
  let s = Tiers.stats tiers in
  check_int "one engine computation" 1 s.Wire.computed;
  check_int "all requests arrived" n s.Wire.requests;
  check_int "no rejections" 0 s.Wire.rejected;
  check_int "hits + coalesced cover the rest" (n - 1)
    (s.Wire.lru_hits + s.Wire.tier2_hits + s.Wire.coalesced)

let test_tiers_rejects_malformed_loop () =
  let tiers = Tiers.create ~lru_capacity:4 ~jobs:1 () in
  Fun.protect ~finally:(fun () -> Tiers.shutdown tiers) @@ fun () ->
  let req = { (sched_request (gen_loop 2)) with Wire.sr_trip = -3 } in
  (match Tiers.schedule tiers req with
  | Wire.Refused (Wire.Malformed, _) -> ()
  | Wire.Refused (k, _) ->
    Alcotest.failf "wrong kind: %s" (Wire.error_kind_name k)
  | _ -> Alcotest.fail "negative trip count accepted");
  let s = Tiers.stats tiers in
  check_int "counted as rejected" 1 s.Wire.rejected;
  check_int "nothing computed" 0 s.Wire.computed

let test_tiers_jobs_identical () =
  (* the same request set against a 1-domain and a 4-domain tiers must
     produce byte-identical entries modulo scheduling wall-clock *)
  let loops = List.init 6 gen_loop in
  let answers jobs =
    let tiers = Tiers.create ~lru_capacity:16 ~jobs () in
    Fun.protect ~finally:(fun () -> Tiers.shutdown tiers) @@ fun () ->
    List.map
      (fun l ->
        match Tiers.schedule tiers (sched_request l) with
        | Wire.Scheduled e -> entry_bytes (scrub_entry e)
        | _ -> Alcotest.fail "request refused")
      loops
  in
  List.iter2
    (fun a b -> check "jobs=1 equals jobs=4" true (String.equal a b))
    (answers 1) (answers 4)

let test_pool_deadline () =
  (* an unfulfilled future times out; a fulfilled one does not *)
  let fut = Pool.promise () in
  (match Pool.await ~deadline:(Unix.gettimeofday () +. 0.02) fut with
  | `Timeout -> ()
  | `Ok _ | `Exn _ -> Alcotest.fail "empty future did not time out");
  Pool.fulfil fut (Ok 42);
  match Pool.await ~deadline:(Unix.gettimeofday () +. 0.02) fut with
  | `Ok v -> check_int "value" 42 v
  | `Timeout | `Exn _ -> Alcotest.fail "fulfilled future timed out"

(* ------------------------------------------------------------------ *)
(* A live daemon on a loopback unix socket *)

let with_daemon ?(jobs = 2) f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "hcrf-serve-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir dir 0o755;
  let addr = Wire.Unix_sock (Filename.concat dir "d.sock") in
  let tracer =
    Hcrf_obs.Tracer.make
      [ Hcrf_obs.Tracer.Counters (Hcrf_obs.Counters.create ()) ]
  in
  let tiers =
    Tiers.create ~dir:(Filename.concat dir "cache") ~jobs ~tracer ()
  in
  let daemon = Daemon.create ~addr tiers in
  let th = Daemon.spawn daemon in
  Fun.protect
    ~finally:(fun () ->
      Daemon.request_stop daemon;
      Thread.join th;
      let rec rm_rf p =
        if Sys.is_directory p then begin
          Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      rm_rf dir)
    (fun () -> f addr tiers)

let connect addr =
  match Client.connect addr with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

let test_daemon_roundtrip () =
  with_daemon @@ fun addr _tiers ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.ping c with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "ping: %s" msg);
  let l = gen_loop 3 in
  let served =
    match Client.schedule c ~config ~opts ~scenario l with
    | Ok (Wire.Scheduled e) -> e
    | Ok _ -> Alcotest.fail "unexpected reply"
    | Error msg -> Alcotest.failf "schedule: %s" msg
  in
  (* the daemon's entry replays to exactly the local runner's result
     (independent computations: scrub the scheduler wall-clock) *)
  let scrub (p : Hcrf_eval.Metrics.loop_perf) =
    { p with Hcrf_eval.Metrics.sched_seconds = 0. }
  in
  (match
     ( Hcrf_eval.Runner.result_of_entry config l served,
       Hcrf_eval.Runner.run_loop config l )
   with
  | Some r, Some s ->
    check "daemon equals local runner" true
      (String.equal
         (Marshal.to_string (scrub r.Hcrf_eval.Runner.perf) [])
         (Marshal.to_string (scrub s.Hcrf_eval.Runner.perf) []))
  | _ -> Alcotest.fail "schedule failed");
  (* warm repeat: byte-identical, from a cache tier *)
  (match Client.schedule c ~config ~opts ~scenario l with
  | Ok (Wire.Scheduled e) ->
    check "warm reply byte-identical" true
      (String.equal (entry_bytes served) (entry_bytes e))
  | _ -> Alcotest.fail "warm request failed");
  match Client.stats c with
  | Error msg -> Alcotest.failf "stats: %s" msg
  | Ok s ->
    check_int "one computation" 1 s.Wire.computed;
    check_int "two schedule requests" 2 s.Wire.requests;
    check "warm answer came from a tier" true
      (s.Wire.lru_hits + s.Wire.tier2_hits = 1);
    (* the obs counters mirror the tier counters *)
    check "serve.request counted" true
      (List.assoc_opt "serve.request" s.Wire.counters = Some 2)

let test_daemon_concurrent_clients () =
  with_daemon @@ fun addr _tiers ->
  let l = gen_loop 4 in
  let n = 4 in
  let replies = Array.make n "" in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let c = connect addr in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            match Client.schedule c ~config ~opts ~scenario l with
            | Ok (Wire.Scheduled e) -> replies.(i) <- entry_bytes e
            | _ -> ())
          ())
  in
  List.iter Thread.join threads;
  check "every client answered" true
    (Array.for_all (fun b -> b <> "") replies);
  Array.iter
    (fun b ->
      check "identical across clients" true (String.equal b replies.(0)))
    replies;
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.stats c with
  | Error msg -> Alcotest.failf "stats: %s" msg
  | Ok s ->
    check_int "same fingerprint computed once" 1 s.Wire.computed

let test_daemon_survives_malformed () =
  with_daemon @@ fun addr _tiers ->
  (* a garbage blast gets this connection refused, not the daemon *)
  let bad = connect addr in
  (match Client.send_raw bad "not a frame: no magic, no length, no checksum" with
  | Ok (Wire.Refused (k, _)) ->
    Alcotest.(check string) "refused kind" "malformed" (Wire.error_kind_name k)
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> () (* server may close before the reply lands: also fine *));
  Client.close bad;
  (* an oversized frame is refused by its header *)
  let big = connect addr in
  let huge = Wire.frame (String.make (Wire.default_max_frame + 1) 'x') in
  (match Client.send_raw big (String.sub huge 0 Wire.header_size) with
  | Ok (Wire.Refused (Wire.Too_big, _)) -> ()
  | Ok (Wire.Refused (k, _)) ->
    Alcotest.failf "wrong kind: %s" (Wire.error_kind_name k)
  | Ok _ -> Alcotest.fail "oversized frame accepted"
  | Error _ -> ());
  Client.close big;
  (* the daemon is still alive and serving *)
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.ping c with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "daemon died: %s" msg);
  match Client.schedule c ~config ~opts ~scenario (gen_loop 5) with
  | Ok (Wire.Scheduled _) -> ()
  | _ -> Alcotest.fail "daemon no longer schedules"

(* ------------------------------------------------------------------ *)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_frame_roundtrip;
    ("wire: malformed frames rejected", `Quick, test_malformed_frames);
    ("wire: request roundtrip", `Quick, test_request_roundtrip);
    QCheck_alcotest.to_alcotest prop_lru_model;
    ("lru: eviction order and counters", `Quick, test_lru_eviction_counts);
    ("tiers: cold storm coalesces", `Slow, test_tiers_cold_storm_coalesces);
    ("tiers: malformed loop refused", `Quick, test_tiers_rejects_malformed_loop);
    ("tiers: jobs=1 equals jobs=4", `Slow, test_tiers_jobs_identical);
    ("pool: deadline await", `Quick, test_pool_deadline);
    ("daemon: loopback roundtrip", `Slow, test_daemon_roundtrip);
    ("daemon: concurrent clients coalesce", `Slow, test_daemon_concurrent_clients);
    ("daemon: survives malformed frames", `Slow, test_daemon_survives_malformed);
  ]

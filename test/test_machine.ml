(* Tests for the machine description: capacities, RF organizations and
   their notation, latencies and processor configurations. *)

open Hcrf_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Cap *)

let test_cap () =
  check "fits finite" true (Cap.fits 4 (Cap.Finite 4));
  check "exceeds finite" true (Cap.exceeds 5 (Cap.Finite 4));
  check "inf fits anything" true (Cap.fits max_int Cap.Inf);
  check "min finite inf" true (Cap.equal (Cap.min Cap.Inf (Cap.Finite 3)) (Cap.Finite 3));
  check_int "to_int_exn" 7 (Cap.to_int_exn (Cap.Finite 7));
  Alcotest.check_raises "to_int_exn on inf"
    (Invalid_argument "Cap.to_int_exn: unbounded capacity") (fun () ->
      ignore (Cap.to_int_exn Cap.Inf));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Cap.of_int: negative capacity") (fun () ->
      ignore (Cap.of_int (-1)))

(* ------------------------------------------------------------------ *)
(* Rf notation *)

let test_rf_notation_print () =
  check_str "monolithic" "S128" (Rf.notation (Rf.monolithic 128));
  check_str "clustered" "4C32"
    (Rf.notation (Rf.clustered ~clusters:4 ~regs_per_bank:32 ()));
  check_str "hierarchical" "2C32S64"
    (Rf.notation
       (Rf.hierarchical ~clusters:2 ~regs_per_bank:32 ~shared_regs:64 ()))

let test_rf_notation_parse () =
  List.iter
    (fun s -> check_str ("round trip " ^ s) s (Rf.notation (Rf.of_notation s)))
    [ "S128"; "S64"; "S32"; "2C64"; "4C32"; "1C64S32"; "2C32S32"; "8C16S16";
      "Sinf"; "4CinfSinf" ]

let test_rf_notation_rejects () =
  List.iter
    (fun s ->
      check ("rejects " ^ s) true
        (try
           ignore (Rf.of_notation s);
           false
         with Failure _ -> true))
    [ "X128"; "C32"; "4C"; "S"; "0C32"; "fooS12" ]

(* ------------------------------------------------------------------ *)
(* Generalized notation: access-port groups and the third level *)

let acc pr pw = Rf.access ~pr:(Cap.Finite pr) ~pw:(Cap.Finite pw)

let test_rf_notation_print_generalized () =
  check_str "monolithic access" "S64@r4w2"
    (Rf.notation (Rf.monolithic ~access:(acc 4 2) 64));
  check_str "clustered access" "4C32@r3w2"
    (Rf.notation
       (Rf.clustered ~access:(acc 3 2) ~clusters:4 ~regs_per_bank:32 ()));
  check_str "hierarchical local access" "4C16S16@r2w1"
    (Rf.notation
       (Rf.hierarchical ~local_access:(acc 2 1) ~clusters:4 ~regs_per_bank:16
          ~shared_regs:16 ()));
  check_str "shared access" "2C32S32@Sr4w2"
    (Rf.notation
       (Rf.hierarchical ~shared_access:(acc 4 2) ~clusters:2 ~regs_per_bank:32
          ~shared_regs:32 ()));
  check_str "third level, default ports" "4C16S16-L3:64"
    (Rf.notation
       (Rf.hierarchical ~l3:(Rf.level3 64) ~clusters:4 ~regs_per_bank:16
          ~shared_regs:16 ()));
  check_str "third level, explicit ports" "4C16S16-L3:64l2s2"
    (Rf.notation
       (Rf.hierarchical
          ~l3:(Rf.level3 ~lp:(Cap.Finite 2) ~sp:(Cap.Finite 2) 64)
          ~clusters:4 ~regs_per_bank:16 ~shared_regs:16 ()));
  check_str "the issue's example" "4C16S16-L3:64@r2w1"
    (Rf.notation
       (Rf.hierarchical ~l3:(Rf.level3 64) ~local_access:(acc 2 1) ~clusters:4
          ~regs_per_bank:16 ~shared_regs:16 ()))

let test_rf_notation_parse_generalized () =
  List.iter
    (fun s -> check_str ("round trip " ^ s) s (Rf.notation (Rf.of_notation s)))
    [ "S64@r4w2"; "4C32@r3w2"; "4C16S16@r2w1"; "2C32S32@Sr4w2";
      "4C16S16@rinfw1"; "4C16S16-L3:64"; "4C16S16-L3:inf";
      "4C16S16-L3:64l2s2"; "4C16S16-L3:64@r2w1";
      "4C16S16-L3:64l2s2@r2w1@Sr4w2@Tr2w1" ]

let test_rf_notation_rejects_generalized () =
  List.iter
    (fun s ->
      check ("rejects " ^ s) true
        (try
           ignore (Rf.of_notation s);
           false
         with Failure _ -> true))
    [ "S64@Sr2w1" (* shared group without a shared bank *);
      "4C32-L3:64" (* third level below a flat clustered RF *);
      "4C16S16@Tr2w1" (* L3 access group without an L3 segment *);
      "S64@r2" (* missing write count *);
      "S64@rw2" (* missing read count *);
      "4C16S16@r2w1@r2w1" (* duplicate group *);
      "4C16S16-L3:" (* empty L3 register count *);
      "4C16S16-L3:64l2" (* l without s *) ]

let test_rf_l3_capacities () =
  let t = Rf.of_notation "4C16S16-L3:64@r2w1" in
  check "l3 present" true (Rf.level3_of t <> None);
  check "l3 regs" true (Cap.equal (Rf.l3_regs t) (Cap.Finite 64));
  check "total includes l3" true
    (Cap.equal (Rf.total_regs t) (Cap.Finite 144));
  check "local access parsed" true
    (match Rf.local_access t with
    | Some a -> Rf.equal_access a (acc 2 1)
    | None -> false);
  let legacy = Rf.of_notation "4C16S16" in
  check "no l3 on legacy" true (Rf.level3_of legacy = None);
  check "l3_regs zero on legacy" true
    (Cap.equal (Rf.l3_regs legacy) (Cap.Finite 0));
  check "no access on legacy" true (Rf.local_access legacy = None)

(* Absent generalized fields leave the legacy notation untouched: the
   extended grammar is a strict superset. *)
let test_rf_legacy_notation_stable () =
  List.iter
    (fun s ->
      let t = Rf.of_notation s in
      check_str ("legacy " ^ s) s (Rf.notation t);
      check ("no @ in " ^ s) false (String.contains (Rf.notation t) '@'))
    [ "S128"; "4C32"; "2C32S32"; "8C16S16" ]

let cap_gen =
  QCheck.Gen.(
    frequency [ (5, map (fun n -> Cap.Finite n) (int_range 1 16));
                (1, return Cap.Inf) ])

let access_gen =
  QCheck.Gen.(
    opt (map2 (fun pr pw -> Rf.access ~pr ~pw) cap_gen cap_gen))

let generalized_rf_gen =
  QCheck.Gen.(
    let* shape = int_range 0 2 in
    match shape with
    | 0 ->
      let* regs = int_range 1 256 and* access = access_gen in
      return (Rf.monolithic ?access regs)
    | 1 ->
      let* clusters = int_range 2 8
      and* regs = int_range 1 128
      and* access = access_gen in
      return (Rf.clustered ?access ~clusters ~regs_per_bank:regs ())
    | _ ->
      let* clusters = int_range 1 8
      and* regs = int_range 1 128
      and* shared = int_range 1 256
      and* local_access = access_gen
      and* shared_access = access_gen
      and* l3 =
        opt
          (let* l3_regs = int_range 1 256
           and* lp = cap_gen
           and* sp = cap_gen
           and* access = access_gen in
           return (Rf.level3 ~lp ~sp ?access l3_regs))
      in
      return
        (Rf.hierarchical ?local_access ?shared_access ?l3 ~clusters
           ~regs_per_bank:regs ~shared_regs:shared ()))

let prop_generalized_roundtrip =
  QCheck.Test.make ~name:"generalized rf notation round-trips" ~count:500
    (QCheck.make ~print:Rf.notation generalized_rf_gen)
    (fun rf -> Rf.equal rf (Rf.of_notation (Rf.notation rf)))

let test_rf_capacities () =
  let h = Rf.of_notation "4C16S64" in
  check "local regs" true (Cap.equal (Rf.local_regs h) (Cap.Finite 16));
  check "shared regs" true (Cap.equal (Rf.shared_regs h) (Cap.Finite 64));
  check "total" true (Cap.equal (Rf.total_regs h) (Cap.Finite 128));
  check_int "clusters" 4 (Rf.clusters h);
  check "hierarchical" true (Rf.is_hierarchical h);
  check "clustered too" true (Rf.is_clustered h);
  let m = Rf.monolithic 64 in
  check "monolithic not clustered" false (Rf.is_clustered m);
  check "monolithic total" true (Cap.equal (Rf.total_regs m) (Cap.Finite 64));
  let c = Rf.clustered ~clusters:2 ~regs_per_bank:32 () in
  check "clustered total" true (Cap.equal (Rf.total_regs c) (Cap.Finite 64));
  check "flat cluster is not hierarchical" false (Rf.is_hierarchical c)

let test_rf_clustered_needs_two () =
  Alcotest.check_raises "1-cluster flat RF rejected"
    (Invalid_argument "Rf.clustered: needs >= 2 clusters") (fun () ->
      ignore (Rf.clustered ~clusters:1 ~regs_per_bank:32 ()))

(* ------------------------------------------------------------------ *)
(* Latencies *)

let test_latencies_baseline () =
  let l = Latencies.baseline in
  check_int "fadd" 4 (Latencies.of_kind l Hcrf_ir.Op.Fadd);
  check_int "fdiv" 17 (Latencies.of_kind l Hcrf_ir.Op.Fdiv);
  check_int "fsqrt" 30 (Latencies.of_kind l Hcrf_ir.Op.Fsqrt);
  check_int "load" 2 (Latencies.of_kind l Hcrf_ir.Op.Load);
  check_int "store" 1 (Latencies.of_kind l Hcrf_ir.Op.Store);
  check_int "spill load = load" 2 (Latencies.of_kind l Hcrf_ir.Op.Spill_load);
  check "div not pipelined" false (Latencies.pipelined Hcrf_ir.Op.Fdiv);
  check "sqrt not pipelined" false (Latencies.pipelined Hcrf_ir.Op.Fsqrt);
  check "add pipelined" true (Latencies.pipelined Hcrf_ir.Op.Fadd);
  check "load pipelined" true (Latencies.pipelined Hcrf_ir.Op.Load)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_defaults () =
  let c = Config.make (Rf.monolithic 128) in
  check_int "8 FUs" 8 c.Config.n_fus;
  check_int "4 mem ports" 4 c.Config.n_mem_ports;
  check_int "1 cluster" 1 (Config.clusters c);
  check_int "8 fus per cluster" 8 (Config.fus_per_cluster c);
  check_str "auto name" "S128" c.Config.name

let test_config_distribution () =
  let c = Config.make (Rf.of_notation "4C32") in
  check_int "2 fus per cluster" 2 (Config.fus_per_cluster c);
  check_int "1 mem port per cluster" 1 (Config.mem_ports_per_cluster c);
  let h = Config.make (Rf.of_notation "8C16S16") in
  check_int "1 fu per cluster" 1 (Config.fus_per_cluster h);
  (* hierarchical: memory ports are global *)
  check_int "4 global mem ports" 4 (Config.mem_ports_per_cluster h)

let test_config_rejects_indivisible () =
  check "3 clusters of 8 FUs rejected" true
    (try
       ignore
         (Config.make
            (Rf.hierarchical ~clusters:3 ~regs_per_bank:16 ~shared_regs:32 ()));
       false
     with Invalid_argument _ -> true);
  (* 8 flat clusters with 4 memory ports is impossible (the paper's
     motivation for the hierarchy) *)
  check "8 flat clusters rejected" true
    (try
       ignore (Config.make (Rf.clustered ~clusters:8 ~regs_per_bank:16 ()));
       false
     with Invalid_argument _ -> true);
  (* ... but 8 hierarchical clusters are fine *)
  check "8 hierarchical clusters ok" true
    (try
       ignore
         (Config.make
            (Rf.hierarchical ~clusters:8 ~regs_per_bank:16 ~shared_regs:16 ()));
       true
     with Invalid_argument _ -> false)

let test_config_miss_cycles () =
  let c = Config.make ~cycle_ns:1.0 (Rf.monolithic 64) in
  check_int "10ns at 1ns clock" 10 (Config.miss_cycles c);
  let f = Config.make ~cycle_ns:0.389 (Rf.monolithic 64) in
  check_int "10ns at 0.389ns clock" 26 (Config.miss_cycles f)

let prop_notation_roundtrip =
  QCheck.Test.make ~name:"rf notation round-trips" ~count:200
    QCheck.(
      triple (int_range 1 8) (int_range 1 512) (option (int_range 1 512)))
    (fun (x, y, z) ->
      QCheck.assume (z <> None || x >= 2);
      let rf =
        match z with
        | None ->
          if x = 1 then Rf.monolithic y
          else Rf.clustered ~clusters:x ~regs_per_bank:y ()
        | Some z ->
          Rf.hierarchical ~clusters:x ~regs_per_bank:y ~shared_regs:z ()
      in
      Rf.equal rf (Rf.of_notation (Rf.notation rf)))

let tests =
  [
    ("cap: operations", `Quick, test_cap);
    ("rf: notation print", `Quick, test_rf_notation_print);
    ("rf: notation parse", `Quick, test_rf_notation_parse);
    ("rf: notation rejects", `Quick, test_rf_notation_rejects);
    ("rf: generalized notation print", `Quick,
     test_rf_notation_print_generalized);
    ("rf: generalized notation parse", `Quick,
     test_rf_notation_parse_generalized);
    ("rf: generalized notation rejects", `Quick,
     test_rf_notation_rejects_generalized);
    ("rf: third-level capacities", `Quick, test_rf_l3_capacities);
    ("rf: legacy notation stable", `Quick, test_rf_legacy_notation_stable);
    ("rf: capacities", `Quick, test_rf_capacities);
    ("rf: clustered needs two", `Quick, test_rf_clustered_needs_two);
    ("latencies: baseline", `Quick, test_latencies_baseline);
    ("config: defaults", `Quick, test_config_defaults);
    ("config: distribution", `Quick, test_config_distribution);
    ("config: indivisible", `Quick, test_config_rejects_indivisible);
    ("config: miss cycles", `Quick, test_config_miss_cycles);
    QCheck_alcotest.to_alcotest prop_notation_roundtrip;
    QCheck_alcotest.to_alcotest prop_generalized_roundtrip;
  ]

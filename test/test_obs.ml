(* Tests for the hcrf_obs tracing subsystem: counter semantics, the
   versioned JSONL schema (emission and strict validation), determinism
   of the Counters sink across job counts and cache states, purity of
   the null sink, byte-equivalence of the staged pipeline against plain
   suite evaluation, and the HCRF_* environment parser. *)

open Hcrf_eval
open Hcrf_obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* one of each event kind, in a fixed order *)
let all_events =
  [
    Event.II_try 7;
    Event.Place { node = 3; cycle = 12; cluster = 1 };
    Event.Place { node = 4; cycle = 0; cluster = -1 };
    Event.Eject { node = 3 };
    Event.Spill_insert { kind = Event.Value; inserted = 2 };
    Event.Spill_insert { kind = Event.Invariant; inserted = 1 };
    Event.Comm_insert Event.Store_r;
    Event.Comm_insert Event.Load_r;
    Event.Comm_insert Event.Move;
    Event.Regalloc_fail { bank = "cluster 0" };
    Event.Budget_escalate { rung = 2 };
    Event.Cache Event.Hit;
    Event.Cache Event.Miss;
    Event.Cache Event.Store;
    Event.Phase { phase = Event.Mii; ns = 1234 };
    Event.Phase { phase = Event.Exact; ns = 55 };
    Event.Fuzz Event.Pass;
    Event.Fuzz Event.Optimality;
    Event.Shrink { steps = 3 };
    Event.Exact_search { lb = 2; witness_ii = 2; steps = 901 };
    Event.Serve Event.Request;
    Event.Serve Event.Lru_hit;
    Event.Serve Event.Coalesced;
    Event.Incr { stage = Event.Sched; op = Event.Stage_hit; ns = 210 };
    Event.Incr { stage = Event.Extract; op = Event.Stage_miss; ns = 9 };
    Event.Incr { stage = Event.Frontend; op = Event.Stage_recompute; ns = 42 };
  ]

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counters_histogram () =
  let c = Counters.create () in
  Counters.add_all c all_events;
  Alcotest.(check (list (pair string int)))
    "sorted keys and derived magnitudes"
    [
      ("budget.escalate", 1);
      ("cache.hit", 1);
      ("cache.miss", 1);
      ("cache.store", 1);
      ("comm.load_r", 1);
      ("comm.move", 1);
      ("comm.store_r", 1);
      ("eject", 1);
      ("exact", 1);
      ("exact.steps", 901);
      ("fuzz.optimality", 1);
      ("fuzz.pass", 1);
      ("ii_try", 1);
      ("incr.extract.miss", 1);
      ("incr.frontend.recompute", 1);
      ("incr.sched.hit", 1);
      ("phase.exact", 1);
      ("phase.mii", 1);
      ("place", 2);
      ("regalloc.fail", 1);
      ("serve.coalesced", 1);
      ("serve.lru_hit", 1);
      ("serve.request", 1);
      ("shrink", 1);
      ("shrink.steps", 3);
      ("spill.invariant", 1);
      ("spill.invariant.nodes", 1);
      ("spill.value", 1);
      ("spill.value.nodes", 2);
    ]
    (Counters.counts c);
  (* derived .nodes/.steps magnitudes are not events *)
  check_int "total events" (List.length all_events) (Counters.total_events c);
  Alcotest.(check (list (pair string int)))
    "phase and stage wall-clock lands in timings, not counts"
    [
      ("incr.extract.miss", 9);
      ("incr.frontend.recompute", 42);
      ("incr.sched.hit", 210);
      ("phase.exact", 55);
      ("phase.mii", 1234);
    ]
    (Counters.timings c);
  let c' = Counters.create () in
  Counters.add_all c' all_events;
  check "equal counts" true (Counters.equal_counts c c');
  (* timings are excluded from the equality contract *)
  Counters.add c' (Event.Phase { phase = Event.Mii; ns = 9999 });
  check "extra span breaks nothing but another count does" false
    (Counters.equal_counts c c');
  Alcotest.(check string)
    "pp is sorted key=value"
    "budget.escalate=1 cache.hit=1 cache.miss=1 cache.store=1 comm.load_r=1 \
     comm.move=1 comm.store_r=1 eject=1 exact=1 exact.steps=901 \
     fuzz.optimality=1 fuzz.pass=1 ii_try=1 incr.extract.miss=1 \
     incr.frontend.recompute=1 incr.sched.hit=1 phase.exact=1 phase.mii=1 \
     place=2 regalloc.fail=1 serve.coalesced=1 serve.lru_hit=1 \
     serve.request=1 shrink=1 shrink.steps=3 spill.invariant=1 \
     spill.invariant.nodes=1 spill.value=1 spill.value.nodes=2"
    (Fmt.str "%a" Counters.pp c)

(* ------------------------------------------------------------------ *)
(* JSONL: golden schema *)

let golden_lines =
  [
    {|{"loop":"k1","ev":"ii_try","ii":7}|};
    {|{"loop":"k1","ev":"place","node":3,"cycle":12,"cluster":1}|};
    {|{"loop":"k1","ev":"place","node":4,"cycle":0,"cluster":-1}|};
    {|{"loop":"k1","ev":"eject","node":3}|};
    {|{"loop":"k1","ev":"spill_insert","kind":"value","inserted":2}|};
    {|{"loop":"k1","ev":"spill_insert","kind":"invariant","inserted":1}|};
    {|{"loop":"k1","ev":"comm_insert","kind":"store_r"}|};
    {|{"loop":"k1","ev":"comm_insert","kind":"load_r"}|};
    {|{"loop":"k1","ev":"comm_insert","kind":"move"}|};
    {|{"loop":"k1","ev":"regalloc_fail","bank":"cluster 0"}|};
    {|{"loop":"k1","ev":"budget_escalate","rung":2}|};
    {|{"loop":"k1","ev":"cache","op":"hit"}|};
    {|{"loop":"k1","ev":"cache","op":"miss"}|};
    {|{"loop":"k1","ev":"cache","op":"store"}|};
    {|{"loop":"k1","ev":"phase","phase":"mii","ns":1234}|};
    {|{"loop":"k1","ev":"phase","phase":"exact","ns":55}|};
    {|{"loop":"k1","ev":"fuzz","verdict":"pass"}|};
    {|{"loop":"k1","ev":"fuzz","verdict":"optimality"}|};
    {|{"loop":"k1","ev":"shrink","steps":3}|};
    {|{"loop":"k1","ev":"exact_search","lb":2,"witness_ii":2,"steps":901}|};
    {|{"loop":"k1","ev":"serve","op":"request"}|};
    {|{"loop":"k1","ev":"serve","op":"lru_hit"}|};
    {|{"loop":"k1","ev":"serve","op":"coalesced"}|};
    {|{"loop":"k1","ev":"incr","stage":"sched","op":"hit","ns":210}|};
    {|{"loop":"k1","ev":"incr","stage":"extract","op":"miss","ns":9}|};
    {|{"loop":"k1","ev":"incr","stage":"frontend","op":"recompute","ns":42}|};
  ]

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | l -> go (l :: acc)
      in
      go [])

let test_jsonl_golden () =
  check_str "header line is the versioned schema tag"
    {|{"schema":"hcrf-trace","version":1}|} Jsonl.header_line;
  List.iteri
    (fun i ev ->
      check_str
        (Fmt.str "golden line %d" i)
        (List.nth golden_lines i)
        (Jsonl.line_of_event ~label:"k1" ev))
    all_events;
  (* writer output = header + golden lines, and the reader accepts
     exactly that file *)
  let path = Filename.temp_file "hcrf-obs-test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let w = Jsonl.create path in
  List.iter (Jsonl.write w ~label:"k1") all_events;
  check_int "written counts events" (List.length all_events) (Jsonl.written w);
  Jsonl.close w;
  Alcotest.(check (list string))
    "file content is the golden file"
    (Jsonl.header_line :: golden_lines)
    (read_lines path);
  (match Jsonl.read_file path with
  | Error m -> Alcotest.failf "round-trip rejected: %s" m
  | Ok events ->
    check "round-trip preserves every event" true
      (events = List.map (fun ev -> ("k1", ev)) all_events));
  check "validate_file counts events" true
    (Jsonl.validate_file path = Ok (List.length all_events))

let test_jsonl_escaping () =
  let label = "we\"ird\\la\tbel" in
  let line = Jsonl.line_of_event ~label (Event.II_try 3) in
  match Jsonl.event_of_line line with
  | Error m -> Alcotest.failf "escaped label rejected: %s" m
  | Ok (l, ev) ->
    check_str "label round-trips through escaping" label l;
    check "event preserved" true (ev = Event.II_try 3)

let test_jsonl_rejects () =
  let bad =
    [
      ("truncated object", {|{"loop":"x","ev":"ii_try","ii":7|});
      ("missing field", {|{"loop":"x","ev":"ii_try"}|});
      ("extra field", {|{"loop":"x","ev":"ii_try","ii":7,"extra":1}|});
      ("wrong field type", {|{"loop":"x","ev":"ii_try","ii":"7"}|});
      ("unknown kind", {|{"loop":"x","ev":"warp","ii":7}|});
      ("missing loop", {|{"ev":"ii_try","ii":7}|});
      ("duplicate key", {|{"loop":"x","loop":"y","ev":"ii_try","ii":7}|});
      ("trailing garbage", {|{"loop":"x","ev":"ii_try","ii":7} oops|});
      ("bad enum value", {|{"loop":"x","ev":"cache","op":"evict"}|});
      ("nested value", {|{"loop":"x","ev":"ii_try","ii":{"v":7}}|});
      ("bad fuzz verdict", {|{"loop":"x","ev":"fuzz","verdict":"maybe"}|});
      ("bad phase name", {|{"loop":"x","ev":"phase","phase":"solve","ns":5}|});
      ( "exact_search missing field",
        {|{"loop":"x","ev":"exact_search","lb":2,"steps":9}|} );
      ( "exact_search extra field",
        {|{"loop":"x","ev":"exact_search","lb":2,"witness_ii":2,"steps":9,"sigmas":1}|}
      );
      ("bad serve op", {|{"loop":"x","ev":"serve","op":"warm"}|});
      ("serve extra field", {|{"loop":"x","ev":"serve","op":"request","n":1}|});
      ( "bad incr stage",
        {|{"loop":"x","ev":"incr","stage":"parse","op":"hit","ns":1}|} );
      ( "bad incr op",
        {|{"loop":"x","ev":"incr","stage":"sched","op":"warm","ns":1}|} );
      ( "incr missing ns",
        {|{"loop":"x","ev":"incr","stage":"sched","op":"hit"}|} );
    ]
  in
  List.iter
    (fun (what, line) ->
      check what true (Result.is_error (Jsonl.event_of_line line)))
    bad;
  (* a file whose header claims another version is rejected at line 1 *)
  let path = Filename.temp_file "hcrf-obs-test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc "{\"schema\":\"hcrf-trace\",\"version\":2}\n";
  output_string oc (List.hd golden_lines);
  output_char oc '\n';
  close_out oc;
  match Jsonl.read_file path with
  | Ok _ -> Alcotest.fail "future schema version accepted"
  | Error m ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    check "error names line 1" true (contains m ":1:")

(* ------------------------------------------------------------------ *)
(* Determinism of the Counters sink *)

let small_suite = lazy (Hcrf_workload.Suite.generate ~n:16 ())

(* run the suite under a fresh Counters tracer and hand the sink back *)
let counters_of_run ?cache ~jobs config loops =
  let c = Counters.create () in
  let tracer = Tracer.make [ Tracer.Counters c ] in
  let ctx = Runner.Ctx.make ?cache ~jobs ~tracer () in
  ignore (Runner.run_suite ~ctx config loops);
  c

let test_counters_jobs_deterministic () =
  let config = Hcrf_model.Presets.published "4C32S16" in
  let loops = Lazy.force small_suite in
  (* cold (uncached) engine events: identical at any job count *)
  let c1 = counters_of_run ~jobs:1 config loops in
  let c4 = counters_of_run ~jobs:4 config loops in
  check "cold: jobs=1 and jobs=4 count the same events" true
    (Counters.equal_counts c1 c4);
  check "the engine emitted something" true (Counters.total_events c1 > 0);
  check "placements were recorded" true
    (List.mem_assoc "place" (Counters.counts c1));
  (* warm cache: every lookup hits, again identically at any job count *)
  let cache = Hcrf_cache.Cache.create () in
  let ctx = Runner.Ctx.make ~cache () in
  ignore (Runner.run_suite ~ctx config loops);
  let w1 = counters_of_run ~cache ~jobs:1 config loops in
  let w4 = counters_of_run ~cache ~jobs:4 config loops in
  check "warm: jobs=1 and jobs=4 count the same events" true
    (Counters.equal_counts w1 w4);
  check_int "warm runs are pure cache hits"
    (List.length loops)
    (List.assoc "cache.hit" (Counters.counts w1));
  check "warm runs re-run no scheduler" false
    (List.mem_assoc "place" (Counters.counts w1))

(* The null tracer must not perturb results: aggregates of an untraced
   run, a null-traced run and a counter-traced run are byte-identical
   (scheduler wall-clock scrubbed — both sides are live runs). *)
let scrub (a : Metrics.aggregate) = { a with Metrics.sched_seconds = 0. }
let bytes_of a = Marshal.to_string (scrub a) []

let test_null_sink_purity () =
  let config = Hcrf_model.Presets.published "S64" in
  let loops = Lazy.force small_suite in
  let agg ctx =
    Runner.aggregate config (Runner.run_suite ~ctx config loops)
  in
  let untraced = agg (Runner.Ctx.make ()) in
  let null_traced = agg (Runner.Ctx.make ~tracer:Tracer.null ()) in
  let counter_traced =
    agg
      (Runner.Ctx.make
         ~tracer:(Tracer.make [ Tracer.Counters (Counters.create ()) ])
         ())
  in
  check "null tracer is the default" true
    (bytes_of untraced = bytes_of null_traced);
  check "counting changes no aggregate field" true
    (bytes_of untraced = bytes_of counter_traced)

(* ------------------------------------------------------------------ *)
(* JSONL traces across job counts: replay/merge equivalence *)

let test_jsonl_replay_merge () =
  let config = Hcrf_model.Presets.published "4C32" in
  let loops = Hcrf_workload.Suite.generate ~n:12 () in
  let traced_run jobs =
    let path = Filename.temp_file "hcrf-obs-replay" ".jsonl" in
    let c = Counters.create () in
    let tracer =
      Tracer.make [ Tracer.Counters c; Tracer.Jsonl (Jsonl.create path) ]
    in
    let ctx = Runner.Ctx.make ~jobs ~tracer () in
    ignore (Runner.run_suite ~ctx config loops);
    Tracer.close tracer;
    (path, c)
  in
  let path1, c1 = traced_run 1 in
  let path4, c4 = traced_run 4 in
  Fun.protect ~finally:(fun () -> Sys.remove path1; Sys.remove path4)
  @@ fun () ->
  check "live counters identical across job counts" true
    (Counters.equal_counts c1 c4);
  (* replaying the jobs=4 file reproduces the jobs=1 totals *)
  (match Jsonl.read_file path4 with
  | Error m -> Alcotest.failf "jobs=4 trace invalid: %s" m
  | Ok events ->
    let replayed = Counters.create () in
    Counters.add_all replayed (List.map snd events);
    check "jobs=4 file replays to the jobs=1 totals" true
      (Counters.equal_counts c1 replayed));
  (* input-order commits: the two files list the same events in the
     same order, phase spans (wall-clock payload) aside *)
  let deterministic path =
    match Jsonl.read_file path with
    | Error m -> Alcotest.failf "%s invalid: %s" path m
    | Ok events ->
      List.filter
        (fun (_, ev) -> match ev with Event.Phase _ -> false | _ -> true)
        events
  in
  check "event streams identical in input order" true
    (deterministic path1 = deterministic path4);
  check "validate counts every event" true
    (Jsonl.validate_file path1 = Ok (Counters.total_events c1))

(* ------------------------------------------------------------------ *)
(* Env: the HCRF_* parser *)

let test_env () =
  Unix.putenv "HCRF_LOOPS" "17";
  Alcotest.(check (option int)) "loops parses" (Some 17) (Env.loops ());
  Unix.putenv "HCRF_LOOPS" "2O0";
  Alcotest.(check (option int)) "typo'd loops ignored" None (Env.loops ());
  Unix.putenv "HCRF_JOBS" "3";
  check_int "jobs parses" 3 (Env.jobs ());
  Unix.putenv "HCRF_JOBS" "-1";
  check_int "non-positive jobs falls back" (Par.default_jobs ()) (Env.jobs ());
  Unix.putenv "HCRF_TRACE" "";
  check "empty trace = counters only" true (Env.trace () = Env.Counters_only);
  Unix.putenv "HCRF_TRACE" "/tmp/t.jsonl";
  check "trace file spec" true (Env.trace () = Env.File "/tmp/t.jsonl");
  let t = Env.tracer_of_spec Env.Counters_only in
  check "counters-only tracer has a counters sink" true
    (Tracer.counters t <> None);
  check "counters-only tracer has no file" true (Tracer.jsonl_path t = None);
  check "off spec is the null tracer" true
    (Tracer.is_null (Env.tracer_of_spec Env.Off));
  Unix.putenv "HCRF_INCR" "on";
  check "incr on = in-memory memo" true (Env.incr () = Env.Incr_memory);
  Unix.putenv "HCRF_INCR" "OFF";
  check "incr off (case-insensitive)" true (Env.incr () = Env.Incr_off);
  check "off spec yields no memo" true (Env.memo_of_spec Env.Incr_off = None);
  Unix.putenv "HCRF_INCR" "/tmp/hcrf-memo";
  check "incr dir spec" true (Env.incr () = Env.Incr_dir "/tmp/hcrf-memo");
  Unix.putenv "HCRF_INCR" "off";
  Unix.putenv "HCRF_CONFIG" "4C16S16-L3:64@r2w1";
  check "config parses the full extended grammar" true
    (match Env.config () with
    | Some c ->
      Hcrf_machine.Rf.notation c.Hcrf_machine.Config.rf
      = "4C16S16-L3:64@r2w1"
    | None -> false);
  Unix.putenv "HCRF_CONFIG" "4C16S16@rinfwinf";
  check "config canonicalizes the uniform encoding" true
    (match Env.config () with
    | Some c -> Hcrf_machine.Rf.notation c.Hcrf_machine.Config.rf = "4C16S16"
    | None -> false);
  Unix.putenv "HCRF_CONFIG" "4C16S16-L3:";
  check "malformed config ignored with a warning" true
    (Env.config () = None);
  Unix.putenv "HCRF_CONFIG" ""

(* ------------------------------------------------------------------ *)
(* run_pipeline degrades to run_suite when no memo is configured *)

let test_pipeline_matches_suite () =
  let config = Hcrf_model.Presets.published "S64" in
  let loops = Lazy.force small_suite in
  let scrub (p : Metrics.loop_perf) = { p with Metrics.sched_seconds = 0. } in
  let suite_perfs =
    Runner.run_suite ~ctx:(Runner.Ctx.make ~jobs:2 ()) config loops
    |> List.map (fun r -> scrub r.Runner.perf)
  in
  let pipeline_perfs, stats =
    Runner.run_pipeline ~ctx:(Runner.Ctx.make ~jobs:2 ()) config loops
  in
  let pipeline_perfs = List.filter_map (Option.map scrub) pipeline_perfs in
  check "run_pipeline perfs = run_suite perfs (scrubbed)" true
    (Marshal.to_string pipeline_perfs []
    = Marshal.to_string suite_perfs []);
  check_int "no memo: nothing hits the stage memo" 0
    Runner.(stats.memo_hits + stats.metric_hits);
  check_int "every distinct loop was computed" (List.length loops)
    Runner.(stats.computed + stats.coalesced)

(* ------------------------------------------------------------------ *)

let tests =
  [
    ("counters: histogram and keys", `Quick, test_counters_histogram);
    ("jsonl: golden schema", `Quick, test_jsonl_golden);
    ("jsonl: string escaping", `Quick, test_jsonl_escaping);
    ("jsonl: rejects malformed input", `Quick, test_jsonl_rejects);
    ( "tracer: counters deterministic (jobs, cache)", `Slow,
      test_counters_jobs_deterministic );
    ("tracer: null sink purity", `Slow, test_null_sink_purity);
    ("jsonl: replay/merge across jobs", `Slow, test_jsonl_replay_merge);
    ("env: HCRF_* parsing", `Quick, test_env);
    ("runner: pipeline matches suite", `Slow, test_pipeline_matches_suite);
  ]

(* Tests for the evaluation layer: classification, metrics, the suite
   runner, and smoke coverage of every experiment driver. *)

open Hcrf_sched
open Hcrf_eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_suite = lazy (Hcrf_workload.Suite.generate ~n:24 ())

(* ------------------------------------------------------------------ *)
(* Classify *)

let test_classify_cases () =
  let b ~fu ~mem ~comm ~rec_ = { Mii.fu; mem; comm; rec_ } in
  Alcotest.(check string)
    "mem bound" "MemPort"
    (Classify.name (Classify.of_bounds (b ~fu:2 ~mem:5 ~comm:1 ~rec_:1)));
  Alcotest.(check string)
    "rec bound" "Rec."
    (Classify.name (Classify.of_bounds (b ~fu:2 ~mem:3 ~comm:1 ~rec_:8)));
  Alcotest.(check string)
    "comm bound" "Com."
    (Classify.name (Classify.of_bounds (b ~fu:2 ~mem:3 ~comm:4 ~rec_:2)));
  Alcotest.(check string)
    "fu bound" "F.U."
    (Classify.name (Classify.of_bounds (b ~fu:6 ~mem:3 ~comm:1 ~rec_:2)));
  (* trivial loops default by memory presence *)
  Alcotest.(check string)
    "trivial with memory" "MemPort"
    (Classify.name (Classify.of_bounds (b ~fu:1 ~mem:1 ~comm:1 ~rec_:1)));
  Alcotest.(check string)
    "trivial without memory" "F.U."
    (Classify.name
       (Classify.of_bounds ~has_memory:false (b ~fu:1 ~mem:1 ~comm:1 ~rec_:1)))

let test_classify_kernels () =
  let config = Hcrf_model.Presets.published "S128" in
  let classify name =
    match
      Hcrf_core.Mirs_hc.schedule config
        (Hcrf_workload.Kernels.find name).Hcrf_ir.Loop.ddg
    with
    | Ok o -> Classify.name (Classify.of_outcome o)
    | Error _ -> "fail"
  in
  Alcotest.(check string) "dot is recurrence bound" "Rec." (classify "dot");
  Alcotest.(check string) "tridiag is recurrence bound" "Rec."
    (classify "tridiag");
  Alcotest.(check string) "vdiv is FU bound" "F.U." (classify "vdiv");
  Alcotest.(check string) "cmul is memory bound" "MemPort" (classify "cmul")

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_formula () =
  (* II * (N + (SC-1) * E) with N the total iteration count *)
  Alcotest.(check (float 0.001))
    "useful cycles" 1030.
    (Metrics.useful_cycles ~ii:10 ~sc:4 ~n:100 ~e:1);
  Alcotest.(check (float 0.001))
    "entries pay the fill" 1120.
    (Metrics.useful_cycles ~ii:10 ~sc:4 ~n:100 ~e:4)

let test_metrics_of_outcome () =
  let config = Hcrf_model.Presets.published "S128" in
  let l = Hcrf_workload.Kernels.find "daxpy" in
  match Hcrf_core.Mirs_hc.schedule config l.Hcrf_ir.Loop.ddg with
  | Error _ -> Alcotest.fail "schedule failed"
  | Ok o ->
    let p = Metrics.of_outcome l o in
    check_int "ii recorded" o.Engine.ii p.Metrics.ii;
    (* 3 memory refs, 1000 iterations, 50 entries *)
    Alcotest.(check (float 1.)) "traffic" 150000. p.Metrics.traffic;
    check "useful cycles positive" true (p.Metrics.useful_cycles > 0.)

let test_aggregate () =
  let config = Hcrf_model.Presets.published "S128" in
  let results = Runner.run_suite config (Lazy.force small_suite) in
  check_int "nothing dropped" 24 (List.length results);
  let a = Runner.aggregate config results in
  check_int "loops" 24 a.Metrics.loops;
  check "sum ii >= sum mii" true (a.Metrics.sum_ii >= a.Metrics.sum_mii);
  check "ipc in a sane range" true
    (Metrics.ipc a > 1. && Metrics.ipc a < 12.);
  let shares = List.map (fun (_, n, _) -> n) a.Metrics.bound_share in
  check_int "bound shares partition the loops" 24
    (List.fold_left ( + ) 0 shares)

let test_runner_real_memory () =
  let config = Hcrf_model.Presets.published "S64" in
  let loops = Lazy.force small_suite in
  let agg scenario =
    let ctx = Runner.Ctx.make ~scenario () in
    Runner.aggregate config (Runner.run_suite ~ctx config loops)
  in
  let ideal = agg Runner.Ideal in
  let real = agg (Runner.Real { prefetch = false }) in
  let pf = agg (Runner.Real { prefetch = true }) in
  check "ideal has no stalls" true (ideal.Metrics.stall = 0.);
  check "real memory stalls" true (real.Metrics.stall > 0.);
  check "prefetch reduces stalls" true
    (pf.Metrics.stall < real.Metrics.stall)

(* ------------------------------------------------------------------ *)
(* Par: the domain pool itself *)

let test_par_map_ordered () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in input order"
    (List.map (fun x -> x * x) xs)
    (Par.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (list int))
    "jobs=1 is plain map"
    (List.map (fun x -> x + 1) xs)
    (Par.map ~jobs:1 (fun x -> x + 1) xs);
  Alcotest.(check (list int))
    "more jobs than items"
    [ 0; 2 ]
    (Par.map ~jobs:8 (fun x -> 2 * x) [ 0; 1 ])

let test_par_exception_propagates () =
  (* a worker exception must reach the caller, not hang the pool *)
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      ignore
        (Par.map ~jobs:4
           (fun x -> if x = 37 then failwith "boom" else x)
           (List.init 100 Fun.id)))

(* The determinism invariant of the tentpole: any job count yields the
   same aggregate, byte for byte, as the serial path. *)
let test_parallel_determinism () =
  let loops = Hcrf_workload.Suite.generate ~n:50 () in
  let config = Hcrf_model.Presets.published "2C32S32" in
  List.iter
    (fun scenario ->
      let agg jobs =
        let ctx = Runner.Ctx.make ~scenario ~jobs () in
        Runner.aggregate config (Runner.run_suite ~ctx config loops)
      in
      let serial = agg 1 and par = agg 4 in
      Alcotest.(check string)
        "identical aggregate output"
        (Fmt.str "%a" (Metrics.pp_aggregate ?cache:None ?trace:None) serial)
        (Fmt.str "%a" (Metrics.pp_aggregate ?cache:None ?trace:None) par);
      check "identical cycles" true
        (serial.Metrics.exec_cycles = par.Metrics.exec_cycles);
      check "identical stall" true
        (serial.Metrics.stall = par.Metrics.stall);
      check "identical traffic" true
        (serial.Metrics.total_traffic = par.Metrics.total_traffic);
      check_int "identical sum ii" serial.Metrics.sum_ii par.Metrics.sum_ii;
      check "identical sched stats" true
        (serial.Metrics.sched = par.Metrics.sched))
    [ Runner.Ideal; Runner.Real { prefetch = true } ]

(* ------------------------------------------------------------------ *)
(* Experiment drivers (smoke on a small suite) *)

let test_figure1_shape () =
  let rows = Experiments.figure1 ~loops:(Lazy.force small_suite) () in
  check_int "five points" 5 (List.length rows);
  let ipcs = List.map snd rows in
  check "IPC grows with resources" true
    (List.nth ipcs 4 > List.nth ipcs 0);
  List.iter (fun i -> check "ipc positive" true (i > 0.)) ipcs

let test_table1_shape () =
  let rows = Experiments.table1 ~loops:(Lazy.force small_suite) () in
  check_int "three configs" 3 (List.length rows);
  List.iter
    (fun r ->
      let pct = List.fold_left (fun a (_, p, _) -> a +. p) 0. r.Experiments.t1_shares in
      check "shares sum to 100" true (abs_float (pct -. 100.) < 0.5))
    rows

let test_table4_consistent () =
  let t = Experiments.table4 ~loops:(Lazy.force small_suite) () in
  let n (a, _, _) = a in
  check_int "all loops accounted" 24
    (n t.Experiments.t4_better + n t.Experiments.t4_equal
   + n t.Experiments.t4_worse);
  let hc_of (_, _, hc) = hc and ni_of (_, ni, _) = ni in
  check "equal rows have equal sums" true
    (hc_of t.Experiments.t4_equal = ni_of t.Experiments.t4_equal);
  check "better rows favour mirs_hc" true
    (hc_of t.Experiments.t4_better <= ni_of t.Experiments.t4_better)

let test_figure4_monotone () =
  let rows = Experiments.figure4 ~loops:(Lazy.force small_suite) () in
  check_int "four cluster counts" 4 (List.length rows);
  List.iter
    (fun r ->
      (* a CDF is monotone and ends at 100% *)
      let rec mono = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      check "lp cdf monotone" true (mono r.Experiments.f4_lp_cdf);
      check "sp cdf monotone" true (mono r.Experiments.f4_sp_cdf);
      check "lp cdf reaches 100" true
        (snd (List.nth r.Experiments.f4_lp_cdf
                (List.length r.Experiments.f4_lp_cdf - 1))
        > 99.);
      check "needs at least one port" true
        (snd (List.hd r.Experiments.f4_lp_cdf) < 100.))
    rows;
  (* more clusters -> fewer LoadR ports needed per bank (the paper's §4
     design rule) *)
  let at_one r =
    snd (List.nth r.Experiments.f4_lp_cdf 1)
  in
  check "8 clusters less port-hungry than 1" true
    (at_one (List.nth rows 3) >= at_one (List.hd rows))

let test_table2_and_5 () =
  check_int "table2 rows" 3 (List.length (Experiments.table2 ()));
  check_int "table5 rows" 15 (List.length (Experiments.table5 ()))

let test_table6_shape () =
  let rows = Experiments.table6 ~loops:(Lazy.force small_suite) () in
  check_int "fifteen configs" 15 (List.length rows);
  let find n = List.find (fun r -> r.Experiments.p_config = n) rows in
  Alcotest.(check (float 0.0001))
    "S64 is the baseline" 1.0 (find "S64").Experiments.p_rel_time;
  (* headline claims: the monolithic S128 is slower than S64 (cycle
     time), and the best hierarchical-clustered organization beats the
     best flat-clustered one *)
  check "S128 slower than S64" true
    ((find "S128").Experiments.p_speedup < 1.0);
  let best_hier =
    List.fold_left max 0.
      (List.map
         (fun n -> (find n).Experiments.p_speedup)
         [ "4C32S16"; "8C32S16"; "8C16S16" ])
  in
  check "hierarchical clustering wins" true
    (best_hier > (find "4C32").Experiments.p_speedup);
  check "traffic minimal at S128" true
    ((find "S128").Experiments.p_traffic
    <= (find "S32").Experiments.p_traffic)

let tests =
  [
    ("classify: cases", `Quick, test_classify_cases);
    ("classify: kernels", `Quick, test_classify_kernels);
    ("metrics: formula", `Quick, test_metrics_formula);
    ("metrics: of outcome", `Quick, test_metrics_of_outcome);
    ("runner: aggregate", `Quick, test_aggregate);
    ("runner: real memory", `Slow, test_runner_real_memory);
    ("par: ordered map", `Quick, test_par_map_ordered);
    ("par: exception propagation", `Quick, test_par_exception_propagates);
    ("par: jobs=4 deterministic", `Slow, test_parallel_determinism);
    ("experiments: figure1", `Slow, test_figure1_shape);
    ("experiments: table1", `Slow, test_table1_shape);
    ("experiments: table4", `Slow, test_table4_consistent);
    ("experiments: figure4", `Slow, test_figure4_monotone);
    ("experiments: tables 2/5", `Quick, test_table2_and_5);
    ("experiments: table6", `Slow, test_table6_shape);
  ]

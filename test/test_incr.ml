(* Tests for the incremental pipeline (lib/incr + Runner.run_pipeline +
   Memo): the dirty-cone property (one edited kernel recomputes exactly
   its own four stages, everything else replays), byte-identity of
   incremental and cold evaluation at several job counts, the no-edit
   fixpoint, and stage-memo persistence (round-trip and corruption). *)

open Hcrf_eval
module Pipeline = Hcrf_incr.Pipeline
module Progs = Hcrf_incr.Progs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config = Hcrf_model.Presets.published "4C32"

let scrub perfs =
  List.map
    (Option.map (fun (p : Metrics.loop_perf) ->
         { p with Metrics.sched_seconds = 0. }))
    perfs

let bytes_of perfs = Marshal.to_string (scrub perfs) []

(* a pipeline with a fresh in-memory memo *)
let fresh_pipe ?(jobs = 1) () =
  let ctx = Runner.Ctx.make ~memo:(Memo.create ()) ~jobs () in
  Pipeline.create ~ctx config

(* cold evaluation of [prog]: fresh context, no memo, no cache *)
let cold_eval ?(jobs = 1) prog =
  let pipe = Pipeline.create ~ctx:(Runner.Ctx.make ~jobs ()) config in
  let perfs, _, _ = Pipeline.eval pipe prog in
  perfs

(* ------------------------------------------------------------------ *)
(* The dirty-cone property *)

let prop_dirty_cone =
  QCheck.Test.make ~name:"one edit dirties exactly its own cone" ~count:25
    QCheck.(pair (int_range 2 9) (pair (int_range 0 30) (int_range 1 4)))
    (fun (n, (kernel, round)) ->
      let kernel = kernel mod n in
      let pipe = fresh_pipe () in
      let prog = Progs.program ~n in
      let _ = Pipeline.eval pipe prog in
      let prog' = Progs.edit ~round ~kernel prog in
      let perfs, _, stats = Pipeline.eval pipe prog' in
      let s = stats.Pipeline.sched in
      (* the edited kernel recomputes frontend, extract, sched and
         metric; every other kernel replays all four stages *)
      stats.Pipeline.frontend_recomputed = 1
      && stats.Pipeline.frontend_hits = n - 1
      && s.Runner.computed = 1
      && s.Runner.memo_hits = n - 1
      && s.Runner.metric_hits = n - 1
      && s.Runner.dirty = [ (List.nth prog' kernel).Hcrf_frontend.Ast.name ]
      (* and the replayed results are byte-identical to a cold run *)
      && String.equal (bytes_of perfs) (bytes_of (cold_eval prog')))

(* an edit under a different engine configuration dirties the schedule
   stage of every kernel but replays every frontend/extract stage: the
   WL fingerprint is config-independent, the schedule key is not *)
let test_config_change_cone () =
  let n = 6 in
  let prog = Progs.program ~n in
  let memo = Memo.create () in
  let eval_with config jobs =
    let ctx = Runner.Ctx.make ~memo ~jobs () in
    let pipe = Pipeline.create ~ctx config in
    let _, _, stats = Pipeline.eval pipe prog in
    stats
  in
  let _ = eval_with config 1 in
  let stats = eval_with (Hcrf_model.Presets.published "S64") 1 in
  check_int "frontend replays across configs" n stats.Pipeline.frontend_hits;
  check_int "every schedule recomputes" n
    stats.Pipeline.sched.Runner.computed;
  check_int "no metric hit across configs" 0
    stats.Pipeline.sched.Runner.metric_hits

(* ------------------------------------------------------------------ *)
(* Golden edit script: incremental == cold, at jobs 1 and 4 *)

let run_session ~jobs =
  let pipe = fresh_pipe ~jobs () in
  let prog = ref (Progs.program ~n:12) in
  let _, _, cold = Pipeline.eval pipe !prog in
  let per_edit = ref [] in
  for round = 1 to 3 do
    prog := Progs.edit ~round ~kernel:(round * 7 mod 12) !prog;
    let perfs, _, stats = Pipeline.eval pipe !prog in
    per_edit := (perfs, stats) :: !per_edit
  done;
  (!prog, cold, List.rev !per_edit)

let strip_wall (s : Pipeline.eval_stats) = { s with Pipeline.wall_s = 0. }

let test_golden_session () =
  let prog1, cold1, edits1 = run_session ~jobs:1 in
  let prog4, cold4, edits4 = run_session ~jobs:4 in
  check "programs agree" true (prog1 = prog4);
  check "cold stats identical at jobs 1 and 4" true
    (strip_wall cold1 = strip_wall cold4);
  List.iter2
    (fun (p1, s1) (p4, s4) ->
      check "per-edit stats identical at jobs 1 and 4" true
        (strip_wall s1 = strip_wall s4);
      check "per-edit perfs byte-identical at jobs 1 and 4" true
        (String.equal (bytes_of p1) (bytes_of p4)))
    edits1 edits4;
  List.iteri
    (fun i ((_, s) : Metrics.loop_perf option list * Pipeline.eval_stats) ->
      check_int
        (Fmt.str "edit %d recomputes exactly one schedule" (i + 1))
        1 s.Pipeline.sched.Runner.computed)
    edits1;
  (* the final incremental metrics are byte-identical to a cold
     evaluation of the final program, serial and parallel alike *)
  let final1, _ = List.nth edits1 2 and final4, _ = List.nth edits4 2 in
  let cold_bytes = bytes_of (cold_eval ~jobs:1 prog1) in
  check "incremental bytes = cold bytes (jobs 1)" true
    (String.equal (bytes_of final1) cold_bytes);
  check "incremental bytes = cold bytes (jobs 4)" true
    (String.equal (bytes_of final4) cold_bytes)

let test_no_edit_fixpoint () =
  let pipe = fresh_pipe () in
  let prog = Progs.program ~n:8 in
  let perfs0, _, _ = Pipeline.eval pipe prog in
  let perfs1, _, stats = Pipeline.eval pipe prog in
  check_int "nothing recompiles" 0 stats.Pipeline.frontend_recomputed;
  check_int "nothing reschedules" 0 stats.Pipeline.sched.Runner.computed;
  check "no dirty loops" true (stats.Pipeline.sched.Runner.dirty = []);
  check_int "every metric replays" 8 stats.Pipeline.sched.Runner.metric_hits;
  check "replayed perfs byte-identical" true
    (String.equal (bytes_of perfs0) (bytes_of perfs1))

(* ------------------------------------------------------------------ *)
(* Persistence *)

let with_tmp_dir f =
  let dir = Filename.temp_file "hcrf-incr-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_memo_persistence () =
  with_tmp_dir @@ fun dir ->
  let prog = Progs.program ~n:5 in
  let saved =
    let memo = Memo.create ~dir () in
    let ctx = Runner.Ctx.make ~memo () in
    let _ = Pipeline.eval (Pipeline.create ~ctx config) prog in
    check "save succeeds" true (Memo.save memo);
    Memo.length memo
  in
  check "something was memoized" true (saved > 0);
  (* a second process: reload the memo and replay everything *)
  let memo = Memo.create ~dir () in
  check_int "reloaded table has every entry" saved (Memo.length memo);
  let ctx = Runner.Ctx.make ~memo () in
  let perfs, _, stats = Pipeline.eval (Pipeline.create ~ctx config) prog in
  check_int "warm start recompiles nothing" 0
    stats.Pipeline.frontend_recomputed;
  check_int "warm start reschedules nothing" 0
    stats.Pipeline.sched.Runner.computed;
  check "warm-start perfs = cold perfs" true
    (String.equal (bytes_of perfs) (bytes_of (cold_eval prog)))

let test_memo_corruption () =
  with_tmp_dir @@ fun dir ->
  let memo = Memo.create ~dir () in
  Memo.add memo ~stage:Hcrf_obs.Event.Sched "k"
    (Memo.Perf_v None);
  check "save succeeds" true (Memo.save memo);
  let path = Filename.concat dir "memo.v1" in
  let oc = open_out path in
  output_string oc "hcrf-memo 1\ngarbage follows the magic";
  close_out oc;
  let reloaded = Memo.create ~dir () in
  check_int "corrupt file discarded, empty memo" 0 (Memo.length reloaded);
  (* and truncating below the magic must not raise either *)
  let oc = open_out path in
  output_string oc "x";
  close_out oc;
  check_int "truncated file discarded" 0 (Memo.length (Memo.create ~dir ()))

(* ------------------------------------------------------------------ *)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_dirty_cone;
    ("config change dirties schedules only", `Quick, test_config_change_cone);
    ("golden 3-edit session, jobs 1 = jobs 4 = cold", `Slow,
     test_golden_session);
    ("no-edit evaluation is a fixpoint", `Quick, test_no_edit_fixpoint);
    ("memo persistence round-trip", `Quick, test_memo_persistence);
    ("memo corruption discarded with a warning", `Quick,
     test_memo_corruption);
  ]

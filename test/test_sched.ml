(* Unit tests for the scheduling substrate: MII bounds, HRMS ordering,
   the modulo reservation table, lifetimes, the priority queue and the
   rotating register allocator. *)

open Hcrf_ir
open Hcrf_machine
open Hcrf_sched

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let s128 = lazy (Hcrf_model.Presets.published "S128")
let kernel = Hcrf_workload.Kernels.find

(* ------------------------------------------------------------------ *)
(* Mii *)

let test_mii_daxpy () =
  let l = kernel "daxpy" in
  let b = Mii.bounds (Lazy.force s128) l.Loop.ddg in
  (* 2 compute ops / 8 FUs -> 1; 3 memory ops / 4 ports -> 1; acyclic *)
  check_int "fu bound" 1 b.Mii.fu;
  check_int "mem bound" 1 b.Mii.mem;
  check_int "rec bound" 1 b.Mii.rec_;
  check_int "mii" 1 (Mii.compute (Lazy.force s128) l.Loop.ddg)

let test_mii_dot_recurrence () =
  (* s += x*y: the accumulator add (latency 4, distance 1) gives
     RecMII 4 *)
  let l = kernel "dot" in
  let b = Mii.bounds (Lazy.force s128) l.Loop.ddg in
  check_int "rec bound" 4 b.Mii.rec_;
  check_int "mii" 4 (Mii.compute (Lazy.force s128) l.Loop.ddg)

let test_mii_tridiag_recurrence () =
  (* x[i] = d[i] - a[i]*x[i-1]: mul + sub in the circuit -> 8 *)
  let l = kernel "tridiag" in
  check_int "mii" 8 (Mii.compute (Lazy.force s128) l.Loop.ddg)

let test_mii_distance_divides () =
  (* a 2-op circuit with distance 2 has RecMII ceil(8/2) = 4 *)
  let g = Ddg.create () in
  let a = Ddg.add_node g Op.Fadd in
  let b = Ddg.add_node g Op.Fmul in
  Ddg.add_edge g ~dep:Dep.True a b;
  Ddg.add_edge g ~distance:2 ~dep:Dep.True b a;
  let lat = Latency.make (Lazy.force s128) in
  check_int "recmii" 4 (Mii.rec_mii lat g)

let test_mii_non_pipelined_div () =
  (* 17-cycle non-pipelined divides occupy their FU for 17 slots: two of
     them need ceil(34/8) = 5 cycles of FU issue bandwidth *)
  let g = Ddg.create () in
  ignore (Ddg.add_node g Op.Fdiv);
  ignore (Ddg.add_node g Op.Fdiv);
  let b = Mii.bounds (Lazy.force s128) g in
  check_int "fu bound counts occupancy" 5 b.Mii.fu

let test_mii_mem_ports () =
  let g = Ddg.create () in
  for _ = 1 to 9 do
    ignore (Ddg.add_node g Op.Load)
  done;
  let b = Mii.bounds (Lazy.force s128) g in
  check_int "9 loads on 4 ports" 3 b.Mii.mem

let test_mii_prefetch_raises_recmii () =
  (* scheduling the recurrence load with miss latency lengthens the
     memory-carried circuit *)
  let g = Ddg.create () in
  let l = Ddg.add_node g Op.Load in
  let a = Ddg.add_node g Op.Fadd in
  let st = Ddg.add_node g Op.Store in
  Ddg.add_edge g ~dep:Dep.True l a;
  Ddg.add_edge g ~dep:Dep.True a st;
  Ddg.add_edge g ~distance:1 ~dep:Dep.True st l;
  let config = Lazy.force s128 in
  let hit = Latency.make config in
  let miss = Latency.make ~override:(fun v -> if v = l then Some 10 else None) config in
  check_int "hit-scheduled recmii" 7 (Mii.rec_mii hit g);
  check_int "miss-scheduled recmii" 15 (Mii.rec_mii miss g)

(* ------------------------------------------------------------------ *)
(* Order *)

let test_order_is_permutation () =
  List.iter
    (fun (name, mk) ->
      let l = mk () in
      let order = Order.compute (Lazy.force s128) l.Loop.ddg in
      check (name ^ ": permutation") true
        (List.sort compare order = Ddg.nodes l.Loop.ddg))
    Hcrf_workload.Kernels.all

let test_order_recurrence_first () =
  (* nodes of the hardest recurrence come first *)
  let l = kernel "tridiag" in
  let order = Order.compute (Lazy.force s128) l.Loop.ddg in
  let g = l.Loop.ddg in
  let rec_nodes = List.concat (Scc.recurrences g) in
  let first = List.hd order in
  check "first ordered node is in the recurrence" true
    (List.mem first rec_nodes)

let test_order_asap_alap_bounds () =
  let l = kernel "fir5" in
  let lat = Latency.make (Lazy.force s128) in
  let asap, alap = Order.asap_alap lat l.Loop.ddg in
  List.iter
    (fun v ->
      check "asap <= alap" true (asap v <= alap v);
      check "asap >= 0" true (asap v >= 0))
    (Ddg.nodes l.Loop.ddg)

(* ------------------------------------------------------------------ *)
(* Mrt *)

let test_mrt_place_remove () =
  let config = Lazy.force s128 in
  let mrt = Mrt.create config ~ii:2 in
  let uses = [ (Topology.Mem 0, 1) ] in
  check "empty fits" true (Mrt.can_place mrt uses ~cycle:0);
  (* 4 memory ports: 4 placements at the same slot fit, the 5th not *)
  for n = 1 to 4 do
    Mrt.place mrt ~node:n uses ~cycle:0
  done;
  check "full slot rejects" false (Mrt.can_place mrt uses ~cycle:0);
  check "other slot fits" true (Mrt.can_place mrt uses ~cycle:1);
  check "wraps modulo ii" false (Mrt.can_place mrt uses ~cycle:2);
  Mrt.remove mrt ~node:3;
  check "freed after removal" true (Mrt.can_place mrt uses ~cycle:0);
  check_int "occupancy" 3 (Mrt.occupancy mrt (Topology.Mem 0) ~slot:0)

let test_mrt_non_pipelined_duration () =
  let config = Lazy.force s128 in
  let mrt = Mrt.create config ~ii:4 in
  (* a 17-cycle reservation covers every slot of ii=4 *)
  Mrt.place mrt ~node:1 [ (Topology.Fu 0, 17) ] ~cycle:0;
  for slot = 0 to 3 do
    check_int (Fmt.str "slot %d occupied" slot) 1
      (Mrt.occupancy mrt (Topology.Fu 0) ~slot)
  done;
  Mrt.remove mrt ~node:1;
  for slot = 0 to 3 do
    check_int (Fmt.str "slot %d freed" slot) 0
      (Mrt.occupancy mrt (Topology.Fu 0) ~slot)
  done

let test_mrt_conflicts () =
  let config = Hcrf_model.Presets.published "4C32" in
  let mrt = Mrt.create config ~ii:1 in
  let uses = [ (Topology.Mem 2, 1) ] in
  Mrt.place mrt ~node:7 uses ~cycle:0;
  check "slot full" false (Mrt.can_place mrt uses ~cycle:0);
  check "conflict names the occupant" true
    (Mrt.conflicts mrt uses ~cycle:0 = [ 7 ]);
  check "no conflict on other resource" true
    (Mrt.conflicts mrt [ (Topology.Mem 1, 1) ] ~cycle:0 = [])

let test_mrt_double_place_rejected () =
  let config = Lazy.force s128 in
  let mrt = Mrt.create config ~ii:2 in
  Mrt.place mrt ~node:1 [ (Topology.Fu 0, 1) ] ~cycle:0;
  check "double place raises" true
    (try
       Mrt.place mrt ~node:1 [ (Topology.Fu 0, 1) ] ~cycle:1;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue () =
  let q = Pqueue.create () in
  check "empty" true (Pqueue.is_empty q);
  Pqueue.push q ~priority:2.0 10;
  Pqueue.push q ~priority:1.0 20;
  Pqueue.push q ~priority:3.0 30;
  check_int "size" 3 (Pqueue.size q);
  check "mem" true (Pqueue.mem q 20);
  check "pop lowest priority first" true (Pqueue.pop q = Some 20);
  Pqueue.remove q 30;
  check "pop after remove" true (Pqueue.pop q = Some 10);
  check "drained" true (Pqueue.pop q = None)

(* ------------------------------------------------------------------ *)
(* Lifetimes (via a tiny hand schedule) *)

let test_lifetimes_pressure () =
  let config = Lazy.force s128 in
  let g = Ddg.create () in
  let a = Ddg.add_node g Op.Fadd in
  let b = Ddg.add_node g Op.Fadd in
  Ddg.add_edge g ~dep:Dep.True a b;
  let s = Schedule.create config ~ii:2 in
  Schedule.place s g a ~cycle:0 ~loc:(Topology.Cluster 0);
  Schedule.place s g b ~cycle:8 ~loc:(Topology.Cluster 0);
  let lts = Lifetimes.of_schedule s g in
  (* a's value is born at write-back (cycle 4) and read at cycle 8:
     span 4 over ii=2 -> 2 overlapping copies *)
  (match List.find_opt (fun (l : Lifetimes.lifetime) -> l.def = a) lts with
  | Some l ->
    check_int "birth at write-back" 4 l.Lifetimes.start;
    check_int "until last read" 8 l.Lifetimes.stop
  | None -> Alcotest.fail "missing lifetime");
  check_int "pressure counts overlapped copies" 2
    (Lifetimes.pressure ~ii:2 ~bank:(Topology.Local 0) lts);
  check_int "invariants add residents" 5
    (Lifetimes.pressure ~ii:2 ~bank:(Topology.Local 0)
       ~invariant_residents:3 lts)

let test_lifetimes_loop_carried_read () =
  let config = Lazy.force s128 in
  let g = Ddg.create () in
  let a = Ddg.add_node g Op.Fadd in
  Ddg.add_edge g ~distance:1 ~dep:Dep.True a a;
  let s = Schedule.create config ~ii:5 in
  Schedule.place s g a ~cycle:0 ~loc:(Topology.Cluster 0);
  match Lifetimes.of_schedule s g with
  | [ l ] ->
    (* read one iteration later: at cycle 0 + 1*5 *)
    check_int "loop-carried stop" 5 l.Lifetimes.stop;
    check_int "birth" 4 l.Lifetimes.start
  | _ -> Alcotest.fail "expected one lifetime"

(* ------------------------------------------------------------------ *)
(* Regalloc *)

let test_regalloc_simple () =
  let mk def start stop =
    { Lifetimes.def; bank = Topology.Local 0; start; stop }
  in
  (* two disjoint lifetimes share one register *)
  match
    Regalloc.allocate_bank ~ii:4 ~bank:(Topology.Local 0)
      ~capacity:(Cap.Finite 8)
      [ mk 0 0 2; mk 1 2 4 ]
  with
  | Some a -> check_int "one register" 1 a.Regalloc.registers_used
  | None -> Alcotest.fail "allocation failed"

let test_regalloc_overlap () =
  let mk def start stop =
    { Lifetimes.def; bank = Topology.Local 0; start; stop }
  in
  match
    Regalloc.allocate_bank ~ii:4 ~bank:(Topology.Local 0)
      ~capacity:(Cap.Finite 8)
      [ mk 0 0 3; mk 1 1 4; mk 2 2 5 ]
  with
  | Some a ->
    check "needs at least maxlives" true (a.Regalloc.registers_used >= 3)
  | None -> Alcotest.fail "allocation failed"

let test_regalloc_capacity () =
  let mk def start stop =
    { Lifetimes.def; bank = Topology.Local 0; start; stop }
  in
  check "over capacity fails" true
    (Regalloc.allocate_bank ~ii:2 ~bank:(Topology.Local 0)
       ~capacity:(Cap.Finite 1)
       [ mk 0 0 2; mk 1 0 2 ]
    = None)

let prop_regalloc_geq_maxlives =
  QCheck.Test.make ~name:"allocation uses >= MaxLives registers" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 12) (pair (int_range 0 20) (int_range 1 12)))
    (fun spans ->
      let ii = 4 in
      let lts =
        List.mapi
          (fun i (start, len) ->
            { Lifetimes.def = i; bank = Topology.Local 0; start;
              stop = start + len })
          spans
      in
      let maxlives = Lifetimes.pressure ~ii ~bank:(Topology.Local 0) lts in
      match
        Regalloc.allocate_bank ~ii ~bank:(Topology.Local 0) ~capacity:Cap.Inf
          lts
      with
      | Some a -> a.Regalloc.registers_used >= maxlives
      | None -> false)

let prop_mrt_place_remove_roundtrip =
  QCheck.Test.make ~name:"mrt place/remove restores occupancy" ~count:200
    QCheck.(
      pair (int_range 1 16)
        (small_list (pair (int_range 0 40) (int_range 1 20))))
    (fun (ii, reservations) ->
      let config = Lazy.force s128 in
      let mrt = Mrt.create config ~ii in
      List.iteri
        (fun node (cycle, dur) ->
          Mrt.place mrt ~node [ (Topology.Fu 0, dur) ] ~cycle)
        reservations;
      List.iteri (fun node _ -> Mrt.remove mrt ~node) reservations;
      let clean = ref true in
      for slot = 0 to ii - 1 do
        if Mrt.occupancy mrt (Topology.Fu 0) ~slot <> 0 then clean := false
      done;
      !clean)

let prop_pressure_monotone =
  (* removing lifetimes can only lower the requirement *)
  QCheck.Test.make ~name:"MaxLives is monotone in the lifetime set"
    ~count:200
    QCheck.(
      pair (int_range 1 12)
        (small_list (pair (int_range 0 30) (int_range 1 15))))
    (fun (ii, spans) ->
      let lts =
        List.mapi
          (fun i (start, len) ->
            { Lifetimes.def = i; bank = Topology.Local 0; start;
              stop = start + len })
          spans
      in
      let p = Lifetimes.pressure ~ii ~bank:(Topology.Local 0) lts in
      match lts with
      | [] -> p = 0
      | _ :: rest ->
        Lifetimes.pressure ~ii ~bank:(Topology.Local 0) rest <= p)

(* ------------------------------------------------------------------ *)
(* Determinism of the scheduling order sources (the engine replays a
   priority order; any hidden insertion-order dependence would make
   schedules irreproducible) *)

let prop_pqueue_tie_determinism =
  QCheck.Test.make
    ~name:"pqueue: equal-priority ties are insertion-order independent"
    ~count:200
    QCheck.(
      pair
        (list (pair (int_range 0 30) (int_range 0 3)))
        (int_range 0 1000))
    (fun (entries, salt) ->
      (* dedupe ids; tiny priority range -> plenty of ties *)
      let entries =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) entries
      in
      let drain l =
        let q = Pqueue.create () in
        List.iter
          (fun (id, p) -> Pqueue.push q ~priority:(float_of_int p) id)
          l;
        let rec go acc =
          match Pqueue.pop q with
          | None -> List.rev acc
          | Some v -> go (v :: acc)
        in
        go []
      in
      let perm =
        (* a deterministic salt-driven permutation of the insertions *)
        List.sort
          (fun (a, _) (b, _) ->
            compare (((a * 7919) + salt) mod 101, a)
              (((b * 7919) + salt) mod 101, b))
          entries
      in
      drain entries = drain perm)

let prop_order_deterministic =
  QCheck.Test.make
    ~name:"order: a permutation, stable across recomputation and copy"
    ~count:50
    QCheck.(int_range 0 30)
    (fun i ->
      let rng = Hcrf_workload.Rng.create ~seed:(0xABCD + (i * 7919)) in
      let loop = Hcrf_workload.Genloop.generate ~rng ~index:i () in
      let cfg = Lazy.force s128 in
      let o1 = Order.compute cfg loop.Loop.ddg in
      let o2 = Order.compute cfg (Ddg.copy loop.Loop.ddg) in
      o1 = o2 && List.sort compare o1 = Ddg.nodes loop.Loop.ddg)

(* ------------------------------------------------------------------ *)
(* Flat-core observational equivalence.

   The data-oriented reservation table (Mrt) and the incremental
   MaxLives tracker (Pressure) must be indistinguishable from the
   association-based reference (Mrt_ref) and the from-scratch
   recomputation (Lifetimes.of_schedule + pressure) on every operation
   sequence.  QCheck shrinks counterexamples; the seeded campaign below
   additionally pins 200 deterministic cases into the tier-1 gate. *)

let equiv_configs =
  lazy
    [
      Hcrf_model.Presets.published "S128";
      Hcrf_model.Presets.published "4C32";
      Hcrf_model.Presets.published "2C32S32";
    ]

(* One MRT trace: interleaved place/remove and conflict queries, every
   observation (can_place, is_placed, conflicts, occupancy) compared
   between the two implementations after each step. *)
let run_mrt_trace config ~ii cmds =
  let rs = Array.of_list (Topology.all_resources config) in
  let nr = Array.length rs in
  let m = Mrt.create config ~ii in
  let r = Mrt_ref.create config ~ii in
  let ok = ref true in
  let same b = if not b then ok := false in
  List.iter
    (fun (act, node, ri, cycle, dur) ->
      let uses = [ (rs.(ri mod nr), dur) ] in
      let uses =
        if (node + ri) mod 3 = 0 then
          (rs.((ri + 1) mod nr), ((dur * 7) mod 4) + 1) :: uses
        else uses
      in
      (match act mod 4 with
      | 0 | 1 ->
        let cm = Mrt.can_place m uses ~cycle in
        same (cm = Mrt_ref.can_place r uses ~cycle);
        if cm && not (Mrt.is_placed m node) then begin
          Mrt.place m ~node uses ~cycle;
          Mrt_ref.place r ~node uses ~cycle
        end
      | 2 ->
        Mrt.remove m ~node;
        Mrt_ref.remove r ~node
      | _ -> ());
      same (Mrt.is_placed m node = Mrt_ref.is_placed r node);
      same (Mrt.conflicts m uses ~cycle = Mrt_ref.conflicts r uses ~cycle);
      Array.iter
        (fun res ->
          for slot = 0 to ii - 1 do
            same (Mrt.occupancy m res ~slot = Mrt_ref.occupancy r res ~slot)
          done)
        rs)
    cmds;
  !ok

(* One Pressure trace: random place/eject steps (plus occasional graph
   rewiring, which must reach the tracker through the Ddg watcher) over
   a generated loop, comparing the incremental requirement and lifetime
   list against the from-scratch reference after every step.  Dirtiness
   is wired exactly as in the engine: the moved node and its operand
   producers on place/unplace, edge sources via the watcher. *)
let run_pressure_trace config ~seed ~index =
  let rng = Hcrf_workload.Rng.create ~seed in
  let loop = Hcrf_workload.Genloop.generate ~rng ~index () in
  let g = loop.Loop.ddg in
  let ii = 1 + Hcrf_workload.Rng.int rng 8 in
  let s = Schedule.create config ~ii in
  let press = Pressure.create s g in
  Ddg.set_watcher g (Some (fun u -> Pressure.mark press u));
  let nodes = Array.of_list (Ddg.nodes g) in
  let mark v =
    Pressure.mark press v;
    List.iter
      (fun (e : Ddg.edge) -> Pressure.mark press e.src)
      (Ddg.operands g v)
  in
  let banks =
    Topology.Shared
    :: List.init (Config.clusters config) (fun i -> Topology.Local i)
  in
  let ok = ref true in
  for _ = 1 to 60 do
    let v = nodes.(Hcrf_workload.Rng.int rng (Array.length nodes)) in
    (if Schedule.is_scheduled s v then begin
       mark v;
       Schedule.unplace s v
     end
     else
       let kind = Ddg.kind g v in
       match Topology.exec_locs config kind with
       | [] -> ()
       | locs ->
         let loc =
           List.nth locs (Hcrf_workload.Rng.int rng (List.length locs))
         in
         let cycle = Hcrf_workload.Rng.int rng 40 in
         if Schedule.can_place s g v ~cycle ~loc then begin
           Schedule.place s g v ~cycle ~loc;
           mark v
         end);
    (if Hcrf_workload.Rng.bool rng 0.1 then
       let v = nodes.(Hcrf_workload.Rng.int rng (Array.length nodes)) in
       match Ddg.succs g v with
       | e :: _ ->
         Ddg.remove_edge g e;
         Ddg.add_edge g ~distance:e.distance ~dep:e.dep e.src e.dst
       | [] -> ());
    let ref_lts = Lifetimes.of_schedule s g in
    if Pressure.lifetimes press <> ref_lts then ok := false;
    List.iter
      (fun bank ->
        if Pressure.pressure press ~bank <> Lifetimes.pressure ~ii ~bank ref_lts
        then ok := false)
      banks
  done;
  Ddg.set_watcher g None;
  !ok

let prop_mrt_flat_equiv_ref =
  QCheck.Test.make ~name:"mrt: flat table = reference on random op traces"
    ~count:200
    QCheck.(
      pair (int_range 1 10)
        (small_list
           (quad (int_range 0 7) (int_range 0 11) (int_range 0 40)
              (pair (int_range (-5) 30) (int_range 1 14)))))
    (fun (ii, cmds) ->
      let cmds = List.map (fun (a, n, r, (c, d)) -> (a, n, r, c, d)) cmds in
      List.for_all
        (fun config -> run_mrt_trace config ~ii cmds)
        (Lazy.force equiv_configs))

let prop_pressure_equiv_lifetimes =
  QCheck.Test.make
    ~name:"pressure: incremental = from-scratch on place/eject traces"
    ~count:60
    QCheck.(pair (int_range 0 1000) (int_range 0 30))
    (fun (seed, index) ->
      List.for_all
        (fun config -> run_pressure_trace config ~seed ~index)
        (Lazy.force equiv_configs))

module Pq_model = Set.Make (struct
  type t = float * int

  let compare = compare
end)

let prop_pqueue_set_model =
  QCheck.Test.make ~name:"pqueue: lazy-deletion heap = set model" ~count:200
    QCheck.(small_list (triple (int_range 0 4) (int_range 0 15) (int_range 0 9)))
    (fun ops ->
      let q = Pqueue.create () in
      let m = ref Pq_model.empty in
      let ok = ref true in
      List.iter
        (fun (act, node, p) ->
          let priority = float_of_int p /. 2. in
          (match act with
          | 0 | 1 ->
            Pqueue.push q ~priority node;
            m := Pq_model.add (priority, node) !m
          | 2 ->
            Pqueue.remove q node;
            m := Pq_model.filter (fun (_, v) -> v <> node) !m
          | _ -> (
            let expect =
              match Pq_model.min_elt_opt !m with
              | None -> None
              | Some ((_, v) as e) ->
                m := Pq_model.remove e !m;
                Some v
            in
            if Pqueue.pop q <> expect then ok := false));
          if Pqueue.size q <> Pq_model.cardinal !m then ok := false;
          if Pqueue.mem q node <> Pq_model.exists (fun (_, v) -> v = node) !m
          then ok := false)
        ops;
      !ok)

(* Minimized eject-victim witness (shrunk from the campaign's failure
   under a seeded oldest-occupant bug, campaign case 2): one single-slot
   resource filled to capacity, one conflicts query.  The reference
   names the MOST RECENTLY placed occupant — its occupant list is
   consed, so the head is the newest — and the flat table's stack top
   must agree.  A naive flat port reading the bottom of the stack
   (oldest occupant) passes every place/remove/occupancy check and only
   diverges here, which then changes every force-and-eject decision
   downstream. *)
let test_mrt_eject_victim_minimal () =
  let config = Lazy.force s128 in
  let uses = [ (Topology.Mem 0, 1) ] in
  let m = Mrt.create config ~ii:1 in
  let r = Mrt_ref.create config ~ii:1 in
  (* 4 memory ports: fill the only slot with nodes 1..4 *)
  for node = 1 to 4 do
    Mrt.place m ~node uses ~cycle:0;
    Mrt_ref.place r ~node uses ~cycle:0
  done;
  check "reference ejects the most recent" true
    (Mrt_ref.conflicts r uses ~cycle:0 = [ 4 ]);
  check "flat table agrees" true (Mrt.conflicts m uses ~cycle:0 = [ 4 ]);
  (* after ejecting the victim, the next-most-recent becomes the victim *)
  Mrt.remove m ~node:4;
  Mrt_ref.remove r ~node:4;
  Mrt.place m ~node:9 uses ~cycle:0;
  Mrt_ref.place r ~node:9 uses ~cycle:0;
  check "victim follows placement order, not id order" true
    (Mrt.conflicts m uses ~cycle:0 = [ 9 ]
    && Mrt_ref.conflicts r uses ~cycle:0 = [ 9 ])

(* The deterministic gate: 200 cases from seed 42, alternating the three
   organizations, exercising both equivalences.  Fails loudly with the
   case number so a regression is reproducible without QCheck's seed. *)
let test_flat_core_campaign () =
  let configs = Array.of_list (Lazy.force equiv_configs) in
  for case = 0 to 199 do
    let config = configs.(case mod Array.length configs) in
    let rng = Hcrf_workload.Rng.create ~seed:(42 + (case * 7919)) in
    let ii = 1 + Hcrf_workload.Rng.int rng 10 in
    let cmds =
      List.init
        (8 + Hcrf_workload.Rng.int rng 40)
        (fun _ ->
          ( Hcrf_workload.Rng.int rng 8,
            Hcrf_workload.Rng.int rng 12,
            Hcrf_workload.Rng.int rng 41,
            Hcrf_workload.Rng.range rng (-5) 30,
            1 + Hcrf_workload.Rng.int rng 14 ))
    in
    check (Fmt.str "case %d: mrt equivalence" case) true
      (run_mrt_trace config ~ii cmds);
    check
      (Fmt.str "case %d: pressure equivalence" case)
      true
      (run_pressure_trace config ~seed:(42 + case) ~index:(case mod 31))
  done

(* ------------------------------------------------------------------ *)
(* Validate.pp_issue: every constructor renders unambiguously *)

let test_pp_issue_golden () =
  let e = { Ddg.src = 3; dst = 7; dep = Dep.True; distance = 2 } in
  List.iter
    (fun (issue, expect) ->
      Alcotest.(check string)
        expect expect
        (Fmt.str "%a" Validate.pp_issue issue))
    [
      (Validate.Unscheduled 5, "node 5 not scheduled");
      ( Validate.Bad_location (4, Topology.Cluster 2),
        "node 4 at illegal location c2" );
      (Validate.Dependence_violated e, "dependence 3->7 (true,d2) violated");
      ( Validate.Resource_oversubscribed (Topology.Mem 1, 3, 5),
        "resource mem1 oversubscribed at slot 3 (5 reserved)" );
      ( Validate.Bank_mismatch (e, Topology.Local 0, Topology.Shared),
        "operand 3->7 defined in bank L0, read from bank S" );
      ( Validate.Over_capacity (Topology.Shared, 40, 32),
        "bank S: 40 live > 32 registers" );
      ( Validate.Allocation_failed (Topology.Local 3),
        "bank L3: rotating allocation failed" );
    ]

(* ------------------------------------------------------------------ *)
(* Generalized hierarchy: per-bank access ports *)

(* Back-compat invariant: the explicitly-uniform encoding ([@rinfwinf]
   on both levels) is the same machine as the legacy encoding — same
   config fingerprint, same cache keys, and byte-identical schedules and
   metrics, serial or parallel. *)
let test_uniform_ports_backcompat () =
  let open Hcrf_eval in
  let legacy = Hcrf_model.Presets.of_model (Rf.of_notation "4C16S16") in
  let uniform =
    Hcrf_model.Presets.of_model (Rf.of_notation "4C16S16@rinfwinf@Srinfwinf")
  in
  check "uniform rf canonicalizes to the legacy value" true
    (Rf.equal legacy.Config.rf uniform.Config.rf);
  check "config fingerprints equal" true
    (Hcrf_cache.Fingerprint.equal
       (Hcrf_cache.Fingerprint.of_config legacy)
       (Hcrf_cache.Fingerprint.of_config uniform));
  let loops = Hcrf_workload.Suite.generate ~n:10 () in
  List.iter
    (fun (l : Loop.t) ->
      let key c =
        Runner.cache_key ~scenario:Runner.Ideal
          ~opts:Engine.default_options c l
      in
      check
        (Fmt.str "cache key equal on %s" (Loop.name l))
        true
        (Hcrf_cache.Fingerprint.equal (key legacy) (key uniform)))
    loops;
  let digest config jobs =
    let ctx = Runner.Ctx.make ~jobs () in
    let rs = Runner.run_suite ~ctx config loops in
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    List.iter
      (fun (r : Runner.loop_result) ->
        Fmt.pf ppf "%s ii=%d@.%a@." (Loop.name r.Runner.loop)
          r.Runner.outcome.Engine.ii Schedule.pp
          r.Runner.outcome.Engine.schedule)
      rs;
    Metrics.pp_aggregate ppf (Runner.aggregate config rs);
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  let base = digest legacy 1 in
  Alcotest.(check string) "uniform encoding, jobs=1" base (digest uniform 1);
  Alcotest.(check string) "uniform encoding, jobs=4" base (digest uniform 4);
  Alcotest.(check string) "legacy encoding, jobs=4" base (digest legacy 4)

(* Port monotonicity at the reservation-table level: a placement
   sequence accepted under scarcer per-bank access ports is accepted
   verbatim under richer ports (and under the unconstrained legacy
   machine, whose banks own no port rows at all). *)
let prop_mrt_port_monotonicity =
  let configs =
    lazy
      (List.map
         (fun n -> Hcrf_model.Presets.of_model (Rf.of_notation n))
         [ "4C16S16@r2w1"; "4C16S16@r3w2"; "4C16S16" ])
  in
  QCheck.Test.make ~name:"mrt: scarcer-port acceptance implies richer"
    ~count:100
    QCheck.(pair (int_bound 100_000) (int_range 1 6))
    (fun (seed, ii) ->
      let configs = Lazy.force configs in
      let rng = Hcrf_workload.Rng.create ~seed in
      let mrts = List.map (fun c -> (c, Mrt.create c ~ii)) configs in
      let kinds =
        [| Op.Fadd; Op.Fmul; Op.Load; Op.Store; Op.Load_r; Op.Store_r |]
      in
      let ok = ref true in
      for node = 1 to 24 do
        let kind = kinds.(Hcrf_workload.Rng.int rng 6) in
        let cycle = Hcrf_workload.Rng.int rng (4 * ii) in
        let cluster = Hcrf_workload.Rng.int rng 4 in
        let probe (config, mrt) =
          let loc =
            match
              List.find_opt
                (Topology.equal_loc (Topology.Cluster cluster))
                (Topology.exec_locs config kind)
            with
            | Some loc -> Some loc
            | None -> (
              match Topology.exec_locs config kind with
              | loc :: _ -> Some loc
              | [] -> None)
          in
          Option.map
            (fun loc ->
              let src = Some (Topology.read_bank config kind loc) in
              let uses = Topology.uses config kind loc ~src in
              (Mrt.can_place mrt uses ~cycle, mrt, uses))
            loc
        in
        match List.map probe mrts with
        | [ Some (scarce, m1, u1); Some (rich, m2, u2); Some (inf, m3, u3) ]
          ->
          (* identical placement history in all three tables, so
             acceptance must be monotone in the port budget *)
          if scarce && not rich then ok := false;
          if rich && not inf then ok := false;
          (* only advance the state when every table accepts, keeping
             the three histories aligned for the next probe *)
          if scarce && rich && inf then begin
            Mrt.place m1 ~node u1 ~cycle;
            Mrt.place m2 ~node u2 ~cycle;
            Mrt.place m3 ~node u3 ~cycle
          end
        | _ -> ()
      done;
      !ok)

let tests =
  [
    ("mii: daxpy", `Quick, test_mii_daxpy);
    ("mii: dot recurrence", `Quick, test_mii_dot_recurrence);
    ("mii: tridiag recurrence", `Quick, test_mii_tridiag_recurrence);
    ("mii: distance divides", `Quick, test_mii_distance_divides);
    ("mii: non-pipelined div", `Quick, test_mii_non_pipelined_div);
    ("mii: memory ports", `Quick, test_mii_mem_ports);
    ("mii: prefetch raises recmii", `Quick, test_mii_prefetch_raises_recmii);
    ("order: permutation", `Quick, test_order_is_permutation);
    ("order: recurrence first", `Quick, test_order_recurrence_first);
    ("order: asap/alap", `Quick, test_order_asap_alap_bounds);
    ("mrt: place/remove", `Quick, test_mrt_place_remove);
    ("mrt: non-pipelined duration", `Quick, test_mrt_non_pipelined_duration);
    ("mrt: conflicts", `Quick, test_mrt_conflicts);
    ("mrt: double place", `Quick, test_mrt_double_place_rejected);
    ("pqueue: ordering", `Quick, test_pqueue);
    ("lifetimes: pressure", `Quick, test_lifetimes_pressure);
    ("lifetimes: loop carried", `Quick, test_lifetimes_loop_carried_read);
    ("regalloc: disjoint", `Quick, test_regalloc_simple);
    ("regalloc: overlap", `Quick, test_regalloc_overlap);
    ("regalloc: capacity", `Quick, test_regalloc_capacity);
    ("validate: pp_issue golden", `Quick, test_pp_issue_golden);
    ("mrt: eject-victim minimal witness", `Quick, test_mrt_eject_victim_minimal);
    ("flat core: 200-case seed-42 campaign", `Quick, test_flat_core_campaign);
    QCheck_alcotest.to_alcotest prop_mrt_flat_equiv_ref;
    QCheck_alcotest.to_alcotest prop_pressure_equiv_lifetimes;
    QCheck_alcotest.to_alcotest prop_pqueue_set_model;
    QCheck_alcotest.to_alcotest prop_regalloc_geq_maxlives;
    QCheck_alcotest.to_alcotest prop_mrt_place_remove_roundtrip;
    QCheck_alcotest.to_alcotest prop_pressure_monotone;
    QCheck_alcotest.to_alcotest prop_pqueue_tie_determinism;
    QCheck_alcotest.to_alcotest prop_order_deterministic;
    ("ports: uniform encoding back-compat", `Quick,
     test_uniform_ports_backcompat);
    QCheck_alcotest.to_alcotest prop_mrt_port_monotonicity;
  ]

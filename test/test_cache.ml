(* Tests for the content-addressed schedule cache: canonical
   fingerprints (renumbering/reordering invariance, single-field
   sensitivity), warm/cold byte-identity of suite aggregates, replay
   validity, and on-disk robustness. *)

open Hcrf_ir
open Hcrf_cache
open Hcrf_eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let hex = Fingerprint.to_hex

(* Deterministic random loops, straight from the workbench generator. *)
let gen_loop i =
  let rng = Hcrf_workload.Rng.create ~seed:(0x5EED + (7919 * i)) in
  Hcrf_workload.Genloop.generate ~rng ~index:i ()

let n_loops = 24
let loops = lazy (List.init n_loops gen_loop)
let nth_loop i = List.nth (Lazy.force loops) i

(* ------------------------------------------------------------------ *)
(* Fingerprint invariance *)

(* Renumber every node of a loop with [m] (a bijection on the id set)
   and reverse all adjacency/stream orders on the way, by rewriting the
   graph's serializable [repr]. *)
let rewrite_loop ~m (l : Loop.t) =
  let remap_edge (e : Ddg.edge) =
    { e with Ddg.src = m e.Ddg.src; dst = m e.Ddg.dst }
  in
  let r = Ddg.to_repr l.Loop.ddg in
  let r' =
    { r with
      Ddg.repr_nodes =
        List.rev_map
          (fun (id, k, succs, preds) ->
            ( m id, k,
              List.rev_map remap_edge succs,
              List.rev_map remap_edge preds ))
          r.Ddg.repr_nodes;
      repr_invariants =
        List.map
          (fun (iv, consumers) -> (iv, List.rev_map m consumers))
          r.Ddg.repr_invariants }
  in
  { l with
    Loop.ddg = Ddg.of_repr r';
    streams =
      List.rev_map (fun s -> { s with Loop.op = m s.Loop.op }) l.Loop.streams }

(* A non-trivial bijection: map the sorted id list onto its reverse. *)
let reversing_bijection g =
  let ids = Ddg.nodes g in
  let tbl = Hashtbl.create (List.length ids) in
  List.iter2 (Hashtbl.add tbl) ids (List.rev ids);
  Hashtbl.find tbl

let prop_renumbering_invariant =
  QCheck.Test.make ~name:"renumbered loops fingerprint equal"
    ~count:n_loops
    QCheck.(int_range 0 (n_loops - 1))
    (fun i ->
      let l = nth_loop i in
      let l' = rewrite_loop ~m:(reversing_bijection l.Loop.ddg) l in
      Fingerprint.equal (Fingerprint.of_loop l) (Fingerprint.of_loop l'))

let prop_reordering_invariant =
  QCheck.Test.make ~name:"edge/node-reordered loops fingerprint equal"
    ~count:n_loops
    QCheck.(int_range 0 (n_loops - 1))
    (fun i ->
      let l = nth_loop i in
      (* identity renumbering: only the list orders change *)
      let l' = rewrite_loop ~m:Fun.id l in
      Fingerprint.equal (Fingerprint.of_loop l) (Fingerprint.of_loop l'))

(* ------------------------------------------------------------------ *)
(* Fingerprint sensitivity: every single-field change must move it *)

let all_distinct names fps =
  let hexes = List.map hex fps in
  let sorted = List.sort_uniq String.compare hexes in
  Alcotest.(check int)
    (Fmt.str "all of [%s] hash distinct" (String.concat "; " names))
    (List.length hexes) (List.length sorted)

let test_loop_sensitivity () =
  let l = nth_loop 0 in
  let g = l.Loop.ddg in
  (* one dependence distance *)
  let bump_distance () =
    let g' = Ddg.copy g in
    let e = List.hd (Ddg.edges g') in
    Ddg.remove_edge g' e;
    Ddg.add_edge g' ~distance:(e.Ddg.distance + 1) ~dep:e.Ddg.dep e.Ddg.src
      e.Ddg.dst;
    { l with Loop.ddg = g' }
  in
  (* one opcode *)
  let flip_opcode () =
    let r = Ddg.to_repr g in
    let flipped = ref false in
    let r' =
      { r with
        Ddg.repr_nodes =
          List.map
            (fun (id, k, s, p) ->
              if !flipped then (id, k, s, p)
              else begin
                flipped := true;
                ((id, (if k = Op.Fadd then Op.Fmul else Op.Fadd), s, p))
              end)
            r.Ddg.repr_nodes }
    in
    { l with Loop.ddg = Ddg.of_repr r' }
  in
  (* one memory-stream base address *)
  let shift_stream () =
    match l.Loop.streams with
    | [] -> None
    | s :: rest ->
      Some { l with Loop.streams = { s with Loop.base = s.Loop.base + 8 } :: rest }
  in
  let variants =
    [ ("original", l); ("distance", bump_distance ());
      ("opcode", flip_opcode ());
      ("trip", { l with Loop.trip_count = l.Loop.trip_count + 1 });
      ("entries", { l with Loop.entries = l.Loop.entries + 1 }) ]
    @ (match shift_stream () with
      | Some l' -> [ ("stream-base", l') ]
      | None -> [])
  in
  all_distinct (List.map fst variants)
    (List.map (fun (_, l) -> Fingerprint.of_loop l) variants)

let test_config_sensitivity () =
  let open Hcrf_machine in
  let c = Hcrf_model.Presets.published "4C32S16" in
  let lat_bump =
    { c with
      Config.lats = { c.Config.lats with Latencies.fadd = c.Config.lats.Latencies.fadd + 1 } }
  in
  let variants =
    [ ("original", c);
      ("latency", lat_bump);
      ("regs", { c with Config.rf = Rf.of_notation "4C64S16" });
      ("shared-regs", { c with Config.rf = Rf.of_notation "4C32S32" });
      ("fus", { c with Config.n_fus = c.Config.n_fus + 4 });
      ("mem-ports", { c with Config.n_mem_ports = c.Config.n_mem_ports + 1 });
      ("clock", { c with Config.cycle_ns = c.Config.cycle_ns *. 1.5 });
      ("miss", { c with Config.miss_ns = c.Config.miss_ns +. 1. });
      (* the display name must NOT matter *)
    ]
  in
  all_distinct (List.map fst variants)
    (List.map (fun (_, c) -> Fingerprint.of_config c) variants);
  check "renaming a config does not change its fingerprint" true
    (Fingerprint.equal (Fingerprint.of_config c)
       (Fingerprint.of_config { c with Config.name = "renamed" }))

(* Every generalized port/level field must reach the config fingerprint
   on its own: two configurations differing in any single one of them
   can never alias in the schedule cache. *)
let test_generalized_config_sensitivity () =
  let open Hcrf_machine in
  let cfg n = { (Hcrf_model.Presets.published "4C32S16") with
                Config.rf = Rf.of_notation n } in
  let variants =
    [ ("legacy", cfg "4C32S16");
      ("local-access", cfg "4C32S16@r2w1");
      ("local-access-pr", cfg "4C32S16@r3w1");
      ("local-access-pw", cfg "4C32S16@r2w2");
      ("shared-access", cfg "4C32S16@Sr2w1");
      ("l3", cfg "4C32S16-L3:64");
      ("l3-regs", cfg "4C32S16-L3:128");
      ("l3-lp", cfg "4C32S16-L3:64l2s1");
      ("l3-sp", cfg "4C32S16-L3:64l1s2");
      ("l3-access", cfg "4C32S16-L3:64@Tr2w1");
      ("l3-access-pw", cfg "4C32S16-L3:64@Tr2w2");
      ("flat-access", cfg "4C32@r2w1");
      ("mono-access", cfg "S128@r2w1") ]
  in
  all_distinct (List.map fst variants)
    (List.map (fun (_, c) -> Fingerprint.of_config c) variants);
  (* ... while the fully unbounded constraint is canonically absent:
     the explicitly-uniform encoding keeps the legacy digest *)
  check "explicit @rinfwinf keeps the legacy fingerprint" true
    (Fingerprint.equal
       (Fingerprint.of_config (cfg "4C32S16"))
       (Fingerprint.of_config (cfg "4C32S16@rinfwinf")))

let test_options_sensitivity () =
  let open Hcrf_sched in
  let d = Engine.default_options in
  let variants =
    [ ("default", d);
      ("budget", { d with Engine.budget_ratio = d.Engine.budget_ratio + 1 });
      ("max-ii", { d with Engine.max_ii = Some 64 });
      ("backtracking", { d with Engine.backtracking = false });
      ("ordering", { d with Engine.ordering = `Topological }) ]
  in
  all_distinct (List.map fst variants)
    (List.map (fun (_, o) -> Fingerprint.of_options o) variants);
  (* load_override is only visible through an explicit probe *)
  let ov = { d with Engine.load_override = (fun _ -> Some 9) } in
  check "override invisible without probe" true
    (Fingerprint.equal (Fingerprint.of_options d) (Fingerprint.of_options ov));
  check "override visible at probed nodes" false
    (Fingerprint.equal
       (Fingerprint.of_options ~probe:[ 0; 1 ] d)
       (Fingerprint.of_options ~probe:[ 0; 1 ] ov))

(* ------------------------------------------------------------------ *)
(* Warm/cold byte-identity of suite aggregates *)

let presets = [ "S64"; "4C32"; "4C32S16" ]

(* [sched_seconds] is scheduler wall-clock: the only aggregate field
   that legitimately differs between two *live* runs.  Warm replays
   reuse the stored seconds, so warm runs must byte-match the cold
   populating run including it; against an independent uncached run we
   compare with the wall-clock scrubbed. *)
let scrub (a : Metrics.aggregate) = { a with Metrics.sched_seconds = 0. }
let bytes_of a = Marshal.to_string a []

let test_warm_cold_identical () =
  let suite = List.init 10 gen_loop in
  List.iter
    (fun name ->
      let config = Hcrf_model.Presets.published name in
      let uncached =
        Runner.aggregate config (Runner.run_suite config suite)
      in
      let cache = Cache.create () in
      let cached jobs =
        let ctx = Runner.Ctx.make ~cache ~jobs () in
        Runner.aggregate config (Runner.run_suite ~ctx config suite)
      in
      let cold = cached 1 in
      check (name ^ ": cold cached run equals the uncached run") true
        (String.equal (bytes_of (scrub uncached)) (bytes_of (scrub cold)));
      List.iter
        (fun jobs ->
          let warm = cached jobs in
          check
            (Fmt.str "%s jobs=%d: warm bytes equal the cold run" name jobs)
            true
            (String.equal (bytes_of cold) (bytes_of warm));
          check
            (Fmt.str "%s jobs=%d: printed aggregates identical" name jobs)
            true
            (String.equal
               (Fmt.str "%a"
                  (Metrics.pp_aggregate ?cache:None ?trace:None)
                  uncached)
               (Fmt.str "%a"
                  (Metrics.pp_aggregate ?cache:None ?trace:None)
                  warm)))
        [ 1; 4 ];
      let s = Cache.stats cache in
      check_int (name ^ ": one miss per loop") 10 s.Cache.misses;
      check_int (name ^ ": two warm passes hit") 20 s.Cache.hits)
    presets

let test_warm_cold_identical_real_memory () =
  (* the stall cycles of the memory simulation are cached too *)
  let suite = List.init 6 gen_loop in
  let config = Hcrf_model.Presets.published "4C32S16" in
  let scenario = Runner.Real { prefetch = false } in
  let uncached =
    let ctx = Runner.Ctx.make ~scenario () in
    Runner.aggregate config (Runner.run_suite ~ctx config suite)
  in
  let cache = Cache.create () in
  let run () =
    let ctx = Runner.Ctx.make ~scenario ~cache ~jobs:4 () in
    Runner.aggregate config (Runner.run_suite ~ctx config suite)
  in
  let cold = run () in
  let warm = run () in
  check "real-memory warm aggregate is byte-identical to cold" true
    (String.equal (bytes_of cold) (bytes_of warm));
  check "real-memory cached run equals the uncached run" true
    (String.equal (bytes_of (scrub uncached)) (bytes_of (scrub warm)));
  check "stall cycles survived the cache" true (warm.Metrics.stall > 0.)

(* ------------------------------------------------------------------ *)
(* Replayed outcomes are valid schedules *)

let prop_replay_validates =
  QCheck.Test.make ~name:"replayed outcomes pass Validate.check" ~count:12
    QCheck.(int_range 0 11)
    (fun i ->
      let l = nth_loop i in
      let config =
        Hcrf_model.Presets.published
          (List.nth presets (i mod List.length presets))
      in
      let cache = Cache.create () in
      let ctx = Runner.Ctx.make ~cache () in
      match Runner.run_loop ~ctx config l with
      | None -> QCheck.assume_fail () (* nothing cached to replay *)
      | Some _ -> (
        match Runner.run_loop ~ctx config l with
        | None -> false
        | Some r ->
          let o = r.Runner.outcome in
          (Cache.stats cache).Cache.hits = 1
          && Hcrf_sched.Validate.check
               ~invariant_residents:o.Hcrf_sched.Engine.invariant_residents
               o.Hcrf_sched.Engine.schedule o.Hcrf_sched.Engine.graph
             = []))

(* ------------------------------------------------------------------ *)
(* On-disk robustness *)

let temp_dir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "hcrf-cache-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* every entry file under [dir], shard subdirectories included *)
let entry_files dir =
  let rec walk d =
    Sys.readdir d |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun f ->
           let p = Filename.concat d f in
           if Sys.is_directory p then walk p
           else if Filename.check_suffix f ".hcrf" then [ p ]
           else [])
  in
  walk dir

let test_disk_roundtrip () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let l = nth_loop 0 in
  let config = Hcrf_model.Presets.published "4C32" in
  let c1 = Cache.create ~dir () in
  Alcotest.(check (option string)) "directory in use" (Some dir) (Cache.dir c1);
  let r1 = Runner.run_loop ~ctx:(Runner.Ctx.make ~cache:c1 ()) config l in
  check "scheduled" true (r1 <> None);
  check_int "one entry file on disk" 1 (List.length (entry_files dir));
  (* a fresh cache instance sees the entry through the store *)
  let c2 = Cache.create ~dir () in
  let r2 = Runner.run_loop ~ctx:(Runner.Ctx.make ~cache:c2 ()) config l in
  let s2 = Cache.stats c2 in
  check_int "disk hit" 1 s2.Cache.disk_hits;
  check_int "no recompute" 0 s2.Cache.misses;
  check "disk replay equals the live result" true
    (match (r1, r2) with
    | Some a, Some b ->
      String.equal
        (Marshal.to_string a.Runner.perf [])
        (Marshal.to_string b.Runner.perf [])
    | _ -> false)

let test_disk_corruption_recovers () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let l = nth_loop 1 in
  let config = Hcrf_model.Presets.published "4C32" in
  let fresh = Runner.run_loop config l in
  let populate () =
    let ctx = Runner.Ctx.make ~cache:(Cache.create ~dir ()) () in
    ignore (Runner.run_loop ~ctx config l)
  in
  let corrupt bytes =
    match entry_files dir with
    | [ f ] ->
      let oc = open_out_bin f in
      output_string oc bytes;
      close_out oc
    | files -> Alcotest.failf "expected 1 entry file, found %d" (List.length files)
  in
  List.iter
    (fun (what, bytes) ->
      populate ();
      corrupt bytes;
      let c = Cache.create ~dir () in
      let r = Runner.run_loop ~ctx:(Runner.Ctx.make ~cache:c ()) config l in
      let s = Cache.stats c in
      check (what ^ ": treated as a miss") true
        (s.Cache.misses = 1 && s.Cache.hits = 0);
      check (what ^ ": counted as a disk error") true (s.Cache.disk_errors >= 1);
      (* both sides are live computations, so scrub the wall-clock *)
      let scrub_perf (p : Metrics.loop_perf) =
        { p with Metrics.sched_seconds = 0. }
      in
      check (what ^ ": recomputed result matches the uncached one") true
        (match (fresh, r) with
        | Some a, Some b ->
          String.equal
            (Marshal.to_string (scrub_perf a.Runner.perf) [])
            (Marshal.to_string (scrub_perf b.Runner.perf) [])
        | _ -> false))
    [ ("truncated", "hcrf");
      ("garbage", "this is definitely not a cache entry\n");
      ("stale version", "hcrf-cache 0\n" ^ String.make 48 'x') ]

(* v3 layout: every new write lands in the shard subdirectory named by
   the leading hex nibble of its key. *)
let test_store_sharded_layout () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config = Hcrf_model.Presets.published "4C32" in
  let ctx = Runner.Ctx.make ~cache:(Cache.create ~dir ()) () in
  List.iteri
    (fun i _ -> ignore (Runner.run_loop ~ctx config (nth_loop i)))
    [ (); (); (); (); (); (); (); () ];
  let files = entry_files dir in
  check "several entries written" true (List.length files >= 8);
  List.iter
    (fun f ->
      let shard = Filename.basename (Filename.dirname f) in
      let nibble = String.sub (Filename.basename f) 0 1 in
      Alcotest.(check string)
        (Fmt.str "%s sits in its nibble's shard" (Filename.basename f))
        nibble shard)
    files

(* v2->v3 migration: a flat (unsharded) v2 entry is still found — via
   the legacy-path fallback — and served as a disk hit, while the next
   *write* goes to the sharded layout. *)
let test_store_v2_migration () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let l = nth_loop 3 in
  let config = Hcrf_model.Presets.published "4C32" in
  ignore
    (Runner.run_loop
       ~ctx:(Runner.Ctx.make ~cache:(Cache.create ~dir ()) ())
       config l);
  (* demote the entry to the pre-sharding layout: flat path, v2 magic
     (same payload bytes; the checksum covers the payload only) *)
  let sharded =
    match entry_files dir with
    | [ f ] -> f
    | files -> Alcotest.failf "expected 1 entry, found %d" (List.length files)
  in
  let content =
    let ic = open_in_bin sharded in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let v2 = "hcrf-cache 2\n" in
  let demoted =
    v2 ^ String.sub content (String.length v2)
           (String.length content - String.length v2)
  in
  let flat = Filename.concat dir (Filename.basename sharded) in
  let oc = open_out_bin flat in
  output_string oc demoted;
  close_out oc;
  Sys.remove sharded;
  (* the flat v2 entry is found and replayed, not recomputed *)
  let c = Cache.create ~dir () in
  let r = Runner.run_loop ~ctx:(Runner.Ctx.make ~cache:c ()) config l in
  check "replayed" true (r <> None);
  let s = Cache.stats c in
  check_int "legacy entry is a disk hit" 1 s.Cache.disk_hits;
  check_int "no recompute" 0 s.Cache.misses;
  (* a fresh write of another loop goes to the sharded layout *)
  ignore
    (Runner.run_loop ~ctx:(Runner.Ctx.make ~cache:c ()) config (nth_loop 4));
  check "new write is sharded" true
    (List.exists
       (fun f -> Filename.dirname f <> dir)
       (entry_files dir))

(* Corrupting an entry in one shard must only cost that shard's entry:
   every other shard still serves disk hits. *)
let test_corruption_per_shard () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config = Hcrf_model.Presets.published "4C32" in
  let loops = List.init 12 nth_loop in
  let populate = Runner.Ctx.make ~cache:(Cache.create ~dir ()) () in
  List.iter (fun l -> ignore (Runner.run_loop ~ctx:populate config l)) loops;
  let files = entry_files dir in
  let shard_of f = Filename.basename (Filename.dirname f) in
  let occupied = List.sort_uniq String.compare (List.map shard_of files) in
  check "entries scatter over several shards" true (List.length occupied >= 3);
  (* corrupt exactly one entry per occupied shard *)
  let corrupted =
    List.map
      (fun sh -> List.find (fun f -> shard_of f = sh) files)
      occupied
  in
  List.iter
    (fun f ->
      let oc = open_out_bin f in
      output_string oc "corrupted beyond the header";
      close_out oc)
    corrupted;
  let c = Cache.create ~dir () in
  List.iter (fun l -> ignore (Runner.run_loop ~ctx:(Runner.Ctx.make ~cache:c ()) config l)) loops;
  let s = Cache.stats c in
  check_int "each corrupted shard entry recomputes once"
    (List.length corrupted) s.Cache.disk_errors;
  check_int "every other entry still disk-hits"
    (List.length files - List.length corrupted)
    s.Cache.disk_hits

let test_unusable_dir_degrades () =
  (* a path under a regular file can never become a directory *)
  let file = Filename.temp_file "hcrf-cache-test" ".blocker" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let c = Cache.create ~dir:(Filename.concat file "sub") () in
  Alcotest.(check (option string))
    "degraded to in-memory-only" None (Cache.dir c);
  let l = nth_loop 2 in
  let config = Hcrf_model.Presets.published "S64" in
  let ctx = Runner.Ctx.make ~cache:c () in
  check "still schedules" true (Runner.run_loop ~ctx config l <> None);
  check "still caches in memory" true
    (Runner.run_loop ~ctx config l <> None);
  check_int "memory hit" 1 (Cache.stats c).Cache.hits

(* ------------------------------------------------------------------ *)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_renumbering_invariant;
    QCheck_alcotest.to_alcotest prop_reordering_invariant;
    ("fingerprint: loop sensitivity", `Quick, test_loop_sensitivity);
    ("fingerprint: config sensitivity", `Quick, test_config_sensitivity);
    ("fingerprint: generalized port/level sensitivity", `Quick,
     test_generalized_config_sensitivity);
    ("fingerprint: options sensitivity", `Quick, test_options_sensitivity);
    ("suite: warm = cold, jobs 1 and 4", `Slow, test_warm_cold_identical);
    ( "suite: warm = cold under real memory", `Slow,
      test_warm_cold_identical_real_memory );
    QCheck_alcotest.to_alcotest prop_replay_validates;
    ("store: disk roundtrip", `Quick, test_disk_roundtrip);
    ("store: corruption recovers", `Quick, test_disk_corruption_recovers);
    ("store: sharded v3 layout", `Quick, test_store_sharded_layout);
    ("store: v2 flat entries migrate", `Quick, test_store_v2_migration);
    ("store: corruption isolated per shard", `Slow, test_corruption_per_shard);
    ("store: unusable dir degrades", `Quick, test_unusable_dir_degrades);
  ]

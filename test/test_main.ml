(* Test entry point: one alcotest section per library. *)

let () =
  Alcotest.run "hcrf"
    [
      ("ir", Test_ir.tests);
      ("machine", Test_machine.tests);
      ("model", Test_model.tests);
      ("sched", Test_sched.tests);
      ("engine", Test_engine.tests);
      ("workload", Test_workload.tests);
      ("memsim", Test_memsim.tests);
      ("eval", Test_eval.tests);
      ("obs", Test_obs.tests);
      ("cache", Test_cache.tests);
      ("pipesim", Test_pipesim.tests);
      ("frontend", Test_frontend.tests);
      ("check", Test_check.tests);
      ("exact", Test_exact.tests);
      ("codegen", Test_codegen.tests);
      ("topology", Test_topology.tests);
      ("serve", Test_serve.tests);
      ("incr", Test_incr.tests);
    ]

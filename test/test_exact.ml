(* Tests for the exact small-loop scheduler: certification of the small
   workbench loops against the heuristic, the QCheck optimality/validity
   property, campaign determinism with the Optimality oracle armed, the
   committed optimality-gap corpus, and shrinker determinism. *)

open Hcrf_ir
module Exact = Hcrf_exact.Exact
module Engine = Hcrf_sched.Engine
module Mii = Hcrf_sched.Mii
module Latency = Hcrf_sched.Latency
module Validate = Hcrf_sched.Validate
module Pipe_exec = Hcrf_pipesim.Pipe_exec
module Check = Hcrf_check.Check

let config name = Check.config_of_name name

(* Original-node count of a loop (what the exact search branches on). *)
let nodes_of (loop : Loop.t) = Ddg.num_nodes loop.Loop.ddg

(* Every <= 10-node loop of the workbench prefix must be certified
   optimal (lower bound exhausted and witness at the bound) within the
   default budget, on a monolithic, a clustered and a hierarchical
   machine; and the heuristic must never beat the certified bound. *)
let test_workbench_certified () =
  let loops =
    List.filter
      (fun l -> nodes_of l <= 10)
      (Hcrf_workload.Suite.generate ~n:64 ())
  in
  Alcotest.(check bool)
    (Fmt.str "workbench prefix has small loops (got %d)" (List.length loops))
    true
    (List.length loops >= 5);
  List.iter
    (fun cname ->
      let cfg = config cname in
      List.iter
        (fun (loop : Loop.t) ->
          let r = Exact.solve cfg loop.Loop.ddg in
          let label =
            Fmt.str "%s %s (%d nodes)" cname (Loop.name loop) (nodes_of loop)
          in
          Alcotest.(check bool)
            (Fmt.str "%s certified optimal (%a)" label Exact.pp r)
            true r.Exact.x_optimal;
          match Engine.schedule cfg loop.Loop.ddg with
          | Error _ -> ()
          | Ok o ->
            Alcotest.(check bool)
              (Fmt.str "%s heuristic ii=%d >= certified lb=%d" label
                 o.Engine.ii r.Exact.x_lb)
              true
              (o.Engine.ii >= r.Exact.x_lb))
        loops)
    [ "S64"; "2C32"; "2C32S32" ]

(* PR 5-style oracle property on random tiny loops: the certified bound
   respects the MII floor, the witness passes the independent checker,
   and the cycle-accurate pipeline executor agrees with the sequential
   reference on the witness schedule. *)
let small_params =
  {
    Hcrf_workload.Genloop.default_params with
    min_ops = 3;
    max_ops = 8;
    size_mu = 1.5;
    invariant_max = 2;
  }

let prop_exact_valid =
  QCheck.Test.make ~name:"exact witness: bound, validity, execution"
    ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Hcrf_workload.Rng.create ~seed in
      let loop =
        Hcrf_workload.Genloop.generate ~params:small_params ~rng ~index:0 ()
      in
      List.for_all
        (fun cname ->
          let cfg = config cname in
          let r = Exact.solve cfg loop.Loop.ddg in
          let lat = Latency.make cfg in
          let floor = max 1 (Mii.mii (Mii.bounds ~lat cfg loop.Loop.ddg)) in
          if r.Exact.x_lb < floor then
            QCheck.Test.fail_reportf "%s: lb=%d below mii floor %d" cname
              r.Exact.x_lb floor;
          match r.Exact.x_witness with
          | None -> true
          | Some w ->
            let o = w.Exact.w_outcome in
            if w.Exact.w_ii < r.Exact.x_lb then
              QCheck.Test.fail_reportf "%s: witness ii=%d below lb=%d" cname
                w.Exact.w_ii r.Exact.x_lb;
            (match
               Validate.check
                 ~invariant_residents:o.Engine.invariant_residents
                 o.Engine.schedule o.Engine.graph
             with
            | [] -> ()
            | issue :: _ ->
              QCheck.Test.fail_reportf "%s: witness rejected: %a" cname
                Validate.pp_issue issue);
            (match Pipe_exec.check loop o ~iterations:7 () with
            | Ok _ -> true
            | Error e ->
              QCheck.Test.fail_reportf "%s: pipeline diverged: %a" cname
                Pipe_exec.pp_error e))
        [ "S64"; "2C32"; "2C32S32" ])

(* A 200-case small_exact campaign with the Optimality oracle armed
   must find no oracle failures and be byte-identical across worker
   counts (the exact leg, like every other, is deterministic). *)
let test_campaign_exact_deterministic () =
  let report jobs =
    let ctx = Hcrf_eval.Runner.Ctx.make ~jobs () in
    Check.campaign ~ctx ~shrink:true
      ~param_presets:Check.small_exact_presets ~exact:true ~seed:11
      ~cases:200 ()
  in
  let ra = report 1 and rb = report 4 in
  let sa = Fmt.str "%a" Check.pp_report ra in
  let sb = Fmt.str "%a" Check.pp_report rb in
  Alcotest.(check string) "jobs=1 and jobs=4 reports byte-identical" sa sb;
  Alcotest.(check (list string)) "no oracle failures" []
    (List.map
       (fun f -> f.Check.f_detail)
       (List.filter
          (fun f -> Check.is_failure f.Check.f_kind)
          ra.Check.r_failures));
  match ra.Check.r_exact with
  | None -> Alcotest.fail "campaign dropped the exact summary"
  | Some s ->
    Alcotest.(check bool)
      (Fmt.str "exact leg ran (cases=%d certified=%d)" s.Check.xs_cases
         s.Check.xs_certified)
      true
      (s.Check.xs_cases > 0 && s.Check.xs_certified > 0)

(* Port-constrained 3-way differential: on random small loops under
   per-bank access-port constraints, the three independent layers that
   enforce the port bounds must agree.
   - Accept side: a schedule the engine produced passes [Validate.check]
     (from-scratch port accounting) and replays node by node into a
     fresh [Mrt] (incremental port accounting) without a single
     [can_place] refusal.
   - Reject side: the exact scheduler's phase-A refutation (R2 counts
     the same [Rd]/[Wr] rows) must never refute an II that a validated
     schedule achieves, i.e. the certified lower bound never exceeds the
     heuristic's II; and the bound is monotone in the port budget —
     scarcer ports can only raise it.
   A disagreement here is a shrunk-witness candidate for
   test/gap_corpus/. *)
let port_configs =
  [ "4C16S16@r2w1"; "4C16S16@r3w2"; "2C32S32@Sr2w2"; "4C32@r2w2" ]

let replay_into_mrt (o : Engine.outcome) config =
  let sched = o.Engine.schedule in
  let mrt = Hcrf_sched.Mrt.create config ~ii:o.Engine.ii in
  List.for_all
    (fun v ->
      let e = Hcrf_sched.Schedule.entry_exn sched v in
      let uses =
        Hcrf_sched.Schedule.uses_of sched o.Engine.graph v
          ~loc:e.Hcrf_sched.Schedule.loc
      in
      let fits =
        Hcrf_sched.Mrt.can_place mrt uses ~cycle:e.Hcrf_sched.Schedule.cycle
      in
      if fits then
        Hcrf_sched.Mrt.place mrt ~node:v uses
          ~cycle:e.Hcrf_sched.Schedule.cycle;
      fits)
    (Hcrf_sched.Schedule.scheduled_nodes sched)

let prop_port_differential =
  QCheck.Test.make ~name:"ports: validate / mrt / exact-R2 agreement"
    ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Hcrf_workload.Rng.create ~seed in
      let loop =
        Hcrf_workload.Genloop.generate ~params:small_params ~rng ~index:0 ()
      in
      List.for_all
        (fun cname ->
          let cfg = config cname in
          match Engine.schedule cfg loop.Loop.ddg with
          | Error _ -> true
          | Ok o ->
            (match
               Validate.check
                 ~invariant_residents:o.Engine.invariant_residents
                 o.Engine.schedule o.Engine.graph
             with
            | [] -> ()
            | issue :: _ ->
              QCheck.Test.fail_reportf "%s: validate rejects engine: %a"
                cname Validate.pp_issue issue);
            if not (replay_into_mrt o cfg) then
              QCheck.Test.fail_reportf
                "%s: mrt replay rejects a validated schedule" cname;
            let r = Exact.solve ~witness:false cfg loop.Loop.ddg in
            if r.Exact.x_lb_exhausted && r.Exact.x_lb > o.Engine.ii then
              QCheck.Test.fail_reportf
                "%s: exact refuted ii=%d that validate accepted (lb=%d)"
                cname o.Engine.ii r.Exact.x_lb;
            true)
        port_configs)

let prop_port_lb_monotone =
  QCheck.Test.make ~name:"ports: exact lower bound monotone in budget"
    ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Hcrf_workload.Rng.create ~seed in
      let loop =
        Hcrf_workload.Genloop.generate ~params:small_params ~rng ~index:0 ()
      in
      let lb cname =
        let r = Exact.solve ~witness:false (config cname) loop.Loop.ddg in
        if r.Exact.x_lb_exhausted then Some r.Exact.x_lb else None
      in
      match (lb "4C16S16", lb "4C16S16@r3w2", lb "4C16S16@r2w1") with
      | Some inf, Some rich, Some scarce ->
        if not (inf <= rich && rich <= scarce) then
          QCheck.Test.fail_reportf
            "lb not monotone: inf=%d r3w2=%d r2w1=%d" inf rich scarce
        else true
      | _ -> true)

(* The committed optimality-gap corpus: each reproducer pins a loop the
   heuristic provably schedules above the certified optimum.  Replaying
   recomputes the measurement from scratch; the gap and its detail line
   must match the committed file exactly. *)
let gap_corpus_dir () =
  if Sys.file_exists "gap_corpus" then "gap_corpus" else "test/gap_corpus"

let test_gap_corpus_replay () =
  let files = Hcrf_check.Repro.corpus_files (gap_corpus_dir ()) in
  Alcotest.(check bool)
    (Fmt.str "gap corpus holds >= 3 cases (got %d)" (List.length files))
    true
    (List.length files >= 3);
  List.iter
    (fun path ->
      match Hcrf_check.Repro.load path with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok r ->
        let config =
          Check.config_of_name ~n_fus:r.Hcrf_check.Repro.n_fus
            ~n_mem_ports:r.Hcrf_check.Repro.n_mem_ports
            r.Hcrf_check.Repro.config
        in
        let config =
          { config with
            Hcrf_machine.Config.lats = r.Hcrf_check.Repro.lats }
        in
        let opts =
          List.assoc r.Hcrf_check.Repro.options Check.options_presets
        in
        (match Check.measure_gap ~opts config r.Hcrf_check.Repro.loop with
        | None -> Alcotest.failf "%s: gap no longer measurable" path
        | Some ((o, x) as m) ->
          Alcotest.(check string)
            (Fmt.str "%s: detail pinned" path)
            r.Hcrf_check.Repro.detail (Check.gap_detail m);
          Alcotest.(check bool)
            (Fmt.str "%s: gap >= 1 (heur=%d optimal=%d)" path
               o.Engine.ii x.Exact.x_lb)
            true
            (o.Engine.ii - x.Exact.x_lb >= 1)))
    files

(* Shrinking is deterministic within one process: two back-to-back gap
   hunts over the same case range must minimize every witness to the
   same bytes (this is what a hash-order-dependent shrink or search
   would break). *)
let test_double_shrink_deterministic () =
  let hunt () =
    List.map Hcrf_check.Repro.to_string
      (Check.hunt_gaps ~max_shrink_evals:150 ~seed:42 ~cases:64 ())
  in
  let a = hunt () in
  let b = hunt () in
  Alcotest.(check bool) "hunt found at least one gap" true (a <> []);
  Alcotest.(check (list string)) "double shrink byte-identical" a b

let tests =
  [
    Alcotest.test_case "workbench small loops certified" `Slow
      test_workbench_certified;
    QCheck_alcotest.to_alcotest prop_exact_valid;
    QCheck_alcotest.to_alcotest prop_port_differential;
    QCheck_alcotest.to_alcotest prop_port_lb_monotone;
    Alcotest.test_case "exact campaign deterministic across jobs" `Slow
      test_campaign_exact_deterministic;
    Alcotest.test_case "gap corpus replay" `Slow test_gap_corpus_replay;
    Alcotest.test_case "double shrink deterministic" `Slow
      test_double_shrink_deterministic;
  ]

(* Build your own loop and your own machine from scratch with the
   public API: a complex multiply-accumulate with a loop-carried
   accumulator, scheduled on a custom 2-cluster hierarchical RF that no
   published table covers, under both ideal and real memory.

     dune exec examples/custom_machine.exe
*)

open Hcrf_ir
open Hcrf_machine

let () =
  (* acc += a[i] * b[i] - c[i], with the difference also stored *)
  let g = Ddg.create ~name:"fma_store" () in
  let la = Ddg.add_node g Op.Load in
  let lb = Ddg.add_node g Op.Load in
  let lc = Ddg.add_node g Op.Load in
  let mul = Ddg.add_node g Op.Fmul in
  let sub = Ddg.add_node g Op.Fadd in
  let acc = Ddg.add_node g Op.Fadd in
  let st = Ddg.add_node g Op.Store in
  Ddg.add_edge g ~dep:Dep.True la mul;
  Ddg.add_edge g ~dep:Dep.True lb mul;
  Ddg.add_edge g ~dep:Dep.True mul sub;
  Ddg.add_edge g ~dep:Dep.True lc sub;
  Ddg.add_edge g ~dep:Dep.True sub acc;
  Ddg.add_edge g ~distance:1 ~dep:Dep.True acc acc; (* the accumulator *)
  Ddg.add_edge g ~dep:Dep.True sub st;
  let streams =
    List.mapi
      (fun k op -> { Loop.op; base = k * 1_050_000; stride = 8 })
      [ la; lb; lc; st ]
  in
  let loop = Loop.make ~trip_count:4096 ~entries:12 ~streams g in

  (* a machine the paper never priced: 2 clusters of 24 registers over a
     48-register shared bank, 2 LoadR / 1 StoreR ports per cluster; the
     technology model derives its clock and latencies *)
  let rf =
    Rf.hierarchical ~clusters:2 ~regs_per_bank:24 ~shared_regs:48
      ~lp:(Cap.Finite 2) ~sp:(Cap.Finite 1) ()
  in
  let config = Hcrf_model.Presets.of_model rf in
  Fmt.pr "Custom machine: %a@." Config.pp config;
  let est = Hcrf_model.Cacti.estimate config in
  Fmt.pr "  modelled access: local %.3f ns, shared %a ns, area %.2f Ml2@.@."
    est.Hcrf_model.Cacti.local_access_ns
    Fmt.(option ~none:(any "-") (fmt "%.3f"))
    est.Hcrf_model.Cacti.shared_access_ns
    est.Hcrf_model.Cacti.total_area_mlambda2;

  (* schedule under the ideal and the real memory scenario; each
     scenario is one evaluation context *)
  List.iter
    (fun (label, scenario) ->
      let ctx = Hcrf_eval.Runner.Ctx.make ~scenario () in
      match Hcrf_eval.Runner.run_loop ~ctx config loop with
      | None -> Fmt.epr "%s: no schedule@." label
      | Some r ->
        let p = r.Hcrf_eval.Runner.perf in
        Fmt.pr
          "%s: II=%d SC=%d useful=%.3e stalls=%.3e traffic=%.3e (%s-bound)@."
          label p.Hcrf_eval.Metrics.ii p.Hcrf_eval.Metrics.sc
          p.Hcrf_eval.Metrics.useful_cycles p.Hcrf_eval.Metrics.stall_cycles
          p.Hcrf_eval.Metrics.traffic
          (Hcrf_eval.Classify.name p.Hcrf_eval.Metrics.bound))
    [
      ("ideal memory              ", Hcrf_eval.Runner.Ideal);
      ("real memory, no prefetch  ", Hcrf_eval.Runner.Real { prefetch = false });
      ("real memory, prefetch     ", Hcrf_eval.Runner.Real { prefetch = true });
    ]

(** Typed scheduler/runner trace events — the [hcrf_obs] taxonomy.

    Events are plain data: no closures and no references into scheduler
    state, so a recorded trace can be buffered per work unit, replayed
    into any sink in a deterministic order, and serialized. *)

type comm = Store_r | Load_r | Move
type cache_op = Hit | Miss | Store
type spill = Value | Invariant
type phase = Mii | Order | Schedule | Regalloc | Memsim | Exact
type incr_stage = Frontend | Extract | Sched | Metric
type incr_op = Stage_hit | Stage_miss | Stage_recompute

type serve_op =
  | Request
  | Lru_hit
  | Lru_miss
  | Disk_hit
  | Computed
  | Coalesced
  | Reject
  | Timeout

type fuzz_verdict =
  | Pass
  | No_schedule
  | Invalid_schedule
  | Exec_mismatch
  | Metamorphic
  | Replay_divergence
  | Crash
  | Optimality

type t =
  | II_try of int  (** one attempt of the II search starts at this II *)
  | Place of { node : int; cycle : int; cluster : int }
      (** node committed to the partial schedule ([cluster] = -1 for the
          shared/global location) *)
  | Eject of { node : int }  (** node descheduled by backtracking *)
  | Spill_insert of { kind : spill; inserted : int }
      (** one spill decision; [inserted] fresh nodes entered the graph *)
  | Comm_insert of comm  (** fresh StoreR / LoadR / Move routed in *)
  | Regalloc_fail of { bank : string }
      (** explicit rotating allocation failed for this bank *)
  | Budget_escalate of { rung : int }
      (** the runner's escalation ladder re-ran the engine (rung 1, 2) *)
  | Cache of cache_op  (** schedule-cache lookup or store *)
  | Phase of { phase : phase; ns : int }
      (** a timed span of one pipeline phase, in integer nanoseconds *)
  | Fuzz of fuzz_verdict
      (** one differential-fuzzing case finished with this verdict *)
  | Shrink of { steps : int }
      (** one failing case was minimized in this many accepted steps *)
  | Exact_search of { lb : int; witness_ii : int; steps : int }
      (** one exact-certification run finished: certified II lower
          bound, II of the witness schedule found (-1 when none), and
          branch-and-bound steps spent *)
  | Serve of serve_op
      (** one step of the scheduling daemon's tiered answer path *)
  | Incr of { stage : incr_stage; op : incr_op; ns : int }
      (** one stage-memo step of the incremental pipeline, with the
          time spent in the lookup or recomputation, in integer
          nanoseconds *)

let comm_name = function
  | Store_r -> "store_r"
  | Load_r -> "load_r"
  | Move -> "move"

let comm_of_name = function
  | "store_r" -> Some Store_r
  | "load_r" -> Some Load_r
  | "move" -> Some Move
  | _ -> None

let cache_op_name = function Hit -> "hit" | Miss -> "miss" | Store -> "store"

let cache_op_of_name = function
  | "hit" -> Some Hit
  | "miss" -> Some Miss
  | "store" -> Some Store
  | _ -> None

let spill_name = function Value -> "value" | Invariant -> "invariant"

let spill_of_name = function
  | "value" -> Some Value
  | "invariant" -> Some Invariant
  | _ -> None

let phase_name = function
  | Mii -> "mii"
  | Order -> "order"
  | Schedule -> "schedule"
  | Regalloc -> "regalloc"
  | Memsim -> "memsim"
  | Exact -> "exact"

let phase_of_name = function
  | "mii" -> Some Mii
  | "order" -> Some Order
  | "schedule" -> Some Schedule
  | "regalloc" -> Some Regalloc
  | "memsim" -> Some Memsim
  | "exact" -> Some Exact
  | _ -> None

let incr_stage_name = function
  | Frontend -> "frontend"
  | Extract -> "extract"
  | Sched -> "sched"
  | Metric -> "metric"

let incr_stage_of_name = function
  | "frontend" -> Some Frontend
  | "extract" -> Some Extract
  | "sched" -> Some Sched
  | "metric" -> Some Metric
  | _ -> None

let incr_op_name = function
  | Stage_hit -> "hit"
  | Stage_miss -> "miss"
  | Stage_recompute -> "recompute"

let incr_op_of_name = function
  | "hit" -> Some Stage_hit
  | "miss" -> Some Stage_miss
  | "recompute" -> Some Stage_recompute
  | _ -> None

let serve_op_name = function
  | Request -> "request"
  | Lru_hit -> "lru_hit"
  | Lru_miss -> "lru_miss"
  | Disk_hit -> "disk_hit"
  | Computed -> "computed"
  | Coalesced -> "coalesced"
  | Reject -> "reject"
  | Timeout -> "timeout"

let serve_op_of_name = function
  | "request" -> Some Request
  | "lru_hit" -> Some Lru_hit
  | "lru_miss" -> Some Lru_miss
  | "disk_hit" -> Some Disk_hit
  | "computed" -> Some Computed
  | "coalesced" -> Some Coalesced
  | "reject" -> Some Reject
  | "timeout" -> Some Timeout
  | _ -> None

let fuzz_verdict_name = function
  | Pass -> "pass"
  | No_schedule -> "no_schedule"
  | Invalid_schedule -> "invalid_schedule"
  | Exec_mismatch -> "exec_mismatch"
  | Metamorphic -> "metamorphic"
  | Replay_divergence -> "replay_divergence"
  | Crash -> "crash"
  | Optimality -> "optimality"

let fuzz_verdict_of_name = function
  | "pass" -> Some Pass
  | "no_schedule" -> Some No_schedule
  | "invalid_schedule" -> Some Invalid_schedule
  | "exec_mismatch" -> Some Exec_mismatch
  | "metamorphic" -> Some Metamorphic
  | "replay_divergence" -> Some Replay_divergence
  | "crash" -> Some Crash
  | "optimality" -> Some Optimality
  | _ -> None

(** Stable counter key of an event; phase spans share one key per phase
    (their durations are accumulated separately by {!Counters}). *)
let key = function
  | II_try _ -> "ii_try"
  | Place _ -> "place"
  | Eject _ -> "eject"
  | Spill_insert { kind; _ } -> "spill." ^ spill_name kind
  | Comm_insert c -> "comm." ^ comm_name c
  | Regalloc_fail _ -> "regalloc.fail"
  | Budget_escalate _ -> "budget.escalate"
  | Cache op -> "cache." ^ cache_op_name op
  | Phase { phase; _ } -> "phase." ^ phase_name phase
  | Fuzz v -> "fuzz." ^ fuzz_verdict_name v
  | Shrink _ -> "shrink"
  | Exact_search _ -> "exact"
  | Serve op -> "serve." ^ serve_op_name op
  | Incr { stage; op; _ } ->
    "incr." ^ incr_stage_name stage ^ "." ^ incr_op_name op

let pp ppf = function
  | II_try ii -> Fmt.pf ppf "ii_try ii=%d" ii
  | Place { node; cycle; cluster } ->
    Fmt.pf ppf "place node=%d cycle=%d cluster=%d" node cycle cluster
  | Eject { node } -> Fmt.pf ppf "eject node=%d" node
  | Spill_insert { kind; inserted } ->
    Fmt.pf ppf "spill_insert kind=%s inserted=%d" (spill_name kind) inserted
  | Comm_insert c -> Fmt.pf ppf "comm_insert kind=%s" (comm_name c)
  | Regalloc_fail { bank } -> Fmt.pf ppf "regalloc_fail bank=%s" bank
  | Budget_escalate { rung } -> Fmt.pf ppf "budget_escalate rung=%d" rung
  | Cache op -> Fmt.pf ppf "cache op=%s" (cache_op_name op)
  | Phase { phase; ns } ->
    Fmt.pf ppf "phase phase=%s ns=%d" (phase_name phase) ns
  | Fuzz v -> Fmt.pf ppf "fuzz verdict=%s" (fuzz_verdict_name v)
  | Shrink { steps } -> Fmt.pf ppf "shrink steps=%d" steps
  | Exact_search { lb; witness_ii; steps } ->
    Fmt.pf ppf "exact_search lb=%d witness_ii=%d steps=%d" lb witness_ii steps
  | Serve op -> Fmt.pf ppf "serve op=%s" (serve_op_name op)
  | Incr { stage; op; ns } ->
    Fmt.pf ppf "incr stage=%s op=%s ns=%d" (incr_stage_name stage)
      (incr_op_name op) ns

(** The [Counters] sink: deterministic per-suite event histograms.

    Two tables are kept apart on purpose:

    - [counts] holds event counts and event-derived magnitudes (e.g.
      nodes inserted by spilling).  These depend only on *what work was
      executed*, so — because {!Tracer.commit} replays per-work-unit
      buffers in input order — they are identical at any job count.
    - [timings] holds phase wall-clock sums in integer nanoseconds.
      Integer sums also commute, so they too are independent of the
      job count *within one run*, but wall-clock differs from run to
      run; equality checks therefore cover [counts] only.

    No internal lock: a [Counters.t] is only ever fed from
    {!Tracer.commit}, which already serializes sink access. *)

type t = {
  counts : (string, int) Hashtbl.t;
  timings : (string, int) Hashtbl.t;
}

let create () = { counts = Hashtbl.create 32; timings = Hashtbl.create 8 }

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let add t ev =
  bump t.counts (Event.key ev) 1;
  match ev with
  | Event.Spill_insert { kind; inserted } ->
    bump t.counts ("spill." ^ Event.spill_name kind ^ ".nodes") inserted
  | Event.Shrink { steps } -> bump t.counts "shrink.steps" steps
  | Event.Exact_search { steps; _ } -> bump t.counts "exact.steps" steps
  | Event.Phase { phase; ns } ->
    bump t.timings ("phase." ^ Event.phase_name phase) ns
  | Event.Incr { stage; op; ns } ->
    bump t.timings
      ("incr." ^ Event.incr_stage_name stage ^ "." ^ Event.incr_op_name op)
      ns
  | Event.II_try _ | Event.Place _ | Event.Eject _ | Event.Comm_insert _
  | Event.Regalloc_fail _ | Event.Budget_escalate _ | Event.Cache _
  | Event.Fuzz _ | Event.Serve _ ->
    ()

let add_all t evs = List.iter (add t) evs

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Deterministic counters, sorted by key — hash-table iteration order
    never reaches the output. *)
let counts t = sorted t.counts

(** Phase wall-clock sums in nanoseconds, sorted by key. *)
let timings t = sorted t.timings

let total_events t =
  (* phase keys count span events; derived ".nodes" / ".steps" keys are
     magnitudes, not events *)
  Hashtbl.fold
    (fun k v acc ->
      if Filename.check_suffix k ".nodes" || Filename.check_suffix k ".steps"
      then acc
      else acc + v)
    t.counts 0

(** Counts-only equality: the determinism contract (identical at
    jobs=1 and jobs=4, warm or cold — see the module header). *)
let equal_counts a b = counts a = counts b

let pp ppf t =
  match counts t with
  | [] -> Fmt.pf ppf "(no events)"
  | kvs ->
    Fmt.pf ppf "%a"
      Fmt.(list ~sep:(any " ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v))
      kvs

let pp_timings ppf t =
  match timings t with
  | [] -> Fmt.pf ppf "(no spans)"
  | kvs ->
    Fmt.pf ppf "%a"
      Fmt.(
        list ~sep:(any " ") (fun ppf (k, ns) ->
            Fmt.pf ppf "%s=%.1fms" k (float_of_int ns /. 1e6)))
      kvs

(** The per-work-unit recording handle that instrumented code receives.

    [Off] is the compiled-away fast path: every emission site guards
    with {!enabled} (one branch, no allocation) so a disabled trace
    costs nothing measurable.  [On] buffers events in reverse order in
    one mutable cell owned by exactly one worker, so recording needs no
    synchronization; {!Tracer.commit} replays the buffer into the
    suite-level sinks in input order. *)

type buf = { label : string; mutable rev : Event.t list; mutable n : int }

type t = Off | On of buf

let off = Off

let create ~label = On { label; rev = []; n = 0 }

let enabled = function Off -> false | On _ -> true

let emit t ev =
  match t with
  | Off -> ()
  | On b ->
    b.rev <- ev :: b.rev;
    b.n <- b.n + 1

let label = function Off -> "" | On b -> b.label

let length = function Off -> 0 | On b -> b.n

let events = function Off -> [] | On b -> List.rev b.rev

(* Span timing uses the same wall clock as the engine's [seconds]
   field; durations are kept in integer nanoseconds so sink merges stay
   exact (integer sums commute, float sums do not). *)
let span t phase f =
  match t with
  | Off -> f ()
  | On _ ->
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
        emit t (Event.Phase { phase; ns }))
      f

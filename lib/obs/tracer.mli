(** Suite-level trace collector: a set of sinks plus the commit lock.

    Work units record into private {!Trace.t} buffers; callers hand
    finished buffers to {!commit}, which replays them into every sink
    under one mutex.  Committing buffers in *input order* (as the
    runner does) makes [Counters] totals and [Jsonl] files identical
    across job counts. *)

type sink = Counters of Counters.t | Jsonl of Jsonl.t

type t

val make : sink list -> t

(** No sinks: {!start} returns {!Trace.off} and instrumented code skips
    event construction entirely. *)
val null : t

val is_null : t -> bool

val sinks : t -> sink list

(** The first [Counters] sink, if any. *)
val counters : t -> Counters.t option

(** The output path of the first [Jsonl] sink, if any. *)
val jsonl_path : t -> string option

(** A recording handle for one unit of work; {!Trace.off} under the
    null tracer. *)
val start : t -> label:string -> Trace.t

(** Replay one finished buffer into every sink, under the lock.  A
    no-op for {!Trace.off} buffers or the null tracer. *)
val commit : t -> Trace.t -> unit

(** Flush and close file-backed sinks.  Call once, after the last
    {!commit}. *)
val close : t -> unit

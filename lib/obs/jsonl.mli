(** The [Jsonl] sink: one JSON object per line, one file per run.

    Line 1 is a versioned header; every following line is one event
    tagged with the label of the work unit that produced it.  Events
    reach {!write} only through {!Tracer.commit}, which serializes
    per-work-unit buffers in input order — a [jobs > 1] run produces
    the same file as a serial one.

    The module is also its own schema checker: {!validate_file} and
    {!read_file} accept exactly the language {!write} emits and reject
    anything else. *)

val schema_name : string
val version : int

(** The exact first line of every trace file. *)
val header_line : string

(** The serialized form of one event (without the trailing newline). *)
val line_of_event : label:string -> Event.t -> string

type t

(** Open [path] for writing (truncating) and emit the header line.
    Raises [Sys_error] when the path is not writable. *)
val create : string -> t

val write : t -> label:string -> Event.t -> unit

(** Flush and close the file. *)
val close : t -> unit

val path : t -> string

(** Number of events written so far (the header does not count). *)
val written : t -> int

(** Parse one event line. *)
val event_of_line : string -> (string * Event.t, string) result

(** Read a whole trace file back as [(label, event)] pairs in file
    order; [Error] pinpoints the first line that violates the schema
    (bad header, malformed JSON, unknown event kind, wrong field set,
    wrong field type). *)
val read_file : string -> ((string * Event.t) list, string) result

(** Schema check of a whole file: [Ok n] with the number of events, or
    the first violation. *)
val validate_file : string -> (int, string) result

(** The [Counters] sink: deterministic per-suite event histograms.

    Event counts (and event-derived magnitudes such as nodes inserted
    by spilling) depend only on what work was executed, so they are
    identical at any job count; phase wall-clock sums are kept in a
    separate table of integer nanoseconds and excluded from equality.
    All output is sorted by key — hash-table iteration order never
    reaches the output.

    No internal lock: a [Counters.t] is only ever fed from
    {!Tracer.commit}, which already serializes sink access. *)

type t

val create : unit -> t

val add : t -> Event.t -> unit
val add_all : t -> Event.t list -> unit

(** Deterministic counters, sorted by key. *)
val counts : t -> (string * int) list

(** Phase wall-clock sums in nanoseconds, sorted by key. *)
val timings : t -> (string * int) list

(** Total number of counted events (derived magnitude keys excluded). *)
val total_events : t -> int

(** Counts-only equality: the determinism contract. *)
val equal_counts : t -> t -> bool

(** Sorted ["key=count"] rendering of {!counts}. *)
val pp : Format.formatter -> t -> unit

(** Sorted ["key=12.3ms"] rendering of {!timings} (wall-clock: varies
    run to run — keep it out of byte-compared output). *)
val pp_timings : Format.formatter -> t -> unit

(** Typed scheduler/runner trace events — the [hcrf_obs] taxonomy.

    Events are plain data: no closures and no references into scheduler
    state, so a recorded trace can be buffered per work unit, replayed
    into any sink in a deterministic order, and serialized. *)

type comm = Store_r | Load_r | Move
type cache_op = Hit | Miss | Store
type spill = Value | Invariant
type phase = Mii | Order | Schedule | Regalloc | Memsim | Exact

(** One stage of the incremental evaluation pipeline
    ([Hcrf_eval.Runner.run_pipeline] / [Hcrf_incr.Pipeline]): frontend
    kernel compilation, loop extraction / [Ddg.repr] construction,
    scheduling, metric derivation. *)
type incr_stage = Frontend | Extract | Sched | Metric

(** One stage-memo step: the lookup hit, the lookup missed, or the
    stage function actually re-ran.  A miss that is then answered by
    another tier (e.g. a schedule-stage miss served from the shared
    schedule cache) emits [Stage_miss] without a [Stage_recompute]. *)
type incr_op = Stage_hit | Stage_miss | Stage_recompute

(** One step of the scheduling daemon's ([hcrf_serve]) tiered answer
    path: request accepted, answered by the in-memory LRU / the on-disk
    store / a fresh engine run, coalesced onto an in-flight computation,
    rejected (malformed frame or bad request), or timed out. *)
type serve_op =
  | Request
  | Lru_hit
  | Lru_miss
  | Disk_hit
  | Computed
  | Coalesced
  | Reject
  | Timeout

(** Outcome taxonomy of one differential-fuzzing case ([hcrf_check]). *)
type fuzz_verdict =
  | Pass
  | No_schedule  (** the escalation ladder still found no schedule *)
  | Invalid_schedule  (** [Validate.check] rejected the schedule *)
  | Exec_mismatch  (** pipeline execution diverged from the reference *)
  | Metamorphic  (** a metamorphic invariant was violated *)
  | Replay_divergence  (** warm-cache replay differed from the cold run *)
  | Crash  (** the case raised instead of returning *)
  | Optimality  (** the heuristic beat the certified II lower bound *)

type t =
  | II_try of int  (** one attempt of the II search starts at this II *)
  | Place of { node : int; cycle : int; cluster : int }
      (** node committed to the partial schedule ([cluster] = -1 for the
          shared/global location) *)
  | Eject of { node : int }  (** node descheduled by backtracking *)
  | Spill_insert of { kind : spill; inserted : int }
      (** one spill decision; [inserted] fresh nodes entered the graph *)
  | Comm_insert of comm  (** fresh StoreR / LoadR / Move routed in *)
  | Regalloc_fail of { bank : string }
      (** explicit rotating allocation failed for this bank *)
  | Budget_escalate of { rung : int }
      (** the runner's escalation ladder re-ran the engine (rung 1, 2) *)
  | Cache of cache_op  (** schedule-cache lookup or store *)
  | Phase of { phase : phase; ns : int }
      (** a timed span of one pipeline phase, in integer nanoseconds *)
  | Fuzz of fuzz_verdict
      (** one differential-fuzzing case finished with this verdict *)
  | Shrink of { steps : int }
      (** one failing case was minimized in this many accepted steps *)
  | Exact_search of { lb : int; witness_ii : int; steps : int }
      (** one exact-certification run finished: certified II lower
          bound, II of the witness schedule found (-1 when none), and
          branch-and-bound steps spent *)
  | Serve of serve_op
      (** one step of the scheduling daemon's tiered answer path *)
  | Incr of { stage : incr_stage; op : incr_op; ns : int }
      (** one stage-memo step of the incremental pipeline, with the
          time spent in the lookup or recomputation, in integer
          nanoseconds *)

val comm_name : comm -> string
val comm_of_name : string -> comm option
val cache_op_name : cache_op -> string
val cache_op_of_name : string -> cache_op option
val spill_name : spill -> string
val spill_of_name : string -> spill option
val phase_name : phase -> string
val phase_of_name : string -> phase option
val incr_stage_name : incr_stage -> string
val incr_stage_of_name : string -> incr_stage option
val incr_op_name : incr_op -> string
val incr_op_of_name : string -> incr_op option
val serve_op_name : serve_op -> string
val serve_op_of_name : string -> serve_op option
val fuzz_verdict_name : fuzz_verdict -> string
val fuzz_verdict_of_name : string -> fuzz_verdict option

(** Stable counter key of an event ("place", "comm.store_r",
    "cache.hit", "phase.mii", ...); phase spans share one key per phase
    — their durations are accumulated separately by {!Counters}. *)
val key : t -> string

val pp : Format.formatter -> t -> unit

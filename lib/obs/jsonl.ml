(** The [Jsonl] sink: one JSON object per line, one file per run.

    Line 1 is a versioned header ([{"schema":"hcrf-trace","version":1}]);
    every following line is one event tagged with the label of the work
    unit that produced it.  Events reach {!write} only through
    {!Tracer.commit}, which serializes per-work-unit buffers in input
    order — so a [jobs > 1] run produces the same file as a serial one.

    The module is also its own schema checker: {!validate_file} and
    {!read_file} accept exactly the language {!write} emits (flat
    objects, string and integer values, the exact field set of each
    event kind) and reject anything else. *)

let schema_name = "hcrf-trace"
let version = 1

type value = S of string | I of int

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let render_fields fields =
  let b = Buffer.create 80 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      add_escaped b k;
      Buffer.add_string b "\":";
      match v with
      | I n -> Buffer.add_string b (string_of_int n)
      | S s ->
        Buffer.add_char b '"';
        add_escaped b s;
        Buffer.add_char b '"')
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* Payload fields of each event kind, in a stable order. *)
let payload (ev : Event.t) =
  match ev with
  | Event.II_try ii -> ("ii_try", [ ("ii", I ii) ])
  | Event.Place { node; cycle; cluster } ->
    ("place", [ ("node", I node); ("cycle", I cycle); ("cluster", I cluster) ])
  | Event.Eject { node } -> ("eject", [ ("node", I node) ])
  | Event.Spill_insert { kind; inserted } ->
    ( "spill_insert",
      [ ("kind", S (Event.spill_name kind)); ("inserted", I inserted) ] )
  | Event.Comm_insert c -> ("comm_insert", [ ("kind", S (Event.comm_name c)) ])
  | Event.Regalloc_fail { bank } -> ("regalloc_fail", [ ("bank", S bank) ])
  | Event.Budget_escalate { rung } -> ("budget_escalate", [ ("rung", I rung) ])
  | Event.Cache op -> ("cache", [ ("op", S (Event.cache_op_name op)) ])
  | Event.Phase { phase; ns } ->
    ("phase", [ ("phase", S (Event.phase_name phase)); ("ns", I ns) ])
  | Event.Fuzz v -> ("fuzz", [ ("verdict", S (Event.fuzz_verdict_name v)) ])
  | Event.Shrink { steps } -> ("shrink", [ ("steps", I steps) ])
  | Event.Exact_search { lb; witness_ii; steps } ->
    ( "exact_search",
      [ ("lb", I lb); ("witness_ii", I witness_ii); ("steps", I steps) ] )
  | Event.Serve op -> ("serve", [ ("op", S (Event.serve_op_name op)) ])
  | Event.Incr { stage; op; ns } ->
    ( "incr",
      [
        ("stage", S (Event.incr_stage_name stage));
        ("op", S (Event.incr_op_name op));
        ("ns", I ns);
      ] )

let line_of_event ~label ev =
  let kind, fields = payload ev in
  render_fields (("loop", S label) :: ("ev", S kind) :: fields)

let header_line =
  render_fields [ ("schema", S schema_name); ("version", I version) ]

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

type t = { path : string; oc : out_channel; mutable written : int }

let create path =
  let oc = open_out path in
  output_string oc header_line;
  output_char oc '\n';
  { path; oc; written = 0 }

let write t ~label ev =
  output_string t.oc (line_of_event ~label ev);
  output_char t.oc '\n';
  t.written <- t.written + 1

let close t =
  flush t.oc;
  close_out t.oc

let path t = t.path
let written t = t.written

(* ------------------------------------------------------------------ *)
(* Parsing / schema validation                                         *)

exception Bad of string

let parse_object line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Fmt.str "%s at column %d" msg (!pos + 1))) in
  let peek () = if !pos < n then line.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let expect c =
    if peek () = c then advance () else fail (Fmt.str "expected %C" c)
  in
  let skip_ws () =
    while !pos < n && line.[!pos] = ' ' do
      incr pos
    done
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        let e = peek () in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub line !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
          | Some _ | None -> fail "unsupported \\u escape")
        | _ -> fail "bad escape");
        go ()
      | c when Char.code c < 32 -> fail "raw control character in string"
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_int () =
    let start = !pos in
    if !pos < n && line.[!pos] = '-' then advance ();
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      advance ()
    done;
    match int_of_string_opt (String.sub line start (!pos - start)) with
    | Some i -> i
    | None -> fail "expected an integer"
  in
  skip_ws ();
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = '}' then advance ()
  else begin
    let rec pairs () =
      skip_ws ();
      let k = parse_string () in
      skip_ws ();
      expect ':';
      skip_ws ();
      let v = if peek () = '"' then S (parse_string ()) else I (parse_int ()) in
      if List.mem_assoc k !fields then fail (Fmt.str "duplicate key %S" k);
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | ',' ->
        advance ();
        pairs ()
      | '}' -> advance ()
      | _ -> fail "expected ',' or '}'"
    in
    pairs ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing characters after object";
  List.rev !fields

let event_of_line line : (string * Event.t, string) result =
  match parse_object line with
  | exception Bad m -> Error m
  | fields -> (
    let str k =
      match List.assoc_opt k fields with Some (S v) -> Some v | _ -> None
    in
    let int k =
      match List.assoc_opt k fields with Some (I v) -> Some v | _ -> None
    in
    let exact expected =
      let got = List.sort String.compare (List.map fst fields) in
      let want = List.sort String.compare ("loop" :: "ev" :: expected) in
      if got = want then Ok ()
      else
        Error
          (Fmt.str "field set [%s] does not match the schema"
             (String.concat "," got))
    in
    let ( let* ) = Result.bind in
    match (str "ev", str "loop") with
    | None, _ -> Error "missing or non-string \"ev\" field"
    | _, None -> Error "missing or non-string \"loop\" field"
    | Some ev, Some label -> (
      let need_int name k =
        match int name with
        | Some v -> Ok v
        | None -> Error (Fmt.str "%s: missing integer %S" k name)
      in
      let need_enum name of_name k =
        match Option.bind (str name) of_name with
        | Some v -> Ok v
        | None -> Error (Fmt.str "%s: bad %S value" k name)
      in
      match ev with
      | "ii_try" ->
        let* () = exact [ "ii" ] in
        let* ii = need_int "ii" ev in
        Ok (label, Event.II_try ii)
      | "place" ->
        let* () = exact [ "node"; "cycle"; "cluster" ] in
        let* node = need_int "node" ev in
        let* cycle = need_int "cycle" ev in
        let* cluster = need_int "cluster" ev in
        Ok (label, Event.Place { node; cycle; cluster })
      | "eject" ->
        let* () = exact [ "node" ] in
        let* node = need_int "node" ev in
        Ok (label, Event.Eject { node })
      | "spill_insert" ->
        let* () = exact [ "kind"; "inserted" ] in
        let* kind = need_enum "kind" Event.spill_of_name ev in
        let* inserted = need_int "inserted" ev in
        Ok (label, Event.Spill_insert { kind; inserted })
      | "comm_insert" ->
        let* () = exact [ "kind" ] in
        let* kind = need_enum "kind" Event.comm_of_name ev in
        Ok (label, Event.Comm_insert kind)
      | "regalloc_fail" ->
        let* () = exact [ "bank" ] in
        let* bank =
          match str "bank" with
          | Some b -> Ok b
          | None -> Error "regalloc_fail: missing string \"bank\""
        in
        Ok (label, Event.Regalloc_fail { bank })
      | "budget_escalate" ->
        let* () = exact [ "rung" ] in
        let* rung = need_int "rung" ev in
        Ok (label, Event.Budget_escalate { rung })
      | "cache" ->
        let* () = exact [ "op" ] in
        let* op = need_enum "op" Event.cache_op_of_name ev in
        Ok (label, Event.Cache op)
      | "phase" ->
        let* () = exact [ "phase"; "ns" ] in
        let* phase = need_enum "phase" Event.phase_of_name ev in
        let* ns = need_int "ns" ev in
        Ok (label, Event.Phase { phase; ns })
      | "fuzz" ->
        let* () = exact [ "verdict" ] in
        let* verdict = need_enum "verdict" Event.fuzz_verdict_of_name ev in
        Ok (label, Event.Fuzz verdict)
      | "shrink" ->
        let* () = exact [ "steps" ] in
        let* steps = need_int "steps" ev in
        Ok (label, Event.Shrink { steps })
      | "exact_search" ->
        let* () = exact [ "lb"; "witness_ii"; "steps" ] in
        let* lb = need_int "lb" ev in
        let* witness_ii = need_int "witness_ii" ev in
        let* steps = need_int "steps" ev in
        Ok (label, Event.Exact_search { lb; witness_ii; steps })
      | "serve" ->
        let* () = exact [ "op" ] in
        let* op = need_enum "op" Event.serve_op_of_name ev in
        Ok (label, Event.Serve op)
      | "incr" ->
        let* () = exact [ "stage"; "op"; "ns" ] in
        let* stage = need_enum "stage" Event.incr_stage_of_name ev in
        let* op = need_enum "op" Event.incr_op_of_name ev in
        let* ns = need_int "ns" ev in
        Ok (label, Event.Incr { stage; op; ns })
      | other -> Error (Fmt.str "unknown event kind %S" other)))

let check_header line =
  match parse_object line with
  | exception Bad m -> Error m
  | fields -> (
    match
      (List.assoc_opt "schema" fields, List.assoc_opt "version" fields)
    with
    | Some (S s), Some (I v) when s = schema_name && v = version ->
      if List.length fields = 2 then Ok ()
      else Error "header carries unexpected fields"
    | Some (S s), Some (I v) ->
      Error (Fmt.str "header %s/%d, expected %s/%d" s v schema_name version)
    | _ -> Error "malformed header (need \"schema\" and \"version\")")

let fold_lines path ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok acc
        | line -> (
          match f lineno acc line with
          | Ok acc -> go (lineno + 1) acc
          | Error m -> Error (Fmt.str "%s:%d: %s" path lineno m))
      in
      go 1 init)

(** Read a whole trace file back as [(label, event)] pairs in file
    order; [Error] pinpoints the first offending line. *)
let read_file path =
  match
    fold_lines path ~init:[] ~f:(fun lineno acc line ->
        if lineno = 1 then Result.map (fun () -> acc) (check_header line)
        else Result.map (fun ev -> ev :: acc) (event_of_line line))
  with
  | Ok rev -> Ok (List.rev rev)
  | Error _ as e -> e
  | exception Sys_error m -> Error m

(** Schema check of a whole file: [Ok n] with the number of events, or
    the first violation. *)
let validate_file path = Result.map List.length (read_file path)

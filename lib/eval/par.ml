(** Domain-based parallel evaluation of independent per-loop work.

    A fixed pool of [jobs] domains pulls item indices from a
    mutex-protected counter and writes results into a slot array, so the
    caller always sees results in input order — aggregates computed from
    them are bit-identical to the serial path regardless of which domain
    ran which loop (every loop carries its own split RNG, so the work
    items share no state).

    [jobs <= 1] (or a single item) takes the plain [List.map] path: no
    domain is spawned and the behaviour is exactly the serial one.

    A worker exception does not hang the pool: the failing item records
    the exception, the remaining undistributed items are abandoned, every
    domain is joined, and the lowest-index exception is re-raised with
    its original backtrace. *)

let default_jobs () = Domain.recommended_domain_count ()

type 'b slot =
  | Empty
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let map ?(jobs = 1) f items =
  let n = List.length items in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let input = Array.of_list items in
    let slots = Array.make n Empty in
    let next = ref 0 in
    let m = Mutex.create () in
    let take () =
      Mutex.lock m;
      let i = !next in
      if i < n then incr next;
      Mutex.unlock m;
      if i < n then Some i else None
    in
    let abandon () =
      Mutex.lock m;
      next := n;
      Mutex.unlock m
    in
    let rec worker () =
      match take () with
      | None -> ()
      | Some i ->
        (match f input.(i) with
        | r -> slots.(i) <- Done r
        | exception e ->
          slots.(i) <- Failed (e, Printexc.get_raw_backtrace ());
          abandon ());
        worker ()
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty | Done _ -> ())
      slots;
    Array.to_list
      (Array.map
         (function
           | Done r -> r
           | Empty | Failed _ -> assert false (* no Failed: checked above *))
         slots)
  end

let filter_map ?jobs f items = List.filter_map Fun.id (map ?jobs f items)

(** Domain-based parallel evaluation of independent per-loop work.

    A fixed pool of [jobs] domains pulls item indices from a
    mutex-protected counter; results are returned in input order, so
    aggregates computed from them are bit-identical to the serial path.
    [jobs <= 1] spawns no domain and degrades to exactly [List.map].
    A worker exception is re-raised in the caller (lowest failing index
    first) after the whole pool is joined — it never hangs the pool. *)

(** [Domain.recommended_domain_count ()]: the default worker count used
    by the benchmark harness when [HCRF_JOBS] is unset. *)
val default_jobs : unit -> int

(** [map ~jobs f items] is [List.map f items], evaluated by [jobs]
    domains. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [filter_map ~jobs f items] is [List.filter_map f items], evaluated
    by [jobs] domains (order preserved). *)
val filter_map : ?jobs:int -> ('a -> 'b option) -> 'a list -> 'b list

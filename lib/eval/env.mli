(** One home for every [HCRF_*] environment variable, so a variable
    behaves identically in the benchmark harness and the CLI:

    - [HCRF_LOOPS=<n>]  workbench size override;
    - [HCRF_JOBS=<n>]   worker-domain count;
    - [HCRF_CONFIG=<notation>] machine configuration pin (full extended
      grammar, e.g. [4C16S16-L3:64@r2w1]);
    - [HCRF_CACHE=<dir>] schedule cache backed by [dir]
      ([HCRF_CACHE=""] for in-memory only);
    - [HCRF_INCR=on|off|<dir>] incremental stage memo (in-memory for
      [on]; persisted under [dir] otherwise);
    - [HCRF_TRACE=<file>] JSONL event trace written to [file], plus
      in-process counters ([HCRF_TRACE=""] for counters only);
    - [HCRF_SERVE_ADDR=<addr>] default daemon address for [hcrf_serve]
      and the serve-bench client (a unix socket path, or [host:port]);
    - [HCRF_SERVE_LRU=<n>] capacity of the daemon's in-memory LRU tier.

    Every parser warns (via {!Logs}) before falling back on a value it
    cannot use — a typo must never silently change what runs. *)

(** The variable names this version understands. *)
val known : string list

(** [HCRF_LOOPS]; [None] when unset or unusable (warned). *)
val loops : unit -> int option

(** [HCRF_CONFIG=<notation>]: the machine configuration drivers should
    pin, in the full extended grammar (["4C16S16-L3:64@r2w1"]) —
    published hardware when the notation names a Table-5 point, the
    analytic model otherwise.  [None] when unset or malformed
    (warned). *)
val config : unit -> Hcrf_machine.Config.t option

(** [HCRF_JOBS]; defaults to {!Par.default_jobs} (warned when set but
    unusable). *)
val jobs : unit -> int

(** [HCRF_CACHE]; a fresh cache per call — call once per process. *)
val cache : unit -> Hcrf_cache.Cache.t option

type incr_spec = Incr_off | Incr_memory | Incr_dir of string

(** [HCRF_INCR] as a spec (no side effects): unset, ["off"] or ["0"]
    are {!Incr_off}; [""], ["on"] or ["1"] are {!Incr_memory}; anything
    else names the directory a persistent memo lives in. *)
val incr : unit -> incr_spec

(** Build the stage memo a spec asks for ({!Incr_dir} loads
    [dir/memo.v1] when present) — a fresh memo per call, so call once
    per process. *)
val memo_of_spec : incr_spec -> Memo.t option

(** [memo_of_spec (incr ())]. *)
val memo : unit -> Memo.t option

(** [HCRF_SERVE_ADDR]; [None] when unset or empty. *)
val serve_addr : unit -> string option

(** Default capacity of the daemon's in-memory LRU tier. *)
val default_serve_lru : int

(** [HCRF_SERVE_LRU]; defaults to {!default_serve_lru} (warned when set
    but unusable). *)
val serve_lru : unit -> int

type trace_spec = Off | Counters_only | File of string

(** [HCRF_TRACE] as a spec (no side effects). *)
val trace : unit -> trace_spec

(** Build a tracer: [Off] is {!Hcrf_obs.Tracer.null}; the other specs
    include a [Counters] sink; an unwritable [File] degrades to
    counters-only with a warning.  Opens the trace file — call once per
    process and {!Hcrf_obs.Tracer.close} it at exit. *)
val tracer_of_spec : trace_spec -> Hcrf_obs.Tracer.t

(** [tracer_of_spec (trace ())]. *)
val tracer : unit -> Hcrf_obs.Tracer.t

(** Warn about any [HCRF_*] environment variable not in {!known} — a
    misspelled knob must not be silently inert. *)
val warn_unknown : unit -> unit

(** Drivers reproducing every table and figure of the paper's
    evaluation, plus ablations of the scheduler's design choices.
    [bench/main.exe] ties them together; EXPERIMENTS.md records
    measured-vs-published values. *)

open Hcrf_sched

(** Figure 1: (config name, IPC) for the 4+2 .. 12+6 resource sweep.
    Every driver below takes one [?ctx] ({!Runner.Ctx.t}) carrying the
    engine options, schedule cache, job count and tracer: [ctx.jobs] > 1
    fans the per-loop work out over a domain pool ({!Par}) with
    deterministic results at any job count, and [ctx.cache] memoizes
    per-loop outcomes without changing any result.  The drivers that
    sweep engine options directly (table 4, figure 4, ablations) use
    [ctx.jobs] and [ctx.tracer] but bypass the cache and [ctx.opts].
    Experiments with a fixed memory scenario (table 6, figure 6)
    override [ctx.scenario]. *)
val figure1 :
  ?ctx:Runner.Ctx.t -> loops:Hcrf_ir.Loop.t list -> unit ->
  (string * float) list

val pp_figure1 : Format.formatter -> (string * float) list -> unit

type table1_row = {
  t1_config : string;
  t1_shares : (Classify.bound * float * float) list;
      (** bound, % of loops, execution cycles *)
  t1_total_cycles : float;
}

(** The equal-capacity configurations of Table 1 (S128, 4C32, and
    1C64S64 scheduled with the §4 port counts). *)
val table1_configs : unit -> Hcrf_machine.Config.t list

val table1 :
  ?ctx:Runner.Ctx.t -> loops:Hcrf_ir.Loop.t list -> unit ->
  table1_row list
val pp_table1 : Format.formatter -> table1_row list -> unit

type hw_row = {
  hw_notation : string;
  lp_sp : int * int;
  model_access_c : float;
  model_access_s : float option;
  model_area_total : float;
  model_depth : int;
  model_clock : float;
  model_mem_lat : int;
  model_fu_lat : int;
  published : Hcrf_model.Hw_table.row;
}

(** Analytic model vs one published row. *)
val hw_row : Hcrf_model.Hw_table.row -> hw_row

val table2 : unit -> hw_row list
val table5 : unit -> hw_row list
val pp_hw_rows : title:string -> Format.formatter -> hw_row list -> unit

type table3_row = {
  t3_config : string;
  t3_unbounded : float * int * float;  (** %MII, ΣII, scheduler seconds *)
  t3_bounded : float * int * float;
}

val table3 :
  ?ctx:Runner.Ctx.t -> loops:Hcrf_ir.Loop.t list -> unit ->
  table3_row list
val pp_table3 : Format.formatter -> table3_row list -> unit

type table4 = {
  t4_better : int * int * int;  (** loops, ΣII noniter, ΣII mirs_hc *)
  t4_equal : int * int * int;
  t4_worse : int * int * int;
}

val table4 :
  ?config:Hcrf_machine.Config.t -> ?ctx:Runner.Ctx.t ->
  loops:Hcrf_ir.Loop.t list -> unit -> table4
val pp_table4 : Format.formatter -> table4 -> unit

type figure4_row = {
  f4_clusters : int;
  f4_lp_cdf : (int * float) list;  (** ports k, % of loops needing <= k *)
  f4_sp_cdf : (int * float) list;
}

(** Average per-bank port demand of a scheduled loop (the paper's
    metric). *)
val port_demand : Engine.outcome -> clusters:int -> int * int

val figure4 :
  ?max_lp:int -> ?max_sp:int -> ?ctx:Runner.Ctx.t ->
  loops:Hcrf_ir.Loop.t list -> unit -> figure4_row list
val pp_figure4 : Format.formatter -> figure4_row list -> unit

type ablation_row = {
  a_name : string;
  a_sum_ii : int;
  a_pct_mii : float;
  a_failed : int;  (** loops the variant could not schedule *)
  a_seconds : float;
}

(** Scheduler ablations: full engine vs no-backtracking, topological
    ordering, and Budget-ratio variants. *)
val ablations :
  ?config:Hcrf_machine.Config.t -> ?ctx:Runner.Ctx.t ->
  loops:Hcrf_ir.Loop.t list -> unit -> ablation_row list
val pp_ablations : Format.formatter -> ablation_row list -> unit

type scarcity_row = {
  sc_access : (int * int) option;
      (** per-bank (read, write) ports; [None] is unbounded *)
  sc_flat_sum_ii : int;
  sc_flat_seconds : float;
  sc_hier_sum_ii : int;
  sc_hier_seconds : float;
  sc_speedup : float;  (** flat time / hierarchical time (>1 = hier wins) *)
}

(** The access-port ladder {!port_scarcity} walks down, richest first. *)
val scarcity_ladder : (int * int) option list

(** Sweep uniform per-bank access ports down {!scarcity_ladder} on a
    flat clustered organization (default ["4C32"]) and its hierarchical
    rival (default ["4C16S16"]), both through the analytic model, and
    compare end-to-end execution time per point. *)
val port_scarcity :
  ?flat:string -> ?hier:string -> ?ctx:Runner.Ctx.t ->
  loops:Hcrf_ir.Loop.t list -> unit -> scarcity_row list

(** First ladder point (walking richest to scarcest) where the
    hierarchy wins on execution time; [None] when the flat organization
    wins at every swept port count. *)
val scarcity_crossover : scarcity_row list -> (int * int) option option

val pp_port_scarcity : Format.formatter -> scarcity_row list -> unit

type perf_row = {
  p_config : string;
  p_exec_cycles : float;
  p_useful : float;
  p_stall : float;
  p_traffic : float;
  p_exec_seconds : float;
  p_rel_time : float;  (** execution time relative to S64 *)
  p_speedup : float;
}

(** [scenario] overrides [ctx.scenario]. *)
val perf_rows :
  ?ctx:Runner.Ctx.t -> scenario:Runner.memory_scenario ->
  configs:Hcrf_machine.Config.t list -> loops:Hcrf_ir.Loop.t list ->
  unit -> perf_row list

val table6 :
  ?ctx:Runner.Ctx.t -> loops:Hcrf_ir.Loop.t list -> unit ->
  perf_row list
val pp_table6 : Format.formatter -> perf_row list -> unit

val figure6_configs : unit -> Hcrf_machine.Config.t list

(** Per config: (name, (useful, stall) cycles, (useful, stall) time),
    relative to the useful cycles/time of S64. *)
val figure6 :
  ?ctx:Runner.Ctx.t -> loops:Hcrf_ir.Loop.t list -> unit ->
  (string * (float * float) * (float * float)) list

val pp_figure6 :
  Format.formatter ->
  (string * (float * float) * (float * float)) list -> unit

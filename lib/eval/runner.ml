(** Drive the scheduler (and optionally the memory simulator) over a
    suite of loops for one processor configuration. *)

open Hcrf_ir
open Hcrf_sched
module Tr = Hcrf_obs.Trace
module Ev = Hcrf_obs.Event

type memory_scenario =
  | Ideal  (** every access hits; no stall cycles (§6.1) *)
  | Real of { prefetch : bool }
      (** cache simulation, optionally with selective binding
          prefetching (§6.2) *)

(** Everything one evaluation run needs, in one record.  Built once,
    passed to every [run_loop]/[run_suite] call — instead of threading
    four optional arguments through every driver. *)
module Ctx = struct
  type t = {
    scenario : memory_scenario;
    opts : Engine.options;
    cache : Hcrf_cache.Cache.t option;
    jobs : int;
    tracer : Hcrf_obs.Tracer.t;
  }

  let default =
    {
      scenario = Ideal;
      opts = Engine.default_options;
      cache = None;
      jobs = 1;
      tracer = Hcrf_obs.Tracer.null;
    }

  let make ?(scenario = Ideal) ?(opts = Engine.default_options) ?cache
      ?(jobs = 1) ?(tracer = Hcrf_obs.Tracer.null) () =
    { scenario; opts; cache; jobs; tracer }
end

type loop_result = {
  loop : Loop.t;
  outcome : Engine.outcome;
  perf : Metrics.loop_perf;
}

let spill_slab = 0x4000_0000

(* Memory references of the final graph for the cache simulation.
   Original operations replay their loop streams; spill operations get a
   per-op stack slot (stride 0: same location every iteration). *)
let mem_refs (config : Hcrf_machine.Config.t) (loop : Loop.t)
    (o : Engine.outcome) ~(override : int -> int option) =
  let hit = config.lats.Hcrf_machine.Latencies.mem_read in
  let spill_idx = ref 0 in
  List.filter_map
    (fun v ->
      let kind = Ddg.kind o.Engine.graph v in
      if not (Hcrf_ir.Op.is_memory kind) then None
      else
        let issue = Schedule.cycle_of o.Engine.schedule v in
        let is_load =
          match kind with
          | Op.Load | Op.Spill_load -> true
          | _ -> false
        in
        let base, stride =
          match Loop.stream_for loop v with
          | Some s -> (s.Loop.base, s.Loop.stride)
          | None ->
            incr spill_idx;
            (spill_slab + (64 * !spill_idx), 0)
        in
        let sched_latency =
          if is_load then
            match override v with Some l -> l | None -> hit
          else 0
        in
        Some
          { Hcrf_memsim.Sim.node = v; is_load; issue_offset = issue;
            sched_latency; base; stride })
    (Ddg.nodes o.Engine.graph)

let scenario_tag = function
  | Ideal -> "ideal"
  | Real { prefetch = false } -> "real"
  | Real { prefetch = true } -> "prefetch"

(** Canonical cache key of one [run_loop] invocation: configuration,
    loop (graph, streams, trip/entry counts), scheduler options and the
    memory scenario.  [opts.load_override] is *not* sampled: the runner
    always replaces it with the override derived from the scenario and
    loop, both of which the key covers.  The tracer is not part of the
    key either — tracing must never change what is computed. *)
let cache_key ~scenario ~opts (config : Hcrf_machine.Config.t)
    (loop : Loop.t) =
  Hcrf_cache.Fingerprint.combine
    [ Hcrf_cache.Fingerprint.of_config config;
      Hcrf_cache.Fingerprint.of_loop loop;
      Hcrf_cache.Fingerprint.of_options opts;
      Hcrf_cache.Fingerprint.of_string (scenario_tag scenario) ]

let warn_no_schedule (config : Hcrf_machine.Config.t) loop ii =
  Logs.warn (fun m ->
      m "no schedule for %s on %s up to II=%d" (Loop.name loop)
        config.Hcrf_machine.Config.name ii)

let result_of_parts loop outcome ~stall_cycles ~retries =
  { loop; outcome;
    perf = Metrics.of_outcome ~stall_cycles ~retries loop outcome }

(* The uncached work: schedule (with escalation) and, under a real
   memory scenario, simulate the stalls.  Returns everything a cache
   entry needs. *)
let compute ~scenario ~opts ~trace (config : Hcrf_machine.Config.t)
    (loop : Loop.t) =
  let override =
    match scenario with
    | Real { prefetch = true } -> Hcrf_memsim.Prefetch.plan config loop
    | Ideal | Real { prefetch = false } -> Hcrf_memsim.Prefetch.none
  in
  let opts = { opts with Engine.load_override = override } in
  (* escalating retries: a dropped loop would silently bias every
     aggregate metric, so spend more budget (and allow any II) before
     giving up.  The rung count feeds [Metrics.sched_stats.retries]. *)
  let retries = ref 0 in
  let escalate rung =
    incr retries;
    if Tr.enabled trace then Tr.emit trace (Ev.Budget_escalate { rung })
  in
  let result =
    match Engine.schedule ~opts ~trace config loop.Loop.ddg with
    | Ok o -> Ok o
    | Error _ -> (
      escalate 1;
      let opts = { opts with Engine.budget_ratio = 16 } in
      match Engine.schedule ~opts ~trace config loop.Loop.ddg with
      | Ok o -> Ok o
      | Error _ ->
        escalate 2;
        Engine.schedule
          ~opts:{ opts with Engine.budget_ratio = 32; max_ii = Some 4096 }
          ~trace config loop.Loop.ddg)
  in
  match result with
  | Error (`No_schedule ii) -> Error ii
  | Ok outcome ->
    let stall_cycles =
      match scenario with
      | Ideal -> 0.
      | Real _ ->
        let refs = mem_refs config loop outcome ~override in
        let r =
          Tr.span trace Ev.Memsim (fun () ->
              Hcrf_memsim.Sim.run ~ii:outcome.Engine.ii
                ~hit_read:config.lats.Hcrf_machine.Latencies.mem_read
                ~miss_cycles:(Hcrf_machine.Config.miss_cycles config)
                ~n:loop.Loop.trip_count ~e:loop.Loop.entries refs)
        in
        r.Hcrf_memsim.Sim.stall_cycles
    in
    Ok (outcome, stall_cycles, !retries)

(* The uncached work packaged as a closure-free cache entry.  This is
   the single compute path shared by [run_loop] and the serving daemon's
   miss handler, so both produce (and persist) identical entries. *)
let compute_entry ?(trace = Tr.off) ~scenario ~opts config (loop : Loop.t) =
  match compute ~scenario ~opts ~trace config loop with
  | Error ii -> Hcrf_cache.Entry.Failed ii
  | Ok (outcome, stall_cycles, retries) ->
    Hcrf_cache.Entry.of_outcome config outcome
      ~input_digest:(Hcrf_cache.Entry.ddg_digest loop.Loop.ddg)
      ~stall_cycles ~retries

(* Replay an entry — fresh or cached, same code either way — into a
   [loop_result]; [None] for [Failed] entries, with the same warning as
   a live failure. *)
let result_of_entry config (loop : Loop.t) = function
  | Hcrf_cache.Entry.Failed ii ->
    warn_no_schedule config loop ii;
    None
  | Hcrf_cache.Entry.Scheduled { outcome; stall_cycles; retries; _ } ->
    Some
      (result_of_parts loop
         (Hcrf_cache.Entry.to_outcome config outcome)
         ~stall_cycles ~retries)

(* The key's WL fingerprint equates isomorphic loops, but stored
   assignments are bound to concrete node ids: only replay entries whose
   input graph had exactly this loop's ids. *)
let entry_compatible (loop : Loop.t) =
  let digest = Hcrf_cache.Entry.ddg_digest loop.Loop.ddg in
  function
  | Hcrf_cache.Entry.Failed _ -> true
  | Hcrf_cache.Entry.Scheduled { input_digest; _ } ->
    String.equal input_digest digest

(* One loop's work under an already-started trace.  Does NOT commit the
   trace: callers commit in input order ([run_suite]) or right away
   ([run_loop]). *)
let run_loop_traced ~(ctx : Ctx.t) ~trace config (loop : Loop.t) :
    loop_result option =
  let { Ctx.scenario; opts; cache; _ } = ctx in
  match cache with
  | None ->
    result_of_entry config loop
      (compute_entry ~trace ~scenario ~opts config loop)
  | Some c -> (
    let key = cache_key ~scenario ~opts config loop in
    match
      Hcrf_cache.Cache.find ~trace ~validate:(entry_compatible loop) c key
    with
    | Some entry -> result_of_entry config loop entry
    | None ->
      let entry = compute_entry ~trace ~scenario ~opts config loop in
      Hcrf_cache.Cache.add ~trace c key entry;
      result_of_entry config loop entry)

(** Schedule one loop; [None] if the scheduler could not find a schedule
    (logged; does not happen for the shipped suites).  With a cache in
    [ctx] the outcome is looked up by content-addressed key first; a hit
    replays the stored schedule instead of re-running the engine and
    yields a byte-identical [loop_result]. *)
let run_loop ?(ctx = Ctx.default) config (loop : Loop.t) =
  let trace = Hcrf_obs.Tracer.start ctx.Ctx.tracer ~label:(Loop.name loop) in
  let r = run_loop_traced ~ctx ~trace config loop in
  Hcrf_obs.Tracer.commit ctx.Ctx.tracer trace;
  r

(** Schedule a whole suite; loops that fail to schedule are dropped (and
    logged).  [ctx.jobs] > 1 fans the loops out over a pool of domains
    ({!Par}).  Results AND trace buffers come back in input order, and
    buffers are committed to the tracer's sinks serially in that order —
    so aggregates, counter totals and JSONL files are all identical to
    the serial path. *)
let run_suite ?(ctx = Ctx.default) config loops =
  let pairs =
    Par.map ~jobs:ctx.Ctx.jobs
      (fun loop ->
        let trace =
          Hcrf_obs.Tracer.start ctx.Ctx.tracer ~label:(Loop.name loop)
        in
        (run_loop_traced ~ctx ~trace config loop, trace))
      loops
  in
  List.filter_map
    (fun (r, trace) ->
      Hcrf_obs.Tracer.commit ctx.Ctx.tracer trace;
      r)
    pairs

(** Traced parallel map for drivers that run the engine directly rather
    than through [run_loop]: each work unit gets a trace labelled by
    [label], threaded to [f], and committed in input order. *)
let par_map ~(ctx : Ctx.t) ~label f items =
  let pairs =
    Par.map ~jobs:ctx.Ctx.jobs
      (fun x ->
        let trace =
          Hcrf_obs.Tracer.start ctx.Ctx.tracer ~label:(label x)
        in
        (f ~trace x, trace))
      items
  in
  List.map
    (fun (r, trace) ->
      Hcrf_obs.Tracer.commit ctx.Ctx.tracer trace;
      r)
    pairs

let aggregate config results =
  Metrics.aggregate config (List.map (fun r -> r.perf) results)

(* ------------------------------------------------------------------ *)
(* Deprecated pre-Ctx entry points                                     *)

let run_loop_legacy ?(scenario = Ideal) ?(opts = Engine.default_options)
    ?cache config loop =
  run_loop ~ctx:(Ctx.make ~scenario ~opts ?cache ()) config loop

let run_suite_legacy ?(scenario = Ideal) ?(opts = Engine.default_options)
    ?cache ?(jobs = 1) config loops =
  run_suite ~ctx:(Ctx.make ~scenario ~opts ?cache ~jobs ()) config loops

(** Drive the scheduler (and optionally the memory simulator) over a
    suite of loops for one processor configuration. *)

open Hcrf_ir
open Hcrf_sched
module Tr = Hcrf_obs.Trace
module Ev = Hcrf_obs.Event

type memory_scenario =
  | Ideal  (** every access hits; no stall cycles (§6.1) *)
  | Real of { prefetch : bool }
      (** cache simulation, optionally with selective binding
          prefetching (§6.2) *)

(** Everything one evaluation run needs, in one record.  Built once,
    passed to every [run_loop]/[run_suite]/[run_pipeline] call — instead
    of threading five optional arguments through every driver. *)
module Ctx = struct
  type t = {
    scenario : memory_scenario;
    opts : Engine.options;
    cache : Hcrf_cache.Cache.t option;
    memo : Memo.t option;
    jobs : int;
    tracer : Hcrf_obs.Tracer.t;
  }

  let default =
    {
      scenario = Ideal;
      opts = Engine.default_options;
      cache = None;
      memo = None;
      jobs = 1;
      tracer = Hcrf_obs.Tracer.null;
    }

  let make ?(scenario = Ideal) ?(opts = Engine.default_options) ?cache
      ?memo ?(jobs = 1) ?(tracer = Hcrf_obs.Tracer.null) () =
    { scenario; opts; cache; memo; jobs; tracer }
end

type loop_result = {
  loop : Loop.t;
  outcome : Engine.outcome;
  perf : Metrics.loop_perf;
}

let spill_slab = 0x4000_0000

(* Memory references of the final graph for the cache simulation.
   Original operations replay their loop streams; spill operations get a
   per-op stack slot (stride 0: same location every iteration). *)
let mem_refs (config : Hcrf_machine.Config.t) (loop : Loop.t)
    (o : Engine.outcome) ~(override : int -> int option) =
  let hit = config.lats.Hcrf_machine.Latencies.mem_read in
  let spill_idx = ref 0 in
  List.filter_map
    (fun v ->
      let kind = Ddg.kind o.Engine.graph v in
      if not (Hcrf_ir.Op.is_memory kind) then None
      else
        let issue = Schedule.cycle_of o.Engine.schedule v in
        let is_load =
          match kind with
          | Op.Load | Op.Spill_load -> true
          | _ -> false
        in
        let base, stride =
          match Loop.stream_for loop v with
          | Some s -> (s.Loop.base, s.Loop.stride)
          | None ->
            incr spill_idx;
            (spill_slab + (64 * !spill_idx), 0)
        in
        let sched_latency =
          if is_load then
            match override v with Some l -> l | None -> hit
          else 0
        in
        Some
          { Hcrf_memsim.Sim.node = v; is_load; issue_offset = issue;
            sched_latency; base; stride })
    (Ddg.nodes o.Engine.graph)

let scenario_tag = function
  | Ideal -> "ideal"
  | Real { prefetch = false } -> "real"
  | Real { prefetch = true } -> "prefetch"

(** Canonical cache key of one [run_loop] invocation: configuration,
    loop (graph, streams, trip/entry counts), scheduler options and the
    memory scenario.  [opts.load_override] is *not* sampled: the runner
    always replaces it with the override derived from the scenario and
    loop, both of which the key covers.  The tracer is not part of the
    key either — tracing must never change what is computed. *)
let cache_key_of_fp ~scenario ~opts (config : Hcrf_machine.Config.t)
    ~loop_fp =
  Hcrf_cache.Fingerprint.combine
    [ Hcrf_cache.Fingerprint.of_config config;
      loop_fp;
      Hcrf_cache.Fingerprint.of_options opts;
      Hcrf_cache.Fingerprint.of_string (scenario_tag scenario) ]

let cache_key ~scenario ~opts config (loop : Loop.t) =
  cache_key_of_fp ~scenario ~opts config
    ~loop_fp:(Hcrf_cache.Fingerprint.of_loop loop)

let warn_no_schedule (config : Hcrf_machine.Config.t) loop ii =
  Logs.warn (fun m ->
      m "no schedule for %s on %s up to II=%d" (Loop.name loop)
        config.Hcrf_machine.Config.name ii)

let result_of_parts loop outcome ~stall_cycles ~retries =
  { loop; outcome;
    perf = Metrics.of_outcome ~stall_cycles ~retries loop outcome }

(* The uncached work: schedule (with escalation) and, under a real
   memory scenario, simulate the stalls.  Returns everything a cache
   entry needs. *)
let compute ~scenario ~opts ~trace (config : Hcrf_machine.Config.t)
    (loop : Loop.t) =
  let override =
    match scenario with
    | Real { prefetch = true } -> Hcrf_memsim.Prefetch.plan config loop
    | Ideal | Real { prefetch = false } -> Hcrf_memsim.Prefetch.none
  in
  let opts = { opts with Engine.load_override = override } in
  (* escalating retries: a dropped loop would silently bias every
     aggregate metric, so spend more budget (and allow any II) before
     giving up.  The rung count feeds [Metrics.sched_stats.retries]. *)
  let retries = ref 0 in
  let escalate rung =
    incr retries;
    if Tr.enabled trace then Tr.emit trace (Ev.Budget_escalate { rung })
  in
  let result =
    match Engine.schedule ~opts ~trace config loop.Loop.ddg with
    | Ok o -> Ok o
    | Error _ -> (
      escalate 1;
      let opts = { opts with Engine.budget_ratio = 16 } in
      match Engine.schedule ~opts ~trace config loop.Loop.ddg with
      | Ok o -> Ok o
      | Error _ ->
        escalate 2;
        Engine.schedule
          ~opts:{ opts with Engine.budget_ratio = 32; max_ii = Some 4096 }
          ~trace config loop.Loop.ddg)
  in
  match result with
  | Error (`No_schedule ii) -> Error ii
  | Ok outcome ->
    let stall_cycles =
      match scenario with
      | Ideal -> 0.
      | Real _ ->
        let refs = mem_refs config loop outcome ~override in
        let r =
          Tr.span trace Ev.Memsim (fun () ->
              Hcrf_memsim.Sim.run ~ii:outcome.Engine.ii
                ~hit_read:config.lats.Hcrf_machine.Latencies.mem_read
                ~miss_cycles:(Hcrf_machine.Config.miss_cycles config)
                ~n:loop.Loop.trip_count ~e:loop.Loop.entries refs)
        in
        r.Hcrf_memsim.Sim.stall_cycles
    in
    Ok (outcome, stall_cycles, !retries)

(* The uncached work packaged as a closure-free cache entry.  This is
   the single compute path shared by [run_loop] and the serving daemon's
   miss handler, so both produce (and persist) identical entries. *)
let compute_entry ?(trace = Tr.off) ~scenario ~opts config (loop : Loop.t) =
  match compute ~scenario ~opts ~trace config loop with
  | Error ii -> Hcrf_cache.Entry.Failed ii
  | Ok (outcome, stall_cycles, retries) ->
    Hcrf_cache.Entry.of_outcome config outcome
      ~input_digest:(Hcrf_cache.Entry.ddg_digest loop.Loop.ddg)
      ~stall_cycles ~retries

(* Replay an entry — fresh or cached, same code either way — into a
   [loop_result]; [None] for [Failed] entries, with the same warning as
   a live failure. *)
let result_of_entry config (loop : Loop.t) = function
  | Hcrf_cache.Entry.Failed ii ->
    warn_no_schedule config loop ii;
    None
  | Hcrf_cache.Entry.Scheduled { outcome; stall_cycles; retries; _ } ->
    Some
      (result_of_parts loop
         (Hcrf_cache.Entry.to_outcome config outcome)
         ~stall_cycles ~retries)

(* The key's WL fingerprint equates isomorphic loops, but stored
   assignments are bound to concrete node ids: only replay entries whose
   input graph had exactly this loop's ids. *)
let entry_compatible (loop : Loop.t) =
  let digest = Hcrf_cache.Entry.ddg_digest loop.Loop.ddg in
  function
  | Hcrf_cache.Entry.Failed _ -> true
  | Hcrf_cache.Entry.Scheduled { input_digest; _ } ->
    String.equal input_digest digest

(* One loop's work under an already-started trace.  Does NOT commit the
   trace: callers commit in input order ([run_suite]) or right away
   ([run_loop]). *)
let run_loop_traced ~(ctx : Ctx.t) ~trace config (loop : Loop.t) :
    loop_result option =
  let { Ctx.scenario; opts; cache; _ } = ctx in
  match cache with
  | None ->
    result_of_entry config loop
      (compute_entry ~trace ~scenario ~opts config loop)
  | Some c -> (
    let key = cache_key ~scenario ~opts config loop in
    match
      Hcrf_cache.Cache.find ~trace ~validate:(entry_compatible loop) c key
    with
    | Some entry -> result_of_entry config loop entry
    | None ->
      let entry = compute_entry ~trace ~scenario ~opts config loop in
      Hcrf_cache.Cache.add ~trace c key entry;
      result_of_entry config loop entry)

(** Schedule one loop; [None] if the scheduler could not find a schedule
    (logged; does not happen for the shipped suites).  With a cache in
    [ctx] the outcome is looked up by content-addressed key first; a hit
    replays the stored schedule instead of re-running the engine and
    yields a byte-identical [loop_result]. *)
let run_loop ?(ctx = Ctx.default) config (loop : Loop.t) =
  let trace = Hcrf_obs.Tracer.start ctx.Ctx.tracer ~label:(Loop.name loop) in
  let r = run_loop_traced ~ctx ~trace config loop in
  Hcrf_obs.Tracer.commit ctx.Ctx.tracer trace;
  r

(** Schedule a whole suite; loops that fail to schedule are dropped (and
    logged).  [ctx.jobs] > 1 fans the loops out over a pool of domains
    ({!Par}).  Results AND trace buffers come back in input order, and
    buffers are committed to the tracer's sinks serially in that order —
    so aggregates, counter totals and JSONL files are all identical to
    the serial path. *)
let run_suite ?(ctx = Ctx.default) config loops =
  let pairs =
    Par.map ~jobs:ctx.Ctx.jobs
      (fun loop ->
        let trace =
          Hcrf_obs.Tracer.start ctx.Ctx.tracer ~label:(Loop.name loop)
        in
        (run_loop_traced ~ctx ~trace config loop, trace))
      loops
  in
  List.filter_map
    (fun (r, trace) ->
      Hcrf_obs.Tracer.commit ctx.Ctx.tracer trace;
      r)
    pairs

(** Traced parallel map for drivers that run the engine directly rather
    than through [run_loop]: each work unit gets a trace labelled by
    [label], threaded to [f], and committed in input order. *)
let par_map ~(ctx : Ctx.t) ~label f items =
  let pairs =
    Par.map ~jobs:ctx.Ctx.jobs
      (fun x ->
        let trace =
          Hcrf_obs.Tracer.start ctx.Ctx.tracer ~label:(label x)
        in
        (f ~trace x, trace))
      items
  in
  List.map
    (fun (r, trace) ->
      Hcrf_obs.Tracer.commit ctx.Ctx.tracer trace;
      r)
    pairs

let aggregate config results =
  Metrics.aggregate config (List.map (fun r -> r.perf) results)

(* ------------------------------------------------------------------ *)
(* Incremental pipeline evaluation                                     *)

type pipeline_stats = {
  total : int;
  memo_hits : int;
  cache_hits : int;
  computed : int;
  coalesced : int;
  metric_hits : int;
  dirty : string list;
}

let zero_pipeline_stats =
  {
    total = 0;
    memo_hits = 0;
    cache_hits = 0;
    computed = 0;
    coalesced = 0;
    metric_hits = 0;
    dirty = [];
  }

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Emit one stage-memo event with the time spent since [t0]. *)
let emit_incr trace stage op t0 =
  if Tr.enabled trace then
    Tr.emit trace (Ev.Incr { stage; op; ns = now_ns () - t0 })

(* How the schedule stage of one loop will be (or was) answered. *)
type sched_src =
  | From_entry of Hcrf_cache.Entry.t  (* memo or shared-cache hit *)
  | Compute  (* this loop owns the engine run for its key *)
  | Join of int  (* same key as the owner at this index *)

(* Evaluate a suite as the staged pipeline: per loop, the *extract*
   stage memoizes the WL fingerprint (keyed by a cheap id-sensitive
   structural digest), the *sched* stage memoizes the schedule entry
   (keyed by the full cache key), and the *metric* stage memoizes the
   derived [loop_perf] (keyed by cache key + loop name, the one input
   the WL fingerprint deliberately excludes).

   Stage classification runs serially in input order — which loop hits,
   misses, joins an in-flight duplicate or owns a computation is decided
   before any parallelism, so stage counters and stats are identical at
   any job count.  Only the dirty owners are then fanned out on the
   [Par] pool; results replay through [result_of_entry]/the metric memo,
   byte-identical to a cold run (up to re-measured [sched_seconds]). *)
let run_pipeline ?(ctx = Ctx.default) config loops =
  let { Ctx.scenario; opts; cache; memo; _ } = ctx in
  let n = List.length loops in
  let loops_a = Array.of_list loops in
  let traces =
    Array.map
      (fun loop -> Hcrf_obs.Tracer.start ctx.Ctx.tracer ~label:(Loop.name loop))
      loops_a
  in
  let stats = ref { zero_pipeline_stats with total = n } in
  (* pass 1 (serial, input order): extract + sched classification *)
  let keys = Array.make n (Hcrf_cache.Fingerprint.of_string "") in
  let srcs = Array.make n Compute in
  let owners : (string, int) Hashtbl.t = Hashtbl.create (max 16 n) in
  Array.iteri
    (fun i loop ->
      let trace = traces.(i) in
      let loop_fp =
        match memo with
        | None -> Hcrf_cache.Fingerprint.of_loop loop
        | Some m -> (
          let t0 = now_ns () in
          let skey = Digest.string (Marshal.to_string (Memo.snapshot_of_loop loop) []) in
          match Memo.find m ~stage:Ev.Extract skey with
          | Some (Memo.Fp_v fp) ->
            emit_incr trace Ev.Extract Ev.Stage_hit t0;
            fp
          | Some _ | None ->
            emit_incr trace Ev.Extract Ev.Stage_miss t0;
            let t1 = now_ns () in
            let fp = Hcrf_cache.Fingerprint.of_loop loop in
            Memo.add m ~stage:Ev.Extract skey (Memo.Fp_v fp);
            emit_incr trace Ev.Extract Ev.Stage_recompute t1;
            fp)
      in
      let key = cache_key_of_fp ~scenario ~opts config ~loop_fp in
      keys.(i) <- key;
      let khex = Hcrf_cache.Fingerprint.to_hex key in
      let memo_entry =
        match memo with
        | None -> None
        | Some m -> (
          let t0 = now_ns () in
          match Memo.find m ~stage:Ev.Sched khex with
          | Some (Memo.Entry_v e) when entry_compatible loop e ->
            emit_incr trace Ev.Sched Ev.Stage_hit t0;
            Some e
          | Some _ | None ->
            emit_incr trace Ev.Sched Ev.Stage_miss t0;
            None)
      in
      srcs.(i) <-
        (match memo_entry with
        | Some e ->
          stats := { !stats with memo_hits = !stats.memo_hits + 1 };
          From_entry e
        | None -> (
          let cached =
            Option.bind cache (fun c ->
                Hcrf_cache.Cache.find ~trace
                  ~validate:(entry_compatible loop) c key)
          in
          match cached with
          | Some e ->
            stats := { !stats with cache_hits = !stats.cache_hits + 1 };
            From_entry e
          | None -> (
            match Hashtbl.find_opt owners khex with
            | Some owner ->
              stats := { !stats with coalesced = !stats.coalesced + 1 };
              Join owner
            | None ->
              Hashtbl.add owners khex i;
              stats :=
                { !stats with
                  computed = !stats.computed + 1;
                  dirty = Loop.name loop :: !stats.dirty };
              Compute))))
    loops_a;
  stats := { !stats with dirty = List.rev !stats.dirty };
  (* pass 2 (parallel): engine runs for the dirty owners only *)
  let owner_idx =
    List.filter
      (fun i -> match srcs.(i) with Compute -> true | _ -> false)
      (List.init n Fun.id)
  in
  let fresh : (int * Hcrf_cache.Entry.t) list =
    Par.map ~jobs:ctx.Ctx.jobs
      (fun i ->
        let trace = traces.(i) in
        let t0 = now_ns () in
        let entry =
          compute_entry ~trace ~scenario ~opts config loops_a.(i)
        in
        emit_incr trace Ev.Sched Ev.Stage_recompute t0;
        (i, entry))
      owner_idx
  in
  let entries = Array.make n None in
  Array.iteri
    (fun i src ->
      match src with From_entry e -> entries.(i) <- Some e | _ -> ())
    srcs;
  List.iter (fun (i, e) -> entries.(i) <- Some e) fresh;
  List.iter
    (fun i ->
      match srcs.(i) with
      | Join owner -> entries.(i) <- entries.(owner)
      | _ -> ())
    (List.init n Fun.id);
  (* pass 3 (serial, input order): store fresh entries, derive metrics
     through the metric memo, commit traces *)
  let results =
    List.init n (fun i ->
        let loop = loops_a.(i) in
        let trace = traces.(i) in
        let entry = Option.get entries.(i) in
        (match srcs.(i) with
        | Compute ->
          Option.iter
            (fun c -> Hcrf_cache.Cache.add ~trace c keys.(i) entry)
            cache;
          Option.iter
            (fun m ->
              Memo.add m ~stage:Ev.Sched
                (Hcrf_cache.Fingerprint.to_hex keys.(i))
                (Memo.Entry_v entry))
            memo
        | From_entry _ | Join _ -> ());
        let perf =
          match memo with
          | None -> Option.map (fun r -> r.perf) (result_of_entry config loop entry)
          | Some m -> (
            let mkey =
              Hcrf_cache.Fingerprint.to_hex
                (Hcrf_cache.Fingerprint.combine
                   [ keys.(i);
                     Hcrf_cache.Fingerprint.of_string (Loop.name loop) ])
            in
            let t0 = now_ns () in
            match Memo.find m ~stage:Ev.Metric mkey with
            | Some (Memo.Perf_v p) ->
              emit_incr trace Ev.Metric Ev.Stage_hit t0;
              stats := { !stats with metric_hits = !stats.metric_hits + 1 };
              p
            | Some _ | None ->
              emit_incr trace Ev.Metric Ev.Stage_miss t0;
              let t1 = now_ns () in
              let p =
                Option.map (fun r -> r.perf)
                  (result_of_entry config loop entry)
              in
              Memo.add m ~stage:Ev.Metric mkey (Memo.Perf_v p);
              emit_incr trace Ev.Metric Ev.Stage_recompute t1;
              p)
        in
        Hcrf_obs.Tracer.commit ctx.Ctx.tracer trace;
        perf)
  in
  (results, !stats)

let pp_pipeline_stats ppf s =
  Fmt.pf ppf
    "loops=%d memo_hits=%d cache_hits=%d recomputed=%d coalesced=%d \
     metric_hits=%d"
    s.total s.memo_hits s.cache_hits s.computed s.coalesced s.metric_hits

(** Drivers reproducing every table and figure of the paper's evaluation.

    Each function returns the data and prints a paper-shaped table with
    [pp_*]; `bench/main.exe` ties them together and EXPERIMENTS.md
    records measured-vs-published values. *)

open Hcrf_machine
open Hcrf_model
open Hcrf_sched

(* ------------------------------------------------------------------ *)
(* Figure 1: IPC vs resources, monolithic RF with unbounded registers  *)

let figure1 ?(ctx = Runner.Ctx.default) ~loops () =
  List.map
    (fun config ->
      let results = Runner.run_suite ~ctx config loops in
      let a = Runner.aggregate config results in
      (config.Config.name, Metrics.ipc a))
    (Presets.figure1_configs ())

let pp_figure1 ppf rows =
  Fmt.pf ppf "@[<v>Figure 1: IPC vs. resources (x FUs + y mem ports)@,";
  List.iter (fun (name, ipc) -> Fmt.pf ppf "  %-6s  IPC = %.2f@," name ipc)
    rows;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Table 1: cycle breakdown by loop bound for equal-capacity RFs       *)

type table1_row = {
  t1_config : string;
  t1_shares : (Classify.bound * float * float) list;
      (** bound, % of loops, execution cycles *)
  t1_total_cycles : float;
}

(* The 1C64S64 motivational configuration is scheduled with the §4 port
   counts for one cluster (lp=4, sp=2); Table 2's hardware numbers keep
   the published lp=sp=1 (the paper mixes the two). *)
let table1_configs () =
  let row = { Hw_table.c1c64s64 with Hw_table.lp = 4; sp = 2 } in
  [ Presets.published "S128"; Presets.published "4C32";
    Presets.of_published row ]

let table1 ?(ctx = Runner.Ctx.default) ~loops () =
  List.map
    (fun config ->
      let results = Runner.run_suite ~ctx config loops in
      let a = Runner.aggregate config results in
      let nloops = float_of_int a.Metrics.loops in
      {
        t1_config = config.Config.name;
        t1_shares =
          List.map
            (fun (b, n, cycles) ->
              (b, 100. *. float_of_int n /. nloops, cycles))
            a.Metrics.bound_share;
        t1_total_cycles = a.Metrics.exec_cycles;
      })
    (table1_configs ())

let pp_table1 ppf rows =
  Fmt.pf ppf "@[<v>Table 1: loop classification (ideal memory)@,";
  Fmt.pf ppf "  %-10s" "bound";
  List.iter (fun r -> Fmt.pf ppf " | %16s" r.t1_config) rows;
  Fmt.pf ppf "@,";
  List.iter
    (fun b ->
      Fmt.pf ppf "  %-10s" (Classify.name b);
      List.iter
        (fun r ->
          let _, pct, cycles =
            List.find (fun (b', _, _) -> b' = b) r.t1_shares
          in
          Fmt.pf ppf " | %5.1f%% %8.2e" pct cycles)
        rows;
      Fmt.pf ppf "@,")
    Classify.all;
  Fmt.pf ppf "  %-10s" "Total";
  List.iter (fun r -> Fmt.pf ppf " | 100.0%% %8.2e" r.t1_total_cycles) rows;
  Fmt.pf ppf "@,@]"

(* ------------------------------------------------------------------ *)
(* Tables 2 and 5: hardware model vs the published numbers             *)

type hw_row = {
  hw_notation : string;
  lp_sp : int * int;
  model_access_c : float;
  model_access_s : float option;
  model_area_total : float;
  model_depth : int;
  model_clock : float;
  model_mem_lat : int;
  model_fu_lat : int;
  published : Hw_table.row;
}

let hw_row (row : Hw_table.row) =
  let config =
    Config.make
      (Presets.rf_of ~notation:row.Hw_table.notation ~lp:row.Hw_table.lp
         ~sp:row.Hw_table.sp)
  in
  let est = Cacti.estimate config in
  let clock = Timing.cycle_ns ~access_ns:est.Cacti.local_access_ns in
  let lats =
    Timing.latencies ~access_ns:est.Cacti.local_access_ns
      ~shared_access_ns:est.Cacti.shared_access_ns
  in
  {
    hw_notation = row.Hw_table.notation;
    lp_sp = (row.Hw_table.lp, row.Hw_table.sp);
    model_access_c = est.Cacti.local_access_ns;
    model_access_s = est.Cacti.shared_access_ns;
    model_area_total = est.Cacti.total_area_mlambda2;
    model_depth = Timing.logic_depth_fo4 ~access_ns:est.Cacti.local_access_ns;
    model_clock = clock;
    model_mem_lat = lats.Latencies.mem_read;
    model_fu_lat = lats.Latencies.fadd;
    published = row;
  }

let table2 () =
  List.map hw_row
    [ Hw_table.find_exn "S128"; Hw_table.find_exn "4C32"; Hw_table.c1c64s64 ]

let table5 () = List.map hw_row Hw_table.table5

let pp_hw_rows ~title ppf rows =
  Fmt.pf ppf "@[<v>%s@," title;
  Fmt.pf ppf
    "  %-9s %-5s | model: accC accS area clk mem/fu | published: accC accS \
     area clk mem/fu@,"
    "config" "lp-sp";
  List.iter
    (fun r ->
      let p = r.published in
      Fmt.pf ppf
        "  %-9s %d-%-3d | %5.3f %5s %6.2f %5.3f %d/%d | %5.3f %5s %6.2f \
         %5.3f %d/%d@,"
        r.hw_notation (fst r.lp_sp) (snd r.lp_sp) r.model_access_c
        (match r.model_access_s with
        | Some a -> Fmt.str "%5.3f" a
        | None -> "--")
        r.model_area_total r.model_clock r.model_mem_lat r.model_fu_lat
        p.Hw_table.access_local_ns
        (match p.Hw_table.access_shared_ns with
        | Some a -> Fmt.str "%5.3f" a
        | None -> "--")
        p.Hw_table.area_total_mlambda2 p.Hw_table.clock_ns
        p.Hw_table.mem_latency p.Hw_table.fu_latency)
    rows;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Table 3: static evaluation with unbounded registers                 *)

type table3_row = {
  t3_config : string;
  t3_unbounded : float * int * float; (** %MII, sum II, sched seconds *)
  t3_bounded : float * int * float;
}

let table3 ?(ctx = Runner.Ctx.default) ~loops () =
  List.map
    (fun notation ->
      let run bounded =
        let config =
          Presets.static_config ~bounded_bandwidth:bounded notation
        in
        let a =
          Runner.aggregate config (Runner.run_suite ~ctx config loops)
        in
        (a.Metrics.pct_at_mii, a.Metrics.sum_ii, a.Metrics.sched_seconds)
      in
      {
        t3_config = notation;
        t3_unbounded = run false;
        t3_bounded = run true;
      })
    Presets.table3_notations

let pp_table3 ppf rows =
  Fmt.pf ppf "@[<v>Table 3: static evaluation, unbounded registers@,";
  Fmt.pf ppf "  %-10s | unbounded bw: %%MII sumII time | bounded bw: %%MII \
              sumII time@,"
    "config";
  List.iter
    (fun r ->
      let u1, u2, u3 = r.t3_unbounded and b1, b2, b3 = r.t3_bounded in
      Fmt.pf ppf "  %-10s | %13.1f %5d %5.1fs | %11.1f %5d %5.1fs@,"
        r.t3_config u1 u2 u3 b1 b2 b3)
    rows;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Table 4: MIRS_HC vs the non-iterative scheduler of [36]             *)

type table4 = {
  t4_better : int * int * int;  (** loops, sumII noniter, sumII mirs_hc *)
  t4_equal : int * int * int;
  t4_worse : int * int * int;   (** loops where [36] is better *)
}

let table4 ?(config = Presets.published "1C32S64")
    ?(ctx = Runner.Ctx.default) ~loops () =
  let better = ref (0, 0, 0) and equal = ref (0, 0, 0)
  and worse = ref (0, 0, 0) in
  let bump r ni hc =
    let a, b, c = !r in
    r := (a + 1, b + ni, c + hc)
  in
  (* both schedulers run per loop independently: fan the duels out and
     fold the ordered results serially *)
  let duels =
    Runner.par_map ~ctx ~label:Hcrf_ir.Loop.name
      (fun ~trace (l : Hcrf_ir.Loop.t) ->
        ( Hcrf_core.Noniter.schedule ~trace config l.Hcrf_ir.Loop.ddg,
          Hcrf_core.Mirs_hc.schedule ~trace config l.Hcrf_ir.Loop.ddg ))
      loops
  in
  List.iter
    (fun (ni, hc) ->
      match (ni, hc) with
      | Ok ni, Ok hc ->
        let nii = ni.Engine.ii and hii = hc.Engine.ii in
        if hii < nii then bump better nii hii
        else if hii = nii then bump equal nii hii
        else bump worse nii hii
      | Error _, Ok hc ->
        (* the non-iterative scheduler failed: count a large II *)
        bump better (4 * hc.Engine.ii) hc.Engine.ii
      | Ok ni, Error _ -> bump worse ni.Engine.ii (4 * ni.Engine.ii)
      | Error _, Error _ -> ())
    duels;
  { t4_better = !better; t4_equal = !equal; t4_worse = !worse }

let pp_table4 ppf t =
  let row ppf (label, (n, ni, hc)) =
    Fmt.pf ppf "  %-28s %5d loops | sumII [36]=%5d  MIRS_HC=%5d@," label n
      ni hc
  in
  let tot (a, b, c) (a', b', c') = (a + a', b + b', c + c') in
  Fmt.pf ppf "@[<v>Table 4: [36] vs MIRS_HC (hierarchical RF)@,%a%a%a%a@]"
    row ("MIRS_HC better", t.t4_better)
    row ("equal", t.t4_equal)
    row ("[36] better", t.t4_worse)
    row ("Total", tot (tot t.t4_better t.t4_equal) t.t4_worse)

(* ------------------------------------------------------------------ *)
(* Figure 4: LoadR/StoreR port demand CDF                              *)

type figure4_row = {
  f4_clusters : int;
  f4_lp_cdf : (int * float) list;  (** ports k, % of loops needing <= k *)
  f4_sp_cdf : (int * float) list;
}

(* Average per-bank port demand of a loop scheduled with unbounded
   inter-level bandwidth: the number of LoadR (resp. StoreR) operations
   per distributed bank per II cycle, rounded up — the paper's "loops
   that require, on average, a specific number of LoadR ports". *)
let port_demand (o : Engine.outcome) ~clusters =
  let ii = o.Engine.ii in
  let count kind =
    Hcrf_ir.Ddg.count_kind o.Engine.graph (Hcrf_ir.Op.equal_kind kind)
  in
  let avg_ports n = (n + (clusters * ii) - 1) / (clusters * ii) in
  (avg_ports (count Hcrf_ir.Op.Load_r), avg_ports (count Hcrf_ir.Op.Store_r))

let figure4 ?(max_lp = 6) ?(max_sp = 4) ?(ctx = Runner.Ctx.default)
    ~loops () =
  List.map
    (fun clusters ->
      let notation = Fmt.str "%dCinfSinf" clusters in
      let config = Presets.static_config ~bounded_bandwidth:false notation in
      let demands =
        List.filter_map Fun.id
          (Runner.par_map ~ctx ~label:Hcrf_ir.Loop.name
             (fun ~trace (l : Hcrf_ir.Loop.t) ->
               match
                 Hcrf_core.Mirs_hc.schedule ~trace config
                   l.Hcrf_ir.Loop.ddg
               with
               | Ok o -> Some (port_demand o ~clusters)
               | Error _ -> None)
             loops)
      in
      let total = float_of_int (max 1 (List.length demands)) in
      let cdf max_k select =
        List.init (max_k + 1) (fun k ->
            let le =
              List.length (List.filter (fun d -> select d <= k) demands)
            in
            (k, 100. *. float_of_int le /. total))
      in
      {
        f4_clusters = clusters;
        f4_lp_cdf = cdf max_lp fst;
        f4_sp_cdf = cdf max_sp snd;
      })
    [ 1; 2; 4; 8 ]

let pp_figure4 ppf rows =
  Fmt.pf ppf "@[<v>Figure 4: cumulative port demand (unbounded bandwidth)@,";
  List.iter
    (fun r ->
      let item ppf (k, p) = Fmt.pf ppf "<=%d:%5.1f%%" k p in
      Fmt.pf ppf "  %d cluster(s): LoadR  %a@,               StoreR %a@,"
        r.f4_clusters
        Fmt.(list ~sep:(any "  ") item)
        r.f4_lp_cdf
        Fmt.(list ~sep:(any "  ") item)
        r.f4_sp_cdf)
    rows;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Table 6: performance with ideal memory                              *)

type perf_row = {
  p_config : string;
  p_exec_cycles : float;
  p_useful : float;
  p_stall : float;
  p_traffic : float;
  p_exec_seconds : float;
  p_rel_time : float;       (** execution time relative to S64 *)
  p_speedup : float;        (** S64 time / this time *)
}

let perf_rows ?(ctx = Runner.Ctx.default) ~scenario ~configs ~loops () =
  let ctx = { ctx with Runner.Ctx.scenario } in
  let aggregates =
    List.map
      (fun config ->
        ( config,
          Runner.aggregate config (Runner.run_suite ~ctx config loops) ))
      configs
  in
  let base =
    match
      List.find_opt
        (fun (c, _) -> c.Config.name = "S64")
        aggregates
    with
    | Some (_, a) -> a.Metrics.exec_seconds
    | None -> (
      match aggregates with
      | (_, a) :: _ -> a.Metrics.exec_seconds
      | [] -> 1.)
  in
  List.map
    (fun ((_ : Config.t), a) ->
      {
        p_config = a.Metrics.config;
        p_exec_cycles = a.Metrics.exec_cycles;
        p_useful = a.Metrics.useful;
        p_stall = a.Metrics.stall;
        p_traffic = a.Metrics.total_traffic;
        p_exec_seconds = a.Metrics.exec_seconds;
        p_rel_time = a.Metrics.exec_seconds /. base;
        p_speedup = base /. a.Metrics.exec_seconds;
      })
    aggregates

let table6 ?ctx ~loops () =
  perf_rows ?ctx ~scenario:Runner.Ideal
    ~configs:(Presets.table5_configs ()) ~loops ()

let pp_table6 ppf rows =
  Fmt.pf ppf "@[<v>Table 6: performance, ideal memory (relative to S64)@,";
  Fmt.pf ppf "  %-9s | exec cycles | mem traffic | rel. time | speedup@,"
    "config";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-9s | %11.3e | %11.3e | %9.3f | %7.3f@," r.p_config
        r.p_exec_cycles r.p_traffic r.p_rel_time r.p_speedup)
    rows;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Ablations: which parts of MIRS_HC buy what                          *)

type ablation_row = {
  a_name : string;
  a_sum_ii : int;
  a_pct_mii : float;
  a_failed : int;      (** loops the variant could not schedule *)
  a_seconds : float;
}

(** Scheduler ablations on one configuration: the full iterative engine
    against variants with backtracking disabled, plain topological
    ordering, and smaller/larger Budget ratios. *)
let ablations ?(config = Presets.published "2C32S32")
    ?(ctx = Runner.Ctx.default) ~loops () =
  let variants =
    [
      ("mirs_hc (full)", Engine.default_options);
      ( "no backtracking",
        { Engine.default_options with backtracking = false } );
      ( "topological order",
        { Engine.default_options with ordering = `Topological } );
      ( "neither",
        { Engine.default_options with backtracking = false;
          ordering = `Topological } );
      ("budget 2", { Engine.default_options with budget_ratio = 2 });
      ("budget 16", { Engine.default_options with budget_ratio = 16 });
    ]
  in
  List.map
    (fun (name, opts) ->
      let t0 = Unix.gettimeofday () in
      let sum_ii = ref 0 and at_mii = ref 0 and failed = ref 0 in
      let n = ref 0 in
      let outcomes =
        Runner.par_map ~ctx ~label:Hcrf_ir.Loop.name
          (fun ~trace (l : Hcrf_ir.Loop.t) ->
            Engine.schedule ~opts ~trace config l.Hcrf_ir.Loop.ddg)
          loops
      in
      List.iter
        (fun outcome ->
          incr n;
          match outcome with
          | Ok o ->
            sum_ii := !sum_ii + o.Engine.ii;
            if o.Engine.ii = o.Engine.mii then incr at_mii
          | Error _ -> incr failed)
        outcomes;
      {
        a_name = name;
        a_sum_ii = !sum_ii;
        a_pct_mii =
          (if !n = 0 then 0.
           else 100. *. float_of_int !at_mii /. float_of_int !n);
        a_failed = !failed;
        a_seconds = Unix.gettimeofday () -. t0;
      })
    variants

let pp_ablations ppf rows =
  Fmt.pf ppf "@[<v>Ablations (2C32S32): what each mechanism buys@,";
  Fmt.pf ppf "  %-18s | sumII | %%MII | failed | time@," "variant";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-18s | %5d | %4.1f | %6d | %4.1fs@," r.a_name
        r.a_sum_ii r.a_pct_mii r.a_failed r.a_seconds)
    rows;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Port-scarcity sweep: where does the hierarchy start paying?         *)

type scarcity_row = {
  sc_access : (int * int) option;
      (** per-bank (read, write) ports; [None] is unbounded *)
  sc_flat_sum_ii : int;
  sc_flat_seconds : float;
  sc_hier_sum_ii : int;
  sc_hier_seconds : float;
  sc_speedup : float;  (** flat time / hierarchical time (>1 = hier wins) *)
}

(* The ladder the sweep walks down, richest first.  (2,1) is the floor:
   one read port cannot even feed a two-operand FU. *)
let scarcity_ladder =
  [ None; Some (6, 4); Some (5, 3); Some (4, 3); Some (3, 2); Some (2, 1) ]

(* Uniform access-port override on every first-level bank of [rf]. *)
let rf_with_access rf acc =
  let access =
    Option.map
      (fun (pr, pw) -> Rf.access ~pr:(Cap.Finite pr) ~pw:(Cap.Finite pw))
      acc
  in
  match rf with
  | Rf.Monolithic m -> Rf.Monolithic { m with access }
  | Rf.Clustered c -> Rf.Clustered { c with access }
  | Rf.Hierarchical h -> Rf.Hierarchical { h with local_access = access }

(** Sweep per-bank access ports down [scarcity_ladder] on a flat
    clustered organization and its hierarchical rival (defaults: the
    paper's 4C32 against 4C16S16).  Both are modelled with
    {!Presets.of_model}, so scarcer ports also buy each point a faster
    cycle — the sweep answers the §6 design question end to end: at
    which port count does the hierarchical organization start paying?
    (With rich ports the flat organization's extra capacity wins; the
    narrower the per-bank access budget, the more the hierarchy's
    smaller, cheaper first-level banks claw back.) *)
let port_scarcity ?(flat = "4C32") ?(hier = "4C16S16")
    ?(ctx = Runner.Ctx.default) ~loops () =
  let flat_rf = Rf.of_notation flat and hier_rf = Rf.of_notation hier in
  let run rf acc =
    let config = Presets.of_model (rf_with_access rf acc) in
    Runner.aggregate config (Runner.run_suite ~ctx config loops)
  in
  List.map
    (fun acc ->
      let f = run flat_rf acc and h = run hier_rf acc in
      {
        sc_access = acc;
        sc_flat_sum_ii = f.Metrics.sum_ii;
        sc_flat_seconds = f.Metrics.exec_seconds;
        sc_hier_sum_ii = h.Metrics.sum_ii;
        sc_hier_seconds = h.Metrics.exec_seconds;
        sc_speedup = f.Metrics.exec_seconds /. h.Metrics.exec_seconds;
      })
    scarcity_ladder

(** First ladder point (walking richest to scarcest) where the
    hierarchy wins on execution time ([None] when the flat organization
    wins at every swept port count). *)
let scarcity_crossover rows =
  List.find_opt (fun r -> r.sc_speedup > 1.) rows
  |> Option.map (fun r -> r.sc_access)

let pp_access ppf = function
  | None -> Fmt.pf ppf "inf"
  | Some (pr, pw) -> Fmt.pf ppf "r%dw%d" pr pw

let pp_port_scarcity ppf rows =
  Fmt.pf ppf "@[<v>Port scarcity: flat vs. hierarchical execution time@,";
  Fmt.pf ppf "  ports | flat sumII  time | hier sumII  time | speedup@,";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %5s | %10d %5.2f | %10d %5.2f | %7.3f@,"
        (Fmt.str "%a" pp_access r.sc_access)
        r.sc_flat_sum_ii r.sc_flat_seconds r.sc_hier_sum_ii
        r.sc_hier_seconds r.sc_speedup)
    rows;
  (match scarcity_crossover rows with
  | Some acc ->
    Fmt.pf ppf "  crossover: hierarchy starts paying at %a@," pp_access acc
  | None ->
    Fmt.pf ppf "  crossover: none — flat wins at every swept port count@,");
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Figure 6: real memory with binding prefetching                      *)

let figure6_configs () =
  List.map Presets.published
    [ "S64"; "2C64"; "4C32"; "1C32S64"; "2C32S32"; "4C32S16"; "8C16S16" ]

let figure6 ?ctx ~loops () =
  let rows =
    perf_rows ?ctx
      ~scenario:(Runner.Real { prefetch = true })
      ~configs:(figure6_configs ()) ~loops ()
  in
  (* Figure 6 normalizes to the *useful* cycles of S64 *)
  let base_useful =
    match List.find_opt (fun r -> r.p_config = "S64") rows with
    | Some r -> r.p_useful
    | None -> 1.
  in
  let base_time =
    match List.find_opt (fun r -> r.p_config = "S64") rows with
    | Some r ->
      r.p_useful
      *. (Presets.published "S64").Config.cycle_ns
    | None -> 1.
  in
  List.map
    (fun r ->
      let cycle =
        (List.find
           (fun (c : Config.t) -> c.Config.name = r.p_config)
           (figure6_configs ()))
          .Config.cycle_ns
      in
      ( r.p_config,
        (r.p_useful /. base_useful, r.p_stall /. base_useful),
        ( r.p_useful *. cycle /. base_time,
          r.p_stall *. cycle /. base_time ) ))
    rows

let pp_figure6 ppf rows =
  Fmt.pf ppf
    "@[<v>Figure 6: real memory + binding prefetch (relative to S64 \
     useful)@,";
  Fmt.pf ppf "  %-9s | cycles useful+stall | time useful+stall@," "config";
  List.iter
    (fun (name, (cu, cs), (tu, ts)) ->
      Fmt.pf ppf "  %-9s | %6.3f + %5.3f = %6.3f | %6.3f + %5.3f = %6.3f@,"
        name cu cs (cu +. cs) tu ts (tu +. ts))
    rows;
  Fmt.pf ppf "@]"

(** One home for every [HCRF_*] environment variable.

    The harness and the CLI used to parse these independently; keeping
    the parsers (and the warnings for near-miss values) here means a
    variable behaves identically everywhere it is honoured:

    - [HCRF_LOOPS=<n>]  workbench size override;
    - [HCRF_JOBS=<n>]   worker-domain count;
    - [HCRF_CONFIG=<notation>] machine configuration pin (full extended
      grammar, e.g. [4C16S16-L3:64@r2w1]);
    - [HCRF_CACHE=<dir>] schedule cache backed by [dir]
      ([HCRF_CACHE=""] for in-memory only);
    - [HCRF_INCR=on|off|<dir>] incremental stage memo (in-memory for
      [on]; persisted under [dir] otherwise);
    - [HCRF_TRACE=<file>] JSONL event trace written to [file], plus
      in-process counters ([HCRF_TRACE=""] for counters only);
    - [HCRF_SERVE_ADDR=<addr>] default daemon address for [hcrf_serve]
      and the serve-bench client (a unix socket path, or [host:port]);
    - [HCRF_SERVE_LRU=<n>] capacity of the daemon's in-memory LRU tier.

    A typo'd value must not silently fall back (a full 1258-loop run
    because [HCRF_LOOPS=2O0] didn't parse is expensive), so every parser
    warns before using its default; {!warn_unknown} additionally flags
    [HCRF_*] names this version does not know at all. *)

let known =
  [ "HCRF_CACHE"; "HCRF_CONFIG"; "HCRF_INCR"; "HCRF_JOBS"; "HCRF_LOOPS";
    "HCRF_SERVE_ADDR"; "HCRF_SERVE_LRU"; "HCRF_TRACE" ]

(* HCRF_LOOPS override; anything non-numeric or <= 0 warns loudly. *)
let loops () =
  match Sys.getenv_opt "HCRF_LOOPS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> Some n
    | Some _ | None ->
      Logs.warn (fun m ->
          m "ignoring HCRF_LOOPS=%S (expected a positive integer); \
             falling back to the default loop count" s);
      None)

(* HCRF_CONFIG=<notation> pins the machine configuration in drivers
   that honour it, using the full extended grammar (e.g.
   "4C16S16-L3:64@r2w1"): published Table-5 hardware when the notation
   names a published point, the analytic model otherwise.  A malformed
   notation warns and is ignored — it must never silently change which
   machine runs. *)
let config () =
  match Sys.getenv_opt "HCRF_CONFIG" with
  | None | Some "" -> None
  | Some s -> (
    match
      match Hcrf_model.Hw_table.find s with
      | Some row -> Hcrf_model.Presets.of_published row
      | None -> Hcrf_model.Presets.of_model (Hcrf_machine.Rf.of_notation s)
    with
    | c -> Some c
    | exception (Failure msg | Invalid_argument msg) ->
      Logs.warn (fun m ->
          m "ignoring HCRF_CONFIG=%S (%s); using the driver's default" s
            msg);
      None)

let jobs () =
  match Sys.getenv_opt "HCRF_JOBS" with
  | None -> Par.default_jobs ()
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | Some _ | None ->
      Logs.warn (fun m ->
          m "ignoring HCRF_JOBS=%S (expected a positive integer); using %d"
            s (Par.default_jobs ()));
      Par.default_jobs ())

(* HCRF_CACHE=<dir> turns the schedule cache on; the empty string asks
   for an in-memory-only cache (useful when experiments repeat a
   (loop, config) pair within one invocation). *)
let cache () =
  match Sys.getenv_opt "HCRF_CACHE" with
  | None -> None
  | Some "" -> Some (Hcrf_cache.Cache.create ())
  | Some dir -> Some (Hcrf_cache.Cache.create ~dir ())

(* Daemon address: honoured by hcrf_serve and the serve-bench client so
   scripts can point a whole pipeline at one socket. *)
let serve_addr () =
  match Sys.getenv_opt "HCRF_SERVE_ADDR" with
  | None | Some "" -> None
  | Some addr -> Some addr

let default_serve_lru = 256

let serve_lru () =
  match Sys.getenv_opt "HCRF_SERVE_LRU" with
  | None -> default_serve_lru
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | Some _ | None ->
      Logs.warn (fun m ->
          m "ignoring HCRF_SERVE_LRU=%S (expected a positive integer); \
             using %d"
            s default_serve_lru);
      default_serve_lru)

type incr_spec = Incr_off | Incr_memory | Incr_dir of string

(* HCRF_INCR turns the incremental stage memo on: "on"/"1"/"" for an
   in-memory memo, "off"/"0" to force it off, anything else is a
   directory the memo persists to ([<dir>/memo.v1]). *)
let incr () =
  match Sys.getenv_opt "HCRF_INCR" with
  | None -> Incr_off
  | Some s -> (
    match String.lowercase_ascii s with
    | "" | "on" | "1" -> Incr_memory
    | "off" | "0" -> Incr_off
    | _ -> Incr_dir s)

let memo_of_spec = function
  | Incr_off -> None
  | Incr_memory -> Some (Memo.create ())
  | Incr_dir dir -> Some (Memo.create ~dir ())

let memo () = memo_of_spec (incr ())

type trace_spec = Off | Counters_only | File of string

let trace () =
  match Sys.getenv_opt "HCRF_TRACE" with
  | None -> Off
  | Some "" -> Counters_only
  | Some path -> File path

(** Build a tracer from a spec.  [Off] gives the null tracer (zero
    recording cost); the other specs always include a [Counters] sink so
    callers can report sorted event totals.  An unwritable trace file
    degrades to counters-only with a warning, mirroring the cache. *)
let tracer_of_spec = function
  | Off -> Hcrf_obs.Tracer.null
  | Counters_only ->
    Hcrf_obs.Tracer.make
      [ Hcrf_obs.Tracer.Counters (Hcrf_obs.Counters.create ()) ]
  | File path -> (
    let counters = Hcrf_obs.Tracer.Counters (Hcrf_obs.Counters.create ()) in
    match Hcrf_obs.Jsonl.create path with
    | jsonl -> Hcrf_obs.Tracer.make [ counters; Hcrf_obs.Tracer.Jsonl jsonl ]
    | exception Sys_error msg ->
      Logs.warn (fun m ->
          m "cannot write trace file %s (%s); tracing counters only" path
            msg);
      Hcrf_obs.Tracer.make [ counters ])

let tracer () = tracer_of_spec (trace ())

let warn_unknown () =
  Array.iter
    (fun kv ->
      match String.index_opt kv '=' with
      | None -> ()
      | Some i ->
        let name = String.sub kv 0 i in
        if
          String.length name >= 5
          && String.sub name 0 5 = "HCRF_"
          && not (List.mem name known)
        then
          Logs.warn (fun m ->
              m "unknown environment variable %s (known: %s)" name
                (String.concat ", " known)))
    (Unix.environment ())

(** The stage memo of the incremental evaluation pipeline.

    One table memoizes every stage of the program → loops → schedules →
    metrics pipeline ({!Runner.run_pipeline}, [Hcrf_incr.Pipeline]):
    entries are keyed by (stage, input digest) and hold the stage's
    closure-free result, so an edit recomputes only the stages whose
    upstream digest actually changed — everything else replays from
    here, byte-identical to a cold run.

    Values must stay marshal-safe (a memo can be persisted to disk):
    loops are snapshotted as {!Hcrf_ir.Ddg.repr} because a live
    [Ddg.t] may carry a watcher closure.

    All operations are thread-safe (one internal mutex), so the serving
    daemon's connection handlers and a [Par] pool may share one memo. *)

type loop_snapshot = {
  ls_repr : Hcrf_ir.Ddg.repr;
  ls_trip_count : int;
  ls_entries : int;
  ls_streams : Hcrf_ir.Loop.stream list;
}

(** One memoized stage result. *)
type value =
  | Loop_v of loop_snapshot  (** frontend: compiled kernel *)
  | Fp_v of Hcrf_cache.Fingerprint.t  (** extract: WL loop fingerprint *)
  | Entry_v of Hcrf_cache.Entry.t  (** sched: schedule entry *)
  | Perf_v of Metrics.loop_perf option
      (** metric: derived metrics; [None] replays a scheduling failure
          without re-logging it *)

val snapshot_of_loop : Hcrf_ir.Loop.t -> loop_snapshot
val loop_of_snapshot : loop_snapshot -> Hcrf_ir.Loop.t

type t

(** An empty memo; with [dir], load a previously {!save}d table from
    [dir/memo.v1] (a corrupt or stale file is discarded with a
    warning). *)
val create : ?dir:string -> unit -> t

(** Lookup under a stage namespace ([key]s of different stages never
    collide); bumps that stage's hit or miss counter. *)
val find : t -> stage:Hcrf_obs.Event.incr_stage -> string -> value option

val add : t -> stage:Hcrf_obs.Event.incr_stage -> string -> value -> unit

(** Number of memoized results. *)
val length : t -> int

(** Per-stage lookup counters since creation, sorted by key
    (["extract.hits"], ["extract.misses"], ["frontend.hits"], ...);
    stages that were never looked up are omitted. *)
val stage_stats : t -> (string * int) list

(** Total lookup hits / misses across all stages. *)
val hits : t -> int

val misses : t -> int

(** Persist the table to [dir/memo.v1] (atomic rename); a no-op without
    [dir].  Returns [false] (warned) when the write failed. *)
val save : t -> bool

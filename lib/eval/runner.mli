(** Drive the scheduler (and optionally the memory simulator) over a
    suite of loops for one processor configuration. *)

type memory_scenario =
  | Ideal  (** every access hits; no stall cycles (§6.1) *)
  | Real of { prefetch : bool }
      (** cache simulation, optionally with selective binding
          prefetching (§6.2) *)

(** Everything one evaluation run needs, in one record: memory scenario,
    engine options, schedule cache, incremental stage memo, worker count
    and tracer.  {!Ctx.make} is the single construction path: build one
    (or start from {!Ctx.default}) and pass it to every runner call. *)
module Ctx : sig
  type t = {
    scenario : memory_scenario;
    opts : Hcrf_sched.Engine.options;
    cache : Hcrf_cache.Cache.t option;
    memo : Memo.t option;
    jobs : int;
    tracer : Hcrf_obs.Tracer.t;
  }

  (** Ideal memory, default engine options, no cache, no stage memo,
      serial, no tracing. *)
  val default : t

  (** Each argument defaults to the {!default} field. *)
  val make :
    ?scenario:memory_scenario -> ?opts:Hcrf_sched.Engine.options ->
    ?cache:Hcrf_cache.Cache.t -> ?memo:Memo.t -> ?jobs:int ->
    ?tracer:Hcrf_obs.Tracer.t -> unit -> t
end

type loop_result = {
  loop : Hcrf_ir.Loop.t;
  outcome : Hcrf_sched.Engine.outcome;
  perf : Metrics.loop_perf;
}

(** Memory references of the final graph for the cache simulation:
    original operations replay their loop streams, spill operations get
    per-op stack slots. *)
val mem_refs :
  Hcrf_machine.Config.t -> Hcrf_ir.Loop.t -> Hcrf_sched.Engine.outcome ->
  override:(int -> int option) -> Hcrf_memsim.Sim.mem_ref list

val scenario_tag : memory_scenario -> string

(** Canonical cache key of one [run_loop] invocation: configuration,
    loop, options and memory scenario.  Neither [opts.load_override]
    (derived from scenario and loop, both covered) nor the tracer is
    sampled — tracing must never change what is computed. *)
val cache_key :
  scenario:memory_scenario -> opts:Hcrf_sched.Engine.options ->
  Hcrf_machine.Config.t -> Hcrf_ir.Loop.t -> Hcrf_cache.Fingerprint.t

(** The uncached work — schedule with escalating budget retries and,
    under a real memory scenario, simulate the stalls — packaged as a
    closure-free cache entry ({!Hcrf_cache.Entry.Failed} when every
    retry failed).  This is the single compute path behind [run_loop]
    and the serving daemon's miss handler, so both produce identical
    entries for identical inputs. *)
val compute_entry :
  ?trace:Hcrf_obs.Trace.t -> scenario:memory_scenario ->
  opts:Hcrf_sched.Engine.options -> Hcrf_machine.Config.t ->
  Hcrf_ir.Loop.t -> Hcrf_cache.Entry.t

(** Replay an entry (fresh or cached — same code either way) into a
    [loop_result]; [None] for [Failed] entries, with the same warning a
    live failure logs. *)
val result_of_entry :
  Hcrf_machine.Config.t -> Hcrf_ir.Loop.t -> Hcrf_cache.Entry.t ->
  loop_result option

(** Whether a stored entry may be replayed for [loop]: fingerprints
    equate isomorphic loops, but stored assignments are bound to
    concrete node ids, so only entries whose input graph digest matches
    this loop's are compatible (pass as [validate] to
    {!Hcrf_cache.Cache.find}). *)
val entry_compatible : Hcrf_ir.Loop.t -> Hcrf_cache.Entry.t -> bool

(** Schedule one loop (with escalating budget retries so aggregate
    metrics never silently drop loops); [None] only if every retry
    failed.  With a cache in [ctx], outcomes are memoized by
    content-addressed key; a hit replays the stored schedule and yields
    a byte-identical result.  The loop's trace buffer is committed to
    [ctx.tracer] before returning. *)
val run_loop :
  ?ctx:Ctx.t -> Hcrf_machine.Config.t -> Hcrf_ir.Loop.t ->
  loop_result option

(** Schedule a whole suite.  [ctx.jobs] > 1 evaluates the loops on a
    pool of domains ({!Par}); results and trace buffers are collected in
    input order and buffers are committed serially in that order, so
    aggregates, trace counter totals and JSONL trace files are all
    byte-identical to the serial path, warm or cold cache alike. *)
val run_suite :
  ?ctx:Ctx.t -> Hcrf_machine.Config.t -> Hcrf_ir.Loop.t list ->
  loop_result list

(** Traced parallel map for drivers that run the engine directly rather
    than through {!run_loop}: each item gets a trace labelled by
    [label], threaded to [f], and committed in input order. *)
val par_map :
  ctx:Ctx.t -> label:('a -> string) ->
  (trace:Hcrf_obs.Trace.t -> 'a -> 'b) -> 'a list -> 'b list

val aggregate :
  Hcrf_machine.Config.t -> loop_result list -> Metrics.aggregate

(** How one {!run_pipeline} call answered its schedule stages.  All
    fields depend only on classification decisions taken serially in
    input order, so they are identical at any job count. *)
type pipeline_stats = {
  total : int;  (** loops evaluated *)
  memo_hits : int;  (** schedule stages answered by the stage memo *)
  cache_hits : int;  (** answered by the shared schedule cache *)
  computed : int;  (** dirty: the engine actually re-ran *)
  coalesced : int;  (** duplicates joined onto an in-flight owner *)
  metric_hits : int;  (** metric stages replayed from the memo *)
  dirty : string list;
      (** names of the loops that re-ran the engine, in input order *)
}

val zero_pipeline_stats : pipeline_stats
val pp_pipeline_stats : Format.formatter -> pipeline_stats -> unit

(** Evaluate a suite as the staged incremental pipeline (extract →
    schedule → metrics), memoizing each stage in [ctx.memo]: after an
    edit only the loops whose upstream digest changed re-run the engine;
    everything else replays from the memo (or the shared cache),
    byte-identical to a cold run up to re-measured [sched_seconds].
    Per-loop results come back in input order ([None] where every
    scheduling retry failed); stage classification is serial in input
    order, so stats, stage counters and trace files are independent of
    [ctx.jobs].  Without a memo this degrades to cached suite
    evaluation (plus duplicate-key coalescing). *)
val run_pipeline :
  ?ctx:Ctx.t -> Hcrf_machine.Config.t -> Hcrf_ir.Loop.t list ->
  Metrics.loop_perf option list * pipeline_stats

(** The paper's comparison metrics (§2.3).

    For one loop with initiation interval II, stage count SC, N
    iterations per entry and E entries:

    - useful execution cycles: II * (N + (SC - 1) * E);
    - memory traffic: N * E * trf, trf being the memory accesses per
      iteration of the *final* schedule (spill code included);
    - execution time: cycles * cycle time;
    - stall cycles come from the memory simulation (0 under the ideal
      memory scenario). *)

open Hcrf_ir
open Hcrf_sched

(* Scheduler-effort counters, summed over a suite.  [attempts],
   [ejections] etc. come from the engine's own per-attempt counters;
   [retries] counts the escalation-ladder re-runs taken by
   [Runner.run_loop] when the default budget failed. *)
type sched_stats = {
  attempts : int;
  ejections : int;
  forcings : int;
  value_spills : int;
  invariant_spills : int;
  comm_inserted : int;
  ii_restarts : int;
  retries : int;
}

let zero_sched_stats =
  { attempts = 0; ejections = 0; forcings = 0; value_spills = 0;
    invariant_spills = 0; comm_inserted = 0; ii_restarts = 0; retries = 0 }

let add_sched_stats a b =
  {
    attempts = a.attempts + b.attempts;
    ejections = a.ejections + b.ejections;
    forcings = a.forcings + b.forcings;
    value_spills = a.value_spills + b.value_spills;
    invariant_spills = a.invariant_spills + b.invariant_spills;
    comm_inserted = a.comm_inserted + b.comm_inserted;
    ii_restarts = a.ii_restarts + b.ii_restarts;
    retries = a.retries + b.retries;
  }

let sched_stats_of_outcome ?(retries = 0) (o : Engine.outcome) =
  let s = o.Engine.stats in
  {
    attempts = s.Engine.attempts;
    ejections = s.Engine.ejections;
    forcings = s.Engine.forcings;
    value_spills = s.Engine.value_spills;
    invariant_spills = s.Engine.invariant_spills;
    comm_inserted = s.Engine.comm_inserted;
    ii_restarts = s.Engine.ii_restarts;
    retries;
  }

let pp_sched_stats ppf s =
  Fmt.pf ppf
    "attempts=%d ejections=%d forcings=%d spills=%d(+%d inv) comm=%d \
     ii-restarts=%d retries=%d"
    s.attempts s.ejections s.forcings s.value_spills s.invariant_spills
    s.comm_inserted s.ii_restarts s.retries

type loop_perf = {
  name : string;
  ii : int;
  mii : int;
  sc : int;
  trip_count : int;
  entries : int;
  ops : int;               (** operations per iteration (original) *)
  mem_refs_per_iter : int; (** final graph, spill included *)
  useful_cycles : float;
  stall_cycles : float;
  traffic : float;
  bound : Classify.bound;
  sched_seconds : float;
  sched : sched_stats;
}

(* [n] is the total number of iterations over all entries, matching the
   paper's "N being the total number of iterations". *)
let useful_cycles ~ii ~sc ~n ~e =
  float_of_int ii *. (float_of_int n +. (float_of_int (sc - 1) *. float_of_int e))

let of_outcome ?(stall_cycles = 0.) ?retries (loop : Loop.t)
    (o : Engine.outcome) =
  let e = loop.Loop.entries in
  let n = loop.Loop.trip_count * e in
  let trf = Ddg.num_memory_ops o.Engine.graph in
  {
    name = Loop.name loop;
    ii = o.Engine.ii;
    mii = o.Engine.mii;
    sc = o.Engine.sc;
    trip_count = loop.Loop.trip_count;
    entries = e;
    ops = Ddg.num_nodes loop.Loop.ddg;
    mem_refs_per_iter = trf;
    useful_cycles = useful_cycles ~ii:o.Engine.ii ~sc:o.Engine.sc ~n ~e;
    stall_cycles;
    traffic = float_of_int (n * trf);
    bound = Classify.of_outcome o;
    sched_seconds = o.Engine.seconds;
    sched = sched_stats_of_outcome ?retries o;
  }

type aggregate = {
  config : string;
  cycle_ns : float;
  loops : int;
  sum_ii : int;
  sum_mii : int;
  pct_at_mii : float;       (** % of loops scheduled at their MII *)
  exec_cycles : float;      (** useful + stall *)
  useful : float;
  stall : float;
  total_traffic : float;
  dynamic_ops : float;      (** original operations executed *)
  exec_seconds : float;     (** exec_cycles * cycle time *)
  sched_seconds : float;    (** scheduler wall-clock for the suite *)
  sched : sched_stats;      (** scheduler effort, summed over the suite *)
  bound_share : (Classify.bound * int * float) list;
      (** per bound: number of loops, execution cycles *)
}

let aggregate (config : Hcrf_machine.Config.t) (perfs : loop_perf list) =
  let sum f = List.fold_left (fun acc p -> acc +. f p) 0. perfs in
  let sumi f = List.fold_left (fun acc p -> acc + f p) 0 perfs in
  let useful = sum (fun p -> p.useful_cycles) in
  let stall = sum (fun p -> p.stall_cycles) in
  let exec_cycles = useful +. stall in
  let bound_share =
    List.map
      (fun b ->
        let here = List.filter (fun p -> p.bound = b) perfs in
        ( b,
          List.length here,
          List.fold_left
            (fun acc p -> acc +. p.useful_cycles +. p.stall_cycles)
            0. here ))
      Classify.all
  in
  {
    config = config.Hcrf_machine.Config.name;
    cycle_ns = config.Hcrf_machine.Config.cycle_ns;
    loops = List.length perfs;
    sum_ii = sumi (fun p -> p.ii);
    sum_mii = sumi (fun p -> p.mii);
    pct_at_mii =
      (if perfs = [] then 0.
       else
         100.
         *. float_of_int (List.length (List.filter (fun p -> p.ii = p.mii) perfs))
         /. float_of_int (List.length perfs));
    exec_cycles;
    useful;
    stall;
    total_traffic = sum (fun p -> p.traffic);
    dynamic_ops =
      sum (fun p ->
          float_of_int p.ops *. float_of_int p.trip_count
          *. float_of_int p.entries);
    exec_seconds = exec_cycles *. config.Hcrf_machine.Config.cycle_ns *. 1e-9;
    sched_seconds = sum (fun p -> p.sched_seconds);
    sched =
      List.fold_left
        (fun acc (p : loop_perf) -> add_sched_stats acc p.sched)
        zero_sched_stats perfs;
    bound_share;
  }

(** Dynamic IPC under the ideal-memory scenario (Figure 1). *)
let ipc a = if a.useful = 0. then 0. else a.dynamic_ops /. a.useful

(* Cache-effectiveness counters, re-exported so the evaluation layer's
   reporting has one home.  Kept out of [aggregate] on purpose: warm
   runs must aggregate byte-identically to cold ones. *)
type cache_stats = Hcrf_cache.Cache.stats = {
  hits : int;
  misses : int;
  stores : int;
  disk_hits : int;
  disk_errors : int;
}

let pp_cache_stats = Hcrf_cache.Cache.pp_stats

let pp_aggregate ?cache ?trace ppf a =
  Fmt.pf ppf
    "%s: loops=%d sum_ii=%d (mii %d, %.1f%% at mii) cycles=%.3e (stall %.2e) \
     traffic=%.3e time=%.4fs ipc=%.2f@\n  sched: %a"
    a.config a.loops a.sum_ii a.sum_mii a.pct_at_mii a.exec_cycles a.stall
    a.total_traffic a.exec_seconds (ipc a) pp_sched_stats a.sched;
  (match cache with
  | None -> ()
  | Some c -> Fmt.pf ppf "@\n  cache: %a" pp_cache_stats c);
  match trace with
  | None -> ()
  | Some t -> Fmt.pf ppf "@\n  trace: %a" Hcrf_obs.Counters.pp t

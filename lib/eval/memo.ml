(** The stage memo of the incremental evaluation pipeline: one table,
    keyed by (stage, input digest), holding closure-free stage results.
    See the interface for the contract. *)

type loop_snapshot = {
  ls_repr : Hcrf_ir.Ddg.repr;
  ls_trip_count : int;
  ls_entries : int;
  ls_streams : Hcrf_ir.Loop.stream list;
}

type value =
  | Loop_v of loop_snapshot
  | Fp_v of Hcrf_cache.Fingerprint.t
  | Entry_v of Hcrf_cache.Entry.t
  | Perf_v of Metrics.loop_perf option

(* A live [Ddg.t] may carry a watcher closure (set by the engine), so a
   memoized loop is stored as its [repr]; [of_repr] preserves ids and
   adjacency order, so the round trip is behaviourally identical. *)
let snapshot_of_loop (l : Hcrf_ir.Loop.t) =
  {
    ls_repr = Hcrf_ir.Ddg.to_repr l.Hcrf_ir.Loop.ddg;
    ls_trip_count = l.Hcrf_ir.Loop.trip_count;
    ls_entries = l.Hcrf_ir.Loop.entries;
    ls_streams = l.Hcrf_ir.Loop.streams;
  }

let loop_of_snapshot s =
  Hcrf_ir.Loop.make ~trip_count:s.ls_trip_count ~entries:s.ls_entries
    ~streams:s.ls_streams
    (Hcrf_ir.Ddg.of_repr s.ls_repr)

type t = {
  dir : string option;
  table : (string, value) Hashtbl.t;
  lookups : (string, int) Hashtbl.t;  (* "<stage>.hits" / "<stage>.misses" *)
  mutex : Mutex.t;
}

let version = 1
let magic = Printf.sprintf "hcrf-memo %d\n" version
let file_of_dir dir = Filename.concat dir (Printf.sprintf "memo.v%d" version)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Same discipline as the cache store: versioned magic, then an MD5 of
   the payload, then the marshalled bindings — anything off is
   discarded with a warning, never unmarshalled. *)
let load_bindings dir =
  let p = file_of_dir dir in
  if not (Sys.file_exists p) then []
  else
    let stale reason =
      Logs.warn (fun m -> m "stage memo: ignoring %s (%s)" p reason);
      []
    in
    match read_file p with
    | exception e -> stale (Printexc.to_string e)
    | content ->
      let mlen = String.length magic in
      if String.length content < mlen + 16 then stale "truncated"
      else if not (String.equal (String.sub content 0 mlen) magic) then
        stale "bad magic or stale version"
      else
        let sum = String.sub content mlen 16 in
        let payload =
          String.sub content (mlen + 16) (String.length content - mlen - 16)
        in
        if not (String.equal sum (Digest.string payload)) then
          stale "checksum mismatch"
        else begin
          match (Marshal.from_string payload 0 : (string * value) array) with
          | exception e -> stale (Printexc.to_string e)
          | bindings -> Array.to_list bindings
        end

let create ?dir () =
  let table = Hashtbl.create 128 in
  Option.iter
    (fun d -> List.iter (fun (k, v) -> Hashtbl.replace table k v)
        (load_bindings d))
    dir;
  { dir; table; lookups = Hashtbl.create 8; mutex = Mutex.create () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let full_key ~stage key = Hcrf_obs.Event.incr_stage_name stage ^ ":" ^ key

let find t ~stage key =
  locked t (fun () ->
      let r = Hashtbl.find_opt t.table (full_key ~stage key) in
      let outcome = if Option.is_some r then ".hits" else ".misses" in
      bump t.lookups (Hcrf_obs.Event.incr_stage_name stage ^ outcome);
      r)

let add t ~stage key value =
  locked t (fun () -> Hashtbl.replace t.table (full_key ~stage key) value)

let length t = locked t (fun () -> Hashtbl.length t.table)

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let stage_stats t = locked t (fun () -> sorted t.lookups)

let total t suffix =
  locked t (fun () ->
      Hashtbl.fold
        (fun k v acc ->
          if Filename.check_suffix k suffix then acc + v else acc)
        t.lookups 0)

let hits t = total t ".hits"
let misses t = total t ".misses"

let save t =
  match t.dir with
  | None -> true
  | Some dir ->
    let bindings =
      locked t (fun () ->
          Array.of_list
            (List.sort compare
               (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])))
    in
    let p = file_of_dir dir in
    let tmp = Printf.sprintf "%s.tmp.%d" p (Unix.getpid ()) in
    let payload = Marshal.to_string bindings [] in
    (match
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           output_string oc magic;
           output_string oc (Digest.string payload);
           output_string oc payload);
       Sys.rename tmp p
     with
    | () -> true
    | exception e ->
      (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
      Logs.warn (fun m ->
          m "stage memo: cannot write %s (%s); memo kept in memory only" p
            (Printexc.to_string e));
      false)

(** The paper's comparison metrics (§2.3).

    For one loop with initiation interval II, stage count SC, N total
    iterations and E entries: useful cycles are
    [II * (N + (SC - 1) * E)]; memory traffic is [N * trf] with trf the
    accesses per iteration of the final schedule (spill included);
    execution time is cycles times the cycle time; stall cycles come
    from the memory simulation (0 under ideal memory). *)

(** Scheduler-effort counters, summed over a suite: the engine's own
    attempt/ejection/spill/communication counters plus [retries], the
    escalation-ladder re-runs taken by [Runner.run_loop]. *)
type sched_stats = {
  attempts : int;
  ejections : int;
  forcings : int;
  value_spills : int;
  invariant_spills : int;
  comm_inserted : int;
  ii_restarts : int;
  retries : int;
}

val zero_sched_stats : sched_stats
val add_sched_stats : sched_stats -> sched_stats -> sched_stats

val sched_stats_of_outcome :
  ?retries:int -> Hcrf_sched.Engine.outcome -> sched_stats

val pp_sched_stats : Format.formatter -> sched_stats -> unit

type loop_perf = {
  name : string;
  ii : int;
  mii : int;
  sc : int;
  trip_count : int;          (** per entry *)
  entries : int;
  ops : int;                 (** operations per iteration (original) *)
  mem_refs_per_iter : int;   (** final graph, spill included *)
  useful_cycles : float;
  stall_cycles : float;
  traffic : float;
  bound : Classify.bound;
  sched_seconds : float;
  sched : sched_stats;
}

val useful_cycles : ii:int -> sc:int -> n:int -> e:int -> float

val of_outcome :
  ?stall_cycles:float -> ?retries:int -> Hcrf_ir.Loop.t ->
  Hcrf_sched.Engine.outcome -> loop_perf

type aggregate = {
  config : string;
  cycle_ns : float;
  loops : int;
  sum_ii : int;
  sum_mii : int;
  pct_at_mii : float;     (** % of loops scheduled at their MII *)
  exec_cycles : float;    (** useful + stall *)
  useful : float;
  stall : float;
  total_traffic : float;
  dynamic_ops : float;    (** original operations executed *)
  exec_seconds : float;
  sched_seconds : float;  (** scheduler wall-clock for the suite *)
  sched : sched_stats;    (** scheduler effort, summed over the suite *)
  bound_share : (Classify.bound * int * float) list;
      (** per bound: number of loops, execution cycles *)
}

val aggregate : Hcrf_machine.Config.t -> loop_perf list -> aggregate

(** Dynamic IPC under the ideal-memory scenario (Figure 1). *)
val ipc : aggregate -> float

(** Schedule-cache effectiveness counters ({!Hcrf_cache.Cache.stats}).
    Deliberately *not* part of {!aggregate}: a warm cache must produce
    byte-identical aggregates, so cache effectiveness is reported
    alongside them, never inside them. *)
type cache_stats = Hcrf_cache.Cache.stats = {
  hits : int;
  misses : int;
  stores : int;
  disk_hits : int;
  disk_errors : int;
}

val pp_cache_stats : Format.formatter -> cache_stats -> unit

(** Print an aggregate; with [?cache] an extra "cache:" line reports
    hit/miss/store counters next to the scheduler-effort stats, and
    with [?trace] an extra "trace:" line reports the sorted event
    counters of a {!Hcrf_obs.Counters} sink.  Both extra lines keep
    run-to-run-varying data (disk state, wall-clock) out of the
    aggregate itself. *)
val pp_aggregate :
  ?cache:cache_stats -> ?trace:Hcrf_obs.Counters.t -> Format.formatter ->
  aggregate -> unit

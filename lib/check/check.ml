open Hcrf_ir
open Hcrf_sched
module Ev = Hcrf_obs.Event
module Tr = Hcrf_obs.Trace
module Runner = Hcrf_eval.Runner
module Config = Hcrf_machine.Config
module Lat = Hcrf_machine.Latencies
module Genloop = Hcrf_workload.Genloop
module Rng = Hcrf_workload.Rng
module Pipe_exec = Hcrf_pipesim.Pipe_exec
module Exact = Hcrf_exact.Exact

(* ------------------------------------------------------------------ *)
(* Presets                                                             *)

let param_presets =
  let d = Genloop.default_params in
  [
    ("tiny", { d with Genloop.min_ops = 3; max_ops = 8; size_mu = 1.5 });
    ("small", { d with Genloop.max_ops = 16 });
    ( "recurrent",
      { d with
        Genloop.recurrence_prob = 0.9;
        max_recurrences = 4;
        rec_max_distance = 3;
        max_ops = 20 } );
    ( "memory",
      { d with
        Genloop.mem_fraction = 0.5;
        store_fraction = 0.5;
        mem_rec_fraction = 0.7;
        max_ops = 20 } );
    ("invariant", { d with Genloop.invariant_max = 6; max_ops = 14 });
    ( "wide",
      { d with
        Genloop.fanin2_prob = 0.9;
        far_pick_prob = 0.5;
        max_ops = 24 } );
  ]

(* Exact-tractable loops for the Optimality oracle: small DAG-ish
   bodies whose certification fits comfortably in the default exact
   budget.  Kept out of [param_presets] so the long-standing campaign
   case mapping is untouched. *)
let small_exact_presets =
  let d = Genloop.default_params in
  [
    ( "small_exact",
      { d with Genloop.min_ops = 3; max_ops = 8; size_mu = 1.5;
        invariant_max = 2 } );
  ]

(* Published Table-5 points spanning monolithic, flat clustered and
   hierarchical organizations. *)
let config_names =
  [ "S64"; "S32"; "2C32"; "4C32"; "2C32S32"; "4C32S16"; "4C16S16"; "8C16S16" ]

(* Generalized-hierarchy points: per-bank access-port constraints and
   third-level organizations.  Kept out of [config_names] so the
   long-standing campaign case-index mapping is untouched; campaigns
   opt in via [generalized_config_presets]. *)
let generalized_config_names =
  [ "4C16S16@r4w3"; "4C16S16@Sr3w3"; "2C32S32@r5w4"; "4C16S16-L3:64";
    "2C32S32-L3:128l2s2"; "4C16S16-L3:64@r4w3"; "2C32@r5w4" ]

let options_presets =
  let d = Engine.default_options in
  [
    ("default", d);
    ("nobt", { d with Engine.backtracking = false });
    ("topo", { d with Engine.ordering = `Topological });
    ("tight", { d with Engine.budget_ratio = 3 });
  ]

let config_of_name ?n_fus ?n_mem_ports name =
  match Hcrf_model.Hw_table.find name with
  | Some row -> Hcrf_model.Presets.of_published ?n_fus ?n_mem_ports row
  | None ->
    Hcrf_model.Presets.of_model ?n_fus ?n_mem_ports
      (Hcrf_machine.Rf.of_notation name)

let default_config_presets =
  lazy (List.map (fun n -> (n, config_of_name n)) config_names)

let generalized_config_presets =
  lazy (List.map (fun n -> (n, config_of_name n)) generalized_config_names)

(* ------------------------------------------------------------------ *)
(* Cases                                                               *)

type case = {
  index : int;
  seed : int;
  params_name : string;
  config_name : string;
  config : Config.t;
  options_name : string;
  opts : Engine.options;
  loop : Loop.t;
}

(* SplitMix-style per-case seed: decorrelates neighbouring indices and
   keeps every case independent of campaign size and job count. *)
let case_seed ~seed index =
  let h = (seed * 0x1000193) + (index * 0x9E3779B1) in
  (h lxor (h lsr 17)) land 0x3FFFFFFF

let case_of_index ?(param_presets = param_presets) ~config_presets ~seed index
    =
  let nth l i = List.nth l (i mod List.length l) in
  let params_name, params = nth param_presets index in
  let config_name, config =
    nth config_presets (index / List.length param_presets)
  in
  let options_name, opts =
    nth options_presets
      (index / (List.length param_presets * List.length config_presets))
  in
  let rng = Rng.create ~seed:(case_seed ~seed index) in
  let loop = Genloop.generate ~params ~rng ~index () in
  { index; seed; params_name; config_name; config; options_name; opts; loop }

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)

type verdict = { kind : Ev.fuzz_verdict; detail : string }

let pass = { kind = Ev.Pass; detail = "" }

let is_failure = function
  | Ev.Pass | Ev.No_schedule -> false
  | Ev.Invalid_schedule | Ev.Exec_mismatch | Ev.Metamorphic
  | Ev.Replay_divergence | Ev.Crash | Ev.Optimality ->
    true

(* What the Optimality leg measured on one case (reported even when the
   leg passes — the campaign aggregates these into the gap summary). *)
type exact_case = {
  xc_lb : int;  (** certified II lower bound *)
  xc_exhausted : bool;
  xc_witness_ii : int option;
  xc_optimal : bool;  (** minimal II certified exactly *)
  xc_heur_ii : int;
  xc_heur_spills : int;  (** heuristic value + invariant spills *)
  xc_budget_hit : bool;
}

let fail kind fmt = Fmt.kstr (fun detail -> Error { kind; detail }) fmt

let exec_iterations = [ 2; 7; 13 ]

(* Closure-free byte snapshot of a runner result: the serialized cache
   entry (graph, assignments, counters) plus the derived metrics.  A
   warm replay must reproduce this exactly. *)
let snapshot config (r : Runner.loop_result) =
  Marshal.to_string
    ( Hcrf_cache.Entry.of_outcome config r.Runner.outcome ~input_digest:""
        ~stall_cycles:0. ~retries:0,
      r.Runner.perf )
    []

let issues_of (r : Runner.loop_result) =
  let o = r.Runner.outcome in
  Validate.check ~invariant_residents:o.Engine.invariant_residents
    o.Engine.schedule o.Engine.graph

let oracle ?cache ?(exact = false) ?exact_out ?(trace = Tr.off) ~opts config
    (loop : Loop.t) : verdict =
  let ( let* ) = Result.bind in
  let run () =
    let cache =
      match cache with Some c -> c | None -> Hcrf_cache.Cache.create ()
    in
    let ctx = Runner.Ctx.make ~opts ~cache () in
    let validate_leg kind name r =
      match issues_of r with
      | [] -> Ok ()
      | issue :: _ as issues ->
        fail kind "%s: %d issue(s), first: %a" name (List.length issues)
          Validate.pp_issue issue
    in
    let exec_leg kind name lp (r : Runner.loop_result) iters =
      List.fold_left
        (fun acc n ->
          let* () = acc in
          match Pipe_exec.check lp r.Runner.outcome ~iterations:n () with
          | Ok _ -> Ok ()
          | Error e ->
            fail kind "%s: %a (at %d iterations)" name Pipe_exec.pp_error e n)
        (Ok ()) iters
    in
    (* leg 1: the schedule exists *)
    let* cold =
      match Runner.run_loop ~ctx config loop with
      | Some r -> Ok r
      | None -> fail Ev.No_schedule "engine gave up after every escalation"
    in
    (* leg 2: independent validation *)
    let* () = validate_leg Ev.Invalid_schedule "cold" cold in
    (* leg 3: pipeline execution matches the reference executor *)
    let* () = exec_leg Ev.Exec_mismatch "cold" loop cold exec_iterations in
    (* leg 4: warm replay through the cache is byte-identical *)
    let* warm =
      match Runner.run_loop ~ctx config loop with
      | Some r -> Ok r
      | None -> fail Ev.Replay_divergence "warm run found no schedule"
    in
    let* () = validate_leg Ev.Replay_divergence "replayed" warm in
    let* () =
      if String.equal (snapshot config cold) (snapshot config warm) then Ok ()
      else fail Ev.Replay_divergence "warm replay differs from cold outcome"
    in
    (* leg 5: metamorphic twins through the same cache *)
    let fp = Hcrf_cache.Fingerprint.of_loop loop in
    let digest = Hcrf_cache.Entry.ddg_digest loop.Loop.ddg in
    let mii = cold.Runner.outcome.Engine.mii in
    let twin_leg name twin =
      let* () =
        if Hcrf_cache.Fingerprint.equal (Hcrf_cache.Fingerprint.of_loop twin) fp
        then Ok ()
        else fail Ev.Metamorphic "%s twin: WL fingerprint changed" name
      in
      let* rt =
        match Runner.run_loop ~ctx config twin with
        | Some r -> Ok r
        | None -> fail Ev.Metamorphic "%s twin: failed to schedule" name
      in
      let* () =
        match issues_of rt with
        | [] -> Ok ()
        | issue :: _ ->
          fail Ev.Metamorphic "%s twin: invalid schedule: %a" name
            Validate.pp_issue issue
      in
      let* () =
        let tm = rt.Runner.outcome.Engine.mii in
        if tm = mii then Ok ()
        else fail Ev.Metamorphic "%s twin: MII changed %d -> %d" name mii tm
      in
      match Pipe_exec.check twin rt.Runner.outcome ~iterations:7 () with
      | Ok _ -> Ok ()
      | Error e ->
        fail Ev.Metamorphic "%s twin: %a" name Pipe_exec.pp_error e
    in
    let reorder = Morph.rewrite_loop ~m:Fun.id loop in
    let* () =
      (* reordering adjacency lists must not move the id digest: the
         cache replays the cold entry for this twin *)
      if String.equal (Hcrf_cache.Entry.ddg_digest reorder.Loop.ddg) digest
      then Ok ()
      else fail Ev.Metamorphic "reorder twin: id digest changed"
    in
    let* () = twin_leg "reorder" reorder in
    let renumber =
      Morph.rewrite_loop ~m:(Morph.reversing_bijection loop.Loop.ddg) loop
    in
    let* () = twin_leg "renumber" renumber in
    (* leg 6: the heuristic must never beat the certified II bound *)
    let* () =
      if not exact then Ok ()
      else begin
        let o = cold.Runner.outcome in
        let r = Exact.solve ~max_ii:o.Engine.ii ~trace config loop.Loop.ddg in
        (match exact_out with
        | None -> ()
        | Some cell ->
          cell :=
            Some
              {
                xc_lb = r.Exact.x_lb;
                xc_exhausted = r.Exact.x_lb_exhausted;
                xc_witness_ii =
                  Option.map
                    (fun (w : Exact.witness) -> w.Exact.w_ii)
                    r.Exact.x_witness;
                xc_optimal = r.Exact.x_optimal;
                xc_heur_ii = o.Engine.ii;
                xc_heur_spills =
                  o.Engine.stats.Engine.value_spills
                  + o.Engine.stats.Engine.invariant_spills;
                xc_budget_hit = r.Exact.x_budget_hit;
              });
        if r.Exact.x_lb_exhausted && o.Engine.ii < r.Exact.x_lb then
          fail Ev.Optimality
            "heuristic II=%d beats the certified lower bound %d" o.Engine.ii
            r.Exact.x_lb
        else Ok ()
      end
    in
    Ok ()
  in
  match run () with
  | Ok () -> pass
  | Error v -> v
  | exception e ->
    { kind = Ev.Crash;
      detail = Printexc.to_string e }

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)

type failure = {
  f_case : int;
  f_params : string;
  f_config : string;
  f_options : string;
  f_kind : Ev.fuzz_verdict;
  f_detail : string;
  f_loop : Loop.t;
  f_lats : Lat.t;
  f_nodes : int;
  f_steps : int;
}

(* Aggregate view of the Optimality legs of a campaign (only the cases
   where the heuristic found a schedule run the leg). *)
type exact_summary = {
  xs_cases : int;  (** cases the exact leg ran on *)
  xs_certified : int;  (** minimal II certified exactly *)
  xs_budget : int;  (** budget trips (uncertified cases) *)
  xs_gaps : (int * int) list;  (** II gap -> count, over certified cases *)
  xs_spills : int;  (** heuristic spills on certified cases (witness: 0) *)
}

type report = {
  r_seed : int;
  r_cases : int;
  r_counts : (string * int) list;
  r_failures : failure list;
  r_exact : exact_summary option;
}

let all_verdicts =
  [ Ev.Pass; Ev.No_schedule; Ev.Invalid_schedule; Ev.Exec_mismatch;
    Ev.Metamorphic; Ev.Replay_divergence; Ev.Crash; Ev.Optimality ]

let run_case ~trace ~shrink ~max_shrink_evals ~exact (c : case) =
  let exact_out = ref None in
  let v = oracle ~exact ~exact_out ~trace ~opts:c.opts c.config c.loop in
  if Tr.enabled trace then Tr.emit trace (Ev.Fuzz v.kind);
  if not (is_failure v.kind) then (c, v, None, !exact_out)
  else begin
    let base = { Shrink.loop = c.loop; lats = c.config.Config.lats } in
    let still_failing (cand : Shrink.candidate) =
      let config = { c.config with Config.lats = cand.Shrink.lats } in
      let v' = oracle ~exact ~opts:c.opts config cand.Shrink.loop in
      v'.kind = v.kind
    in
    let shrunk, steps =
      if shrink then Shrink.run ~still_failing ~max_evals:max_shrink_evals base
      else (base, 0)
    in
    if shrink && Tr.enabled trace then Tr.emit trace (Ev.Shrink { steps });
    (* re-run once on the minimum to report its (final) detail *)
    let final =
      let config = { c.config with Config.lats = shrunk.Shrink.lats } in
      let v' = oracle ~exact ~opts:c.opts config shrunk.Shrink.loop in
      if v'.kind = v.kind then v' else v
    in
    (c, final, Some (shrunk, steps), !exact_out)
  end

let failure_of (c, (v : verdict), shrunk) =
  let cand, steps =
    match shrunk with
    | Some (s, steps) -> (s, steps)
    | None -> ({ Shrink.loop = c.loop; lats = c.config.Config.lats }, 0)
  in
  {
    f_case = c.index;
    f_params = c.params_name;
    f_config = c.config_name;
    f_options = c.options_name;
    f_kind = v.kind;
    f_detail = v.detail;
    f_loop = cand.Shrink.loop;
    f_lats = cand.Shrink.lats;
    f_nodes = Ddg.num_nodes cand.Shrink.loop.Loop.ddg;
    f_steps = steps;
  }

let repro_of_failure ~seed (c : case) f =
  {
    Repro.seed;
    case = f.f_case;
    params = f.f_params;
    config = f.f_config;
    n_fus = c.config.Config.n_fus;
    n_mem_ports = c.config.Config.n_mem_ports;
    lats = f.f_lats;
    options = f.f_options;
    verdict = f.f_kind;
    detail = f.f_detail;
    loop = f.f_loop;
  }

let campaign ?(ctx = Runner.Ctx.default) ?(shrink = true) ?corpus
    ?config_presets ?param_presets ?(exact = false) ?(max_shrink_evals = 500)
    ~seed ~cases () =
  let config_presets =
    match config_presets with
    | Some l -> l
    | None -> Lazy.force default_config_presets
  in
  let results =
    Runner.par_map ~ctx
      ~label:(fun i -> Fmt.str "fuzz%04d" i)
      (fun ~trace i ->
        let c = case_of_index ?param_presets ~config_presets ~seed i in
        run_case ~trace ~shrink ~max_shrink_evals ~exact c)
      (List.init cases Fun.id)
  in
  let count k =
    List.length
      (List.filter (fun (_, (v : verdict), _, _) -> v.kind = k) results)
  in
  let r_counts =
    List.map (fun k -> (Ev.fuzz_verdict_name k, count k)) all_verdicts
  in
  let r_failures =
    List.filter_map
      (fun (c, v, shrunk, _) ->
        if is_failure v.kind then Some (failure_of (c, v, shrunk)) else None)
      results
  in
  let r_exact =
    if not exact then None
    else begin
      let xs = List.filter_map (fun (_, _, _, x) -> x) results in
      let certified = List.filter (fun x -> x.xc_optimal) xs in
      let xs_gaps =
        List.sort compare
          (List.fold_left
             (fun acc x ->
               let g = x.xc_heur_ii - x.xc_lb in
               match List.assoc_opt g acc with
               | Some n -> (g, n + 1) :: List.remove_assoc g acc
               | None -> (g, 1) :: acc)
             [] certified)
      in
      Some
        {
          xs_cases = List.length xs;
          xs_certified = List.length certified;
          xs_budget =
            List.length (List.filter (fun x -> x.xc_budget_hit) xs);
          xs_gaps;
          xs_spills =
            List.fold_left (fun acc x -> acc + x.xc_heur_spills) 0 certified;
        }
    end
  in
  (match corpus with
  | None -> ()
  | Some dir ->
    List.iter
      (fun (c, (v : verdict), shrunk, _) ->
        if is_failure v.kind then
          ignore
            (Repro.write ~dir
               (repro_of_failure ~seed c (failure_of (c, v, shrunk)))))
      results);
  { r_seed = seed; r_cases = cases; r_counts; r_failures; r_exact }

let pp_report ppf r =
  Fmt.pf ppf "fuzz: seed=%d cases=%d failures=%d@," r.r_seed r.r_cases
    (List.length r.r_failures);
  Fmt.pf ppf "verdicts:%a@,"
    (Fmt.list ~sep:Fmt.nop (fun ppf (name, n) -> Fmt.pf ppf " %s=%d" name n))
    r.r_counts;
  (match r.r_exact with
  | None -> ()
  | Some s ->
    Fmt.pf ppf "exact: cases=%d certified=%d budget_hit=%d heur_spills=%d \
                gaps:%a@,"
      s.xs_cases s.xs_certified s.xs_budget s.xs_spills
      (Fmt.list ~sep:Fmt.nop (fun ppf (g, n) -> Fmt.pf ppf " %d=%d" g n))
      s.xs_gaps);
  List.iter
    (fun f ->
      Fmt.pf ppf
        "fail: case=%04d verdict=%s params=%s config=%s options=%s nodes=%d \
         steps=%d detail=%s@,"
        f.f_case
        (Ev.fuzz_verdict_name f.f_kind)
        f.f_params f.f_config f.f_options f.f_nodes f.f_steps f.f_detail)
    r.r_failures

let pp_report ppf r = Fmt.pf ppf "@[<v>%a@]" pp_report r

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)

let replay_file ?cache (r : Repro.t) =
  match
    let config =
      config_of_name ~n_fus:r.Repro.n_fus ~n_mem_ports:r.Repro.n_mem_ports
        r.Repro.config
    in
    let config = { config with Config.lats = r.Repro.lats } in
    let opts =
      match List.assoc_opt r.Repro.options options_presets with
      | Some o -> o
      | None -> Fmt.invalid_arg "unknown options preset %S" r.Repro.options
    in
    oracle ?cache ~opts config r.Repro.loop
  with
  | v -> v
  | exception e -> { kind = Ev.Crash; detail = Printexc.to_string e }

(* ------------------------------------------------------------------ *)
(* Optimality-gap corpus                                               *)

(* Heuristic-vs-certified measurement used both to hunt gap witnesses
   and to replay the committed gap corpus: a plain engine run (no
   escalation ladder, so replay needs no runner state) plus a full
   certification capped at the achieved II.  [Some] iff the loop is
   certified optimal and the heuristic provably missed the optimum. *)
let measure_gap ~opts config (loop : Loop.t) =
  match Engine.schedule ~opts config loop.Loop.ddg with
  | Error _ -> None
  | Ok o ->
    let r = Exact.solve ~max_ii:o.Engine.ii config loop.Loop.ddg in
    if r.Exact.x_optimal && o.Engine.ii - r.Exact.x_lb >= 1 then Some (o, r)
    else None

let gap_detail ((o : Engine.outcome), (r : Exact.t)) =
  Fmt.str "gap=%d heur_ii=%d optimal_ii=%d heur_spills=%d"
    (o.Engine.ii - r.Exact.x_lb)
    o.Engine.ii r.Exact.x_lb
    (o.Engine.stats.Engine.value_spills
    + o.Engine.stats.Engine.invariant_spills)

let hunt_gaps ?(max_shrink_evals = 200) ~seed ~cases () =
  let config_presets = Lazy.force default_config_presets in
  let out = ref [] in
  for i = cases - 1 downto 0 do
    let c =
      case_of_index ~param_presets:small_exact_presets ~config_presets ~seed i
    in
    if Option.is_some (measure_gap ~opts:c.opts c.config c.loop) then begin
      let base = { Shrink.loop = c.loop; lats = c.config.Config.lats } in
      let still_failing (cand : Shrink.candidate) =
        let config = { c.config with Config.lats = cand.Shrink.lats } in
        Option.is_some (measure_gap ~opts:c.opts config cand.Shrink.loop)
      in
      let shrunk, _ =
        Shrink.run ~still_failing ~max_evals:max_shrink_evals base
      in
      let config = { c.config with Config.lats = shrunk.Shrink.lats } in
      match measure_gap ~opts:c.opts config shrunk.Shrink.loop with
      | None -> () (* unreachable: shrinking preserves the predicate *)
      | Some m ->
        out :=
          {
            Repro.seed;
            case = c.index;
            params = c.params_name;
            config = c.config_name;
            n_fus = c.config.Config.n_fus;
            n_mem_ports = c.config.Config.n_mem_ports;
            lats = shrunk.Shrink.lats;
            options = c.options_name;
            verdict = Ev.Optimality;
            detail = gap_detail m;
            loop = shrunk.Shrink.loop;
          }
          :: !out
    end
  done;
  !out

let replay_corpus ?cache dir =
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc path ->
      let* acc = acc in
      let* r =
        Result.map_error (fun e -> Fmt.str "%s: %s" path e) (Repro.load path)
      in
      Ok ((path, r, replay_file ?cache r) :: acc))
    (Ok []) (Repro.corpus_files dir)
  |> Result.map List.rev

open Hcrf_ir
module Lat = Hcrf_machine.Latencies

type candidate = { loop : Loop.t; lats : Lat.t }

(* Rebuild a loop around a reduced graph, dropping streams whose
   operation is gone. *)
let with_graph (loop : Loop.t) g =
  let streams =
    List.filter (fun (s : Loop.stream) -> Ddg.mem g s.Loop.op)
      loop.Loop.streams
  in
  Loop.make ~trip_count:loop.Loop.trip_count ~entries:loop.Loop.entries
    ~streams g

(* The distance-0 subgraph must stay acyclic (Kahn count). *)
let acyclic0 g =
  let nodes = Ddg.nodes g in
  let indeg = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Hashtbl.replace indeg v
        (List.length
           (List.filter
              (fun (e : Ddg.edge) -> e.Ddg.distance = 0)
              (Ddg.preds g v))))
    nodes;
  let ready = ref (List.filter (fun v -> Hashtbl.find indeg v = 0) nodes) in
  let seen = ref 0 in
  while !ready <> [] do
    let v = List.hd !ready in
    ready := List.tl !ready;
    incr seen;
    List.iter
      (fun (e : Ddg.edge) ->
        if e.Ddg.distance = 0 then begin
          let d = Hashtbl.find indeg e.Ddg.dst - 1 in
          Hashtbl.replace indeg e.Ddg.dst d;
          if d = 0 then ready := e.Ddg.dst :: !ready
        end)
      (Ddg.succs g v)
  done;
  !seen = List.length nodes

(* ------------------------------------------------------------------ *)
(* Reduction candidates, as thunks in a fixed, deterministic order.    *)

let node_removals c =
  (* highest ids first: inserted/late nodes tend to be the removable
     periphery, and the survivor keeps a dense prefix of ids *)
  List.rev_map
    (fun id () ->
      let g = Ddg.copy c.loop.Loop.ddg in
      Ddg.remove_node g id;
      if Ddg.num_nodes g = 0 then None else Some { c with loop = with_graph c.loop g })
    (Ddg.nodes c.loop.Loop.ddg)

let edge_removals c =
  List.map
    (fun (e : Ddg.edge) () ->
      let g = Ddg.copy c.loop.Loop.ddg in
      Ddg.remove_edge g e;
      Some { c with loop = with_graph c.loop g })
    (Ddg.edges c.loop.Loop.ddg)

let distance_reductions c =
  List.filter_map
    (fun (e : Ddg.edge) ->
      if e.Ddg.distance = 0 then None
      else
        Some
          (fun () ->
            let target = if e.Ddg.distance > 1 then 1 else 0 in
            let g = Ddg.copy c.loop.Loop.ddg in
            Ddg.remove_edge g e;
            Ddg.add_edge g ~distance:target ~dep:e.Ddg.dep e.Ddg.src e.Ddg.dst;
            if target = 0 && not (acyclic0 g) then None
            else Some { c with loop = with_graph c.loop g }))
    (Ddg.edges c.loop.Loop.ddg)

let invariant_drops c =
  List.map
    (fun (inv : Ddg.invariant) ()->
      let r = Ddg.to_repr c.loop.Loop.ddg in
      let r' =
        { r with
          Ddg.repr_invariants =
            List.filter (fun (id, _) -> id <> inv.Ddg.inv_id)
              r.Ddg.repr_invariants }
      in
      Some { c with loop = with_graph c.loop (Ddg.of_repr r') })
    (Ddg.invariants c.loop.Loop.ddg)

let count_shrinks c =
  let halve n = if n > 1 then Some (n / 2) else None in
  let trip =
    Option.map
      (fun n () ->
        Some
          { c with
            loop =
              Loop.make ~trip_count:n ~entries:c.loop.Loop.entries
                ~streams:c.loop.Loop.streams c.loop.Loop.ddg })
      (halve c.loop.Loop.trip_count)
  in
  let entries =
    Option.map
      (fun n () ->
        Some
          { c with
            loop =
              Loop.make ~trip_count:c.loop.Loop.trip_count ~entries:n
                ~streams:c.loop.Loop.streams c.loop.Loop.ddg })
      (halve c.loop.Loop.entries)
  in
  List.filter_map Fun.id [ trip; entries ]

let latency_shrinks c =
  let l = c.lats in
  let field get set =
    if get l > 1 then Some (fun () -> Some { c with lats = set l (get l - 1) })
    else None
  in
  List.filter_map Fun.id
    [
      field (fun l -> l.Lat.fadd) (fun l v -> { l with Lat.fadd = v });
      field (fun l -> l.Lat.fmul) (fun l v -> { l with Lat.fmul = v });
      field (fun l -> l.Lat.fdiv) (fun l v -> { l with Lat.fdiv = v });
      field (fun l -> l.Lat.fsqrt) (fun l v -> { l with Lat.fsqrt = v });
      field (fun l -> l.Lat.mem_read) (fun l v -> { l with Lat.mem_read = v });
      field (fun l -> l.Lat.mem_write) (fun l v -> { l with Lat.mem_write = v });
      field (fun l -> l.Lat.move) (fun l v -> { l with Lat.move = v });
      field (fun l -> l.Lat.loadr) (fun l v -> { l with Lat.loadr = v });
      field (fun l -> l.Lat.storer) (fun l v -> { l with Lat.storer = v });
    ]

let candidates c =
  List.concat
    [
      node_removals c;
      edge_removals c;
      distance_reductions c;
      invariant_drops c;
      count_shrinks c;
      latency_shrinks c;
    ]

(* ------------------------------------------------------------------ *)

let run ~still_failing ?(max_evals = 500) start =
  let evals = ref 0 in
  let steps = ref 0 in
  let cur = ref start in
  let accept c =
    if !evals >= max_evals then false
    else begin
      incr evals;
      still_failing c
    end
  in
  let rec round () =
    let accepted =
      List.exists
        (fun mk ->
          !evals < max_evals
          &&
          match mk () with
          | None -> false
          | Some c ->
            if accept c then begin
              cur := c;
              incr steps;
              true
            end
            else false)
        (candidates !cur)
    in
    if accepted && !evals < max_evals then round ()
  in
  round ();
  (!cur, !steps)

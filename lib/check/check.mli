(** Differential fuzzing of the MIRS_HC scheduling pipeline.

    A campaign generates loops with {!Hcrf_workload.Genloop} across a
    deterministic sweep of generator parameters × machine
    configurations × scheduler options, runs each case through
    {!Hcrf_eval.Runner} and cross-checks the result against independent
    oracles:

    - {!Hcrf_sched.Validate.check} must accept the produced schedule;
    - {!Hcrf_pipesim.Pipe_exec} must reproduce {!Hcrf_pipesim.Ref_exec}
      values and memory at several iteration counts;
    - a warm replay through the case's (private) schedule cache must
      validate and be byte-identical to the cold outcome;
    - metamorphic twins (adjacency reorder; node renumbering) must keep
      the WL fingerprint, schedule successfully, validate, execute
      correctly and agree on MII.  (Full II/spill equality under
      renumbering does *not* hold for this engine — cluster selection
      is id-sensitive — so the oracle deliberately checks the invariant
      that does hold; see DESIGN.md.)

    Every case runs under an exception barrier, so an engine crash is a
    [Crash] verdict, not a dead campaign.  Failing cases are fed to the
    minimizing {!Shrink}er and emitted as {!Repro} files.  Campaigns
    are deterministic: the same seed produces a byte-identical report
    for any [jobs] value. *)

module Ev = Hcrf_obs.Event

(** Named presets swept by {!campaign}. *)
val param_presets : (string * Hcrf_workload.Genloop.params) list

(** Generator presets biased towards exact-tractable loops (small,
    shallow, few invariants); the parameter sweep of campaigns that arm
    the {!Hcrf_exact} Optimality oracle.  Kept out of {!param_presets}
    so existing campaign case mappings are unchanged. *)
val small_exact_presets : (string * Hcrf_workload.Genloop.params) list

val config_names : string list

(** Generalized-hierarchy configurations (per-bank access-port
    constraints, third level).  Kept out of {!config_names} so existing
    campaign case mappings are unchanged; pass
    {!generalized_config_presets} as [config_presets] to sweep them. *)
val generalized_config_names : string list

val generalized_config_presets :
  (string * Hcrf_machine.Config.t) list lazy_t

val options_presets : (string * Hcrf_sched.Engine.options) list

(** Resolve a machine notation like the CLI does: published Table-5
    hardware when available, the analytic model otherwise. *)
val config_of_name :
  ?n_fus:int -> ?n_mem_ports:int -> string -> Hcrf_machine.Config.t

type verdict = { kind : Ev.fuzz_verdict; detail : string }

(** Failure = any verdict the oracles can falsify.  [Pass] is success;
    [No_schedule] (the engine giving up after every escalation rung) is
    recorded in the taxonomy but is not an oracle failure. *)
val is_failure : Ev.fuzz_verdict -> bool

(** What the Optimality leg measured on one case (reported even when
    the leg passes — campaigns aggregate these into {!exact_summary}).
    The leg only runs on cases where the heuristic found a schedule. *)
type exact_case = {
  xc_lb : int;  (** certified II lower bound *)
  xc_exhausted : bool;
  xc_witness_ii : int option;
  xc_optimal : bool;  (** minimal II certified exactly *)
  xc_heur_ii : int;
  xc_heur_spills : int;  (** heuristic value + invariant spills *)
  xc_budget_hit : bool;
}

(** Run every oracle leg on one loop.  [cache] is the schedule cache
    the runner goes through (a fresh private one when omitted; sharing
    one across calls additionally exercises cross-case cache
    collisions).  [exact] arms the Optimality leg: the heuristic's II
    must never undercut the {!Hcrf_exact} certified lower bound (an
    exact-refuted II the heuristic claims to schedule is exactly such
    an undercut); the measurement lands in [exact_out] and the
    certification is recorded on [trace] as a [Phase Exact] span plus
    an [Exact_search] event. *)
val oracle :
  ?cache:Hcrf_cache.Cache.t -> ?exact:bool ->
  ?exact_out:exact_case option ref -> ?trace:Hcrf_obs.Trace.t ->
  opts:Hcrf_sched.Engine.options -> Hcrf_machine.Config.t ->
  Hcrf_ir.Loop.t -> verdict

type failure = {
  f_case : int;
  f_params : string;
  f_config : string;
  f_options : string;
  f_kind : Ev.fuzz_verdict;
  f_detail : string;  (** detail of the *shrunk* case *)
  f_loop : Hcrf_ir.Loop.t;  (** shrunk loop (original if shrinking off) *)
  f_lats : Hcrf_machine.Latencies.t;
  f_nodes : int;  (** node count after shrinking *)
  f_steps : int;  (** accepted shrink steps *)
}

(** Aggregate view of a campaign's Optimality legs. *)
type exact_summary = {
  xs_cases : int;  (** cases the exact leg ran on *)
  xs_certified : int;  (** minimal II certified exactly *)
  xs_budget : int;  (** budget trips (uncertified cases) *)
  xs_gaps : (int * int) list;
      (** II gap (heuristic - optimum) -> count, over certified cases,
          ascending *)
  xs_spills : int;
      (** heuristic spill ops on certified cases; the exact witnesses
          are spill-free, so this is the whole spill gap *)
}

type report = {
  r_seed : int;
  r_cases : int;
  r_counts : (string * int) list;  (** verdict name -> count, fixed order *)
  r_failures : failure list;       (** in case order *)
  r_exact : exact_summary option;  (** when the campaign armed [exact] *)
}

(** Deterministic rendering (no wall-clock, no absolute paths). *)
val pp_report : Format.formatter -> report -> unit

(** Run a campaign of [cases] cases.  [ctx] supplies [jobs] and the
    tracer (each case emits a [Fuzz] verdict event and, when shrinking,
    a [Shrink] event); its cache and options are *not* used — every
    case runs its own private cache and preset options, so user-level
    caching can never mask a divergence.  [corpus] writes a {!Repro}
    file per failure into the given directory. *)
val campaign :
  ?ctx:Hcrf_eval.Runner.Ctx.t -> ?shrink:bool -> ?corpus:string ->
  ?config_presets:(string * Hcrf_machine.Config.t) list ->
  ?param_presets:(string * Hcrf_workload.Genloop.params) list ->
  ?exact:bool -> ?max_shrink_evals:int -> seed:int -> cases:int -> unit ->
  report

(** Re-run the oracle on one reproducer.  With [cache], the runner goes
    through that (shared) cache — replaying a corpus must yield the
    same verdicts with and without one. *)
val replay_file :
  ?cache:Hcrf_cache.Cache.t -> Repro.t -> verdict

(** Replay every [*.repro] under a directory, in file-name order.
    Returns [(path, reproducer, verdict)] per file; parse errors fail
    the whole replay. *)
val replay_corpus :
  ?cache:Hcrf_cache.Cache.t -> string ->
  ((string * Repro.t * verdict) list, string) result

(** {1 Optimality-gap corpus}

    Reproducer cases tagged [Optimality] whose [detail] pins a measured
    heuristic gap ([gap=G heur_ii=H optimal_ii=L heur_spills=S]) rather
    than an oracle violation; they live in their own corpus directory
    and are replayed by recomputing the measurement, not through
    {!replay_corpus}. *)

(** Schedule heuristically (plain engine, the given options) and
    certify exactly, capped at the achieved II.  [Some] iff the loop is
    certified optimal and the heuristic's II has a gap of at least 1. *)
val measure_gap :
  opts:Hcrf_sched.Engine.options -> Hcrf_machine.Config.t ->
  Hcrf_ir.Loop.t ->
  (Hcrf_sched.Engine.outcome * Hcrf_exact.Exact.t) option

(** The pinned [detail] line of a gap measurement. *)
val gap_detail : Hcrf_sched.Engine.outcome * Hcrf_exact.Exact.t -> string

(** Sweep [cases] {!small_exact_presets} cases across the published
    configurations, shrink every case with a certified gap >= 1 (the
    shrinker keeps "still certified, still suboptimal" as the
    predicate) and return the reproducers, in case order. *)
val hunt_gaps : ?max_shrink_evals:int -> seed:int -> cases:int -> unit ->
  Repro.t list

open Hcrf_ir

let reversing_bijection g =
  let ids = Ddg.nodes g in
  let tbl = Hashtbl.create (List.length ids + 1) in
  List.iter2 (Hashtbl.replace tbl) ids (List.rev ids);
  fun id -> match Hashtbl.find_opt tbl id with Some j -> j | None -> id

let rewrite_loop ~m (loop : Loop.t) =
  let r = Ddg.to_repr loop.Loop.ddg in
  let redge (e : Ddg.edge) = { e with Ddg.src = m e.Ddg.src; dst = m e.Ddg.dst } in
  let r' =
    {
      r with
      Ddg.repr_nodes =
        List.map
          (fun (id, kind, succs, preds) ->
            (m id, kind, List.rev_map redge succs, List.rev_map redge preds))
          r.Ddg.repr_nodes;
      repr_invariants =
        List.map
          (fun (inv, consumers) -> (inv, List.rev_map m consumers))
          r.Ddg.repr_invariants;
    }
  in
  let streams =
    List.map
      (fun (s : Loop.stream) -> { s with Loop.op = m s.Loop.op })
      loop.Loop.streams
  in
  Loop.make ~trip_count:loop.Loop.trip_count ~entries:loop.Loop.entries
    ~streams (Ddg.of_repr r')

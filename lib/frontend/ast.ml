(** A small loop language, playing the role of the ICTINEO front end:
    write the body of an innermost loop as scalar/array expressions and
    {!Compile} turns it into a dependence graph with memory streams,
    loop-carried distances and IF-converted conditionals.

    The iteration variable is implicit ([i]); array references are
    [arr "A" k] for [A.(i + k)], loop-carried scalars are [prev "s" d]
    for the value [s] had [d] iterations ago, and [param "alpha"] is a
    loop invariant. *)

type expr =
  | Arr of string * int      (** A.(i + k) *)
  | Var of string            (** scalar defined earlier in the body *)
  | Prev of string * int     (** scalar from d >= 1 iterations ago *)
  | Param of string          (** loop invariant *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Sqrt of expr
  | Select of expr * expr * expr
      (** IF-converted conditional value: cond ? then : else *)

type stmt =
  | Def of string * expr           (** s = e *)
  | Store of string * int * expr   (** A.(i + k) = e *)
  | If of expr * stmt list * stmt list
      (** structured conditional; the compiler IF-converts it *)

type t = {
  name : string;
  body : stmt list;
  trip_count : int;
  entries : int;
}

(* Convenience constructors for readable loop definitions. *)
let arr ?(off = 0) a = Arr (a, off)
let var s = Var s
let prev ?(d = 1) s = Prev (s, d)
let param s = Param s
let ( +: ) a b = Add (a, b)
let ( -: ) a b = Sub (a, b)
let ( *: ) a b = Mul (a, b)
let ( /: ) a b = Div (a, b)
let sqrt_ e = Sqrt e
let select c a b = Select (c, a, b)
let def s e = Def (s, e)
let store ?(off = 0) a e = Store (a, off, e)
let if_ c t e = If (c, t, e)

let make ?(trip_count = 1000) ?(entries = 1) ~name body =
  { name; body; trip_count; entries }

let rec pp_expr ppf = function
  | Arr (a, 0) -> Fmt.pf ppf "%s[i]" a
  | Arr (a, k) when k > 0 -> Fmt.pf ppf "%s[i+%d]" a k
  | Arr (a, k) -> Fmt.pf ppf "%s[i%d]" a k
  | Var s -> Fmt.string ppf s
  | Prev (s, d) -> Fmt.pf ppf "%s@@-%d" s d
  | Param s -> Fmt.pf ppf "$%s" s
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_expr a pp_expr b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp_expr a pp_expr b
  | Sqrt e -> Fmt.pf ppf "sqrt(%a)" pp_expr e
  | Select (c, a, b) ->
    Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt ppf = function
  | Def (s, e) -> Fmt.pf ppf "%s = %a" s pp_expr e
  | Store (a, 0, e) -> Fmt.pf ppf "%s[i] = %a" a pp_expr e
  | Store (a, k, e) -> Fmt.pf ppf "%s[i+%d] = %a" a k pp_expr e
  | If (c, t, e) ->
    Fmt.pf ppf "if %a { %a } else { %a }" pp_expr c
      Fmt.(list ~sep:semi pp_stmt)
      t
      Fmt.(list ~sep:semi pp_stmt)
      e

let pp ppf t =
  Fmt.pf ppf "@[<v>loop %s (N=%d, E=%d):@,%a@]" t.name t.trip_count
    t.entries
    Fmt.(list ~sep:cut (fun ppf s -> Fmt.pf ppf "  %a" pp_stmt s))
    t.body

(* An AST is pure data (no closures, no sharing that matters), so a
   digest of its marshalled form is canonical: equal kernels digest
   equal, and any edit — body, name, trip or entry count — changes it. *)
let digest (t : t) = Digest.string (Marshal.to_string t [])

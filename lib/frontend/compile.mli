(** Compiler from the loop language to a schedulable {!Hcrf_ir.Loop.t}.

    The pipeline mirrors what the paper's front end provides:
    {!If_convert} first turns conditionals into straight-line selects;
    array reads are CSE'd within an iteration (invalidated by a store to
    the same location); unit-stride dependence analysis inserts the
    memory edges (true flow with distance [k_s - k_l] when a store
    writes what a later iteration loads, anti the other way, ordered
    within the iteration when equal, and output dependences for
    store/store pairs); loop-carried scalars become distance-d register
    flow; a select compiles to two multiplies and a blending add; every
    array reference gets a memory stream for the cache simulator. *)

exception Error of string

val element_bytes : int

(** Compile a loop; raises {!Error} on malformed input (use of an
    undefined scalar, [prev] of a never-defined scalar, ...). *)
val compile : Ast.t -> Hcrf_ir.Loop.t

(** [compile] paired with the kernel's {!Ast.digest} — the memo key of
    the frontend stage of the incremental pipeline. *)
val compile_keyed : Ast.t -> string * Hcrf_ir.Loop.t

(** A small loop language, playing the role of the ICTINEO front end:
    write the body of an innermost loop as scalar/array expressions and
    {!Compile} turns it into a dependence graph with memory streams,
    loop-carried distances and IF-converted conditionals.

    The iteration variable is implicit ([i]); array references are
    [arr "A" ~off:k] for [A.(i + k)], loop-carried scalars are
    [prev "s" ~d] for the value [s] had [d] iterations ago, and
    [param "alpha"] is a loop invariant. *)

type expr =
  | Arr of string * int      (** A.(i + k) *)
  | Var of string            (** scalar defined earlier in the body *)
  | Prev of string * int     (** scalar from d >= 1 iterations ago *)
  | Param of string          (** loop invariant *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Sqrt of expr
  | Select of expr * expr * expr
      (** IF-converted conditional value: cond ? then : else *)

type stmt =
  | Def of string * expr           (** s = e *)
  | Store of string * int * expr   (** A.(i + k) = e *)
  | If of expr * stmt list * stmt list
      (** structured conditional; the compiler IF-converts it *)

type t = {
  name : string;
  body : stmt list;
  trip_count : int;
  entries : int;
}

(** Constructors for readable loop definitions. *)

val arr : ?off:int -> string -> expr
val var : string -> expr
val prev : ?d:int -> string -> expr
val param : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val sqrt_ : expr -> expr
val select : expr -> expr -> expr -> expr
val def : string -> expr -> stmt
val store : ?off:int -> string -> expr -> stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val make : ?trip_count:int -> ?entries:int -> name:string -> stmt list -> t

(** Canonical per-kernel content digest: covers name, body, trip and
    entry counts — any edit to any of them changes it.  The frontend
    stage of the incremental pipeline is keyed on this. *)
val digest : t -> string

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp : Format.formatter -> t -> unit

(** Compiler from the loop language to a schedulable {!Hcrf_ir.Loop.t}.

    The pipeline mirrors what the paper's front end provides:

    - {!If_convert} turns conditionals into straight-line selects;
    - array reads are CSE'd within an iteration (and invalidated by a
      store to the same location);
    - unit-stride dependence analysis inserts the memory edges: a store
      to [A.(i+k_s)] and a load of [A.(i+k_l)] are connected by a true
      memory dependence of distance [k_s - k_l] when positive, an anti
      dependence of distance [k_l - k_s] when negative, and ordered
      within the iteration when equal; store/store pairs get output
      dependences the same way;
    - loop-carried scalars ([prev]) become distance-d register flow;
    - a select compiles to two multiplies and a blending add (the cost
      of predicated execution);
    - every array reference gets a memory stream for the cache
      simulator. *)

open Hcrf_ir
open Ast

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let element_bytes = 8

type value = Node of int * int (* producer, distance *) | Inv of int

type state = {
  g : Ddg.t;
  scalars : (string, int) Hashtbl.t;
  params : (string, int) Hashtbl.t;
  loads : (string * int, int) Hashtbl.t; (* live CSE entries *)
  arrays : (string, int) Hashtbl.t;      (* array -> allocation index *)
  mutable refs : (bool * string * int * int) list;
      (** (is_store, array, offset, node), in program order *)
  mutable fixups : (int * string * int) list;
      (** consumer, scalar, distance — resolved after the body *)
}

let array_index st a =
  match Hashtbl.find_opt st.arrays a with
  | Some i -> i
  | None ->
    let i = Hashtbl.length st.arrays in
    Hashtbl.replace st.arrays a i;
    i

let array_base st a =
  let i = array_index st a in
  (i * (1 lsl 20)) + (i * 1056)

let connect st (v : value) ~consumer =
  match v with
  | Node (p, d) -> Ddg.add_edge st.g ~distance:d ~dep:Dep.True p consumer
  | Inv id -> Ddg.add_invariant_consumer st.g ~inv_id:id consumer

let rec compile_expr st (e : expr) : value =
  match e with
  | Param s ->
    let id =
      match Hashtbl.find_opt st.params s with
      | Some id -> id
      | None ->
        let id = Ddg.add_invariant st.g ~consumers:[] in
        Hashtbl.replace st.params s id;
        id
    in
    Inv id
  | Var s -> (
    match Hashtbl.find_opt st.scalars s with
    | Some n -> Node (n, 0)
    | None -> errf "use of undefined scalar %s" s)
  | Prev (s, d) ->
    if d < 1 then errf "prev %s needs distance >= 1" s;
    (* the defining node may come later in the body: defer the edge *)
    Node (-1, d) (* placeholder; [operand] handles it *)
  | Arr (a, k) -> (
    match Hashtbl.find_opt st.loads (a, k) with
    | Some n -> Node (n, 0)
    | None ->
      let n = Ddg.add_node st.g Op.Load in
      Hashtbl.replace st.loads (a, k) n;
      st.refs <- (false, a, k, n) :: st.refs;
      Node (n, 0))
  | Add (a, b) | Sub (a, b) -> binary st Op.Fadd a b
  | Mul (a, b) -> binary st Op.Fmul a b
  | Div (a, b) -> binary st Op.Fdiv a b
  | Sqrt a ->
    let n = Ddg.add_node st.g Op.Fsqrt in
    operand st a ~consumer:n;
    Node (n, 0)
  | Select (c, a, b) ->
    (* predicated execution: two guarded values blended together *)
    let m1 = Ddg.add_node st.g Op.Fmul in
    operand st c ~consumer:m1;
    operand st a ~consumer:m1;
    let m2 = Ddg.add_node st.g Op.Fmul in
    operand st c ~consumer:m2;
    operand st b ~consumer:m2;
    let blend = Ddg.add_node st.g Op.Fadd in
    Ddg.add_edge st.g ~dep:Dep.True m1 blend;
    Ddg.add_edge st.g ~dep:Dep.True m2 blend;
    Node (blend, 0)

and binary st kind a b =
  let n = Ddg.add_node st.g kind in
  operand st a ~consumer:n;
  operand st b ~consumer:n;
  Node (n, 0)

(* Compile [e] and wire it as an operand of [consumer]. *)
and operand st e ~consumer =
  match e with
  | Prev (s, d) ->
    if d < 1 then errf "prev %s needs distance >= 1" s;
    st.fixups <- (consumer, s, d) :: st.fixups
  | _ -> connect st (compile_expr st e) ~consumer

let compile_stmt st = function
  | Def (s, e) -> (
    match compile_expr st e with
    | Node (n, 0) -> Hashtbl.replace st.scalars s n
    | Node (_, _) -> errf "%s: bind prev through an operation" s
    | Inv _ -> errf "%s: bind a parameter through an operation" s)
  | Store (a, k, e) ->
    let n = Ddg.add_node st.g Op.Store in
    operand st e ~consumer:n;
    st.refs <- (true, a, k, n) :: st.refs;
    (* a store kills the CSE entry for that location *)
    Hashtbl.remove st.loads (a, k)
  | If _ -> errf "conditional survived IF-conversion"

(* Memory dependences between two references of the same array (unit
   stride): the sign of the offset difference gives the direction and
   the distance; equal offsets are ordered by program order. *)
let memory_edges st =
  let refs = List.rev st.refs in
  let rec pairs = function
    | [] -> ()
    | (s1, a1, k1, n1) :: rest ->
      List.iter
        (fun (s2, a2, k2, n2) ->
          if a1 = a2 && (s1 || s2) then
            match (s1, s2) with
            | false, false -> ()
            | true, true ->
              if k1 > k2 then
                Ddg.add_edge st.g ~distance:(k1 - k2) ~dep:Dep.Output n1 n2
              else if k2 > k1 then
                Ddg.add_edge st.g ~distance:(k2 - k1) ~dep:Dep.Output n2 n1
              else Ddg.add_edge st.g ~distance:0 ~dep:Dep.Output n1 n2
            | _ ->
              let (st_n, st_k), (ld_n, ld_k) =
                if s1 then ((n1, k1), (n2, k2)) else ((n2, k2), (n1, k1))
              in
              if st_k > ld_k then
                (* the store writes what a later iteration loads *)
                Ddg.add_edge st.g ~distance:(st_k - ld_k) ~dep:Dep.True st_n
                  ld_n
              else if st_k < ld_k then
                (* the load reads what a later iteration overwrites *)
                Ddg.add_edge st.g ~distance:(ld_k - st_k) ~dep:Dep.Anti ld_n
                  st_n
              else if s1 then
                (* store first in program order: the load reads it *)
                Ddg.add_edge st.g ~distance:0 ~dep:Dep.True n1 n2
              else
                Ddg.add_edge st.g ~distance:0 ~dep:Dep.Anti n1 n2)
        rest;
      pairs rest
  in
  pairs refs

let streams st =
  List.rev_map
    (fun (_, a, k, n) ->
      { Loop.op = n; base = array_base st a + (k * element_bytes);
        stride = element_bytes })
    st.refs

(** Compile a loop; raises {!Error} on malformed input. *)
let compile (l : Ast.t) : Loop.t =
  let l = If_convert.run l in
  let st =
    {
      g = Ddg.create ~name:l.Ast.name ();
      scalars = Hashtbl.create 16;
      params = Hashtbl.create 8;
      loads = Hashtbl.create 16;
      arrays = Hashtbl.create 8;
      refs = [];
      fixups = [];
    }
  in
  List.iter (compile_stmt st) l.Ast.body;
  (* resolve loop-carried scalar references *)
  List.iter
    (fun (consumer, s, d) ->
      match Hashtbl.find_opt st.scalars s with
      | Some def -> Ddg.add_edge st.g ~distance:d ~dep:Dep.True def consumer
      | None -> errf "prev of undefined scalar %s" s)
    st.fixups;
  memory_edges st;
  if not (Ddg.validate st.g) then errf "internal: malformed graph";
  Loop.make ~trip_count:l.Ast.trip_count ~entries:l.Ast.entries
    ~streams:(streams st) st.g

(* The compiled loop paired with its kernel digest — the key the
   frontend stage of the incremental pipeline memoizes under. *)
let compile_keyed (l : Ast.t) : string * Loop.t = (Ast.digest l, compile l)

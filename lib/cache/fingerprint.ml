(** Canonical fingerprints of scheduling inputs (see the interface).

    All digests are MD5 over length-prefixed part lists, so no two
    distinct part lists share an encoding.  Graph hashing uses
    Weisfeiler–Lehman color refinement: every construction below is a
    *multiset* (sorted list) of node-id-free strings, which makes the
    result invariant under node renumbering and edge reordering while
    remaining sensitive to kinds, dependence labels, distances and
    per-node attributes. *)

open Hcrf_ir

type t = string (* raw 16-byte MD5 *)

let equal = String.equal
let compare = String.compare

let to_hex t = Digest.to_hex t
let pp ppf t = Fmt.string ppf (to_hex t)

(* Unambiguous encoding: each part is length-prefixed before
   concatenation, so part boundaries cannot be confused. *)
let digest parts =
  Digest.string
    (String.concat ""
       (List.map (fun p -> string_of_int (String.length p) ^ ":" ^ p) parts))

let of_string s = digest [ "label"; s ]
let combine ts = digest ("combine" :: ts)

let int i = string_of_int i
let float f = Printf.sprintf "%h" f
let bool b = if b then "t" else "f"

(* ------------------------------------------------------------------ *)
(* Graphs: WL color refinement                                         *)

let of_ddg ?(attr = fun _ -> "") (g : Ddg.t) =
  let ids = Ddg.nodes g in
  let n = List.length ids in
  (* invariant consumption participates in the initial color: a node
     reading k loop invariants is distinguishable from one reading none *)
  let inv_uses = Hashtbl.create 16 in
  List.iter
    (fun (inv : Ddg.invariant) ->
      List.iter
        (fun c ->
          Hashtbl.replace inv_uses c
            (1 + Option.value ~default:0 (Hashtbl.find_opt inv_uses c)))
        inv.Ddg.inv_consumers)
    (Ddg.invariants g);
  let color = Hashtbl.create (max 16 n) in
  List.iter
    (fun id ->
      Hashtbl.replace color id
        (digest
           [ "node"; Op.kind_name (Ddg.kind g id); attr id;
             int (Option.value ~default:0 (Hashtbl.find_opt inv_uses id)) ]))
    ids;
  let c id = Hashtbl.find color id in
  let edge_sig tag other (e : Ddg.edge) =
    digest [ tag; Dep.name e.dep; int e.distance; c other ]
  in
  let refine () =
    let next =
      List.map
        (fun id ->
          let ins =
            List.sort String.compare
              (List.map (fun (e : Ddg.edge) -> edge_sig "in" e.src e)
                 (Ddg.preds g id))
          and outs =
            List.sort String.compare
              (List.map (fun (e : Ddg.edge) -> edge_sig "out" e.dst e)
                 (Ddg.succs g id))
          in
          (id, digest (("refine" :: c id :: ins) @ ("|" :: outs))))
        ids
    in
    List.iter (fun (id, col) -> Hashtbl.replace color id col) next
  in
  let distinct () =
    List.sort_uniq String.compare (List.map c ids) |> List.length
  in
  (* refinement only ever splits color classes; stop when the partition
     is stable (at most n rounds) *)
  let rec loop rounds prev =
    if rounds >= n then ()
    else begin
      refine ();
      let d = distinct () in
      if d > prev then loop (rounds + 1) d
    end
  in
  loop 0 (distinct ());
  let node_colors = List.sort String.compare (List.map c ids) in
  let edge_sigs =
    List.sort String.compare
      (List.map
         (fun (e : Ddg.edge) ->
           digest [ "edge"; c e.src; c e.dst; Dep.name e.dep; int e.distance ])
         (Ddg.edges g))
  in
  let inv_sigs =
    List.sort String.compare
      (List.map
         (fun (inv : Ddg.invariant) ->
           digest
             ("inv"
             :: List.sort String.compare (List.map c inv.Ddg.inv_consumers)))
         (Ddg.invariants g))
  in
  digest
    (("graph" :: int n :: node_colors) @ ("|" :: edge_sigs) @ ("|" :: inv_sigs))

let of_loop (l : Loop.t) =
  let attr id =
    match Loop.stream_for l id with
    | None -> ""
    | Some s -> Fmt.str "stream:%d:%d" s.Loop.base s.Loop.stride
  in
  digest
    [ "loop"; of_ddg ~attr l.Loop.ddg; int l.Loop.trip_count;
      int l.Loop.entries ]

(* ------------------------------------------------------------------ *)
(* Machine configurations                                              *)

let cap = function Hcrf_machine.Cap.Inf -> "inf" | Finite n -> int n

(* The generalized fields append parts only when present, with a
   distinct leading tag per field group: a legacy (absent-everywhere)
   organization keeps its legacy part list byte-for-byte — and hence its
   historical digest and every Store v3 cache key derived from it —
   while any two configurations differing in any port/level field get
   distinct encodings (parts are length-prefixed, tags are distinct). *)
let access_parts tag a =
  match Hcrf_machine.Rf.norm_access a with
  | None -> []
  | Some a -> [ tag; cap a.pr; cap a.pw ]

let l3_parts = function
  | None -> []
  | Some (l : Hcrf_machine.Rf.level3) ->
    [ "l3"; cap l.l3_regs; cap l.l3_lp; cap l.l3_sp ]
    @ access_parts "tacc" l.l3_access

let rf_parts (rf : Hcrf_machine.Rf.t) =
  match rf with
  | Monolithic { regs; access } ->
    [ "mono"; cap regs ] @ access_parts "lacc" access
  | Clustered { clusters; regs_per_bank; lp; sp; buses; access } ->
    [ "clustered"; int clusters; cap regs_per_bank; cap lp; cap sp;
      cap buses ]
    @ access_parts "lacc" access
  | Hierarchical
      { clusters; regs_per_bank; shared_regs; lp; sp; local_access;
        shared_access; l3 } ->
    [ "hier"; int clusters; cap regs_per_bank; cap shared_regs; cap lp;
      cap sp ]
    @ l3_parts l3
    @ access_parts "lacc" local_access
    @ access_parts "sacc" shared_access

let of_config (c : Hcrf_machine.Config.t) =
  let l = c.Hcrf_machine.Config.lats in
  digest
    ([ "config"; int c.Hcrf_machine.Config.n_fus;
       int c.Hcrf_machine.Config.n_mem_ports ]
    @ rf_parts c.Hcrf_machine.Config.rf
    @ [ int l.Hcrf_machine.Latencies.fadd; int l.Hcrf_machine.Latencies.fmul;
        int l.Hcrf_machine.Latencies.fdiv;
        int l.Hcrf_machine.Latencies.fsqrt;
        int l.Hcrf_machine.Latencies.mem_read;
        int l.Hcrf_machine.Latencies.mem_write;
        int l.Hcrf_machine.Latencies.move;
        int l.Hcrf_machine.Latencies.loadr;
        int l.Hcrf_machine.Latencies.storer;
        float c.Hcrf_machine.Config.cycle_ns;
        float c.Hcrf_machine.Config.miss_ns ])

(* ------------------------------------------------------------------ *)
(* Scheduler options                                                   *)

let of_options ?(probe = []) (o : Hcrf_sched.Engine.options) =
  let samples =
    List.concat_map
      (fun id ->
        [ int id;
          (match o.Hcrf_sched.Engine.load_override id with
          | None -> "-"
          | Some l -> int l) ])
      probe
  in
  digest
    ([ "options"; int o.Hcrf_sched.Engine.budget_ratio;
       (match o.Hcrf_sched.Engine.max_ii with None -> "-" | Some i -> int i);
       bool o.Hcrf_sched.Engine.backtracking;
       (match o.Hcrf_sched.Engine.ordering with
       | `Hrms -> "hrms"
       | `Topological -> "topo") ]
    @ samples)

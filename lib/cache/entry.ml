open Hcrf_ir
open Hcrf_sched

type stored_outcome = {
  s_ii : int;
  s_mii : int;
  s_bounds : Mii.bounds;
  s_sc : int;
  s_assigns : (int * int * Topology.loc) list;
  s_graph : Ddg.repr;
  s_invariant_residents : (Topology.bank * int) list;
  s_seconds : float;
  s_stats : Engine.stats;
}

type t =
  | Scheduled of {
      outcome : stored_outcome;
      stall_cycles : float;
      retries : int;
      input_digest : string;
    }
  | Failed of int

(* Canonical, *id-sensitive* digest of an input graph.  The cache key's
   WL fingerprint deliberately equates isomorphic graphs, but a stored
   schedule's assignments are tied to concrete node ids: replaying them
   for a renumbered twin would bind values and memory streams to the
   wrong nodes.  Entries therefore also record this digest of the graph
   they were computed from, and [Cache.find ~validate] degrades a hit
   with a different digest to a miss.  Adjacency-list and invariant
   *order* are canonicalized away — they cannot change what a replayed
   schedule computes. *)
let ddg_digest (g : Ddg.t) =
  let b = Buffer.create 512 in
  List.iter
    (fun v ->
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ':';
      Buffer.add_string b (Op.kind_name (Ddg.kind g v));
      Buffer.add_char b ';')
    (Ddg.nodes g);
  List.iter
    (fun (src, dst, dep, dist) ->
      Buffer.add_string b
        (Printf.sprintf "%d>%d:%s:%d;" src dst dep dist))
    (List.sort compare
       (List.map
          (fun (e : Ddg.edge) -> (e.src, e.dst, Dep.name e.dep, e.distance))
          (Ddg.edges g)));
  List.iter
    (fun (iv, consumers) ->
      Buffer.add_string b
        (Printf.sprintf "i%d:%s;" iv
           (String.concat "," (List.map string_of_int consumers))))
    (List.sort compare
       (List.map
          (fun (i : Ddg.invariant) ->
            (i.inv_id, List.sort compare i.inv_consumers))
          (Ddg.invariants g)));
  Digest.string (Buffer.contents b)

(* Every bank of the configuration; the shared bank is included
   unconditionally (residency is 0 where it does not exist). *)
let banks_of (config : Hcrf_machine.Config.t) =
  List.init (Hcrf_machine.Config.clusters config) (fun i -> Topology.Local i)
  @ [ Topology.Shared ]

let of_outcome config (o : Engine.outcome) ~input_digest ~stall_cycles
    ~retries =
  let assigns =
    List.filter_map
      (fun v ->
        match Schedule.entry o.Engine.schedule v with
        | Some e -> Some (v, e.Schedule.cycle, e.Schedule.loc)
        | None -> None)
      (Ddg.nodes o.Engine.graph)
    (* (cycle, node) order: a [Move]'s producer is always issued at
       least one latency cycle earlier (distance-0 flow), so replaying
       in this order lets [Schedule.place] resolve the move's source
       bank exactly as the engine did *)
    |> List.sort (fun (v, c, _) (v', c', _) -> compare (c, v) (c', v'))
  in
  Scheduled
    {
      outcome =
        {
          s_ii = o.Engine.ii;
          s_mii = o.Engine.mii;
          s_bounds = o.Engine.bounds;
          s_sc = o.Engine.sc;
          s_assigns = assigns;
          s_graph = Ddg.to_repr o.Engine.graph;
          s_invariant_residents =
            List.map
              (fun b -> (b, o.Engine.invariant_residents b))
              (banks_of config);
          s_seconds = o.Engine.seconds;
          s_stats = o.Engine.stats;
        };
      stall_cycles;
      retries;
      input_digest;
    }

let to_outcome config (s : stored_outcome) : Engine.outcome =
  let graph = Ddg.of_repr s.s_graph in
  let schedule = Schedule.create config ~ii:s.s_ii in
  List.iter
    (fun (v, cycle, loc) -> Schedule.place schedule graph v ~cycle ~loc)
    s.s_assigns;
  let residents = s.s_invariant_residents in
  {
    Engine.ii = s.s_ii;
    mii = s.s_mii;
    bounds = s.s_bounds;
    sc = s.s_sc;
    schedule;
    graph;
    invariant_residents =
      (fun b ->
        match
          List.find_opt (fun (b', _) -> Topology.equal_bank b b') residents
        with
        | Some (_, n) -> n
        | None -> 0);
    seconds = s.s_seconds;
    stats = s.s_stats;
  }

type t = { dir : string }

(* version 3: entries are sharded into [shards] subdirectories by the
   leading hex nibble of the key, so concurrent writers (the serving
   daemon's connection handlers, a Par pool) never contend on one
   directory.  The *payload* layout is unchanged from version 2
   ([Entry.Scheduled] with [input_digest]), so v2 files — written into
   the flat, unsharded directory root — are still readable: [load]
   falls back to the legacy flat path and accepts the v2 magic.  v1
   payloads have a different Marshal layout and are still rejected
   before unmarshalling. *)
let version = 3
let magic = Printf.sprintf "hcrf-cache %d\n" version
let magic_v2 = "hcrf-cache 2\n"

(* Shard count and the shard of a key (its leading hex nibble).  16 is
   enough to make same-shard collisions of concurrent writers rare and
   keeps the fan-out observable by eye in the cache directory. *)
let shards = 16

let shard_of_key key =
  match (Fingerprint.to_hex key).[0] with
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> 10 + Char.code c - Char.code 'a'
  | _ -> 0 (* to_hex is lower-case hex; unreachable *)

let dir t = t.dir

(* mkdir -p *)
let rec ensure_dir d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    ensure_dir (Filename.dirname d);
    Sys.mkdir d 0o755
  end

let shard_dir t i = Filename.concat t.dir (Printf.sprintf "%x" i)

let open_dir d =
  match
    ensure_dir d;
    if not (Sys.is_directory d) then failwith "not a directory";
    (* create every shard up front: [save] must never race a mkdir *)
    for i = 0 to shards - 1 do
      ensure_dir (Filename.concat d (Printf.sprintf "%x" i))
    done
  with
  | () -> Some { dir = d }
  | exception e ->
    Logs.warn (fun m ->
        m "schedule cache: cannot use directory %s (%s); continuing \
           in-memory only"
          d (Printexc.to_string e));
    None

let basename key = Fingerprint.to_hex key ^ ".hcrf"

let path t ~key =
  Filename.concat (shard_dir t (shard_of_key key)) (basename key)

(* Pre-v3 flat location of an entry, still consulted on a shard miss so
   a v2 cache directory keeps its warm entries across the upgrade. *)
let legacy_path t ~key = Filename.concat t.dir (basename key)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file p ~key =
  let stale reason =
    Logs.warn (fun m ->
        m "schedule cache: ignoring %s (%s); recomputing" p reason);
    `Error
  in
  match read_file p with
  | exception e -> stale (Printexc.to_string e)
  | content ->
    (* v3 and v2 share the payload layout; only the header differs *)
    let mlen = String.length magic in
    if String.length content < mlen + 16 then stale "truncated"
    else if
      not
        (String.equal (String.sub content 0 mlen) magic
        || String.equal (String.sub content 0 mlen) magic_v2)
    then stale "bad magic or stale version"
    else
      let sum = String.sub content mlen 16 in
      let payload =
        String.sub content (mlen + 16) (String.length content - mlen - 16)
      in
      if not (String.equal sum (Digest.string payload)) then
        stale "checksum mismatch"
      else begin
        (* the checksum matched, so the payload is exactly what a
           same-layout writer produced: unmarshalling is safe *)
        match (Marshal.from_string payload 0 : string * Entry.t) with
        | exception e -> stale (Printexc.to_string e)
        | stored_key, entry ->
          if String.equal stored_key (Fingerprint.to_hex key) then
            `Hit entry
          else stale "key mismatch"
      end

let load t ~key =
  let p = path t ~key in
  if Sys.file_exists p then load_file p ~key
  else
    let legacy = legacy_path t ~key in
    if Sys.file_exists legacy then load_file legacy ~key else `Miss

let tmp_counter = Atomic.make 0

let save t ~key entry =
  let p = path t ~key in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" p (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let payload = Marshal.to_string (Fingerprint.to_hex key, entry) [] in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        output_string oc (Digest.string payload);
        output_string oc payload);
    Sys.rename tmp p
  with
  | () -> true
  | exception e ->
    (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
    Logs.warn (fun m ->
        m "schedule cache: cannot write %s (%s); entry kept in memory only"
          p (Printexc.to_string e));
    false

type stats = {
  hits : int;
  misses : int;
  stores : int;
  disk_hits : int;
  disk_errors : int;
}

let zero_stats =
  { hits = 0; misses = 0; stores = 0; disk_hits = 0; disk_errors = 0 }

(* Keys in sorted order, [k=v] like the trace counters, so the cache
   line is byte-comparable across runs and merge tools can treat every
   counter line the same way. *)
let pp_stats ppf s =
  Fmt.pf ppf "disk-errors=%d disk-hits=%d hits=%d misses=%d stores=%d"
    s.disk_errors s.disk_hits s.hits s.misses s.stores

(* One shard: its slice of the in-memory table, its own counters and
   its own mutex.  Keys map to shards exactly as in the on-disk layout
   ({!Store.shard_of_key}), so two lookups can only contend when they
   would also touch the same store subdirectory — the single global
   mutex this replaced serialized *every* lookup of a Par pool or a
   serving daemon's connection handlers. *)
type shard = {
  table : (Fingerprint.t, Entry.t) Hashtbl.t;
  mutex : Mutex.t;
  mutable counters : stats;
}

type t = { shards_ : shard array; store : Store.t option }

let create ?dir () =
  {
    shards_ =
      Array.init Store.shards (fun _ ->
          { table = Hashtbl.create 32;
            mutex = Mutex.create ();
            counters = zero_stats });
    store = Option.bind dir Store.open_dir;
  }

let dir t = Option.map Store.dir t.store

let shard t key = t.shards_.(Store.shard_of_key key)

let locked sh f =
  Mutex.lock sh.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.mutex) f

module Tr = Hcrf_obs.Trace
module Ev = Hcrf_obs.Event

let emit trace op =
  if Tr.enabled trace then Tr.emit trace (Ev.Cache op)

let find ?(trace = Tr.off) ?(validate = fun (_ : Entry.t) -> true) t key =
  let sh = shard t key in
  let result =
    locked sh (fun () ->
      let miss ?(disk_error = false) () =
        sh.counters <-
          { sh.counters with
            misses = sh.counters.misses + 1;
            disk_errors =
              (sh.counters.disk_errors + if disk_error then 1 else 0) };
        None
      in
      match Hashtbl.find_opt sh.table key with
      | Some e when validate e ->
        sh.counters <- { sh.counters with hits = sh.counters.hits + 1 };
        Some e
      | Some _ ->
        (* present but rejected by [validate] (e.g. the entry's schedule
           is bound to different node ids than the querying loop's): the
           caller must recompute, so this is a miss *)
        miss ()
      | None -> (
        let disk =
          match t.store with
          | None -> `Miss
          | Some s -> Store.load s ~key
        in
        match disk with
        | `Hit e when validate e ->
          Hashtbl.replace sh.table key e;
          sh.counters <-
            { sh.counters with
              hits = sh.counters.hits + 1;
              disk_hits = sh.counters.disk_hits + 1 };
          Some e
        | `Hit _ -> miss ()
        | (`Miss | `Error) as r ->
          (* a present-but-unreadable file was already reported by
             [Store.load]; it counts as a miss and is recomputed *)
          miss ~disk_error:(r = `Error) ()))
  in
  emit trace (match result with Some _ -> Ev.Hit | None -> Ev.Miss);
  result

let add ?(trace = Tr.off) t key entry =
  emit trace Ev.Store;
  let sh = shard t key in
  locked sh (fun () ->
      Hashtbl.replace sh.table key entry;
      let wrote =
        match t.store with
        | None -> true
        | Some s -> Store.save s ~key entry
      in
      sh.counters <-
        { sh.counters with
          stores = sh.counters.stores + 1;
          disk_errors =
            (sh.counters.disk_errors + if wrote then 0 else 1) };
      ())

(* Per-shard counters summed into one snapshot; integer sums commute,
   so the totals are deterministic for any interleaving of workers. *)
let stats t =
  Array.fold_left
    (fun acc sh ->
      let c = locked sh (fun () -> sh.counters) in
      {
        hits = acc.hits + c.hits;
        misses = acc.misses + c.misses;
        stores = acc.stores + c.stores;
        disk_hits = acc.disk_hits + c.disk_hits;
        disk_errors = acc.disk_errors + c.disk_errors;
      })
    zero_stats t.shards_

(** Content-addressed schedule cache: an in-memory table keyed by
    canonical {!Fingerprint}s, optionally backed by an on-disk
    {!Store}.

    The cache is safe to share between the domains of a {!Hcrf_eval.Par}
    pool and the threads of a serving daemon: the key space is sharded
    by fingerprint prefix (mirroring the {!Store} directory layout) and
    every shard has its own mutex, so lookups, insertions and counter
    updates only contend when they race on the same shard (scheduling
    itself — the expensive part — runs outside any lock).  Because keys
    canonically identify the full scheduling
    input and replayed entries are bit-reproductions of the original
    outcome, a cache hit can never change any result: warm and cold runs
    produce byte-identical aggregates. *)

type stats = {
  hits : int;        (** lookups served from memory or disk *)
  misses : int;      (** lookups that fell through to the scheduler *)
  stores : int;      (** entries inserted *)
  disk_hits : int;   (** subset of [hits] loaded from the store *)
  disk_errors : int; (** corrupt/stale/unwritable on-disk entries *)
}

val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit

type t

(** [create ?dir ()] makes an empty cache.  With [dir] the cache also
    persists entries under that directory (created if needed); if the
    directory cannot be used the cache degrades to in-memory-only with a
    warning rather than failing. *)
val create : ?dir:string -> unit -> t

(** The directory actually in use ([None] for in-memory-only, including
    the degraded case). *)
val dir : t -> string option

(** Lookup/insert; [trace] records a [Cache Hit]/[Miss]/[Store] event
    for the calling work unit (outside the cache lock).  A present
    entry that [validate] rejects — e.g. an {!Entry.ddg_digest}
    mismatch, meaning the stored schedule is bound to different node
    ids than the querying loop's — is reported (and counted) as a miss
    so the caller recomputes and overwrites it. *)
val find :
  ?trace:Hcrf_obs.Trace.t -> ?validate:(Entry.t -> bool) -> t ->
  Fingerprint.t -> Entry.t option

val add : ?trace:Hcrf_obs.Trace.t -> t -> Fingerprint.t -> Entry.t -> unit

(** Snapshot of the counters. *)
val stats : t -> stats

(** On-disk persistence for cache entries: one file per entry, named by
    the key's hex fingerprint, sharded into {!shards} subdirectories by
    the key's leading hex nibble (v3 layout).  Sharding spreads
    concurrent writers over independent directories — and lets
    {!Cache} guard each shard with its own mutex instead of one global
    lock.

    The layout is self-migrating: a v2 (flat, unsharded) cache
    directory keeps working, because {!load} falls back to the legacy
    flat path on a shard miss and the v2 payload layout is identical;
    new writes always go to the shards.

    The file format is defensive: a versioned magic header followed by
    an MD5 checksum of the marshalled payload.  A truncated, corrupt,
    garbage or version-stale file fails the header or checksum test and
    is reported as a miss with a {!Logs} warning — never an exception,
    and in particular the unmarshaller is never run on bytes that were
    not written by a matching layout of this module.

    Writes go through a temporary file in the same directory followed by
    an atomic rename, so concurrent processes sharing a cache directory
    can only ever observe complete entries. *)

type t

(** Current on-disk format version (bumped whenever the entry schema or
    directory layout changes; payload-incompatible older files are then
    skipped as stale). *)
val version : int

(** Number of shard subdirectories (16: one per leading hex nibble). *)
val shards : int

(** Shard index of a key, in [0, shards). *)
val shard_of_key : Fingerprint.t -> int

(** Open (creating it if needed, like [mkdir -p]) a cache directory.
    Returns [None] — with a warning — when the directory cannot be
    created or is not writable; callers degrade to in-memory-only
    caching. *)
val open_dir : string -> t option

val dir : t -> string

(** Sharded path of the entry file for [key] (exposed for tests). *)
val path : t -> key:Fingerprint.t -> string

(** Pre-v3 flat path of [key]; reads fall back to it so unsharded
    caches migrate transparently (exposed for tests). *)
val legacy_path : t -> key:Fingerprint.t -> string

(** [`Miss] on absence; [`Error] (with a warning) on a truncated,
    corrupt, garbage, version-stale or unreadable file. *)
val load :
  t -> key:Fingerprint.t -> [ `Hit of Entry.t | `Miss | `Error ]

(** [false] — with a warning — when the entry could not be written. *)
val save : t -> key:Fingerprint.t -> Entry.t -> bool

(** Per-bank access-port counts for each RF organization.

    Following §3 of the paper: each FU needs 2 read + 1 write ports on the
    bank that feeds it, each memory port needs 1 read (store data) + 1
    write (load result).  In clustered organizations the per-bank [lp]
    input / [sp] output ports of the communication network are write /
    read ports of the bank; in hierarchical organizations the shared bank
    additionally exposes [lp] read and [sp] write ports per cluster. *)

open Hcrf_machine

type t = { reads : int; writes : int }

let total p = p.reads + p.writes

let pp ppf p = Fmt.pf ppf "%dr+%dw" p.reads p.writes

let cap_int what c =
  match Cap.to_int_opt c with
  | Some n -> n
  | None -> Fmt.invalid_arg "Ports: %s is unbounded, cannot size hardware" what

(* An explicit [@r..w..] access constraint overrides the derived
   provisioning: the hardware is built with exactly that many ports. *)
let of_access what (a : Rf.access) =
  { reads = cap_int (what ^ ".pr") a.Rf.pr;
    writes = cap_int (what ^ ".pw") a.Rf.pw }

(** Ports of one first-level (FU-facing) bank. *)
let local_bank (c : Config.t) =
  match Rf.local_access c.rf with
  | Some a -> of_access "local access" a
  | None -> (
    let fus = Config.fus_per_cluster c in
    match c.rf with
    | Rf.Monolithic _ ->
      { reads = (2 * c.n_fus) + c.n_mem_ports;
        writes = c.n_fus + c.n_mem_ports }
    | Rf.Clustered { lp; sp; _ } ->
      let mem = Config.mem_ports_per_cluster c in
      { reads = (2 * fus) + mem + cap_int "sp" sp;
        writes = fus + mem + cap_int "lp" lp }
    | Rf.Hierarchical { lp; sp; _ } ->
      { reads = (2 * fus) + cap_int "sp" sp;
        writes = fus + cap_int "lp" lp })

(** Ports of the shared second-level bank, when the organization has
    one. *)
let shared_bank (c : Config.t) =
  match c.rf with
  | Rf.Monolithic _ | Rf.Clustered _ -> None
  | Rf.Hierarchical { clusters; lp; sp; shared_access; l3; _ } ->
    Some
      (match shared_access with
      | Some a -> of_access "shared access" a
      | None -> (
        match l3 with
        | None ->
          { reads = c.n_mem_ports + (clusters * cap_int "lp" lp);
            writes = c.n_mem_ports + (clusters * cap_int "sp" sp) }
        | Some l ->
          (* with a third level the memory ports move off the shared
             bank; it instead feeds the L3 transfer ports (a StoreR
             shared->L3 reads shared, a LoadR L3->shared writes it) *)
          { reads =
              (clusters * cap_int "lp" lp) + cap_int "l3_sp" l.Rf.l3_sp;
            writes =
              (clusters * cap_int "sp" sp) + cap_int "l3_lp" l.Rf.l3_lp }))

(** Ports of the third-level bank, when the organization has one. *)
let l3_bank (c : Config.t) =
  match Rf.level3_of c.rf with
  | None -> None
  | Some l ->
    Some
      (match l.Rf.l3_access with
      | Some a -> of_access "l3 access" a
      | None ->
        (* memory ops exchange with L3 (loads write, stores read), plus
           the inter-level transfer ports on the L3 side *)
        { reads = c.n_mem_ports + cap_int "l3_lp" l.Rf.l3_lp;
          writes = c.n_mem_ports + cap_int "l3_sp" l.Rf.l3_sp })

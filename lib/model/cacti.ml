(** CACTI-derived access-time and area model for register files.

    The paper uses CACTI 3.0 [32] with tag logic and TLB removed, at a
    0.10 um minimum drawn gate length.  We implement a compact analytic
    surrogate with the classic multi-ported-cell structure: every port adds
    a wordline/bitline pair, so the cell side grows linearly with the port
    count and the array delay grows with the (square root of the) array
    area.  The coefficients below were calibrated against the paper's
    published Table 5 points; `test/test_model.ml` checks the surrogate
    stays within tolerance of every published access time. *)

type bank = {
  regs : int;
  bits : int;   (** register width; the paper's FP registers are 64-bit *)
  ports : int;  (** total read + write ports *)
}

let bank ?(bits = 64) ~regs ~ports () =
  if regs < 1 || ports < 1 || bits < 1 then invalid_arg "Cacti.bank";
  { regs; bits; ports }

(* Calibrated coefficients (nanoseconds / lambda^2 at 0.10 um). *)
let t_fixed = 0.225       (* sense amp + output driver + latch overhead *)
let t_array = 0.003415    (* delay per sqrt(bit) of array *)
let t_port = 0.0618       (* relative wire-length growth per port *)
let cell_base = 13.8      (* lambda, single-port cell side *)
let cell_per_port = 0.9   (* lambda of cell side per extra port *)
let bank_overhead = 2.0e5 (* lambda^2: decoder, sense amps, drivers *)

(** Access time in nanoseconds. *)
let access_time_ns b =
  t_fixed
  +. t_array
     *. sqrt (float_of_int (b.regs * b.bits))
     *. (1. +. (t_port *. float_of_int b.ports))

(** Area in lambda^2 (the paper reports 10^6 lambda^2). *)
let area_lambda2 b =
  let side = cell_base +. (cell_per_port *. float_of_int b.ports) in
  (float_of_int (b.regs * b.bits) *. side *. side) +. bank_overhead

let area_mlambda2 b = area_lambda2 b /. 1.0e6

(** Banks of a full configuration: [clusters] copies of the local bank,
    optionally the shared bank, optionally the third-level bank. *)
let banks_of_config (c : Hcrf_machine.Config.t) =
  let local =
    bank ~regs:(Hcrf_machine.Cap.to_int_exn (Hcrf_machine.Rf.local_regs c.rf))
      ~ports:(Ports.total (Ports.local_bank c)) ()
  in
  let locals = List.init (Hcrf_machine.Config.clusters c) (fun _ -> local) in
  let shared =
    Option.map
      (fun p ->
        bank
          ~regs:
            (Hcrf_machine.Cap.to_int_exn
               (Hcrf_machine.Rf.shared_regs c.rf))
          ~ports:(Ports.total p) ())
      (Ports.shared_bank c)
  in
  let l3 =
    Option.map
      (fun p ->
        bank
          ~regs:
            (Hcrf_machine.Cap.to_int_exn (Hcrf_machine.Rf.l3_regs c.rf))
          ~ports:(Ports.total p) ())
      (Ports.l3_bank c)
  in
  (locals, shared, l3)

type estimate = {
  local_access_ns : float;
  shared_access_ns : float option;
  l3_access_ns : float option;
  total_area_mlambda2 : float;
  local_area_mlambda2 : float;  (** one bank *)
  shared_area_mlambda2 : float option;
  l3_area_mlambda2 : float option;
}

(** Full-configuration estimate.  The configuration's cycle time is set by
    the local (FU-facing) bank; the shared bank only determines the
    LoadR/StoreR latency (§3), and a third level only its own transfer
    latency. *)
let estimate c =
  let locals, shared, l3 = banks_of_config c in
  let local =
    match locals with
    | b :: _ -> b
    | [] -> assert false
  in
  let local_area = area_mlambda2 local in
  let shared_access = Option.map access_time_ns shared in
  let shared_area = Option.map area_mlambda2 shared in
  let l3_access = Option.map access_time_ns l3 in
  let l3_area = Option.map area_mlambda2 l3 in
  {
    local_access_ns = access_time_ns local;
    shared_access_ns = shared_access;
    l3_access_ns = l3_access;
    total_area_mlambda2 =
      (local_area *. float_of_int (List.length locals))
      +. Option.value ~default:0. shared_area
      +. Option.value ~default:0. l3_area;
    local_area_mlambda2 = local_area;
    shared_area_mlambda2 = shared_area;
    l3_area_mlambda2 = l3_area;
  }

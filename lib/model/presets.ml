(** Ready-made processor configurations.

    Two construction paths exist for the evaluated configurations:
    {!of_published} uses the paper's published Table 5 hardware constants
    (clock, latencies) so the performance experiments run on exactly the
    published machine; {!of_model} derives everything from the analytic
    {!Cacti} + {!Timing} surrogate, which is what a user exploring a new
    design point would do. *)

open Hcrf_machine

let rf_of ~notation ~lp ~sp =
  match Rf.of_notation notation with
  | Rf.Monolithic _ as m -> m
  | Rf.Clustered c ->
    Rf.Clustered { c with lp = Cap.Finite lp; sp = Cap.Finite sp }
  | Rf.Hierarchical h ->
    Rf.Hierarchical { h with lp = Cap.Finite lp; sp = Cap.Finite sp }

let latencies_of_row (row : Hw_table.row) : Latencies.t =
  {
    fadd = row.fu_latency;
    fmul = row.fu_latency;
    fdiv = Timing.fdiv_latency ~fu_latency:row.fu_latency;
    fsqrt = Timing.fsqrt_latency ~fu_latency:row.fu_latency;
    mem_read = row.mem_latency;
    mem_write = 1;
    move = 1;
    loadr = row.loadr_latency;
    storer = row.loadr_latency;
  }

(** Configuration running at the published Table 5 hardware point. *)
let of_published ?(n_fus = 8) ?(n_mem_ports = 4) (row : Hw_table.row) =
  let rf = rf_of ~notation:row.notation ~lp:row.lp ~sp:row.sp in
  Config.make ~n_fus ~n_mem_ports ~lats:(latencies_of_row row)
    ~cycle_ns:row.clock_ns ~name:row.notation rf

let published notation = of_published (Hw_table.find_exn notation)

(** All 15 configurations of the paper's Table 5/6 evaluation. *)
let table5_configs () = List.map of_published Hw_table.table5

(** Derive a configuration from the analytic technology model. *)
let of_model ?(n_fus = 8) ?(n_mem_ports = 4) rf =
  let draft = Config.make ~n_fus ~n_mem_ports rf in
  let est = Cacti.estimate draft in
  let cycle = Timing.cycle_ns ~access_ns:est.Cacti.local_access_ns in
  let lats =
    Timing.latencies ~access_ns:est.Cacti.local_access_ns
      ~shared_access_ns:est.Cacti.shared_access_ns
  in
  Config.make ~n_fus ~n_mem_ports ~lats ~cycle_ns:cycle rf

(** Static-evaluation configurations (Table 3): unbounded registers,
    either unbounded or §4-bounded bandwidth between banks; baseline
    latencies, clock irrelevant. *)
let static_config ?(n_fus = 8) ?(n_mem_ports = 4) ~bounded_bandwidth
    notation =
  let cap b n = if bounded_bandwidth then Cap.Finite n else b in
  let rf =
    match notation with
    | "Sinf" -> Rf.Monolithic { regs = Cap.Inf; access = None }
    | "1CinfSinf" ->
      Rf.Hierarchical
        { clusters = 1; regs_per_bank = Cap.Inf; shared_regs = Cap.Inf;
          lp = cap Cap.Inf 4; sp = cap Cap.Inf 2; local_access = None;
          shared_access = None; l3 = None }
    | "2Cinf" ->
      Rf.Clustered
        { clusters = 2; regs_per_bank = Cap.Inf; lp = cap Cap.Inf 1;
          sp = cap Cap.Inf 1; buses = Cap.Inf; access = None }
    | "2CinfSinf" ->
      Rf.Hierarchical
        { clusters = 2; regs_per_bank = Cap.Inf; shared_regs = Cap.Inf;
          lp = cap Cap.Inf 3; sp = cap Cap.Inf 1; local_access = None;
          shared_access = None; l3 = None }
    | "4Cinf" ->
      Rf.Clustered
        { clusters = 4; regs_per_bank = Cap.Inf; lp = cap Cap.Inf 1;
          sp = cap Cap.Inf 1; buses = Cap.Inf; access = None }
    | "4CinfSinf" ->
      Rf.Hierarchical
        { clusters = 4; regs_per_bank = Cap.Inf; shared_regs = Cap.Inf;
          lp = cap Cap.Inf 2; sp = cap Cap.Inf 1; local_access = None;
          shared_access = None; l3 = None }
    | "8CinfSinf" ->
      Rf.Hierarchical
        { clusters = 8; regs_per_bank = Cap.Inf; shared_regs = Cap.Inf;
          lp = cap Cap.Inf 1; sp = cap Cap.Inf 1; local_access = None;
          shared_access = None; l3 = None }
    | other -> Fmt.invalid_arg "Presets.static_config: unknown %S" other
  in
  Config.make ~n_fus ~n_mem_ports ~name:notation rf

(** Table 3's configuration list, in paper order. *)
let table3_notations =
  [ "Sinf"; "1CinfSinf"; "2Cinf"; "2CinfSinf"; "4Cinf"; "4CinfSinf";
    "8CinfSinf" ]

(** Figure 1's resource sweep: monolithic unbounded RF with x FUs and y
    memory ports for (x, y) in 4+2 .. 12+6. *)
let figure1_configs () =
  List.map
    (fun (f, m) ->
      Config.make ~n_fus:f ~n_mem_ports:m
        ~name:(Fmt.str "%d+%d" f m)
        (Rf.Monolithic { regs = Cap.Inf; access = None }))
    [ (4, 2); (6, 3); (8, 4); (10, 5); (12, 6) ]

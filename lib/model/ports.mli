(** Per-bank access-port counts for each RF organization.

    Following §3 of the paper: each FU needs 2 read + 1 write ports on
    the bank that feeds it, each memory port needs 1 read (store data)
    + 1 write (load result).  In clustered organizations the per-bank
    [lp] input / [sp] output ports of the communication network are
    write / read ports of the bank; in hierarchical organizations the
    shared bank additionally exposes [lp] read and [sp] write ports per
    cluster. *)

type t = { reads : int; writes : int }

val total : t -> int
val pp : Format.formatter -> t -> unit

(** Ports of one first-level (FU-facing) bank.  An explicit
    [@r..w..] access constraint on the configuration overrides the
    derived provisioning.  Raises [Invalid_argument] when the
    configuration's ports are unbounded. *)
val local_bank : Hcrf_machine.Config.t -> t

(** Ports of the shared second-level bank, when the organization has
    one.  With a third level present, the memory ports move off the
    shared bank onto L3. *)
val shared_bank : Hcrf_machine.Config.t -> t option

(** Ports of the third-level bank, when the organization has one. *)
val l3_bank : Hcrf_machine.Config.t -> t option

(** CACTI-derived access-time and area model for register files.

    The paper uses CACTI 3.0 [32] with tag logic and TLB removed, at a
    0.10 um minimum drawn gate length.  This is a compact analytic
    surrogate with the classic multi-ported-cell structure: every port
    adds a wordline/bitline pair, so the cell side grows linearly with
    the port count and the array delay grows with the square root of the
    array area.  The coefficients are calibrated against the paper's
    published Table 5 points; `test/test_model.ml` checks the surrogate
    stays within tolerance of every published access time. *)

type bank = {
  regs : int;
  bits : int;   (** register width; the paper's FP registers are 64-bit *)
  ports : int;  (** total read + write ports *)
}

(** Raises [Invalid_argument] on non-positive dimensions. *)
val bank : ?bits:int -> regs:int -> ports:int -> unit -> bank

(** Access time in nanoseconds. *)
val access_time_ns : bank -> float

(** Area in lambda^2 (the paper reports 10^6 lambda^2). *)
val area_lambda2 : bank -> float

val area_mlambda2 : bank -> float

(** The banks of a configuration: one local bank per cluster, the
    shared bank when hierarchical, and the third-level bank when
    present. *)
val banks_of_config :
  Hcrf_machine.Config.t -> bank list * bank option * bank option

type estimate = {
  local_access_ns : float;
  shared_access_ns : float option;
  l3_access_ns : float option;
  total_area_mlambda2 : float;
  local_area_mlambda2 : float;  (** one bank *)
  shared_area_mlambda2 : float option;
  l3_area_mlambda2 : float option;
}

(** Full-configuration estimate.  The configuration's cycle time is set
    by the local (FU-facing) bank; the shared bank only determines the
    LoadR/StoreR latency (§3), and a third level only its own transfer
    latency. *)
val estimate : Hcrf_machine.Config.t -> estimate

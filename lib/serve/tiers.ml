open Hcrf_ir
open Hcrf_cache
module Runner = Hcrf_eval.Runner
module Tr = Hcrf_obs.Trace
module Ev = Hcrf_obs.Event
module Tracer = Hcrf_obs.Tracer

(* Plain serving counters, all under one mutex.  They mirror the
   [Serve] trace events; the duplication is deliberate — counters are
   always on (stats must work untraced), traces only when a tracer is
   configured. *)
type counters = {
  mutable requests : int;
  mutable lru_hits : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable tier2_hits : int;
  mutable computed : int;
  mutable coalesced : int;
  mutable rejected : int;
  mutable timeouts : int;
}

type t = {
  lru : (Fingerprint.t, Entry.t) Lru.t;
  memo : Hcrf_eval.Memo.t option;
  cache : Cache.t;
  pool : Pool.t;
  inflight : (Fingerprint.t, Entry.t Pool.future) Hashtbl.t;
  inflight_mutex : Mutex.t;
  tracer : Tracer.t;
  (* guards [c], every [Tracer.commit] and the counter snapshot in
     [stats]: [Counters.counts] reads the sink's table without the
     tracer's commit lock, so snapshots must exclude commits here *)
  obs_mutex : Mutex.t;
  c : counters;
}

let create ?dir ?memo ?lru_capacity ?jobs ?(tracer = Tracer.null) () =
  let lru_capacity =
    match lru_capacity with
    | Some n -> n
    | None -> Hcrf_eval.Env.default_serve_lru
  in
  let jobs =
    match jobs with Some n -> n | None -> Hcrf_eval.Par.default_jobs ()
  in
  {
    lru = Lru.create ~capacity:lru_capacity;
    memo;
    cache = Cache.create ?dir ();
    pool = Pool.create ~jobs;
    inflight = Hashtbl.create 64;
    inflight_mutex = Mutex.create ();
    tracer;
    obs_mutex = Mutex.create ();
    c =
      {
        requests = 0;
        lru_hits = 0;
        memo_hits = 0;
        memo_misses = 0;
        tier2_hits = 0;
        computed = 0;
        coalesced = 0;
        rejected = 0;
        timeouts = 0;
      };
  }

let memo t = t.memo

let cache t = t.cache

let observed t f =
  Mutex.lock t.obs_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.obs_mutex) f

let bump t f = observed t (fun () -> f t.c)
let commit_trace t trace = observed t (fun () -> Tracer.commit t.tracer trace)

let emit trace op = if Tr.enabled trace then Tr.emit trace (Ev.Serve op)

(* The tier-3 computation: the batch runner's exact compute path,
   traced as its own work unit, stored through the shared cache.  Runs
   on a pool domain (or inline during drain). *)
let compute_task t ~key ~scenario ~opts ~config ~loop fut () =
  let result =
    match
      let tr = Tracer.start t.tracer ~label:(Loop.name loop) in
      let entry = Runner.compute_entry ~trace:tr ~scenario ~opts config loop in
      Cache.add ~trace:tr t.cache key entry;
      (* warm the stage memo too, so a post-edit replay of the same
         request is a memo hit even after the LRU evicted it *)
      Option.iter
        (fun m ->
          Hcrf_eval.Memo.add m ~stage:Ev.Sched (Fingerprint.to_hex key)
            (Hcrf_eval.Memo.Entry_v entry))
        t.memo;
      commit_trace t tr;
      entry
    with
    | entry -> Ok entry
    | exception e -> Error e
  in
  Mutex.lock t.inflight_mutex;
  Hashtbl.remove t.inflight key;
  Mutex.unlock t.inflight_mutex;
  Pool.fulfil fut result

let refuse t ~trace ~kind msg =
  emit trace Ev.Reject;
  bump t (fun c -> c.rejected <- c.rejected + 1);
  commit_trace t trace;
  Wire.Refused (kind, msg)

let schedule t (r : Wire.schedule_request) : Wire.response =
  let deadline =
    if r.Wire.sr_timeout_ms > 0 then
      Some (Unix.gettimeofday () +. (float_of_int r.Wire.sr_timeout_ms /. 1e3))
    else None
  in
  match Wire.loop_of_request r with
  | exception Invalid_argument msg ->
    let trace = Tracer.start t.tracer ~label:"serve" in
    emit trace Ev.Request;
    bump t (fun c -> c.requests <- c.requests + 1);
    refuse t ~trace ~kind:Wire.Malformed msg
  | loop -> (
    let trace = Tracer.start t.tracer ~label:(Loop.name loop) in
    emit trace Ev.Request;
    bump t (fun c -> c.requests <- c.requests + 1);
    match Hcrf_machine.Config.validate r.Wire.sr_config with
    | exception Invalid_argument msg ->
      refuse t ~trace ~kind:Wire.Malformed msg
    | config -> (
      let opts = Wire.engine_of_options r.Wire.sr_opts in
      let scenario = r.Wire.sr_scenario in
      let key = Runner.cache_key ~scenario ~opts config loop in
      let compatible = Runner.entry_compatible loop in
      let hit entry =
        commit_trace t trace;
        Wire.Scheduled entry
      in
      match Lru.find t.lru key with
      | Some entry when compatible entry ->
        emit trace Ev.Lru_hit;
        bump t (fun c -> c.lru_hits <- c.lru_hits + 1);
        hit entry
      | Some _ | None -> (
        emit trace Ev.Lru_miss;
        (* the stage memo sits between the LRU and the shared cache: a
           warm daemon answers post-edit replays from it without
           touching the cache shards *)
        let memo_entry =
          match t.memo with
          | None -> None
          | Some m -> (
            let t0 = int_of_float (Unix.gettimeofday () *. 1e9) in
            let ns () =
              int_of_float (Unix.gettimeofday () *. 1e9) - t0
            in
            match
              Hcrf_eval.Memo.find m ~stage:Ev.Sched (Fingerprint.to_hex key)
            with
            | Some (Hcrf_eval.Memo.Entry_v e) when compatible e ->
              if Tr.enabled trace then
                Tr.emit trace
                  (Ev.Incr
                     { stage = Ev.Sched; op = Ev.Stage_hit; ns = ns () });
              bump t (fun c -> c.memo_hits <- c.memo_hits + 1);
              Some e
            | Some _ | None ->
              if Tr.enabled trace then
                Tr.emit trace
                  (Ev.Incr
                     { stage = Ev.Sched; op = Ev.Stage_miss; ns = ns () });
              bump t (fun c -> c.memo_misses <- c.memo_misses + 1);
              None)
        in
        match memo_entry with
        | Some entry ->
          Lru.add t.lru key entry;
          hit entry
        | None -> (
        match Cache.find ~trace ~validate:compatible t.cache key with
        | Some entry ->
          emit trace Ev.Disk_hit;
          bump t (fun c -> c.tier2_hits <- c.tier2_hits + 1);
          Lru.add t.lru key entry;
          hit entry
        | None -> (
          (* tier 3: register the future under the fingerprint before
             anything runs, so a racing duplicate joins it *)
          Mutex.lock t.inflight_mutex;
          let fut, owner =
            match Hashtbl.find_opt t.inflight key with
            | Some fut -> (fut, false)
            | None ->
              let fut = Pool.promise () in
              Hashtbl.replace t.inflight key fut;
              (fut, true)
          in
          Mutex.unlock t.inflight_mutex;
          if owner then begin
            emit trace Ev.Computed;
            bump t (fun c -> c.computed <- c.computed + 1);
            let task =
              compute_task t ~key ~scenario ~opts ~config ~loop fut
            in
            (* a drained pool refuses thunks: compute inline so the
               last in-flight requests still complete *)
            if not (Pool.run t.pool task) then task ()
          end
          else begin
            emit trace Ev.Coalesced;
            bump t (fun c -> c.coalesced <- c.coalesced + 1)
          end;
          match Pool.await ?deadline fut with
          | `Ok entry ->
            Lru.add t.lru key entry;
            hit entry
          | `Timeout ->
            emit trace Ev.Timeout;
            bump t (fun c -> c.timeouts <- c.timeouts + 1);
            commit_trace t trace;
            Wire.Refused
              ( Wire.Timed_out,
                Fmt.str "deadline of %d ms expired" r.Wire.sr_timeout_ms )
          | `Exn e ->
            refuse t ~trace ~kind:Wire.Internal (Printexc.to_string e))))))

let reject t ~kind msg =
  let trace = Tracer.start t.tracer ~label:"serve" in
  refuse t ~trace ~kind msg

let stats t : Wire.serve_stats =
  let ls = Lru.stats t.lru in
  observed t (fun () ->
      {
        Wire.requests = t.c.requests;
        lru_hits = t.c.lru_hits;
        lru_evictions = ls.Lru.evictions;
        lru_length = ls.Lru.length;
        lru_capacity = ls.Lru.capacity;
        tier2_hits = t.c.tier2_hits;
        memo_hits = t.c.memo_hits;
        memo_misses = t.c.memo_misses;
        computed = t.c.computed;
        coalesced = t.c.coalesced;
        rejected = t.c.rejected;
        timeouts = t.c.timeouts;
        cache = Cache.stats t.cache;
        counters =
          (match Tracer.counters t.tracer with
          | Some counters -> Hcrf_obs.Counters.counts counters
          | None -> []);
      })

let shutdown t = Pool.shutdown t.pool

(** The serving loop: a unix-domain/TCP listener in front of
    {!Tiers}, one handler thread per connection.

    Robustness contract:
    - a malformed, truncated, oversized or checksum-failing frame gets
      a [Refused] reply (when the connection can still carry one) and
      closes only {e that} connection — the daemon survives;
    - a handler thread never lets an exception escape (a dying client
      mid-write is its own problem);
    - {!request_stop} (or SIGTERM/SIGINT via
      {!install_signal_handlers}) drains gracefully: the listener
      closes immediately, connections finish the request they are
      serving, idle connections are closed at the next poll tick, and
      the worker pool is joined before {!run} returns.

    The accept and read loops poll with a short [select] timeout
    instead of blocking forever, so the stop flag is honoured within a
    fraction of a second without signal/IO races. *)

type t

(** Bind and listen (for a unix socket, a stale socket file is
    replaced).  Raises [Unix.Unix_error] when the address cannot be
    bound. *)
val create : ?max_frame:int -> addr:Wire.addr -> Tiers.t -> t

val addr : t -> Wire.addr
val tiers : t -> Tiers.t

(** Flip the stop flag: {!run} drains and returns.  Safe from any
    thread or signal handler. *)
val request_stop : t -> unit

(** SIGTERM/SIGINT request a stop; SIGPIPE is ignored (dead clients
    surface as [EPIPE] in their own handler). *)
val install_signal_handlers : t -> unit

(** Serve until stopped, then drain; closes the listener.  Call once. *)
val run : t -> unit

(** [run] on a background thread (join it to wait for the drain). *)
val spawn : t -> Thread.t

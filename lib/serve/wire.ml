open Hcrf_ir

(* ------------------------------------------------------------------ *)
(* Addresses *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port when port > 0 && port < 0x10000 ->
      Tcp (String.sub s 0 i, port)
    | Some _ | None -> Unix_sock s)
  | Some _ | None -> Unix_sock s

let pp_addr ppf = function
  | Unix_sock p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "%s:%d" h p

(* ------------------------------------------------------------------ *)
(* Messages *)

type options = {
  w_budget_ratio : int;
  w_max_ii : int option;
  w_backtracking : bool;
  w_ordering : [ `Hrms | `Topological ];
}

let options_of_engine (o : Hcrf_sched.Engine.options) =
  {
    w_budget_ratio = o.Hcrf_sched.Engine.budget_ratio;
    w_max_ii = o.Hcrf_sched.Engine.max_ii;
    w_backtracking = o.Hcrf_sched.Engine.backtracking;
    w_ordering = o.Hcrf_sched.Engine.ordering;
  }

let engine_of_options (o : options) =
  {
    Hcrf_sched.Engine.default_options with
    Hcrf_sched.Engine.budget_ratio = o.w_budget_ratio;
    max_ii = o.w_max_ii;
    backtracking = o.w_backtracking;
    ordering = o.w_ordering;
  }

type schedule_request = {
  sr_ddg : Ddg.repr;
  sr_trip : int;
  sr_entries : int;
  sr_streams : (int * int * int) list;
  sr_config : Hcrf_machine.Config.t;
  sr_opts : options;
  sr_scenario : Hcrf_eval.Runner.memory_scenario;
  sr_timeout_ms : int;
}

let request_of_loop ?(timeout_ms = 0) ~config ~opts ~scenario (l : Loop.t) =
  {
    sr_ddg = Ddg.to_repr l.Loop.ddg;
    sr_trip = l.Loop.trip_count;
    sr_entries = l.Loop.entries;
    sr_streams =
      List.map
        (fun (s : Loop.stream) -> (s.Loop.op, s.Loop.base, s.Loop.stride))
        l.Loop.streams;
    sr_config = config;
    sr_opts = options_of_engine opts;
    sr_scenario = scenario;
    sr_timeout_ms = timeout_ms;
  }

let loop_of_request r =
  Loop.make ~trip_count:r.sr_trip ~entries:r.sr_entries
    ~streams:
      (List.map
         (fun (op, base, stride) -> { Loop.op; base; stride })
         r.sr_streams)
    (Ddg.of_repr r.sr_ddg)

type request = Schedule of schedule_request | Stats | Ping

type serve_stats = {
  requests : int;
  lru_hits : int;
  lru_evictions : int;
  lru_length : int;
  lru_capacity : int;
  tier2_hits : int;
  memo_hits : int;
  memo_misses : int;
  computed : int;
  coalesced : int;
  rejected : int;
  timeouts : int;
  cache : Hcrf_cache.Cache.stats;
  counters : (string * int) list;
}

(* Sorted [k=v] keys like the cache and counter printers, so scripts
   can grep one stable shape. *)
let pp_serve_stats ppf s =
  Fmt.pf ppf
    "coalesced=%d computed=%d lru_capacity=%d lru_evictions=%d \
     lru_hits=%d lru_length=%d memo_hits=%d memo_misses=%d rejected=%d \
     requests=%d tier2_hits=%d timeouts=%d"
    s.coalesced s.computed s.lru_capacity s.lru_evictions s.lru_hits
    s.lru_length s.memo_hits s.memo_misses s.rejected s.requests
    s.tier2_hits s.timeouts

type error_kind = Malformed | Too_big | Timed_out | Draining | Internal

let error_kind_name = function
  | Malformed -> "malformed"
  | Too_big -> "too-big"
  | Timed_out -> "timed-out"
  | Draining -> "draining"
  | Internal -> "internal"

type response =
  | Scheduled of Hcrf_cache.Entry.t
  | Stats_reply of serve_stats
  | Pong
  | Refused of error_kind * string

(* ------------------------------------------------------------------ *)
(* Framing *)

type frame_error =
  | Bad_magic
  | Too_large of int
  | Truncated
  | Bad_checksum
  | Bad_payload of string

let pp_frame_error ppf = function
  | Bad_magic -> Fmt.string ppf "bad magic"
  | Too_large n -> Fmt.pf ppf "frame too large (%d bytes)" n
  | Truncated -> Fmt.string ppf "truncated frame"
  | Bad_checksum -> Fmt.string ppf "checksum mismatch"
  | Bad_payload msg -> Fmt.pf ppf "bad payload (%s)" msg

let magic = "hcrfsrv1"
let header_size = String.length magic + 4 + 16
let default_max_frame = 16 * 1024 * 1024

let frame payload =
  let n = String.length payload in
  let b = Buffer.create (header_size + n) in
  Buffer.add_string b magic;
  let len = Bytes.create 4 in
  Bytes.set_int32_be len 0 (Int32.of_int n);
  Buffer.add_bytes b len;
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Header fields of a (partial) frame: claimed payload length and
   checksum.  Shared by [unframe] and the incremental socket reader. *)
let parse_header ~max_frame h =
  if String.length h < header_size then Error Truncated
  else if not (String.equal (String.sub h 0 (String.length magic)) magic)
  then Error Bad_magic
  else
    let len = Int32.to_int (String.get_int32_be h (String.length magic)) in
    if len < 0 || len > max_frame then Error (Too_large len)
    else Ok (len, String.sub h (String.length magic + 4) 16)

let unframe ?(max_frame = default_max_frame) s =
  match parse_header ~max_frame s with
  | Error _ as e -> e
  | Ok (len, sum) ->
    if String.length s <> header_size + len then Error Truncated
    else
      let payload = String.sub s header_size len in
      if not (String.equal (Digest.string payload) sum) then
        Error Bad_checksum
      else Ok payload

(* One-byte message-kind tag ahead of the marshalled bytes: together
   with the checksum it guarantees the unmarshaller only ever reads
   bytes a same-build encoder of the *same message type* produced. *)
let tag_request = 'Q'
let tag_response = 'R'

let encode tag v = frame (String.make 1 tag ^ Marshal.to_string v [])

let decode tag payload =
  if String.length payload < 1 || not (Char.equal payload.[0] tag) then
    Error (Bad_payload "wrong message kind")
  else
    match Marshal.from_string payload 1 with
    | v -> Ok v
    | exception e -> Error (Bad_payload (Printexc.to_string e))

let encode_request (r : request) = encode tag_request r
let encode_response (r : response) = encode tag_response r

let decode_request payload : (request, frame_error) result =
  decode tag_request payload

let decode_response payload : (response, frame_error) result =
  decode tag_response payload

(* ------------------------------------------------------------------ *)
(* Socket helpers *)

(* Bytes actually read (may stop short at EOF); retries EINTR. *)
let rec really_read fd buf off len =
  if len = 0 then off
  else
    match Unix.read fd buf off len with
    | 0 -> off
    | n -> really_read fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      really_read fd buf off len

type read_outcome = Frame of string | Eof | Bad of frame_error

let read_frame ?(max_frame = default_max_frame) fd =
  let hdr = Bytes.create header_size in
  match really_read fd hdr 0 header_size with
  | 0 -> Eof
  | n when n < header_size -> Bad Truncated
  | _ -> (
    match parse_header ~max_frame (Bytes.to_string hdr) with
    | Error e -> Bad e
    | Ok (len, sum) ->
      let payload = Bytes.create len in
      if really_read fd payload 0 len < len then Bad Truncated
      else
        let payload = Bytes.to_string payload in
        if not (String.equal (Digest.string payload) sum) then
          Bad Bad_checksum
        else Frame payload)

let write fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

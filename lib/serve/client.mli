(** Blocking client for the daemon's wire protocol: one connection,
    one request/response at a time.  Used by the [serve-bench]
    subcommand, the smoke script and the tests; errors come back as
    [Error msg], never exceptions. *)

type t

val connect : ?max_frame:int -> Wire.addr -> (t, string) result
val close : t -> unit

(** One request/response roundtrip. *)
val request : t -> Wire.request -> (Wire.response, string) result

(** [Schedule] roundtrip for a loop. *)
val schedule :
  t -> ?timeout_ms:int -> config:Hcrf_machine.Config.t ->
  opts:Hcrf_sched.Engine.options ->
  scenario:Hcrf_eval.Runner.memory_scenario -> Hcrf_ir.Loop.t ->
  (Wire.response, string) result

val stats : t -> (Wire.serve_stats, string) result
val ping : t -> (unit, string) result

(** Write raw bytes (deliberately broken frames, for the robustness
    tests) and read whatever single reply the server sends. *)
val send_raw : t -> string -> (Wire.response, string) result

(** Capacity-bounded LRU map: the daemon's first answer tier, a small
    hot set in front of the sharded {!Hcrf_cache.Cache}.

    Constant-time lookup and insertion (hash table into an intrusive
    doubly-linked recency list); one internal mutex, so a single [t] is
    safe to share between connection-handler threads and pool domains.
    Hit/miss/eviction counters are kept under the same lock and
    surfaced by the daemon's [Stats] reply. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

(** Raises [Invalid_argument] when [capacity < 1]. *)
val create : capacity:int -> ('k, 'v) t

(** [find t k] returns the binding and promotes it to most recently
    used. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Insert or replace (either way the binding becomes most recently
    used); beyond capacity the least recently used binding is
    evicted. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

val length : ('k, 'v) t -> int
val stats : ('k, 'v) t -> stats

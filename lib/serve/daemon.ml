type t = {
  tiers_ : Tiers.t;
  addr_ : Wire.addr;
  max_frame : int;
  listen_fd : Unix.file_descr;
  stop_flag : bool Atomic.t;
  (* live connection count, for the drain barrier *)
  conn_mutex : Mutex.t;
  conn_done : Condition.t;
  mutable active : int;
}

let addr t = t.addr_
let tiers t = t.tiers_

let bind_listen addr =
  match addr with
  | Wire.Unix_sock path ->
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Wire.Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (ip, port));
    Unix.listen fd 64;
    fd

let create ?(max_frame = Wire.default_max_frame) ~addr tiers =
  {
    tiers_ = tiers;
    addr_ = addr;
    max_frame;
    listen_fd = bind_listen addr;
    stop_flag = Atomic.make false;
    conn_mutex = Mutex.create ();
    conn_done = Condition.create ();
    active = 0;
  }

let request_stop t = Atomic.set t.stop_flag true

let install_signal_handlers t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigterm stop;
  Sys.set_signal Sys.sigint stop

(* select, treating EINTR as "nothing ready" *)
let readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let reply fd framed = try Wire.write fd framed with Unix.Unix_error _ -> ()

(* One connection: a sequence of frames until EOF, a framing error or
   the drain.  Returns (closing the socket is the caller's job). *)
let handle t fd =
  let rec session () =
    if Atomic.get t.stop_flag then ()
    else if not (readable fd 0.25) then session ()
    else
      match Wire.read_frame ~max_frame:t.max_frame fd with
      | Wire.Eof -> ()
      | Wire.Bad e ->
        (* the stream is desynchronized: answer (best-effort) and
           close this connection — only this connection *)
        let kind =
          match e with
          | Wire.Too_large _ -> Wire.Too_big
          | Wire.Bad_magic | Wire.Truncated | Wire.Bad_checksum
          | Wire.Bad_payload _ ->
            Wire.Malformed
        in
        let resp =
          Tiers.reject t.tiers_ ~kind (Fmt.str "%a" Wire.pp_frame_error e)
        in
        reply fd (Wire.encode_response resp)
      | Wire.Frame payload ->
        let resp =
          match Wire.decode_request payload with
          | Error e ->
            Tiers.reject t.tiers_ ~kind:Wire.Malformed
              (Fmt.str "%a" Wire.pp_frame_error e)
          | Ok Wire.Ping -> Wire.Pong
          | Ok Wire.Stats -> Wire.Stats_reply (Tiers.stats t.tiers_)
          | Ok (Wire.Schedule r) -> Tiers.schedule t.tiers_ r
        in
        reply fd (Wire.encode_response resp);
        session ()
  in
  try session () with
  | Unix.Unix_error _ -> ()
  | Sys_error _ -> ()

let spawn_handler t fd =
  Mutex.lock t.conn_mutex;
  t.active <- t.active + 1;
  Mutex.unlock t.conn_mutex;
  ignore
    (Thread.create
       (fun () ->
         Fun.protect
           ~finally:(fun () ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             Mutex.lock t.conn_mutex;
             t.active <- t.active - 1;
             Condition.broadcast t.conn_done;
             Mutex.unlock t.conn_mutex)
           (fun () -> handle t fd))
       ())

let run t =
  while not (Atomic.get t.stop_flag) do
    if readable t.listen_fd 0.25 then
      match Unix.accept t.listen_fd with
      | fd, _ -> spawn_handler t fd
      | exception
          Unix.Unix_error
            ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
              | Unix.ECONNABORTED ),
              _, _ ) ->
        ()
  done;
  (* drain: no new connections, finish the live ones, join the pool *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.addr_ with
  | Wire.Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Wire.Tcp _ -> ());
  Mutex.lock t.conn_mutex;
  while t.active > 0 do
    Condition.wait t.conn_done t.conn_mutex
  done;
  Mutex.unlock t.conn_mutex;
  Tiers.shutdown t.tiers_

let spawn t = Thread.create run t

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.value)

let add t k v =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some n ->
        n.value <- v;
        unlink t n;
        push_front t n
      | None ->
        let n = { key = k; value = v; prev = None; next = None } in
        Hashtbl.replace t.table k n;
        push_front t n;
        if Hashtbl.length t.table > t.capacity then
          match t.tail with
          | None -> assert false (* capacity >= 1: list is non-empty *)
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key;
            t.evictions <- t.evictions + 1)

let length t = locked t (fun () -> Hashtbl.length t.table)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        length = Hashtbl.length t.table;
        capacity = t.capacity;
      })

type t = {
  q : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  n_jobs : int;
}

let rec worker pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.q && not pool.closed do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.q then Mutex.unlock pool.mutex (* closed: drain done *)
  else begin
    let job = Queue.pop pool.q in
    Mutex.unlock pool.mutex;
    (try job () with _ -> () (* jobs report errors via their future *));
    worker pool
  end

let create ~jobs =
  let n_jobs = max 1 jobs in
  let pool =
    {
      q = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [];
      n_jobs;
    }
  in
  pool.workers <- List.init n_jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let jobs t = t.n_jobs

let run t job =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    false
  end
  else begin
    Queue.push job t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex;
    true
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

(* ------------------------------------------------------------------ *)
(* Futures *)

type 'a state = Pending | Done of 'a | Raised of exn

type 'a future = {
  fmutex : Mutex.t;
  fdone : Condition.t;
  mutable state : 'a state;
}

let promise () =
  { fmutex = Mutex.create (); fdone = Condition.create (); state = Pending }

let fulfil fut r =
  Mutex.lock fut.fmutex;
  (match fut.state with
  | Pending -> ()
  | Done _ | Raised _ ->
    Mutex.unlock fut.fmutex;
    invalid_arg "Pool.fulfil: already fulfilled");
  fut.state <- (match r with Ok v -> Done v | Error e -> Raised e);
  Condition.broadcast fut.fdone;
  Mutex.unlock fut.fmutex

let await ?deadline fut =
  match deadline with
  | None ->
    Mutex.lock fut.fmutex;
    let rec wait () =
      match fut.state with
      | Pending ->
        Condition.wait fut.fdone fut.fmutex;
        wait ()
      | Done v -> `Ok v
      | Raised e -> `Exn e
    in
    let r = wait () in
    Mutex.unlock fut.fmutex;
    r
  | Some dl ->
    (* no timed condition wait in the stdlib: poll at a period far
       below the granularity of scheduling work *)
    let rec poll () =
      Mutex.lock fut.fmutex;
      let s = fut.state in
      Mutex.unlock fut.fmutex;
      match s with
      | Done v -> `Ok v
      | Raised e -> `Exn e
      | Pending ->
        if Unix.gettimeofday () >= dl then `Timeout
        else begin
          Thread.delay 0.002;
          poll ()
        end
    in
    poll ()

type t = { fd : Unix.file_descr; max_frame : int }

let connect ?(max_frame = Wire.default_max_frame) addr =
  let sock, sockaddr =
    match addr with
    | Wire.Unix_sock path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Wire.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback)
      in
      (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (ip, port))
  in
  match Unix.connect sock sockaddr with
  | () -> Ok { fd = sock; max_frame }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error
      (Fmt.str "cannot connect to %a: %s" Wire.pp_addr addr
         (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let read_reply t =
  match Wire.read_frame ~max_frame:t.max_frame t.fd with
  | Wire.Frame payload -> (
    match Wire.decode_response payload with
    | Ok r -> Ok r
    | Error e -> Error (Fmt.str "bad reply: %a" Wire.pp_frame_error e))
  | Wire.Eof -> Error "connection closed by server"
  | Wire.Bad e -> Error (Fmt.str "bad reply frame: %a" Wire.pp_frame_error e)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let request t req =
  match Wire.write t.fd (Wire.encode_request req) with
  | () -> read_reply t
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let schedule t ?timeout_ms ~config ~opts ~scenario loop =
  request t
    (Wire.Schedule
       (Wire.request_of_loop ?timeout_ms ~config ~opts ~scenario loop))

let stats t =
  match request t Wire.Stats with
  | Ok (Wire.Stats_reply s) -> Ok s
  | Ok _ -> Error "unexpected reply to Stats"
  | Error _ as e -> e

let ping t =
  match request t Wire.Ping with
  | Ok Wire.Pong -> Ok ()
  | Ok _ -> Error "unexpected reply to Ping"
  | Error _ as e -> e

let send_raw t bytes =
  match Wire.write t.fd bytes with
  | () -> read_reply t
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

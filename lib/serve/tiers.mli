(** The daemon's tiered answer path.

    A schedule request is answered by the first tier that has it:

    + a capacity-bounded in-memory {!Lru} of hot entries;
    + the shared {!Hcrf_cache.Cache} — per-shard in-memory tables in
      front of the sharded on-disk store;
    + the scheduling engine, on a persistent {!Pool} of worker domains.

    Every tier-3 computation is registered under its fingerprint while
    in flight, so a cold storm of identical requests coalesces onto one
    engine run — the duplicates block on the same future and all
    receive the same entry (byte-identical responses).  Computations
    run {!Hcrf_eval.Runner.compute_entry}, the exact compute path of
    the batch runner, and their results are stored through the same
    cache, so a daemon answer can never differ from a local run.

    Request deadlines ([sr_timeout_ms]) bound only the caller's wait:
    an expired computation keeps running and still lands in the cache
    (the next request for it is a hit).

    Observability: every tier decision emits a [Serve] event into a
    per-request trace committed to the tracer, and is mirrored in
    plain counters surfaced by {!stats}. *)

type t

(** [create ()] builds the tiers: [dir] backs tier 2 with the sharded
    on-disk store, [memo] inserts the incremental stage memo between
    the LRU and the cache (fresh computations are stored into it too,
    so a warm daemon answers post-edit replays from the memo),
    [lru_capacity] bounds tier 1 (default
    {!Hcrf_eval.Env.default_serve_lru}), [jobs] sizes the domain pool
    (default {!Hcrf_eval.Par.default_jobs}), [tracer] receives
    per-request and per-computation traces. *)
val create :
  ?dir:string -> ?memo:Hcrf_eval.Memo.t -> ?lru_capacity:int -> ?jobs:int ->
  ?tracer:Hcrf_obs.Tracer.t -> unit -> t

val cache : t -> Hcrf_cache.Cache.t

(** The stage memo the tiers consult, when one was configured. *)
val memo : t -> Hcrf_eval.Memo.t option

(** Answer one schedule request ([Scheduled] or [Refused]). *)
val schedule : t -> Wire.schedule_request -> Wire.response

(** Count and trace a refused request (malformed frame, oversized
    frame, ...) and build its response. *)
val reject : t -> kind:Wire.error_kind -> string -> Wire.response

(** Live counters of all tiers. *)
val stats : t -> Wire.serve_stats

(** Finish in-flight computations and join the worker domains.
    Idempotent; [schedule] afterwards computes inline (used by the
    daemon's drain). *)
val shutdown : t -> unit

(** A persistent pool of worker domains for the daemon's cache misses.

    {!Hcrf_eval.Par} spawns domains per [map] call — right for batch
    runs, wasteful for a long-lived server handling a stream of
    single-loop requests.  This pool spawns its domains once; connection
    handlers enqueue thunks and block on {!await}, optionally with a
    deadline (OCaml's [Condition] has no timed wait, so deadline waits
    poll the future at a few-millisecond period — far below the
    milliseconds-to-seconds granularity of scheduling work).

    Futures ({!promise}/{!fulfil}) are exposed separately from
    {!run} so the cold-storm coalescer can register a future under its
    fingerprint {e before} the computation is enqueued — a duplicate
    request arriving in between joins the future instead of starting a
    second computation. *)

type t

(** [create ~jobs] spawns [max 1 jobs] worker domains. *)
val create : jobs:int -> t

val jobs : t -> int

(** Enqueue a thunk; [false] when the pool is shut down (the thunk was
    not enqueued — callers run it inline or refuse). *)
val run : t -> (unit -> unit) -> bool

(** Finish queued thunks, then join every worker.  Idempotent. *)
val shutdown : t -> unit

(** {1 Futures} *)

type 'a future

val promise : unit -> 'a future

(** Raises [Invalid_argument] when already fulfilled. *)
val fulfil : 'a future -> ('a, exn) result -> unit

(** Block until fulfilled, or until [deadline] (absolute, as by
    [Unix.gettimeofday]) passes. *)
val await :
  ?deadline:float -> 'a future -> [ `Ok of 'a | `Exn of exn | `Timeout ]

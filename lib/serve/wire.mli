(** The daemon's wire protocol: a small length-prefixed binary framing
    plus the request/response messages it carries.

    A frame is [magic "hcrfsrv1" | u32 BE payload length | 16-byte MD5
    of the payload | payload]; the payload is a one-byte message-kind
    tag followed by a [Marshal]-serialized message.  Mirroring the
    on-disk {!Hcrf_cache.Store} format, the unmarshaller only ever runs
    on bytes whose magic, length, kind tag and checksum all matched —
    a truncated, corrupt, oversized or garbage frame is reported as a
    {!frame_error}, never an exception, and never reaches [Marshal].

    [Marshal] payloads tie client and server to the same build, which
    is the intended deployment (one daemon per checkout, sharing its
    schedule cache); the versioned magic rejects frames from any other
    protocol revision.  Requests carry only closure-free data: notably
    {!options} is the plain subset of {!Hcrf_sched.Engine.options}
    without [load_override], which the runner derives from the memory
    scenario anyway (it is not part of cache keys either). *)

(** {1 Addresses} *)

type addr =
  | Unix_sock of string  (** unix-domain socket path *)
  | Tcp of string * int  (** host, port *)

(** ["host:port"] when the suffix parses as a port, a unix-domain
    socket path otherwise. *)
val addr_of_string : string -> addr

val pp_addr : Format.formatter -> addr -> unit

(** {1 Messages} *)

(** Closure-free subset of {!Hcrf_sched.Engine.options}. *)
type options = {
  w_budget_ratio : int;
  w_max_ii : int option;
  w_backtracking : bool;
  w_ordering : [ `Hrms | `Topological ];
}

val options_of_engine : Hcrf_sched.Engine.options -> options

(** The missing [load_override] is taken from
    {!Hcrf_sched.Engine.default_options}; the runner replaces it from
    the scenario before scheduling, so nothing observable depends on
    it. *)
val engine_of_options : options -> Hcrf_sched.Engine.options

type schedule_request = {
  sr_ddg : Hcrf_ir.Ddg.repr;
  sr_trip : int;
  sr_entries : int;
  sr_streams : (int * int * int) list;  (** op, base, stride *)
  sr_config : Hcrf_machine.Config.t;
  sr_opts : options;
  sr_scenario : Hcrf_eval.Runner.memory_scenario;
  sr_timeout_ms : int;  (** 0: no deadline *)
}

(** Package a loop (with its evaluation context) as a request. *)
val request_of_loop :
  ?timeout_ms:int -> config:Hcrf_machine.Config.t ->
  opts:Hcrf_sched.Engine.options ->
  scenario:Hcrf_eval.Runner.memory_scenario -> Hcrf_ir.Loop.t ->
  schedule_request

(** Rebuild the loop; raises [Invalid_argument] on non-positive counts
    (callers reject such requests as malformed). *)
val loop_of_request : schedule_request -> Hcrf_ir.Loop.t

type request = Schedule of schedule_request | Stats | Ping

(** Live counters of a daemon, as returned by a [Stats] request. *)
type serve_stats = {
  requests : int;      (** schedule requests accepted *)
  lru_hits : int;      (** answered from the in-memory LRU tier *)
  lru_evictions : int;
  lru_length : int;
  lru_capacity : int;
  tier2_hits : int;    (** answered from the shared cache (memory/disk) *)
  memo_hits : int;     (** answered from the incremental stage memo *)
  memo_misses : int;   (** stage-memo lookups that missed (0 without a memo) *)
  computed : int;      (** engine computations started *)
  coalesced : int;     (** requests that joined an in-flight computation *)
  rejected : int;      (** malformed frames/requests refused *)
  timeouts : int;      (** requests whose deadline expired *)
  cache : Hcrf_cache.Cache.stats;
  counters : (string * int) list;
      (** {!Hcrf_obs.Counters.counts} snapshot of the daemon tracer *)
}

val pp_serve_stats : Format.formatter -> serve_stats -> unit

type error_kind = Malformed | Too_big | Timed_out | Draining | Internal

val error_kind_name : error_kind -> string

type response =
  | Scheduled of Hcrf_cache.Entry.t
  | Stats_reply of serve_stats
  | Pong
  | Refused of error_kind * string

(** {1 Framing} *)

type frame_error =
  | Bad_magic
  | Too_large of int  (** claimed payload length *)
  | Truncated
  | Bad_checksum
  | Bad_payload of string

val pp_frame_error : Format.formatter -> frame_error -> unit

val header_size : int
val default_max_frame : int

(** Wrap a payload into a complete frame. *)
val frame : string -> string

(** Split a complete frame back into its payload (pure inverse of
    {!frame}; exposed for property tests). *)
val unframe : ?max_frame:int -> string -> (string, frame_error) result

val encode_request : request -> string
val encode_response : response -> string
val decode_request : string -> (request, frame_error) result
val decode_response : string -> (response, frame_error) result

(** {1 Socket helpers} *)

type read_outcome = Frame of string | Eof | Bad of frame_error

(** Read exactly one frame; [Eof] only at a clean frame boundary,
    [Bad Truncated] when the peer died mid-frame.  On a [Bad] outcome
    the stream position is unspecified — close the connection. *)
val read_frame : ?max_frame:int -> Unix.file_descr -> read_outcome

(** Write a fully-framed string (e.g. {!encode_response} output). *)
val write : Unix.file_descr -> string -> unit

(** Partial (and, eventually, complete) modulo schedules.

    An entry assigns a node an issue cycle (in the flat, non-modulo time
    axis — stage count falls out of the maximum cycle) and an execution
    location.  The reservation table is kept in sync by [place]/[unplace].

    [estart]/[lstart] are the classic windows derived from the *scheduled*
    neighbours: a node may issue at cycle c only if
    c >= cycle(p) + latency(e) - II * distance(e) for scheduled
    predecessors p, and symmetrically for scheduled successors.

    Storage is flat: per-node int columns indexed by node id (cycle with
    a [min_int] sentinel, encoded location, encoded definition bank), a
    per-bank count of scheduled definitions (O(1) bank-fill queries for
    cluster selection), and a cache of precompiled reservation vectors
    keyed by (op kind, location, Move source bank) so the engine's
    candidate scan probes the reservation table without building a
    [uses] list per cycle. *)

open Hcrf_ir
open Hcrf_machine

type entry = { cycle : int; loc : Topology.loc }

type t = {
  config : Config.t;
  ii : int;
  lat : Latency.t;
  mrt : Mrt.t;
  nclusters : int;
  mutable e_cycle : int array;  (* id -> issue cycle; min_int = unscheduled *)
  mutable e_loc : int array;    (* id -> location code (-1 Global, i cluster) *)
  mutable e_bank : int array;   (* id -> def-bank index, -1 when none *)
  mutable cap : int;            (* length of the entry columns *)
  mutable nsched : int;
  bank_defs : int array;        (* bank index -> scheduled defs there *)
  ucache : (int, Mrt.cuses) Hashtbl.t;
  arena : Arena.t option;
}

let unscheduled = min_int

(* Arena slot ids for the entry columns (see {!Arena}). *)
let slot_cycle = 7
let slot_loc = 8
let slot_bank = 9

let loc_code = function Topology.Global -> -1 | Topology.Cluster i -> i
let loc_decode = function -1 -> Topology.Global | i -> Topology.Cluster i

(* Bank index: Local i -> i, Shared -> #clusters, L3 -> #clusters + 1;
   -1 encodes "no bank". *)
let bank_index t = function
  | Topology.Local i -> i
  | Topology.Shared -> t.nclusters
  | Topology.L3 -> t.nclusters + 1

let create ?arena ?(lat : Latency.t option) (config : Config.t) ~ii =
  let lat = match lat with Some l -> l | None -> Latency.make config in
  let nclusters = Config.clusters config in
  let cap = 256 in
  let e_cycle, e_loc, e_bank =
    match arena with
    | Some a ->
      ( Arena.ints a ~id:slot_cycle ~fill:unscheduled cap,
        Arena.ints a ~id:slot_loc ~fill:(-1) cap,
        Arena.ints a ~id:slot_bank ~fill:(-1) cap )
    | None ->
      (Array.make cap unscheduled, Array.make cap (-1), Array.make cap (-1))
  in
  { config; ii; lat; mrt = Mrt.create ?arena config ~ii; nclusters;
    e_cycle; e_loc; e_bank; cap; nsched = 0;
    bank_defs = Array.make (nclusters + 2) 0;
    ucache = Hashtbl.create 64; arena }

let grow t id =
  let cap' = max (2 * t.cap) (id + 1) in
  let extend a fill slot =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.cap;
    (match t.arena with
    | Some ar -> Arena.keep_ints ar ~id:slot a'
    | None -> ());
    a'
  in
  t.e_cycle <- extend t.e_cycle unscheduled slot_cycle;
  t.e_loc <- extend t.e_loc (-1) slot_loc;
  t.e_bank <- extend t.e_bank (-1) slot_bank;
  t.cap <- cap'

let ii t = t.ii
let is_scheduled t v = v < t.cap && v >= 0 && t.e_cycle.(v) <> unscheduled

let entry t v =
  if is_scheduled t v then
    Some { cycle = t.e_cycle.(v); loc = loc_decode t.e_loc.(v) }
  else None

let entry_exn t v =
  match entry t v with
  | Some e -> e
  | None -> Fmt.invalid_arg "Schedule: node %d not scheduled" v

let cycle_of t v = (entry_exn t v).cycle
let loc_of t v = (entry_exn t v).loc

let scheduled_nodes t =
  let acc = ref [] in
  for v = t.cap - 1 downto 0 do
    if t.e_cycle.(v) <> unscheduled then acc := v :: !acc
  done;
  !acc

let num_scheduled t = t.nsched

(** Bank holding the value defined by scheduled node [v], if any. *)
let def_bank t (_g : Ddg.t) v =
  if not (is_scheduled t v) then None
  else
    match t.e_bank.(v) with
    | -1 -> None
    | i when i = t.nclusters -> Some Topology.Shared
    | i when i = t.nclusters + 1 -> Some Topology.L3
    | i -> Some (Topology.Local i)

(** Scheduled definitions currently living in [bank] (for the cluster
    selection and down-copy heuristics). *)
let bank_def_count t bank = t.bank_defs.(bank_index t bank)

(* Source bank for a [Move]'s reservation: the bank of its producer. *)
let move_src_bank t (g : Ddg.t) v =
  let operands = Ddg.operands g v in
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      match acc with Some _ -> acc | None -> def_bank t g e.src)
    None operands

let uses_of t (g : Ddg.t) v ~loc =
  let kind = Ddg.kind g v in
  let src =
    match kind with Op.Move -> move_src_bank t g v | _ -> None
  in
  Topology.uses t.config kind loc ~src

let kind_tag = function
  | Op.Fadd -> 0 | Op.Fmul -> 1 | Op.Fdiv -> 2 | Op.Fsqrt -> 3
  | Op.Load -> 4 | Op.Store -> 5 | Op.Move -> 6 | Op.Load_r -> 7
  | Op.Store_r -> 8 | Op.Spill_load -> 9 | Op.Spill_store -> 10

(* Reservation vector of [v] at [loc], compiled once per
   (kind, location, Move source bank) and cached. *)
let cuses_of t (g : Ddg.t) v ~loc =
  let kind = Ddg.kind g v in
  let src =
    match kind with Op.Move -> move_src_bank t g v | _ -> None
  in
  let skey =
    match src with
    | None -> 0
    | Some Topology.Shared -> 1
    | Some Topology.L3 -> 2
    | Some (Topology.Local i) -> i + 3
  in
  let key = (((kind_tag kind * 64) + loc_code loc + 1) * 64) + skey in
  match Hashtbl.find_opt t.ucache key with
  | Some cu -> cu
  | None ->
    let cu = Mrt.compile t.mrt (Topology.uses t.config kind loc ~src) in
    Hashtbl.replace t.ucache key cu;
    cu

(** Earliest legal issue cycle given the scheduled predecessors. *)
let estart t (g : Ddg.t) v =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      if is_scheduled t e.src then
        max acc
          (t.e_cycle.(e.src) + Latency.of_edge t.lat g e
          - (t.ii * e.distance))
      else acc)
    0 (Ddg.preds g v)

(** Latest legal issue cycle given the scheduled successors; [None] when
    no successor is scheduled. *)
let lstart t (g : Ddg.t) v =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      if is_scheduled t e.dst then
        let bound =
          t.e_cycle.(e.dst) - Latency.of_edge t.lat g e + (t.ii * e.distance)
        in
        Some (match acc with None -> bound | Some a -> min a bound)
      else acc)
    None (Ddg.succs g v)

(* Deliberate fault injection for the differential fuzzer (hcrf_check):
   [Lax_resources] makes [can_place] ignore the reservation table, so the
   engine happily oversubscribes functional units and ports.  [Validate]
   rebuilds occupancy independently and must flag every such schedule;
   the fuzzer asserts it does.  Never set outside tests/campaigns. *)
type fault = Lax_resources

let fault : fault option ref = ref None

(* ---- precompiled probing (the engine's candidate scan) ------------- *)

let prepare_uses t g v ~loc = cuses_of t g v ~loc

let can_place_prepared t cu ~cycle =
  match !fault with
  | Some Lax_resources -> true
  | None -> Mrt.can_place_c t.mrt cu ~cycle

let place_prepared t g v cu ~cycle ~loc =
  if is_scheduled t v then Fmt.invalid_arg "Schedule.place: %d placed" v;
  Mrt.place_c t.mrt ~node:v cu ~cycle;
  if v >= t.cap then grow t v;
  t.e_cycle.(v) <- cycle;
  t.e_loc.(v) <- loc_code loc;
  let bank =
    match Topology.def_bank t.config (Ddg.kind g v) loc with
    | None -> -1
    | Some b ->
      let i = bank_index t b in
      t.bank_defs.(i) <- t.bank_defs.(i) + 1;
      i
  in
  t.e_bank.(v) <- bank;
  t.nsched <- t.nsched + 1

let conflicts_prepared t cu ~cycle = Mrt.conflicts_c t.mrt cu ~cycle

(* ---- list-based interface ----------------------------------------- *)

let can_place t g v ~cycle ~loc =
  match !fault with
  | Some Lax_resources -> true
  | None -> Mrt.can_place_c t.mrt (cuses_of t g v ~loc) ~cycle

let place t g v ~cycle ~loc =
  place_prepared t g v (cuses_of t g v ~loc) ~cycle ~loc

let unplace t v =
  if is_scheduled t v then begin
    Mrt.remove t.mrt ~node:v;
    t.e_cycle.(v) <- unscheduled;
    (match t.e_bank.(v) with
    | -1 -> ()
    | i -> t.bank_defs.(i) <- t.bank_defs.(i) - 1);
    t.e_bank.(v) <- -1;
    t.nsched <- t.nsched - 1
  end

(** Nodes that must be ejected to reserve [v]'s resources at [cycle]. *)
let resource_conflicts t g v ~cycle ~loc =
  Mrt.conflicts_c t.mrt (cuses_of t g v ~loc) ~cycle

(** Scheduled neighbours whose dependence constraints are violated by [v]
    issuing at [cycle]. *)
let dependence_violations t (g : Ddg.t) v ~cycle =
  let bad_preds =
    List.filter_map
      (fun (e : Ddg.edge) ->
        if
          e.src <> v
          && is_scheduled t e.src
          && t.e_cycle.(e.src) + Latency.of_edge t.lat g e
             - (t.ii * e.distance)
             > cycle
        then Some e.src
        else None)
      (Ddg.preds g v)
  and bad_succs =
    List.filter_map
      (fun (e : Ddg.edge) ->
        if
          e.dst <> v
          && is_scheduled t e.dst
          && cycle + Latency.of_edge t.lat g e - (t.ii * e.distance)
             > t.e_cycle.(e.dst)
        then Some e.dst
        else None)
      (Ddg.succs g v)
  in
  List.sort_uniq compare (bad_preds @ bad_succs)

let max_cycle t =
  let m = ref 0 in
  for v = 0 to t.cap - 1 do
    if t.e_cycle.(v) <> unscheduled && t.e_cycle.(v) > !m then
      m := t.e_cycle.(v)
  done;
  !m

(** Number of stages of II cycles in the kernel. *)
let stage_count t = (max_cycle t / t.ii) + 1

let pp ppf t =
  let entries =
    List.map (fun v -> (v, entry_exn t v)) (scheduled_nodes t)
    |> List.sort (fun (_, a) (_, b) -> compare (a.cycle, a.loc) (b.cycle, b.loc))
  in
  Fmt.pf ppf "@[<v>schedule ii=%d sc=%d@," t.ii (stage_count t);
  List.iter
    (fun (v, e) ->
      Fmt.pf ppf "  n%-4d cycle %-4d (slot %-3d) %a@," v e.cycle
        (e.cycle mod t.ii) Topology.pp_loc e.loc)
    entries;
  Fmt.pf ppf "@]"

(** The iterative modulo-scheduling engine (MIRS family).

    One engine drives every register-file organization: the
    {!Topology} of the configuration decides where operations may
    execute, which bank holds each value, and which communication
    operations connect banks.  The engine is the algorithm of Figure 5
    of the paper:

    - nodes are scheduled one at a time in HRMS priority order;
    - cluster selection minimizes new communication, then slot
      availability, then balances FU and register-bank use;
    - the communication operations a placement needs (Move for
      clustered RFs, StoreR/LoadR for hierarchical ones) are inserted
      into the graph — reusing an existing StoreR of the same value
      when possible — and scheduled before the node itself;
    - when no slot fits, the node is forced and the conflicting or
      dependence-violated nodes are ejected back into the priority
      list, together with the now-useless communication operations
      that were inserted for them;
    - after every placement the per-bank register requirement
      (MaxLives) is compared against the bank capacities; overflowing
      banks get spill code — StoreR/LoadR between a distributed bank
      and the shared bank, Spill_store/Spill_load between a bank and
      memory — and loop invariants can be demoted from a cluster to
      the shared bank (or memory);
    - a Budget of [budget_ratio * |V|] attempts (replenished by
      [budget_ratio] for every inserted node, up to a lifetime cap per
      attempt so replenishment cannot sustain a spill cycle forever)
      bounds the iterative process; when exhausted the attempt is
      discarded and the whole process restarts with II + 1. *)

open Hcrf_ir
open Hcrf_machine
module Tr = Hcrf_obs.Trace
module Ev = Hcrf_obs.Event

type options = {
  budget_ratio : int;
  max_ii : int option;  (** absolute cap on the II search (None: auto) *)
  load_override : int -> int option;
      (** per-load latency override for binding prefetching *)
  backtracking : bool;
      (** false: never force-and-eject; a placement failure discards the
          attempt and restarts with II+1, as in the non-iterative
          scheduler of [36] *)
  ordering : [ `Hrms | `Topological ];
      (** node ordering: HRMS-style (default) or plain topological *)
}

let default_options =
  { budget_ratio = 6; max_ii = None; load_override = (fun _ -> None);
    backtracking = true; ordering = `Hrms }

type stats = {
  ejections : int;
  forcings : int;
  value_spills : int;
  invariant_spills : int;
  comm_inserted : int;
  attempts : int;
  ii_restarts : int;
}

type outcome = {
  ii : int;
  mii : int;
  bounds : Mii.bounds;  (** of the final graph, for bound classification *)
  sc : int;
  schedule : Schedule.t;
  graph : Ddg.t;        (** final graph with all inserted operations *)
  invariant_residents : Topology.bank -> int;
  seconds : float;
  stats : stats;
}

type error = [ `No_schedule of int (* last II tried *) ]

(* ------------------------------------------------------------------ *)
(* Mutable per-attempt state                                           *)

type mstats = {
  mutable m_ejections : int;
  mutable m_forcings : int;
  mutable m_value_spills : int;
  mutable m_invariant_spills : int;
  mutable m_comm_inserted : int;
  mutable m_attempts : int;
}

type state = {
  g : Ddg.t;
  config : Config.t;
  lat : Latency.t;
  sched : Schedule.t;
  press : Pressure.t;                    (* incremental MaxLives tracker *)
  pq : Pqueue.t;
  prio : (int, float) Hashtbl.t;
  aux : (int, int list) Hashtbl.t;       (* anchor -> inserted comm nodes *)
  last_force : (int, int) Hashtbl.t;
  spilled : (int, unit) Hashtbl.t;       (* value defs already spilled *)
  inv_spilled : (int * int, unit) Hashtbl.t; (* (inv, bank code) *)
  mutable budget : int;
  mutable refills : int;
      (* cumulative budget granted back by spills; capped so a spill /
         eject / re-spill cycle over fresh node ids (which the
         [spilled] once-only marker cannot see) drains the budget
         instead of sustaining itself forever *)
  ratio : int;
  opts : options;
  n0 : int;  (** nodes in the original graph, for the growth cap *)
  st : mstats;
  trace : Tr.t;
  mutable srev : int;
      (* state revision: bumped on every placement, ejection and graph
         edit; keys the capacity-check memo below *)
  mutable memo_srev : int;               (* -1 = no memo *)
  mutable memo_verdict : [ `Inserted of int | `Unfixable ];
}

(* Safety net: spilling must not grow the graph without bound (the paper
   controls this with the Budget; we additionally cap the graph size so
   a failing attempt is abandoned instead of thrashing). *)
let growth_cap s = Ddg.num_nodes s.g > (8 * s.n0) + 64

exception Attempt_failed

let bank_code = function
  | Topology.Shared -> -1
  | Topology.L3 -> -2
  | Topology.Local i -> i

let prio_of s v =
  match Hashtbl.find_opt s.prio v with Some p -> p | None -> 1.0e9

let set_prio s v p = Hashtbl.replace s.prio v p

let requeue s v =
  if Ddg.mem s.g v && not (Pqueue.mem s.pq v) then
    Pqueue.push s.pq ~priority:(prio_of s v) v

let add_aux s ~anchor n =
  let cur = Option.value ~default:[] (Hashtbl.find_opt s.aux anchor) in
  Hashtbl.replace s.aux anchor (n :: cur)

(* Scheduling/unscheduling [v] changes its own lifetime and extends or
   shrinks its operand producers' (a consumer appeared/disappeared). *)
let mark_lifetimes s v =
  Pressure.mark s.press v;
  List.iter
    (fun (e : Ddg.edge) -> Pressure.mark s.press e.src)
    (Ddg.operands s.g v)

let place_node s v cu ~cycle ~loc =
  Schedule.place_prepared s.sched s.g v cu ~cycle ~loc;
  s.srev <- s.srev + 1;
  mark_lifetimes s v

let unplace_node s v =
  if Schedule.is_scheduled s.sched v then begin
    s.srev <- s.srev + 1;
    mark_lifetimes s v;
    Schedule.unplace s.sched v
  end

let kind_of s v = Ddg.kind s.g v

let is_comm_kind = function
  | Op.Move | Op.Load_r | Op.Store_r -> true
  | _ -> false

let def_bank_of s v =
  match Schedule.entry s.sched v with
  | None -> None
  | Some e -> Topology.def_bank s.config (kind_of s v) e.loc

let cluster_of_loc = function Topology.Cluster i -> i | Topology.Global -> 0

(* ------------------------------------------------------------------ *)
(* Graph surgery                                                       *)

(* Remove a communication node, reconnecting its producer to its
   consumers (distances compose).  Invariant consumer lists are updated:
   consumers of an invariant's LoadR become direct consumers again. *)
let splice_out s v =
  s.srev <- s.srev + 1;  (* invariant consumer lists may change below *)
  let operands = Ddg.operands s.g v in
  let consumers = Ddg.consumers s.g v in
  (match operands with
  | [] -> ()
  | pe :: _ ->
    List.iter
      (fun (ce : Ddg.edge) ->
        Ddg.add_edge s.g ~distance:(pe.distance + ce.distance)
          ~dep:Dep.True pe.src ce.dst)
      consumers);
  List.iter
    (fun (inv : Ddg.invariant) ->
      if List.mem v inv.inv_consumers then
        inv.inv_consumers <-
          List.filter (fun c -> c <> v) inv.inv_consumers
          @ List.map (fun (ce : Ddg.edge) -> ce.dst) consumers)
    (Ddg.invariants s.g);
  unplace_node s v;
  Pqueue.remove s.pq v;
  Ddg.remove_node s.g v

(* Discard an auxiliary communication node if nothing scheduled reads
   it any more. *)
let maybe_discard s v =
  if Ddg.mem s.g v && is_comm_kind (kind_of s v) then begin
    let has_live_consumer =
      List.exists
        (fun (e : Ddg.edge) -> Schedule.is_scheduled s.sched e.dst)
        (Ddg.consumers s.g v)
    in
    if not has_live_consumer then splice_out s v
  end

(* Eject a node: deschedule it, requeue it with its original priority,
   drop the communication helpers inserted for it, and recursively eject
   the location-bound communication consumers of its value (a Move or
   StoreR reads the bank its producer was in). *)
let rec eject s v =
  if Schedule.is_scheduled s.sched v then begin
    unplace_node s v;
    s.st.m_ejections <- s.st.m_ejections + 1;
    if Tr.enabled s.trace then Tr.emit s.trace (Ev.Eject { node = v });
    let loc_bound =
      List.filter_map
        (fun (e : Ddg.edge) ->
          match kind_of s e.dst with
          | Op.Move | Op.Store_r
            when e.dst <> v && Schedule.is_scheduled s.sched e.dst ->
            Some e.dst
          | _ -> None)
        (Ddg.consumers s.g v)
    in
    (match Hashtbl.find_opt s.aux v with
    | None -> ()
    | Some l ->
      Hashtbl.remove s.aux v;
      List.iter (maybe_discard s) l);
    requeue s v;
    List.iter (eject s) loc_bound
  end

(* ------------------------------------------------------------------ *)
(* Core placement with force-and-eject                                 *)

let emit_place s v ~cycle ~loc =
  if Tr.enabled s.trace then
    let cluster =
      match loc with Topology.Cluster i -> i | Topology.Global -> -1
    in
    Tr.emit s.trace (Ev.Place { node = v; cycle; cluster })

let schedule_node s v ~loc =
  if
    Op.equal_kind (kind_of s v) Op.Move
    && Schedule.move_src_bank s.sched s.g v = None
  then
    (* the producer was ejected while this Move waited: its source bank
       (and port reservation) is unknown — retry once the producer is
       back *)
    requeue s v
  else begin
  let ii = Schedule.ii s.sched in
  let estart = Schedule.estart s.sched s.g v in
  let lstart = Schedule.lstart s.sched s.g v in
  let has_spreds =
    List.exists
      (fun (e : Ddg.edge) ->
        e.src <> v && Schedule.is_scheduled s.sched e.src)
      (Ddg.preds s.g v)
  in
  (* A down-copy splits its value's lifetime between the upstream bank
     (shared bank / memory) and the downstream FU-facing bank: issuing
     late moves the lifetime upstream.  Spill loads always issue late
     (memory capacity is free); a LoadR issues late only when the
     destination bank is fuller than the shared bank. *)
  let prefer_late =
    match kind_of s v with
    | Op.Spill_load -> true
    | Op.Load_r ->
      let fill bank =
        match Topology.bank_capacity s.config bank with
        | Cap.Inf -> 0.
        | Cap.Finite cap when cap > 0 ->
          float_of_int (Schedule.bank_def_count s.sched bank)
          /. float_of_int cap
        | Cap.Finite _ -> 1.
      in
      let dst =
        match loc with
        | Topology.Cluster i -> Topology.Local i
        | Topology.Global -> Topology.Shared
      in
      fill dst >= fill Topology.Shared
    | _ -> false
  in
  (* candidate scan over the precompiled reservation vector: no list of
     cycles, no per-cycle [uses] rebuild *)
  let cu = Schedule.prepare_uses s.sched s.g v ~loc in
  let probe c = c >= 0 && Schedule.can_place_prepared s.sched cu ~cycle:c in
  let scan_down hi n =
    let rec go k =
      if k >= n then None else if probe (hi - k) then Some (hi - k) else go (k + 1)
    in
    go 0
  in
  let scan_up lo n =
    let rec go k =
      if k >= n then None else if probe (lo + k) then Some (lo + k) else go (k + 1)
    in
    go 0
  in
  let found =
    match (has_spreds, lstart) with
    | false, Some l when l >= 0 ->
      (* only successors scheduled: scan downwards from lstart *)
      scan_down l (min ii (l + 1))
    | _, Some l ->
      let hi = min l (estart + ii - 1) in
      if hi < estart then None
      else if prefer_late then scan_down hi (hi - estart + 1)
      else scan_up estart (hi - estart + 1)
    | _, None -> scan_up estart ii
  in
  match found with
  | Some cycle ->
    place_node s v cu ~cycle ~loc;
    emit_place s v ~cycle ~loc;
    Hashtbl.remove s.last_force v
  | None ->
    if not s.opts.backtracking then raise Attempt_failed;
    (* force and eject *)
    s.st.m_forcings <- s.st.m_forcings + 1;
    let base =
      match (has_spreds, lstart) with
      | false, Some l when l >= 0 -> l
      | _ -> max 0 estart
    in
    let cycle =
      match Hashtbl.find_opt s.last_force v with
      | Some p when p >= base -> p + 1
      | Some _ | None -> base
    in
    Hashtbl.replace s.last_force v cycle;
    let guard = ref 64 in
    (* ejecting a conflict can invalidate [v] itself: a pending comm op
       is spliced out when its last scheduled consumer goes, and a
       pending Move loses its source bank (hence its reservation vector)
       when its producer is ejected — re-check before every probe *)
    let probe_ok () =
      Ddg.mem s.g v
      && not
           (Op.equal_kind (kind_of s v) Op.Move
           && Schedule.move_src_bank s.sched s.g v = None)
    in
    let rec clear () =
      decr guard;
      if probe_ok () then
        match Schedule.resource_conflicts s.sched s.g v ~cycle ~loc with
        | [] -> ()
        | conflicts when !guard > 0 ->
          List.iter (eject s) conflicts;
          clear ()
        | _ -> ()
    in
    clear ();
    if not (Ddg.mem s.g v) then ()
    else if not (probe_ok ()) then requeue s v
    (* re-prepare: the ejections above may have unscheduled a Move's
       producer, changing the reservation vector *)
    else if Schedule.can_place s.sched s.g v ~cycle ~loc then begin
      place_node s v
        (Schedule.prepare_uses s.sched s.g v ~loc)
        ~cycle ~loc;
      emit_place s v ~cycle ~loc;
      List.iter (eject s)
        (Schedule.dependence_violations s.sched s.g v ~cycle)
    end
    else
      (* unbreakable conflict (should not happen); retry later *)
      requeue s v
  end

(* ------------------------------------------------------------------ *)
(* Communication routing                                               *)

type step = Reuse of int | Fresh of Op.kind * Topology.loc

type plan = { new_src : int; steps : step list }

(* [avoid] is the consumer the route is being planned for: reusing it
   (or a copy of its own output) as a step would wire the consumer's
   value back into itself and silently disconnect the producer. *)
let find_reusable_copy_at s src ~kind ~loc ~avoid =
  List.find_opt
    (fun (e : Ddg.edge) ->
      e.dst <> avoid
      && Op.equal_kind (kind_of s e.dst) kind
      && Schedule.is_scheduled s.sched e.dst
      &&
      match Schedule.entry s.sched e.dst with
      | Some e' -> Topology.equal_loc e'.loc loc
      | None -> false)
    (Ddg.consumers s.g src)
  |> Option.map (fun (e : Ddg.edge) -> e.dst)

let find_reusable_copy s src ~kind ~cluster ~avoid =
  find_reusable_copy_at s src ~kind ~loc:(Topology.Cluster cluster) ~avoid

(* How to obtain [p]'s value in the shared bank.  [db] is the bank of
   the (possibly not yet placed) definition: a local bank goes up
   through a StoreR, the third level comes up through a LoadR at
   [Global]. *)
let shared_handle s p ~(db : Topology.bank) ~avoid =
  match db with
  | Topology.Shared -> `Already p
  | Topology.Local i -> (
    (* a LoadR's producer already holds the same value in Shared *)
    let root =
      if Op.equal_kind (kind_of s p) Op.Load_r then
        match Ddg.operands s.g p with
        | (e : Ddg.edge) :: _
          when def_bank_of s e.src = Some Topology.Shared ->
          Some e.src
        | _ -> None
      else None
    in
    match root with
    | Some q -> `Already q
    | None -> (
      let existing_storer =
        List.find_opt
          (fun (e : Ddg.edge) ->
            e.dst <> avoid
            && Op.equal_kind (kind_of s e.dst) Op.Store_r
            && Schedule.is_scheduled s.sched e.dst)
          (Ddg.consumers s.g p)
      in
      match existing_storer with
      | Some e -> `Via e.dst
      | None -> `Fresh (Op.Store_r, Topology.Cluster i)))
  | Topology.L3 -> (
    (* a StoreR@Global's producer already holds the same value in
       Shared *)
    let root =
      if Op.equal_kind (kind_of s p) Op.Store_r then
        match Ddg.operands s.g p with
        | (e : Ddg.edge) :: _
          when def_bank_of s e.src = Some Topology.Shared ->
          Some e.src
        | _ -> None
      else None
    in
    match root with
    | Some q -> `Already q
    | None -> (
      match
        find_reusable_copy_at s p ~kind:Op.Load_r ~loc:Topology.Global
          ~avoid
      with
      | Some lr -> `Via lr
      | None -> `Fresh (Op.Load_r, Topology.Global)))

(* Plan the copies needed so that a value defined in [db] by [p] can be
   read from [rb]. *)
let plan_route s ~p ~(db : Topology.bank) ~(rb : Topology.bank) ~avoid :
    plan option =
  if Topology.equal_bank db rb then None
  else
    match s.config.rf with
    | Rf.Monolithic _ -> None
    | Rf.Clustered _ -> (
      match rb with
      | Topology.Local j -> (
        match find_reusable_copy s p ~kind:Op.Move ~cluster:j ~avoid with
        | Some mv -> Some { new_src = p; steps = [ Reuse mv ] }
        | None ->
          Some
            { new_src = p; steps = [ Fresh (Op.Move, Topology.Cluster j) ] })
      | Topology.Shared | Topology.L3 -> None)
    | Rf.Hierarchical _ ->
      (* stage 1: a handle on the value in the shared bank *)
      let src0, pre =
        match shared_handle s p ~db ~avoid with
        | `Already q -> (q, [])
        | `Via sr -> (p, [ Reuse sr ])
        | `Fresh (k, loc) -> (p, [ Fresh (k, loc) ])
      in
      (* stage 2: deliver from the shared bank to [rb]; a further copy
         can only be reused off an existing node, not a fresh one *)
      let shared_node =
        match pre with
        | [] -> Some src0
        | [ Reuse sr ] -> Some sr
        | _ -> None
      in
      let deliver kind loc =
        match
          Option.bind shared_node (fun n ->
              find_reusable_copy_at s n ~kind ~loc ~avoid)
        with
        | Some n -> [ Reuse n ]
        | None -> [ Fresh (kind, loc) ]
      in
      let plan_steps =
        match rb with
        | Topology.Shared -> pre
        | Topology.Local j -> pre @ deliver Op.Load_r (Topology.Cluster j)
        | Topology.L3 -> pre @ deliver Op.Store_r Topology.Global
      in
      if plan_steps = [] && src0 = p then None
      else Some { new_src = src0; steps = plan_steps }

let fresh_count plan =
  List.length
    (List.filter (function Fresh _ -> true | Reuse _ -> false) plan.steps)

(* Rewire [edge] through the plan.  Returns the fresh nodes (with their
   locations) that now need scheduling, in dataflow order. *)
let apply_plan s ~anchor (edge : Ddg.edge) plan =
  Ddg.remove_edge s.g edge;
  let fresh = ref [] in
  let cur = ref plan.new_src in
  List.iter
    (fun step ->
      match step with
      | Reuse n -> cur := n
      | Fresh (k, loc) ->
        let n = Ddg.add_node s.g k in
        Ddg.add_edge s.g ~distance:0 ~dep:Dep.True !cur n;
        set_prio s n (prio_of s anchor -. 0.25);
        add_aux s ~anchor n;
        s.st.m_comm_inserted <- s.st.m_comm_inserted + 1;
        if Tr.enabled s.trace then
          (match k with
          | Op.Move -> Some Ev.Move
          | Op.Store_r -> Some Ev.Store_r
          | Op.Load_r -> Some Ev.Load_r
          | _ -> None)
          |> Option.iter (fun c -> Tr.emit s.trace (Ev.Comm_insert c));
        fresh := (n, loc) :: !fresh;
        cur := n)
    plan.steps;
  Ddg.add_edge s.g ~distance:edge.distance ~dep:Dep.True !cur edge.dst;
  (* a reused copy may be scheduled too late for this consumer: enforce
     the new dependence by ejecting the consumer (it will be replaced
     after the routing settles) *)
  (match (Schedule.entry s.sched !cur, Schedule.entry s.sched edge.dst) with
  | Some a, Some b ->
    let lat =
      Latency.of_def s.lat ~id:!cur ~kind:(kind_of s !cur)
    in
    if b.cycle < a.cycle + lat - (Schedule.ii s.sched * edge.distance) then
      eject s edge.dst
  | None, _ | _, None -> ());
  List.rev !fresh

(* Routing needs of [v] placed at [loc]: one plan per mismatched operand
   or consumer edge.  Only edges whose other endpoint is scheduled are
   considered — the rest get routed when that endpoint is placed.
   NOTE: plans go stale as soon as one of them is applied (scheduling a
   fresh copy can eject or splice other nodes); apply only the first and
   recompute (see [route_and_place]). *)
let routes_for s v ~loc =
  let kind = kind_of s v in
  let operand_routes =
    if Op.equal_kind kind Op.Move then []
      (* a Move reads whatever local bank its producer is in *)
    else
      let rb = Topology.read_bank s.config kind loc in
      List.filter_map
        (fun (e : Ddg.edge) ->
          if
            e.src <> v
            && Op.defines_value (kind_of s e.src)
            && Schedule.is_scheduled s.sched e.src
          then
            match def_bank_of s e.src with
            | Some db ->
              plan_route s ~p:e.src ~db ~rb ~avoid:e.dst
              |> Option.map (fun pl -> (e, pl))
            | None -> None
          else None)
        (Ddg.operands s.g v)
  in
  let consumer_routes =
    match Topology.def_bank s.config kind loc with
    | None -> []
    | Some db ->
      List.filter_map
        (fun (e : Ddg.edge) ->
          if
            Dep.equal e.dep Dep.True
            && e.dst <> v
            && Schedule.is_scheduled s.sched e.dst
            && not (Op.equal_kind (kind_of s e.dst) Op.Move)
          then
            let rb =
              Topology.read_bank s.config (kind_of s e.dst)
                (Schedule.loc_of s.sched e.dst)
            in
            plan_route s ~p:v ~db ~rb ~avoid:e.dst
            |> Option.map (fun pl -> (e, pl))
          else None)
        (Ddg.succs s.g v)
  in
  operand_routes @ consumer_routes

(* Cost of placing [v] at [loc] without committing: fresh communication
   ops needed, slot availability, FU occupancy and bank fill. *)
let placement_cost s v ~loc =
  let comm =
    List.fold_left (fun acc (_, pl) -> acc + fresh_count pl) 0
      (routes_for s v ~loc)
  in
  let ii = Schedule.ii s.sched in
  let estart = Schedule.estart s.sched s.g v in
  let slot_ok =
    let cu = Schedule.prepare_uses s.sched s.g v ~loc in
    let rec scan k =
      if k >= ii then false
      else if
        Schedule.can_place_prepared s.sched cu ~cycle:(max 0 estart + k)
      then true
      else scan (k + 1)
    in
    scan 0
  in
  let cluster = cluster_of_loc loc in
  let fill_resource =
    if Op.is_memory (kind_of s v) then Topology.Mem cluster
    else Topology.Fu cluster
  in
  let fu_fill = ref 0 in
  for slot = 0 to ii - 1 do
    fu_fill :=
      !fu_fill + Mrt.occupancy s.sched.Schedule.mrt fill_resource ~slot
  done;
  let bank_fill = Schedule.bank_def_count s.sched (Topology.Local cluster) in
  (* graded register-availability term: a nearly-full bank is almost as
     bad as a communication op, since placing here will trigger spill
     code (the "availability of registers" part of Select_Cluster) *)
  let pressure_penalty =
    match Topology.bank_capacity s.config (Topology.Local cluster) with
    | Cap.Inf -> 0
    | Cap.Finite cap when cap > 0 -> bank_fill * 48 / cap
    | Cap.Finite _ -> 0
  in
  (* access-port pressure: on a bank with constrained read/write ports,
     already-reserved Rd/Wr slots make the cluster less attractive —
     unconstrained banks (every legacy configuration) contribute 0 *)
  let port_fill =
    match Topology.bank_access s.config (Topology.Local cluster) with
    | None -> 0
    | Some _ ->
      let b = Topology.bank_code s.config (Topology.Local cluster) in
      let f = ref 0 in
      for slot = 0 to ii - 1 do
        f :=
          !f
          + Mrt.occupancy s.sched.Schedule.mrt (Topology.Rd b) ~slot
          + Mrt.occupancy s.sched.Schedule.mrt (Topology.Wr b) ~slot
      done;
      !f
  in
  (* A cluster without a free slot in the window is almost always a bad
     idea (it forces ejections); communication comes next; resource and
     register balance break ties. *)
  ((if slot_ok then 0 else 1000) + (100 * comm) + pressure_penalty
  + !fu_fill + bank_fill + port_fill)

(* ------------------------------------------------------------------ *)
(* Location selection                                                  *)

(* Majority cluster among the scheduled consumers of [v]. *)
let consumers_cluster s v =
  let counts = Hashtbl.create 4 in
  List.iter
    (fun (e : Ddg.edge) ->
      match Schedule.entry s.sched e.dst with
      | Some { loc = Topology.Cluster c; _ } ->
        Hashtbl.replace counts c
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
      | Some { loc = Topology.Global; _ } | None -> ())
    (Ddg.consumers s.g v);
  Hashtbl.fold
    (fun c n acc ->
      match acc with
      | Some (_, bn) when bn >= n -> acc
      | _ -> Some (c, n))
    counts None
  |> Option.map fst

let producer_cluster s v =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      match acc with
      | Some _ -> acc
      | None -> (
        match Schedule.entry s.sched e.src with
        | Some { loc = Topology.Cluster c; _ } -> Some c
        | Some { loc = Topology.Global; _ } | None -> None))
    None (Ddg.operands s.g v)

(* Bank of the (first scheduled) producer's value, for bank-directed
   placement of LoadR/StoreR in a three-level hierarchy. *)
let producer_def_bank s v =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      match acc with Some _ -> acc | None -> def_bank_of s e.src)
    None (Ddg.operands s.g v)

let decide_loc s v =
  let kind = kind_of s v in
  match Topology.exec_locs s.config kind with
  | [] -> `Splice
  | [ l ] -> `Loc l
  | locs -> (
    match kind with
    | Op.Move | Op.Load_r | Op.Store_r -> (
      let operands = Ddg.operands s.g v in
      let producer_ready =
        operands = []
        || List.exists
             (fun (e : Ddg.edge) -> Schedule.is_scheduled s.sched e.src)
             operands
      in
      let has_live_consumer =
        List.exists
          (fun (e : Ddg.edge) -> Schedule.is_scheduled s.sched e.dst)
          (Ddg.consumers s.g v)
      in
      if (not producer_ready) || not has_live_consumer then `Splice
      else
        (* in a three-level hierarchy the producer's bank directs the
           global transfers: a StoreR of a Shared value moves it down to
           L3, a LoadR of an L3 value brings it up to Shared — both
           execute at [Global].  Cluster-resident producers keep the
           two-level placement heuristics. *)
        let l3 = Topology.has_l3 s.config in
        match kind with
        | Op.Store_r
          when l3 && producer_def_bank s v = Some Topology.Shared ->
          `Loc Topology.Global
        | Op.Load_r when l3 && producer_def_bank s v = Some Topology.L3 ->
          `Loc Topology.Global
        | Op.Store_r -> (
          match producer_cluster s v with
          | Some c -> `Loc (Topology.Cluster c)
          | None -> `Splice)
        | _ -> (
          match consumers_cluster s v with
          | Some c -> `Loc (Topology.Cluster c)
          | None -> `Splice))
    | Op.Spill_load -> (
      match consumers_cluster s v with
      | Some c -> `Loc (Topology.Cluster c)
      | None -> `Loc (List.hd locs))
    | Op.Spill_store -> (
      match producer_cluster s v with
      | Some c -> `Loc (Topology.Cluster c)
      | None -> `Loc (List.hd locs))
    | Op.Fadd | Op.Fmul | Op.Fdiv | Op.Fsqrt | Op.Load | Op.Store ->
      (* Select_Cluster heuristic [37]: fewest new communications, then
         a free slot, then balanced FU/register use. *)
      let best =
        List.fold_left
          (fun acc loc ->
            let cost = placement_cost s v ~loc in
            match acc with
            | Some (_, bc) when bc <= cost -> acc
            | _ -> Some (loc, cost))
          None locs
      in
      (match best with Some (l, _) -> `Loc l | None -> `Loc (List.hd locs)))

(* ------------------------------------------------------------------ *)
(* Spilling                                                            *)

let banks_of_config (config : Config.t) = Topology.all_banks config

(* Invariants resident in [bank]: at least one scheduled direct consumer
   reads the invariant from there. *)
let invariant_residents_in s bank =
  List.filter
    (fun (inv : Ddg.invariant) ->
      List.exists
        (fun c ->
          Ddg.mem s.g c
          &&
          match Schedule.entry s.sched c with
          | Some e ->
            Topology.equal_bank
              (Topology.read_bank s.config (kind_of s c) e.loc)
              bank
          | None -> false)
        inv.inv_consumers)
    (Ddg.invariants s.g)

let invariant_residents s bank =
  List.length (invariant_residents_in s bank)

(* Spill one value defined by [d] out of [bank].  For a distributed bank
   of a hierarchical RF the value is demoted to the shared bank
   (StoreR + LoadR per consumer); otherwise it goes to memory
   (Spill_store + Spill_load per consumer).  Returns the number of
   inserted nodes. *)
(* Grant back [ratio] budget per inserted node, up to a lifetime cap per
   attempt: unbounded replenishment lets a pathological config (e.g. one
   local write port) respill fresh copies forever. *)
let refund_spill s fresh =
  let cap = 24 * s.ratio * s.n0 in
  let grant = min (s.ratio * fresh) (max 0 (cap - s.refills)) in
  s.refills <- s.refills + grant;
  s.budget <- s.budget + grant

let spill_value s ~bank d =
  let fresh = ref 0 in
  let consumers = Ddg.consumers s.g d in
  let mk kind prio_anchor =
    let n = Ddg.add_node s.g kind in
    set_prio s n (prio_of s prio_anchor +. 0.125);
    Pqueue.push s.pq ~priority:(prio_of s n) n;
    incr fresh;
    n
  in
  let to_shared =
    match (s.config.rf, bank) with
    | Rf.Hierarchical _, Topology.Local _ -> true
    | _ -> false
  in
  let store_kind = if to_shared then Op.Store_r else Op.Spill_store in
  let load_kind = if to_shared then Op.Load_r else Op.Spill_load in
  (* The up-copy: a LoadR's value already exists in the shared bank (its
     own producer), so spilling it is a pure re-load; otherwise reuse an
     existing StoreR of the value, or insert one. *)
  let up =
    let reload_root =
      if to_shared && Op.equal_kind (kind_of s d) Op.Load_r then
        match Ddg.operands s.g d with
        | (e : Ddg.edge) :: _
          when def_bank_of s e.src = Some Topology.Shared ->
          Some e.src
        | _ -> None
      else if
        (* a load with no memory dependence can simply be re-issued:
           spilling its value costs a redundant load, not a store/load
           round trip *)
        (not to_shared)
        && Op.equal_kind (kind_of s d) Op.Load
        && Ddg.operands s.g d = []
      then Some d
      else None
    in
    match reload_root with
    | Some q -> q
    | None -> (
      let existing =
        List.find_opt
          (fun (e : Ddg.edge) ->
            Op.equal_kind (kind_of s e.dst) store_kind)
          consumers
      in
      match existing with
      | Some e -> e.dst
      | None ->
        let n = mk store_kind d in
        Ddg.add_edge s.g ~distance:0 ~dep:Dep.True d n;
        n)
  in
  List.iter
    (fun (e : Ddg.edge) ->
      let ck = kind_of s e.dst in
      if e.dst <> up && not (Op.equal_kind ck store_kind) then begin
        let down = mk load_kind e.dst in
        (* a reload copy is already as short as it gets: never respill *)
        Hashtbl.replace s.spilled down ();
        Ddg.add_edge s.g ~distance:0 ~dep:Dep.True up down;
        Ddg.remove_edge s.g e;
        Ddg.add_edge s.g ~distance:e.distance ~dep:Dep.True down e.dst
      end)
    consumers;
  Hashtbl.replace s.spilled d ();
  s.st.m_value_spills <- s.st.m_value_spills + 1;
  refund_spill s !fresh;
  if Tr.enabled s.trace then
    Tr.emit s.trace (Ev.Spill_insert { kind = Ev.Value; inserted = !fresh });
  !fresh

(* Demote an invariant out of [bank]: every scheduled consumer reading
   it there now reads through a LoadR (hierarchical) or a Spill_load
   (memory).  Returns the number of inserted nodes. *)
let spill_invariant s ~bank (inv : Ddg.invariant) =
  let fresh = ref 0 in
  let load_kind =
    match (s.config.rf, bank) with
    | Rf.Hierarchical _, Topology.Local _ -> Op.Load_r
    | _ -> Op.Spill_load
  in
  let consumers = inv.inv_consumers in
  List.iter
    (fun c ->
      let reads_here =
        Ddg.mem s.g c
        &&
        match Schedule.entry s.sched c with
        | Some e ->
          Topology.equal_bank
            (Topology.read_bank s.config (kind_of s c) e.loc)
            bank
        | None -> false
      in
      if reads_here then begin
        let down = Ddg.add_node s.g load_kind in
        Hashtbl.replace s.spilled down ();
        set_prio s down (prio_of s c -. 0.25);
        Pqueue.push s.pq ~priority:(prio_of s down) down;
        Ddg.add_edge s.g ~distance:0 ~dep:Dep.True down c;
        inv.inv_consumers <-
          down :: List.filter (fun x -> x <> c) inv.inv_consumers;
        incr fresh
      end)
    consumers;
  Hashtbl.replace s.inv_spilled (inv.inv_id, bank_code bank) ();
  s.st.m_invariant_spills <- s.st.m_invariant_spills + 1;
  refund_spill s !fresh;
  if Tr.enabled s.trace then
    Tr.emit s.trace
      (Ev.Spill_insert { kind = Ev.Invariant; inserted = !fresh });
  !fresh

let spillable_def s ~bank d =
  (not (Hashtbl.mem s.spilled d))
  &&
  match (kind_of s d, bank) with
  | (Op.Fadd | Op.Fmul | Op.Fdiv | Op.Fsqrt | Op.Load), _ -> true
  | Op.Load_r, Topology.Local _ -> true  (* re-load from the shared copy *)
  | (Op.Store_r | Op.Spill_load), (Topology.Shared | Topology.L3) -> true
  | _ -> false

(* One spill decision for an overflowing [bank]: prefer an unspilled
   invariant (it frees a whole-loop register), otherwise the value with
   the longest lifetime span. *)
let pick_and_spill s ~bank lts =
  if growth_cap s then 0
  else
  let inv_candidate =
    List.find_opt
      (fun (inv : Ddg.invariant) ->
        not (Hashtbl.mem s.inv_spilled (inv.inv_id, bank_code bank)))
      (invariant_residents_in s bank)
  in
  match inv_candidate with
  | Some inv -> spill_invariant s ~bank inv
  | None -> (
    let best =
      List.fold_left
        (fun acc (l : Lifetimes.lifetime) ->
          if
            Topology.equal_bank l.bank bank
            && Lifetimes.span l >= 2
            && spillable_def s ~bank l.def
          then
            match acc with
            | Some b when Lifetimes.span b >= Lifetimes.span l -> acc
            | _ -> Some l
          else acc)
        None lts
    in
    match best with
    | Some l -> spill_value s ~bank l.def
    | None -> 0)

(* Check every finite bank; insert spill code until the requirement fits.
   Returns the number of inserted nodes; [`Unfixable] when a bank stays
   over capacity with no spill candidate left.

   The requirement comes from the incremental tracker ([Pressure]), so a
   check that inserts nothing is O(banks × II); the full lifetime list is
   only materialized when a bank actually overflows.  Checks are also
   memoized on the state revision: a verdict reached without modifying
   any state ([`Inserted 0], or [`Unfixable] with no insertions) is
   returned directly while the revision is unchanged — rerunning the
   check on identical state is deterministic and side-effect-free, so
   this skip is behaviour-preserving by construction (see DESIGN.md). *)
let check_insert_spill ?(force_bank = None) s =
  if force_bank = None && s.memo_srev = s.srev then s.memo_verdict
  else begin
    let srev0 = s.srev in
    let ii = Schedule.ii s.sched in
    let inserted = ref 0 in
    let unfixable = ref false in
    List.iter
      (fun bank ->
        match Topology.bank_capacity s.config bank with
        | Cap.Inf -> ()
        | Cap.Finite cap ->
          let forced =
            match force_bank with
            | Some b when Topology.equal_bank b bank -> 1
            | _ -> 0
          in
          let guard = ref 64 in
          let rec fix extra_required =
            decr guard;
            if !guard <= 0 then ()
            else begin
              let used =
                Pressure.pressure s.press ~bank + invariant_residents s bank
              in
              if used + extra_required > cap then begin
                let n = pick_and_spill s ~bank (Pressure.lifetimes s.press) in
                inserted := !inserted + n;
                if n > 0 then fix extra_required
                else begin
                  Logs.debug (fun m ->
                      m "unfixable: bank %a used=%d cap=%d ii=%d nodes=%d"
                        Topology.pp_bank bank used cap ii
                        (Ddg.num_nodes s.g));
                  unfixable := true
                end
              end
            end
          in
          fix forced)
      (banks_of_config s.config);
    let verdict = if !unfixable then `Unfixable else `Inserted !inserted in
    if force_bank = None && s.srev = srev0 then begin
      s.memo_srev <- s.srev;
      s.memo_verdict <- verdict
    end;
    verdict
  end

(* ------------------------------------------------------------------ *)
(* Final cleanup and checks                                            *)

(* Remove communication nodes whose value is never read (left behind by
   ejection/re-scheduling churn). *)
let prune_dead_comm s =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if
          Ddg.mem s.g v
          && is_comm_kind (kind_of s v)
          && Ddg.consumers s.g v = []
          && not
               (List.exists
                  (fun (inv : Ddg.invariant) ->
                    List.mem v inv.inv_consumers)
                  (Ddg.invariants s.g))
        then begin
          unplace_node s v;
          Pqueue.remove s.pq v;
          Ddg.remove_node s.g v;
          changed := true
        end)
      (Ddg.nodes s.g)
  done

(* Residual unrouted operand edges can survive rare eject/splice
   interleavings; route them now exactly as scheduling-time routing
   would.  Returns the plans applied (fresh nodes already scheduled). *)
let repair_banks s ~schedule_fresh =
  let repaired = ref 0 in
  List.iter
    (fun (e : Ddg.edge) ->
      if
        Ddg.has_edge s.g e
        && Dep.equal e.dep Dep.True
        && Op.defines_value (kind_of s e.src)
        && (not (Op.equal_kind (kind_of s e.dst) Op.Move))
        && Schedule.is_scheduled s.sched e.src
        && Schedule.is_scheduled s.sched e.dst
      then
        match def_bank_of s e.src with
        | None -> ()
        | Some db ->
          let rb =
            Topology.read_bank s.config (kind_of s e.dst)
              (Schedule.loc_of s.sched e.dst)
          in
          if not (Topology.equal_bank db rb) then (
            match plan_route s ~p:e.src ~db ~rb ~avoid:e.dst with
            | None -> ()
            | Some plan ->
              incr repaired;
              schedule_fresh (apply_plan s ~anchor:e.dst e plan)))
    (Ddg.edges s.g);
  !repaired

(* Final consistency net for dependences: eject the consumer of any
   violated edge so it is rescheduled within its window. *)
let repair_deps s =
  let ii = Schedule.ii s.sched in
  let count = ref 0 in
  List.iter
    (fun (e : Ddg.edge) ->
      if Ddg.has_edge s.g e then
        match (Schedule.entry s.sched e.src, Schedule.entry s.sched e.dst)
        with
        | Some a, Some b ->
          let lat = Latency.of_edge s.lat s.g e in
          if b.cycle < a.cycle + lat - (ii * e.distance) then begin
            incr count;
            eject s e.dst
          end
        | None, _ | _, None -> ())
    (Ddg.edges s.g);
  !count

let pressure_ok s =
  List.for_all
    (fun bank ->
      match Topology.bank_capacity s.config bank with
      | Cap.Inf -> true
      | Cap.Finite cap ->
        Pressure.pressure s.press ~bank + invariant_residents s bank <= cap)
    (banks_of_config s.config)

(* Explicit rotating allocation per bank, with capacity reduced by the
   invariant residents. *)
let allocation_failure s =
  Tr.span s.trace Ev.Regalloc (fun () ->
      let ii = Schedule.ii s.sched in
      let lts = Pressure.lifetimes s.press in
      List.fold_left
        (fun acc bank ->
          match acc with
          | Some _ -> acc
          | None -> (
            match Topology.bank_capacity s.config bank with
            | Cap.Inf -> None
            | Cap.Finite cap -> (
              let capacity =
                Cap.Finite (max 0 (cap - invariant_residents s bank))
              in
              match
                Regalloc.allocate_bank ~trace:s.trace ~ii ~bank ~capacity
                  lts
              with
              | Some _ -> None
              | None -> Some bank)))
        None (banks_of_config s.config))

let all_scheduled s =
  List.for_all (fun v -> Schedule.is_scheduled s.sched v) (Ddg.nodes s.g)

(* ------------------------------------------------------------------ *)
(* One attempt at a given II                                           *)

let attempt config opts g0 ~order ~ii ~trace ~arena =
  let g = Ddg.copy g0 in
  let lat = Latency.make ~override:opts.load_override config in
  let sched = Schedule.create ~arena ~lat config ~ii in
  let s =
    {
      g;
      config;
      lat;
      sched;
      press = Pressure.create ~arena sched g;
      pq = Pqueue.create ();
      prio = Hashtbl.create 64;
      aux = Hashtbl.create 64;
      last_force = Hashtbl.create 64;
      spilled = Hashtbl.create 16;
      inv_spilled = Hashtbl.create 16;
      budget = opts.budget_ratio * max 1 (Ddg.num_nodes g);
      refills = 0;
      ratio = opts.budget_ratio;
      opts;
      n0 = max 1 (Ddg.num_nodes g);
      st =
        {
          m_ejections = 0;
          m_forcings = 0;
          m_value_spills = 0;
          m_invariant_spills = 0;
          m_comm_inserted = 0;
          m_attempts = 0;
        };
      trace;
      srev = 0;
      memo_srev = -1;
      memo_verdict = `Inserted 0;
    }
  in
  (* graph surgery invalidates affected lifetimes and the check memo *)
  Ddg.set_watcher g
    (Some
       (fun u ->
         s.srev <- s.srev + 1;
         Pressure.mark s.press u));
  List.iteri (fun i v -> set_prio s v (float_of_int i)) order;
  List.iter (fun v -> Pqueue.push s.pq ~priority:(prio_of s v) v) order;
  let schedule_fresh fresh =
    List.iter (fun (n, loc) -> schedule_node s n ~loc) fresh
  in
  let unfixable_steps = ref 0 in
  let rec loop () =
    if s.budget <= 0 then None
    else
      match Pqueue.pop s.pq with
      | Some u ->
        if (not (Ddg.mem s.g u)) || Schedule.is_scheduled s.sched u then
          loop ()
        else begin
          s.budget <- s.budget - 1;
          s.st.m_attempts <- s.st.m_attempts + 1;
          (match decide_loc s u with
          | `Splice -> splice_out s u
          | `Loc loc ->
            (* apply one route at a time: placing a fresh copy can eject
               or splice nodes that other pending plans refer to, so each
               plan is recomputed against the current graph *)
            let rec route_all guard =
              if guard > 0 && Ddg.mem s.g u then
                match routes_for s u ~loc with
                | [] -> ()
                | (edge, plan) :: _ ->
                  schedule_fresh (apply_plan s ~anchor:u edge plan);
                  route_all (guard - 1)
            in
            route_all 32;
            if Ddg.mem s.g u then schedule_node s u ~loc);
          (match check_insert_spill s with
          | `Unfixable ->
            (* a bank is over capacity with nothing left to spill right
               now; keep scheduling — ejections may shorten the
               offending lifetimes — but only for a bounded number of
               over-pressure steps, then restart at II+1 *)
            unfixable_steps := !unfixable_steps + 1;
            if !unfixable_steps > 4 then raise Attempt_failed
          | `Inserted _ -> ());
          loop ()
        end
      | None ->
        if not (all_scheduled s) then
          (* some node was descheduled without being requeued; give up *)
          None
        else if
          (repair_banks s ~schedule_fresh > 0 || repair_deps s > 0)
          && s.budget > 0
        then loop ()
        else begin
          prune_dead_comm s;
          if not (pressure_ok s) then begin
            match check_insert_spill s with
            | `Inserted n when n > 0 && s.budget > 0 -> loop ()
            | `Inserted _ | `Unfixable -> None
          end
          else
            match allocation_failure s with
            | None -> Some s
            | Some bank -> (
              match check_insert_spill ~force_bank:(Some bank) s with
              | `Inserted n when n > 0 && s.budget > 0 -> loop ()
              | `Inserted _ | `Unfixable -> None)
        end
  in
  let result = try loop () with Attempt_failed -> None in
  Ddg.set_watcher g None;
  result

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let schedule ?(opts = default_options) ?(trace = Tr.off) (config : Config.t)
    (g0 : Ddg.t) : (outcome, error) result =
  let t0 = Unix.gettimeofday () in
  let lat = Latency.make ~override:opts.load_override config in
  let mii = Mii.compute ~trace ~lat config g0 in
  let max_ii =
    match opts.max_ii with Some m -> m | None -> max (4 * mii) (mii + 128)
  in
  (* the priority order does not depend on II: compute it once *)
  let order =
    Tr.span trace Ev.Order (fun () ->
        match opts.ordering with
        | `Hrms -> Order.compute ~lat config g0
        | `Topological ->
          let asap, _ = Order.asap_alap lat g0 in
          List.sort
            (fun a b -> compare (asap a, a) (asap b, b))
            (Ddg.nodes g0))
  in
  let restarts = ref 0 in
  (* one arena serves every II attempt of this call: escalating re-uses
     the flat tables instead of reallocating them *)
  let arena = Arena.create () in
  let rec search ii =
    if ii > max_ii then Error (`No_schedule ii)
    else begin
      if Tr.enabled trace then Tr.emit trace (Ev.II_try ii);
      match attempt config opts g0 ~order ~ii ~trace ~arena with
      | Some s ->
        let seconds = Unix.gettimeofday () -. t0 in
        let bounds = Mii.bounds ~lat:s.lat config s.g in
        Ok
          {
            ii;
            mii;
            bounds;
            sc = Schedule.stage_count s.sched;
            schedule = s.sched;
            graph = s.g;
            invariant_residents = (fun b -> invariant_residents s b);
            seconds;
            stats =
              {
                ejections = s.st.m_ejections;
                forcings = s.st.m_forcings;
                value_spills = s.st.m_value_spills;
                invariant_spills = s.st.m_invariant_spills;
                comm_inserted = s.st.m_comm_inserted;
                attempts = s.st.m_attempts;
                ii_restarts = !restarts;
              };
          }
      | None ->
        incr restarts;
        (* the paper increments II by 1; after many failures we grow
           geometrically so pathological loops (tiny banks, big bodies)
           converge in reasonable time — the first 8 steps are faithful *)
        let step = if !restarts <= 8 then 1 else max 1 (ii / 8) in
        search (ii + step)
    end
  in
  Tr.span trace Ev.Schedule (fun () -> search mii)

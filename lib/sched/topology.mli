(** Operational semantics of the register-file organizations.

    This module answers, for a given {!Hcrf_machine.Config.t}: where can
    an operation execute, which bank receives the value it defines, from
    which bank does it read its operands, which hardware resources does
    it occupy, and which communication operations are needed to move a
    value between two banks.

    Conventions:
    - in a monolithic RF everything executes in the single cluster 0 and
      every value lives in bank [Local 0];
    - in a clustered RF ([xCy]) both FUs and memory ports are
      distributed: all operations execute in some cluster and define
      into its bank; cross-cluster flow needs a [Move];
    - in a hierarchical RF ([xCy-Sz]) compute and LoadR/StoreR
      operations execute in a cluster; memory operations execute
      globally on the memory ports and exchange values with the [Shared]
      bank;
    - with a third level present, memory operations exchange values with
      [L3] instead, and LoadR/StoreR executed at [Global] transfer
      between L3 and the shared bank over the [Lp3]/[Sp3] ports;
    - a bank with an explicit access-port constraint additionally owns
      [Rd]/[Wr] resources: every register read (one per operand) and
      every write-back reserves a port of the touched bank for one
      cycle.  Unconstrained banks own no such rows, so legacy
      configurations keep their exact legacy resource model. *)

type loc = Global | Cluster of int

val equal_loc : loc -> loc -> bool
val pp_loc : Format.formatter -> loc -> unit

type bank = Local of int | Shared | L3

val equal_bank : bank -> bank -> bool
val pp_bank : Format.formatter -> bank -> unit

type resource =
  | Fu of int   (** FU issue slots of cluster i *)
  | Mem of int  (** memory ports (per cluster when clustered, else pool 0) *)
  | Lp of int   (** input ports of bank i (LoadR / incoming move) *)
  | Sp of int   (** output ports of bank i (LoadR / outgoing move) *)
  | Bus         (** inter-cluster buses (clustered RF) *)
  | Rd of int   (** read ports of the bank with code i (constrained banks) *)
  | Wr of int   (** write ports of the bank with code i *)
  | Lp3         (** LoadR ports L3 -> shared (third level only) *)
  | Sp3         (** StoreR ports shared -> L3 (third level only) *)

val pp_resource : Format.formatter -> resource -> unit

(** Dense bank code: [Local i -> i], [Shared -> clusters],
    [L3 -> clusters + 1] — the index space of the [Rd]/[Wr] resources
    and of the scheduler's flat per-bank arrays. *)
val bank_code : Hcrf_machine.Config.t -> bank -> int

val bank_of_code : Hcrf_machine.Config.t -> int -> bank

(** Access-port constraint of a bank; [None] means uniformly provisioned
    (no [Rd]/[Wr] rows exist for it). *)
val bank_access :
  Hcrf_machine.Config.t -> bank -> Hcrf_machine.Rf.access option

(** Banks of the organization, in bank-code order. *)
val all_banks : Hcrf_machine.Config.t -> bank list

(** Whether the configuration has a third register-file level. *)
val has_l3 : Hcrf_machine.Config.t -> bool

(** Available units of a resource. *)
val units : Hcrf_machine.Config.t -> resource -> Hcrf_machine.Cap.t

(** All resources that exist in the configuration (for reservation-table
    sizing and validation). *)
val all_resources : Hcrf_machine.Config.t -> resource list

(** Candidate execution locations for an operation kind (empty when the
    kind does not exist in the organization, e.g. LoadR in a flat
    clustered RF). *)
val exec_locs : Hcrf_machine.Config.t -> Hcrf_ir.Op.kind -> loc list

(** Bank receiving the value defined by the kind executed at [loc];
    [None] when the operation defines no value. *)
val def_bank :
  Hcrf_machine.Config.t -> Hcrf_ir.Op.kind -> loc -> bank option

(** Bank an operation reads its register operands from.  A [Move] is
    special: it reads whichever local bank its producer is in. *)
val read_bank : Hcrf_machine.Config.t -> Hcrf_ir.Op.kind -> loc -> bank

(** Register operands the kind reads from a bank (one read port each). *)
val read_arity : Hcrf_ir.Op.kind -> int

(** Resources occupied by executing the kind at [loc], as (resource,
    consecutive cycles from issue) pairs.  [src] is the operand's bank —
    required for [Move], which occupies the source bank's output port.
    The same resource may appear in several entries (a two-operand read
    of one constrained bank); the reservation tables account such
    entries jointly. *)
val uses :
  Hcrf_machine.Config.t -> Hcrf_ir.Op.kind -> loc -> src:bank option ->
  (resource * int) list

val bank_capacity : Hcrf_machine.Config.t -> bank -> Hcrf_machine.Cap.t

(** Communication operations needed to make a value defined in
    [src_bank] readable from [dst_bank]: a copy chain, empty when the
    banks match. *)
val comm_path :
  Hcrf_machine.Config.t -> src_bank:bank -> dst_bank:bank ->
  (Hcrf_ir.Op.kind * loc) list

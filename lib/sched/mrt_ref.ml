(** Reference modulo reservation table (pre-flat implementation).

    This is the original association-based MRT, kept verbatim as the
    executable specification of {!Mrt}: the flat, data-oriented table
    used by the engine must be observationally equivalent on every
    operation sequence ([can_place]/[place]/[remove]/[conflicts]/
    [occupancy]), and the QCheck harness in [test/test_sched.ml] drives
    both against random traces to prove it.  Keep the two in sync: a
    semantic change here must be mirrored in {!Mrt} and vice versa. *)

open Hcrf_machine

type slot_state = { mutable count : int; mutable occupants : int list }

type t = {
  ii : int;
  config : Config.t;
  tables : (Topology.resource, slot_state array) Hashtbl.t;
  placed : (int, (Topology.resource * int * int) list) Hashtbl.t;
      (** node -> (resource, issue cycle, duration) list *)
}

let create (config : Config.t) ~ii =
  if ii < 1 then invalid_arg "Mrt_ref.create: ii < 1";
  let tables = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Hashtbl.replace tables r
        (Array.init ii (fun _ -> { count = 0; occupants = [] })))
    (Topology.all_resources config);
  { ii; config; tables; placed = Hashtbl.create 64 }

let slots t r =
  match Hashtbl.find_opt t.tables r with
  | Some a -> a
  | None ->
    Fmt.invalid_arg "Mrt_ref: resource %a not in configuration"
      Topology.pp_resource r

(* Occupied modulo slots of a reservation of [dur] cycles at [cycle]. *)
let reserved_slots t ~cycle ~dur =
  let dur = min dur t.ii in
  List.init dur (fun k -> ((cycle + k) mod t.ii + t.ii) mod t.ii)

(* Entries on the same resource (a two-operand read of one constrained
   bank) must fit *jointly*: group them per resource, longest first, and
   annotate each with its rank in the group.  Same-cycle reservations
   are nested intervals, so checking entry k's window against
   count + k is the aggregate per-slot demand test.  {!Mrt} compiles
   the identical ranking. *)
let ranked (uses : (Topology.resource * int) list) =
  let sorted =
    List.stable_sort
      (fun (r1, d1) (r2, d2) ->
        if r1 <> r2 then compare r1 r2 else compare d2 d1)
      uses
  in
  let rec annotate prev need = function
    | [] -> []
    | (r, d) :: tl ->
      let need = if prev = Some r then need + 1 else 1 in
      (r, d, need) :: annotate (Some r) need tl
  in
  annotate None 0 sorted

let fits_one t r ~cycle ~dur ~need =
  let a = slots t r in
  let u = Topology.units t.config r in
  List.for_all (fun s -> Cap.fits (a.(s).count + need) u)
    (reserved_slots t ~cycle ~dur)

(** Can [uses] all be reserved at [cycle]? *)
let can_place t (uses : (Topology.resource * int) list) ~cycle =
  List.for_all (fun (r, dur, need) -> fits_one t r ~cycle ~dur ~need)
    (ranked uses)

(** Reserve; the node must not already be placed. *)
let place t ~node (uses : (Topology.resource * int) list) ~cycle =
  if Hashtbl.mem t.placed node then
    Fmt.invalid_arg "Mrt_ref.place: node %d already placed" node;
  List.iter
    (fun (r, dur) ->
      let a = slots t r in
      List.iter
        (fun s ->
          a.(s).count <- a.(s).count + 1;
          a.(s).occupants <- node :: a.(s).occupants)
        (reserved_slots t ~cycle ~dur))
    uses;
  Hashtbl.replace t.placed node
    (List.map (fun (r, dur) -> (r, cycle, dur)) uses)

let is_placed t node = Hashtbl.mem t.placed node

let remove t ~node =
  match Hashtbl.find_opt t.placed node with
  | None -> ()
  | Some uses ->
    List.iter
      (fun (r, cycle, dur) ->
        let a = slots t r in
        List.iter
          (fun s ->
            a.(s).count <- a.(s).count - 1;
            a.(s).occupants <-
              (let removed = ref false in
               List.filter
                 (fun o ->
                   if o = node && not !removed then begin
                     removed := true;
                     false
                   end
                   else true)
                 a.(s).occupants))
          (reserved_slots t ~cycle ~dur))
      uses;
    Hashtbl.remove t.placed node

(** Nodes whose ejection would make room for [uses] at [cycle]: for every
    resource slot that is full, the most recently placed occupant. *)
let conflicts t (uses : (Topology.resource * int) list) ~cycle =
  List.concat_map
    (fun (r, dur, need) ->
      let a = slots t r in
      let u = Topology.units t.config r in
      List.filter_map
        (fun s ->
          if Cap.fits (a.(s).count + need) u then None
          else
            match a.(s).occupants with
            | o :: _ -> Some o
            | [] -> None)
        (reserved_slots t ~cycle ~dur))
    (ranked uses)
  |> List.sort_uniq compare

(** Occupancy count of resource [r] at modulo slot [s] (for tests and
    statistics). *)
let occupancy t r ~slot = (slots t r).(slot).count

(** Incrementally maintained per-bank register requirements (MaxLives).

    {!Lifetimes.of_schedule} + {!Lifetimes.pressure} recompute every
    lifetime from scratch; the engine needs the requirement after every
    single placement, which made the check quadratic in the loop size.
    This tracker keeps, for every bank, the per-modulo-slot count of
    simultaneously live values — exactly the [req] array the reference
    builds — and updates it by *deltas*: when a node's lifetime may have
    changed (it or a consumer was placed or ejected, or the graph was
    rewired under it), the node is marked dirty, and the next query
    subtracts its previously applied slot contribution and re-applies
    the fresh one.

    The invariant, checked by QCheck against the reference over random
    place/eject traces: after [flush], [req] equals the array
    {!Lifetimes.pressure} would build from {!Lifetimes.of_schedule},
    bank by bank and slot by slot, and {!lifetimes} returns exactly the
    reference's lifetime list (same records, same increasing-definition
    order — the spill heuristic breaks ties by list position, so order
    is part of the contract).

    Dirtiness sources (the engine wires these up):
    - [mark v] from the engine's place/unplace wrappers, for the node
      itself and its operand producers (placing a consumer extends the
      producer's lifetime);
    - [mark e.src] from the {!Ddg} edge watcher on every edge insertion
      and removal (graph surgery changes consumer sets). *)

open Hcrf_ir
open Hcrf_machine

type t = {
  sched : Schedule.t;
  g : Ddg.t;
  ii : int;
  nclusters : int;            (* bank index: Local i -> i, Shared -> nclusters *)
  req : int array;            (* bank * ii + slot -> live values *)
  mutable c_bank : int array; (* id -> applied bank index, -1 = none *)
  mutable c_start : int array;
  mutable c_stop : int array;
  mutable cap : int;
  mutable dirty : int array;  (* stack of marked ids *)
  mutable ndirty : int;
  mutable in_dirty : Bytes.t;
}

(* Arena slot ids (see {!Arena}). *)
let slot_req = 2
let slot_bank = 3
let slot_start = 4
let slot_stop = 5

let create ?arena (sched : Schedule.t) (g : Ddg.t) =
  let ii = Schedule.ii sched in
  let nclusters = Config.clusters sched.Schedule.config in
  let cells = (nclusters + 2) * ii in
  let cap = 256 in
  let req, c_bank, c_start, c_stop =
    match arena with
    | Some a ->
      ( Arena.ints a ~id:slot_req ~fill:0 cells,
        Arena.ints a ~id:slot_bank ~fill:(-1) cap,
        Arena.ints a ~id:slot_start ~fill:0 cap,
        Arena.ints a ~id:slot_stop ~fill:0 cap )
    | None ->
      ( Array.make cells 0, Array.make cap (-1), Array.make cap 0,
        Array.make cap 0 )
  in
  { sched; g; ii; nclusters; req; c_bank; c_start; c_stop; cap;
    dirty = Array.make 64 0; ndirty = 0; in_dirty = Bytes.make cap '\000' }

let bank_index t = function
  | Topology.Local i -> i
  | Topology.Shared -> t.nclusters
  | Topology.L3 -> t.nclusters + 1

let bank_decode t i =
  if i = t.nclusters then Topology.Shared
  else if i = t.nclusters + 1 then Topology.L3
  else Topology.Local i

let grow t id =
  let cap' = max (2 * t.cap) (id + 1) in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.cap;
    a'
  in
  t.c_bank <- extend t.c_bank (-1);
  t.c_start <- extend t.c_start 0;
  t.c_stop <- extend t.c_stop 0;
  let b = Bytes.make cap' '\000' in
  Bytes.blit t.in_dirty 0 b 0 t.cap;
  t.in_dirty <- b;
  t.cap <- cap'

(** Mark [v]'s lifetime as possibly changed; cheap and idempotent. *)
let mark t v =
  if v >= t.cap then grow t v;
  if Bytes.get t.in_dirty v = '\000' then begin
    Bytes.set t.in_dirty v '\001';
    if t.ndirty = Array.length t.dirty then begin
      let d = Array.make (2 * t.ndirty) 0 in
      Array.blit t.dirty 0 d 0 t.ndirty;
      t.dirty <- d
    end;
    t.dirty.(t.ndirty) <- v;
    t.ndirty <- t.ndirty + 1
  end

(* Add [sign] copies of the lifetime [start, stop) in bank row [b] to
   the slot counts — the same slot arithmetic as [Lifetimes.pressure]. *)
let apply t ~b ~start ~stop sign =
  let sp = stop - start in
  if sp > 0 then begin
    let base = b * t.ii in
    let full = sp / t.ii and rem = sp mod t.ii in
    if full > 0 then
      for k = 0 to t.ii - 1 do
        t.req.(base + k) <- t.req.(base + k) + (sign * full)
      done;
    let s0 = ((start mod t.ii) + t.ii) mod t.ii in
    for k = 0 to rem - 1 do
      let slot = base + ((s0 + k) mod t.ii) in
      t.req.(slot) <- t.req.(slot) + sign
    done
  end

let flush t =
  for i = 0 to t.ndirty - 1 do
    let v = t.dirty.(i) in
    Bytes.set t.in_dirty v '\000';
    (match t.c_bank.(v) with
    | -1 -> ()
    | b ->
      apply t ~b ~start:t.c_start.(v) ~stop:t.c_stop.(v) (-1);
      t.c_bank.(v) <- -1);
    if
      Ddg.mem t.g v
      && Op.defines_value (Ddg.kind t.g v)
      && Schedule.is_scheduled t.sched v
    then begin
      let e = Schedule.entry_exn t.sched v in
      let kind = Ddg.kind t.g v in
      let bank =
        match Topology.def_bank t.sched.Schedule.config kind e.loc with
        | Some b -> b
        | None -> assert false
      in
      let birth =
        e.Schedule.cycle + Latency.of_def t.sched.Schedule.lat ~id:v ~kind
      in
      let stop =
        List.fold_left
          (fun acc (edge : Ddg.edge) ->
            if Schedule.is_scheduled t.sched edge.dst then
              max acc
                (Schedule.cycle_of t.sched edge.dst + (t.ii * edge.distance))
            else acc)
          birth (Ddg.consumers t.g v)
      in
      let b = bank_index t bank in
      t.c_bank.(v) <- b;
      t.c_start.(v) <- birth;
      t.c_stop.(v) <- stop;
      apply t ~b ~start:birth ~stop 1
    end
  done;
  t.ndirty <- 0

(** MaxLives of [bank] (without the invariant-resident addition, which
    the caller owns).  Equals [Lifetimes.pressure ~ii ~bank
    (Lifetimes.of_schedule sched g)]. *)
let pressure t ~bank =
  flush t;
  let base = bank_index t bank * t.ii in
  let m = ref 0 in
  for k = 0 to t.ii - 1 do
    if t.req.(base + k) > !m then m := t.req.(base + k)
  done;
  !m

(** The current lifetime list, identical (records and order) to
    [Lifetimes.of_schedule sched g]. *)
let lifetimes t =
  flush t;
  let acc = ref [] in
  for v = t.cap - 1 downto 0 do
    if t.c_bank.(v) >= 0 then
      acc :=
        {
          Lifetimes.def = v;
          bank = bank_decode t t.c_bank.(v);
          start = t.c_start.(v);
          stop = t.c_stop.(v);
        }
        :: !acc
  done;
  !acc

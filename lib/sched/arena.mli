(** Reusable scratch buffers for per-II scheduler state.

    One arena serves one [Engine.schedule] call: each II attempt
    re-acquires its flat tables from the arena instead of allocating.
    Buffers are identified by small integer slot ids; an arena must not
    be shared by two live users of the same slot, nor across domains. *)

type t

val slots : int
val create : unit -> t

(** An int buffer of length >= [len], first [len] cells set to [fill].
    Only that prefix may be touched. *)
val ints : t -> id:int -> fill:int -> int -> int array

(** A buffer of [len] growable int stacks; capacities survive reuse,
    live lengths are the caller's business. *)
val stacks : t -> id:int -> int -> int array array

(** Remember a grown replacement buffer for [id]. *)
val keep_ints : t -> id:int -> int array -> unit

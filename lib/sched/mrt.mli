(** Modulo reservation table — flat, data-oriented implementation.

    Tracks, for every hardware resource and every slot in [0, II), how
    many units are occupied and by which nodes.  Non-pipelined
    operations occupy their resource for several consecutive cycles (all
    taken modulo II).  Occupancy is count-based: the table checks that
    no slot exceeds the unit count.

    Resources are encoded as small integer row codes over one flat
    counts array, so [can_place] is pure array probing; {!Mrt_ref} keeps
    the original association-based implementation as the executable
    specification, and QCheck asserts observational equivalence. *)

type t

(** Raises [Invalid_argument] for [ii < 1].  When [arena] is given, the
    table borrows its flat buffers from it (see {!Arena}); at most one
    live table may use a given arena. *)
val create : ?arena:Arena.t -> Hcrf_machine.Config.t -> ii:int -> t

(** Can all of [uses] (resource, duration) be reserved at [cycle]? *)
val can_place : t -> (Topology.resource * int) list -> cycle:int -> bool

(** Reserve; raises [Invalid_argument] if [node] is already placed. *)
val place :
  t -> node:int -> (Topology.resource * int) list -> cycle:int -> unit

val is_placed : t -> int -> bool

(** Release everything [node] holds (no-op when not placed). *)
val remove : t -> node:int -> unit

(** Nodes whose ejection would make room for [uses] at [cycle]: for
    every full resource slot, the most recently placed occupant. *)
val conflicts :
  t -> (Topology.resource * int) list -> cycle:int -> int list

(** Occupancy count of a resource at a modulo slot. *)
val occupancy : t -> Topology.resource -> slot:int -> int

(** {1 Precompiled uses}

    A [uses] list compiled once against a table can be probed at many
    cycles without list traversal or hashing — the scheduler's inner
    candidate loop.  Compiled uses are only valid for tables of the same
    configuration and II they were compiled against. *)

type cuses

(** Raises [Invalid_argument] if a resource is not in the
    configuration. *)
val compile : t -> (Topology.resource * int) list -> cuses

val can_place_c : t -> cuses -> cycle:int -> bool
val place_c : t -> node:int -> cuses -> cycle:int -> unit
val conflicts_c : t -> cuses -> cycle:int -> int list

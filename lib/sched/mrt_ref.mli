(** Reference modulo reservation table (pre-flat implementation).

    The original association-based MRT, kept as the executable
    specification for the flat {!Mrt}: QCheck drives both against random
    operation traces and asserts observational equivalence.  Not used by
    the engine. *)

type t

(** Raises [Invalid_argument] for [ii < 1]. *)
val create : Hcrf_machine.Config.t -> ii:int -> t

(** Can all of [uses] (resource, duration) be reserved at [cycle]? *)
val can_place : t -> (Topology.resource * int) list -> cycle:int -> bool

(** Reserve; raises [Invalid_argument] if [node] is already placed. *)
val place :
  t -> node:int -> (Topology.resource * int) list -> cycle:int -> unit

val is_placed : t -> int -> bool

(** Release everything [node] holds (no-op when not placed). *)
val remove : t -> node:int -> unit

(** Nodes whose ejection would make room for [uses] at [cycle]: for
    every full resource slot, the most recently placed occupant. *)
val conflicts :
  t -> (Topology.resource * int) list -> cycle:int -> int list

(** Occupancy count of a resource at a modulo slot. *)
val occupancy : t -> Topology.resource -> slot:int -> int

(** Modulo reservation table — flat, data-oriented implementation.

    Tracks, for every hardware resource and every slot in [0, II), how
    many units are occupied and by which nodes.  Non-pipelined operations
    occupy their resource for several consecutive cycles (all taken modulo
    II).  Occupancy is count-based: the table checks that no slot exceeds
    the unit count, which is the standard (and, for interval-shaped
    reservations, safe in practice) feasibility test.

    Layout: resources are encoded as small integer row codes
    ([5 * cluster + tag]); one flat [counts] array of [rows * II] ints
    answers [can_place] with pure array probes (no hashing, no list
    allocation), and per-(row, slot) occupant stacks — int arrays with a
    separate length column — support the (rare) force-and-eject path.
    Observational equivalence with the original association-based table
    ({!Mrt_ref}) is asserted by QCheck over random operation traces; the
    eject-victim choice of [conflicts] (most recently placed occupant
    first) and the duplicate-aware [remove] follow the reference
    semantics exactly.

    [uses] lists can be precompiled ({!compile}) into int-coded arrays
    once per (op kind, location, source bank) and probed at many cycles
    without touching the original list — the scheduler's inner loop. *)

open Hcrf_machine

(* Row code of a resource.  Legacy rows keep their historical codes
   (5 * cluster + tag; [Bus] has no cluster and takes the otherwise-
   unused tag 4 of cluster 0); the generalized rows are appended after
   them so tables of legacy configurations are laid out identically.
   With [x] clusters and bank codes b in 0..x+1 (locals, shared, L3):
   [Rd b -> 5x+5+2b], [Wr b -> 5x+5+2b+1], then [Lp3]/[Sp3] — 7x+11
   rows in all. *)
let code ~x = function
  | Topology.Fu i -> 5 * i
  | Topology.Mem i -> (5 * i) + 1
  | Topology.Lp i -> (5 * i) + 2
  | Topology.Sp i -> (5 * i) + 3
  | Topology.Bus -> 4
  | Topology.Rd b -> (5 * x) + 5 + (2 * b)
  | Topology.Wr b -> (5 * x) + 5 + (2 * b) + 1
  | Topology.Lp3 -> (5 * x) + 5 + (2 * (x + 2))
  | Topology.Sp3 -> (5 * x) + 5 + (2 * (x + 2)) + 1

type t = {
  ii : int;
  config : Config.t;
  x : int;                 (* clusters, for the row coding *)
  rows : int;
  valid : bool array;      (* row -> resource exists in the configuration *)
  units : int array;       (* row -> unit count (max_int encodes Cap.Inf) *)
  counts : int array;      (* row * ii + slot -> occupied units *)
  occ : int array array;   (* row * ii + slot -> occupant stack *)
  occ_len : int array;     (* live length of each occupant stack *)
  placed : (int, (int * int * int) array) Hashtbl.t;
      (* node -> (row, issue cycle, duration) per use *)
}

(* Arena slot ids (see {!Arena}). *)
let slot_counts = 0
let slot_occ_len = 1
let slot_stacks = 0

let create ?arena (config : Config.t) ~ii =
  if ii < 1 then invalid_arg "Mrt.create: ii < 1";
  let x = Config.clusters config in
  let rows = (7 * x) + 11 in
  let valid = Array.make rows false in
  let units = Array.make rows 0 in
  List.iter
    (fun r ->
      let c = code ~x r in
      valid.(c) <- true;
      units.(c) <-
        (match Topology.units config r with
        | Cap.Inf -> max_int
        | Cap.Finite n -> n))
    (Topology.all_resources config);
  let cells = rows * ii in
  let counts, occ, occ_len =
    match arena with
    | Some a ->
      ( Arena.ints a ~id:slot_counts ~fill:0 cells,
        Arena.stacks a ~id:slot_stacks cells,
        Arena.ints a ~id:slot_occ_len ~fill:0 cells )
    | None -> (Array.make cells 0, Array.make cells [||], Array.make cells 0)
  in
  { ii; config; x; rows; valid; units; counts; occ; occ_len;
    placed = Hashtbl.create 64 }

let bad_resource r =
  Fmt.invalid_arg "Mrt: resource %a not in configuration"
    Topology.pp_resource r

let row t r =
  let c = code ~x:t.x r in
  if c >= t.rows || not t.valid.(c) then bad_resource r;
  c

(* Modulo slot of [cycle + k]; cycles may be negative. *)
let smod t c =
  let m = c mod t.ii in
  if m < 0 then m + t.ii else m

(* ------------------------------------------------------------------ *)
(* Precompiled uses                                                    *)

type cuses = { urows : int array; udurs : int array; uneeds : int array }

(* Entries touching the same row (a two-operand read of one constrained
   bank) must fit *jointly*: compilation groups them per row, longest
   reservation first, and annotates each with its rank in the group.
   All same-cycle reservations are nested intervals, so checking entry
   k's window against count + k is exactly the aggregate per-slot demand
   test; a singleton entry keeps need = 1 and the historical probe. *)
let compile t (uses : (Topology.resource * int) list) =
  let ranked =
    List.stable_sort
      (fun (r1, d1) (r2, d2) ->
        if r1 <> r2 then compare r1 r2 else compare d2 d1)
      (List.map (fun (r, dur) -> (row t r, dur)) uses)
  in
  let n = List.length ranked in
  let urows = Array.make n 0
  and udurs = Array.make n 0
  and uneeds = Array.make n 0 in
  let rec fill i prev need = function
    | [] -> ()
    | (r, d) :: tl ->
      let need = if r = prev then need + 1 else 1 in
      urows.(i) <- r;
      udurs.(i) <- d;
      uneeds.(i) <- need;
      fill (i + 1) r need tl
  in
  fill 0 (-1) 0 ranked;
  { urows; udurs; uneeds }

let fits_row t ~r ~cycle ~dur ~need =
  let u = t.units.(r) in
  if u = max_int then true
  else begin
    let dur = if dur > t.ii then t.ii else dur in
    let base = r * t.ii in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < dur do
      if t.counts.(base + smod t (cycle + !k)) + need > u then ok := false;
      incr k
    done;
    !ok
  end

let can_place_c t (u : cuses) ~cycle =
  let ok = ref true in
  let i = ref 0 in
  let n = Array.length u.urows in
  while !ok && !i < n do
    if
      not
        (fits_row t ~r:u.urows.(!i) ~cycle ~dur:u.udurs.(!i)
           ~need:u.uneeds.(!i))
    then ok := false;
    incr i
  done;
  !ok

(* Occupant stack push/pop-one for cell [idx]. *)
let push_occ t idx node =
  let st = t.occ.(idx) in
  let len = t.occ_len.(idx) in
  let st =
    if len < Array.length st then st
    else begin
      let st' = Array.make (max 4 (2 * Array.length st)) 0 in
      Array.blit st 0 st' 0 len;
      t.occ.(idx) <- st';
      st'
    end
  in
  st.(len) <- node;
  t.occ_len.(idx) <- len + 1

(* Remove the most recently pushed occurrence of [node] (= the first
   occurrence from the head of the reference implementation's list). *)
let remove_occ t idx node =
  let st = t.occ.(idx) in
  let len = t.occ_len.(idx) in
  let i = ref (len - 1) in
  while !i >= 0 && st.(!i) <> node do decr i done;
  if !i >= 0 then begin
    for j = !i to len - 2 do
      st.(j) <- st.(j + 1)
    done;
    t.occ_len.(idx) <- len - 1
  end

let place_c t ~node (u : cuses) ~cycle =
  if Hashtbl.mem t.placed node then
    Fmt.invalid_arg "Mrt.place: node %d already placed" node;
  let n = Array.length u.urows in
  let record = Array.make n (0, 0, 0) in
  for i = 0 to n - 1 do
    let r = u.urows.(i) and dur = u.udurs.(i) in
    let base = r * t.ii in
    let d = if dur > t.ii then t.ii else dur in
    for k = 0 to d - 1 do
      let idx = base + smod t (cycle + k) in
      t.counts.(idx) <- t.counts.(idx) + 1;
      push_occ t idx node
    done;
    record.(i) <- (r, cycle, dur)
  done;
  Hashtbl.replace t.placed node record

let is_placed t node = Hashtbl.mem t.placed node

let remove t ~node =
  match Hashtbl.find_opt t.placed node with
  | None -> ()
  | Some record ->
    Array.iter
      (fun (r, cycle, dur) ->
        let base = r * t.ii in
        let d = if dur > t.ii then t.ii else dur in
        for k = 0 to d - 1 do
          let idx = base + smod t (cycle + k) in
          t.counts.(idx) <- t.counts.(idx) - 1;
          remove_occ t idx node
        done)
      record;
    Hashtbl.remove t.placed node

let conflicts_c t (u : cuses) ~cycle =
  let acc = ref [] in
  let n = Array.length u.urows in
  for i = n - 1 downto 0 do
    let r = u.urows.(i) and dur = u.udurs.(i) and need = u.uneeds.(i) in
    let un = t.units.(r) in
    if un < max_int then begin
      let base = r * t.ii in
      let d = if dur > t.ii then t.ii else dur in
      for k = d - 1 downto 0 do
        let idx = base + smod t (cycle + k) in
        if t.counts.(idx) + need > un && t.occ_len.(idx) > 0 then
          acc := t.occ.(idx).(t.occ_len.(idx) - 1) :: !acc
      done
    end
  done;
  List.sort_uniq compare !acc

(* ------------------------------------------------------------------ *)
(* List-based interface (compatibility; compiles on the fly)           *)

let can_place t uses ~cycle = can_place_c t (compile t uses) ~cycle
let place t ~node uses ~cycle = place_c t ~node (compile t uses) ~cycle
let conflicts t uses ~cycle = conflicts_c t (compile t uses) ~cycle

(** Occupancy count of resource [r] at modulo slot [s] (for tests and
    statistics). *)
let occupancy t r ~slot = t.counts.((row t r * t.ii) + slot)

(** Partial (and, eventually, complete) modulo schedules.

    An entry assigns a node an issue cycle (in the flat, non-modulo time
    axis — stage count falls out of the maximum cycle) and an execution
    location.  The reservation table is kept in sync by
    [place]/[unplace].

    [estart]/[lstart] are the classic windows derived from the
    *scheduled* neighbours: a node may issue at cycle c only if
    [c >= cycle(p) + latency(e) - II * distance(e)] for scheduled
    predecessors p, and symmetrically for scheduled successors.

    Entries live in flat per-node int columns (no hashing on the hot
    path); reservation vectors are precompiled per (op kind, location,
    Move source bank) and probed via {!prepare_uses} /
    {!can_place_prepared} in the engine's candidate scan. *)

type entry = { cycle : int; loc : Topology.loc }

type t = {
  config : Hcrf_machine.Config.t;
  ii : int;
  lat : Latency.t;
  mrt : Mrt.t;
  nclusters : int;
  mutable e_cycle : int array;  (** id -> issue cycle; [min_int] = unscheduled *)
  mutable e_loc : int array;    (** id -> location code (-1 Global, i cluster) *)
  mutable e_bank : int array;   (** id -> def-bank index, -1 when none *)
  mutable cap : int;            (** length of the entry columns *)
  mutable nsched : int;
  bank_defs : int array;        (** bank index -> scheduled defs there *)
  ucache : (int, Mrt.cuses) Hashtbl.t;
  arena : Arena.t option;
}

val create :
  ?arena:Arena.t -> ?lat:Latency.t -> Hcrf_machine.Config.t -> ii:int -> t

val ii : t -> int
val is_scheduled : t -> int -> bool
val entry : t -> int -> entry option

(** Raises [Invalid_argument] when not scheduled. *)
val entry_exn : t -> int -> entry

val cycle_of : t -> int -> int
val loc_of : t -> int -> Topology.loc

(** Scheduled node ids, in increasing id order. *)
val scheduled_nodes : t -> int list

val num_scheduled : t -> int

(** Bank holding the value defined by scheduled node [v], if any. *)
val def_bank : t -> Hcrf_ir.Ddg.t -> int -> Topology.bank option

(** Scheduled definitions currently living in [bank] — O(1); the
    cluster-selection and down-copy heuristics' fill measure. *)
val bank_def_count : t -> Topology.bank -> int

(** Source bank for a [Move]'s reservation: the bank of its (scheduled)
    producer. *)
val move_src_bank : t -> Hcrf_ir.Ddg.t -> int -> Topology.bank option

(** The resource reservations of [v] at [loc]. *)
val uses_of :
  t -> Hcrf_ir.Ddg.t -> int -> loc:Topology.loc ->
  (Topology.resource * int) list

(** Earliest legal issue cycle given the scheduled predecessors. *)
val estart : t -> Hcrf_ir.Ddg.t -> int -> int

(** Latest legal issue cycle given the scheduled successors; [None] when
    no successor is scheduled. *)
val lstart : t -> Hcrf_ir.Ddg.t -> int -> int option

(** Deliberate engine faults for differential testing.  [Lax_resources]
    makes {!can_place} ignore the reservation table entirely, so the
    engine builds resource-oversubscribed schedules that an independent
    {!Validate.check} must reject — the fuzzer's canary.  The flag is
    global and read-only during scheduling; set it only from tests and
    fuzzing campaigns, and reset it afterwards. *)
type fault = Lax_resources

val fault : fault option ref

(** {1 Precompiled probing}

    [prepare_uses] compiles (and caches) the reservation vector of [v]
    at [loc]; the [_prepared] variants probe/commit it without
    rebuilding the [uses] list.  The vector is only valid while the
    inputs that chose it hold — for a [Move], the producer's bank. *)

val prepare_uses :
  t -> Hcrf_ir.Ddg.t -> int -> loc:Topology.loc -> Mrt.cuses

val can_place_prepared : t -> Mrt.cuses -> cycle:int -> bool

(** Raises [Invalid_argument] when already placed. *)
val place_prepared :
  t -> Hcrf_ir.Ddg.t -> int -> Mrt.cuses -> cycle:int ->
  loc:Topology.loc -> unit

val conflicts_prepared : t -> Mrt.cuses -> cycle:int -> int list

val can_place :
  t -> Hcrf_ir.Ddg.t -> int -> cycle:int -> loc:Topology.loc -> bool

(** Raises [Invalid_argument] when already placed. *)
val place :
  t -> Hcrf_ir.Ddg.t -> int -> cycle:int -> loc:Topology.loc -> unit

val unplace : t -> int -> unit

(** Nodes that must be ejected to reserve [v]'s resources at [cycle]. *)
val resource_conflicts :
  t -> Hcrf_ir.Ddg.t -> int -> cycle:int -> loc:Topology.loc -> int list

(** Scheduled neighbours whose dependence constraints are violated by
    [v] issuing at [cycle]. *)
val dependence_violations :
  t -> Hcrf_ir.Ddg.t -> int -> cycle:int -> int list

val max_cycle : t -> int

(** Number of stages of II cycles in the kernel. *)
val stage_count : t -> int

val pp : Format.formatter -> t -> unit

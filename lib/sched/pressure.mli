(** Incrementally maintained per-bank register requirements (MaxLives).

    Keeps the per-bank, per-modulo-slot count of simultaneously live
    values in sync with the schedule by deltas, so the engine's
    after-every-placement capacity check costs O(banks × II) instead of
    a full {!Lifetimes.of_schedule} recomputation.  Equivalence with the
    reference is part of the contract (and QCheck-verified): after any
    mark/flush sequence, {!pressure} equals [Lifetimes.pressure] of
    [Lifetimes.of_schedule], and {!lifetimes} returns the reference's
    exact list (same records, same increasing-definition order).

    The owner must [mark] every node whose lifetime may have changed:
    the node and its operand producers on place/unplace, and [e.src] on
    every edge change (wire {!Hcrf_ir.Ddg.set_watcher} to [mark]).
    Queries flush lazily. *)

type t

(** [create ?arena sched g]: an empty tracker for [sched]/[g]; at most
    one live tracker may borrow a given arena's pressure slots. *)
val create : ?arena:Arena.t -> Schedule.t -> Hcrf_ir.Ddg.t -> t

(** Mark [v]'s lifetime as possibly changed; cheap and idempotent. *)
val mark : t -> int -> unit

(** MaxLives of [bank], excluding invariant residents (the caller adds
    them, as with [Lifetimes.pressure]). *)
val pressure : t -> bank:Topology.bank -> int

(** The current lifetime list, identical to [Lifetimes.of_schedule]. *)
val lifetimes : t -> Lifetimes.lifetime list

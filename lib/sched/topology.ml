(** Operational semantics of the register-file organizations.

    This module answers, for a given {!Hcrf_machine.Config.t}: where can an
    operation execute, which bank receives the value it defines, from which
    bank does it read its operands, which hardware resources does it
    occupy, and which communication operations are needed to move a value
    between two banks.

    Conventions:
    - In a monolithic RF everything executes in the single cluster 0 and
      every value lives in bank [Local 0].
    - In a clustered RF ([xCy]) both FUs and memory ports are distributed:
      all operations execute in some cluster and define into its bank;
      cross-cluster flow needs a [Move].
    - In a hierarchical RF ([xCy-Sz]) compute and LoadR/StoreR operations
      execute in a cluster; memory operations execute globally on the
      memory ports and exchange values with the [Shared] bank.
    - With a third level ([xCy-Sz-L3:w]) memory operations exchange values
      with [L3] instead; LoadR/StoreR executed at [Global] transfer
      between L3 and the shared bank over the [Lp3]/[Sp3] ports.
    - A bank with an explicit access-port constraint ([@r..w..] in the
      notation) additionally owns [Rd]/[Wr] resources: every register
      read (one per operand) and every register write-back reserves a
      port of the bank it touches for one cycle. *)

open Hcrf_ir
open Hcrf_machine

type loc = Global | Cluster of int

let equal_loc a b =
  match (a, b) with
  | Global, Global -> true
  | Cluster i, Cluster j -> i = j
  | Global, Cluster _ | Cluster _, Global -> false

let pp_loc ppf = function
  | Global -> Fmt.string ppf "global"
  | Cluster i -> Fmt.pf ppf "c%d" i

type bank = Local of int | Shared | L3

let equal_bank a b =
  match (a, b) with
  | Shared, Shared -> true
  | L3, L3 -> true
  | Local i, Local j -> i = j
  | (Shared | L3 | Local _), _ -> false

let pp_bank ppf = function
  | Shared -> Fmt.string ppf "S"
  | L3 -> Fmt.string ppf "L3"
  | Local i -> Fmt.pf ppf "L%d" i

type resource =
  | Fu of int   (** FU issue slots of cluster i *)
  | Mem of int  (** memory ports (per cluster when clustered, else pool 0) *)
  | Lp of int   (** input ports of bank i (LoadR / incoming move) *)
  | Sp of int   (** output ports of bank i (LoadR / outgoing move) *)
  | Bus         (** inter-cluster buses (clustered RF) *)
  | Rd of int   (** read ports of the bank with code i (constrained banks) *)
  | Wr of int   (** write ports of the bank with code i *)
  | Lp3         (** LoadR ports L3 -> shared (third level only) *)
  | Sp3         (** StoreR ports shared -> L3 (third level only) *)

let pp_resource ppf = function
  | Fu i -> Fmt.pf ppf "fu%d" i
  | Mem i -> Fmt.pf ppf "mem%d" i
  | Lp i -> Fmt.pf ppf "lp%d" i
  | Sp i -> Fmt.pf ppf "sp%d" i
  | Bus -> Fmt.string ppf "bus"
  | Rd i -> Fmt.pf ppf "rd%d" i
  | Wr i -> Fmt.pf ppf "wr%d" i
  | Lp3 -> Fmt.string ppf "l3lp"
  | Sp3 -> Fmt.string ppf "l3sp"

let level3 (c : Config.t) = Rf.level3_of c.rf
let has_l3 (c : Config.t) = level3 c <> None

(** Dense bank code: [Local i -> i], [Shared -> clusters],
    [L3 -> clusters + 1] — the index space of the [Rd]/[Wr] resources
    and of every flat per-bank array in the scheduler. *)
let bank_code (c : Config.t) = function
  | Local i -> i
  | Shared -> Config.clusters c
  | L3 -> Config.clusters c + 1

let bank_of_code (c : Config.t) i =
  let x = Config.clusters c in
  if i = x then Shared else if i = x + 1 then L3 else Local i

(** Access-port constraint of a bank ([None]: uniformly provisioned,
    no [Rd]/[Wr] rows exist for it). *)
let bank_access (c : Config.t) = function
  | Local _ -> Rf.local_access c.rf
  | Shared -> Rf.shared_access c.rf
  | L3 -> Option.bind (level3 c) (fun l -> l.Rf.l3_access)

(** Available units of a resource. *)
let units (c : Config.t) = function
  | Fu _ -> Cap.Finite (Config.fus_per_cluster c)
  | Mem _ -> Cap.Finite (Config.mem_ports_per_cluster c)
  | Lp _ -> Rf.lp c.rf
  | Sp _ -> Rf.sp c.rf
  | Bus -> (
    match c.rf with
    | Rf.Clustered { buses; _ } -> buses
    | Rf.Monolithic _ | Rf.Hierarchical _ -> Cap.Inf)
  | Rd b -> (
    match bank_access c (bank_of_code c b) with
    | Some a -> a.Rf.pr
    | None -> Cap.Inf)
  | Wr b -> (
    match bank_access c (bank_of_code c b) with
    | Some a -> a.Rf.pw
    | None -> Cap.Inf)
  | Lp3 -> (
    match level3 c with Some l -> l.Rf.l3_lp | None -> Cap.Inf)
  | Sp3 -> (
    match level3 c with Some l -> l.Rf.l3_sp | None -> Cap.Inf)

(* Banks of the organization, in bank-code order. *)
let all_banks (c : Config.t) =
  let x = Config.clusters c in
  let locals = List.init x (fun i -> Local i) in
  match c.rf with
  | Rf.Monolithic _ | Rf.Clustered _ -> locals
  | Rf.Hierarchical _ ->
    locals @ [ Shared ] @ (if has_l3 c then [ L3 ] else [])

(** All resources that exist in the configuration (for validation and
    reservation-table sizing).  The generalized rows ([Rd]/[Wr] of
    access-constrained banks, [Lp3]/[Sp3] of a third level) come after
    the legacy ones, and only when configured. *)
let all_resources (c : Config.t) =
  let x = Config.clusters c in
  let clusters f = List.init x f in
  let legacy =
    match c.rf with
    | Rf.Monolithic _ -> [ Fu 0; Mem 0 ]
    | Rf.Clustered _ ->
      clusters (fun i -> Fu i)
      @ clusters (fun i -> Mem i)
      @ clusters (fun i -> Lp i)
      @ clusters (fun i -> Sp i)
      @ [ Bus ]
    | Rf.Hierarchical _ ->
      clusters (fun i -> Fu i)
      @ [ Mem 0 ]
      @ clusters (fun i -> Lp i)
      @ clusters (fun i -> Sp i)
  in
  let ports =
    List.concat_map
      (fun b ->
        if bank_access c b <> None then
          [ Rd (bank_code c b); Wr (bank_code c b) ]
        else [])
      (all_banks c)
  in
  let l3 = if has_l3 c then [ Lp3; Sp3 ] else [] in
  legacy @ ports @ l3

(** Candidate execution locations for an operation kind. *)
let exec_locs (c : Config.t) (k : Op.kind) : loc list =
  let x = Config.clusters c in
  let clusters () = List.init x (fun i -> Cluster i) in
  match c.rf with
  | Rf.Monolithic _ -> [ Cluster 0 ]
  | Rf.Clustered _ -> (
    match k with
    | Load_r | Store_r -> [] (* no hierarchy to move through *)
    | Fadd | Fmul | Fdiv | Fsqrt | Load | Store | Move | Spill_load
    | Spill_store -> clusters ())
  | Rf.Hierarchical _ -> (
    match k with
    | Load_r | Store_r ->
      (* at Global a LoadR/StoreR transfers between L3 and the shared
         bank over Lp3/Sp3 *)
      clusters () @ (if has_l3 c then [ Global ] else [])
    | Fadd | Fmul | Fdiv | Fsqrt | Move -> clusters ()
    | Load | Store | Spill_load | Spill_store -> [ Global ])

(** Bank receiving the value defined by kind [k] executed at [loc];
    [None] when the op defines no value. *)
let def_bank (c : Config.t) (k : Op.kind) (loc : loc) : bank option =
  if not (Op.defines_value k) then None
  else
    match (c.rf, k, loc) with
    | Rf.Monolithic _, _, _ -> Some (Local 0)
    | Rf.Clustered _, _, Cluster i -> Some (Local i)
    | Rf.Clustered _, _, Global -> invalid_arg "def_bank: global in clustered"
    | Rf.Hierarchical _, (Load | Spill_load), Global ->
      Some (if has_l3 c then L3 else Shared)
    | Rf.Hierarchical _, Store_r, Cluster _ -> Some Shared
    | Rf.Hierarchical _, Store_r, Global when has_l3 c -> Some L3
    | Rf.Hierarchical _, Load_r, Global when has_l3 c -> Some Shared
    | Rf.Hierarchical _, (Fadd | Fmul | Fdiv | Fsqrt | Move | Load_r),
      Cluster i ->
      Some (Local i)
    | Rf.Hierarchical _, _, _ ->
      Fmt.invalid_arg "def_bank: %s at %a in hierarchical RF"
        (Op.kind_name k) pp_loc loc

(** Bank an operation reads its operands from. *)
let read_bank (c : Config.t) (k : Op.kind) (loc : loc) : bank =
  match (c.rf, k, loc) with
  | Rf.Monolithic _, _, _ -> Local 0
  | Rf.Clustered _, _, Cluster i -> Local i
  | Rf.Clustered _, _, Global -> invalid_arg "read_bank: global in clustered"
  | Rf.Hierarchical _, Load_r, Global when has_l3 c -> L3
  | Rf.Hierarchical _, Store_r, Global when has_l3 c -> Shared
  | Rf.Hierarchical _, (Store | Spill_store | Load_r), _ ->
    if has_l3 c && not (Op.equal_kind k Load_r) then L3 else Shared
  | Rf.Hierarchical _, (Fadd | Fmul | Fdiv | Fsqrt | Store_r | Move),
    Cluster i ->
    Local i
  | Rf.Hierarchical _, (Load | Spill_load), _ ->
    (* loads read address regs, not modeled; value side is the memory-
       facing bank *)
    if has_l3 c then L3 else Shared
  | Rf.Hierarchical _, _, _ ->
    Fmt.invalid_arg "read_bank: %s at %a in hierarchical RF"
      (Op.kind_name k) pp_loc loc

(* Load_r reads the shared bank even though it executes in a cluster:
   its operand must live in [Shared]. *)

(* Register operands read from a bank: a read port per operand. *)
let read_arity = function
  | Op.Fadd | Op.Fmul | Op.Fdiv | Op.Fsqrt -> 2
  | Op.Move | Op.Store_r | Op.Load_r | Op.Store | Op.Spill_store -> 1
  | Op.Load | Op.Spill_load -> 0

(* Rd/Wr reservations of [k] at [loc], only for access-constrained
   banks — absent constraints add no rows, keeping legacy reservation
   vectors (and schedules) bit-identical. *)
let port_uses (c : Config.t) (k : Op.kind) (loc : loc) ~(src : bank option) =
  let reads =
    let n = read_arity k in
    if n = 0 then []
    else
      let rb =
        match (k, src) with Op.Move, Some b -> b | _ -> read_bank c k loc
      in
      match bank_access c rb with
      | None -> []
      | Some _ -> List.init n (fun _ -> (Rd (bank_code c rb), 1))
  in
  let writes =
    match def_bank c k loc with
    | Some b when bank_access c b <> None -> [ (Wr (bank_code c b), 1) ]
    | Some _ | None -> []
  in
  reads @ writes

(** Resources occupied by executing [k] at [loc].  [src] is the bank the
    (single) operand lives in — needed for [Move], which occupies the
    output port of the source bank.  Each entry is (resource, number of
    consecutive cycles occupied starting at the issue cycle); the same
    resource may appear twice (a two-operand read of one constrained
    bank), and the reservation tables account the entries jointly. *)
let uses (c : Config.t) (k : Op.kind) (loc : loc) ~(src : bank option) :
    (resource * int) list =
  let dur = if Latencies.pipelined k then 1 else Config.op_latency c k in
  let cluster_of = function
    | Cluster i -> i
    | Global -> 0
  in
  let base =
    match k with
    | Fadd | Fmul | Fdiv | Fsqrt -> [ (Fu (cluster_of loc), dur) ]
    | Load | Store | Spill_load | Spill_store ->
      [ (Mem (cluster_of loc), 1) ]
    | Load_r -> (
      match loc with
      | Global -> [ (Lp3, 1) ]
      | Cluster i -> [ (Lp i, 1) ])
    | Store_r -> (
      match loc with
      | Global -> [ (Sp3, 1) ]
      | Cluster i -> [ (Sp i, 1) ])
    | Move -> (
      let dst = cluster_of loc in
      match src with
      | Some (Local s) -> [ (Sp s, 1); (Bus, 1); (Lp dst, 1) ]
      | Some (Shared | L3) | None ->
        invalid_arg "Topology.uses: Move needs a local source bank")
  in
  base @ port_uses c k loc ~src

(** Capacity of a bank. *)
let bank_capacity (c : Config.t) = function
  | Local _ -> Rf.local_regs c.rf
  | Shared -> Rf.shared_regs c.rf
  | L3 -> Rf.l3_regs c.rf

(** Communication operations needed to make a value defined in [src_bank]
    readable from [dst_bank]: a list of (op kind, execution loc) forming a
    copy chain.  Empty when the banks match. *)
let comm_path (c : Config.t) ~(src_bank : bank) ~(dst_bank : bank) :
    (Op.kind * loc) list =
  if equal_bank src_bank dst_bank then []
  else
    match (c.rf, src_bank, dst_bank) with
    | Rf.Monolithic _, _, _ -> []
    | Rf.Clustered _, Local _, Local d -> [ (Op.Move, Cluster d) ]
      (* the Move occupies Sp s via ~src at reservation time *)
    | Rf.Clustered _, _, _ ->
      invalid_arg "comm_path: shared/L3 bank in clustered RF"
    | Rf.Hierarchical _, Local s, Shared -> [ (Op.Store_r, Cluster s) ]
    | Rf.Hierarchical _, Shared, Local d -> [ (Op.Load_r, Cluster d) ]
    | Rf.Hierarchical _, Local s, Local d ->
      [ (Op.Store_r, Cluster s); (Op.Load_r, Cluster d) ]
    | Rf.Hierarchical _, Shared, Shared -> []
    | Rf.Hierarchical _, Shared, L3 when has_l3 c -> [ (Op.Store_r, Global) ]
    | Rf.Hierarchical _, L3, Shared when has_l3 c -> [ (Op.Load_r, Global) ]
    | Rf.Hierarchical _, Local s, L3 when has_l3 c ->
      [ (Op.Store_r, Cluster s); (Op.Store_r, Global) ]
    | Rf.Hierarchical _, L3, Local d when has_l3 c ->
      [ (Op.Load_r, Global); (Op.Load_r, Cluster d) ]
    | Rf.Hierarchical _, L3, L3 -> []
    | Rf.Hierarchical _, _, _ ->
      invalid_arg "comm_path: L3 bank without a third level"

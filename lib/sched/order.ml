(** HRMS-style node ordering.

    HRMS [23] pre-orders nodes so that (a) recurrences are dealt with
    first, hardest first, and (b) when a node is scheduled, the neighbours
    already in the partial schedule lie (mostly) on one side of it, which
    keeps lifetimes short.  We implement that intent: recurrence SCCs in
    decreasing RecMII order, each preceded by the nodes on dependence
    paths connecting it to the already-ordered region, followed by a
    neighbourhood expansion that always appends a node adjacent to the
    ordered region with minimum mobility (ALAP - ASAP slack). *)

open Hcrf_ir

(* ASAP / ALAP over the distance-0 (intra-iteration) subgraph, which is
   acyclic in a well-formed DDG. *)
let asap_alap (lat : Latency.t) (g : Ddg.t) =
  let nodes = Ddg.nodes g in
  let asap = Hashtbl.create 64 and alap = Hashtbl.create 64 in
  let intra_preds v =
    List.filter (fun (e : Ddg.edge) -> e.distance = 0) (Ddg.preds g v)
  in
  let intra_succs v =
    List.filter (fun (e : Ddg.edge) -> e.distance = 0) (Ddg.succs g v)
  in
  (* topological order of the distance-0 subgraph *)
  let indeg = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace indeg v (List.length (intra_preds v)))
    nodes;
  let queue = Queue.create () in
  List.iter (fun v -> if Hashtbl.find indeg v = 0 then Queue.add v queue)
    nodes;
  let topo = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    topo := v :: !topo;
    List.iter
      (fun (e : Ddg.edge) ->
        let d = Hashtbl.find indeg e.dst - 1 in
        Hashtbl.replace indeg e.dst d;
        if d = 0 then Queue.add e.dst queue)
      (intra_succs v)
  done;
  let topo = List.rev !topo in
  List.iter
    (fun v ->
      let a =
        List.fold_left
          (fun acc (e : Ddg.edge) ->
            max acc (Hashtbl.find asap e.src + Latency.of_edge lat g e))
          0 (intra_preds v)
      in
      Hashtbl.replace asap v a)
    topo;
  let horizon =
    List.fold_left (fun acc v -> max acc (Hashtbl.find asap v)) 0 nodes
  in
  List.iter
    (fun v ->
      let l =
        List.fold_left
          (fun acc (e : Ddg.edge) ->
            min acc (Hashtbl.find alap e.dst - Latency.of_edge lat g e))
          horizon (intra_succs v)
      in
      Hashtbl.replace alap v l)
    (List.rev topo);
  ( (fun v -> try Hashtbl.find asap v with Not_found -> 0),
    fun v -> try Hashtbl.find alap v with Not_found -> 0 )

(* Nodes lying on a distance-0 path from set [src] to set [dst]. *)
let path_nodes (g : Ddg.t) ~from_set ~to_set =
  let reach_fwd = Hashtbl.create 64 and reach_bwd = Hashtbl.create 64 in
  let rec dfs seen step v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v true;
      List.iter (fun w -> dfs seen step w) (step v)
    end
  in
  let fwd v =
    List.filter_map
      (fun (e : Ddg.edge) -> if e.distance = 0 then Some e.dst else None)
      (Ddg.succs g v)
  and bwd v =
    List.filter_map
      (fun (e : Ddg.edge) -> if e.distance = 0 then Some e.src else None)
      (Ddg.preds g v)
  in
  List.iter (fun v -> dfs reach_fwd fwd v) from_set;
  List.iter (fun v -> dfs reach_bwd bwd v) to_set;
  List.filter
    (fun v ->
      Hashtbl.mem reach_fwd v && Hashtbl.mem reach_bwd v
      && (not (List.mem v from_set))
      && not (List.mem v to_set))
    (Ddg.nodes g)

(** Compute the scheduling priority order.  Returns node ids, highest
    priority first. *)
let compute ?(lat : Latency.t option) config (g : Ddg.t) : int list =
  let lat = match lat with Some l -> l | None -> Latency.make config in
  let asap, alap = asap_alap lat g in
  let mobility v = alap v - asap v in
  let by_asap = List.sort (fun a b -> compare (asap a, a) (asap b, b)) in
  let ordered = ref [] in
  let marked = Hashtbl.create 64 in
  let mark v =
    if not (Hashtbl.mem marked v) then begin
      Hashtbl.replace marked v true;
      ordered := v :: !ordered
    end
  in
  (* 1. recurrences, hardest first, with connecting path nodes *)
  let groups =
    Scc.recurrences g
    |> List.map (fun scc -> (Mii.scc_rec_mii lat g scc, scc))
    |> List.sort (fun (a, sa) (b, sb) ->
           compare (b, List.length sb) (a, List.length sa))
    |> List.map snd
  in
  List.iter
    (fun group ->
      (* sorted: hash order must not reach path_nodes (determinism even
         under randomized hashing) *)
      let already =
        List.sort compare (Hashtbl.fold (fun v _ acc -> v :: acc) marked [])
      in
      if already <> [] then begin
        let bridge_fwd = path_nodes g ~from_set:already ~to_set:group in
        let bridge_bwd = path_nodes g ~from_set:group ~to_set:already in
        List.iter mark (by_asap (bridge_fwd @ bridge_bwd))
      end;
      List.iter mark (by_asap group))
    groups;
  (* 2. expand the neighbourhood: append the adjacent unordered node with
     minimum mobility; fall back to a global minimum when disconnected *)
  let nodes = Ddg.nodes g in
  let remaining () =
    List.filter (fun v -> not (Hashtbl.mem marked v)) nodes
  in
  let adjacent v =
    List.exists (fun (e : Ddg.edge) -> Hashtbl.mem marked e.dst)
      (Ddg.succs g v)
    || List.exists (fun (e : Ddg.edge) -> Hashtbl.mem marked e.src)
         (Ddg.preds g v)
  in
  let key v = (mobility v, asap v, v) in
  let rec expand () =
    match remaining () with
    | [] -> ()
    | rem ->
      let cands =
        match List.filter adjacent rem with [] -> rem | adj -> adj
      in
      let best =
        List.fold_left
          (fun acc v ->
            match acc with
            | None -> Some v
            | Some b -> if key v < key b then Some v else acc)
          None cands
      in
      (match best with Some v -> mark v | None -> ());
      expand ()
  in
  expand ();
  List.rev !ordered

(** Lower bounds on the initiation interval.

    [ResMII] assumes perfectly balanced use of the replicated resources
    (FUs and, when clustered, memory ports), which is the standard bound;
    [RecMII] is the classic maximum over dependence cycles of
    ceil(sum latency / sum distance), computed per SCC with a binary
    search on II and a positive-cycle (Floyd-Warshall) test on edge
    weights latency - II * distance. *)

open Hcrf_ir
open Hcrf_machine

type bounds = {
  fu : int;    (** bound from FU slots *)
  mem : int;   (** bound from memory ports *)
  comm : int;  (** bound from inter-bank ports/buses *)
  rec_ : int;  (** bound from recurrences *)
}

let mii b = max (max b.fu b.mem) (max b.comm b.rec_)

let pp_bounds ppf b =
  Fmt.pf ppf "fu=%d mem=%d comm=%d rec=%d" b.fu b.mem b.comm b.rec_

let cdiv a b = if b <= 0 then 0 else (a + b - 1) / b

let cdiv_cap a (c : Cap.t) =
  match c with Cap.Inf -> 0 | Cap.Finite n -> cdiv a n

(** Resource-constrained bound. *)
let res_mii (config : Config.t) (g : Ddg.t) =
  let x = Config.clusters config in
  let fu_usage = ref 0
  and mem_ops = ref 0
  and loadrs = ref 0
  and storers = ref 0
  and moves = ref 0 in
  Ddg.iter_nodes g (fun n ->
      match n.kind with
      | Fadd | Fmul | Fdiv | Fsqrt ->
        let dur =
          if Latencies.pipelined n.kind then 1
          else Config.op_latency config n.kind
        in
        fu_usage := !fu_usage + dur
      | Load | Store | Spill_load | Spill_store -> incr mem_ops
      | Load_r -> incr loadrs
      | Store_r -> incr storers
      | Move -> incr moves);
  let fu = cdiv !fu_usage config.n_fus in
  let mem = cdiv !mem_ops config.n_mem_ports in
  let comm =
    let times_x = function Cap.Inf -> Cap.Inf | Cap.Finite n -> Cap.Finite (x * n) in
    let add a b =
      match (a, b) with
      | Cap.Inf, _ | _, Cap.Inf -> Cap.Inf
      | Cap.Finite m, Cap.Finite n -> Cap.Finite (m + n)
    in
    (* with a third level, LoadR/StoreR may also execute at Global on
       the Lp3/Sp3 ports: pooling them keeps this a true lower bound *)
    let l3_lp, l3_sp =
      match Rf.level3_of config.rf with
      | Some l -> (l.Rf.l3_lp, l.Rf.l3_sp)
      | None -> (Cap.Finite 0, Cap.Finite 0)
    in
    let lp = add (times_x (Rf.lp config.rf)) l3_lp
    and sp = add (times_x (Rf.sp config.rf)) l3_sp in
    let via_lp = cdiv_cap (!loadrs + !moves) lp in
    let via_sp = cdiv_cap (!storers + !moves) sp in
    let via_bus =
      match config.rf with
      | Rf.Clustered { buses; _ } -> cdiv_cap !moves buses
      | Rf.Monolithic _ | Rf.Hierarchical _ -> 0
    in
    max via_lp (max via_sp via_bus)
  in
  (fu, mem, comm)

(* Positive-cycle test: is there a cycle with total (latency - ii *
   distance) > 0 among [nodes]?  Floyd-Warshall with max-plus weights. *)
let has_positive_cycle (lat : Latency.t) (g : Ddg.t) ~ii nodes =
  let n = List.length nodes in
  if n = 0 then false
  else begin
    let idx = Hashtbl.create n in
    List.iteri (fun i v -> Hashtbl.replace idx v i) nodes;
    let neg_inf = min_int / 4 in
    let d = Array.make_matrix n n neg_inf in
    List.iter
      (fun v ->
        let i = Hashtbl.find idx v in
        List.iter
          (fun (e : Ddg.edge) ->
            match Hashtbl.find_opt idx e.dst with
            | None -> ()
            | Some j ->
              let w = Latency.of_edge lat g e - (ii * e.distance) in
              if w > d.(i).(j) then d.(i).(j) <- w)
          (Ddg.succs g v))
      nodes;
    let exception Found in
    try
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          if d.(i).(k) > neg_inf then
            for j = 0 to n - 1 do
              if d.(k).(j) > neg_inf && d.(i).(k) + d.(k).(j) > d.(i).(j)
              then begin
                d.(i).(j) <- d.(i).(k) + d.(k).(j);
                if i = j && d.(i).(j) > 0 then raise Found
              end
            done
        done
      done;
      (* also catch self loops found during init *)
      let pos = ref false in
      for i = 0 to n - 1 do
        if d.(i).(i) > 0 then pos := true
      done;
      !pos
    with Found -> true
  end

(** RecMII of one SCC: smallest ii with no positive cycle. *)
let scc_rec_mii (lat : Latency.t) (g : Ddg.t) nodes =
  (* Upper bound: total latency around any simple cycle is at most the sum
     of all node latencies in the SCC (distances are >= 1 on cycles). *)
  let upper =
    List.fold_left
      (fun acc v ->
        acc + max 1 (Latency.of_def lat ~id:v ~kind:(Ddg.kind g v)))
      1 nodes
  in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if has_positive_cycle lat g ~ii:mid nodes then search (mid + 1) hi
      else search lo mid
  in
  search 1 upper

(** Recurrence-constrained bound (1 when the graph is acyclic: an empty
    recurrence constraint, and II >= 1 always). *)
let rec_mii (lat : Latency.t) (g : Ddg.t) =
  List.fold_left
    (fun acc scc -> max acc (scc_rec_mii lat g scc))
    1
    (Scc.recurrences g)

let bounds ?(lat : Latency.t option) (config : Config.t) (g : Ddg.t) =
  let lat = match lat with Some l -> l | None -> Latency.make config in
  let fu, mem, comm = res_mii config g in
  { fu; mem; comm; rec_ = rec_mii lat g }

let compute ?(trace = Hcrf_obs.Trace.off) ?lat config g =
  Hcrf_obs.Trace.span trace Hcrf_obs.Event.Mii (fun () ->
      max 1 (mii (bounds ?lat config g)))

(** Independent checker for complete schedules.

    Verifies, from scratch and without trusting any incremental state of
    the engine, that a schedule is a correct software pipeline for its
    graph and machine:

    - every node is scheduled at a legal location for its kind;
    - every dependence is satisfied:
      cycle(dst) >= cycle(src) + latency - II * distance;
    - no resource is oversubscribed at any modulo slot;
    - every [True] register operand is read from the bank in which it was
      defined (communication ops were inserted wherever needed);
    - every bank's MaxLives fits its capacity (with invariant residents);
    - an explicit rotating register allocation exists for every bank. *)

open Hcrf_ir
open Hcrf_machine

type issue =
  | Unscheduled of int
  | Bad_location of int * Topology.loc
  | Dependence_violated of Ddg.edge
  | Resource_oversubscribed of Topology.resource * int * int (* slot, used *)
  | Bank_mismatch of Ddg.edge * Topology.bank * Topology.bank
      (** operand defined in one bank, read from another *)
  | Over_capacity of Topology.bank * int * int (* used, capacity *)
  | Allocation_failed of Topology.bank

let pp_issue ppf = function
  | Unscheduled v -> Fmt.pf ppf "node %d not scheduled" v
  | Bad_location (v, loc) ->
    Fmt.pf ppf "node %d at illegal location %a" v Topology.pp_loc loc
  | Dependence_violated e ->
    Fmt.pf ppf "dependence %d->%d (%a,d%d) violated" e.src e.dst Dep.pp
      e.dep e.distance
  | Resource_oversubscribed (r, s, used) ->
    Fmt.pf ppf "resource %a oversubscribed at slot %d (%d reserved)"
      Topology.pp_resource r s used
  | Bank_mismatch (e, db, rb) ->
    Fmt.pf ppf "operand %d->%d defined in bank %a, read from bank %a" e.src
      e.dst Topology.pp_bank db Topology.pp_bank rb
  | Over_capacity (b, used, cap) ->
    Fmt.pf ppf "bank %a: %d live > %d registers" Topology.pp_bank b used cap
  | Allocation_failed b ->
    Fmt.pf ppf "bank %a: rotating allocation failed" Topology.pp_bank b

(** [check ~invariant_residents s g] returns all problems found ([] for a
    valid schedule).  [invariant_residents] gives the per-bank number of
    whole-loop registers reserved for loop invariants. *)
let check ?(invariant_residents = fun (_ : Topology.bank) -> 0)
    (s : Schedule.t) (g : Ddg.t) : issue list =
  let config = s.Schedule.config in
  let ii = Schedule.ii s in
  let issues = ref [] in
  let add i = issues := i :: !issues in
  (* scheduling completeness and location legality *)
  Ddg.iter_nodes g (fun n ->
      match Schedule.entry s n.id with
      | None -> add (Unscheduled n.id)
      | Some e ->
        let legal = Topology.exec_locs config n.kind in
        if not (List.exists (Topology.equal_loc e.loc) legal) then
          add (Bad_location (n.id, e.loc)));
  (* dependences *)
  List.iter
    (fun (e : Ddg.edge) ->
      match (Schedule.entry s e.src, Schedule.entry s e.dst) with
      | Some a, Some b ->
        let l = Latency.of_edge s.Schedule.lat g e in
        if b.cycle < a.cycle + l - (ii * e.distance) then
          add (Dependence_violated e)
      | None, _ | _, None -> ())
    (Ddg.edges g);
  (* resources: rebuild occupancy from scratch *)
  let occ : (Topology.resource * int, int) Hashtbl.t = Hashtbl.create 64 in
  Ddg.iter_nodes g (fun n ->
      match Schedule.entry s n.id with
      | None -> ()
      | Some e ->
        List.iter
          (fun (r, dur) ->
            for k = 0 to min dur ii - 1 do
              let slot = (((e.cycle + k) mod ii) + ii) mod ii in
              let key = (r, slot) in
              Hashtbl.replace occ key
                (1 + Option.value ~default:0 (Hashtbl.find_opt occ key))
            done)
          (Schedule.uses_of s g n.id ~loc:e.loc));
  Hashtbl.iter
    (fun (r, slot) count ->
      if not (Cap.fits count (Topology.units config r)) then
        add (Resource_oversubscribed (r, slot, count)))
    occ;
  (* operand banks *)
  Ddg.iter_nodes g (fun n ->
      List.iter
        (fun (e : Ddg.edge) ->
          if
            Dep.equal e.dep Dep.True
            && Op.defines_value (Ddg.kind g e.src)
          then
            match (Schedule.entry s e.src, Schedule.entry s e.dst) with
            | Some a, Some b -> (
              let db = Topology.def_bank config (Ddg.kind g e.src) a.loc in
              match (db, Ddg.kind g e.dst) with
              | Some (Topology.Local _), Op.Move ->
                (* a Move reads whichever local bank its producer is in;
                   its port reservations are derived from that bank *)
                ()
              | Some db, dk ->
                let rb = Topology.read_bank config dk b.loc in
                if not (Topology.equal_bank db rb) then
                  add (Bank_mismatch (e, db, rb))
              | None, _ -> ())
            | None, _ | _, None -> ())
        n.preds);
  (* register pressure and allocation *)
  let lts = Lifetimes.of_schedule s g in
  let all_banks =
    let x = Hcrf_machine.Config.clusters config in
    (Topology.Shared :: List.init x (fun i -> Topology.Local i))
    @ (if Topology.has_l3 config then [ Topology.L3 ] else [])
  in
  List.iter
    (fun bank ->
      let used =
        Lifetimes.pressure ~ii ~bank
          ~invariant_residents:(invariant_residents bank) lts
      in
      match Topology.bank_capacity config bank with
      | Cap.Inf -> ()
      | Cap.Finite cap ->
        if used > cap then add (Over_capacity (bank, used, cap)))
    all_banks;
  (match Regalloc.allocate s g with
  | Ok _ -> ()
  | Error b -> add (Allocation_failed b));
  List.rev !issues

let is_valid ?invariant_residents s g =
  check ?invariant_residents s g = []

(** Priority list of the iterative scheduler.

    Lower priority value = scheduled earlier.  Original nodes carry their
    HRMS ordering index; nodes inserted during scheduling (communication,
    spill) are given fractional priorities adjacent to the operation they
    serve, and ejected nodes are re-queued with their original priority
    (§5.1).

    Implemented as a binary min-heap over [(priority, node)] pairs with
    lazy deletion: [remove] only invalidates the node's live entries (a
    hash-table drop), and [pop] skips stale heap cells on the way down.
    Entries carry a generation stamp so a re-pushed pair is distinct from
    its own stale copies.  The observable behaviour is exactly that of
    the original [Set.Make (float * int)] implementation — identical
    [(priority, node)] pushes coalesce, and [pop] returns the
    lexicographic minimum — as checked by QCheck against a set model. *)

type t = {
  mutable heap : (float * int * int) array;  (* priority, node, generation *)
  mutable hn : int;                          (* live prefix of [heap] *)
  live : (int, (float * int) list) Hashtbl.t;
      (* node -> (priority, generation) of each live entry *)
  mutable count : int;                       (* total live entries *)
  mutable gen : int;
}

let create () =
  { heap = Array.make 64 (0., 0, 0); hn = 0; live = Hashtbl.create 64;
    count = 0; gen = 0 }

let is_empty t = t.count = 0
let size t = t.count
let mem t node = Hashtbl.mem t.live node

(* Lexicographic (priority, node); generations never order. *)
let lt (p1, v1, _) (p2, v2, _) = p1 < p2 || (p1 = p2 && v1 < v2)

let heap_push t e =
  if t.hn = Array.length t.heap then begin
    let h = Array.make (2 * t.hn) (0., 0, 0) in
    Array.blit t.heap 0 h 0 t.hn;
    t.heap <- h
  end;
  let h = t.heap in
  let i = ref t.hn in
  t.hn <- t.hn + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt e h.(parent) then begin
      h.(!i) <- h.(parent);
      i := parent
    end
    else continue := false
  done;
  h.(!i) <- e

let heap_pop t =
  let h = t.heap in
  let top = h.(0) in
  t.hn <- t.hn - 1;
  if t.hn > 0 then begin
    let e = h.(t.hn) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= t.hn then continue := false
      else begin
        let c = if l + 1 < t.hn && lt h.(l + 1) h.(l) then l + 1 else l in
        if lt h.(c) e then begin
          h.(!i) <- h.(c);
          i := c
        end
        else continue := false
      end
    done;
    h.(!i) <- e
  end;
  top

let push t ~priority node =
  let entries = Option.value ~default:[] (Hashtbl.find_opt t.live node) in
  (* identical (priority, node) pushes coalesce, as in a set *)
  if not (List.mem_assoc priority entries) then begin
    t.gen <- t.gen + 1;
    Hashtbl.replace t.live node ((priority, t.gen) :: entries);
    t.count <- t.count + 1;
    heap_push t (priority, node, t.gen)
  end

let rec pop t =
  if t.hn = 0 then None
  else
    let _, v, g = heap_pop t in
    match Hashtbl.find_opt t.live v with
    | Some entries when List.exists (fun (_, g') -> g' = g) entries ->
      (match List.filter (fun (_, g') -> g' <> g) entries with
      | [] -> Hashtbl.remove t.live v
      | rest -> Hashtbl.replace t.live v rest);
      t.count <- t.count - 1;
      Some v
    | Some _ | None -> pop t  (* stale cell: lazily deleted *)

let remove t node =
  match Hashtbl.find_opt t.live node with
  | None -> ()
  | Some entries ->
    t.count <- t.count - List.length entries;
    Hashtbl.remove t.live node

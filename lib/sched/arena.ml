(** Reusable scratch buffers for per-II scheduler state.

    One arena lives for the whole II-escalation loop of a single
    [Engine.schedule] call: every attempt re-acquires its flat tables
    (reservation counts, occupant stacks, pressure slot counts, schedule
    entry columns) from the arena instead of allocating fresh ones, so
    escalating through many IIs does not churn the minor heap.  Buffers
    are identified by small integer slot ids (see the [slot_*] constants
    in the users); acquiring a buffer zero- or sentinel-fills the
    requested prefix, which is the only region the caller may touch.

    Arenas are single-owner: one arena must never be shared by two live
    structures using the same slot id, nor across domains. *)

type t = {
  mutable ints : int array array;
  mutable stacks : int array array array;
}

let slots = 12

let create () =
  { ints = Array.make slots [||]; stacks = Array.make slots [||] }

(** An int buffer of length >= [len] with the first [len] cells set to
    [fill]. *)
let ints t ~id ~fill len =
  let b = t.ints.(id) in
  let b =
    if Array.length b >= len then b
    else begin
      let b' = Array.make (max len (2 * Array.length b)) fill in
      t.ints.(id) <- b';
      b'
    end
  in
  Array.fill b 0 len fill;
  b

(** A buffer of [len] growable int stacks (capacity of previously used
    stacks is retained; the caller tracks live lengths separately). *)
let stacks t ~id len =
  let b = t.stacks.(id) in
  if Array.length b >= len then b
  else begin
    let b' = Array.make (max len (2 * Array.length b)) [||] in
    Array.blit b 0 b' 0 (Array.length b);
    t.stacks.(id) <- b';
    b'
  end

(** Store a grown replacement for slot [id] so the next acquisition
    reuses the larger buffer. *)
let keep_ints t ~id b = if Array.length b > Array.length t.ints.(id) then t.ints.(id) <- b

(* Exact small-loop modulo scheduler — see exact.mli for the contract
   and the soundness arguments behind each pruning rule. *)

module Config = Hcrf_machine.Config
module Cap = Hcrf_machine.Cap
module Rf = Hcrf_machine.Rf
module Ddg = Hcrf_ir.Ddg
module Op = Hcrf_ir.Op
module Dep = Hcrf_ir.Dep
module Scc = Hcrf_ir.Scc
module Topology = Hcrf_sched.Topology
module Latency = Hcrf_sched.Latency
module Mii = Hcrf_sched.Mii
module Mrt = Hcrf_sched.Mrt
module Schedule = Hcrf_sched.Schedule
module Validate = Hcrf_sched.Validate
module Engine = Hcrf_sched.Engine
module Tr = Hcrf_obs.Trace
module Ev = Hcrf_obs.Event

let neg_inf = min_int / 4

exception Budget_exhausted
exception Sat
exception Found of Engine.outcome

type witness = { w_ii : int; w_outcome : Engine.outcome }

type t = {
  x_mii : int;
  x_bounds : Mii.bounds;
  x_lb : int;
  x_lb_exhausted : bool;
  x_witness : witness option;
  x_optimal : bool;
  x_steps : int;
  x_budget_hit : bool;
  x_sigmas : int;
}

let pp ppf t =
  Fmt.pf ppf "lb=%d%s witness=%s optimal=%b steps=%d sigmas=%d%s" t.x_lb
    (if t.x_lb_exhausted then "" else "?")
    (match t.x_witness with Some w -> string_of_int w.w_ii | None -> "none")
    t.x_optimal t.x_steps t.x_sigmas
    (if t.x_budget_hit then " budget_hit" else "")

let default_budget = 4_000_000

(* ------------------------------------------------------------------ *)
(* Shared search structure: one [prob] per (graph, II).                *)

type prob = {
  n : int;
  ids : int array;  (* index -> node id, increasing *)
  idx_of : int array;  (* node id -> index *)
  dist : int array array;  (* longest-path weights; [neg_inf] = no path *)
  order : int array;  (* search order over indices *)
  comp_root : int array;  (* index -> index of its component root *)
  spread : int array;  (* index -> spread bound of its component *)
  pos_cycle : bool;  (* the dependence system refutes this II outright *)
}

let build_dist lat g ~ids ~idx_of ~ii =
  let n = Array.length ids in
  let d = Array.make_matrix n n neg_inf in
  List.iter
    (fun (e : Ddg.edge) ->
      let u = idx_of.(e.src) and v = idx_of.(e.dst) in
      let w = Latency.of_edge lat g e - (ii * e.distance) in
      if w > d.(u).(v) then d.(u).(v) <- w)
    (Ddg.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if d.(i).(k) > neg_inf then
        for j = 0 to n - 1 do
          if d.(k).(j) > neg_inf && d.(i).(k) + d.(k).(j) > d.(i).(j) then
            d.(i).(j) <- d.(i).(k) + d.(k).(j)
        done
    done
  done;
  d

(* Weakly-connected components; the root of a component is its smallest
   index, components are visited in root order. *)
let build_components ~n ~adj =
  let comp_root = Array.make n (-1) in
  for r = 0 to n - 1 do
    if comp_root.(r) < 0 then begin
      let stack = ref [ r ] in
      comp_root.(r) <- r;
      while !stack <> [] do
        let v = List.hd !stack in
        stack := List.tl !stack;
        List.iter
          (fun u ->
            if comp_root.(u) < 0 then begin
              comp_root.(u) <- r;
              stack := u :: !stack
            end)
          adj.(v)
      done
    end
  done;
  comp_root

(* Deterministic connected-expansion order: components by root; inside a
   component start at the root and repeatedly pick the unassigned node
   adjacent to the assigned prefix, preferring nodes whose SCC has
   already been touched (recurrences get tight windows early), then the
   smallest index. *)
let build_order g ~n ~idx_of ~adj ~comp_root =
  let sccid = Array.make n (-1) in
  List.iteri
    (fun i scc -> List.iter (fun id -> sccid.(idx_of.(id)) <- i) scc)
    (Scc.sccs g);
  let scc_touched = Array.make n false in
  let assigned = Array.make n false in
  let frontier = Array.make n false in
  let order = Array.make n (-1) in
  let pos = ref 0 in
  let assign v =
    order.(!pos) <- v;
    incr pos;
    assigned.(v) <- true;
    if sccid.(v) >= 0 then scc_touched.(sccid.(v)) <- true;
    List.iter (fun u -> if not assigned.(u) then frontier.(u) <- true) adj.(v)
  in
  for r = 0 to n - 1 do
    if comp_root.(r) = r then begin
      assign r;
      let remaining = ref 0 in
      for v = 0 to n - 1 do
        if comp_root.(v) = r && v <> r then incr remaining
      done;
      while !remaining > 0 do
        let best = ref (-1) and best_key = ref max_int in
        for v = 0 to n - 1 do
          if frontier.(v) && not assigned.(v) then begin
            let key = (if scc_touched.(sccid.(v)) then 0 else n + 1) + v in
            if key < !best_key then begin
              best := v;
              best_key := key
            end
          end
        done;
        assign !best;
        frontier.(!best) <- false;
        decr remaining
      done
    end
  done;
  order

let build_prob lat g ~ii =
  let ids = Array.of_list (Ddg.nodes g) in
  let n = Array.length ids in
  let max_id = Array.fold_left max (-1) ids in
  let idx_of = Array.make (max_id + 2) (-1) in
  Array.iteri (fun i id -> idx_of.(id) <- i) ids;
  let dist = build_dist lat g ~ids ~idx_of ~ii in
  let pos_cycle =
    let bad = ref false in
    for i = 0 to n - 1 do
      if dist.(i).(i) > 0 then bad := true
    done;
    !bad
  in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Ddg.edge) ->
      let u = idx_of.(e.src) and v = idx_of.(e.dst) in
      if u <> v then begin
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v)
      end)
    (Ddg.edges g);
  let comp_root = build_components ~n ~adj in
  let order = build_order g ~n ~idx_of ~adj ~comp_root in
  (* Per-component spread bound: (k - 1) * (max |weight| + II). *)
  let spread = Array.make n 0 in
  let ksize = Array.make n 0 in
  let wmax = Array.make n 0 in
  for v = 0 to n - 1 do
    ksize.(comp_root.(v)) <- ksize.(comp_root.(v)) + 1
  done;
  List.iter
    (fun (e : Ddg.edge) ->
      let r = comp_root.(idx_of.(e.src)) in
      let w = abs (Latency.of_edge lat g e - (ii * e.distance)) in
      if w > wmax.(r) then wmax.(r) <- w)
    (Ddg.edges g);
  for v = 0 to n - 1 do
    let r = comp_root.(v) in
    spread.(v) <- (ksize.(r) - 1) * (wmax.(r) + ii)
  done;
  { n; ids; idx_of; dist; order; comp_root; spread; pos_cycle }

(* ------------------------------------------------------------------ *)
(* Average-pressure pruning.  Every lifetime cycle lands on some modulo
   slot, so ceil(total lifetime in a bank / II) lower-bounds that
   bank's MaxLives ({!Hcrf_sched.Lifetimes.pressure}); partial sums of
   per-value lifetime lower bounds therefore soundly refute partial
   assignments.  A consumer only extends the producer's counted
   lifetime when it reads the producer's definition bank — a remote
   consumer is served by a copy chain whose lifetimes live in *other*
   banks, so counting it here would be unsound in the phase-A
   relaxation (in phase B the extended graph makes every edge local, so
   the guard is always true). *)

type pressure = {
  caps : int array;  (* bank code -> capacity - invariant residents *)
  defb : int array array;  (* idx -> loc choice -> def bank code; -1 none *)
  readb : int array array;  (* idx -> loc choice -> read bank code *)
  birth : int array;  (* idx -> write-back offset of the definition *)
  pcons : (int * int) list array;  (* idx -> (consumer idx, distance) *)
  pprods : (int * int) list array;  (* idx -> (producer idx, distance) *)
  passigned : bool array;
  span : int array;  (* idx -> currently counted lifetime *)
  sum : int array;  (* bank code -> sum of counted lifetimes *)
}

let build_pressure config lat g ~(prob : prob) ~locs ~residents_of =
  let codes = ref [] in
  let code_of b =
    let rec go i = function
      | [] ->
        codes := !codes @ [ b ];
        i
      | b' :: _ when Topology.equal_bank b b' -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 !codes
  in
  let n = prob.n in
  let defb =
    Array.init n (fun i ->
        let k = Ddg.kind g prob.ids.(i) in
        Array.map
          (fun loc ->
            if not (Op.defines_value k) then -1
            else
              match Topology.def_bank config k loc with
              | None -> -1
              | Some b -> code_of b)
          locs.(i))
  in
  let readb =
    Array.init n (fun i ->
        let k = Ddg.kind g prob.ids.(i) in
        Array.map (fun loc -> code_of (Topology.read_bank config k loc)) locs.(i))
  in
  let birth =
    Array.init n (fun i ->
        let k = Ddg.kind g prob.ids.(i) in
        if Op.defines_value k then Latency.of_def lat ~id:prob.ids.(i) ~kind:k
        else 0)
  in
  let pcons = Array.make n [] and pprods = Array.make n [] in
  List.iter
    (fun id ->
      let u = prob.idx_of.(id) in
      List.iter
        (fun (e : Ddg.edge) ->
          let v = prob.idx_of.(e.dst) in
          pcons.(u) <- (v, e.distance) :: pcons.(u);
          pprods.(v) <- (u, e.distance) :: pprods.(v))
        (Ddg.consumers g id))
    (Ddg.nodes g);
  let caps =
    Array.of_list
      (List.map
         (fun b ->
           match Topology.bank_capacity config b with
           | Hcrf_machine.Cap.Inf -> max_int / 2
           | Hcrf_machine.Cap.Finite c -> c - residents_of b)
         !codes)
  in
  {
    caps;
    defb;
    readb;
    birth;
    pcons;
    pprods;
    passigned = Array.make n false;
    span = Array.make n 0;
    sum = Array.make (Array.length caps) 0;
  }

(* Count [v]'s placement; returns the undo list (idx, old span, bank)
   and whether every touched bank still fits.  The caller always undoes,
   successful or not. *)
let press_try pr ~ii v ~cycle ~li ~cycles ~locix =
  let undo = ref [] in
  let ok = ref true in
  let fits b = (pr.sum.(b) + ii - 1) / ii <= pr.caps.(b) in
  let bv = pr.defb.(v).(li) in
  (if bv >= 0 then begin
     let birth = cycle + pr.birth.(v) in
     let sp =
       List.fold_left
         (fun acc (u, d) ->
           if pr.passigned.(u) && pr.readb.(u).(locix.(u)) = bv then
             max acc (cycles.(u) + (ii * d) - birth)
           else acc)
         0 pr.pcons.(v)
     in
     undo := (v, 0, bv) :: !undo;
     pr.span.(v) <- sp;
     pr.sum.(bv) <- pr.sum.(bv) + sp;
     if not (fits bv) then ok := false
   end
   else pr.span.(v) <- 0);
  if !ok then begin
    let rb = pr.readb.(v).(li) in
    List.iter
      (fun (p, d) ->
        if !ok && pr.passigned.(p) then begin
          let bp = pr.defb.(p).(locix.(p)) in
          if bp >= 0 && bp = rb then begin
            let s = cycle + (ii * d) - (cycles.(p) + pr.birth.(p)) in
            if s > pr.span.(p) then begin
              undo := (p, pr.span.(p), bp) :: !undo;
              pr.sum.(bp) <- pr.sum.(bp) + (s - pr.span.(p));
              pr.span.(p) <- s;
              if not (fits bp) then ok := false
            end
          end
        end)
      pr.pprods.(v)
  end;
  pr.passigned.(v) <- true;
  (!undo, !ok)

let press_undo pr v undo =
  List.iter
    (fun (i, old, b) ->
      pr.sum.(b) <- pr.sum.(b) - (pr.span.(i) - old);
      pr.span.(i) <- old)
    undo;
  pr.passigned.(v) <- false

(* ------------------------------------------------------------------ *)
(* Branch and bound over (cycle, location) assignments.                *)

type search = {
  prob : prob;
  ii : int;
  mrt : Mrt.t;
  locs : Topology.loc array array;  (* index -> candidate locations *)
  cu : Mrt.cuses array array;  (* index -> location choice -> vector *)
  cycles : int array;
  locix : int array;
  steps : int ref;
  budget : int;
  symmetry : bool;  (* break homogeneous-cluster relabeling *)
  cap_window : bool;  (* witness mode: try only II consecutive starts *)
  press : pressure;
}

let rec descend st depth used_max ~on_leaf =
  if depth = st.prob.n then on_leaf st
  else begin
    let p = st.prob in
    let v = p.order.(depth) in
    let lo = ref 0 and hi = ref 0 in
    let lo_tight = ref false and hi_tight = ref false in
    if p.comp_root.(v) = v then begin
      if v = 0 then (* globally-first root: rotation symmetry pins it *)
        ()
      else hi := st.ii - 1 (* component shift symmetry modulo II *)
    end
    else begin
      let rc = st.cycles.(p.comp_root.(v)) in
      lo := rc - p.spread.(v);
      hi := rc + p.spread.(v);
      for d = 0 to depth - 1 do
        let u = p.order.(d) in
        if p.dist.(u).(v) > neg_inf then begin
          lo_tight := true;
          if st.cycles.(u) + p.dist.(u).(v) > !lo then
            lo := st.cycles.(u) + p.dist.(u).(v)
        end;
        if p.dist.(v).(u) > neg_inf then begin
          hi_tight := true;
          if st.cycles.(u) - p.dist.(v).(u) < !hi then
            hi := st.cycles.(u) - p.dist.(v).(u)
        end
      done
    end;
    (* Witness search only: resource use repeats modulo II, so II
       consecutive start cycles cover every reservation pattern; later
       starts only delay successors.  Anchor the window on whichever
       side a placed neighbor actually constrained — the expansion
       order is not topological, so a node placed after its consumers
       has a loose spread-bound [lo] and its real seat just below [hi].
       Incomplete (exhaustion in this mode never refutes an II) but
       prunes the dependence-slack blowup at small IIs. *)
    if st.cap_window && !hi > !lo + st.ii - 1 then
      if !hi_tight && not !lo_tight then lo := !hi - st.ii + 1
      else hi := !lo + st.ii - 1;
    let nl = Array.length st.locs.(v) in
    for c = !lo to !hi do
      for li = 0 to nl - 1 do
        let loc = st.locs.(v).(li) in
        let sym_ok =
          (not st.symmetry)
          ||
          match loc with
          | Topology.Global -> true
          | Topology.Cluster k -> k <= used_max + 1
        in
        if sym_ok then begin
          incr st.steps;
          if !(st.steps) > st.budget then raise Budget_exhausted;
          if Mrt.can_place_c st.mrt st.cu.(v).(li) ~cycle:c then begin
            Mrt.place_c st.mrt ~node:p.ids.(v) st.cu.(v).(li) ~cycle:c;
            st.cycles.(v) <- c;
            st.locix.(v) <- li;
            let undo, fits =
              press_try st.press ~ii:st.ii v ~cycle:c ~li ~cycles:st.cycles
                ~locix:st.locix
            in
            if fits then begin
              let used_max' =
                match loc with
                | Topology.Cluster k when k > used_max -> k
                | _ -> used_max
              in
              descend st (depth + 1) used_max' ~on_leaf
            end;
            press_undo st.press v undo;
            Mrt.remove st.mrt ~node:p.ids.(v)
          end
        end
      done
    done
  end

(* ------------------------------------------------------------------ *)
(* Phase A: certified lower bound over the original nodes.             *)

let relax_feasible config lat g ~ii ~steps ~budget =
  let prob = build_prob lat g ~ii in
  if prob.pos_cycle then `Refuted
  else begin
    let mrt = Mrt.create config ~ii in
    let locs =
      Array.map
        (fun id -> Array.of_list (Topology.exec_locs config (Ddg.kind g id)))
        prob.ids
    in
    let cu =
      Array.mapi
        (fun i id ->
          Array.map
            (fun loc ->
              Mrt.compile mrt
                (Topology.uses config (Ddg.kind g id) loc ~src:None))
            locs.(i))
        prob.ids
    in
    let st =
      {
        prob;
        ii;
        mrt;
        locs;
        cu;
        cycles = Array.make prob.n 0;
        locix = Array.make prob.n 0;
        steps;
        budget;
        symmetry = Config.clusters config > 1;
        cap_window = false;
        press =
          build_pressure config lat g ~prob ~locs ~residents_of:(fun _ -> 0);
      }
    in
    match descend st 0 (-1) ~on_leaf:(fun _ -> raise Sat) with
    | () -> `Refuted
    | exception Sat -> `Feasible
  end

(* ------------------------------------------------------------------ *)
(* All-location-assignment refutation (lower-bound lift).  Phase A is a
   communication-free relaxation; here an II is refuted outright when
   EVERY canonical location assignment is refuted by a bound that also
   holds for spilled and memory-routed schedules:

   R1 — cross-bank true dependences must pass through a transport chain
   (moves along the topology, or a store/load round trip through the
   shared bank or memory), so they gain at least the cheapest
   transport's total latency; a positive cycle under the lifted weights
   refutes the assignment.

   R2 — every operation executing in cluster [i] occupies one of its
   Fu/Mem/Lp units, and a value needed in [Local i] but defined
   elsewhere requires at least one operation *defining into* that bank
   (Move, LoadR or a spill reload), which also executes in cluster [i];
   the per-cluster operation count therefore cannot exceed
   II * (units Fu + units Mem + units Lp).  The hierarchical global
   memory ports get the analogous aggregate check. *)

(* Unbounded capacities become a count no loop can reach; kept small
   enough that [ii * cap] cannot overflow. *)
let cap_int = function Cap.Finite x -> x | Cap.Inf -> 1_000_000

(* Location assignments for the original nodes, in id order, with
   homogeneous clusters used in first-touch order.  Locations are
   encoded as ints: -1 = Global, k = Cluster k. *)
let enum_sigmas locs_all =
  let n = Array.length locs_all in
  let out = ref [] in
  let cur = Array.make n (-1) in
  let rec go i used_max =
    if i = n then out := Array.copy cur :: !out
    else
      Array.iter
        (fun loc ->
          match loc with
          | Topology.Global ->
            cur.(i) <- -1;
            go (i + 1) used_max
          | Topology.Cluster k when k <= used_max + 1 ->
            cur.(i) <- k;
            go (i + 1) (max used_max k)
          | Topology.Cluster _ -> ())
        locs_all.(i)
  in
  go 0 (-1);
  List.rev !out

let loc_of_code c = if c < 0 then Topology.Global else Topology.Cluster c

(* Minimum extra latency to make a value defined in one bank readable
   from another, over every transport route the machine offers
   (including the memory round trip spills can use); min-plus closure
   over the tiny bank graph extended with a memory pseudo-bank. *)
let transport_extra config =
  let k = Config.clusters config in
  let has_shared =
    match config.Config.rf with Rf.Hierarchical _ -> true | _ -> false
  in
  let has_l3 = Topology.has_l3 config in
  let m = k + (if has_shared then 1 else 0) + (if has_l3 then 1 else 0) + 1 in
  let mem = m - 1 and shared = k and l3 = k + 1 in
  let inf = max_int / 4 in
  let d = Array.make_matrix m m inf in
  for i = 0 to m - 1 do
    d.(i).(i) <- 0
  done;
  let edge a b w = if w < d.(a).(b) then d.(a).(b) <- w in
  let l kind = Config.op_latency config kind in
  (match config.Config.rf with
  | Rf.Monolithic _ -> ()
  | Rf.Clustered _ ->
    for s = 0 to k - 1 do
      edge s mem (l Op.Spill_store);
      edge mem s (l Op.Spill_load);
      for t = 0 to k - 1 do
        if s <> t then edge s t (l Op.Move)
      done
    done
  | Rf.Hierarchical _ ->
    for i = 0 to k - 1 do
      edge i shared (l Op.Store_r);
      edge shared i (l Op.Load_r)
    done;
    (* memory attaches to the outermost level present *)
    let outer = if has_l3 then l3 else shared in
    if has_l3 then begin
      edge shared l3 (l Op.Store_r);
      edge l3 shared (l Op.Load_r)
    end;
    edge outer mem (l Op.Spill_store);
    edge mem outer (l Op.Spill_load));
  for c = 0 to m - 1 do
    for i = 0 to m - 1 do
      for j = 0 to m - 1 do
        if d.(i).(c) + d.(c).(j) < d.(i).(j) then
          d.(i).(j) <- d.(i).(c) + d.(c).(j)
      done
    done
  done;
  let code = function
    | Topology.Local i -> i
    | Topology.Shared -> shared
    | Topology.L3 -> l3
  in
  fun b1 b2 -> d.(code b1).(code b2)

let sigma_refuted config lat g ~t_extra ~ii ~sigma ~ids ~idx_of =
  let n = Array.length ids in
  let k = Config.clusters config in
  let bank_of i =
    Topology.def_bank config (Ddg.kind g ids.(i)) (loc_of_code sigma.(i))
  in
  let read_of i =
    Topology.read_bank config (Ddg.kind g ids.(i)) (loc_of_code sigma.(i))
  in
  let clustered =
    match config.Config.rf with Rf.Clustered _ -> true | _ -> false
  in
  (* R2: per-resource unit-cycle demand of the original operations (a
     non-pipelined op occupies its unit for its whole latency), plus the
     pooled ports any transport must take: a value entering [Local d]
     arrives through an input port (Move/LoadR) or — flat clustered
     RF only — a spill reload on the cluster's memory ports; a value
     leaving [Local s] goes out through an output port (Move/StoreR) or
     a spill store on the cluster's memory ports. *)
  let demand = Hashtbl.create 16 in
  let dget r = Option.value (Hashtbl.find_opt demand r) ~default:0 in
  Array.iteri
    (fun i id ->
      List.iter
        (fun (r, dur) ->
          (* the MRT clips a reservation at II slots (a non-pipelined op
             longer than II pins one whole unit), mirror it *)
          Hashtbl.replace demand r (dget r + min dur ii))
        (Topology.uses config (Ddg.kind g id) (loc_of_code sigma.(i))
           ~src:None))
    ids;
  let pool_in = Array.make k 0 and pool_out = Array.make k 0 in
  Array.iter
    (fun id ->
      let i = idx_of.(id) in
      match bank_of i with
      | None -> ()
      | Some db ->
        let seen = ref [] in
        List.iter
          (fun (e : Ddg.edge) ->
            let rb = read_of idx_of.(e.dst) in
            if
              (not (Topology.equal_bank rb db))
              && not (List.exists (Topology.equal_bank rb) !seen)
            then begin
              seen := rb :: !seen;
              match rb with
              | Topology.Local d -> pool_in.(d) <- pool_in.(d) + 1
              | Topology.Shared | Topology.L3 -> ()
            end)
          (Ddg.consumers g id);
        (* An operand-free load is rematerializable: the scheduler can
           re-issue it in the consumer's cluster, so its value never
           leaves the home bank (it still counts toward [pool_in] —
           the re-issued load lands on the pooled input/memory ports). *)
        let remat =
          Op.equal_kind (Ddg.kind g id) Op.Load && Ddg.operands g id = []
        in
        if !seen <> [] && not remat then
          match db with
          | Topology.Local s -> pool_out.(s) <- pool_out.(s) + 1
          | Topology.Shared | Topology.L3 -> ())
    ids;
  let u r = cap_int (Topology.units config r) in
  let r2 = ref false in
  Hashtbl.iter (fun r d -> if d > ii * u r then r2 := true) demand;
  for c = 0 to k - 1 do
    let mem_d = if clustered then dget (Topology.Mem c) else 0 in
    let mem_u = if clustered then u (Topology.Mem c) else 0 in
    if pool_in.(c) + mem_d > ii * (u (Topology.Lp c) + mem_u) then r2 := true;
    if pool_out.(c) + mem_d > ii * (u (Topology.Sp c) + mem_u) then r2 := true;
    if
      pool_in.(c) + pool_out.(c) + mem_d
      > ii * (u (Topology.Lp c) + u (Topology.Sp c) + mem_u)
    then r2 := true
  done;
  !r2
  ||
  (* R1: positive cycle under transport-lifted weights. *)
  let d = Array.make_matrix n n neg_inf in
  List.iter
    (fun (e : Ddg.edge) ->
      let u = idx_of.(e.src) and v = idx_of.(e.dst) in
      let extra =
        match e.dep with
        | Dep.True -> (
          match bank_of u with
          | None -> 0
          | Some db ->
            let rb = read_of v in
            if Topology.equal_bank db rb then 0 else t_extra db rb)
        | Dep.Anti | Dep.Output -> 0
      in
      let w = Latency.of_edge lat g e + extra - (ii * e.distance) in
      if w > d.(u).(v) then d.(u).(v) <- w)
    (Ddg.edges g);
  let refuted = ref false in
  (try
     for c = 0 to n - 1 do
       for i = 0 to n - 1 do
         if d.(i).(c) > neg_inf then
           for j = 0 to n - 1 do
             if d.(c).(j) > neg_inf && d.(i).(c) + d.(c).(j) > d.(i).(j)
             then begin
               d.(i).(j) <- d.(i).(c) + d.(c).(j);
               if i = j && d.(i).(j) > 0 then raise Sat
             end
           done
       done
     done
   with Sat -> refuted := true);
  !refuted

(* ------------------------------------------------------------------ *)
(* Phase B: a real spill-free witness schedule.                        *)

(* Number of communication nodes the canonical routing inserts for this
   location assignment (used to try cheap assignments first). *)
let comm_cost config g sigma ~idx_of =
  let cost = ref 0 in
  List.iter
    (fun u ->
      let lu = loc_of_code sigma.(idx_of.(u)) in
      match Topology.def_bank config (Ddg.kind g u) lu with
      | None -> ()
      | Some db ->
        let provided = ref [ db ] in
        List.iter
          (fun (e : Ddg.edge) ->
            let v = e.dst in
            let nb =
              Topology.read_bank config (Ddg.kind g v)
                (loc_of_code sigma.(idx_of.(v)))
            in
            if not (List.exists (Topology.equal_bank nb) !provided) then
              List.iter
                (fun (ck, cl) ->
                  match Topology.def_bank config ck cl with
                  | None -> ()
                  | Some hb ->
                    if not (List.exists (Topology.equal_bank hb) !provided)
                    then begin
                      incr cost;
                      provided := hb :: !provided
                    end)
                (Topology.comm_path config ~src_bank:db ~dst_bank:nb))
          (Ddg.consumers g u))
    (Ddg.nodes g);
  !cost

(* Extend a copy of [g0] with the canonical copy chains for [sigma]:
   per producer, one provider node per reachable bank (copy reuse), with
   each consumer edge rewired to the provider of the bank it reads.
   Returns the extended graph, the fixed location of every node and, for
   Moves, their source bank (their reservation depends on it). *)
let build_extended config g0 sigma ~idx_of =
  let g = Ddg.copy g0 in
  let loc_tbl = ref [] in
  (* node id -> loc code *)
  let src_tbl = ref [] in
  (* move id -> source bank *)
  let n_comm = ref 0 in
  List.iter
    (fun u ->
      let iu = idx_of.(u) in
      loc_tbl := (u, sigma.(iu)) :: !loc_tbl)
    (Ddg.nodes g0);
  List.iter
    (fun u ->
      let lu = loc_of_code sigma.(idx_of.(u)) in
      match Topology.def_bank config (Ddg.kind g0 u) lu with
      | None -> ()
      | Some db ->
        let providers = ref [ (db, u) ] in
        let provider_of b =
          List.find_opt (fun (b', _) -> Topology.equal_bank b b') !providers
        in
        List.iter
          (fun (e : Ddg.edge) ->
            let v = e.dst in
            let nb =
              Topology.read_bank config (Ddg.kind g0 v)
                (loc_of_code sigma.(idx_of.(v)))
            in
            (if provider_of nb = None then
               let cur = ref u and curb = ref db in
               List.iter
                 (fun (ck, cl) ->
                   match Topology.def_bank config ck cl with
                   | None -> ()
                   | Some hb -> (
                     match provider_of hb with
                     | Some (_, p) ->
                       cur := p;
                       curb := hb
                     | None ->
                       let nid = Ddg.add_node g ck in
                       Ddg.add_edge g ~distance:0 ~dep:Dep.True !cur nid;
                       let code =
                         match cl with
                         | Topology.Global -> -1
                         | Topology.Cluster k -> k
                       in
                       loc_tbl := (nid, code) :: !loc_tbl;
                       if ck = Op.Move then src_tbl := (nid, !curb) :: !src_tbl;
                       incr n_comm;
                       providers := (hb, nid) :: !providers;
                       cur := nid;
                       curb := hb))
                 (Topology.comm_path config ~src_bank:db ~dst_bank:nb));
            match provider_of nb with
            | Some (_, p) when p <> u ->
              Ddg.remove_edge g e;
              Ddg.add_edge g ~distance:e.distance ~dep:Dep.True p v
            | _ -> ())
          (Ddg.consumers g0 u))
    (Ddg.nodes g0);
  (g, !loc_tbl, !src_tbl, !n_comm)

let residents_fun config g locs_by_id =
  let counts =
    List.fold_left
      (fun acc (inv : Ddg.invariant) ->
        let banks =
          List.fold_left
            (fun bs c ->
              let b =
                Topology.read_bank config (Ddg.kind g c)
                  (loc_of_code (List.assoc c locs_by_id))
              in
              if List.exists (Topology.equal_bank b) bs then bs else b :: bs)
            [] inv.Ddg.inv_consumers
        in
        List.fold_left
          (fun acc b ->
            match List.find_opt (fun (b', _) -> Topology.equal_bank b b') acc with
            | Some (_, r) -> (b, r + 1) :: List.remove_assoc b acc
            | None -> (b, 1) :: acc)
          acc banks)
      [] (Ddg.invariants g)
  in
  fun bank ->
    match
      List.find_opt (fun (b, _) -> Topology.equal_bank bank b) counts
    with
    | Some (_, r) -> r
    | None -> 0

(* A dependence- and resource-feasible leaf: normalize cycles to be
   non-negative (shifting by multiples of II preserves everything),
   build the real schedule and let the independent checker judge it. *)
let try_leaf config lat ~ii ~mii0 ~g ~residents ~n_comm st =
  let p = st.prob in
  let shift =
    let mn = ref max_int in
    for v = 0 to p.n - 1 do
      if st.cycles.(v) < !mn then mn := st.cycles.(v)
    done;
    if p.n = 0 || !mn >= 0 then 0 else (((- !mn) + ii - 1) / ii) * ii
  in
  let by_cycle =
    List.sort
      (fun a b ->
        let c = compare st.cycles.(a) st.cycles.(b) in
        if c <> 0 then c else compare p.ids.(a) p.ids.(b))
      (List.init p.n Fun.id)
  in
  let s = Schedule.create ~lat config ~ii in
  List.iter
    (fun v ->
      Schedule.place s g p.ids.(v)
        ~cycle:(st.cycles.(v) + shift)
        ~loc:st.locs.(v).(st.locix.(v)))
    by_cycle;
  if Validate.check ~invariant_residents:residents s g = [] then begin
    let outcome =
      {
        Engine.ii;
        mii = mii0;
        bounds = Mii.bounds ~lat config g;
        sc = Schedule.stage_count s;
        schedule = s;
        graph = g;
        invariant_residents = residents;
        seconds = 0.;
        stats =
          {
            Engine.ejections = 0;
            forcings = 0;
            value_spills = 0;
            invariant_spills = 0;
            comm_inserted = n_comm;
            attempts = 0;
            ii_restarts = 0;
          };
      }
    in
    raise (Found outcome)
  end

(* Try to build a witness at [ii]; [None] when the canonical spill-free
   space is exhausted (which does not refute [ii]). *)
let witness_at config lat g0 ~ii ~mii0 ~steps ~budget ~sigmas ~cands
    ~idx_of:idx_of0 =
  try
    List.iter
      (fun sigma ->
        incr sigmas;
        let g, loc_tbl, src_tbl, n_comm =
          build_extended config g0 sigma ~idx_of:idx_of0
        in
        let prob = build_prob lat g ~ii in
        steps := !steps + (prob.n * prob.n);
        if !steps > budget then raise Budget_exhausted;
        if not prob.pos_cycle then begin
          let mrt = Mrt.create config ~ii in
          let locs =
            Array.map
              (fun id -> [| loc_of_code (List.assoc id loc_tbl) |])
              prob.ids
          in
          let cu =
            Array.mapi
              (fun i id ->
                let kind = Ddg.kind g id in
                let src =
                  if kind = Op.Move then Some (List.assoc id src_tbl) else None
                in
                [| Mrt.compile mrt (Topology.uses config kind locs.(i).(0) ~src) |])
              prob.ids
          in
          let residents = residents_fun config g loc_tbl in
          let press =
            build_pressure config lat g ~prob ~locs ~residents_of:residents
          in
          (* Invariant residents alone overflowing a bank can never
             validate; drop the assignment without searching. *)
          if Array.for_all (fun c -> c >= 0) press.caps then begin
            let st =
              {
                prob;
                ii;
                mrt;
                locs;
                cu;
                cycles = Array.make prob.n 0;
                locix = Array.make prob.n 0;
                steps;
                budget;
                symmetry = false;
                cap_window = true;
                press;
              }
            in
            descend st 0 (-1)
              ~on_leaf:(try_leaf config lat ~ii ~mii0 ~g ~residents ~n_comm)
          end
        end)
      cands;
    None
  with Found outcome -> Some { w_ii = ii; w_outcome = outcome }

(* ------------------------------------------------------------------ *)

let solve ?(budget = default_budget) ?max_ii ?(witness = true) ?(trace = Tr.off)
    config g0 =
  List.iter
    (fun id ->
      if not (Op.is_original (Ddg.kind g0 id)) then
        invalid_arg "Exact.solve: graph contains scheduler-inserted operations")
    (Ddg.nodes g0);
  Tr.span trace Ev.Exact (fun () ->
      let lat = Latency.make config in
      let bounds = Mii.bounds ~lat config g0 in
      let mii0 = max 1 (Mii.mii bounds) in
      let max_ii = Option.value max_ii ~default:(mii0 + 30) in
      let steps = ref 0 in
      let budget_hit = ref false in
      let sigmas = ref 0 in
      (* Phase A: refute IIs from the MII floor upward. *)
      let rec find_lb ii =
        if ii > max_ii then (max_ii + 1, true)
        else
          match relax_feasible config lat g0 ~ii ~steps ~budget with
          | `Feasible -> (ii, true)
          | `Refuted -> find_lb (ii + 1)
          | exception Budget_exhausted ->
            budget_hit := true;
            (ii, false)
      in
      let lb, lb_exhausted = find_lb mii0 in
      (* Shared location-assignment space, cheapest routing first. *)
      let ids = Array.of_list (Ddg.nodes g0) in
      let max_id = Array.fold_left max (-1) ids in
      let idx_of0 = Array.make (max_id + 2) (-1) in
      Array.iteri (fun i id -> idx_of0.(id) <- i) ids;
      let locs_all =
        Array.map
          (fun id -> Array.of_list (Topology.exec_locs config (Ddg.kind g0 id)))
          ids
      in
      let cands = enum_sigmas locs_all in
      let cands =
        List.sort
          (fun a b ->
            let c =
              compare
                (comm_cost config g0 a ~idx_of:idx_of0)
                (comm_cost config g0 b ~idx_of:idx_of0)
            in
            if c <> 0 then c else compare a b)
          cands
      in
      (* Lift the bound: an II is refuted outright when every canonical
         location assignment is refuted by a transport-aware bound. *)
      let t_extra = transport_extra config in
      let n0 = Array.length ids in
      let lb =
        if not (lb_exhausted && not !budget_hit) then lb
        else begin
          let lifted = ref lb in
          (try
             while
               !lifted <= max_ii && cands <> []
               && List.for_all
                    (fun sigma ->
                      steps := !steps + (n0 * n0);
                      if !steps > budget then raise Budget_exhausted;
                      sigma_refuted config lat g0 ~t_extra ~ii:!lifted ~sigma
                        ~ids ~idx_of:idx_of0)
                    cands
             do
               incr lifted
             done
           with Budget_exhausted -> budget_hit := true);
          !lifted
        end
      in
      (* Phase B: cheapest-first witness search from the bound up. *)
      let w = ref None in
      if witness && lb <= max_ii && not !budget_hit then begin
        try
          let ii = ref lb in
          while !w = None && !ii <= max_ii do
            (match
               witness_at config lat g0 ~ii:!ii ~mii0 ~steps ~budget ~sigmas
                 ~cands ~idx_of:idx_of0
             with
            | Some witness -> w := Some witness
            | None -> incr ii)
          done
        with Budget_exhausted -> budget_hit := true
      end;
      let optimal =
        lb_exhausted
        && match !w with Some { w_ii; _ } -> w_ii = lb | None -> false
      in
      let result =
        {
          x_mii = mii0;
          x_bounds = bounds;
          x_lb = lb;
          x_lb_exhausted = lb_exhausted;
          x_witness = !w;
          x_optimal = optimal;
          x_steps = !steps;
          x_budget_hit = !budget_hit;
          x_sigmas = !sigmas;
        }
      in
      if Tr.enabled trace then
        Tr.emit trace
          (Ev.Exact_search
             {
               lb;
               witness_ii =
                 (match !w with Some { w_ii; _ } -> w_ii | None -> -1);
               steps = !steps;
             });
      result)

(** Exact small-loop modulo scheduler: a solver-free branch-and-bound
    that certifies the minimal feasible II under the exact machine model
    of the heuristic ({!Hcrf_sched.Mrt} resources, {!Hcrf_sched.Latency}
    dependences, {!Hcrf_sched.Validate} bank/capacity rules).

    The certification is split in two phases.

    {b Phase A — lower bound.}  A branch-and-bound over the original
    nodes only assigns each an issue cycle and an execution location,
    checking dependences against a max-plus longest-path matrix (edge
    weight [latency - II * distance]) and resources against the real
    reservation table.  Communication and spill code can only {e add}
    latency and resource reservations on top of this relaxation, so an
    II refuted here is infeasible for {e any} real schedule — spilled or
    not.  The search starts at [Mii.mii] and the first non-refuted II is
    the certified lower bound [lb].

    Search-space canonicalizations (all value-preserving):
    - the smallest-id node of the first weakly-connected component is
      pinned to cycle 0 (global rotation symmetry);
    - every other component root ranges over [\[0, II)] (components can
      be shifted independently by multiples of II);
    - within a component, cycles stay within
      [(k - 1) * (max |weight| + II)] of the root (a gap/pigeonhole
      argument shows some optimal schedule satisfies this);
    - homogeneous clusters are used in first-touch order along the fixed
      node order (cluster relabeling symmetry).

    {b Phase B — witness.}  For the lowest non-refuted IIs, enumerate
    location assignments of the original nodes (cluster-symmetry
    broken), insert the canonical copy chains of {!Topology.comm_path}
    with copy reuse — exactly the routing shape the heuristic uses — and
    run a cycle-only branch-and-bound over the extended graph whose
    leaves must pass [Validate.check].  An accepted leaf is a real,
    spill-free schedule; when its II equals [lb] the loop is certified
    optimal, and the witness is trivially minimal-spill (zero spills).
    Phase B failing at some II does {e not} refute that II (a spilled or
    differently-routed schedule might exist), it only leaves the loop
    uncertified with [lb] as the reported bound.

    Everything is deterministic: node orders are derived from sorted
    ids, the effort budget counts search steps (no wall clock), and no
    hash-table iteration order reaches any result. *)

type witness = {
  w_ii : int;  (** II of the witness schedule *)
  w_outcome : Hcrf_sched.Engine.outcome;
      (** spill-free schedule in engine format: passes [Validate.check]
          and can be fed to [Pipe_exec] / metrics like any heuristic
          outcome ([seconds] and search [stats] are zeroed) *)
}

type t = {
  x_mii : int;  (** [Mii] floor the search started from *)
  x_bounds : Hcrf_sched.Mii.bounds;  (** of the original graph *)
  x_lb : int;
      (** certified lower bound: every II below it was refuted (when
          [x_lb_exhausted]); no schedule — spilled or not — exists below
          it *)
  x_lb_exhausted : bool;
      (** false when the budget tripped while refuting [x_lb]: [x_lb] is
          then only the first II the search could not refute in time *)
  x_witness : witness option;  (** best real schedule found, lowest II *)
  x_optimal : bool;
      (** [x_lb_exhausted] and the witness achieves exactly [x_lb]: the
          minimal feasible II is certified (and the witness spill count,
          zero, is minimal at that II) *)
  x_steps : int;  (** deterministic branch-and-bound steps spent *)
  x_budget_hit : bool;
  x_sigmas : int;  (** location assignments explored in phase B *)
}

val pp : Format.formatter -> t -> unit

(** Deterministic effort budget (in search steps) that certifies every
    small workbench loop; see EXPERIMENTS.md for calibration. *)
val default_budget : int

(** Certify [ddg] (original operations only — raises [Invalid_argument]
    on scheduler-inserted kinds) for [config].

    [budget] bounds total search steps across both phases;
    [max_ii] (default [mii + 30]) caps both the refutation sweep and the
    witness search — a typical caller passes the heuristic's achieved II
    since higher witnesses are uninteresting; [witness:false] skips
    phase B (lower bound only).  [trace] records the whole run as a
    [Phase Exact] span plus one [Exact_search] statistics event. *)
val solve :
  ?budget:int -> ?max_ii:int -> ?witness:bool -> ?trace:Hcrf_obs.Trace.t ->
  Hcrf_machine.Config.t -> Hcrf_ir.Ddg.t -> t

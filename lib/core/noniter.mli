(** The non-iterative baseline scheduler of [36] (Zalamea et al.,
    MICRO-33), used by the paper's Table 4 comparison.

    [36] schedules hierarchical (non-clustered) register files with
    register allocation and spilling but *without* the iterative
    backtracking of MIRS_HC: once a node fails to find a slot, the
    partial schedule is discarded and the loop retried at II + 1.  It
    also uses a plain topological node order rather than the HRMS
    ordering (which depends on backtracking to resolve its
    both-neighbours placements). *)

val options : Hcrf_sched.Engine.options

val schedule :
  ?budget_ratio:int -> ?max_ii:int -> ?load_override:(int -> int option) ->
  ?trace:Hcrf_obs.Trace.t -> Hcrf_machine.Config.t -> Hcrf_ir.Ddg.t ->
  (Hcrf_sched.Engine.outcome, Hcrf_sched.Engine.error) result

(** VLIW code emission — the [Generate_code (II, S)] step closing
    Figure 5.

    Renders a scheduled loop as the kernel the core would execute: one
    line per modulo slot listing every operation issued there, with its
    cluster/port placement and its rotating-register operands
    ([L0:r3] = offset 3 of cluster 0's bank, [S:r1] = the shared bank;
    [~] marks a value consumed straight off the bypass network).  The
    prologue and epilogue are the usual SC-1 ramp-up/drain of the same
    kernel with predicated-off stages, so only their shape is
    reported. *)

open Hcrf_ir
open Hcrf_sched

type t = {
  config : Hcrf_machine.Config.t;
  ii : int;
  sc : int;
  kernel : string;  (** rendered kernel table *)
}

let bank_tag = function
  | Topology.Shared -> "S"
  | Topology.L3 -> "L3"
  | Topology.Local i -> Fmt.str "L%d" i

(* Register name of a value, from the allocation offsets. *)
let reg_name offsets def =
  match Hashtbl.find_opt offsets def with
  | Some (bank, off) -> Fmt.str "%s:r%d" (bank_tag bank) off
  | None -> "~" (* zero-length lifetime: bypass *)

let operand_names g offsets v =
  Ddg.operands g v
  |> List.filter (fun (e : Ddg.edge) ->
         Op.defines_value (Ddg.kind g e.src))
  |> List.map (fun (e : Ddg.edge) ->
         let r = reg_name offsets e.src in
         if e.distance = 0 then r else Fmt.str "%s@-%d" r e.distance)

(** Render the kernel of a complete schedule; [Error bank] when register
    allocation fails. *)
let emit (config : Hcrf_machine.Config.t) (s : Schedule.t) (g : Ddg.t) :
    (t, Topology.bank) result =
  match Regalloc.allocate s g with
  | Error b -> Error b
  | Ok assignments ->
    let offsets = Hashtbl.create 64 in
    List.iter
      (fun (a : Regalloc.assignment) ->
        List.iter
          (fun (def, off) ->
            Hashtbl.replace offsets def (a.Regalloc.bank, off))
          a.Regalloc.map)
      assignments;
    let ii = Schedule.ii s in
    let sc = Schedule.stage_count s in
    let by_slot = Array.make ii [] in
    Ddg.iter_nodes g (fun n ->
        let e = Schedule.entry_exn s n.id in
        let slot = e.Schedule.cycle mod ii in
        by_slot.(slot) <- (e.Schedule.cycle, n.id) :: by_slot.(slot));
    let buf = Buffer.create 1024 in
    let ppf = Format.formatter_of_buffer buf in
    Fmt.pf ppf "@[<v>;; %s  II=%d  SC=%d (prologue/epilogue: %d stages)@,"
      config.Hcrf_machine.Config.name ii sc (sc - 1);
    List.iter
      (fun (a : Regalloc.assignment) ->
        if a.Regalloc.registers_used > 0 then
          Fmt.pf ppf ";; bank %s: %d rotating registers@,"
            (bank_tag a.Regalloc.bank) a.Regalloc.registers_used)
      assignments;
    for slot = 0 to ii - 1 do
      Fmt.pf ppf "%2d:" slot;
      let ops = List.sort compare by_slot.(slot) in
      if ops = [] then Fmt.pf ppf "  nop"
      else
        List.iter
          (fun (cycle, v) ->
            let e = Schedule.entry_exn s v in
            let kind = Ddg.kind g v in
            let dest =
              if Op.defines_value kind then
                Fmt.str " -> %s" (reg_name offsets v)
              else ""
            in
            Fmt.pf ppf "  [%a/s%d] %s %s%s" Topology.pp_loc
              e.Schedule.loc (cycle / ii) (Op.kind_name kind)
              (String.concat "," (operand_names g offsets v))
              dest)
          ops;
      Fmt.pf ppf "@,"
    done;
    Fmt.pf ppf "@]";
    Format.pp_print_flush ppf ();
    Ok { config; ii; sc; kernel = Buffer.contents buf }

let of_outcome (config : Hcrf_machine.Config.t) (o : Hcrf_sched.Engine.outcome) =
  emit config o.Hcrf_sched.Engine.schedule o.Hcrf_sched.Engine.graph

let pp ppf t = Fmt.string ppf t.kernel

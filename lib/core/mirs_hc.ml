(** MIRS_HC — Modulo scheduling with Integrated Register Spilling for
    Hierarchical Clustered VLIW architectures.

    This is the paper's contribution: a single modulo scheduler that
    simultaneously performs instruction scheduling, cluster selection,
    insertion of inter-bank communication (StoreR/LoadR through the shared
    second-level bank, or Move over the buses of a flat clustered RF),
    register allocation against every bank's capacity, and spill-code
    insertion — iteratively, with force-and-eject backtracking under a
    Budget (§5).

    The same engine degrades gracefully to the earlier members of the
    family: on a monolithic RF it behaves as MIRS [38], on a flat
    clustered RF as MIRS_C [37].  The configuration alone selects the
    behaviour. *)

open Hcrf_ir
open Hcrf_sched

type options = Engine.options

let default_options = Engine.default_options

type outcome = Engine.outcome

(** Schedule one loop body for [config].  Returns the complete schedule
    (with all inserted communication and spill operations in
    [outcome.graph]) or [`No_schedule ii] if no II up to the cap
    admitted a schedule. *)
let schedule ?(opts = default_options) ?trace config (g : Ddg.t) =
  Engine.schedule ~opts ?trace config g

(** Schedule a whole {!Loop.t}; convenience wrapper keeping the loop
    metadata alongside the outcome. *)
type scheduled_loop = { loop : Loop.t; outcome : outcome }

let schedule_loop ?opts ?trace config (l : Loop.t) =
  match schedule ?opts ?trace config l.Loop.ddg with
  | Ok outcome -> Ok { loop = l; outcome }
  | Error e -> Error e

(** Validate an outcome with the independent checker. *)
let validate (o : outcome) =
  Validate.check ~invariant_residents:o.Engine.invariant_residents
    o.Engine.schedule o.Engine.graph

let is_valid o = validate o = []

(** Memory accesses per iteration of the final schedule, including spill
    traffic — the paper's trf metric (§2.3). *)
let memory_refs_per_iter (o : outcome) =
  Ddg.num_memory_ops o.Engine.graph

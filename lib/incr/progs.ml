(** Deterministic frontend programs for incremental-evaluation
    experiments.  Pure functions of their arguments: no randomness, no
    clock. *)

open Hcrf_frontend.Ast

(* Six kernel shapes, parameterized by the kernel index so compiled
   loops are pairwise WL-distinct (offsets, invariant names and
   trip/entry counts all vary with [i]). *)
let kernel i =
  let off = 1 + (i / 6 mod 3) in
  let trip_count = 60 + (20 * (i mod 5)) in
  let entries = 1 + (i mod 3) in
  let name = Printf.sprintf "k%03d" i in
  let p s = param (Printf.sprintf "%s%d" s (i / 6)) in
  let body =
    match i mod 6 with
    | 0 ->
      (* daxpy with a loop-carried store offset *)
      [ store "y" ((p "a" *: arr "x") +: arr ~off "y") ]
    | 1 ->
      (* reduction into a carried scalar *)
      [ def "s" (prev "s" +: (arr "x" *: arr "y")); store "acc" (var "s") ]
    | 2 ->
      (* three-point stencil *)
      [ store "y"
          ((arr ~off:(-off) "x" +: arr "x" +: arr ~off "x") *: p "w") ]
    | 3 ->
      (* read-modify-write with a dependent square *)
      [ store "a" (arr "a" +: p "c"); store ~off "b" (arr "a" *: arr "a") ]
    | 4 ->
      (* IF-converted select *)
      [ store "y" (select (arr "x") (arr "x" *: p "hi") (arr "x" -: p "lo")) ]
    | _ ->
      (* sqrt recurrence *)
      [ def "s" (sqrt_ (prev "s" +: arr "x")); store "r" (var "s" *: p "g") ]
  in
  make ~trip_count ~entries ~name body

let program ~n = List.init n kernel

(* Wrap the last assignment of a statement list with [+ param p]; an If
   recurses into whichever branch carries the last assignment. *)
let rec perturb_last p = function
  | [] -> [ def "edited" (param p) ]
  | [ Def (s, e) ] -> [ Def (s, Add (e, Param p)) ]
  | [ Store (a, k, e) ] -> [ Store (a, k, Add (e, Param p)) ]
  | [ If (c, t, []) ] -> [ If (c, perturb_last p t, []) ]
  | [ If (c, t, e) ] -> [ If (c, t, perturb_last p e) ]
  | st :: rest -> st :: perturb_last p rest

let edit ~round ~kernel prog =
  let n = List.length prog in
  if n = 0 then prog
  else
    let target = ((kernel mod n) + n) mod n in
    List.mapi
      (fun i (k : t) ->
        if i <> target then k
        else
          { k with
            body = perturb_last (Printf.sprintf "edit%d" round) k.body })
      prog

(** Deterministic frontend programs for incremental-evaluation
    experiments: a program is a list of kernels (loop-language ASTs)
    that an edit script perturbs one kernel at a time.

    Everything here is a pure function of its arguments — no randomness
    and no clock — so two processes (or a golden test and its
    re-run) always see the same program and the same edits. *)

(** [program ~n] is a program of [n] kernels cycling through six loop
    shapes (daxpy, reduction, stencil, read-modify-write, select,
    sqrt recurrence) with per-index offsets and trip/entry counts, so
    kernels are pairwise distinct both by {!Hcrf_frontend.Ast.digest}
    and by WL fingerprint of the compiled loops. *)
val program : n:int -> Hcrf_frontend.Ast.t list

(** [edit ~round ~kernel prog] returns [prog] with kernel [kernel]
    (0-based, wrapped modulo the program length) perturbed: the last
    assignment of its body gains [+ param "edit<round>"], which adds an
    add node fed by a fresh invariant — the compiled loop provably
    changes, every other kernel is untouched. *)
val edit : round:int -> kernel:int -> Hcrf_frontend.Ast.t list ->
  Hcrf_frontend.Ast.t list

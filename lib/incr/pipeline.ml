(** The staged, memoized evaluation pipeline over a frontend program.
    See the interface for the contract. *)

module Runner = Hcrf_eval.Runner
module Memo = Hcrf_eval.Memo
module Ev = Hcrf_obs.Event
module Tr = Hcrf_obs.Trace

type t = { ctx : Runner.Ctx.t; config : Hcrf_machine.Config.t }

type eval_stats = {
  kernels : int;
  frontend_hits : int;
  frontend_recomputed : int;
  sched : Runner.pipeline_stats;
  wall_s : float;
}

let create ?(ctx = Runner.Ctx.default) config = { ctx; config }

let ctx t = t.ctx

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let emit_incr trace stage op t0 =
  if Tr.enabled trace then
    Tr.emit trace (Ev.Incr { stage; op; ns = now_ns () - t0 })

(* The frontend stage of one kernel: compile, memoized under the
   kernel's content digest.  Loops are snapshotted as reprs (a live
   [Ddg.t] may carry a watcher closure); the round trip preserves ids,
   so replayed loops are behaviourally identical to recompiled ones. *)
let frontend_stage ~trace memo kernel =
  match memo with
  | None -> (`Recomputed, Hcrf_frontend.Compile.compile kernel)
  | Some m -> (
    let t0 = now_ns () in
    let dig = Hcrf_frontend.Ast.digest kernel in
    match Memo.find m ~stage:Ev.Frontend dig with
    | Some (Memo.Loop_v s) ->
      emit_incr trace Ev.Frontend Ev.Stage_hit t0;
      (`Hit, Memo.loop_of_snapshot s)
    | Some _ | None ->
      emit_incr trace Ev.Frontend Ev.Stage_miss t0;
      let t1 = now_ns () in
      let _, loop = Hcrf_frontend.Compile.compile_keyed kernel in
      Memo.add m ~stage:Ev.Frontend dig (Memo.Loop_v (Memo.snapshot_of_loop loop));
      emit_incr trace Ev.Frontend Ev.Stage_recompute t1;
      (`Recomputed, loop))

let eval t (kernels : Hcrf_frontend.Ast.t list) =
  let t0 = Unix.gettimeofday () in
  let memo = t.ctx.Runner.Ctx.memo in
  let hits = ref 0 and recomputed = ref 0 in
  (* serial, input order: compilation is cheap next to scheduling, and
     a serial pass keeps stage counters jobs-independent *)
  let loops =
    List.map
      (fun kernel ->
        let trace =
          Hcrf_obs.Tracer.start t.ctx.Runner.Ctx.tracer
            ~label:kernel.Hcrf_frontend.Ast.name
        in
        let outcome, loop = frontend_stage ~trace memo kernel in
        (match outcome with
        | `Hit -> incr hits
        | `Recomputed -> incr recomputed);
        Hcrf_obs.Tracer.commit t.ctx.Runner.Ctx.tracer trace;
        loop)
      kernels
  in
  let perfs, sched = Runner.run_pipeline ~ctx:t.ctx t.config loops in
  let aggregate =
    Hcrf_eval.Metrics.aggregate t.config (List.filter_map Fun.id perfs)
  in
  let stats =
    {
      kernels = List.length kernels;
      frontend_hits = !hits;
      frontend_recomputed = !recomputed;
      sched;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  (perfs, aggregate, stats)

let pp_eval_stats ppf s =
  Fmt.pf ppf "kernels=%d frontend_hits=%d frontend_recomputed=%d %a"
    s.kernels s.frontend_hits s.frontend_recomputed Runner.pp_pipeline_stats
    s.sched

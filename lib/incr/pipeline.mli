(** The staged, memoized evaluation pipeline over a frontend program.

    A program (a list of loop-language kernels) flows through four
    fingerprinted stages — frontend compile, loop extraction / WL
    fingerprint construction, schedule, metrics — each memoized in the
    context's {!Hcrf_eval.Memo} keyed by its input digest.  {!eval}
    after an edit therefore recomputes only the stages whose upstream
    digest changed: an edited kernel recompiles and reschedules, every
    untouched kernel replays from the memo, and the results are
    byte-identical to a cold evaluation (up to re-measured
    [sched_seconds]).

    Without a memo in the context, {!eval} degrades to plain (cached)
    suite evaluation — same results, nothing replayed. *)

type t

(** What one {!eval} call did, stage by stage.  All counts derive from
    classification decisions taken serially in input order, so they are
    identical at any job count. *)
type eval_stats = {
  kernels : int;
  frontend_hits : int;  (** kernels replayed from the frontend memo *)
  frontend_recomputed : int;  (** kernels recompiled *)
  sched : Hcrf_eval.Runner.pipeline_stats;
      (** extract/schedule/metric stage accounting, incl. the dirty
          loop names *)
  wall_s : float;  (** wall-clock of the whole [eval] call *)
}

val create : ?ctx:Hcrf_eval.Runner.Ctx.t -> Hcrf_machine.Config.t -> t

val ctx : t -> Hcrf_eval.Runner.Ctx.t

(** Evaluate the program: per-kernel metrics in input order ([None]
    where scheduling failed), their aggregate, and the stage
    accounting. *)
val eval :
  t -> Hcrf_frontend.Ast.t list ->
  Hcrf_eval.Metrics.loop_perf option list
  * Hcrf_eval.Metrics.aggregate
  * eval_stats

val pp_eval_stats : Format.formatter -> eval_stats -> unit

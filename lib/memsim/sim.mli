(** Trace-driven stall-cycle simulation of one scheduled loop.

    Replays the loop's memory streams through the {!Cache} with a small
    timing model: a lockup-free cache with a bounded number of
    outstanding misses (merging fills to a line already in flight), an
    in-order processor that stalls when a load's value is not ready when
    the schedule expects it (stalls push all later issues back, so the
    miss queue drains), and stores that never stall (a store buffer is
    assumed).  Only a bounded number of iterations of one entry is
    simulated; stall counts are scaled to the loop's full [N * E]
    execution. *)

type mem_ref = {
  node : int;
  is_load : bool;
  issue_offset : int;   (** flat schedule cycle of the op *)
  sched_latency : int;  (** latency the schedule assumed for the value *)
  base : int;
  stride : int;
}

type result = {
  stall_cycles : float;  (** scaled to the loop's full execution *)
  simulated_iterations : int;
  misses : int;
  accesses : int;
}

val max_sim_iterations : int

(** [refs] must describe every memory operation of the *final* graph
    (including spill code); [n]/[e] are the per-entry trip count and the
    entry count.  A miss arriving with every MSHR busy steals the slot
    of the oldest pending fill (waiting for it to retire first), so the
    outstanding-miss count never exceeds [mshrs]; [debug] asserts that
    invariant after every allocation. *)
val run :
  ?mshrs:int -> ?debug:bool -> ?cache:Cache.t -> ii:int -> hit_read:int ->
  miss_cycles:int -> n:int -> e:int -> mem_ref list -> result

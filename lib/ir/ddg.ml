(** Mutable data-dependence graphs for innermost loops.

    Nodes are operations; edges carry a dependence kind and an iteration
    distance (0 for intra-iteration dependences, [>= 1] for loop-carried
    ones).  The graph is mutable because the schedulers insert and remove
    communication and spill operations while building a schedule.

    Values are identified with their defining node: the value produced by
    node [u] is consumed by the targets of the [True] out-edges of [u].
    Loop invariants (values defined before the loop and read-only inside it)
    are kept in a side table since they have no defining node. *)

type edge = {
  src : int;
  dst : int;
  dep : Dep.t;
  distance : int;
}

type node = {
  id : int;
  kind : Op.kind;
  mutable succs : edge list; (* out-edges *)
  mutable preds : edge list; (* in-edges *)
}

type invariant = {
  inv_id : int;
  mutable inv_consumers : int list;
}

type t = {
  name : string;
  nodes : (int, node) Hashtbl.t;
  mutable next_id : int;
  mutable next_inv : int;
  mutable invariants : invariant list;
  mutable watcher : (int -> unit) option;
      (* fired with [e.src] on every edge insertion/removal; lets a
         scheduler keep incremental per-value state (the consumer set of
         [e.src] just changed) without scanning the graph.  Never copied
         nor serialized. *)
}

let create ?(name = "loop") () =
  { name; nodes = Hashtbl.create 64; next_id = 0; next_inv = 0;
    invariants = []; watcher = None }

let set_watcher t w = t.watcher <- w
let notify t src = match t.watcher with None -> () | Some f -> f src

let name t = t.name
let num_nodes t = Hashtbl.length t.nodes
let mem t id = Hashtbl.mem t.nodes id

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> Fmt.invalid_arg "Ddg.node: unknown node %d in %s" id t.name

let kind t id = (node t id).kind
let succs t id = (node t id).succs
let preds t id = (node t id).preds

let add_node t kind =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.nodes id { id; kind; succs = []; preds = [] };
  id

let add_edge t ?(distance = 0) ~dep src dst =
  if distance < 0 then invalid_arg "Ddg.add_edge: negative distance";
  let e = { src; dst; dep; distance } in
  let ns = node t src and nd = node t dst in
  ns.succs <- e :: ns.succs;
  nd.preds <- e :: nd.preds;
  notify t src

let edge_equal a b =
  a.src = b.src && a.dst = b.dst && Dep.equal a.dep b.dep
  && a.distance = b.distance

(* Remove a single occurrence (parallel identical edges are legal, e.g.
   x*x uses the same value twice). *)
let remove_once p l =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest -> if p x then List.rev_append acc rest else go (x :: acc) rest
  in
  go [] l

let has_edge t e =
  mem t e.src && mem t e.dst
  && List.exists (edge_equal e) (node t e.src).succs

let remove_edge t e =
  let ns = node t e.src and nd = node t e.dst in
  ns.succs <- remove_once (edge_equal e) ns.succs;
  nd.preds <- remove_once (edge_equal e) nd.preds;
  notify t e.src

(** Remove a node and every edge touching it.  Invariant consumer lists are
    updated as well. *)
let remove_node t id =
  let n = node t id in
  List.iter (fun e -> remove_edge t e) n.succs;
  List.iter (fun e -> remove_edge t e) n.preds;
  List.iter
    (fun inv ->
      inv.inv_consumers <- List.filter (fun c -> c <> id) inv.inv_consumers)
    t.invariants;
  Hashtbl.remove t.nodes id

let add_invariant t ~consumers =
  let inv_id = t.next_inv in
  t.next_inv <- inv_id + 1;
  t.invariants <- { inv_id; inv_consumers = consumers } :: t.invariants;
  inv_id

let invariants t = t.invariants

let add_invariant_consumer t ~inv_id id =
  match List.find_opt (fun i -> i.inv_id = inv_id) t.invariants with
  | None -> Fmt.invalid_arg "Ddg.add_invariant_consumer: unknown %d" inv_id
  | Some inv -> inv.inv_consumers <- id :: inv.inv_consumers

(** Node ids in increasing order (deterministic iteration). *)
let nodes t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes []
  |> List.sort compare

let iter_nodes t f = List.iter (fun id -> f (node t id)) (nodes t)

let edges t =
  List.concat_map (fun id -> (node t id).succs) (nodes t)

let num_edges t = List.length (edges t)

(** True-dependence consumers of the value defined by [id]. *)
let consumers t id =
  List.filter_map
    (fun e -> if Dep.equal e.dep Dep.True then Some e else None)
    (succs t id)

(** The [True] in-edges of [id], i.e. the values it reads. *)
let operands t id =
  List.filter_map
    (fun e -> if Dep.equal e.dep Dep.True then Some e else None)
    (preds t id)

let count_kind t p =
  Hashtbl.fold (fun _ n acc -> if p n.kind then acc + 1 else acc) t.nodes 0

let num_memory_ops t = count_kind t Op.is_memory
let num_compute_ops t = count_kind t Op.is_compute

(** Deep copy; shares nothing with the original. *)
let copy t =
  let t' =
    { name = t.name; nodes = Hashtbl.create (Hashtbl.length t.nodes);
      next_id = t.next_id; next_inv = t.next_inv; invariants = [];
      watcher = None }
  in
  Hashtbl.iter
    (fun id n ->
      Hashtbl.replace t'.nodes id
        { id; kind = n.kind; succs = n.succs; preds = n.preds })
    t.nodes;
  t'.invariants <-
    List.map
      (fun inv ->
        { inv_id = inv.inv_id; inv_consumers = inv.inv_consumers })
      t.invariants;
  t'

(* ------------------------------------------------------------------ *)
(* Immutable representation for serialization (schedule caching)       *)

type repr = {
  repr_name : string;
  repr_next_id : int;
  repr_next_inv : int;
  repr_nodes : (int * Op.kind * edge list * edge list) list;
      (* id, kind, succs, preds — adjacency order preserved *)
  repr_invariants : (int * int list) list;
}

let to_repr t =
  {
    repr_name = t.name;
    repr_next_id = t.next_id;
    repr_next_inv = t.next_inv;
    repr_nodes =
      List.map
        (fun id ->
          let n = node t id in
          (id, n.kind, n.succs, n.preds))
        (nodes t);
    repr_invariants =
      List.map (fun inv -> (inv.inv_id, inv.inv_consumers)) t.invariants;
  }

let of_repr r =
  let t =
    { name = r.repr_name;
      nodes = Hashtbl.create (max 16 (List.length r.repr_nodes));
      next_id = r.repr_next_id; next_inv = r.repr_next_inv;
      invariants =
        List.map
          (fun (inv_id, inv_consumers) -> { inv_id; inv_consumers })
          r.repr_invariants;
      watcher = None }
  in
  List.iter
    (fun (id, kind, succs, preds) ->
      Hashtbl.replace t.nodes id { id; kind; succs; preds })
    r.repr_nodes;
  t

let pp ppf t =
  Fmt.pf ppf "@[<v>ddg %s (%d nodes)@," t.name (num_nodes t);
  iter_nodes t (fun n ->
      Fmt.pf ppf "  %d:%a ->%a@," n.id Op.pp_kind n.kind
        Fmt.(list ~sep:sp (fun ppf e ->
            Fmt.pf ppf " %d(%a,d%d)" e.dst Dep.pp e.dep e.distance))
        n.succs);
  Fmt.pf ppf "@]"

(** Structural well-formedness: every edge endpoint exists and appears in
    both adjacency lists; distances are non-negative. *)
let validate t =
  let ok = ref true in
  iter_nodes t (fun n ->
      List.iter
        (fun e ->
          if e.src <> n.id || not (mem t e.dst) || e.distance < 0 then
            ok := false
          else
            let back = (node t e.dst).preds in
            if not (List.exists (edge_equal e) back) then ok := false)
        n.succs;
      List.iter
        (fun e ->
          if e.dst <> n.id || not (mem t e.src) then ok := false
          else
            let fwd = (node t e.src).succs in
            if not (List.exists (edge_equal e) fwd) then ok := false)
        n.preds);
  List.iter
    (fun inv ->
      List.iter (fun c -> if not (mem t c) then ok := false)
        inv.inv_consumers)
    t.invariants;
  !ok

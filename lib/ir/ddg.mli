(** Mutable data-dependence graphs for innermost loops.

    Nodes are operations; edges carry a dependence kind and an iteration
    distance (0 for intra-iteration dependences, [>= 1] for loop-carried
    ones).  The graph is mutable because the schedulers insert and
    remove communication and spill operations while building a schedule.

    Values are identified with their defining node: the value produced
    by node [u] is consumed by the targets of the [True] out-edges of
    [u].  Loop invariants (values defined before the loop and read-only
    inside it) are kept in a side table since they have no defining
    node. *)

type edge = {
  src : int;
  dst : int;
  dep : Dep.t;
  distance : int;  (** iterations between production and consumption *)
}

type node = {
  id : int;
  kind : Op.kind;
  mutable succs : edge list;  (** out-edges *)
  mutable preds : edge list;  (** in-edges *)
}

type invariant = {
  inv_id : int;
  mutable inv_consumers : int list;
}

type t

val create : ?name:string -> unit -> t
val name : t -> string
val num_nodes : t -> int
val mem : t -> int -> bool

(** Raises [Invalid_argument] on an unknown id. *)
val node : t -> int -> node

val kind : t -> int -> Op.kind
val succs : t -> int -> edge list
val preds : t -> int -> edge list

(** Returns the fresh node's id. *)
val add_node : t -> Op.kind -> int

val add_edge : t -> ?distance:int -> dep:Dep.t -> int -> int -> unit

(** Whether this exact edge is present. *)
val has_edge : t -> edge -> bool

(** Remove a single occurrence (parallel identical edges are legal,
    e.g. [x * x] reads the same value twice). *)
val remove_edge : t -> edge -> unit

(** Remove a node and every edge touching it; invariant consumer lists
    are updated as well. *)
val remove_node : t -> int -> unit

(** Install (or clear) the edge watcher: it fires with [e.src] on every
    edge insertion and removal — i.e. whenever the consumer set of
    [e.src]'s value changes — including the per-edge removals of
    {!remove_node}.  Used by the scheduler to maintain incremental
    per-value lifetime state.  At most one watcher; [copy] and
    {!of_repr} never carry one over. *)
val set_watcher : t -> (int -> unit) option -> unit

val add_invariant : t -> consumers:int list -> int
val invariants : t -> invariant list
val add_invariant_consumer : t -> inv_id:int -> int -> unit

(** Node ids in increasing order (deterministic iteration). *)
val nodes : t -> int list

val iter_nodes : t -> (node -> unit) -> unit
val edges : t -> edge list
val num_edges : t -> int

(** [True]-dependence out-edges: the consumers of [id]'s value. *)
val consumers : t -> int -> edge list

(** [True]-dependence in-edges: the values [id] reads. *)
val operands : t -> int -> edge list

val count_kind : t -> (Op.kind -> bool) -> int
val num_memory_ops : t -> int
val num_compute_ops : t -> int

(** Deep copy; shares nothing with the original.  Node ids are
    preserved. *)
val copy : t -> t

(** Immutable, closure-free snapshot of a graph, suitable for
    [Marshal]-based serialization (schedule caching).  Node ids,
    adjacency-list order, invariants and the id counters are all
    preserved, so [of_repr (to_repr g)] is behaviourally identical to
    [g]. *)
type repr = {
  repr_name : string;
  repr_next_id : int;
  repr_next_inv : int;
  repr_nodes : (int * Op.kind * edge list * edge list) list;
      (** id, kind, succs, preds *)
  repr_invariants : (int * int list) list;
}

val to_repr : t -> repr
val of_repr : repr -> t

val pp : Format.formatter -> t -> unit

(** Structural well-formedness: every edge endpoint exists and appears
    in both adjacency lists; distances are non-negative. *)
val validate : t -> bool

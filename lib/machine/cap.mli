(** Possibly-unbounded capacities.

    The paper's static evaluation (Table 3, Figure 4) uses register
    banks and inter-level bandwidth with an unbounded number of
    registers/ports, written [S∞], [4C∞S∞], ...; we model those with a
    dedicated constructor instead of a sentinel integer. *)

type t = Finite of int | Inf

(** Raises [Invalid_argument] on a negative capacity. *)
val of_int : int -> t

val is_inf : t -> bool

(** [fits n c] is true when [n] units fit in capacity [c]. *)
val fits : int -> t -> bool

val exceeds : int -> t -> bool
val to_int_opt : t -> int option

(** Raises [Invalid_argument] on [Inf]. *)
val to_int_exn : t -> int

val min : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** ["inf"] or the decimal count — the token used by {!Rf.notation}. *)
val to_string : t -> string

(** Inverse of {!to_string}; raises [Failure] on malformed input. *)
val of_string : string -> t

(** Register-file organizations and the paper's [xCy-Sz] notation,
    generalized with per-bank access-port constraints and an optional
    third level.

    [x] is the number of clusters, [y] the registers per first-level
    (distributed) bank and [z] the registers in the shared second-level
    bank.  [lp]/[sp] are the per-bank input (LoadR) and output (StoreR)
    ports between levels — or, for a non-hierarchical clustered RF, the
    per-bank input/output ports of the inter-cluster bus network.

    Every generalized field defaults to absent; an absent field changes
    neither the notation nor the scheduler's resource model, so the
    legacy two-level encodings are a strict subset. *)

(** Explicit per-bank access ports: at most [pr] register reads and
    [pw] register writes per cycle on that bank.  [None] means
    "uniformly provisioned" (the paper's implicit assumption). *)
type access = { pr : Cap.t; pw : Cap.t }

val access : pr:Cap.t -> pw:Cap.t -> access
val equal_access : access -> access -> bool

(** Canonicalize a fully unbounded constraint ([pr = pw = Inf]) to the
    absent field: it constrains nothing, so the explicitly-uniform
    encoding ([@rinfwinf]) and the legacy one must be the same value
    (same notation, same schedules, same cache fingerprints).  The
    constructors and {!of_notation} apply this already. *)
val norm_access : access option -> access option

(** Optional third RF level below the shared bank: [l3_lp] bounds LoadR
    transfers L3 -> shared per cycle, [l3_sp] StoreR transfers
    shared -> L3, [l3_access] the L3 cell array's own ports.  With a
    third level present, memory operations exchange values with L3
    instead of the shared bank. *)
type level3 = {
  l3_regs : Cap.t;
  l3_lp : Cap.t;
  l3_sp : Cap.t;
  l3_access : access option;
}

(** [level3 regs] with transfer ports defaulting to 1/1. *)
val level3 : ?lp:Cap.t -> ?sp:Cap.t -> ?access:access -> int -> level3

type org =
  | Monolithic of { regs : Cap.t; access : access option }
      (** a single shared bank feeding all FUs and memory ports ([Sz]) *)
  | Clustered of {
      clusters : int;
      regs_per_bank : Cap.t;
      lp : Cap.t;  (** input ports per bank (bus side) *)
      sp : Cap.t;  (** output ports per bank (bus side) *)
      buses : Cap.t;
      access : access option;  (** per first-level bank *)
    }  (** FUs *and* memory ports distributed over [clusters] ([xCy]) *)
  | Hierarchical of {
      clusters : int;
      regs_per_bank : Cap.t;
      shared_regs : Cap.t;
      lp : Cap.t;  (** LoadR ports: shared -> local, per bank *)
      sp : Cap.t;  (** StoreR ports: local -> shared, per bank *)
      local_access : access option;
      shared_access : access option;
      l3 : level3 option;
    }  (** first-level banks per cluster + shared bank ([xCy-Sz]);
          [clusters = 1] is the pure hierarchical organization *)

type t = org

val monolithic : ?access:access -> int -> t

(** Raises [Invalid_argument] for fewer than 2 clusters; ports default
    to 1, buses to one per cluster. *)
val clustered :
  ?lp:Cap.t -> ?sp:Cap.t -> ?buses:Cap.t -> ?access:access -> clusters:int ->
  regs_per_bank:int -> unit -> t

val hierarchical :
  ?lp:Cap.t -> ?sp:Cap.t -> ?local_access:access -> ?shared_access:access ->
  ?l3:level3 -> clusters:int -> regs_per_bank:int -> shared_regs:int ->
  unit -> t

val clusters : t -> int
val is_hierarchical : t -> bool
val is_clustered : t -> bool

(** Registers in each first-level bank feeding the FUs (the single bank
    for a monolithic RF). *)
val local_regs : t -> Cap.t

val shared_regs : t -> Cap.t

(** The third level, when the organization has one. *)
val level3_of : t -> level3 option

(** Third-level registers ([Finite 0] when there is no third level). *)
val l3_regs : t -> Cap.t

(** Access-port constraint of the first-level banks (the single bank
    for a monolithic RF). *)
val local_access : t -> access option

val shared_access : t -> access option

(** Total storage capacity over all banks (including the third level). *)
val total_regs : t -> Cap.t

val lp : t -> Cap.t
val sp : t -> Cap.t

(** Paper notation — ["S128"], ["4C32"], ["1C64S64"] — extended with
    the generalized axes: [-L3:<regs>[l<lp>s<sp>]] adds a third level,
    [@r<n>w<n>] constrains the first-level banks' access ports,
    [@Sr<n>w<n>] the shared bank's, [@Tr<n>w<n>] the third level's;
    ["inf"] stands for an unbounded count anywhere.  Example:
    ["4C16S16-L3:64@r2w1"]. *)
val notation : t -> string

val pp : Format.formatter -> t -> unit

(** Parse the (extended) notation; inter-level ports default to
    lp=sp=1, every generalized field to absent.  Raises [Failure] on
    malformed input. *)
val of_notation : string -> t

val equal : t -> t -> bool

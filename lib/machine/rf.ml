(** Register-file organizations and the paper's [xCy-Sz] notation,
    generalized with per-bank access-port constraints and an optional
    third level.

    [x] is the number of clusters, [y] the registers per first-level
    (distributed) bank and [z] the registers in the shared second-level
    bank.  [lp]/[sp] are the per-bank input (LoadR) and output (StoreR)
    ports between levels — or, for a non-hierarchical clustered RF, the
    per-bank input/output ports of the inter-cluster bus network.

    Beyond the paper's fixed design space, a bank may carry an explicit
    {!access} constraint bounding how many register reads/writes its
    cell array serves per cycle (the read-port-count-reduction axis),
    and a hierarchical RF may grow an optional third level ({!level3})
    below the shared bank, reached by LoadR/StoreR transfers executed
    globally.  Every new field defaults to "absent", and an absent field
    changes neither the notation, the scheduler's resource model, nor
    any cache fingerprint — the legacy two-level encodings are a strict
    subset of the generalized one. *)

(** Explicit per-bank access ports: at most [pr] register reads and
    [pw] register writes per cycle on that bank.  [None] everywhere
    means "uniformly provisioned" — the paper's implicit assumption that
    a bank carries as many access ports as its consumers demand. *)
type access = { pr : Cap.t; pw : Cap.t }

let access ~pr ~pw = { pr; pw }

let equal_access a b = Cap.equal a.pr b.pr && Cap.equal a.pw b.pw

(* A fully unbounded constraint constrains nothing: canonicalize it to
   the absent field, so the explicitly-uniform encoding ([@rinfwinf])
   and the legacy one are the same value — same notation, same
   schedules, same cache fingerprints. *)
let norm_access = function
  | Some { pr = Cap.Inf; pw = Cap.Inf } -> None
  | a -> a

(** Optional third RF level below the shared bank.  [l3_lp] bounds the
    LoadR transfers L3 -> shared per cycle, [l3_sp] the StoreR transfers
    shared -> L3; [l3_access] optionally bounds the L3 cell array's own
    read/write ports.  With a third level present, memory operations
    exchange values with L3 instead of the shared bank. *)
type level3 = {
  l3_regs : Cap.t;
  l3_lp : Cap.t;
  l3_sp : Cap.t;
  l3_access : access option;
}

let level3 ?(lp = Cap.Finite 1) ?(sp = Cap.Finite 1) ?access regs =
  { l3_regs = Cap.of_int regs; l3_lp = lp; l3_sp = sp;
    l3_access = norm_access access }

type org =
  | Monolithic of { regs : Cap.t; access : access option }
      (** a single shared bank feeding all FUs and memory ports ([Sz]) *)
  | Clustered of {
      clusters : int;
      regs_per_bank : Cap.t;
      lp : Cap.t;  (** input ports per bank (bus side) *)
      sp : Cap.t;  (** output ports per bank (bus side) *)
      buses : Cap.t;
      access : access option;  (** per first-level bank *)
    }  (** FUs *and* memory ports distributed over [clusters] ([xCy]) *)
  | Hierarchical of {
      clusters : int;
      regs_per_bank : Cap.t;
      shared_regs : Cap.t;
      lp : Cap.t;  (** LoadR ports: shared -> local, per bank *)
      sp : Cap.t;  (** StoreR ports: local -> shared, per bank *)
      local_access : access option;
      shared_access : access option;
      l3 : level3 option;
    }  (** first-level banks per cluster + shared bank ([xCy-Sz]);
          [clusters = 1] is the pure hierarchical organization *)

type t = org

let monolithic ?access regs =
  Monolithic { regs = Cap.of_int regs; access = norm_access access }

let clustered ?lp ?sp ?buses ?access ~clusters ~regs_per_bank () =
  if clusters < 2 then invalid_arg "Rf.clustered: needs >= 2 clusters";
  let dflt = function Some c -> c | None -> Cap.Finite 1 in
  Clustered
    { clusters; regs_per_bank = Cap.of_int regs_per_bank;
      lp = dflt lp; sp = dflt sp;
      buses = (match buses with Some b -> b | None -> Cap.Finite clusters);
      access = norm_access access }

let hierarchical ?(lp = Cap.Finite 1) ?(sp = Cap.Finite 1) ?local_access
    ?shared_access ?l3 ~clusters ~regs_per_bank ~shared_regs () =
  if clusters < 1 then invalid_arg "Rf.hierarchical: needs >= 1 cluster";
  Hierarchical
    { clusters; regs_per_bank = Cap.of_int regs_per_bank;
      shared_regs = Cap.of_int shared_regs; lp; sp;
      local_access = norm_access local_access;
      shared_access = norm_access shared_access; l3 }

let clusters = function
  | Monolithic _ -> 1
  | Clustered { clusters; _ } | Hierarchical { clusters; _ } -> clusters

let is_hierarchical = function
  | Hierarchical _ -> true
  | Monolithic _ | Clustered _ -> false

let is_clustered = function
  | Clustered _ -> true
  | Hierarchical { clusters; _ } -> clusters > 1
  | Monolithic _ -> false

(** Registers in each first-level bank feeding the FUs.  For a monolithic
    RF the single bank feeds the FUs directly. *)
let local_regs = function
  | Monolithic { regs; _ } -> regs
  | Clustered { regs_per_bank; _ } | Hierarchical { regs_per_bank; _ } ->
    regs_per_bank

let shared_regs = function
  | Monolithic _ | Clustered _ -> Cap.Finite 0
  | Hierarchical { shared_regs; _ } -> shared_regs

let level3_of = function
  | Monolithic _ | Clustered _ -> None
  | Hierarchical { l3; _ } -> l3

let l3_regs t =
  match level3_of t with
  | None -> Cap.Finite 0
  | Some l3 -> l3.l3_regs

let local_access = function
  | Monolithic { access; _ } | Clustered { access; _ } -> access
  | Hierarchical { local_access; _ } -> local_access

let shared_access = function
  | Monolithic _ | Clustered _ -> None
  | Hierarchical { shared_access; _ } -> shared_access

(** Total storage capacity over all banks (including the third level). *)
let total_regs t =
  let add a b =
    match (a, b) with
    | Cap.Inf, _ | _, Cap.Inf -> Cap.Inf
    | Cap.Finite a, Cap.Finite b -> Cap.Finite (a + b)
  in
  let scale k = function
    | Cap.Inf -> Cap.Inf
    | Cap.Finite n -> Cap.Finite (k * n)
  in
  match t with
  | Monolithic { regs; _ } -> regs
  | Clustered { clusters; regs_per_bank; _ } -> scale clusters regs_per_bank
  | Hierarchical { clusters; regs_per_bank; shared_regs; l3; _ } ->
    add
      (add (scale clusters regs_per_bank) shared_regs)
      (match l3 with None -> Cap.Finite 0 | Some l -> l.l3_regs)

let lp = function
  | Monolithic _ -> Cap.Finite 0
  | Clustered { lp; _ } | Hierarchical { lp; _ } -> lp

let sp = function
  | Monolithic _ -> Cap.Finite 0
  | Clustered { sp; _ } | Hierarchical { sp; _ } -> sp

let pp_cap_short ppf c = Fmt.string ppf (Cap.to_string c)

(* Suffix encodings of the generalized fields.  Absent fields print
   nothing, so legacy organizations keep their legacy notation (and
   [equal], which compares notations, keeps its legacy meaning). *)
let access_suffix tag = function
  | None -> ""
  | Some a ->
    Fmt.str "@%sr%aw%a" tag pp_cap_short a.pr pp_cap_short a.pw

let l3_suffix = function
  | None -> ""
  | Some l3 ->
    let ports =
      if Cap.equal l3.l3_lp (Cap.Finite 1) && Cap.equal l3.l3_sp (Cap.Finite 1)
      then ""
      else Fmt.str "l%as%a" pp_cap_short l3.l3_lp pp_cap_short l3.l3_sp
    in
    Fmt.str "-L3:%a%s" pp_cap_short l3.l3_regs ports

(** Paper notation — [S128], [4C32], [1C64S64] — extended with the
    generalized axes: [-L3:<regs>[l<lp>s<sp>]] adds a third level,
    [@r<n>w<n>] constrains the first-level banks' access ports,
    [@Sr<n>w<n>] the shared bank's, [@Tr<n>w<n>] the third level's;
    [inf] stands for an unbounded count anywhere. *)
let notation t =
  match t with
  | Monolithic { regs; access } ->
    Fmt.str "S%a%s" pp_cap_short regs (access_suffix "" access)
  | Clustered { clusters; regs_per_bank; access; _ } ->
    Fmt.str "%dC%a%s" clusters pp_cap_short regs_per_bank
      (access_suffix "" access)
  | Hierarchical
      { clusters; regs_per_bank; shared_regs; local_access; shared_access;
        l3; _ } ->
    Fmt.str "%dC%aS%a%s%s%s%s" clusters pp_cap_short regs_per_bank
      pp_cap_short shared_regs (l3_suffix l3)
      (access_suffix "" local_access)
      (access_suffix "S" shared_access)
      (access_suffix "T" (match l3 with None -> None | Some l -> l.l3_access))

let pp ppf t = Fmt.string ppf (notation t)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let fail_parse s = Fmt.failwith "Rf.of_notation: cannot parse %S" s

(* Split [s] on '@'; the head is the base (+ optional L3 segment), every
   further chunk one access-port group. *)
let split_on_at s =
  match String.split_on_char '@' s with
  | [] -> fail_parse s
  | head :: groups -> (head, groups)

let cap_of_string s whole =
  match Cap.of_string s with
  | c -> c
  | exception Failure _ -> fail_parse whole

(* One "@..." group: "r<cap>w<cap>" (local), "Sr<cap>w<cap>" (shared),
   "Tr<cap>w<cap>" (third level). *)
let parse_group whole g =
  let tag, rest =
    if String.length g > 0 && (g.[0] = 'S' || g.[0] = 'T') then
      (String.make 1 g.[0], String.sub g 1 (String.length g - 1))
    else ("", g)
  in
  if String.length rest < 2 || rest.[0] <> 'r' then fail_parse whole
  else
    match String.index_opt rest 'w' with
    | None -> fail_parse whole
    | Some wi ->
      let pr = cap_of_string (String.sub rest 1 (wi - 1)) whole in
      let pw =
        cap_of_string (String.sub rest (wi + 1) (String.length rest - wi - 1))
          whole
      in
      (tag, { pr; pw })

(* The "-L3:<regs>[l<lp>s<sp>]" segment (without its leading "-L3:"). *)
let parse_l3 whole seg =
  match String.index_opt seg 'l' with
  | None -> { l3_regs = cap_of_string seg whole; l3_lp = Cap.Finite 1;
              l3_sp = Cap.Finite 1; l3_access = None }
  | Some li -> (
    let regs = cap_of_string (String.sub seg 0 li) whole in
    let rest = String.sub seg (li + 1) (String.length seg - li - 1) in
    match String.index_opt rest 's' with
    | None -> fail_parse whole
    | Some si ->
      let lp = cap_of_string (String.sub rest 0 si) whole in
      let sp =
        cap_of_string (String.sub rest (si + 1) (String.length rest - si - 1))
          whole
      in
      { l3_regs = regs; l3_lp = lp; l3_sp = sp; l3_access = None })

(* The base organization: S<n>, <x>C<y> or <x>C<y>S<z>. *)
let parse_base whole base ~local_access ~shared_access ~l3 =
  let reject_hier_only () =
    if shared_access <> None || l3 <> None then fail_parse whole
  in
  match String.index_opt base 'C' with
  | None ->
    if String.length base < 2 || base.[0] <> 'S' then fail_parse whole
    else begin
      reject_hier_only ();
      Monolithic
        { regs =
            cap_of_string (String.sub base 1 (String.length base - 1)) whole;
          access = local_access }
    end
  | Some ci -> (
    let x =
      match int_of_string_opt (String.sub base 0 ci) with
      | Some x when x >= 1 -> x
      | Some _ | None -> fail_parse whole
    in
    let rest = String.sub base (ci + 1) (String.length base - ci - 1) in
    match String.index_opt rest 'S' with
    | None ->
      if x < 2 then fail_parse whole;
      reject_hier_only ();
      Clustered
        { clusters = x; regs_per_bank = cap_of_string rest whole;
          lp = Cap.Finite 1; sp = Cap.Finite 1; buses = Cap.Finite x;
          access = local_access }
    | Some si ->
      let y = cap_of_string (String.sub rest 0 si) whole in
      let z =
        cap_of_string (String.sub rest (si + 1) (String.length rest - si - 1))
          whole
      in
      Hierarchical
        { clusters = x; regs_per_bank = y; shared_regs = z;
          lp = Cap.Finite 1; sp = Cap.Finite 1; local_access; shared_access;
          l3 })

(** Parse the (extended) paper notation.  Inter-level ports default to
    lp=sp=1 for multi-bank organizations; every generalized field
    defaults to absent.  Raises [Failure] on malformed input — a typo'd
    design point must not silently schedule a different machine. *)
let of_notation s =
  let head, groups = split_on_at s in
  let local_access = ref None
  and shared_access = ref None
  and l3_access = ref None in
  List.iter
    (fun g ->
      let cell =
        match parse_group s g with
        | "", a -> (`Local, a)
        | "S", a -> (`Shared, a)
        | "T", a -> (`L3, a)
        | _ -> fail_parse s
      in
      let slot =
        match fst cell with
        | `Local -> local_access
        | `Shared -> shared_access
        | `L3 -> l3_access
      in
      if !slot <> None then fail_parse s (* duplicate group *)
      else slot := Some (snd cell))
    groups;
  let base, l3 =
    (* the L3 marker must not be confused with a register count: search
       for the literal "-L3:" separator *)
    let marker = "-L3:" in
    let mlen = String.length marker in
    let rec find i =
      if i + mlen > String.length head then None
      else if String.sub head i mlen = marker then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> (head, None)
    | Some i ->
      let seg = String.sub head (i + mlen) (String.length head - i - mlen) in
      (String.sub head 0 i, Some (parse_l3 s seg))
  in
  if l3 = None && !l3_access <> None then fail_parse s;
  let l3 =
    match (l3, !l3_access) with
    | None, _ -> None
    | Some l, acc -> Some { l with l3_access = norm_access acc }
  in
  parse_base s base ~local_access:(norm_access !local_access)
    ~shared_access:(norm_access !shared_access) ~l3

let equal a b = notation a = notation b

(** Possibly-unbounded capacities.

    The paper's static evaluation (Table 3, Figure 4) uses register banks
    and inter-level bandwidth with an unbounded number of registers/ports,
    written [S∞], [4C∞S∞], ...  We model those with a dedicated constructor
    instead of a sentinel integer. *)

type t = Finite of int | Inf

let of_int n =
  if n < 0 then invalid_arg "Cap.of_int: negative capacity" else Finite n

let is_inf = function Inf -> true | Finite _ -> false

(** [fits n c] is true when [n] units fit in capacity [c]. *)
let fits n = function Inf -> true | Finite c -> n <= c

let exceeds n c = not (fits n c)

let to_int_opt = function Finite n -> Some n | Inf -> None

(** Numeric value for arithmetic contexts that need one; raises on [Inf]. *)
let to_int_exn = function
  | Finite n -> n
  | Inf -> invalid_arg "Cap.to_int_exn: unbounded capacity"

let min a b =
  match (a, b) with
  | Inf, x | x, Inf -> x
  | Finite a, Finite b -> Finite (Stdlib.min a b)

let equal a b =
  match (a, b) with
  | Inf, Inf -> true
  | Finite a, Finite b -> a = b
  | Inf, Finite _ | Finite _, Inf -> false

let pp ppf = function
  | Finite n -> Fmt.int ppf n
  | Inf -> Fmt.string ppf "inf"

let to_string = function Finite n -> string_of_int n | Inf -> "inf"

(** Parse ["inf"] or a non-negative integer; raises [Failure] on
    anything else (notation parsing wants a loud error, not a silent
    default). *)
let of_string s =
  if s = "inf" then Inf
  else
    match int_of_string_opt s with
    | Some n when n >= 0 -> Finite n
    | Some _ | None -> Fmt.failwith "Cap.of_string: bad capacity %S" s

(* hcrf_serve: long-lived scheduling daemon.

     hcrf_serve --addr /tmp/hcrf.sock --cache /var/cache/hcrf --jobs 8
     hcrf_serve --addr 127.0.0.1:7433 --lru 1024

   Clients (hcrf_explore serve-bench, Hcrf_serve.Client) send
   serialized loops over a length-prefixed binary protocol; answers
   come from an in-memory LRU, then the sharded on-disk schedule cache,
   then the scheduling engine on a persistent domain pool, with
   duplicate in-flight requests coalesced onto one computation.
   SIGTERM/SIGINT drain gracefully; a final stats line is printed on
   exit.  HCRF_SERVE_ADDR, HCRF_SERVE_LRU, HCRF_CACHE, HCRF_INCR,
   HCRF_JOBS and HCRF_TRACE supply defaults; with HCRF_INCR the
   incremental stage memo sits between the LRU and the cache and is
   saved at drain. *)

open Cmdliner
open Hcrf_server

let addr_arg =
  let doc =
    "Listen address: a unix-domain socket path, or host:port for TCP.  \
     Defaults to HCRF_SERVE_ADDR."
  in
  Arg.(value & opt (some string) None & info [ "a"; "addr" ] ~doc ~docv:"ADDR")

let cache_arg =
  let doc =
    "Back the schedule cache with $(docv) (overrides HCRF_CACHE); \
     without either, entries live in memory only."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~doc ~docv:"DIR")

let lru_arg =
  let doc =
    "Capacity of the in-memory LRU answer tier.  Defaults to \
     HCRF_SERVE_LRU."
  in
  Arg.(value & opt (some int) None & info [ "lru" ] ~doc ~docv:"N")

let jobs_arg =
  let doc =
    "Worker domains computing cache misses.  Defaults to HCRF_JOBS or \
     this machine's recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc ~docv:"N")

let max_frame_arg =
  let doc = "Reject request frames larger than $(docv) bytes." in
  Arg.(
    value
    & opt int Wire.default_max_frame
    & info [ "max-frame" ] ~doc ~docv:"BYTES")

let run addr cache_dir lru jobs max_frame =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  Hcrf_eval.Env.warn_unknown ();
  match
    match addr with
    | Some a -> Some a
    | None -> Hcrf_eval.Env.serve_addr ()
  with
  | None ->
    Fmt.epr "hcrf_serve: no address (pass --addr or set HCRF_SERVE_ADDR)@.";
    exit 2
  | Some addr_s -> (
    let addr = Wire.addr_of_string addr_s in
    let dir =
      match cache_dir with
      | Some _ as d -> d
      | None -> Option.bind (Hcrf_eval.Env.cache ()) Hcrf_cache.Cache.dir
    in
    let lru_capacity =
      match lru with Some n -> max 1 n | None -> Hcrf_eval.Env.serve_lru ()
    in
    let jobs =
      match jobs with Some n -> max 1 n | None -> Hcrf_eval.Env.jobs ()
    in
    let tracer = Hcrf_eval.Env.tracer () in
    let memo = Hcrf_eval.Env.memo () in
    let tiers = Tiers.create ?dir ?memo ~lru_capacity ~jobs ~tracer () in
    match Daemon.create ~max_frame ~addr tiers with
    | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "hcrf_serve: cannot listen on %a: %s@." Wire.pp_addr addr
        (Unix.error_message e);
      exit 1
    | daemon ->
      Daemon.install_signal_handlers daemon;
      Fmt.pr "hcrf_serve: listening on %a (lru=%d jobs=%d cache=%s)@."
        Wire.pp_addr addr lru_capacity jobs
        (Option.value ~default:"memory" dir);
      (* the smoke script waits for the line above before connecting *)
      Format.print_flush ();
      Daemon.run daemon;
      Fmt.pr "hcrf_serve: drained; %a@." Wire.pp_serve_stats
        (Tiers.stats tiers);
      (* persist the stage memo (no-op for an in-memory one) so the
         next daemon starts warm *)
      Option.iter (fun m -> ignore (Hcrf_eval.Memo.save m)) memo;
      (match Hcrf_obs.Tracer.counters tracer with
      | None -> ()
      | Some c -> Fmt.pr "trace: %a@." Hcrf_obs.Counters.pp c);
      Hcrf_obs.Tracer.close tracer)

let () =
  let info =
    Cmd.info "hcrf_serve" ~version:"1.0"
      ~doc:"Scheduling daemon with a sharded, tiered schedule cache"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ addr_arg $ cache_arg $ lru_arg $ jobs_arg
            $ max_frame_arg)))

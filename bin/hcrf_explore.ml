(* hcrf-explore: command-line front end to the library.

     hcrf_explore schedule --kernel daxpy --config 8C16S16 --dump
     hcrf_explore suite --config 4C32 -n 200 --memory real
     hcrf_explore hw --config 4C32S16
     hcrf_explore hw --all
     hcrf_explore duel --config 1C32S64 -n 100
     hcrf_explore suite -n 50 --trace run.jsonl
     hcrf_explore trace run.jsonl
     hcrf_explore incr --kernels 120 --edits 3 --verify

   Every scheduling subcommand takes the same evaluation knobs:
   --jobs/-j, --cache DIR / --no-cache, --trace FILE / --no-trace,
   --memory SCENARIO, --incr / --incr-dir DIR / --no-incr.  One shared
   Cmdliner term assembles them into the single [Runner.Ctx] every
   driver consumes — a new subcommand cannot drift from the others —
   and the environment (HCRF_JOBS, HCRF_CACHE, HCRF_TRACE, HCRF_INCR)
   supplies defaults exactly as in bench/main.exe. *)

open Cmdliner
open Hcrf_sched

let config_of_string s =
  match Hcrf_model.Hw_table.find s with
  | Some row -> Hcrf_model.Presets.of_published row
  | None -> (
    (* fall back to the analytic technology model for unpublished points *)
    try Hcrf_model.Presets.of_model (Hcrf_machine.Rf.of_notation s)
    with Failure msg | Invalid_argument msg -> failwith msg)

let config_arg =
  let doc =
    "Register-file organization, in the paper's notation extended with \
     the generalized axes: S128, 4C32, 2C32S64, 4C16S16-L3:64@r2w1, ...  \
     Published Table-5 points use the published hardware; anything else \
     is priced with the CACTI/FO4 model.  Defaults to HCRF_CONFIG, or \
     8C16S16."
  in
  let arg =
    Arg.(value & opt (some string) None & info [ "c"; "config" ] ~doc)
  in
  let resolve = function
    | Some s -> s
    | None -> (
      match Hcrf_eval.Env.config () with
      | Some c -> c.Hcrf_machine.Config.name
      | None -> "8C16S16")
  in
  Term.(const resolve $ arg)

let n_arg =
  let doc = "Number of synthetic workbench loops." in
  Arg.(value & opt int 200 & info [ "n"; "loops" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for suite evaluation (1 = serial; results are \
     identical for any value).  Defaults to HCRF_JOBS or this machine's \
     recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc)

(* Schedule cache: --cache DIR forces an on-disk cache, --no-cache
   disables caching entirely; otherwise HCRF_CACHE is honoured the same
   way as in bench/main.exe ("" = in-memory only). *)
let cache_term =
  let cache_dir =
    let doc =
      "Back the content-addressed schedule cache with $(docv) \
       (overrides the HCRF_CACHE environment variable)."
    in
    Arg.(value & opt (some string) None & info [ "cache" ] ~doc ~docv:"DIR")
  in
  let no_cache =
    let doc = "Disable the schedule cache even if HCRF_CACHE is set." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let make dir no =
    if no then None
    else
      match dir with
      | Some d -> Some (Hcrf_cache.Cache.create ~dir:d ())
      | None -> Hcrf_eval.Env.cache ()
  in
  Term.(const make $ cache_dir $ no_cache)

(* Event tracing: --trace FILE records a JSONL trace (plus in-process
   counters), --no-trace forces the null tracer; otherwise HCRF_TRACE
   is honoured ("" = counters only). *)
let tracer_term =
  let trace_file =
    let doc =
      "Record a JSONL event trace to $(docv) (overrides the HCRF_TRACE \
       environment variable).  A final \"trace:\" line reports the \
       sorted event totals."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let no_trace =
    let doc = "Disable event tracing even if HCRF_TRACE is set." in
    Arg.(value & flag & info [ "no-trace" ] ~doc)
  in
  let make file no =
    let open Hcrf_eval.Env in
    if no then tracer_of_spec Off
    else
      match file with
      | Some f -> tracer_of_spec (File f)
      | None -> tracer ()
  in
  Term.(const make $ trace_file $ no_trace)

(* Incremental stage memo: --incr forces an in-memory memo, --incr-dir
   a persistent one, --no-incr disables it; otherwise HCRF_INCR is
   honoured. *)
let memo_term =
  let incr_flag =
    let doc =
      "Enable the in-memory incremental stage memo (overrides \
       HCRF_INCR)."
    in
    Arg.(value & flag & info [ "incr" ] ~doc)
  in
  let incr_dir =
    let doc =
      "Back the incremental stage memo with $(docv) (persisted as \
       $(docv)/memo.v1; overrides HCRF_INCR)."
    in
    Arg.(value & opt (some string) None & info [ "incr-dir" ] ~doc ~docv:"DIR")
  in
  let no_incr =
    let doc = "Disable the incremental stage memo even if HCRF_INCR is set." in
    Arg.(value & flag & info [ "no-incr" ] ~doc)
  in
  let make on dir no =
    let open Hcrf_eval.Env in
    if no then None
    else
      match dir with
      | Some d -> memo_of_spec (Incr_dir d)
      | None -> if on then memo_of_spec Incr_memory else memo ()
  in
  Term.(const make $ incr_flag $ incr_dir $ no_incr)

let memory_conv =
  Arg.enum
    [
      ("ideal", Hcrf_eval.Runner.Ideal);
      ("real", Hcrf_eval.Runner.Real { prefetch = false });
      ("prefetch", Hcrf_eval.Runner.Real { prefetch = true });
    ]

let memory_arg =
  let doc =
    Fmt.str "Memory scenario, $(docv) is %s."
      (Arg.doc_alts_enum [ ("ideal", ()); ("real", ()); ("prefetch", ()) ])
  in
  Arg.(
    value
    & opt memory_conv Hcrf_eval.Runner.Ideal
    & info [ "m"; "memory" ] ~doc ~docv:"SCENARIO")

(* The one evaluation context shared by every scheduling subcommand:
   [Runner.Ctx.make] is the single construction path, so adding a knob
   here adds it to every subcommand at once. *)
let ctx_term =
  let make scenario jobs cache memo tracer =
    let jobs =
      match jobs with Some j -> max 1 j | None -> Hcrf_eval.Env.jobs ()
    in
    Hcrf_eval.Runner.Ctx.make ~scenario ?cache ?memo ~jobs ~tracer ()
  in
  Term.(
    const make $ memory_arg $ jobs_arg $ cache_term $ memo_term
    $ tracer_term)

(* Sorted event totals at the end of a traced run, then flush/close any
   JSONL sink.  Prints nothing under the null tracer. *)
let finish_trace tracer =
  (match Hcrf_obs.Tracer.counters tracer with
  | None -> ()
  | Some c -> Fmt.pr "trace: %a@." Hcrf_obs.Counters.pp c);
  Hcrf_obs.Tracer.close tracer

(* Proper enum converters so a typo reports the valid values instead of
   dying with an uncaught Failure backtrace. *)
let kernel_conv =
  Arg.enum (List.map (fun (name, _) -> (name, name)) Hcrf_workload.Kernels.all)

(* ------------------------------------------------------------------ *)

let schedule_cmd =
  let kernel_arg =
    let doc = "Kernel to schedule, $(docv) one of the built-in kernels." in
    Arg.(
      value & opt kernel_conv "daxpy"
      & info [ "k"; "kernel" ] ~doc ~docv:"KERNEL")
  in
  let dump_arg =
    Arg.(value & flag & info [ "dump" ] ~doc:"Print the full schedule.")
  in
  let run kernel config_name dump (ctx : Hcrf_eval.Runner.Ctx.t) =
    let config = config_of_string config_name in
    let loop = Hcrf_workload.Kernels.find kernel in
    let tracer = ctx.Hcrf_eval.Runner.Ctx.tracer in
    let trace = Hcrf_obs.Tracer.start tracer ~label:kernel in
    let result =
      Hcrf_core.Mirs_hc.schedule ~trace config loop.Hcrf_ir.Loop.ddg
    in
    Hcrf_obs.Tracer.commit tracer trace;
    match result with
    | Error (`No_schedule ii) ->
      Fmt.epr "no schedule up to II=%d@." ii;
      finish_trace tracer;
      exit 1
    | Ok o ->
      Fmt.pr "%s on %s: II=%d (MII=%d) SC=%d, %d ops (%d inserted)@." kernel
        config.Hcrf_machine.Config.name o.Engine.ii o.Engine.mii o.Engine.sc
        (Hcrf_ir.Ddg.num_nodes o.Engine.graph)
        (Hcrf_ir.Ddg.num_nodes o.Engine.graph
        - Hcrf_ir.Ddg.num_nodes loop.Hcrf_ir.Loop.ddg);
      let issues = Hcrf_core.Mirs_hc.validate o in
      if issues = [] then Fmt.pr "validation: ok@."
      else
        Fmt.pr "validation: %a@."
          Fmt.(list ~sep:comma Validate.pp_issue)
          issues;
      if dump then Fmt.pr "%a@." Schedule.pp o.Engine.schedule;
      finish_trace tracer
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Schedule one kernel on one configuration")
    Term.(const run $ kernel_arg $ config_arg $ dump_arg $ ctx_term)

let suite_cmd =
  let run config_name n (ctx : Hcrf_eval.Runner.Ctx.t) =
    let config = config_of_string config_name in
    let loops = Hcrf_workload.Suite.generate ~n () in
    let results = Hcrf_eval.Runner.run_suite ~ctx config loops in
    let a = Hcrf_eval.Runner.aggregate config results in
    let cache_stats =
      Option.map Hcrf_cache.Cache.stats ctx.Hcrf_eval.Runner.Ctx.cache
    in
    Fmt.pr "%a@."
      (Hcrf_eval.Metrics.pp_aggregate ?cache:cache_stats ?trace:None)
      a;
    List.iter
      (fun (b, count, cycles) ->
        Fmt.pr "  %-8s %4d loops  %.3e cycles@." (Hcrf_eval.Classify.name b)
          count cycles)
      a.Hcrf_eval.Metrics.bound_share;
    finish_trace ctx.Hcrf_eval.Runner.Ctx.tracer
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Schedule the synthetic workbench on one configuration")
    Term.(const run $ config_arg $ n_arg $ ctx_term)

let hw_cmd =
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Print every Table-5 row.")
  in
  (* hw prices hardware only — it never runs the scheduler, so the
     shared ctx knobs are accepted (for interface consistency) but the
     cache stays cold and the trace stays empty. *)
  let run config_name all (ctx : Hcrf_eval.Runner.Ctx.t) =
    if all then
      Fmt.pr "%a@."
        (Hcrf_eval.Experiments.pp_hw_rows ~title:"Hardware evaluation")
        (Hcrf_eval.Experiments.table5 ())
    else begin
      let config = config_of_string config_name in
      let est = Hcrf_model.Cacti.estimate config in
      Fmt.pr "%a@." Hcrf_machine.Config.pp config;
      Fmt.pr
        "model: local access %.3f ns, shared %a ns, total area %.2f Ml2@."
        est.Hcrf_model.Cacti.local_access_ns
        Fmt.(option ~none:(any "-") (fmt "%.3f"))
        est.Hcrf_model.Cacti.shared_access_ns
        est.Hcrf_model.Cacti.total_area_mlambda2
    end;
    Hcrf_obs.Tracer.close ctx.Hcrf_eval.Runner.Ctx.tracer
  in
  Cmd.v
    (Cmd.info "hw" ~doc:"Price a configuration with the technology model")
    Term.(const run $ config_arg $ all_arg $ ctx_term)

let ports_cmd =
  (* sweep the communication resources of an organization and report
     the ΣII impact: the inter-level lp/sp ports (the §4 design
     decision) and, on the generalized axis, the per-bank access-port
     counts of the first-level banks — where does the hierarchical
     organization stop paying once ports are scarce? *)
  let json_arg =
    let doc = "Write an hcrf-bench/1 JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let access_arg =
    let doc =
      "Sweep the per-bank access ports of the first-level banks \
       (uniform, then r6w4 down to r2w1) instead of the inter-level \
       lp/sp ports.  Works for any organization."
    in
    Arg.(value & flag & info [ "access" ] ~doc)
  in
  let run config_name n access json (ctx : Hcrf_eval.Runner.Ctx.t) =
    let open Hcrf_machine in
    let base = Rf.of_notation config_name in
    let loops = Hcrf_workload.Suite.generate ~n () in
    let rows = ref [] in
    let wall f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    (* one swept design point: a cold pass then a warm pass (identical
       unless a cache is armed), recorded for the JSON report *)
    let point rf =
      let config = Hcrf_model.Presets.of_model rf in
      let run_once () =
        Hcrf_eval.Runner.aggregate config
          (Hcrf_eval.Runner.run_suite ~ctx config loops)
      in
      let a, cold_s = wall run_once in
      let _, warm_s = wall run_once in
      rows := (Rf.notation rf, a, cold_s, warm_s) :: !rows;
      a
    in
    if access then begin
      Fmt.pr "Access-port sweep for %s (%d loops):@." config_name n;
      Fmt.pr "   pr  pw | sumII | %%MII@.";
      let with_access acc =
        match base with
        | Rf.Monolithic m -> Rf.Monolithic { m with access = acc }
        | Rf.Clustered c -> Rf.Clustered { c with access = acc }
        | Rf.Hierarchical h -> Rf.Hierarchical { h with local_access = acc }
      in
      List.iter
        (fun acc ->
          let rf =
            with_access
              (Option.map
                 (fun (pr, pw) ->
                   Rf.access ~pr:(Cap.Finite pr) ~pw:(Cap.Finite pw))
                 acc)
          in
          let a = point rf in
          let pr, pw =
            match acc with
            | None -> ("inf", "inf")
            | Some (pr, pw) -> (string_of_int pr, string_of_int pw)
          in
          Fmt.pr "  %3s %3s | %5d | %4.1f@." pr pw
            a.Hcrf_eval.Metrics.sum_ii a.Hcrf_eval.Metrics.pct_at_mii)
        [ None; Some (6, 4); Some (5, 3); Some (4, 3); Some (3, 2);
          Some (2, 1) ]
    end
    else begin
      match base with
      | Rf.Hierarchical h ->
        Fmt.pr "Port sweep for %s (%d loops):@." config_name n;
        Fmt.pr "  lp sp | sumII | %%MII@.";
        List.iter
          (fun (lp, sp) ->
            let rf =
              Rf.Hierarchical
                { h with lp = Cap.Finite lp; sp = Cap.Finite sp }
            in
            let a = point rf in
            Fmt.pr "  %2d %2d | %5d | %4.1f@." lp sp
              a.Hcrf_eval.Metrics.sum_ii a.Hcrf_eval.Metrics.pct_at_mii)
          [ (1, 1); (2, 1); (2, 2); (3, 2); (4, 2) ]
      | _ ->
        failwith
          "ports: the lp/sp sweep needs a hierarchical configuration \
           (xCySz); use --access for the access-port sweep"
    end;
    Option.iter
      (fun c ->
        Fmt.pr "cache: %a@." Hcrf_cache.Cache.pp_stats
          (Hcrf_cache.Cache.stats c))
      ctx.Hcrf_eval.Runner.Ctx.cache;
    finish_trace ctx.Hcrf_eval.Runner.Ctx.tracer;
    match json with
    | None -> ()
    | Some file ->
      let rows = List.rev !rows in
      let last = List.length rows - 1 in
      let oc = open_out file in
      Printf.fprintf oc "{ \"schema\": \"hcrf-bench/1\", \"runs\": [\n";
      List.iteri
        (fun i (label, (a : Hcrf_eval.Metrics.aggregate), cold_s, warm_s) ->
          Printf.fprintf oc
            "  { \"config\": %S, \"loops\": %d, \"jobs\": %d,\n\
            \    \"sum_ii\": %d, \"pct_at_mii\": %.1f,\n\
            \    \"cold_wall_s\": %.3f, \"warm_wall_s\": %.3f,\n\
            \    \"phase_ns\": {  } }%s\n"
            label n ctx.Hcrf_eval.Runner.Ctx.jobs a.Hcrf_eval.Metrics.sum_ii
            a.Hcrf_eval.Metrics.pct_at_mii cold_s warm_s
            (if i = last then "" else ","))
        rows;
      Printf.fprintf oc "] }\n";
      close_out oc
  in
  Cmd.v
    (Cmd.info "ports"
       ~doc:
         "Sweep the LoadR/StoreR or per-bank access-port counts of an \
          organization")
    Term.(const run $ config_arg $ n_arg $ access_arg $ json_arg $ ctx_term)

let scarcity_cmd =
  let flat_arg =
    let doc = "Flat clustered organization (the rival)." in
    Arg.(value & opt string "4C32" & info [ "flat" ] ~doc)
  in
  let hier_arg =
    let doc = "Hierarchical organization under test." in
    Arg.(value & opt string "4C16S16" & info [ "hier" ] ~doc)
  in
  let run flat hier n (ctx : Hcrf_eval.Runner.Ctx.t) =
    let loops = Hcrf_workload.Suite.generate ~n () in
    let rows = Hcrf_eval.Experiments.port_scarcity ~flat ~hier ~ctx ~loops () in
    Fmt.pr "%a@." Hcrf_eval.Experiments.pp_port_scarcity rows;
    finish_trace ctx.Hcrf_eval.Runner.Ctx.tracer
  in
  Cmd.v
    (Cmd.info "scarcity"
       ~doc:
         "Access-port scarcity sweep: execution time of a hierarchical \
          organization against its flat rival as per-bank ports shrink")
    Term.(const run $ flat_arg $ hier_arg $ n_arg $ ctx_term)

let duel_cmd =
  let run config_name n (ctx : Hcrf_eval.Runner.Ctx.t) =
    let config = config_of_string config_name in
    let loops = Hcrf_workload.Suite.generate ~n () in
    let t = Hcrf_eval.Experiments.table4 ~config ~ctx ~loops () in
    Fmt.pr "%a@." Hcrf_eval.Experiments.pp_table4 t;
    finish_trace ctx.Hcrf_eval.Runner.Ctx.tracer
  in
  Cmd.v
    (Cmd.info "duel"
       ~doc:"Compare MIRS_HC against the non-iterative scheduler of [36]")
    Term.(const run $ config_arg $ n_arg $ ctx_term)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.")
  in
  let cases_arg =
    Arg.(value & opt int 500 & info [ "cases" ] ~doc:"Number of fuzz cases.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")
  in
  let corpus_arg =
    let doc = "Write one reproducer file per failure into $(docv)." in
    Arg.(value & opt string "corpus" & info [ "corpus" ] ~doc ~docv:"DIR")
  in
  let no_corpus_arg =
    Arg.(value & flag & info [ "no-corpus" ] ~doc:"Do not write reproducers.")
  in
  let inject_arg =
    let doc =
      "Oracle self-test: disable the engine's resource-conflict check, so \
       every scheduled case must be caught by independent validation and \
       shrunk to a small reproducer."
    in
    Arg.(value & flag & info [ "inject-fault" ] ~doc)
  in
  let exact_arg =
    let doc =
      "Arm the Optimality oracle: generate exact-tractable loops (the \
       small_exact preset) and certify every scheduled case with the \
       exact branch-and-bound; the heuristic undercutting a certified \
       bound is an oracle failure."
    in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run seed cases no_shrink corpus no_corpus inject exact
      (ctx : Hcrf_eval.Runner.Ctx.t) =
    let corpus = if no_corpus then None else Some corpus in
    if inject then Schedule.fault := Some Schedule.Lax_resources;
    Fun.protect
      ~finally:(fun () -> Schedule.fault := None)
      (fun () ->
        let param_presets =
          if exact then Some Hcrf_check.Check.small_exact_presets else None
        in
        let report =
          Hcrf_check.Check.campaign ~ctx ~shrink:(not no_shrink) ?corpus
            ?param_presets ~exact ~seed ~cases ()
        in
        Fmt.pr "%a@." Hcrf_check.Check.pp_report report;
        finish_trace ctx.Hcrf_eval.Runner.Ctx.tracer;
        if report.Hcrf_check.Check.r_failures <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: cross-validate the scheduler against \
          independent oracles on randomized loops")
    Term.(
      const run $ seed_arg $ cases_arg $ no_shrink_arg $ corpus_arg
      $ no_corpus_arg $ inject_arg $ exact_arg $ ctx_term)

let exact_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Seed for the --genloop corpus.")
  in
  let genloop_arg =
    let doc =
      "Certify a seeded Genloop corpus (the small_exact preset) instead \
       of the synthetic workbench."
    in
    Arg.(value & flag & info [ "genloop" ] ~doc)
  in
  let max_nodes_arg =
    let doc = "Skip loops with more than $(docv) operations." in
    Arg.(value & opt int 12 & info [ "max-nodes" ] ~doc ~docv:"N")
  in
  let budget_arg =
    let doc = "Branch-and-bound step budget per loop." in
    Arg.(
      value
      & opt int Hcrf_exact.Exact.default_budget
      & info [ "budget" ] ~doc ~docv:"STEPS")
  in
  let gap_corpus_arg =
    let doc =
      "Hunt optimality gaps instead: sweep small_exact cases across the \
       published configurations, shrink every case the heuristic \
       provably misses, and write one reproducer per gap into $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "gap-corpus" ] ~doc ~docv:"DIR")
  in
  let run config_name n seed genloop max_nodes budget gap_corpus
      (ctx : Hcrf_eval.Runner.Ctx.t) =
    match gap_corpus with
    | Some dir ->
      let repros = Hcrf_check.Check.hunt_gaps ~seed ~cases:n () in
      List.iter
        (fun (r : Hcrf_check.Repro.t) ->
          let path = Hcrf_check.Repro.write ~dir r in
          Fmt.pr "%s: %s@." path r.Hcrf_check.Repro.detail)
        repros;
      Fmt.pr "gap hunt: seed=%d cases=%d gaps=%d@." seed n
        (List.length repros)
    | None ->
      let config = config_of_string config_name in
      let loops =
        if genloop then
          let params = List.assoc "small_exact"
              Hcrf_check.Check.small_exact_presets in
          List.init n (fun index ->
              let rng = Hcrf_workload.Rng.create ~seed:(seed + index) in
              Hcrf_workload.Genloop.generate ~params ~rng ~index ())
        else Hcrf_workload.Suite.generate ~n ()
      in
      let loops =
        List.filter
          (fun (l : Hcrf_ir.Loop.t) ->
            Hcrf_ir.Ddg.num_nodes l.Hcrf_ir.Loop.ddg <= max_nodes)
          loops
      in
      let tracer = ctx.Hcrf_eval.Runner.Ctx.tracer in
      let certified = ref 0 and budget_hit = ref 0 and violations = ref 0 in
      let gaps = Hashtbl.create 7 in
      List.iter
        (fun (loop : Hcrf_ir.Loop.t) ->
          let name = Hcrf_ir.Loop.name loop in
          let trace = Hcrf_obs.Tracer.start tracer ~label:name in
          let r =
            Hcrf_exact.Exact.solve ~budget ~trace config
              loop.Hcrf_ir.Loop.ddg
          in
          Hcrf_obs.Tracer.commit tracer trace;
          let heur =
            match Engine.schedule config loop.Hcrf_ir.Loop.ddg with
            | Error _ -> None
            | Ok o -> Some o.Engine.ii
          in
          if r.Hcrf_exact.Exact.x_optimal then begin
            incr certified;
            match heur with
            | Some h ->
              let g = h - r.Hcrf_exact.Exact.x_lb in
              Hashtbl.replace gaps g
                (1 + Option.value ~default:0 (Hashtbl.find_opt gaps g))
            | None -> ()
          end;
          if r.Hcrf_exact.Exact.x_budget_hit then incr budget_hit;
          (match heur with
          | Some h
            when r.Hcrf_exact.Exact.x_lb_exhausted
                 && h < r.Hcrf_exact.Exact.x_lb ->
            incr violations;
            Fmt.pr "VIOLATION %s: heuristic II=%d beats certified lb=%d@."
              name h r.Hcrf_exact.Exact.x_lb
          | _ -> ());
          Fmt.pr "%-10s nodes=%-3d %a heur_ii=%a@." name
            (Hcrf_ir.Ddg.num_nodes loop.Hcrf_ir.Loop.ddg)
            Hcrf_exact.Exact.pp r
            Fmt.(option ~none:(any "-") int)
            heur)
        loops;
      let gaps =
        List.sort compare
          (Hashtbl.fold (fun g n acc -> (g, n) :: acc) gaps [])
      in
      Fmt.pr "exact: config=%s loops=%d certified=%d budget_hit=%d gaps:%a@."
        config.Hcrf_machine.Config.name (List.length loops) !certified
        !budget_hit
        Fmt.(list ~sep:nop (fun ppf (g, n) -> pf ppf " %d=%d" g n))
        gaps;
      finish_trace tracer;
      if !violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:
         "Certify minimal IIs of small loops with the exact \
          branch-and-bound and measure the heuristic's optimality gap")
    Term.(
      const run $ config_arg $ n_arg $ seed_arg $ genloop_arg $ max_nodes_arg
      $ budget_arg $ gap_corpus_arg $ ctx_term)

let trace_cmd =
  (* validate a recorded trace against the versioned schema and replay
     it into counters — `diff` of two "trace:" lines is the merge
     check used by the determinism tests *)
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace file to validate.")
  in
  let run file =
    match Hcrf_obs.Jsonl.read_file file with
    | Error msg ->
      Fmt.epr "invalid trace: %s@." msg;
      exit 1
    | Ok events ->
      Fmt.pr "valid: %d events (schema %s v%d)@." (List.length events)
        Hcrf_obs.Jsonl.schema_name Hcrf_obs.Jsonl.version;
      let c = Hcrf_obs.Counters.create () in
      List.iter (fun (_label, ev) -> Hcrf_obs.Counters.add c ev) events;
      Fmt.pr "trace: %a@." Hcrf_obs.Counters.pp c
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Validate a JSONL event trace and print its counter totals")
    Term.(const run $ file_arg)

let serve_bench_cmd =
  (* fire a request storm at a running hcrf_serve daemon and print the
     tier counters each phase moved: one cold pass (every distinct loop
     once), then a concurrent warm storm.  Every response is checked
     byte-identical to the first response for its loop; --verify
     additionally byte-compares against a local Runner.run_loop
     (wall-clock seconds scrubbed: independent computations).
     --malformed sends a garbage frame first and proves the daemon
     survives it.  --json emits an hcrf-bench/1 document. *)
  let open Hcrf_server in
  let addr_arg =
    let doc =
      "Daemon address (unix socket path or host:port).  Defaults to \
       HCRF_SERVE_ADDR."
    in
    Arg.(
      value & opt (some string) None & info [ "a"; "addr" ] ~doc ~docv:"ADDR")
  in
  let requests_arg =
    let doc = "Total schedule requests in the warm storm." in
    Arg.(value & opt int 1000 & info [ "r"; "requests" ] ~doc ~docv:"N")
  in
  let clients_arg =
    let doc = "Concurrent client connections for the storm." in
    Arg.(value & opt int 4 & info [ "clients" ] ~doc ~docv:"N")
  in
  let timeout_arg =
    let doc = "Per-request deadline in milliseconds (0: none)." in
    Arg.(value & opt int 0 & info [ "timeout-ms" ] ~doc ~docv:"MS")
  in
  let verify_arg =
    let doc =
      "Recompute every loop locally and byte-compare against the \
       daemon's responses."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let malformed_arg =
    let doc =
      "Send a deliberately broken frame before benchmarking and check \
       the daemon survives it."
    in
    Arg.(value & flag & info [ "malformed" ] ~doc)
  in
  let json_arg =
    let doc = "Write an hcrf-bench/1 JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let fail fmt = Fmt.kstr (fun m -> Fmt.epr "serve-bench: %s@." m; exit 1) fmt in
  let connect addr =
    match Client.connect addr with
    | Ok c -> c
    | Error msg -> fail "%s" msg
  in
  let get_stats c =
    match Client.stats c with
    | Ok s -> s
    | Error msg -> fail "stats: %s" msg
  in
  let run addr_opt config_name n requests clients timeout_ms verify
      malformed json (ctx : Hcrf_eval.Runner.Ctx.t) =
    let scenario = ctx.Hcrf_eval.Runner.Ctx.scenario in
    let addr_s =
      match
        match addr_opt with
        | Some a -> Some a
        | None -> Hcrf_eval.Env.serve_addr ()
      with
      | Some a -> a
      | None -> fail "no address (pass --addr or set HCRF_SERVE_ADDR)"
    in
    let addr = Wire.addr_of_string addr_s in
    let config = config_of_string config_name in
    let opts = ctx.Hcrf_eval.Runner.Ctx.opts in
    let loops = Array.of_list (Hcrf_workload.Suite.generate ~n ()) in
    let n = Array.length loops in
    if malformed then begin
      (* a garbage frame must get this connection refused or closed —
         and must not take the daemon down *)
      let bad = connect addr in
      (match Client.send_raw bad "this is not a frame at all........" with
      | Ok (Wire.Refused _) | Error _ -> ()
      | Ok _ -> fail "daemon accepted a garbage frame");
      Client.close bad;
      let again = connect addr in
      (match Client.ping again with
      | Ok () -> Fmt.pr "malformed: daemon survived a garbage frame@."
      | Error msg -> fail "daemon did not survive a garbage frame: %s" msg);
      Client.close again
    end;
    let c0 = connect addr in
    (match Client.ping c0 with
    | Ok () -> ()
    | Error msg -> fail "ping: %s" msg);
    let before = get_stats c0 in
    (* first responses per loop: the identity baseline for the storm *)
    let baseline = Array.make n "" in
    let timeout_ms = if timeout_ms > 0 then Some timeout_ms else None in
    let schedule_on client i =
      match
        Client.schedule client ?timeout_ms ~config ~opts ~scenario loops.(i)
      with
      | Ok (Wire.Scheduled entry) -> Marshal.to_string entry []
      | Ok (Wire.Refused (k, msg)) ->
        fail "loop %d refused (%s): %s" i (Wire.error_kind_name k) msg
      | Ok _ -> fail "loop %d: unexpected reply" i
      | Error msg -> fail "loop %d: %s" i msg
    in
    let wall f =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let cold_wall =
      wall (fun () ->
          Array.iteri (fun i _ -> baseline.(i) <- schedule_on c0 i) loops)
    in
    let mid = get_stats c0 in
    (* the storm: [clients] connections, [requests] total, round-robin
       over the loops — every response must byte-match the baseline *)
    let errors = Mutex.create () in
    let first_error = ref None in
    let storm_client k () =
      let client = connect addr in
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      let r = ref k in
      while !r < requests do
        let i = !r mod n in
        (try
           let bytes = schedule_on client i in
           if not (String.equal bytes baseline.(i)) then begin
             Mutex.lock errors;
             if !first_error = None then
               first_error :=
                 Some (Fmt.str "loop %d: storm response differs from cold" i);
             Mutex.unlock errors
           end
         with e ->
           Mutex.lock errors;
           if !first_error = None then
             first_error := Some (Printexc.to_string e);
           Mutex.unlock errors);
        r := !r + clients
      done
    in
    let warm_wall =
      wall (fun () ->
          let threads =
            List.init (max 1 clients) (fun k ->
                Thread.create (storm_client k) ())
          in
          List.iter Thread.join threads)
    in
    (match !first_error with
    | Some msg -> fail "%s" msg
    | None -> ());
    let after = get_stats c0 in
    Client.close c0;
    let d get = get after - get mid in
    Fmt.pr "serve-bench: %d loops, %d requests, %d clients on %a@." n
      requests clients Wire.pp_addr addr;
    Fmt.pr "cold: computed=%d wall=%.3fs@."
      (mid.Wire.computed - before.Wire.computed)
      cold_wall;
    Fmt.pr
      "storm: computed=%d lru_hits=%d tier2_hits=%d coalesced=%d \
       rejected=%d timeouts=%d wall=%.3fs@."
      (d (fun s -> s.Wire.computed))
      (d (fun s -> s.Wire.lru_hits))
      (d (fun s -> s.Wire.tier2_hits))
      (d (fun s -> s.Wire.coalesced))
      (d (fun s -> s.Wire.rejected))
      (d (fun s -> s.Wire.timeouts))
      warm_wall;
    Fmt.pr "stats: %a@." Wire.pp_serve_stats after;
    if verify then begin
      (* the daemon's answers against this process's own runner: same
         compute path, independent run — identical modulo wall-clock *)
      let scrub (p : Hcrf_eval.Metrics.loop_perf) =
        { p with Hcrf_eval.Metrics.sched_seconds = 0. }
      in
      Array.iteri
        (fun i l ->
          let entry : Hcrf_cache.Entry.t =
            Marshal.from_string baseline.(i) 0
          in
          let remote = Hcrf_eval.Runner.result_of_entry config l entry in
          let local = Hcrf_eval.Runner.run_loop ~ctx config l in
          match (remote, local) with
          | Some r, Some s ->
            if
              not
                (String.equal
                   (Marshal.to_string (scrub r.Hcrf_eval.Runner.perf) [])
                   (Marshal.to_string (scrub s.Hcrf_eval.Runner.perf) []))
            then fail "loop %d: daemon result differs from local runner" i
          | None, None -> ()
          | _ -> fail "loop %d: daemon and local disagree on feasibility" i)
        loops;
      Fmt.pr "verify: ok (%d loops identical to the local runner)@." n
    end;
    match json with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{ \"schema\": \"hcrf-bench/1\", \"runs\": [\n\
        \  { \"config\": %S, \"loops\": %d, \"jobs\": %d,\n\
        \    \"cold_wall_s\": %.3f, \"warm_wall_s\": %.3f,\n\
        \    \"phase_ns\": {  } }\n\
         ] }\n"
        config_name n clients cold_wall warm_wall;
      close_out oc
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:"Fire a request storm at a running hcrf_serve daemon")
    Term.(
      const run $ addr_arg $ config_arg $ n_arg $ requests_arg
      $ clients_arg $ timeout_arg $ verify_arg $ malformed_arg $ json_arg
      $ ctx_term)

let incr_cmd =
  (* a scripted edit session against the memoized pipeline: evaluate a
     generated frontend program cold, then apply [--edits] single-kernel
     perturbations and report, per edit, exactly what recomputed.  All
     non-"timing:" lines are deterministic (counts and names only), so
     the smoke script can compare jobs=1 against jobs=4 byte-for-byte;
     --verify re-evaluates the final program with a fresh cold context
     and byte-compares the per-kernel metrics (sched_seconds scrubbed:
     independently measured wall-clock). *)
  let kernels_arg =
    let doc = "Number of generated frontend kernels in the program." in
    Arg.(value & opt int 24 & info [ "kernels" ] ~doc ~docv:"N")
  in
  let edits_arg =
    let doc = "Number of scripted single-kernel edits to apply." in
    Arg.(value & opt int 3 & info [ "edits" ] ~doc ~docv:"N")
  in
  let verify_arg =
    let doc =
      "Byte-compare the final incremental metrics against a cold \
       evaluation of the same program."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let json_arg =
    let doc = "Write an hcrf-bench/1 JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let fail fmt = Fmt.kstr (fun m -> Fmt.epr "incr: %s@." m; exit 1) fmt in
  let scrub perfs =
    List.map
      (Option.map (fun (p : Hcrf_eval.Metrics.loop_perf) ->
           { p with Hcrf_eval.Metrics.sched_seconds = 0. }))
      perfs
  in
  let run config_name kernels edits verify json
      (ctx : Hcrf_eval.Runner.Ctx.t) =
    let config = config_of_string config_name in
    let kernels = max 1 kernels in
    (* the stage memo is the whole point here: default one on unless
       --no-incr (or HCRF_INCR) already decided *)
    let ctx =
      match ctx.Hcrf_eval.Runner.Ctx.memo with
      | Some _ -> ctx
      | None ->
        { ctx with
          Hcrf_eval.Runner.Ctx.memo = Some (Hcrf_eval.Memo.create ()) }
    in
    let pipe = Hcrf_incr.Pipeline.create ~ctx config in
    let report tag (stats : Hcrf_incr.Pipeline.eval_stats)
        (a : Hcrf_eval.Metrics.aggregate) =
      Fmt.pr "%s: %a@." tag Hcrf_incr.Pipeline.pp_eval_stats stats;
      (match stats.Hcrf_incr.Pipeline.sched.Hcrf_eval.Runner.dirty with
      | [] -> ()
      | d -> Fmt.pr "  dirty:%a@." Fmt.(list ~sep:nop (fmt " %s")) d);
      Fmt.pr "result: scheduled=%d sum_ii=%d pct_at_mii=%.1f@."
        a.Hcrf_eval.Metrics.loops a.Hcrf_eval.Metrics.sum_ii
        a.Hcrf_eval.Metrics.pct_at_mii;
      Fmt.pr "timing: %s wall=%.3fs@." tag
        stats.Hcrf_incr.Pipeline.wall_s
    in
    Fmt.pr "incr: config=%s kernels=%d edits=%d jobs=%d@."
      config.Hcrf_machine.Config.name kernels edits
      ctx.Hcrf_eval.Runner.Ctx.jobs;
    let prog = ref (Hcrf_incr.Progs.program ~n:kernels) in
    let perfs0, agg0, cold_stats = Hcrf_incr.Pipeline.eval pipe !prog in
    report "cold" cold_stats agg0;
    let last_perfs = ref perfs0 and warm_wall = ref 0. in
    for round = 1 to edits do
      (* deterministic spread over the kernels; distinct per round for
         any program of a few kernels or more *)
      let kernel = round * 7 mod kernels in
      prog := Hcrf_incr.Progs.edit ~round ~kernel !prog;
      let perfs, agg, stats = Hcrf_incr.Pipeline.eval pipe !prog in
      report (Fmt.str "edit %d" round) stats agg;
      last_perfs := perfs;
      warm_wall := stats.Hcrf_incr.Pipeline.wall_s
    done;
    Option.iter
      (fun m ->
        Fmt.pr "memo: entries=%d%a@." (Hcrf_eval.Memo.length m)
          Fmt.(
            list ~sep:nop (fun ppf (k, v) -> pf ppf " %s=%d" k v))
          (Hcrf_eval.Memo.stage_stats m);
        ignore (Hcrf_eval.Memo.save m))
      ctx.Hcrf_eval.Runner.Ctx.memo;
    if verify then begin
      (* same program, fresh context: no memo, no cache, nothing warm *)
      let cold_ctx =
        Hcrf_eval.Runner.Ctx.make
          ~scenario:ctx.Hcrf_eval.Runner.Ctx.scenario
          ~opts:ctx.Hcrf_eval.Runner.Ctx.opts
          ~jobs:ctx.Hcrf_eval.Runner.Ctx.jobs ()
      in
      let cold = Hcrf_incr.Pipeline.create ~ctx:cold_ctx config in
      let cold_perfs, _, _ = Hcrf_incr.Pipeline.eval cold !prog in
      if
        not
          (String.equal
             (Marshal.to_string (scrub !last_perfs) [])
             (Marshal.to_string (scrub cold_perfs) []))
      then fail "incremental metrics differ from a cold evaluation";
      Fmt.pr "verify: ok (%d kernels byte-identical to a cold evaluation)@."
        kernels
    end;
    finish_trace ctx.Hcrf_eval.Runner.Ctx.tracer;
    match json with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      Printf.fprintf oc
        "{ \"schema\": \"hcrf-bench/1\", \"runs\": [\n\
        \  { \"config\": %S, \"loops\": %d, \"jobs\": %d,\n\
        \    \"cold_wall_s\": %.3f, \"warm_wall_s\": %.3f,\n\
        \    \"phase_ns\": {  } }\n\
         ] }\n"
        config_name kernels ctx.Hcrf_eval.Runner.Ctx.jobs
        cold_stats.Hcrf_incr.Pipeline.wall_s !warm_wall;
      close_out oc
  in
  Cmd.v
    (Cmd.info "incr"
       ~doc:
         "Apply a scripted edit sequence to a frontend program and \
          report what the memoized pipeline recomputes")
    Term.(
      const run $ config_arg $ kernels_arg $ edits_arg $ verify_arg
      $ json_arg $ ctx_term)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  Hcrf_eval.Env.warn_unknown ();
  let info =
    Cmd.info "hcrf_explore" ~version:"1.0"
      ~doc:
        "Hierarchical clustered register files for VLIW processors \
         (IPDPS'03 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ schedule_cmd; suite_cmd; hw_cmd; ports_cmd; scarcity_cmd;
            duel_cmd; fuzz_cmd; exact_cmd; trace_cmd; serve_bench_cmd;
            incr_cmd ]))
